// MSU-level tests: stream mechanics driven directly through the MSU's
// control surface, without a Coordinator in the loop.
#include <gtest/gtest.h>

#include "src/calliope/calliope.h"
#include "src/msu/msu.h"
#include "src/util/backoff.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

// Harness: one MSU with its node on a network, driven locally.
struct MsuFixture {
  Simulator sim;
  Network network{sim};
  std::unique_ptr<Machine> machine;
  std::unique_ptr<Machine> client_machine;
  NetNode* msu_node;
  NetNode* client_node;
  std::unique_ptr<Msu> msu;

  explicit MsuFixture(MsuParams params = MsuParams()) {
    MachineParams machine_params = MicronP66();
    machine = std::make_unique<Machine>(sim, machine_params, "msu0");
    msu_node = network.AddNode("msu0", machine.get(), /*on_intra=*/true);
    client_machine = std::make_unique<Machine>(sim, DisklessHost(), "client");
    client_node = network.AddNode("client", client_machine.get(), /*on_intra=*/false);
    msu = std::make_unique<Msu>(*machine, *msu_node, params);
  }

  // Installs a movie and returns its record count.
  int64_t InstallCbr(const std::string& name, SimTime duration, int disk) {
    IbTreeBuilder builder;
    for (const MediaPacket& packet : GenerateCbr(CbrSourceConfig{}, duration)) {
      (void)builder.Add(packet);
    }
    IbTreeFile image = builder.Finish();
    const int64_t records = image.record_count();
    EXPECT_TRUE(msu->fs().InstallImage(name, std::move(image), false, disk).ok());
    return records;
  }

  MsuStartStream PlayRequest(const std::string& file, StreamId stream, GroupId group) {
    MsuStartStream request;
    request.group = group;
    request.stream = stream;
    request.file = file;
    request.protocol = "raw-cbr";
    request.rate = DataRate::MegabitsPerSec(1.5);
    request.client_node = "client";
    request.client_udp_port = 9000;
    request.open_control_conn = false;  // drive the stream object directly
    return request;
  }

  // Issues a start request and returns whether the MSU accepted.
  bool Start(const MsuStartStream& request) {
    CoResult<MessageBody> response;
    Collect(msu->HandleStartStream(request), &response);
    RunUntil(sim, [&] { return response.done(); }, SimTime::Seconds(5));
    const auto* ack = std::get_if<MsuStartStreamResponse>(&*response.value);
    return ack != nullptr && ack->ok;
  }
};

TEST(MsuTest, PlaybackDeliversPacketsToClientPort) {
  MsuFixture fx;
  fx.InstallCbr("movie", SimTime::Seconds(30), 0);
  int64_t received = 0;
  ASSERT_TRUE(fx.client_node->BindUdp(9000, [&](const Datagram&) { ++received; }).ok());
  ASSERT_TRUE(fx.Start(fx.PlayRequest("movie", 1, 1)));
  fx.sim.RunFor(SimTime::Seconds(10));
  EXPECT_NEAR(static_cast<double>(received), 458, 25);  // ~45.8 pkt/s
}

TEST(MsuTest, DoubleBufferingKeepsAtMostTwoPagesAhead) {
  MsuFixture fx;
  fx.InstallCbr("movie", SimTime::Seconds(60), 0);
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});
  ASSERT_TRUE(fx.Start(fx.PlayRequest("movie", 1, 1)));
  fx.sim.RunFor(SimTime::Seconds(10));
  // ~10 s of playback covers ~7 pages; the disk must not have raced ahead
  // more than the double-buffer depth.
  MsuStream* stream = fx.msu->FindStream(1);
  ASSERT_NE(stream, nullptr);
  const auto pages_read = stream->bytes_moved() / kDataPageSize;
  EXPECT_LE(pages_read, 7 + 2);
  EXPECT_GE(pages_read, 7);
}

TEST(MsuTest, DutyCycleRefusesStreamsBeyondSlotCapacity) {
  MsuFixture fx;
  fx.InstallCbr("movie", SimTime::Seconds(30), 0);
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});
  const int capacity = fx.msu->duty_cycle().CapacityPerDisk(DataRate::MegabitsPerSec(1.5));
  int admitted = 0;
  for (int i = 0; i < capacity + 3; ++i) {
    if (fx.Start(fx.PlayRequest("movie", 100 + i, 100 + i))) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, capacity);  // the disk's cycle is full
}

TEST(MsuTest, BufferPoolLimitsConcurrentStreams) {
  MsuParams params;
  params.buffer_count = 5;  // room for two streams (2 buffers each) + 1 spare
  MsuFixture fx(params);
  fx.InstallCbr("movie", SimTime::Seconds(30), 0);
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});
  int admitted = 0;
  for (int i = 0; i < 4; ++i) {
    if (fx.Start(fx.PlayRequest("movie", 200 + i, 200 + i))) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 2);
}

TEST(MsuTest, PauseHaltsDiskServiceToo) {
  MsuFixture fx;
  fx.InstallCbr("movie", SimTime::Seconds(60), 0);
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});
  ASSERT_TRUE(fx.Start(fx.PlayRequest("movie", 1, 1)));
  fx.sim.RunFor(SimTime::Seconds(5));
  MsuStream* stream = fx.msu->FindStream(1);
  ASSERT_NE(stream, nullptr);
  ASSERT_TRUE(stream->Pause().ok());
  const Bytes at_pause = stream->bytes_moved();
  fx.sim.RunFor(SimTime::Seconds(10));
  EXPECT_EQ(stream->bytes_moved(), at_pause);  // paused streams get no slots
  ASSERT_TRUE(stream->Resume().ok());
  fx.sim.RunFor(SimTime::Seconds(5));
  EXPECT_GT(stream->bytes_moved(), at_pause);
}

TEST(MsuTest, SeekChargesInternalPageReads) {
  MsuFixture fx;
  // A two-hour file has a two-level tree: seeks read one internal page.
  fx.InstallCbr("long", SimTime::Seconds(7200), 0);
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});
  ASSERT_TRUE(fx.Start(fx.PlayRequest("long", 1, 1)));
  fx.sim.RunFor(SimTime::Seconds(3));
  MsuStream* stream = fx.msu->FindStream(1);
  const int64_t ios_before = fx.machine->disk(0).completed();
  CoResult<Status> sought;
  Collect(stream->SeekTo(SimTime::Seconds(3600)), &sought);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return sought.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(sought.value->ok());
  // The tree walk performed at least the internal-page read before the
  // playback loop resumed (plus possibly the refill of the target page).
  EXPECT_GE(fx.machine->disk(0).completed(), ios_before + 1);
  fx.sim.RunFor(SimTime::Seconds(2));
  EXPECT_NEAR(stream->CurrentMediaOffset().seconds(), 3602, 3);
}

TEST(MsuTest, QuitReleasesSlotAndBuffers) {
  MsuFixture fx;
  fx.InstallCbr("movie", SimTime::Seconds(30), 0);
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});
  ASSERT_TRUE(fx.Start(fx.PlayRequest("movie", 1, 1)));
  fx.sim.RunFor(SimTime::Seconds(2));
  EXPECT_EQ(fx.msu->duty_cycle().active_streams(0), 1);
  MsuStream* stream = fx.msu->FindStream(1);
  CoResult<Status> quit;
  Collect(stream->Quit(), &quit);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return quit.done(); }, SimTime::Seconds(5)));
  EXPECT_EQ(fx.msu->duty_cycle().active_streams(0), 0);
  EXPECT_EQ(fx.msu->active_stream_count(), 0);
}

TEST(MsuTest, StreamEndsItselfAtEndOfContent) {
  MsuFixture fx;
  fx.InstallCbr("short", SimTime::Seconds(3), 0);
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});
  ASSERT_TRUE(fx.Start(fx.PlayRequest("short", 1, 1)));
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return fx.msu->active_stream_count() == 0; },
                       SimTime::Seconds(20)));
}

TEST(MsuTest, RecordingBuildsCommittedFileWithStoredSchedule) {
  MsuFixture fx;
  MsuStartStream request = fx.PlayRequest("rec.dat", 1, 1);
  request.record = true;
  request.protocol = "rtp";
  request.estimated_length = SimTime::Seconds(60);
  ASSERT_TRUE(fx.Start(request));

  // Push packets straight into the stream, as the UDP demux would.
  MsuStream* stream = fx.msu->FindStream(1);
  ASSERT_NE(stream, nullptr);
  const PacketSequence packets = GenerateVbr(Graph2File(0), SimTime::Seconds(8));
  [](Simulator* sim, MsuStream* s, const PacketSequence* media) -> Task {
    const SimTime start = sim->Now();
    for (const MediaPacket& packet : *media) {
      const SimTime when = start + packet.delivery_offset;
      if (when > sim->Now()) {
        co_await sim->Delay(when - sim->Now());
      }
      MediaPacket arriving = packet;
      s->OnRecordedPacket(arriving);
    }
  }(&fx.sim, stream, &packets);
  fx.sim.RunFor(SimTime::Seconds(9));

  CoResult<Status> quit;
  Collect(stream->Quit(), &quit);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return quit.done(); }, SimTime::Seconds(10)));
  ASSERT_TRUE(quit.value->ok()) << quit.value->ToString();

  auto file = fx.msu->fs().Lookup("rec.dat");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->committed());
  // Data packets are all there, plus interleaved RTP control packets.
  EXPECT_GE((*file)->image().record_count(), static_cast<int64_t>(packets.size()));
  EXPECT_NEAR((*file)->image().duration().seconds(), 8.0, 1.0);
  int64_t control = 0;
  for (size_t p = 0; p < (*file)->image().page_count(); ++p) {
    for (const MediaPacket& record : (*file)->image().page(p).records) {
      if (record.flags & kPacketControl) {
        ++control;
      }
    }
  }
  EXPECT_GE(control, 1);  // RTCP-style reports every ~5 s
}

TEST(MsuTest, FastBackwardMapsPositionsBothWays) {
  MsuFixture fx;
  // Install the movie plus offline-filtered variants (15x).
  const MpegStream stream = EncodeMpeg(MpegEncoderConfig{}, SimTime::Seconds(300), 3);
  auto install = [&](const std::string& name, const MpegStream& s) {
    IbTreeBuilder builder;
    for (const MediaPacket& packet : PacketizeCbr(s, Bytes::KiB(4))) {
      (void)builder.Add(packet);
    }
    ASSERT_TRUE(fx.msu->fs().InstallImage(name, builder.Finish(), false, 0).ok());
  };
  install("movie", stream);
  install("movie.ff", FilterFastForward(stream, 15));
  install("movie.fb", FilterFastBackward(stream, 15));
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});

  MsuStartStream request = fx.PlayRequest("movie", 1, 1);
  request.fast_forward_file = "movie.ff";
  request.fast_backward_file = "movie.fb";
  ASSERT_TRUE(fx.Start(request));
  fx.sim.RunFor(SimTime::Seconds(30));
  MsuStream* s = fx.msu->FindStream(1);
  ASSERT_NE(s, nullptr);
  EXPECT_NEAR(s->CurrentMediaOffset().seconds(), 30, 3);

  // Rewind: 30 s into the movie maps to 18 s into the 20 s fb file.
  CoResult<Status> fb;
  Collect(s->SwitchVariant(MsuStream::Variant::kFastBackward), &fb);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return fb.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(fb.value->ok()) << fb.value->ToString();
  EXPECT_EQ(s->variant(), MsuStream::Variant::kFastBackward);
  EXPECT_NEAR(s->CurrentMediaOffset().seconds(), 18, 1.0);

  // One second of fb playback covers ~15 s of content backwards; switching
  // to normal rate lands near the 15 s mark.
  fx.sim.RunFor(SimTime::Seconds(1));
  CoResult<Status> normal;
  Collect(s->SwitchVariant(MsuStream::Variant::kNormal), &normal);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return normal.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(normal.value->ok());
  EXPECT_NEAR(s->CurrentMediaOffset().seconds(), 15, 3.0);
}

TEST(MsuTest, FastBackwardAtStartEndsTheStream) {
  MsuFixture fx;
  const MpegStream stream = EncodeMpeg(MpegEncoderConfig{}, SimTime::Seconds(150), 3);
  IbTreeBuilder movie_builder, fb_builder;
  for (const MediaPacket& packet : PacketizeCbr(stream, Bytes::KiB(4))) {
    (void)movie_builder.Add(packet);
  }
  for (const MediaPacket& packet :
       PacketizeCbr(FilterFastBackward(stream, 15), Bytes::KiB(4))) {
    (void)fb_builder.Add(packet);
  }
  ASSERT_TRUE(fx.msu->fs().InstallImage("movie", movie_builder.Finish(), false, 0).ok());
  ASSERT_TRUE(fx.msu->fs().InstallImage("movie.fb", fb_builder.Finish(), false, 0).ok());
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});

  MsuStartStream request = fx.PlayRequest("movie", 1, 1);
  request.fast_backward_file = "movie.fb";
  ASSERT_TRUE(fx.Start(request));
  fx.sim.RunFor(SimTime::Seconds(15));
  MsuStream* s = fx.msu->FindStream(1);
  CoResult<Status> fb;
  Collect(s->SwitchVariant(MsuStream::Variant::kFastBackward), &fb);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return fb.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(fb.value->ok());
  // Rewinding from 15 s covers the remaining 1 s of fb file and ends.
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return fx.msu->active_stream_count() == 0; },
                       SimTime::Seconds(20)));
}

TEST(MsuTest, GroupVcrFansOutToAllMembers) {
  MsuFixture fx;
  fx.InstallCbr("a", SimTime::Seconds(60), 0);
  fx.InstallCbr("b", SimTime::Seconds(60), 1);
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});
  ASSERT_TRUE(fx.Start(fx.PlayRequest("a", 1, 77)));
  ASSERT_TRUE(fx.Start(fx.PlayRequest("b", 2, 77)));  // same group
  fx.sim.RunFor(SimTime::Seconds(2));

  VcrCommand pause;
  pause.op = VcrCommand::Op::kPause;
  pause.group = 77;
  CoResult<MessageBody> ack;
  Collect(fx.msu->HandleVcr(pause), &ack);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return ack.done(); }, SimTime::Seconds(5)));
  EXPECT_TRUE(std::get<VcrAck>(*ack.value).ok);
  EXPECT_EQ(fx.msu->FindStream(1)->state(), MsuStream::State::kPaused);
  EXPECT_EQ(fx.msu->FindStream(2)->state(), MsuStream::State::kPaused);
}

TEST(MsuTest, CrashStopsStreamsAndRestartKeepsContent) {
  MsuFixture fx;
  fx.InstallCbr("movie", SimTime::Seconds(30), 0);
  (void)fx.client_node->BindUdp(9000, [](const Datagram&) {});
  ASSERT_TRUE(fx.Start(fx.PlayRequest("movie", 1, 1)));
  fx.sim.RunFor(SimTime::Seconds(2));
  fx.msu->Crash();
  EXPECT_EQ(fx.msu->active_stream_count(), 0);
  EXPECT_TRUE(fx.msu_node->down());
  // Content survives the process crash (it lives on disk).
  fx.msu_node->SetDown(false);
  fx.msu->fs();
  EXPECT_TRUE(fx.msu->fs().Lookup("movie").ok());
}

TEST(MsuTest, UnknownProtocolRefused) {
  MsuFixture fx;
  fx.InstallCbr("movie", SimTime::Seconds(10), 0);
  MsuStartStream request = fx.PlayRequest("movie", 1, 1);
  request.protocol = "h264";
  EXPECT_FALSE(fx.Start(request));
}

TEST(MsuTest, MissingContentRefused) {
  MsuFixture fx;
  EXPECT_FALSE(fx.Start(fx.PlayRequest("ghost", 1, 1)));
}

// The redial schedule the MSU (and client) use after losing the Coordinator:
// capped exponential growth with seeded jitter. Determinism matters — a chaos
// run must replay bit-identically — so two Backoffs with equal params + seed
// must produce equal schedules, and the jitter must stay inside the
// documented [1-j, 1+j] envelope around the clamped geometric base.
TEST(MsuTest, RedialBackoffIsCappedExponentialWithSeededJitter) {
  BackoffParams params;
  params.initial = SimTime::Millis(100);
  params.max = SimTime::Seconds(2);
  params.multiplier = 2.0;
  params.jitter_fraction = 0.2;

  Backoff a(params, 7);
  Backoff b(params, 7);
  Backoff c(params, 8);

  bool any_seed_difference = false;
  for (int i = 0; i < 12; ++i) {
    const SimTime delay_a = a.Next();
    const SimTime delay_b = b.Next();
    const SimTime delay_c = c.Next();
    // Same seed => identical schedule.
    EXPECT_EQ(delay_a.nanos(), delay_b.nanos()) << "attempt " << i;
    if (delay_a.nanos() != delay_c.nanos()) any_seed_difference = true;

    // Envelope: jitter scales the clamped geometric base by [0.8, 1.2].
    double base_ns = static_cast<double>(params.initial.nanos());
    for (int k = 0; k < i; ++k) base_ns *= params.multiplier;
    const double cap_ns = static_cast<double>(params.max.nanos());
    if (base_ns > cap_ns) base_ns = cap_ns;
    EXPECT_GE(delay_a.nanos(), static_cast<int64_t>(base_ns * 0.8) - 1)
        << "attempt " << i;
    EXPECT_LE(delay_a.nanos(), static_cast<int64_t>(base_ns * 1.2) + 1)
        << "attempt " << i;
  }
  // Different seed => different jitter stream (somewhere in 12 draws).
  EXPECT_TRUE(any_seed_difference);
  EXPECT_EQ(a.attempts(), 12);

  // Reset returns to the initial delay band but keeps consuming the same
  // jitter stream, so the twin that mirrors the call sequence stays equal.
  a.Reset();
  b.Reset();
  const SimTime after_reset_a = a.Next();
  const SimTime after_reset_b = b.Next();
  EXPECT_EQ(after_reset_a.nanos(), after_reset_b.nanos());
  EXPECT_GE(after_reset_a.nanos(), SimTime::Millis(80).nanos() - 1);
  EXPECT_LE(after_reset_a.nanos(), SimTime::Millis(120).nanos() + 1);
}

}  // namespace
}  // namespace calliope
