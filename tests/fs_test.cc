// Tests for the MSU user-level file system (§2.3.3).
#include <gtest/gtest.h>

#include "src/fs/msu_fs.h"
#include "src/hw/machine.h"
#include "src/media/sources.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

struct FsFixture {
  Simulator sim;
  MachineParams params;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<MsuFileSystem> fs;

  explicit FsFixture(std::vector<int> disks_per_hba = {2}) {
    params = MicronP66();
    params.disks_per_hba = std::move(disks_per_hba);
    machine = std::make_unique<Machine>(sim, params, "msu");
    std::vector<Disk*> disks;
    for (size_t i = 0; i < machine->disk_count(); ++i) {
      disks.push_back(&machine->disk(i));
    }
    fs = std::make_unique<MsuFileSystem>(std::move(disks));
  }

  IbTreeFile MakeImage(SimTime duration) {
    IbTreeBuilder builder;
    for (const MediaPacket& packet : GenerateCbr(CbrSourceConfig{}, duration)) {
      (void)builder.Add(packet);
    }
    return builder.Finish();
  }
};

TEST(VolumeTest, AllocatesSequentiallyAndFrees) {
  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = {1};
  Machine machine(sim, params, "m");
  Volume volume(machine.disk(0));
  EXPECT_EQ(volume.total_blocks(), 8192);  // 2 GiB / 256 KiB
  auto a = volume.AllocateBlock();
  auto b = volume.AllocateBlock();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a + 1);  // next-fit: sequential files stay contiguous
  volume.FreeBlock(*a);
  EXPECT_EQ(volume.free_blocks(), volume.total_blocks() - 1);
}

TEST(VolumeTest, ReservationLimitsNewReservations) {
  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = {1};
  Machine machine(sim, params, "m");
  Volume volume(machine.disk(0));
  ASSERT_TRUE(volume.Reserve(volume.total_blocks()).ok());
  EXPECT_EQ(volume.Reserve(1).code(), StatusCode::kResourceExhausted);
  volume.Unreserve(10);
  EXPECT_TRUE(volume.Reserve(10).ok());
}

TEST(FsTest, CreateLookupDelete) {
  FsFixture fx;
  auto file = fx.fs->Create("movie", Bytes::MiB(10), false);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(fx.fs->Lookup("movie").ok());
  EXPECT_EQ(fx.fs->Create("movie", Bytes::MiB(1), false).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(fx.fs->Delete("movie").ok());
  EXPECT_EQ(fx.fs->Lookup("movie").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fx.fs->Delete("movie").code(), StatusCode::kNotFound);
}

TEST(FsTest, CreateReservesSpaceAndDeleteReturnsIt) {
  FsFixture fx({1});
  const Bytes before = fx.fs->TotalFreeSpace();
  auto file = fx.fs->Create("movie", Bytes::MiB(100), false);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((before - fx.fs->TotalFreeSpace()).count(), Bytes::MiB(100).count());
  ASSERT_TRUE(fx.fs->Delete("movie").ok());
  EXPECT_EQ(fx.fs->TotalFreeSpace(), before);
}

TEST(FsTest, CreateFailsWhenDiskFull) {
  FsFixture fx({1});
  auto big = fx.fs->Create("big", Bytes::GiB(2) - kDataPageSize, false);  // all but the metadata block
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(fx.fs->Create("more", Bytes::MiB(1), false).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(FsTest, InstallImageMakesContentReadable) {
  FsFixture fx;
  IbTreeFile image = fx.MakeImage(SimTime::Seconds(30));
  const size_t pages = image.page_count();
  auto file = fx.fs->InstallImage("movie", std::move(image), false, 0);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->committed());
  EXPECT_EQ((*file)->pages_written(), pages);

  CoResult<Result<const DataPage*>> page;
  Collect(fx.fs->ReadPage(*file, 0), &page);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return page.done(); }, SimTime::Seconds(2)));
  ASSERT_TRUE(page.value->ok());
  EXPECT_FALSE((**page.value)->records.empty());
}

TEST(FsTest, ReadPageOutOfRangeFails) {
  FsFixture fx;
  auto file = fx.fs->InstallImage("movie", fx.MakeImage(SimTime::Seconds(5)), false, 0);
  ASSERT_TRUE(file.ok());
  CoResult<Result<const DataPage*>> page;
  Collect(fx.fs->ReadPage(*file, 10000), &page);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return page.done(); }, SimTime::Seconds(2)));
  EXPECT_EQ(page.value->status().code(), StatusCode::kNotFound);
}

TEST(FsTest, WritePagesInOrderThenCommit) {
  FsFixture fx;
  IbTreeFile image = fx.MakeImage(SimTime::Seconds(10));
  const Bytes estimated = kDataPageSize * static_cast<int64_t>(image.page_count() + 5);
  auto file = fx.fs->Create("rec", estimated, false, 0);
  ASSERT_TRUE(file.ok());

  for (size_t p = 0; p < image.page_count(); ++p) {
    CoResult<Status> wrote;
    Collect(fx.fs->WriteNextPage(*file, static_cast<int64_t>(p)), &wrote);
    ASSERT_TRUE(RunUntil(fx.sim, [&] { return wrote.done(); }, SimTime::Seconds(5)));
    ASSERT_TRUE(wrote.value->ok());
  }
  // Out-of-order write refused.
  CoResult<Status> bad;
  Collect(fx.fs->WriteNextPage(*file, 99), &bad);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return bad.done(); }, SimTime::Seconds(2)));
  EXPECT_EQ(bad.value->code(), StatusCode::kInvalidArgument);

  const Bytes free_before_commit = fx.fs->TotalFreeSpace();
  ASSERT_TRUE(fx.fs->CommitRecording(*file, std::move(image)).ok());
  // The 5-block over-estimate returned to the pool.
  EXPECT_EQ((fx.fs->TotalFreeSpace() - free_before_commit).count(),
            (kDataPageSize * 5).count());
  EXPECT_TRUE((*file)->committed());
  // Double commit refused.
  IbTreeFile empty;
  EXPECT_EQ(fx.fs->CommitRecording(*file, std::move(empty)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FsTest, CommitRejectsPageCountMismatch) {
  FsFixture fx;
  IbTreeFile image = fx.MakeImage(SimTime::Seconds(10));
  auto file = fx.fs->Create("rec", Bytes::MiB(50), false, 0);
  ASSERT_TRUE(file.ok());
  // No pages written but image has pages.
  EXPECT_EQ(fx.fs->CommitRecording(*file, std::move(image)).code(),
            StatusCode::kInvalidArgument);
}

TEST(FsTest, StripedFilesSpreadAcrossDisks) {
  FsFixture fx({2, 2});
  IbTreeFile image = fx.MakeImage(SimTime::Seconds(60));
  auto file = fx.fs->InstallImage("movie", std::move(image), /*striped=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_GE((*file)->blocks().size(), 8u);
  // "consecutive blocks are on 'adjacent' disks"
  for (size_t i = 0; i < (*file)->blocks().size(); ++i) {
    EXPECT_EQ((*file)->blocks()[i].disk, static_cast<int>(i % 4));
  }
}

TEST(FsTest, NonStripedFileStaysOnOneDisk) {
  FsFixture fx({2});
  auto file = fx.fs->InstallImage("movie", fx.MakeImage(SimTime::Seconds(30)), false, 1);
  ASSERT_TRUE(file.ok());
  for (const BlockAddr& addr : (*file)->blocks()) {
    EXPECT_EQ(addr.disk, 1);
  }
}

TEST(FsTest, SequentialReadIsFasterThanScatteredFiles) {
  // Contiguous allocation means a file streams near media rate.
  FsFixture fx({1});
  auto file = fx.fs->InstallImage("movie", fx.MakeImage(SimTime::Seconds(120)), false, 0);
  ASSERT_TRUE(file.ok());
  const size_t pages = (*file)->pages_written();
  const SimTime start = fx.sim.Now();
  bool done = false;
  [](MsuFileSystem* fs, MsuFile* f, size_t n, bool* flag) -> Task {
    for (size_t p = 0; p < n; ++p) {
      co_await fs->ReadPage(f, p);
    }
    *flag = true;
  }(fx.fs.get(), *file, pages, &done);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return done; }, SimTime::Seconds(60)));
  const double seconds = (fx.sim.Now() - start).seconds();
  const double mbps = (kDataPageSize * static_cast<int64_t>(pages)).megabytes() / seconds;
  EXPECT_GT(mbps, 4.5);  // sequential: ~media rate, well above the 3.6 random
}

TEST(FsTest, FileTableSerializationRoundTripsAndDetectsCorruption) {
  FsFixture fx;
  (void)fx.fs->InstallImage("alpha", fx.MakeImage(SimTime::Seconds(5)), false, 0);
  (void)fx.fs->InstallImage("beta", fx.MakeImage(SimTime::Seconds(5)), false, 1);
  auto bytes = fx.fs->SerializeFileTable();
  auto names = MsuFileSystem::ParseFileTableNames(bytes);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"alpha", "beta"}));
  bytes[4] ^= std::byte{0x1};
  EXPECT_EQ(MsuFileSystem::ParseFileTableNames(bytes).status().code(), StatusCode::kDataLoss);
}

TEST(FsTest, MetadataDirtyTrackingAndFlush) {
  FsFixture fx({1});
  EXPECT_FALSE(fx.fs->metadata_dirty());
  auto file = fx.fs->InstallImage("movie", fx.MakeImage(SimTime::Seconds(5)), false, 0);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(fx.fs->metadata_dirty());

  const int64_t ios_before = fx.machine->disk(0).completed();
  CoResult<Status> flushed;
  Collect(fx.fs->FlushMetadata(), &flushed);
  ASSERT_TRUE(RunUntil(fx.sim, [&] { return flushed.done(); }, SimTime::Seconds(2)));
  ASSERT_TRUE(flushed.value->ok());
  EXPECT_FALSE(fx.fs->metadata_dirty());
  EXPECT_EQ(fx.fs->metadata_flushes(), 1);
  EXPECT_EQ(fx.machine->disk(0).completed(), ios_before + 1);  // one block write

  // Clean flush is free.
  CoResult<Status> again;
  Collect(fx.fs->FlushMetadata(), &again);
  RunUntil(fx.sim, [&] { return again.done(); }, SimTime::Seconds(2));
  EXPECT_EQ(fx.fs->metadata_flushes(), 1);
  EXPECT_EQ(fx.machine->disk(0).completed(), ios_before + 1);

  // Deleting re-dirties.
  ASSERT_TRUE(fx.fs->Delete("movie").ok());
  EXPECT_TRUE(fx.fs->metadata_dirty());
}

TEST(FsTest, MetadataBlockIsNeverAllocatedToFiles) {
  FsFixture fx({1});
  auto file = fx.fs->InstallImage("movie", fx.MakeImage(SimTime::Seconds(30)), false, 0);
  ASSERT_TRUE(file.ok());
  for (const BlockAddr& addr : (*file)->blocks()) {
    EXPECT_FALSE(addr.disk == 0 && addr.block == 0);
  }
}

}  // namespace
}  // namespace calliope
