// Hybrid-fidelity equivalence suite (DESIGN.md §5.5).
//
// A flow-mode run must be *behaviourally* indistinguishable from a per-packet
// run of the same seed: identical admission outcomes, identical per-stream
// packet counts and terminal state, and lateness/gap quantiles that agree
// within the coarse timer's rounding plus the per-packet CPU tail the
// analytic model deliberately omits. The suite also exercises every demotion
// trigger — VCR ops, disk faults, MSU crash/failover — proving streams drop
// back to the bit-exact per-packet model around interesting moments.
//
// ctest registers seeded variants of this binary under the `fidelity` label
// (see tests/CMakeLists.txt); CALLIOPE_CHAOS_SEED sweeps the seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "src/obs/report_diff.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

uint64_t SweepSeed(uint64_t fallback) {
  const char* env = std::getenv("CALLIOPE_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

int64_t CounterOrZero(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

struct WorkloadResult {
  WorkloadResult() = default;

  ClusterReport report;
  int64_t flow_chunks = 0;
  int64_t flow_packets = 0;
  int64_t flow_promotions = 0;
  int64_t flow_demotions = 0;
  int64_t admissions_accepted = 0;
  int64_t admissions_rejected = 0;
  int64_t admissions_queued = 0;
  bool all_terminated = false;
};

InstallationConfig FidelityConfigFor(uint64_t seed, int msu_count, Fidelity mode) {
  InstallationConfig config;
  config.seed = seed;
  config.msu_count = msu_count;
  config.msu.fidelity.default_mode = mode;
  // Short quiet window so most of a 10 s movie plays in flow mode.
  config.msu.fidelity.quiet_window = SimTime::Millis(500);
  return config;
}

// Scripted hook run mid-play (VCR ops, faults, crashes). Receives the cluster,
// the client and the group ids in play order.
using MidScript = std::function<void(TestCluster&, CalliopeClient&, std::vector<GroupId>&)>;

// One deterministic steady-state workload: `streams` plays spread over
// `msu_count` MSUs (one movie per MSU), run to natural termination.
WorkloadResult RunWorkload(uint64_t seed, Fidelity mode, int msu_count, int streams,
                           const MidScript& mid = MidScript()) {
  WorkloadResult out;
  TestCluster cluster(FidelityConfigFor(seed, msu_count, mode));
  Simulator& sim = cluster.sim();
  EXPECT_TRUE(cluster.Boot().ok());
  for (int m = 0; m < msu_count; ++m) {
    EXPECT_TRUE(cluster.installation()
                    .LoadMpegMovie("m" + std::to_string(m), SimTime::Seconds(10),
                                   static_cast<size_t>(m), /*with_fast_scan=*/false)
                    .ok());
  }
  auto added = cluster.AddConnectedClient("c");
  EXPECT_TRUE(added.ok()) << added.status().ToString();
  if (!added.ok()) {
    return out;
  }
  CalliopeClient* client = *added;

  std::vector<GroupId> groups;
  for (int i = 0; i < streams; ++i) {
    auto play = PlayOn(sim, *client, "m" + std::to_string(i % msu_count),
                       "tv" + std::to_string(i));
    EXPECT_TRUE(play.ok()) << play.status().ToString();
    if (play.ok()) {
      groups.push_back(play->group);
    }
  }
  sim.RunFor(SimTime::Seconds(2));
  if (mid) {
    mid(cluster, *client, groups);
  }

  const bool terminated = RunUntil(
      sim,
      [&] {
        for (GroupId group : groups) {
          if (!client->GroupTerminated(group)) {
            return false;
          }
        }
        return true;
      },
      SimTime::Seconds(40));
  out.all_terminated = terminated && cluster.WaitForIdle(SimTime::Seconds(10));
  // Let the last in-flight datagrams (and any settled flow chunk) land.
  sim.RunFor(SimTime::Seconds(1));

  out.report = cluster.installation().BuildClusterReport();
  const MetricsSnapshot& snap = out.report.metrics;
  out.flow_chunks = CounterOrZero(snap, "sim.flow.chunks");
  out.flow_packets = CounterOrZero(snap, "sim.flow.packets");
  out.flow_promotions = CounterOrZero(snap, "sim.flow.promotions");
  out.flow_demotions = CounterOrZero(snap, "sim.flow.demotions");
  out.admissions_accepted = CounterOrZero(snap, "coord.admissions.accepted");
  out.admissions_rejected = CounterOrZero(snap, "coord.admissions.rejected");
  out.admissions_queued = CounterOrZero(snap, "coord.admissions.queued");
  return out;
}

// Tolerances for packet-vs-flow report comparison. Packet counts are held
// (nearly) exact; lateness quantiles may differ by the per-packet CPU tail
// (~hundreds of µs under load) the analytic model omits; arrival gaps may
// shift by one chunk transit time at flow-chunk boundaries.
ReportDiffOptions EquivalenceTolerances() {
  ReportDiffOptions options;
  options.packets = ReportDiffOptions::Tolerance(2, 0.001);
  // packets_late sits on the 1 ms histogram edge: the per-packet CPU tail
  // (absent from the analytic model) pushes borderline tick-rounding samples
  // across it, ~10% of a stream's packets in the worst observed case.
  options.late_packets = ReportDiffOptions::Tolerance(16, 0.15);
  options.lateness_us = ReportDiffOptions::Tolerance(3000, 0.25);
  // max lateness absorbs wire queueing collisions: a per-packet-mode record
  // (e.g. just after a demotion) can land behind a few other streams'
  // aggregated flow chunks, adding chunk-transfer times its twin never sees.
  options.max_lateness_us = ReportDiffOptions::Tolerance(12000, 0.25);
  options.gap_us = ReportDiffOptions::Tolerance(50000, 0.5);
  // Mechanism metrics (timer wakeups, NIC frames, disk ops, sim.flow.*)
  // legitimately differ across fidelity modes; streams/ports carry the
  // behavioural contract.
  options.compare_metrics = false;
  return options;
}

void ExpectEquivalent(const WorkloadResult& packet, const WorkloadResult& flow,
                      const std::string& label) {
  EXPECT_TRUE(packet.all_terminated) << label;
  EXPECT_TRUE(flow.all_terminated) << label;
  // Admission outcomes are exact — the admission path never runs in flow mode.
  EXPECT_EQ(packet.admissions_accepted, flow.admissions_accepted) << label;
  EXPECT_EQ(packet.admissions_rejected, flow.admissions_rejected) << label;
  EXPECT_EQ(packet.admissions_queued, flow.admissions_queued) << label;
  // The baseline run must be pure per-packet; the flow run must actually
  // have exercised the fast path.
  EXPECT_EQ(packet.flow_chunks, 0) << label;
  EXPECT_GT(flow.flow_chunks, 0) << label;
  EXPECT_GT(flow.flow_promotions, 0) << label;

  const ReportDiff diff =
      DiffClusterReports(packet.report, flow.report, EquivalenceTolerances());
  EXPECT_TRUE(diff.empty()) << label << " report diff:\n" << diff.ToText();
}

// ---- steady-state equivalence ----------------------------------------------

TEST(FidelityEquivalenceTest, FlowMatchesPacketSingleMsu) {
  const uint64_t seed = SweepSeed(1996);
  const WorkloadResult packet = RunWorkload(seed, Fidelity::kPacket, 1, 4);
  const WorkloadResult flow = RunWorkload(seed, Fidelity::kFlow, 1, 4);
  ExpectEquivalent(packet, flow, "1 MSU / 4 streams");
  // Flow mode accounted every logical packet it replaced.
  EXPECT_GT(flow.flow_packets, 0);
}

TEST(FidelityEquivalenceTest, FlowMatchesPacketTwoMsus) {
  const uint64_t seed = SweepSeed(1996);
  const WorkloadResult packet = RunWorkload(seed, Fidelity::kPacket, 2, 8);
  const WorkloadResult flow = RunWorkload(seed, Fidelity::kFlow, 2, 8);
  ExpectEquivalent(packet, flow, "2 MSUs / 8 streams");
}

// ---- demotion triggers ------------------------------------------------------

TEST(FidelityDemotionTest, VcrPauseDemotesAndRunMatchesPacket) {
  const uint64_t seed = SweepSeed(42);
  const MidScript pause_resume = [](TestCluster& cluster, CalliopeClient& client,
                                    std::vector<GroupId>& groups) {
    ASSERT_FALSE(groups.empty());
    EXPECT_TRUE(VcrOp(cluster.sim(), client, groups[0], VcrCommand::Op::kPause).ok());
    cluster.sim().RunFor(SimTime::Seconds(2));
    EXPECT_TRUE(VcrOp(cluster.sim(), client, groups[0], VcrCommand::Op::kPlay).ok());
  };
  const WorkloadResult packet = RunWorkload(seed, Fidelity::kPacket, 1, 3, pause_resume);
  const WorkloadResult flow = RunWorkload(seed, Fidelity::kFlow, 1, 3, pause_resume);
  // The pause landed while the stream was in flow mode (2 s in, quiet window
  // 500 ms) and demoted it; the stream promoted again after the resume.
  EXPECT_GT(flow.flow_demotions, 0);
  EXPECT_GT(flow.flow_promotions, flow.flow_demotions);
  ExpectEquivalent(packet, flow, "pause/resume");
}

TEST(FidelityDemotionTest, DiskFaultWindowDemotes) {
  const uint64_t seed = SweepSeed(7);
  const MidScript slow_disk = [](TestCluster& cluster, CalliopeClient& client,
                                 std::vector<GroupId>& groups) {
    (void)client;
    (void)groups;
    // A latency window on every msu0 disk, starting now: the first faulted
    // access notifies the fault observer, which demotes the disk's streams.
    FaultPlan plan;
    FaultEvent slow;
    slow.what = FaultClass::kDiskSlow;
    slow.at = cluster.sim().Now();
    slow.duration = SimTime::Seconds(3);
    slow.node = "msu0";
    slow.disk = -1;
    slow.delay = SimTime::Millis(20);
    plan.events.push_back(slow);
    EXPECT_TRUE(cluster.installation().ApplyFaultPlan(plan).ok());
  };
  const WorkloadResult flow = RunWorkload(seed, Fidelity::kFlow, 1, 4, slow_disk);
  EXPECT_TRUE(flow.all_terminated);
  EXPECT_GT(flow.flow_chunks, 0);
  EXPECT_GT(flow.flow_demotions, 0);

  // Terminal state matches a per-packet run of the same faulted script.
  const WorkloadResult packet = RunWorkload(seed, Fidelity::kPacket, 1, 4, slow_disk);
  EXPECT_TRUE(packet.all_terminated);
  EXPECT_EQ(packet.admissions_accepted, flow.admissions_accepted);
  EXPECT_EQ(packet.admissions_rejected, flow.admissions_rejected);
  EXPECT_EQ(packet.flow_chunks, 0);
}

TEST(FidelityDemotionTest, MsuCrashFailoverDemotesAndRecovers) {
  const uint64_t seed = SweepSeed(11);
  // Two MSUs, every movie replicated on the other, so a crash mid-play fails
  // every stream over to the survivor.
  auto run = [&](Fidelity mode) {
    WorkloadResult out;
    TestCluster cluster(FidelityConfigFor(seed, 2, mode));
    Simulator& sim = cluster.sim();
    EXPECT_TRUE(cluster.Boot().ok());
    const int movies = 4;
    for (int i = 0; i < movies; ++i) {
      const std::string name = "m" + std::to_string(i);
      EXPECT_TRUE(
          cluster.installation().LoadMpegMovie(name, SimTime::Seconds(12), 0, false).ok());
      EXPECT_TRUE(cluster.installation().ReplicateContent(name, 1).ok());
    }
    auto added = cluster.AddConnectedClient("c");
    EXPECT_TRUE(added.ok());
    CalliopeClient* client = *added;
    std::vector<GroupId> groups;
    for (int i = 0; i < movies; ++i) {
      auto play = PlayOn(sim, *client, "m" + std::to_string(i), "tv" + std::to_string(i));
      EXPECT_TRUE(play.ok());
      if (play.ok()) {
        groups.push_back(play->group);
      }
    }
    // Let streams settle into flow mode, then kill the MSU serving some of
    // them: StopInternal settles + demotes in-flight flow streams, and the
    // failed-over replacements restart in packet mode on the survivor.
    sim.RunFor(SimTime::Seconds(5));
    cluster.msu(0).Crash();
    EXPECT_TRUE(RunUntil(
        sim, [&] { return cluster.msu(1).active_stream_count() == movies; },
        SimTime::Seconds(10)));
    out.all_terminated = RunUntil(
        sim,
        [&] {
          for (GroupId group : groups) {
            if (!client->GroupTerminated(group)) {
              return false;
            }
          }
          return true;
        },
        SimTime::Seconds(40));
    EXPECT_EQ(cluster.coordinator().active_stream_count(), 0u);
    EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok());
    sim.RunFor(SimTime::Seconds(1));
    out.report = cluster.installation().BuildClusterReport();
    const MetricsSnapshot& snap = out.report.metrics;
    out.flow_chunks = CounterOrZero(snap, "sim.flow.chunks");
    out.flow_demotions = CounterOrZero(snap, "sim.flow.demotions");
    out.flow_promotions = CounterOrZero(snap, "sim.flow.promotions");
    out.admissions_accepted = CounterOrZero(snap, "coord.admissions.accepted");
    out.admissions_rejected = CounterOrZero(snap, "coord.admissions.rejected");
    return out;
  };

  const WorkloadResult flow = run(Fidelity::kFlow);
  EXPECT_TRUE(flow.all_terminated);
  EXPECT_GT(flow.flow_chunks, 0);
  // The crash cut streams that were running in flow mode: each settled its
  // due records and demoted on StopInternal.
  EXPECT_GT(flow.flow_demotions, 0);

  const WorkloadResult packet = run(Fidelity::kPacket);
  EXPECT_TRUE(packet.all_terminated);
  EXPECT_EQ(packet.flow_chunks, 0);
  // Same admission outcomes (initial placements and failover re-placements).
  EXPECT_EQ(packet.admissions_accepted, flow.admissions_accepted);
  EXPECT_EQ(packet.admissions_rejected, flow.admissions_rejected);
}

// ---- stream sharing (DESIGN §5.6) -------------------------------------------
// A shared delivery group must honor the same flow-vs-packet equivalence
// contract as solo streams: the one disk stream promotes to flow mode and
// fans chunks out to every member, and a per-member report diff against a
// pure per-packet run stays inside the standard tolerances.

WorkloadResult RunSharedWorkload(uint64_t seed, Fidelity mode, const MidScript& mid) {
  WorkloadResult out;
  InstallationConfig config = FidelityConfigFor(seed, 1, mode);
  config.coordinator.sharing.enabled = true;
  TestCluster cluster(config);
  Simulator& sim = cluster.sim();
  EXPECT_TRUE(cluster.Boot().ok());
  EXPECT_TRUE(
      cluster.installation().LoadMpegMovie("hot", SimTime::Seconds(10), 0, false).ok());
  EXPECT_TRUE(
      cluster.installation().LoadMpegMovie("cold", SimTime::Seconds(10), 0, false).ok());
  auto added = cluster.AddConnectedClient("c");
  EXPECT_TRUE(added.ok()) << added.status().ToString();
  if (!added.ok()) {
    return out;
  }
  CalliopeClient* client = *added;

  // Three viewers coalesce onto one delivery stream for the hot title; one
  // solo viewer keeps the cold title in the mix.
  std::vector<GroupId> groups;
  for (int i = 0; i < 4; ++i) {
    auto play = PlayOn(sim, *client, i < 3 ? "hot" : "cold", "tv" + std::to_string(i));
    EXPECT_TRUE(play.ok()) << play.status().ToString();
    if (play.ok()) {
      groups.push_back(play->group);
    }
  }
  sim.RunFor(SimTime::Seconds(2));
  if (mid) {
    mid(cluster, *client, groups);
  }

  out.all_terminated = RunUntil(
                           sim,
                           [&] {
                             for (GroupId group : groups) {
                               if (!client->GroupTerminated(group)) {
                                 return false;
                               }
                             }
                             return true;
                           },
                           SimTime::Seconds(40)) &&
                       cluster.WaitForIdle(SimTime::Seconds(10));
  sim.RunFor(SimTime::Seconds(1));

  out.report = cluster.installation().BuildClusterReport();
  const MetricsSnapshot& snap = out.report.metrics;
  out.flow_chunks = CounterOrZero(snap, "sim.flow.chunks");
  out.flow_packets = CounterOrZero(snap, "sim.flow.packets");
  out.flow_promotions = CounterOrZero(snap, "sim.flow.promotions");
  out.flow_demotions = CounterOrZero(snap, "sim.flow.demotions");
  out.admissions_accepted = CounterOrZero(snap, "coord.admissions.accepted");
  out.admissions_rejected = CounterOrZero(snap, "coord.admissions.rejected");
  out.admissions_queued = CounterOrZero(snap, "coord.admissions.queued");
  EXPECT_EQ(CounterOrZero(snap, "coord.groups.formed"), 2) << "hot + cold batches";
  return out;
}

TEST(FidelitySharingTest, SharedGroupFlowMatchesPacket) {
  const uint64_t seed = SweepSeed(1996);
  const WorkloadResult packet = RunSharedWorkload(seed, Fidelity::kPacket, MidScript());
  const WorkloadResult flow = RunSharedWorkload(seed, Fidelity::kFlow, MidScript());
  ExpectEquivalent(packet, flow, "shared group, 3 members + 1 solo");
  // The fan-out path itself ran analytically: more flow packets were
  // accounted than a page-by-page solo delivery could produce alone.
  EXPECT_GT(flow.flow_packets, 0);
}

TEST(FidelitySharingTest, VcrSplitDemotesSharedDeliveryAndRunMatchesPacket) {
  const uint64_t seed = SweepSeed(42);
  const MidScript split_one = [](TestCluster& cluster, CalliopeClient& client,
                                 std::vector<GroupId>& groups) {
    ASSERT_GE(groups.size(), 2u);
    // Member 1 pauses out of the shared group: the split settles the
    // delivery stream's in-flight page and demotes it (membership churn is
    // an interesting moment), then the member resumes solo.
    EXPECT_TRUE(VcrOp(cluster.sim(), client, groups[1], VcrCommand::Op::kPause).ok());
    cluster.sim().RunFor(SimTime::Seconds(2));
    EXPECT_TRUE(VcrOp(cluster.sim(), client, groups[1], VcrCommand::Op::kPlay).ok());
  };
  const WorkloadResult packet = RunSharedWorkload(seed, Fidelity::kPacket, split_one);
  const WorkloadResult flow = RunSharedWorkload(seed, Fidelity::kFlow, split_one);
  // The split demoted the flow-mode delivery stream; it re-promoted after the
  // membership settled.
  EXPECT_GT(flow.flow_demotions, 0);
  EXPECT_GT(flow.flow_promotions, flow.flow_demotions);
  ExpectEquivalent(packet, flow, "shared group with VCR split");
}

// ---- purity: default config never leaves the per-packet model ---------------

TEST(FidelityPurityTest, DefaultConfigStaysPerPacket) {
  const uint64_t seed = SweepSeed(1996);
  InstallationConfig config;
  config.seed = seed;
  // Default MsuParams: fidelity.default_mode == kPacket.
  ASSERT_EQ(config.msu.fidelity.default_mode, Fidelity::kPacket);
  const WorkloadResult packet = RunWorkload(seed, Fidelity::kPacket, 1, 4);
  EXPECT_EQ(packet.flow_chunks, 0);
  EXPECT_EQ(packet.flow_packets, 0);
  EXPECT_EQ(packet.flow_promotions, 0);
}

}  // namespace
}  // namespace calliope
