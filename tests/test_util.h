// Shared helpers for driving coroutine-based components from gtest bodies.
#ifndef CALLIOPE_TESTS_TEST_UTIL_H_
#define CALLIOPE_TESTS_TEST_UTIL_H_

#include <functional>
#include <optional>
#include <utility>

#include "src/sim/co.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace calliope {

// Runs the simulation in small steps until `pred` holds or `timeout` of
// simulated time passes. Returns the final predicate value.
inline bool RunUntil(Simulator& sim, const std::function<bool()>& pred, SimTime timeout,
                     SimTime step = SimTime::Millis(10)) {
  const SimTime deadline = sim.Now() + timeout;
  while (!pred() && sim.Now() < deadline) {
    sim.RunFor(step);
  }
  return pred();
}

// Spawns a Co<T> and captures its result when it completes.
template <typename T>
struct CoResult {
  std::optional<T> value;
  bool done() const { return value.has_value(); }
};

template <typename T>
Task Collect(Co<T> co, CoResult<T>* out) {
  out->value.emplace(co_await std::move(co));
}

inline Task Detach(Co<void> co) { co_await std::move(co); }

}  // namespace calliope

#endif  // CALLIOPE_TESTS_TEST_UTIL_H_
