// Shared helpers for driving coroutine-based components from gtest bodies,
// plus the TestCluster fixture used by the system-level suites
// (integration_test, failover_test, chaos_test).
#ifndef CALLIOPE_TESTS_TEST_UTIL_H_
#define CALLIOPE_TESTS_TEST_UTIL_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "src/calliope/calliope.h"
#include "src/sim/co.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace calliope {

// Runs the simulation in small steps until `pred` holds or `timeout` of
// simulated time passes. Returns the final predicate value.
inline bool RunUntil(Simulator& sim, const std::function<bool()>& pred, SimTime timeout,
                     SimTime step = SimTime::Millis(10)) {
  const SimTime deadline = sim.Now() + timeout;
  while (!pred() && sim.Now() < deadline) {
    sim.RunFor(step);
  }
  return pred();
}

// Spawns a Co<T> and captures its result when it completes.
template <typename T>
struct CoResult {
  std::optional<T> value;
  bool done() const { return value.has_value(); }
};

template <typename T>
Task Collect(Co<T> co, CoResult<T>* out) {
  out->value.emplace(co_await std::move(co));
}

inline Task Detach(Co<void> co) { co_await std::move(co); }

// ---- client-driving helpers -------------------------------------------------
// Each helper spawns the client coroutine and pumps the simulation until it
// completes (or a generous simulated-time budget runs out).

inline Status ConnectClient(Simulator& sim, CalliopeClient& client,
                            const std::string& customer = "bob",
                            const std::string& credential = "bob-key") {
  CoResult<Status> connected;
  Collect(client.Connect(customer, credential), &connected);
  if (!RunUntil(sim, [&] { return connected.done(); }, SimTime::Seconds(5))) {
    return DeadlineExceededError("connect timed out");
  }
  return *connected.value;
}

inline Result<ClientDisplayPort*> RegisterClientPort(Simulator& sim, CalliopeClient& client,
                                                     const std::string& name,
                                                     const std::string& type_name) {
  CoResult<Result<ClientDisplayPort*>> registered;
  Collect(client.RegisterPort(name, type_name), &registered);
  if (!RunUntil(sim, [&] { return registered.done(); }, SimTime::Seconds(5))) {
    return DeadlineExceededError("port registration timed out");
  }
  return *registered.value;
}

// Registers `port` (if the client does not already have it) and plays
// `content` on it.
inline Result<CalliopeClient::StartResult> PlayOn(Simulator& sim, CalliopeClient& client,
                                                  const std::string& content,
                                                  const std::string& port,
                                                  const std::string& port_type = "mpeg1") {
  if (client.FindPort(port) == nullptr) {
    auto registered = RegisterClientPort(sim, client, port, port_type);
    if (!registered.ok()) {
      return registered.status();
    }
  }
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play(content, port), &play);
  if (!RunUntil(sim, [&] { return play.done(); }, SimTime::Seconds(5))) {
    return DeadlineExceededError("play timed out");
  }
  return *play.value;
}

// Registers `port` (if absent) and starts recording `content` through it.
inline Result<CalliopeClient::StartResult> RecordOn(Simulator& sim, CalliopeClient& client,
                                                    const std::string& content,
                                                    const std::string& type_name,
                                                    const std::string& port,
                                                    SimTime estimated_length) {
  if (client.FindPort(port) == nullptr) {
    auto registered = RegisterClientPort(sim, client, port, type_name);
    if (!registered.ok()) {
      return registered.status();
    }
  }
  CoResult<Result<CalliopeClient::StartResult>> record;
  Collect(client.Record(content, type_name, port, estimated_length), &record);
  if (!RunUntil(sim, [&] { return record.done(); }, SimTime::Seconds(5))) {
    return DeadlineExceededError("record timed out");
  }
  return *record.value;
}

inline Status VcrOp(Simulator& sim, CalliopeClient& client, GroupId group, VcrCommand::Op op,
                    SimTime seek_to = SimTime()) {
  CoResult<Status> done;
  Collect(client.Vcr(group, op, seek_to), &done);
  if (!RunUntil(sim, [&] { return done.done(); }, SimTime::Seconds(10))) {
    return DeadlineExceededError("vcr command timed out");
  }
  return *done.value;
}

inline Status QuitGroup(Simulator& sim, CalliopeClient& client, GroupId group) {
  return VcrOp(sim, client, group, VcrCommand::Op::kQuit);
}

inline bool WaitForTermination(Simulator& sim, CalliopeClient& client, GroupId group,
                               SimTime timeout) {
  return RunUntil(sim, [&] { return client.GroupTerminated(group); }, timeout);
}

// ---- cluster fixture --------------------------------------------------------

// Owns an Installation and provides the bringup sequence the system tests
// all share: construct, Boot, attach connected clients. Accessors mirror
// Installation's so call sites read the same either way.
class TestCluster {
 public:
  TestCluster() : calliope_(InstallationConfig()) {}
  explicit TestCluster(InstallationConfig config) : calliope_(std::move(config)) {}

  Installation& installation() { return calliope_; }
  Simulator& sim() { return calliope_.sim(); }
  Network& network() { return calliope_.network(); }
  Coordinator& coordinator() { return calliope_.coordinator(); }
  Msu& msu(size_t i) { return calliope_.msu(i); }
  size_t msu_count() const { return calliope_.msu_count(); }

  Status Boot(SimTime timeout = SimTime::Seconds(30)) { return calliope_.Boot(timeout); }

  // Adds a client host and opens a session on it.
  Result<CalliopeClient*> AddConnectedClient(const std::string& node_name,
                                             const std::string& customer = "bob",
                                             const std::string& credential = "bob-key") {
    CalliopeClient& client = calliope_.AddClient(node_name);
    const Status connected = ConnectClient(sim(), client, customer, credential);
    if (!connected.ok()) {
      return connected;
    }
    return &client;
  }

  // True once the Coordinator tracks no active streams and no queued
  // requests — the cluster is quiescent.
  bool Idle() {
    return coordinator().active_stream_count() == 0 &&
           coordinator().pending_request_count() == 0;
  }
  bool WaitForIdle(SimTime timeout) {
    return RunUntil(sim(), [this] { return Idle(); }, timeout);
  }

 private:
  Installation calliope_;
};

}  // namespace calliope

#endif  // CALLIOPE_TESTS_TEST_UTIL_H_
