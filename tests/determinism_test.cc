// Determinism and configuration-variant tests: a run is a pure function of
// its configuration and seed, and the §2 design options behave as documented.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/calliope/calliope.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

// ctest registers seeded variants of this binary (see tests/CMakeLists.txt);
// the env var lets one binary cover the whole seed sweep.
uint64_t SweepSeed(uint64_t fallback) {
  const char* env = std::getenv("CALLIOPE_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

struct RunOutcome {
  int64_t packets = 0;
  int64_t events = 0;
  SimTime max_late;
  bool operator==(const RunOutcome&) const = default;
};

RunOutcome PlayWorkload(uint64_t seed, bool elevator = false) {
  InstallationConfig config;
  config.seed = seed;
  config.msu.elevator_scheduling = elevator;
  Installation calliope(config);
  EXPECT_TRUE(calliope.Boot().ok());
  EXPECT_TRUE(calliope.LoadMpegMovie("m0", SimTime::Seconds(60), 0, false).ok());
  EXPECT_TRUE(calliope.LoadMpegMovie("m1", SimTime::Seconds(60), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  for (int i = 0; i < 6; ++i) {
    CoResult<Result<ClientDisplayPort*>> port;
    Collect(client.RegisterPort("tv" + std::to_string(i), "mpeg1"), &port);
    RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
    CoResult<Result<CalliopeClient::StartResult>> play;
    Collect(client.Play(i % 2 == 0 ? "m0" : "m1", "tv" + std::to_string(i)), &play);
    RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5));
  }
  calliope.sim().RunFor(SimTime::Seconds(20));

  RunOutcome outcome;
  outcome.packets = calliope.msu(0).AggregateLateness().total_count();
  outcome.events = calliope.sim().events_fired();
  outcome.max_late = calliope.msu(0).AggregateLateness().MaxRecorded();
  return outcome;
}

TEST(DeterminismTest, IdenticalSeedsGiveIdenticalRuns) {
  const uint64_t seed = SweepSeed(1234);
  const RunOutcome a = PlayWorkload(seed);
  const RunOutcome b = PlayWorkload(seed);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.packets, 1000);
}

TEST(DeterminismTest, DifferentSeedsDiffer) {
  const uint64_t seed = SweepSeed(1);
  const RunOutcome a = PlayWorkload(seed);
  const RunOutcome b = PlayWorkload(seed + 1);
  // Event counts almost surely differ (different rotational latencies).
  EXPECT_NE(a.events, b.events);
}

TEST(ConfigVariantTest, ElevatorOptionRuns) {
  // §2.3.3's optional disk-head scheduling plugs into the MSU end to end.
  const RunOutcome elevator = PlayWorkload(7, /*elevator=*/true);
  EXPECT_GT(elevator.packets, 1000);
}

TEST(ConfigVariantTest, InstallationWithoutIntraLanStillWorks) {
  // "a Calliope installation could eliminate the intra-server network and
  // use the multimedia delivery network to carry both intra-server and
  // client-server traffic."
  InstallationConfig config;
  config.network.use_intra_lan = false;
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(30), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(play.value->ok());
  calliope.sim().RunFor(SimTime::Seconds(5));
  EXPECT_GT(client.FindPort("tv")->packets_received(), 100);
  // Control traffic rode the delivery network: the intra segment is silent.
  EXPECT_EQ(calliope.network().segment_bytes(Segment::kIntra).count(), 0);
  EXPECT_GT(calliope.network().segment_bytes(Segment::kDelivery).count(), 0);
}

TEST(ConfigVariantTest, ColocatedCoordinatorServesStreams) {
  // "For very small installations, the Coordinator and MSU software may run
  // on the same machine."
  InstallationConfig config;
  config.colocate_coordinator = true;
  Installation calliope(config);
  EXPECT_EQ(calliope.coordinator_host(), "msu0");
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(30), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  ASSERT_TRUE(connected.value->ok()) << connected.value->ToString();
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(play.value->ok()) << play.value->status().ToString();
  calliope.sim().RunFor(SimTime::Seconds(5));
  EXPECT_GT(client.FindPort("tv")->packets_received(), 180);
}

}  // namespace
}  // namespace calliope
