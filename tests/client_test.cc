// Tests for the client library pieces: the playout buffer model and network
// fault injection effects on delivery statistics.
#include <gtest/gtest.h>

#include "src/calliope/calliope.h"
#include "src/client/playout_buffer.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

TEST(PlayoutBufferTest, OnTimeStreamPlaysCleanly) {
  PlayoutBuffer buffer(Bytes::KiB(200), SimTime::Millis(500));
  // Packets arrive exactly on their media schedule.
  for (int i = 0; i < 100; ++i) {
    buffer.OnArrival(SimTime::Millis(20 * i), SimTime::Millis(20 * i), Bytes(4096));
  }
  EXPECT_EQ(buffer.packets(), 100);
  EXPECT_EQ(buffer.glitches(), 0);
  EXPECT_EQ(buffer.overflow_drops(), 0);
  // Steady occupancy ~ prebuffer worth of data: 500 ms / 20 ms * 4 KB.
  EXPECT_NEAR(static_cast<double>(buffer.max_occupancy().count()), 25 * 4096, 2 * 4096);
}

TEST(PlayoutBufferTest, LatePacketIsGlitch) {
  PlayoutBuffer buffer(Bytes::KiB(200), SimTime::Millis(100));
  buffer.OnArrival(SimTime::Millis(0), SimTime::Millis(0), Bytes(1000));
  // Media time 20 ms plays at wall 120 ms; arriving at 500 ms is too late.
  buffer.OnArrival(SimTime::Millis(500), SimTime::Millis(20), Bytes(1000));
  EXPECT_EQ(buffer.glitches(), 1);
  // But a packet for much later media time is still fine.
  buffer.OnArrival(SimTime::Millis(510), SimTime::Millis(600), Bytes(1000));
  EXPECT_EQ(buffer.glitches(), 1);
}

TEST(PlayoutBufferTest, EarlyBurstOverflows) {
  PlayoutBuffer buffer(Bytes(10000), SimTime::Millis(10));
  // The first packet anchors the playout clock...
  buffer.OnArrival(SimTime::Millis(0), SimTime::Millis(0), Bytes(1000));
  // ...then a burst for much-later media time lands all at once: only the
  // first ~9 KB fit, the rest is discarded ("data that arrives too early
  // will overflow the buffer").
  for (int i = 0; i < 20; ++i) {
    buffer.OnArrival(SimTime::Millis(5), SimTime::Millis(1000 + i), Bytes(1000));
  }
  EXPECT_GT(buffer.overflow_drops(), 5);
  EXPECT_LE(buffer.max_occupancy().count(), 10000);
}

TEST(PlayoutBufferTest, ResetStartsNewEpoch) {
  PlayoutBuffer buffer(Bytes::KiB(100), SimTime::Millis(100));
  buffer.OnArrival(SimTime::Millis(0), SimTime::Millis(0), Bytes(1000));
  buffer.Reset();
  // After a seek the media clock restarts at a new origin without glitches.
  buffer.OnArrival(SimTime::Seconds(10), SimTime::Seconds(300), Bytes(1000));
  buffer.OnArrival(SimTime::Seconds(10) + SimTime::Millis(20),
                   SimTime::Seconds(300) + SimTime::Millis(20), Bytes(1000));
  EXPECT_EQ(buffer.glitches(), 0);
}

TEST(PlayoutBufferTest, ForStreamHalfFillRule) {
  const PlayoutBuffer buffer = PlayoutBuffer::ForStream(Bytes::KiB(200), DataRate::MegabitsPerSec(1.5));
  EXPECT_NEAR(buffer.prebuffer().seconds(), 0.546, 0.01);
}

TEST(FaultInjectionTest, UdpLossDropsMediaButControlSurvives) {
  InstallationConfig config;
  config.network.udp_loss_rate = 0.10;
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());  // TCP control is unaffected by UDP loss
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(60), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(play.value->ok());
  calliope.sim().RunFor(SimTime::Seconds(20));

  const int64_t sent = calliope.msu(0).AggregateLateness().total_count();
  const int64_t received = client.FindPort("tv")->packets_received();
  EXPECT_GT(calliope.network().udp_dropped(), 0);
  EXPECT_NEAR(static_cast<double>(received) / static_cast<double>(sent), 0.90, 0.04);
}

TEST(FaultInjectionTest, NetworkJitterShowsUpInArrivalLateness) {
  auto max_lateness = [](SimTime jitter) {
    InstallationConfig config;
    config.network.udp_jitter_max = jitter;
    Installation calliope(config);
    EXPECT_TRUE(calliope.Boot().ok());
    EXPECT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(30), 0, false).ok());
    CalliopeClient& client = calliope.AddClient("c");
    CoResult<Status> connected;
    Collect(client.Connect("bob", "bob-key"), &connected);
    RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
    CoResult<Result<ClientDisplayPort*>> port;
    Collect(client.RegisterPort("tv", "mpeg1"), &port);
    RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
    CoResult<Result<CalliopeClient::StartResult>> play;
    Collect(client.Play("movie", "tv"), &play);
    RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5));
    calliope.sim().RunFor(SimTime::Seconds(10));
    return client.FindPort("tv")->arrival_lateness().MaxRecorded();
  };
  const SimTime clean = max_lateness(SimTime());
  const SimTime jittery = max_lateness(SimTime::Millis(300));
  EXPECT_GT(jittery, clean + SimTime::Millis(100));
}

}  // namespace
}  // namespace calliope
