// Unit tests for the structural ClusterReport diff (src/obs/report_diff):
// exact matching by default, per-field tolerances, missing-entry detection in
// both directions, and metric-prefix ignore lists.
#include "src/obs/report_diff.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/report.h"

namespace calliope {
namespace {

StreamQosReport MakeStream(int64_t id) {
  StreamQosReport stream;
  stream.stream_id = id;
  stream.group_id = id * 10;
  stream.msu = "msu0";
  stream.disk = 0;
  stream.file = "m0.mpg";
  stream.recording = false;
  stream.finished = true;
  stream.packets_sent = 1000;
  stream.packets_late = 3;
  stream.p50_lateness_us = 4000;
  stream.p99_lateness_us = 9000;
  stream.max_lateness_us = 9900;
  return stream;
}

PortQosReport MakePort(const std::string& client, const std::string& port) {
  PortQosReport out;
  out.client = client;
  out.port = port;
  out.packets_received = 1000;
  out.out_of_order = 0;
  out.glitches = 0;
  out.max_gap_us = 12000;
  return out;
}

ClusterReport MakeReport() {
  ClusterReport report;
  report.streams.push_back(MakeStream(1));
  report.streams.push_back(MakeStream(2));
  report.ports.push_back(MakePort("c", "tv0"));
  report.metrics.counters["msu.msu0.packets_sent"] = 2000;
  report.metrics.gauges["msu.msu0.buffers_free"] = 40;
  MetricsSnapshot::HistogramStats& lateness = report.metrics.histograms["msu.msu0.lateness_us"];
  lateness.count = 2000;
  lateness.max = 9900;
  lateness.p50 = 4000;
  lateness.p99 = 9000;
  return report;
}

TEST(ReportDiffTest, IdenticalReportsMatch) {
  const ClusterReport a = MakeReport();
  const ClusterReport b = MakeReport();
  const ReportDiff diff = DiffClusterReports(a, b);
  EXPECT_TRUE(diff.empty()) << diff.ToText();
  EXPECT_EQ(diff.ToText(), "reports match\n");
}

TEST(ReportDiffTest, ExactFieldsIgnoreTolerances) {
  // Identity fields (msu, disk, flags) never get tolerance slack, even when
  // every tolerance is generous.
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  b.streams[0].msu = "msu1";
  b.streams[1].disk = 2;
  ReportDiffOptions options;
  options.packets = {1000000, 1.0};
  options.lateness_us = {1000000, 1.0};
  options.metric_default = {1000000, 1.0};
  const ReportDiff diff = DiffClusterReports(a, b, options);
  ASSERT_EQ(diff.entries.size(), 2u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "streams[1].msu");
  EXPECT_EQ(diff.entries[1].field, "streams[2].disk");
}

TEST(ReportDiffTest, ToleranceIsAbsPlusRel) {
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  b.streams[0].p99_lateness_us = a.streams[0].p99_lateness_us + 500;

  // Zero tolerance: mismatch reported with both values.
  ReportDiff diff = DiffClusterReports(a, b);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "streams[1].p99_lateness_us");
  EXPECT_EQ(diff.entries[0].lhs, 9000);
  EXPECT_EQ(diff.entries[0].rhs, 9500);

  // abs alone covers it.
  ReportDiffOptions abs_only;
  abs_only.lateness_us = {500, 0.0};
  EXPECT_TRUE(DiffClusterReports(a, b, abs_only).empty());

  // rel alone covers it: 500 <= 0.06 * 9500.
  ReportDiffOptions rel_only;
  rel_only.lateness_us = {0, 0.06};
  EXPECT_TRUE(DiffClusterReports(a, b, rel_only).empty());

  // Just below the needed budget still fails.
  ReportDiffOptions tight;
  tight.lateness_us = {499, 0.0};
  EXPECT_FALSE(DiffClusterReports(a, b, tight).empty());
}

TEST(ReportDiffTest, LatePacketsToleranceIsIndependent) {
  // packets_late gets its own tolerance (cross-fidelity comparisons loosen it
  // without letting packets_sent drift); unset, it follows `packets`.
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  b.streams[0].packets_late = a.streams[0].packets_late + 40;
  ReportDiffOptions options;
  EXPECT_FALSE(DiffClusterReports(a, b, options).empty());
  options.late_packets = ReportDiffOptions::Tolerance(40, 0.0);
  EXPECT_TRUE(DiffClusterReports(a, b, options).empty());

  // ...and it does not slacken packets_sent.
  b.streams[0].packets_sent = a.streams[0].packets_sent + 1;
  const ReportDiff diff = DiffClusterReports(a, b, options);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "streams[1].packets_sent");
}

TEST(ReportDiffTest, MaxLatenessToleranceIsIndependent) {
  // max_lateness_us gets its own budget (one wire-queueing collision moves
  // the max by a frame time); unset, it follows `lateness_us`, and setting it
  // never loosens p50/p99.
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  b.streams[0].max_lateness_us = a.streams[0].max_lateness_us + 6000;
  ReportDiffOptions options;
  options.lateness_us = {500, 0.0};
  EXPECT_FALSE(DiffClusterReports(a, b, options).empty());
  options.max_lateness_us = ReportDiffOptions::Tolerance(6000, 0.0);
  EXPECT_TRUE(DiffClusterReports(a, b, options).empty());

  b.streams[0].p99_lateness_us = a.streams[0].p99_lateness_us + 6000;
  const ReportDiff diff = DiffClusterReports(a, b, options);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "streams[1].p99_lateness_us");
}

TEST(ReportDiffTest, NegativeDeltaConsumesTheSameBudget) {
  // Tolerances are symmetric: rhs falling *below* lhs by more than abs+rel is
  // just as much a divergence as rising above it — a budget can bound drift,
  // never mask it.
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  b.ports[0].max_gap_us = a.ports[0].max_gap_us - 3000;
  ReportDiffOptions options;
  options.gap_us = {2999, 0.0};
  ReportDiff diff = DiffClusterReports(a, b, options);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "ports[c/tv0].max_gap_us");
  EXPECT_EQ(diff.entries[0].lhs, 12000);
  EXPECT_EQ(diff.entries[0].rhs, 9000);
  options.gap_us = {3000, 0.0};
  EXPECT_TRUE(DiffClusterReports(a, b, options).empty());

  // A generous gap budget does not spill into the ordering fields: with the
  // packet tolerance at its exact default, a single out-of-order arrival
  // (the fan-out's per-member sequence contract) still surfaces.
  b.ports[0].out_of_order = 1;
  options.gap_us = {1000000, 1.0};
  diff = DiffClusterReports(a, b, options);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "ports[c/tv0].out_of_order");
}

TEST(ReportDiffTest, MissingEntriesReportedBothDirections) {
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  b.streams.pop_back();                       // stream 2 only in lhs
  a.ports.clear();                            // port only in rhs
  b.metrics.counters["coord.only_in_rhs"] = 1;
  const ReportDiff diff = DiffClusterReports(a, b);
  ASSERT_EQ(diff.entries.size(), 3u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "streams[2]");
  EXPECT_EQ(diff.entries[0].note, "missing in rhs");
  EXPECT_EQ(diff.entries[1].field, "ports[c/tv0]");
  EXPECT_EQ(diff.entries[1].note, "missing in lhs");
  EXPECT_EQ(diff.entries[2].field, "counters.coord.only_in_rhs");
  EXPECT_EQ(diff.entries[2].note, "missing in lhs");
}

TEST(ReportDiffTest, IgnorePrefixesSkipMetricsOnly) {
  // Flow-mode runs carry sim.flow.* counters their per-packet twin lacks;
  // the ignore list silences exactly those, including value mismatches.
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  a.metrics.counters["sim.flow.chunks"] = 120;
  b.metrics.counters["sim.flow.chunks"] = 0;
  a.metrics.counters["sim.flow.promotions"] = 4;
  ReportDiff diff = DiffClusterReports(a, b);
  EXPECT_EQ(diff.entries.size(), 2u) << diff.ToText();

  ReportDiffOptions options;
  options.ignore_metric_prefixes = {"sim.flow."};
  diff = DiffClusterReports(a, b, options);
  EXPECT_TRUE(diff.empty()) << diff.ToText();
}

TEST(ReportDiffTest, CompareMetricsOffDiffsStreamsAndPortsOnly) {
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  b.metrics.counters["msu.msu0.packets_sent"] = 999999;
  b.metrics.histograms.erase("msu.msu0.lateness_us");
  ReportDiffOptions options;
  options.compare_metrics = false;
  EXPECT_TRUE(DiffClusterReports(a, b, options).empty());
  EXPECT_FALSE(DiffClusterReports(a, b).empty());
}

TimelineReport MakeTimeline() {
  TimelineReport timeline;
  timeline.window_us = 500000;
  timeline.windows = 2;
  QosWindowRow row;
  row.window = 0;
  row.end_us = 500000;
  row.packets = 800;
  row.late_packets = 2;
  row.lateness_p50_us = 3000;
  row.lateness_p99_us = 8000;
  row.lateness_max_us = 9000;
  row.max_gap_us = 40000;
  row.pending_depth = 1;
  row.cache_hits = 10;
  row.cache_misses = 5;
  timeline.qos.push_back(row);
  row.window = 1;
  row.end_us = 1000000;
  timeline.qos.push_back(row);
  SloBreachReport slo;
  slo.name = "lateness-p99";
  slo.threshold = 25000;
  slo.min_breach_windows = 2;
  slo.windows_evaluated = 2;
  slo.breach_windows = 2;
  slo.breach_episodes = 1;
  slo.first_breach_us = 500000;
  slo.last_breach_us = 1000000;
  slo.worst_window = 1;
  slo.worst_value = 31000;
  slo.breached_us = 1000000;
  timeline.slos.push_back(slo);
  return timeline;
}

TEST(ReportDiffTest, TimelinePresenceMismatchIsReported) {
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  a.timeline = MakeTimeline();
  const ReportDiff diff = DiffClusterReports(a, b);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "timeline");
  EXPECT_EQ(diff.entries[0].note, "missing in rhs");

  // compare_timeline=false silences even the presence mismatch.
  ReportDiffOptions options;
  options.compare_timeline = false;
  EXPECT_TRUE(DiffClusterReports(a, b, options).empty());
}

TEST(ReportDiffTest, TimelineTolerancesBudgetValuesNotStructure) {
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  a.timeline = MakeTimeline();
  b.timeline = MakeTimeline();

  // Zero-tolerance default is byte-exact (the chaos equal-seed contract).
  EXPECT_TRUE(DiffClusterReports(a, b).empty());

  // A value drift beyond the budget surfaces; within it, matches. The
  // negative-tolerance regression: a budget one µs short still fails.
  b.timeline->qos[1].lateness_p99_us += 700;
  b.timeline->slos[0].last_breach_us += 400;
  ReportDiff diff = DiffClusterReports(a, b);
  ASSERT_EQ(diff.entries.size(), 2u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "timeline.qos[1].lateness_p99_us");
  EXPECT_EQ(diff.entries[1].field, "timeline.slos[lateness-p99].last_breach_us");
  ReportDiffOptions tight;
  tight.timeline_us = {699, 0.0};
  diff = DiffClusterReports(a, b, tight);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "timeline.qos[1].lateness_p99_us");
  ReportDiffOptions enough;
  enough.timeline_us = {700, 0.0};
  EXPECT_TRUE(DiffClusterReports(a, b, enough).empty());

  // Counts use their own budget, and µs slack never spills into them.
  b.timeline->qos[0].packets += 5;
  diff = DiffClusterReports(a, b, enough);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "timeline.qos[0].packets");
  enough.timeline_counts = {5, 0.0};
  EXPECT_TRUE(DiffClusterReports(a, b, enough).empty());

  // Structure stays exact no matter how generous the budgets are: window
  // geometry and SLO identity never get slack.
  b.timeline->windows = 3;
  b.timeline->slos[0].threshold = 99;
  enough.timeline_counts = {1000000, 1.0};
  enough.timeline_us = {1000000, 1.0};
  diff = DiffClusterReports(a, b, enough);
  ASSERT_EQ(diff.entries.size(), 2u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "timeline.windows");
  EXPECT_EQ(diff.entries[1].field, "timeline.slos[lateness-p99].threshold");
}

TEST(ReportDiffTest, TimelineSlosMatchedByName) {
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  a.timeline = MakeTimeline();
  b.timeline = MakeTimeline();
  b.timeline->slos[0].name = "renamed";
  const ReportDiff diff = DiffClusterReports(a, b);
  ASSERT_EQ(diff.entries.size(), 2u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "timeline.slos[lateness-p99]");
  EXPECT_EQ(diff.entries[0].note, "missing in rhs");
  EXPECT_EQ(diff.entries[1].field, "timeline.slos[renamed]");
  EXPECT_EQ(diff.entries[1].note, "missing in lhs");
}

TEST(ReportDiffTest, HistogramStatsCompared) {
  ClusterReport a = MakeReport();
  ClusterReport b = MakeReport();
  b.metrics.histograms["msu.msu0.lateness_us"].p99 += 250;
  ReportDiff diff = DiffClusterReports(a, b);
  ASSERT_EQ(diff.entries.size(), 1u) << diff.ToText();
  EXPECT_EQ(diff.entries[0].field, "histograms.msu.msu0.lateness_us.p99");

  ReportDiffOptions options;
  options.metric_default = {250, 0.0};
  EXPECT_TRUE(DiffClusterReports(a, b, options).empty());
}

}  // namespace
}  // namespace calliope
