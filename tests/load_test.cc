// Overload-control suite (DESIGN §5.9): the deterministic workload
// generator, the bounded/deadlined pending queue, admission-class priority,
// and the SLO-driven saturation governor.
//
//   * schedule generation is a pure function of the config (equal seeds,
//     equal bytes);
//   * queued requests expire after their queue deadline with an explicit
//     client notification (regression for the unbounded-wait bug — this part
//     is on by default, independent of the class machinery);
//   * with traffic control on, freed capacity goes to interactive requests
//     before bulk ones;
//   * the chaos composition (workload generator x random fault plan) yields
//     byte-identical ClusterReports per seed (CALLIOPE_CHAOS_SEED sweep);
//   * the acceptance scenario: offered load at ~2x capacity with shedding
//     keeps interactive sessions served on time and sheds only lower
//     classes, with explicit notices; the same seed without shedding shows
//     the pending-depth SLO breaching.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/load/workload.h"
#include "src/obs/report_diff.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("CALLIOPE_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

std::string ScheduleToString(const std::vector<SessionPlan>& schedule) {
  std::string out;
  for (const SessionPlan& plan : schedule) {
    out += SessionKindName(plan.kind);
    out += " t=" + plan.start.ToString() + " title=" + std::to_string(plan.title) +
           " host=" + std::to_string(plan.client_host) + " hold=" + plan.hold.ToString() +
           " ops=" + std::to_string(plan.ops_seed) + "\n";
  }
  return out;
}

// ---- schedule generation ----------------------------------------------------

TEST(LoadTest, ScheduleIsPureFunctionOfConfig) {
  WorkloadConfig config;
  config.seed = 42;
  config.phases = {WorkloadPhase(SimTime::Seconds(20), 2.0)};
  const std::vector<SessionPlan> a = BuildWorkloadSchedule(config);
  const std::vector<SessionPlan> b = BuildWorkloadSchedule(config);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(ScheduleToString(a), ScheduleToString(b));

  config.seed = 43;
  const std::vector<SessionPlan> c = BuildWorkloadSchedule(config);
  EXPECT_NE(ScheduleToString(a), ScheduleToString(c));

  // Every arrival lands inside the schedule horizon, in time order.
  const SimTime horizon = WorkloadHorizon(config);
  SimTime last;
  for (const SessionPlan& plan : c) {
    EXPECT_LT(plan.start, horizon);
    EXPECT_GE(plan.start, last);
    last = plan.start;
  }
}

TEST(LoadTest, PhasesShapeTheArrivalRate) {
  WorkloadConfig config;
  config.seed = 7;
  config.phases = FlashCrowdPhases(/*base=*/0.5, /*spike=*/8.0, SimTime::Seconds(10),
                                   SimTime::Seconds(5), SimTime::Seconds(10));
  const std::vector<SessionPlan> schedule = BuildWorkloadSchedule(config);
  int before = 0;
  int burst = 0;
  int after = 0;
  for (const SessionPlan& plan : schedule) {
    if (plan.start < SimTime::Seconds(10)) {
      ++before;
    } else if (plan.start < SimTime::Seconds(15)) {
      ++burst;
    } else {
      ++after;
    }
  }
  // The 5 s burst at 16x the base rate dominates both 10 s shoulders.
  EXPECT_GT(burst, before + after);

  // A diurnal day has a quiet trough and a busy peak.
  WorkloadConfig diurnal;
  diurnal.seed = 7;
  diurnal.phases = DiurnalPhases(/*trough=*/0.2, /*peak=*/6.0, SimTime::Seconds(40));
  int trough_arrivals = 0;
  int peak_arrivals = 0;
  for (const SessionPlan& plan : BuildWorkloadSchedule(diurnal)) {
    if (plan.start < SimTime::Seconds(10)) {
      ++trough_arrivals;
    } else if (plan.start >= SimTime::Seconds(20) && plan.start < SimTime::Seconds(30)) {
      ++peak_arrivals;
    }
  }
  EXPECT_GT(peak_arrivals, trough_arrivals);
}

TEST(LoadTest, SessionKindsMapToAdmissionClasses) {
  EXPECT_EQ(ClassForSession(SessionPlan::Kind::kSurfer), AdmissionClass::kInteractive);
  EXPECT_EQ(ClassForSession(SessionPlan::Kind::kViewer), AdmissionClass::kStandard);
  EXPECT_EQ(ClassForSession(SessionPlan::Kind::kArchive), AdmissionClass::kBulk);
  EXPECT_EQ(ClassForSession(SessionPlan::Kind::kRecorder), AdmissionClass::kBulk);
}

// ---- queue deadlines (on by default; regression for the unbounded wait) -----

TEST(LoadTest, QueuedRequestExpiresAfterDeadlineWithExplicitNotice) {
  InstallationConfig config;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {1};
  // One MPEG-1 viewer fits; the second queues.
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  config.coordinator.pending_deadline = SimTime::Seconds(5);
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(
      cluster.installation().LoadMpegMovie("m0", SimTime::Seconds(60), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto first = PlayOn(cluster.sim(), **client, "m0", "tv0");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->queued);
  auto second = PlayOn(cluster.sim(), **client, "m0", "tv1");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->queued);
  EXPECT_EQ(cluster.coordinator().pending_request_count(), 1u);

  // Nothing frees up; the queue deadline must fire, not wait forever.
  cluster.sim().RunFor(SimTime::Seconds(6));
  EXPECT_EQ(cluster.coordinator().pending_request_count(), 0u);
  EXPECT_EQ(cluster.coordinator().requests_expired(), 1);
  EXPECT_EQ(cluster.installation().metrics().counter("coord.requests.expired").value(), 1);
  // The client was told explicitly — no silent starvation.
  EXPECT_TRUE((*client)->GroupTerminated(second->group));
  EXPECT_NE((*client)->GroupFailure(second->group).find("deadline"), std::string::npos)
      << (*client)->GroupFailure(second->group);
  // The first viewer is untouched.
  EXPECT_FALSE((*client)->GroupTerminated(first->group));
}

TEST(LoadTest, QueuedRequestSurvivesWellInsideDeadline) {
  InstallationConfig config;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  // Default (generous) deadline: a queued request must still be waiting
  // after a capacity blip shorter than the deadline, and must start once
  // capacity frees.
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(
      cluster.installation().LoadMpegMovie("m0", SimTime::Seconds(20), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto first = PlayOn(cluster.sim(), **client, "m0", "tv0");
  ASSERT_TRUE(first.ok());
  auto second = PlayOn(cluster.sim(), **client, "m0", "tv1");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->queued);

  cluster.sim().RunFor(SimTime::Seconds(3));
  EXPECT_EQ(cluster.coordinator().requests_expired(), 0);
  EXPECT_EQ(cluster.coordinator().pending_request_count(), 1u);

  ASSERT_TRUE(QuitGroup(cluster.sim(), **client, first->group).ok());
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(10)));
  EXPECT_EQ(cluster.coordinator().requests_expired(), 0);
  EXPECT_FALSE((*client)->GroupTerminated(second->group));
}

// ---- class priority ---------------------------------------------------------

TEST(LoadTest, FreedCapacityGoesToInteractiveBeforeBulk) {
  InstallationConfig config;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  config.coordinator.traffic.enabled = true;
  config.coordinator.traffic.interactive_deadline = SimTime::Seconds(60);
  config.coordinator.traffic.bulk_deadline = SimTime::Seconds(60);
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(
      cluster.installation().LoadMpegMovie("m0", SimTime::Seconds(60), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto holder = PlayOn(cluster.sim(), **client, "m0", "tv0");
  ASSERT_TRUE(holder.ok());
  EXPECT_FALSE(holder->queued);

  // Bulk queues first, interactive second: FIFO would hand the freed slot to
  // bulk; class priority must hand it to the surfer.
  ASSERT_TRUE(RegisterClientPort(cluster.sim(), **client, "tv1", "mpeg1").ok());
  ASSERT_TRUE(RegisterClientPort(cluster.sim(), **client, "tv2", "mpeg1").ok());
  CoResult<Result<CalliopeClient::StartResult>> bulk_play;
  Collect((*client)->Play("m0", "tv1", AdmissionClass::kBulk), &bulk_play);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return bulk_play.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(bulk_play.value->ok());
  EXPECT_TRUE((*bulk_play.value)->queued);
  CoResult<Result<CalliopeClient::StartResult>> surf_play;
  Collect((*client)->Play("m0", "tv2", AdmissionClass::kInteractive), &surf_play);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return surf_play.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(surf_play.value->ok());
  EXPECT_TRUE((*surf_play.value)->queued);
  EXPECT_EQ(cluster.coordinator().pending_count_for(AdmissionClass::kBulk), 1u);
  EXPECT_EQ(cluster.coordinator().pending_count_for(AdmissionClass::kInteractive), 1u);

  ASSERT_TRUE(QuitGroup(cluster.sim(), **client, holder->group).ok());
  // Exactly one slot frees: the interactive request must take it.
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         ClientDisplayPort* port = (*client)->FindPort("tv2");
                         return port != nullptr && port->packets_received() > 0;
                       },
                       SimTime::Seconds(10)));
  EXPECT_EQ(cluster.coordinator().pending_count_for(AdmissionClass::kBulk), 1u);
  EXPECT_EQ(cluster.coordinator().pending_count_for(AdmissionClass::kInteractive), 0u);
  ClientDisplayPort* bulk_port = (*client)->FindPort("tv1");
  ASSERT_NE(bulk_port, nullptr);
  EXPECT_EQ(bulk_port->packets_received(), 0);
}

TEST(LoadTest, FullClassQueueRejectsNewestExplicitly) {
  InstallationConfig config;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  config.coordinator.traffic.enabled = true;
  config.coordinator.traffic.bulk_queue_cap = 1;
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(
      cluster.installation().LoadMpegMovie("m0", SimTime::Seconds(60), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto holder = PlayOn(cluster.sim(), **client, "m0", "tv0");
  ASSERT_TRUE(holder.ok());

  ASSERT_TRUE(RegisterClientPort(cluster.sim(), **client, "tv1", "mpeg1").ok());
  ASSERT_TRUE(RegisterClientPort(cluster.sim(), **client, "tv2", "mpeg1").ok());
  CoResult<Result<CalliopeClient::StartResult>> queued;
  Collect((*client)->Play("m0", "tv1", AdmissionClass::kBulk), &queued);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return queued.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(queued.value->ok());
  EXPECT_TRUE((*queued.value)->queued);

  // The bulk queue (cap 1) is full: the next bulk request is refused at
  // submit, not silently parked.
  CoResult<Result<CalliopeClient::StartResult>> overflow;
  Collect((*client)->Play("m0", "tv2", AdmissionClass::kBulk), &overflow);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return overflow.done(); }, SimTime::Seconds(5)));
  EXPECT_FALSE(overflow.value->ok());
  EXPECT_EQ(cluster.coordinator().pending_count_for(AdmissionClass::kBulk), 1u);
  EXPECT_GE(
      cluster.installation().metrics().counter("coord.admission.bulk.shed").value(), 1);
}

// ---- chaos composition: workload generator x random faults ------------------

struct LoadChaosResult {
  LoadChaosResult() = default;

  std::string schedule;
  std::string report;
  ClusterReport cluster_report;
  WorkloadStats stats;
};

LoadChaosResult RunLoadChaos(uint64_t seed) {
  LoadChaosResult result;
  InstallationConfig config;
  config.seed = seed;
  config.msu_count = 2;
  config.sampler.period = SimTime::Millis(250);
  SloSpec depth;
  depth.name = "queue-depth";
  depth.signal = SloSpec::Signal::kPendingDepth;
  depth.threshold = 4;
  depth.min_breach_windows = 2;
  config.slos.push_back(depth);
  config.coordinator.traffic.enabled = true;
  TestCluster cluster(config);
  EXPECT_TRUE(cluster.Boot().ok());

  WorkloadConfig workload;
  workload.seed = seed;
  workload.titles = 3;
  workload.archive_titles = 1;
  workload.client_hosts = 2;
  workload.phases = {WorkloadPhase(SimTime::Seconds(8), 1.5)};
  workload.viewer_hold_mean = SimTime::Seconds(3);
  workload.surfer_hold_mean = SimTime::Seconds(2);
  workload.recording_length = SimTime::Seconds(2);
  workload.ready_timeout = SimTime::Seconds(15);
  WorkloadDriver driver(cluster.installation(), workload);
  result.schedule = ScheduleToString(driver.schedule());
  EXPECT_TRUE(driver.Prepare().ok());

  FaultPlanOptions options;
  options.msu_nodes = {"msu0", "msu1"};
  options.horizon = SimTime::Seconds(12);
  options.include_coordinator_restart = false;  // sessions need not re-open
  FaultPlan plan = FaultPlan::Random(seed, options);
  EXPECT_TRUE(cluster.installation().ApplyFaultPlan(plan).ok());

  driver.Start();
  EXPECT_TRUE(RunUntil(cluster.sim(), [&] { return driver.done(); }, SimTime::Seconds(90)));
  EXPECT_TRUE(cluster.WaitForIdle(SimTime::Seconds(60)));
  EXPECT_EQ(driver.stats().arrivals, static_cast<int64_t>(driver.schedule().size()));
  EXPECT_EQ(driver.stats().finished, driver.stats().arrivals);

  result.cluster_report = cluster.installation().BuildClusterReport();
  result.report = result.cluster_report.ToJson();
  result.stats = driver.stats();
  return result;
}

TEST(LoadTest, ChaosWorkloadIsByteIdenticalPerSeed) {
  const uint64_t seed = ChaosSeed();
  const LoadChaosResult a = RunLoadChaos(seed);
  const LoadChaosResult b = RunLoadChaos(seed);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.report, b.report)
      << DiffClusterReports(a.cluster_report, b.cluster_report).ToText();
  EXPECT_GT(a.stats.started, 0);
}

// ---- the acceptance scenario: ~2x capacity, shed on vs off ------------------

struct SaturationResult {
  SaturationResult() = default;

  std::string report;
  int64_t interactive_shed = 0;
  int64_t standard_shed = 0;
  int64_t bulk_shed = 0;
  int64_t shed_rejected = 0;
  int64_t shed_episodes = 0;
  int64_t breach_episodes = 0;  // pending-depth SLO
  int64_t worst_depth = 0;
  int64_t interactive_started = 0;
  int64_t interactive_refused = 0;
  int64_t lower_refused = 0;
  int64_t explicit_failures = 0;
  int64_t interactive_worst_p99_us = 0;
  bool timed_out = false;
};

SaturationResult RunSaturation(uint64_t seed, bool shedding) {
  SaturationResult result;
  InstallationConfig config;
  config.seed = seed;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {1};
  // Five concurrent MPEG-1 viewers fit on the single disk.
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(1.0);
  config.sampler.period = SimTime::Millis(250);
  SloSpec depth;
  depth.name = "queue-depth";
  depth.signal = SloSpec::Signal::kPendingDepth;
  depth.threshold = 3;
  depth.min_breach_windows = 2;
  config.slos.push_back(depth);
  SloSpec lateness;
  lateness.name = "lateness-p99";
  lateness.signal = SloSpec::Signal::kLatenessP99;
  lateness.threshold = SimTime::Millis(20).micros();
  lateness.min_breach_windows = 2;
  config.slos.push_back(lateness);
  if (shedding) {
    config.coordinator.traffic.enabled = true;
    // Queue deadlines stay out of the way so the governor's shedding (not
    // expiry) is what bounds the backlog.
    config.coordinator.traffic.interactive_deadline = SimTime::Seconds(120);
    config.coordinator.traffic.standard_deadline = SimTime::Seconds(120);
    config.coordinator.traffic.bulk_deadline = SimTime::Seconds(120);
  }
  TestCluster cluster(config);
  EXPECT_TRUE(cluster.Boot().ok());

  // Offered load ~2x capacity: ~1.7 arrivals/s x ~6 s mean hold ~= 10
  // concurrent stream-equivalents against 5 slots.
  WorkloadConfig workload;
  workload.seed = seed;
  workload.titles = 3;
  workload.archive_titles = 1;
  workload.client_hosts = 3;
  workload.phases = {WorkloadPhase(SimTime::Seconds(18), 1.7)};
  workload.viewer_hold_mean = SimTime::Seconds(6);
  workload.surfer_hold_mean = SimTime::Seconds(4);
  workload.recording_length = SimTime::Seconds(2);
  workload.ready_timeout = SimTime::Seconds(25);
  WorkloadDriver driver(cluster.installation(), workload);
  EXPECT_TRUE(driver.Prepare().ok());
  driver.Start();
  result.timed_out =
      !RunUntil(cluster.sim(), [&] { return driver.done(); }, SimTime::Seconds(120));
  EXPECT_TRUE(cluster.WaitForIdle(SimTime::Seconds(120)));

  MetricsRegistry& metrics = cluster.installation().metrics();
  if (shedding) {
    result.interactive_shed = metrics.counter("coord.admission.interactive.shed").value();
    result.standard_shed = metrics.counter("coord.admission.standard.shed").value();
    result.bulk_shed = metrics.counter("coord.admission.bulk.shed").value();
    result.shed_rejected = metrics.counter("coord.shed.rejected").value();
    result.shed_episodes = metrics.counter("coord.shed.episodes").value();
  }
  const ClusterReport report = cluster.installation().BuildClusterReport();
  result.report = report.ToJson();
  if (report.timeline.has_value()) {
    for (const SloBreachReport& slo : report.timeline->slos) {
      if (slo.name == "queue-depth") {
        result.breach_episodes = slo.breach_episodes;
        result.worst_depth = slo.worst_value;
      }
    }
  }
  const WorkloadStats& stats = driver.stats();
  const size_t interactive = static_cast<size_t>(AdmissionClass::kInteractive);
  const size_t standard = static_cast<size_t>(AdmissionClass::kStandard);
  const size_t bulk = static_cast<size_t>(AdmissionClass::kBulk);
  result.interactive_started = stats.started_by_class[interactive];
  result.interactive_refused = stats.refused_by_class[interactive];
  result.lower_refused = stats.refused_by_class[standard] + stats.refused_by_class[bulk];
  result.explicit_failures = stats.failed + stats.rejected;
  for (GroupId group : driver.started_groups(AdmissionClass::kInteractive)) {
    for (const StreamQosReport& stream : report.streams) {
      if (stream.group_id == group && stream.p99_lateness_us > result.interactive_worst_p99_us) {
        result.interactive_worst_p99_us = stream.p99_lateness_us;
      }
    }
  }
  return result;
}

TEST(LoadTest, SaturationShedsOnlyLowerClassesAndHoldsInteractiveSlo) {
  const uint64_t seed = ChaosSeed();
  const SaturationResult on = RunSaturation(seed, /*shedding=*/true);
  EXPECT_FALSE(on.timed_out);
  // The governor engaged, and interactive traffic was never its victim.
  EXPECT_GE(on.shed_episodes, 1);
  EXPECT_EQ(on.interactive_shed, 0);
  EXPECT_GT(on.standard_shed + on.bulk_shed, 0);
  EXPECT_EQ(on.interactive_refused, 0);
  EXPECT_GT(on.lower_refused, 0);
  // Every turned-away viewer heard about it explicitly.
  EXPECT_EQ(on.explicit_failures, on.lower_refused + on.interactive_refused);
  // Interactive sessions were served on schedule (within the lateness SLO).
  EXPECT_GT(on.interactive_started, 0);
  EXPECT_LE(on.interactive_worst_p99_us, SimTime::Millis(20).micros());

  // Same seed, shedding off: the backlog grows unchecked and the
  // pending-depth SLO breaches.
  const SaturationResult off = RunSaturation(seed, /*shedding=*/false);
  EXPECT_GE(off.breach_episodes, 1);
  EXPECT_GT(off.worst_depth, 3);
  EXPECT_GT(off.worst_depth, on.worst_depth);

  // Both modes are deterministic: same seed, same bytes.
  const SaturationResult on2 = RunSaturation(seed, /*shedding=*/true);
  EXPECT_EQ(on.report, on2.report);
  const SaturationResult off2 = RunSaturation(seed, /*shedding=*/false);
  EXPECT_EQ(off.report, off2.report);
}

}  // namespace
}  // namespace calliope
