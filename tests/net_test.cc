// Tests for the simulated network substrate: routing, UDP, TCP conns, RPC,
// ordering, failure detection.
#include <gtest/gtest.h>

#include "src/net/network.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

struct TwoNodes {
  Simulator sim;
  Network network{sim};
  Machine machine_a;
  Machine machine_b;
  NetNode* a;
  NetNode* b;

  TwoNodes()
      : machine_a(sim, DisklessParams(), "a"), machine_b(sim, DisklessParams(), "b") {
    a = network.AddNode("a", &machine_a, /*on_intra=*/true);
    b = network.AddNode("b", &machine_b, /*on_intra=*/true);
  }

  static MachineParams DisklessParams() {
    MachineParams params = MicronP66();
    params.disks_per_hba.clear();
    return params;
  }
};

TEST(NetworkTest, RoutePrefersIntraForServerPairs) {
  TwoNodes env;
  auto segment = env.network.Route("a", "b");
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ(*segment, Segment::kIntra);
}

TEST(NetworkTest, UdpDatagramArrives) {
  TwoNodes env;
  int received = 0;
  ASSERT_TRUE(env.b->BindUdp(9000, [&](const Datagram& d) {
                     ++received;
                     EXPECT_EQ(d.src_node, "a");
                   })
                  .ok());
  Detach([](TwoNodes& e) -> Co<void> {
    co_await e.a->SendUdp("b", 9000, Bytes(1000), nullptr);
  }(env));
  env.sim.RunFor(SimTime::Seconds(1));
  EXPECT_EQ(received, 1);
}

Task EchoServerSetup(TwoNodes& env, int* accepted) {
  (void)env.b->ListenTcp(7000, [accepted](TcpConn* conn) {
    ++*accepted;
    conn->set_request_handler([](const MessageBody& body) -> Co<MessageBody> {
      const auto* req = std::get_if<OpenSessionRequest>(&body);
      SimpleResponse response;
      response.ok = req != nullptr;
      response.error = req != nullptr ? req->customer : "bad";
      co_return MessageBody{std::move(response)};
    });
  });
  co_return;
}

TEST(NetworkTest, TcpCallRoundTrip) {
  TwoNodes env;
  int accepted = 0;
  EchoServerSetup(env, &accepted);

  CoResult<Result<TcpConn*>> conn;
  Collect(env.a->ConnectTcp("b", 7000), &conn);
  ASSERT_TRUE(RunUntil(env.sim, [&] { return conn.done(); }, SimTime::Seconds(2)));
  ASSERT_TRUE(conn.value->ok()) << conn.value->status().ToString();
  EXPECT_EQ(accepted, 1);

  CoResult<Result<Envelope>> reply;
  Collect((*conn.value).value()->Call(MessageBody{OpenSessionRequest{"carol", "key"}}), &reply);
  ASSERT_TRUE(RunUntil(env.sim, [&] { return reply.done(); }, SimTime::Seconds(2)));
  ASSERT_TRUE(reply.value->ok()) << reply.value->status().ToString();
  const auto* response = std::get_if<SimpleResponse>(&(*reply.value)->body);
  ASSERT_NE(response, nullptr);
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(response->error, "carol");
}

TEST(NetworkTest, ManySequentialCallsComplete) {
  TwoNodes env;
  int accepted = 0;
  EchoServerSetup(env, &accepted);
  CoResult<Result<TcpConn*>> conn;
  Collect(env.a->ConnectTcp("b", 7000), &conn);
  ASSERT_TRUE(RunUntil(env.sim, [&] { return conn.done(); }, SimTime::Seconds(2)));
  ASSERT_TRUE(conn.value->ok());

  int completed = 0;
  Detach([](TcpConn* c, Simulator& sim, int* done) -> Co<void> {
    for (int i = 0; i < 50; ++i) {
      auto reply = co_await c->Call(MessageBody{OpenSessionRequest{"u" + std::to_string(i), ""}});
      if (reply.ok()) {
        ++*done;
      }
    }
  }((*conn.value).value(), env.sim, &completed));
  ASSERT_TRUE(RunUntil(env.sim, [&] { return completed == 50; }, SimTime::Seconds(30)));
}

TEST(NetworkTest, ConnectToMissingListenerRefused) {
  TwoNodes env;
  CoResult<Result<TcpConn*>> conn;
  Collect(env.a->ConnectTcp("b", 12345), &conn);
  ASSERT_TRUE(RunUntil(env.sim, [&] { return conn.done(); }, SimTime::Seconds(2)));
  EXPECT_FALSE(conn.value->ok());
  EXPECT_EQ(conn.value->status().code(), StatusCode::kUnavailable);
}

TEST(NetworkTest, CloseNotifiesPeer) {
  TwoNodes env;
  TcpConn* server_side = nullptr;
  bool server_closed = false;
  (void)env.b->ListenTcp(7000, [&](TcpConn* conn) {
    server_side = conn;
    conn->set_close_handler([&](TcpConn*) { server_closed = true; });
  });
  CoResult<Result<TcpConn*>> conn;
  Collect(env.a->ConnectTcp("b", 7000), &conn);
  ASSERT_TRUE(RunUntil(env.sim, [&] { return conn.done(); }, SimTime::Seconds(2)));
  ASSERT_TRUE(conn.value->ok());
  (*conn.value).value()->Close();
  ASSERT_TRUE(RunUntil(env.sim, [&] { return server_closed; }, SimTime::Seconds(2)));
  EXPECT_TRUE(server_side->closed());
}

TEST(NetworkTest, NodeCrashBreaksConnectionsAndFailsPendingCalls) {
  TwoNodes env;
  (void)env.b->ListenTcp(7000, [&](TcpConn* conn) {
    // Server never answers: requests hang until the crash.
    conn->set_receive_handler([](TcpConn*, const Envelope&) {});
  });
  CoResult<Result<TcpConn*>> conn;
  Collect(env.a->ConnectTcp("b", 7000), &conn);
  ASSERT_TRUE(RunUntil(env.sim, [&] { return conn.done(); }, SimTime::Seconds(2)));
  ASSERT_TRUE(conn.value->ok());
  bool client_saw_close = false;
  (*conn.value).value()->set_close_handler([&](TcpConn*) { client_saw_close = true; });

  CoResult<Result<Envelope>> reply;
  Collect((*conn.value).value()->Call(MessageBody{ListContentRequest{}}), &reply);
  env.sim.RunFor(SimTime::Millis(50));
  EXPECT_FALSE(reply.done());

  env.b->SetDown(true);
  ASSERT_TRUE(RunUntil(env.sim, [&] { return reply.done(); }, SimTime::Seconds(2)));
  EXPECT_FALSE(reply.value->ok());
  EXPECT_EQ(reply.value->status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(client_saw_close);
}

TEST(NetworkTest, CallTimesOut) {
  TwoNodes env;
  (void)env.b->ListenTcp(7000, [&](TcpConn* conn) {
    conn->set_receive_handler([](TcpConn*, const Envelope&) {});  // never respond
  });
  CoResult<Result<TcpConn*>> conn;
  Collect(env.a->ConnectTcp("b", 7000), &conn);
  ASSERT_TRUE(RunUntil(env.sim, [&] { return conn.done(); }, SimTime::Seconds(2)));
  CoResult<Result<Envelope>> reply;
  Collect((*conn.value).value()->Call(MessageBody{ListContentRequest{}}, SimTime::Seconds(1)), &reply);
  ASSERT_TRUE(RunUntil(env.sim, [&] { return reply.done(); }, SimTime::Seconds(5)));
  EXPECT_EQ(reply.value->status().code(), StatusCode::kDeadlineExceeded);
}

TEST(NetworkTest, SegmentTrafficAccounting) {
  TwoNodes env;
  (void)env.b->BindUdp(9000, [](const Datagram&) {});
  Detach([](TwoNodes& e) -> Co<void> {
    for (int i = 0; i < 10; ++i) {
      co_await e.a->SendUdp("b", 9000, Bytes(1000), nullptr);
    }
  }(env));
  env.sim.RunFor(SimTime::Seconds(1));
  EXPECT_GE(env.network.segment_bytes(Segment::kIntra).count(), 10 * 1000);
  EXPECT_EQ(env.network.segment_bytes(Segment::kDelivery).count(), 0);
}

}  // namespace
}  // namespace calliope
