// Unit and property tests for the Integrated B-tree (§2.2.1).
#include <gtest/gtest.h>

#include "src/ibtree/ibtree.h"
#include "src/media/sources.h"

namespace calliope {
namespace {

PacketSequence CbrPackets(SimTime duration) { return GenerateCbr(CbrSourceConfig{}, duration); }

IbTreeFile Build(const PacketSequence& packets) {
  IbTreeBuilder builder;
  for (const MediaPacket& packet : packets) {
    EXPECT_TRUE(builder.Add(packet).ok());
  }
  return builder.Finish();
}

TEST(IbTreeTest, EmptyFileHasNoPages) {
  IbTreeBuilder builder;
  IbTreeFile file = builder.Finish();
  EXPECT_EQ(file.page_count(), 0u);
  EXPECT_FALSE(file.Seek(SimTime()).ok());
}

TEST(IbTreeTest, SinglePacketFile) {
  IbTreeBuilder builder;
  MediaPacket packet;
  packet.delivery_offset = SimTime::Millis(5);
  packet.size = Bytes(1000);
  ASSERT_TRUE(builder.Add(packet).ok());
  IbTreeFile file = builder.Finish();
  EXPECT_EQ(file.page_count(), 1u);
  EXPECT_EQ(file.record_count(), 1);
  auto seek = file.Seek(SimTime::Millis(1));
  ASSERT_TRUE(seek.ok());
  EXPECT_EQ(seek->page_index, 0u);
  EXPECT_EQ(seek->record_index, 0u);
}

TEST(IbTreeTest, RejectsOutOfOrderPackets) {
  IbTreeBuilder builder;
  MediaPacket packet;
  packet.delivery_offset = SimTime::Millis(10);
  packet.size = Bytes(100);
  ASSERT_TRUE(builder.Add(packet).ok());
  packet.delivery_offset = SimTime::Millis(5);
  EXPECT_EQ(builder.Add(packet).code(), StatusCode::kInvalidArgument);
}

TEST(IbTreeTest, RejectsOversizedPacket) {
  IbTreeBuilder builder;
  MediaPacket packet;
  packet.size = kDataPageSize;  // cannot fit beside header + internal reserve
  EXPECT_EQ(builder.Add(packet).code(), StatusCode::kInvalidArgument);
}

TEST(IbTreeTest, PagesRespectCapacity) {
  IbTreeFile file = Build(CbrPackets(SimTime::Seconds(120)));
  ASSERT_GT(file.page_count(), 1u);
  for (size_t p = 0; p < file.page_count(); ++p) {
    EXPECT_LE(file.page(p).fill_bytes().count(), kDataPageSize.count());
  }
}

TEST(IbTreeTest, PacketsPerPageMatchPaperArithmetic) {
  // "a 256 KByte buffer contains only about one second of 1.5 Mbit/sec
  // MPEG-1 video" — about 63 four-KB packets per page.
  IbTreeFile file = Build(CbrPackets(SimTime::Seconds(60)));
  const DataPage& page = file.page(0);
  EXPECT_GE(page.records.size(), 60u);
  EXPECT_LE(page.records.size(), 66u);
  EXPECT_NEAR(page.last_offset().seconds() - page.first_offset().seconds(), 1.37, 0.15);
}

TEST(IbTreeTest, RecordsTotalPreserved) {
  const PacketSequence packets = CbrPackets(SimTime::Seconds(90));
  IbTreeFile file = Build(packets);
  EXPECT_EQ(file.record_count(), static_cast<int64_t>(packets.size()));
  EXPECT_EQ(file.total_payload(), TotalBytes(packets));
  EXPECT_EQ(file.duration(), packets.back().delivery_offset);
}

TEST(IbTreeTest, SequentialScanYieldsDeliveryOrder) {
  IbTreeFile file = Build(GenerateVbr(Graph2File(0), SimTime::Seconds(60)));
  SimTime last = SimTime::Nanos(-1);
  for (size_t p = 0; p < file.page_count(); ++p) {
    for (const MediaPacket& record : file.page(p).records) {
      EXPECT_GE(record.delivery_offset, last);
      last = record.delivery_offset;
    }
  }
}

TEST(IbTreeTest, InternalPageRoundTrip) {
  std::vector<InternalEntry> entries;
  for (int i = 0; i < 700; ++i) {
    entries.push_back(InternalEntry{i * 1000, i});
  }
  auto encoded = EncodeInternalPage(entries);
  EXPECT_EQ(encoded.size(), static_cast<size_t>(kInternalPageSize.count()));
  auto decoded = DecodeInternalPage(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*decoded)[i].first_offset_ns, entries[i].first_offset_ns);
    EXPECT_EQ((*decoded)[i].child_page, entries[i].child_page);
  }
}

TEST(IbTreeTest, CorruptInternalPageDetected) {
  std::vector<InternalEntry> entries = {{0, 0}, {100, 1}};
  auto encoded = EncodeInternalPage(entries);
  encoded[10] = static_cast<std::byte>(0xFF);
  auto decoded = DecodeInternalPage(encoded);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(IbTreeTest, TruncatedInternalPageDetected) {
  std::vector<InternalEntry> entries = {{0, 0}};
  auto encoded = EncodeInternalPage(entries);
  encoded.resize(8);
  EXPECT_FALSE(DecodeInternalPage(encoded).ok());
}

TEST(IbTreeTest, LargeFileGrowsTreeAndEmbedsInternalPages) {
  // A two-hour movie: ~5300 data pages => second-level tree, several
  // embedded internal pages, fraction near the paper's 0.1%.
  IbTreeFile file = Build(CbrPackets(SimTime::Seconds(7200)));
  EXPECT_GT(file.page_count(), 5000u);
  EXPECT_EQ(file.height(), 2);
  EXPECT_GE(file.internal_page_count(), 5u);
  EXPECT_LT(file.internal_page_fraction(), 0.0021);  // "0.1% of the data pages"
  EXPECT_GT(file.internal_page_fraction(), 0.0005);
}

TEST(IbTreeTest, SeekPastEndFails) {
  IbTreeFile file = Build(CbrPackets(SimTime::Seconds(10)));
  EXPECT_EQ(file.Seek(SimTime::Seconds(11)).status().code(), StatusCode::kNotFound);
}

TEST(IbTreeTest, SeekOnSmallFileTouchesNoInternalPages) {
  IbTreeFile file = Build(CbrPackets(SimTime::Seconds(60)));
  auto seek = file.Seek(SimTime::Seconds(30));
  ASSERT_TRUE(seek.ok());
  EXPECT_TRUE(seek->internal_pages_read.empty());  // root is cached in memory
}

TEST(IbTreeTest, SeekOnLargeFileReadsOneInternalPage) {
  IbTreeFile file = Build(CbrPackets(SimTime::Seconds(7200)));
  auto seek = file.Seek(SimTime::Seconds(3600));
  ASSERT_TRUE(seek.ok());
  EXPECT_EQ(seek->internal_pages_read.size(), 1u);
}

TEST(RecordTableTest, RoundTrip) {
  PacketSequence records = CbrPackets(SimTime::Seconds(2));
  records[3].flags = kPacketKeyframe | kPacketFrameStart;
  auto encoded = EncodeRecordTable(records);
  auto decoded = DecodeRecordTable(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*decoded)[i], records[i]) << i;
  }
}

TEST(RecordTableTest, DetectsBitFlipAndTruncation) {
  auto encoded = EncodeRecordTable(CbrPackets(SimTime::Seconds(1)));
  auto flipped = encoded;
  flipped[12] ^= std::byte{0x40};
  EXPECT_EQ(DecodeRecordTable(flipped).status().code(), StatusCode::kDataLoss);
  encoded.resize(encoded.size() / 2);
  EXPECT_EQ(DecodeRecordTable(encoded).status().code(), StatusCode::kDataLoss);
}

// Property: for a sweep of seek targets, the located record is the first one
// at or after the target, and its predecessor (if any) is strictly before.
class IbTreeSeekProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(IbTreeSeekProperty, SeekFindsFirstRecordAtOrAfterTarget) {
  static const IbTreeFile file = Build(CbrPackets(SimTime::Seconds(3600)));
  const SimTime target = SimTime::Millis(GetParam());
  auto seek = file.Seek(target);
  ASSERT_TRUE(seek.ok()) << target.ToString();
  const DataPage& page = file.page(seek->page_index);
  ASSERT_LT(seek->record_index, page.records.size());
  const MediaPacket& found = page.records[seek->record_index];
  EXPECT_GE(found.delivery_offset, target);
  if (seek->record_index > 0) {
    EXPECT_LT(page.records[seek->record_index - 1].delivery_offset, target);
  } else if (seek->page_index > 0) {
    // Find the previous page holding records.
    for (size_t p = seek->page_index; p-- > 0;) {
      if (!file.page(p).records.empty()) {
        EXPECT_LT(file.page(p).last_offset(), target);
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeekSweep, IbTreeSeekProperty,
                         ::testing::Values(0, 1, 17, 999, 10000, 59999, 600000, 1800000, 2345678,
                                           3599000, 3599900));

}  // namespace
}  // namespace calliope
