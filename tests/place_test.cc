// Unit tests for the placement/admission subsystem: the ResourceLedger's
// transactional accounting and the pluggable placement policies (§2.2).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/place/ledger.h"
#include "src/place/policy.h"

namespace calliope {
namespace {

constexpr int64_t kMiB = 1 << 20;

ResourceLedger TwoMsuLedger() {
  ResourceLedger ledger;
  ledger.RegisterMsu("msuA", 2, Bytes(100 * kMiB));
  ledger.RegisterMsu("msuB", 2, Bytes(100 * kMiB));
  return ledger;
}

PlacementSpec PlaySpec(DataRate rate, std::vector<PlacementCandidate> candidates) {
  PlacementSpec spec;
  spec.disk_budget = DataRate::MegabytesPerSec(2.0);
  ComponentSpec component;
  component.rate = rate;
  component.file_name = "movie.mpg";
  component.candidates = std::move(candidates);
  spec.components.push_back(std::move(component));
  return spec;
}

TEST(LedgerTest, ReserveCommitReleaseLifecycle) {
  ResourceLedger ledger = TwoMsuLedger();
  const DataRate rate = DataRate::MegabytesPerSec(0.5);

  auto txn = ledger.Reserve("msuA", {ResourceLedger::ReserveItem(0, rate, Bytes())});
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(ledger.DiskLoad("msuA", 0), rate);
  EXPECT_EQ(ledger.TotalReserved(), rate);

  txn->Commit(0, /*stream=*/7);
  EXPECT_EQ(ledger.outstanding_holds(), 1u);
  EXPECT_EQ(ledger.Find("msuA")->disks[0].streams, 1);
  EXPECT_TRUE(ledger.CheckInvariants().ok()) << ledger.CheckInvariants().ToString();

  // Destroying the committed Txn must not refund the hold.
  { ResourceLedger::Txn moved = std::move(txn).value(); }
  EXPECT_EQ(ledger.DiskLoad("msuA", 0), rate);

  EXPECT_TRUE(ledger.Release(7));
  EXPECT_EQ(ledger.DiskLoad("msuA", 0), DataRate());
  EXPECT_EQ(ledger.outstanding_holds(), 0u);
  EXPECT_EQ(ledger.Find("msuA")->disks[0].streams, 0);

  // Exactly-once: the second release is a no-op.
  EXPECT_FALSE(ledger.Release(7));
  EXPECT_EQ(ledger.DiskLoad("msuA", 0), DataRate());
  EXPECT_TRUE(ledger.CheckInvariants().ok()) << ledger.CheckInvariants().ToString();
}

TEST(LedgerTest, UncommittedTxnRollsBackOnDestruction) {
  ResourceLedger ledger = TwoMsuLedger();
  const DataRate rate = DataRate::MegabytesPerSec(0.5);
  {
    auto txn = ledger.Reserve(
        "msuA", {ResourceLedger::ReserveItem(0, rate, Bytes(10 * kMiB))});
    ASSERT_TRUE(txn.ok());
    EXPECT_EQ(ledger.DiskLoad("msuA", 0), rate);
    EXPECT_EQ(ledger.FreeSpace("msuA"), Bytes(90 * kMiB));
  }
  EXPECT_EQ(ledger.DiskLoad("msuA", 0), DataRate());
  EXPECT_EQ(ledger.FreeSpace("msuA"), Bytes(100 * kMiB));
}

TEST(LedgerTest, PartialCommitRefundsOnlyUncommittedItems) {
  ResourceLedger ledger = TwoMsuLedger();
  const DataRate rate = DataRate::MegabytesPerSec(0.5);
  {
    auto txn = ledger.Reserve("msuA", {ResourceLedger::ReserveItem(0, rate, Bytes()),
                                       ResourceLedger::ReserveItem(1, rate, Bytes())});
    ASSERT_TRUE(txn.ok());
    txn->Commit(0, /*stream=*/1);
  }
  EXPECT_EQ(ledger.DiskLoad("msuA", 0), rate);        // committed stream stays
  EXPECT_EQ(ledger.DiskLoad("msuA", 1), DataRate());  // uncommitted item refunded
  EXPECT_TRUE(ledger.Release(1));
}

TEST(LedgerTest, RecordingReleaseRefundsEstimateMinusBytesUsed) {
  ResourceLedger ledger = TwoMsuLedger();
  {
    auto txn = ledger.Reserve(
        "msuA", {ResourceLedger::ReserveItem(0, DataRate::MegabytesPerSec(0.5),
                                             Bytes(20 * kMiB))});
    ASSERT_TRUE(txn.ok());
    txn->Commit(0, /*stream=*/3);
  }
  EXPECT_EQ(ledger.FreeSpace("msuA"), Bytes(80 * kMiB));
  EXPECT_TRUE(ledger.Release(3, Bytes(5 * kMiB)));
  EXPECT_EQ(ledger.FreeSpace("msuA"), Bytes(95 * kMiB));  // only 5 MiB stays charged
}

TEST(LedgerTest, DownOrUnknownMsuCannotTakeReservations) {
  ResourceLedger ledger = TwoMsuLedger();
  ledger.MarkDown("msuA");
  EXPECT_FALSE(ledger.IsUp("msuA"));
  auto txn = ledger.Reserve(
      "msuA", {ResourceLedger::ReserveItem(0, DataRate::MegabytesPerSec(0.5), Bytes())});
  EXPECT_EQ(txn.status().code(), StatusCode::kUnavailable);
  auto unknown = ledger.Reserve(
      "nope", {ResourceLedger::ReserveItem(0, DataRate::MegabytesPerSec(0.5), Bytes())});
  EXPECT_EQ(unknown.status().code(), StatusCode::kUnavailable);
  auto bad_disk = ledger.Reserve(
      "msuB", {ResourceLedger::ReserveItem(9, DataRate::MegabytesPerSec(0.5), Bytes())});
  EXPECT_EQ(bad_disk.status().code(), StatusCode::kInvalidArgument);
}

TEST(LedgerTest, ReregistrationInvalidatesStaleHolds) {
  ResourceLedger ledger = TwoMsuLedger();
  const DataRate rate = DataRate::MegabytesPerSec(0.5);
  {
    auto txn = ledger.Reserve(
        "msuA", {ResourceLedger::ReserveItem(0, rate, Bytes(10 * kMiB))});
    ASSERT_TRUE(txn.ok());
    txn->Commit(0, /*stream=*/5);
  }
  // The MSU crashes and re-registers with fresh capacity numbers: the old
  // hold is gone, and releasing it later must not credit the fresh account.
  ledger.MarkDown("msuA");
  ledger.RegisterMsu("msuA", 2, Bytes(100 * kMiB));
  EXPECT_EQ(ledger.outstanding_holds(), 0u);
  EXPECT_FALSE(ledger.Release(5));
  EXPECT_EQ(ledger.FreeSpace("msuA"), Bytes(100 * kMiB));
  EXPECT_EQ(ledger.DiskLoad("msuA", 0), DataRate());
  EXPECT_TRUE(ledger.CheckInvariants().ok()) << ledger.CheckInvariants().ToString();
}

TEST(LedgerTest, CheckInvariantsHoldsAcrossMixedLifecycles) {
  // Drive the ledger through interleaved reservations, partial commits,
  // recording releases, and a re-registration; the internal-consistency
  // audit must pass at every step.
  ResourceLedger ledger = TwoMsuLedger();
  const DataRate rate = DataRate::MegabytesPerSec(0.4);
  {
    auto a = ledger.Reserve("msuA", {ResourceLedger::ReserveItem(0, rate, Bytes(8 * kMiB)),
                                     ResourceLedger::ReserveItem(1, rate, Bytes())});
    ASSERT_TRUE(a.ok());
    a->Commit(0, /*stream=*/10);  // the second item rolls back on destruction
    EXPECT_TRUE(ledger.CheckInvariants().ok());
  }
  EXPECT_TRUE(ledger.CheckInvariants().ok());
  {
    auto b = ledger.Reserve("msuB", {ResourceLedger::ReserveItem(1, rate, Bytes(4 * kMiB))});
    ASSERT_TRUE(b.ok());
    b->Commit(0, /*stream=*/11);
  }
  EXPECT_TRUE(ledger.CheckInvariants().ok());
  EXPECT_TRUE(ledger.Release(11, Bytes(1 * kMiB)));
  EXPECT_TRUE(ledger.CheckInvariants().ok());

  // Crash + fresh registration drops stream 10's now-stale hold; the audit
  // must accept the ledger before and after the (rejected) late release.
  ledger.MarkDown("msuA");
  ledger.RegisterMsu("msuA", 2, Bytes(100 * kMiB));
  EXPECT_TRUE(ledger.CheckInvariants().ok()) << ledger.CheckInvariants().ToString();
  EXPECT_FALSE(ledger.Release(10));
  EXPECT_TRUE(ledger.CheckInvariants().ok()) << ledger.CheckInvariants().ToString();
}

TEST(RegistryTest, BuiltinsAndUnknownNames) {
  const PlacementPolicyRegistry registry = PlacementPolicyRegistry::WithBuiltins();
  EXPECT_EQ(registry.names(),
            (std::vector<std::string>{"first-fit", "least-loaded", "power-of-two",
                                      "replica-aware"}));
  for (const std::string& name : registry.names()) {
    auto policy = registry.Instantiate(name, 1);
    ASSERT_TRUE(policy.ok());
    EXPECT_EQ(name, (*policy)->name());
  }
  EXPECT_EQ(registry.Instantiate("round-robin", 1).status().code(), StatusCode::kNotFound);
}

TEST(PolicyTest, LeastLoadedPicksLightestMsu) {
  ResourceLedger ledger = TwoMsuLedger();
  auto preload = ledger.Reserve(
      "msuA", {ResourceLedger::ReserveItem(0, DataRate::MegabytesPerSec(1.0), Bytes())});
  ASSERT_TRUE(preload.ok());
  preload->Commit(0, /*stream=*/1);

  auto policy = PlacementPolicyRegistry::WithBuiltins().Instantiate("least-loaded", 1);
  ASSERT_TRUE(policy.ok());
  const PlacementSpec spec =
      PlaySpec(DataRate::MegabytesPerSec(0.2), {PlacementCandidate("msuA", 0, "a.mpg"),
                                                PlacementCandidate("msuB", 0, "b.mpg")});
  auto placement = (*policy)->Place(spec, ledger);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->msu, "msuB");
  EXPECT_EQ(placement->files[0], "b.mpg");
}

TEST(PolicyTest, FirstFitPrefersNameOrderEvenWhenLoaded) {
  ResourceLedger ledger = TwoMsuLedger();
  auto preload = ledger.Reserve(
      "msuA", {ResourceLedger::ReserveItem(0, DataRate::MegabytesPerSec(1.0), Bytes())});
  ASSERT_TRUE(preload.ok());
  preload->Commit(0, /*stream=*/1);

  auto policy = PlacementPolicyRegistry::WithBuiltins().Instantiate("first-fit", 1);
  ASSERT_TRUE(policy.ok());
  const PlacementSpec spec =
      PlaySpec(DataRate::MegabytesPerSec(0.2), {PlacementCandidate("msuA", 0, "a.mpg"),
                                                PlacementCandidate("msuB", 0, "b.mpg")});
  auto placement = (*policy)->Place(spec, ledger);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->msu, "msuA");  // still has headroom, and sorts first
}

TEST(PolicyTest, ReplicaAwareSpreadsByCommittedStreamCount) {
  ResourceLedger ledger = TwoMsuLedger();
  // msuA already serves two committed streams at a *lower* total rate than
  // msuB's single heavy stream: stream-count spreading must still pick msuB.
  auto a = ledger.Reserve("msuA",
                          {ResourceLedger::ReserveItem(0, DataRate::MegabytesPerSec(0.1), Bytes()),
                           ResourceLedger::ReserveItem(1, DataRate::MegabytesPerSec(0.1), Bytes())});
  ASSERT_TRUE(a.ok());
  a->Commit(0, 1);
  a->Commit(1, 2);
  auto b = ledger.Reserve(
      "msuB", {ResourceLedger::ReserveItem(0, DataRate::MegabytesPerSec(1.0), Bytes())});
  ASSERT_TRUE(b.ok());
  b->Commit(0, 3);

  auto policy = PlacementPolicyRegistry::WithBuiltins().Instantiate("replica-aware", 1);
  ASSERT_TRUE(policy.ok());
  const PlacementSpec spec =
      PlaySpec(DataRate::MegabytesPerSec(0.2), {PlacementCandidate("msuA", 0, "a.mpg"),
                                                PlacementCandidate("msuB", 1, "b.mpg")});
  auto placement = (*policy)->Place(spec, ledger);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->msu, "msuB");
}

TEST(PolicyTest, PowerOfTwoIsDeterministicAndFeasible) {
  const PlacementPolicyRegistry registry = PlacementPolicyRegistry::WithBuiltins();
  std::vector<std::string> picks;
  for (int run = 0; run < 2; ++run) {
    ResourceLedger ledger = TwoMsuLedger();
    ledger.RegisterMsu("msuC", 2, Bytes(100 * kMiB));
    auto policy = registry.Instantiate("power-of-two", 42);
    ASSERT_TRUE(policy.ok());
    std::string sequence;
    for (int i = 0; i < 8; ++i) {
      const PlacementSpec spec = PlaySpec(DataRate::MegabytesPerSec(0.2),
                                          {PlacementCandidate("msuA", 0, "a.mpg"),
                                           PlacementCandidate("msuB", 0, "b.mpg"),
                                           PlacementCandidate("msuC", 0, "c.mpg")});
      auto placement = (*policy)->Place(spec, ledger);
      ASSERT_TRUE(placement.ok());
      sequence += placement->msu + ";";
      auto txn = ledger.Reserve(placement->msu,
                                {ResourceLedger::ReserveItem(placement->disks[0],
                                                             DataRate::MegabytesPerSec(0.2),
                                                             Bytes())});
      ASSERT_TRUE(txn.ok());
      txn->Commit(0, static_cast<StreamId>(100 + i));
    }
    picks.push_back(sequence);
  }
  EXPECT_EQ(picks[0], picks[1]);  // same seed, same decisions
}

TEST(PolicyTest, ExhaustedWhenNoCandidateHasHeadroom) {
  ResourceLedger ledger = TwoMsuLedger();
  const PlacementPolicyRegistry registry = PlacementPolicyRegistry::WithBuiltins();
  // Saturate every candidate disk to the budget.
  for (const std::string msu : {"msuA", "msuB"}) {
    auto txn = ledger.Reserve(
        msu, {ResourceLedger::ReserveItem(0, DataRate::MegabytesPerSec(2.0), Bytes())});
    ASSERT_TRUE(txn.ok());
    txn->Commit(0, msu == "msuA" ? 1 : 2);
  }
  const PlacementSpec spec =
      PlaySpec(DataRate::MegabytesPerSec(0.2), {PlacementCandidate("msuA", 0, "a.mpg"),
                                                PlacementCandidate("msuB", 0, "b.mpg")});
  for (const std::string& name : registry.names()) {
    auto policy = registry.Instantiate(name, 1);
    ASSERT_TRUE(policy.ok());
    auto placement = (*policy)->Place(spec, ledger);
    EXPECT_EQ(placement.status().code(), StatusCode::kResourceExhausted) << name;
  }
}

// Network-path admission: an MSU whose NIC budget would be oversubscribed is
// skipped even when its disks individually have headroom. msuA has a 4 Mbit/s
// NIC with 3 Mbit/s already committed on disk 0; a 1.5 Mbit/s play could fit
// disk 1's bandwidth budget but not the shared NIC, so every builtin policy
// must route it to msuB — and report exhaustion when msuA is the only copy.
TEST(PolicyTest, NicBudgetGatesAdmissionAcrossDisks) {
  ResourceLedger ledger;
  ledger.RegisterMsu("msuA", 2, Bytes(100 * kMiB), DataRate::MegabitsPerSec(4.0));
  ledger.RegisterMsu("msuB", 2, Bytes(100 * kMiB), DataRate::MegabitsPerSec(100.0));
  {
    auto txn = ledger.Reserve(
        "msuA", {ResourceLedger::ReserveItem(0, DataRate::MegabitsPerSec(3.0), Bytes())});
    ASSERT_TRUE(txn.ok());
    txn->Commit(0, /*stream=*/1);
  }

  const PlacementPolicyRegistry registry = PlacementPolicyRegistry::WithBuiltins();
  const PlacementSpec mirrored =
      PlaySpec(DataRate::MegabitsPerSec(1.5), {PlacementCandidate("msuA", 1, "a.mpg"),
                                               PlacementCandidate("msuB", 1, "b.mpg")});
  const PlacementSpec only_a =
      PlaySpec(DataRate::MegabitsPerSec(1.5), {PlacementCandidate("msuA", 1, "a.mpg")});
  for (const std::string& name : registry.names()) {
    auto policy = registry.Instantiate(name, 1);
    ASSERT_TRUE(policy.ok());
    auto placement = (*policy)->Place(mirrored, ledger);
    ASSERT_TRUE(placement.ok()) << name;
    EXPECT_EQ(placement->msu, "msuB") << name;

    auto saturated = (*policy)->Place(only_a, ledger);
    EXPECT_EQ(saturated.status().code(), StatusCode::kResourceExhausted) << name;
  }

  // A small stream still fits under msuA's remaining 1 Mbit/s of NIC budget.
  const PlacementSpec small =
      PlaySpec(DataRate::MegabitsPerSec(0.5), {PlacementCandidate("msuA", 1, "a.mpg")});
  auto policy = registry.Instantiate("first-fit", 1);
  ASSERT_TRUE(policy.ok());
  auto placement = (*policy)->Place(small, ledger);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->msu, "msuA");
}

}  // namespace
}  // namespace calliope
