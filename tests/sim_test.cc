#include <gtest/gtest.h>

#include <vector>

#include "src/sim/co.h"
#include "src/sim/condition.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace calliope {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(SimTime::Millis(20), [&] { order.push_back(2); });
  sim.ScheduleAt(SimTime::Millis(10), [&] { order.push_back(1); });
  sim.ScheduleAt(SimTime::Millis(30), [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), SimTime::Millis(30));
}

TEST(SimulatorTest, EqualTimesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(SimTime::Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadlineWhenQueueDrains) {
  Simulator sim;
  sim.ScheduleAt(SimTime::Millis(1), [] {});
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(sim.Now(), SimTime::Seconds(5));
}

TEST(SimulatorTest, RunUntilDoesNotFireLaterEvents) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(SimTime::Seconds(10), [&] { fired = true; });
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_FALSE(fired);
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventToken token = sim.ScheduleCancelableAt(SimTime::Millis(1), [&] { fired = true; });
  token.Cancel();
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StaleTokenCancelDoesNotKillSlotReuser) {
  // Cancellation slots recycle once their event fires; a stale token held
  // past that point sees a generation mismatch and must not cancel whatever
  // event reused the slot.
  Simulator sim;
  bool first_fired = false;
  bool second_fired = false;
  EventToken stale = sim.ScheduleCancelableAt(SimTime::Millis(1), [&] { first_fired = true; });
  sim.Run();
  EXPECT_TRUE(first_fired);
  EventToken reuser = sim.ScheduleCancelableAt(SimTime::Millis(2), [&] { second_fired = true; });
  stale.Cancel();
  sim.Run();
  EXPECT_TRUE(second_fired);
}

TEST(SimulatorTest, CancelTwiceViaCopyCountsOnce) {
  Simulator sim;
  bool fired = false;
  EventToken token = sim.ScheduleCancelableAt(SimTime::Millis(1), [&] { fired = true; });
  EventToken copy = token;
  token.Cancel();
  copy.Cancel();  // generation already bumped: a no-op, not a double count
  EXPECT_EQ(sim.cancelled_pending(), 1);
  sim.Run();
  EXPECT_FALSE(fired);
  // The cancelled event drained through the queue as a no-op and left the
  // pending count balanced.
  EXPECT_EQ(sim.cancelled_pending(), 0);
}

TEST(SimulatorTest, LazyPurgeSweepsCancelledBacklog) {
  // The schedule/cancel/reschedule timer pattern (flow-mode page sleeps)
  // parks cancelled events in the queue; once they dominate, the lazy purge
  // sweeps them without disturbing live events.
  Simulator sim;
  int fired = 0;
  std::vector<EventToken> tokens;
  tokens.reserve(100);
  for (int i = 0; i < 100; ++i) {
    tokens.push_back(
        sim.ScheduleCancelableAt(SimTime::Millis(10 + i), [&] { ++fired; }));
  }
  for (int i = 1; i < 100; ++i) {
    tokens[static_cast<size_t>(i)].Cancel();
  }
  // The sweep ran at least once mid-loop: far fewer than 99 still parked.
  EXPECT_LT(sim.cancelled_pending(), 99);
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.cancelled_pending(), 0);
}

TEST(SimulatorTest, NestedSchedulingFromCallback) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(SimTime::Millis(1), [&] {
    ++count;
    sim.ScheduleAfter(SimTime::Millis(1), [&] { ++count; });
  });
  sim.Run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), SimTime::Millis(2));
}

Task DelayTwice(Simulator& sim, std::vector<int64_t>& wakeups) {
  co_await sim.Delay(SimTime::Millis(5));
  wakeups.push_back(sim.Now().millis());
  co_await sim.Delay(SimTime::Millis(7));
  wakeups.push_back(sim.Now().millis());
}

TEST(TaskTest, DelayResumesAtRightTimes) {
  Simulator sim;
  std::vector<int64_t> wakeups;
  DelayTwice(sim, wakeups);
  sim.Run();
  EXPECT_EQ(wakeups, (std::vector<int64_t>{5, 12}));
}

Task WaitOnCondition(Simulator& sim, Condition& cond, int& wakes) {
  co_await cond.Wait();
  ++wakes;
  co_await cond.Wait();
  ++wakes;
}

TEST(ConditionTest, NotifyAllWakesEveryWaiterOnce) {
  Simulator sim;
  Condition cond(sim);
  int wakes = 0;
  WaitOnCondition(sim, cond, wakes);
  WaitOnCondition(sim, cond, wakes);
  sim.Run();
  EXPECT_EQ(wakes, 0);
  cond.NotifyAll();
  sim.Run();
  EXPECT_EQ(wakes, 2);  // each waiter woke once, re-waited
  cond.NotifyAll();
  sim.Run();
  EXPECT_EQ(wakes, 4);
}

TEST(ConditionTest, NotifyOneWakesSingleWaiter) {
  Simulator sim;
  Condition cond(sim);
  int wakes = 0;
  WaitOnCondition(sim, cond, wakes);
  WaitOnCondition(sim, cond, wakes);
  sim.Run();
  cond.NotifyOne();
  sim.Run();
  EXPECT_EQ(wakes, 1);
}

TEST(ConditionTest, DestroyingConditionWithWaitersDoesNotLeakOrCrash) {
  Simulator sim;
  Condition* cond = new Condition(sim);
  int wakes = 0;
  WaitOnCondition(sim, *cond, wakes);
  sim.Run();
  delete cond;  // parked frame destroyed here
  EXPECT_EQ(wakes, 0);
}

Task UseResource(Simulator& sim, Resource& res, SimTime service, std::vector<int64_t>& done) {
  co_await res.Use(service);
  done.push_back(sim.Now().millis());
}

TEST(ResourceTest, ServesFifoSerially) {
  Simulator sim;
  Resource res(sim, "r");
  std::vector<int64_t> done;
  UseResource(sim, res, SimTime::Millis(10), done);
  UseResource(sim, res, SimTime::Millis(5), done);
  UseResource(sim, res, SimTime::Millis(1), done);
  sim.Run();
  EXPECT_EQ(done, (std::vector<int64_t>{10, 15, 16}));
  EXPECT_EQ(res.completed(), 3);
}

TEST(ResourceTest, TracksUtilization) {
  Simulator sim;
  Resource res(sim, "r");
  res.Submit(SimTime::Millis(30), [] {});
  sim.RunUntil(SimTime::Millis(100));
  EXPECT_NEAR(res.Utilization(), 0.3, 1e-9);
  EXPECT_EQ(res.BusyTime(), SimTime::Millis(30));
}

TEST(ResourceTest, UtilizationCountsInProgressWork) {
  Simulator sim;
  Resource res(sim, "r");
  res.Submit(SimTime::Millis(100), [] {});
  sim.RunUntil(SimTime::Millis(50));
  EXPECT_NEAR(res.Utilization(), 1.0, 1e-9);
}

Task AcquireSem(Simulator& sim, Semaphore& sem, int& holders) {
  co_await sem.Acquire();
  ++holders;
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int holders = 0;
  AcquireSem(sim, sem, holders);
  AcquireSem(sim, sem, holders);
  AcquireSem(sim, sem, holders);
  sim.Run();
  EXPECT_EQ(holders, 2);
  sem.Release();
  sim.Run();
  EXPECT_EQ(holders, 3);
}

TEST(SemaphoreTest, ReleaseWithNoWaitersIncrementsCount) {
  Simulator sim;
  Semaphore sem(sim, 0);
  sem.Release();
  EXPECT_EQ(sem.count(), 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
}

Co<int> AddAfterDelay(Simulator& sim, int a, int b) {
  co_await sim.Delay(SimTime::Millis(3));
  co_return a + b;
}

Co<int> Doubler(Simulator& sim, int x) {
  const int sum = co_await AddAfterDelay(sim, x, x);
  co_return sum * 2;
}

Task RunCoChain(Simulator& sim, int& result) {
  result = co_await Doubler(sim, 10);
}

TEST(CoTest, NestedCoChainsPropagateValues) {
  Simulator sim;
  int result = 0;
  RunCoChain(sim, result);
  sim.Run();
  EXPECT_EQ(result, 40);
  EXPECT_EQ(sim.Now(), SimTime::Millis(3));
}

Co<void> SleepCo(Simulator& sim, SimTime d) { co_await sim.Delay(d); }

Task DeepChain(Simulator& sim, int& progress) {
  for (int i = 0; i < 100; ++i) {
    co_await SleepCo(sim, SimTime::Millis(1));
    ++progress;
  }
}

TEST(CoTest, AbandonedChainIsReclaimedBySimulatorTeardown) {
  int progress = 0;
  {
    Simulator sim;
    DeepChain(sim, progress);
    sim.RunUntil(SimTime::Millis(50));  // mid-flight: 50 iterations done
  }
  // Simulator destroyed with the chain parked; ASAN/valgrind would flag leaks.
  EXPECT_EQ(progress, 50);
}

TEST(CoTest, AbandonedResourceWaitersAreReclaimed) {
  std::vector<int64_t> done;
  {
    Simulator sim;
    Resource res(sim, "r");
    UseResource(sim, res, SimTime::Seconds(10), done);
    UseResource(sim, res, SimTime::Seconds(10), done);
    sim.RunUntil(SimTime::Seconds(1));
  }
  EXPECT_TRUE(done.empty());
}

}  // namespace
}  // namespace calliope
