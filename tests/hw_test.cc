// Property-level tests for the hardware models beyond the Table-1
// calibrations in hw_baseline_test.cc.
#include <gtest/gtest.h>

#include "src/hw/machine.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

MachineParams OneDisk() {
  MachineParams params = MicronP66();
  params.disks_per_hba = {1};
  return params;
}

TEST(DiskTest, SequentialReadSkipsPositioning) {
  Simulator sim;
  Machine machine(sim, OneDisk(), "m");
  SimTime first_done, second_done;
  [](Simulator* s, Disk* disk, SimTime* a, SimTime* b) -> Task {
    co_await disk->Read(Bytes(0), Bytes::KiB(256));
    *a = s->Now();
    co_await disk->Read(Bytes::KiB(256), Bytes::KiB(256));  // head already there
    *b = s->Now();
  }(&sim, &machine.disk(0), &first_done, &second_done);
  sim.Run();
  // First read seeks from cylinder 0... the request IS at cylinder 0, so
  // both are near pure transfer time (~51 ms + interrupt).
  EXPECT_LT(second_done - first_done, SimTime::Millis(56));
  EXPECT_GT(second_done - first_done, SimTime::Millis(48));
}

TEST(DiskTest, FarSeekCostsMoreThanNearSeek) {
  auto time_request = [](Bytes start_at, Bytes target) {
    Simulator sim;
    Machine machine(sim, OneDisk(), "m");
    SimTime elapsed;
    [](Simulator* s, Disk* disk, Bytes first, Bytes second, SimTime* out) -> Task {
      co_await disk->Read(first, Bytes::KiB(256));
      const SimTime start = s->Now();
      co_await disk->Read(second, Bytes::KiB(256));
      *out = s->Now() - start;
    }(&sim, &machine.disk(0), start_at, target, &elapsed);
    sim.Run();
    return elapsed;
  };
  const SimTime near = time_request(Bytes(0), Bytes::MiB(20));
  const SimTime far = time_request(Bytes(0), Bytes::GiB(1) + Bytes::MiB(800));
  EXPECT_GT(far, near + SimTime::Millis(4));
}

TEST(DiskTest, WritesAndReadsBothCounted) {
  Simulator sim;
  Machine machine(sim, OneDisk(), "m");
  [](Disk* disk) -> Task {
    co_await disk->Write(Bytes(0), Bytes::KiB(256));
    co_await disk->Read(Bytes(0), Bytes::KiB(256));
  }(&machine.disk(0));
  sim.Run();
  EXPECT_EQ(machine.disk(0).completed(), 2);
  EXPECT_EQ(machine.disk(0).bytes_transferred(), Bytes::KiB(512));
}

TEST(CpuTest, PortStallsScaleWithActiveHbas) {
  Simulator sim;
  Machine machine(sim, OneDisk(), "m");
  Cpu& cpu = machine.cpu();
  auto average_stall = [&](int ops, int samples) {
    SimTime total;
    for (int i = 0; i < samples; ++i) {
      total += cpu.PortIoStall(ops);
    }
    return SimTime(total.nanos() / samples);
  };
  const SimTime idle = average_stall(10, 200);
  cpu.HbaBecameActive();
  const SimTime one = average_stall(10, 200);
  cpu.HbaBecameActive();
  const SimTime two = average_stall(10, 200);
  cpu.HbaBecameIdle();
  cpu.HbaBecameIdle();
  EXPECT_LT(idle, SimTime::Micros(40));
  EXPECT_GT(one, idle * 5);
  EXPECT_GT(two, one * 3);
}

TEST(CpuTest, UtilizationTracksSubmittedWork) {
  Simulator sim;
  Machine machine(sim, OneDisk(), "m");
  machine.cpu().Submit(SimTime::Millis(250), 0, [] {});
  sim.RunUntil(SimTime::Seconds(1));
  EXPECT_NEAR(machine.cpu().Utilization(), 0.25, 0.01);
}

TEST(NicTest, WireThroughputBoundedByWireRate) {
  // A NIC with an artificially fast host path is still capped by the wire.
  Simulator sim;
  MachineParams params = OneDisk();
  params.cpu.udp_send_compute = SimTime::Nanos(1);
  params.memory.copy_rate = DataRate::MegabytesPerSec(100000);
  params.memory.read_rate = DataRate::MegabytesPerSec(100000);
  params.memory.write_rate = DataRate::MegabytesPerSec(100000);
  Machine machine(sim, params, "m");
  [](Nic* nic) -> Task {
    for (;;) {
      co_await nic->SendBlocking(Frame{Bytes::KiB(4)});
    }
  }(&machine.fddi());
  sim.RunFor(SimTime::Seconds(5));
  const double mbps = machine.fddi().bytes_sent().megabytes() / 5.0;
  EXPECT_LE(mbps, 12.6);  // 100 Mbit/s wire
  EXPECT_GT(mbps, 11.0);
}

TEST(NicTest, ReceivePathDeliversToSink) {
  Simulator sim;
  Machine machine(sim, OneDisk(), "m");
  int received = 0;
  machine.fddi().set_rx_sink([&](Frame frame) {
    ++received;
    EXPECT_EQ(frame.size, Bytes(500));
  });
  machine.fddi().DeliverFromWire(Frame{Bytes(500)});
  sim.Run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(machine.fddi().frames_received(), 1);
}

TEST(TimerTest, WakeupsLandOnTickBoundaries) {
  Simulator sim;
  CoarseTimer timer(sim);
  std::vector<int64_t> wakeups;
  [](Simulator* s, CoarseTimer* t, std::vector<int64_t>* out) -> Task {
    co_await t->WaitUntil(SimTime::Millis(13));
    out->push_back(s->Now().millis());
    co_await t->WaitUntil(SimTime::Millis(20));  // already at 20: no wait
    out->push_back(s->Now().millis());
    co_await t->WaitUntil(SimTime::Millis(15));  // past deadline: no wait
    out->push_back(s->Now().millis());
    co_await t->WaitUntil(SimTime::Millis(21));  // next boundary is 30
    out->push_back(s->Now().millis());
  }(&sim, &timer, &wakeups);
  sim.Run();
  EXPECT_EQ(wakeups, (std::vector<int64_t>{20, 20, 20, 30}));
}

TEST(MachineTest, DisksAttachToConfiguredHbas) {
  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = {2, 1};
  Machine machine(sim, params, "m");
  EXPECT_EQ(machine.disk_count(), 3u);
  EXPECT_EQ(machine.hba_count(), 2u);
}

// Property: random-read throughput falls as block size shrinks (seeks stop
// amortizing) — the §2.3.3 rationale for 256 KB blocks.
class BlockSizeProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(BlockSizeProperty, SmallerBlocksWasteBandwidth) {
  const Bytes block = Bytes::KiB(GetParam());
  Simulator sim;
  Machine machine(sim, OneDisk(), "m");
  [](Disk* disk, Bytes block_size) -> Task {
    Rng rng(11);
    const int64_t slots = disk->capacity() / block_size;
    for (;;) {
      co_await disk->Read(
          block_size * static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(slots))),
          block_size);
    }
  }(&machine.disk(0), block);
  sim.RunFor(SimTime::Seconds(30));
  const double mbps = machine.disk(0).bytes_transferred().megabytes() / 30.0;
  // Throughput grows monotonically with block size; spot-check the curve.
  if (GetParam() <= 16) {
    EXPECT_LT(mbps, 1.6);
  } else if (GetParam() >= 256) {
    EXPECT_GT(mbps, 3.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeProperty, ::testing::Values(8, 16, 64, 256, 512));

}  // namespace
}  // namespace calliope
