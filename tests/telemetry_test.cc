// Continuous-telemetry suite (DESIGN.md §5.7): MetricsSampler semantics,
// declarative SLO monitors, and the acceptance scenario — a seeded disk
// slowdown must be visible as a lateness-SLO breach whose first/last breach
// timestamps are bracketed by the fault window, while the identical seed
// without the fault reports zero breach windows; both runs byte-identical
// across repeats, and a no-sampler run's ClusterReport byte-identical to an
// installation that never heard of the feature.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "src/obs/report_diff.h"
#include "src/obs/sampler.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

// Pumps the simulator until the sampler has closed `target` windows. The
// tick self-reschedules, so the event queue is never empty before the
// max_windows cap.
void RunWindows(Simulator& sim, MetricsSampler& sampler, int64_t target) {
  while (sampler.windows() < target && sim.Step()) {
  }
  ASSERT_EQ(sampler.windows(), target);
}

TEST(MetricsSamplerTest, CountersDeltaGaugesSampleHistogramsRow) {
  Simulator sim;
  MetricsRegistry metrics;
  SamplerConfig config;
  config.period = SimTime::Millis(100);
  MetricsSampler sampler(sim, metrics, nullptr, config, {});
  sampler.Start();

  Counter& requests = metrics.counter("test.requests");
  Gauge& depth = metrics.gauge("test.depth");
  Histogram& latency = metrics.histogram("test.latency");

  requests.Add(5);
  depth.Set(3);
  latency.Record(10);
  latency.Record(20);
  RunWindows(sim, sampler, 1);
  requests.Add(2);
  depth.Set(7);
  RunWindows(sim, sampler, 2);

  // Counters as per-window deltas.
  const auto& deltas = sampler.counter_deltas().at("test.requests");
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0], 5);
  EXPECT_EQ(deltas[1], 2);
  // The sampler's own tick counter bumps before the snapshot: delta 1/window.
  const auto& ticks = sampler.counter_deltas().at("obs.sampler.ticks");
  EXPECT_EQ(ticks[0], 1);
  EXPECT_EQ(ticks[1], 1);
  // Gauges as point samples.
  const auto& depths = sampler.gauge_samples().at("test.depth");
  EXPECT_EQ(depths[0], 3);
  EXPECT_EQ(depths[1], 7);
  // Histograms as per-window count deltas with cumulative quantiles.
  const auto& rows = sampler.histogram_rows().at("test.latency");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].count_delta, 2);
  EXPECT_EQ(rows[1].count_delta, 0);
  EXPECT_EQ(rows[0].max, 20);
}

TEST(MetricsSamplerTest, MidRunInstrumentsAreZeroBackfilled) {
  Simulator sim;
  MetricsRegistry metrics;
  SamplerConfig config;
  config.period = SimTime::Millis(100);
  MetricsSampler sampler(sim, metrics, nullptr, config, {});
  sampler.Start();

  RunWindows(sim, sampler, 3);
  metrics.counter("test.latecomer").Add(4);
  RunWindows(sim, sampler, 4);

  const auto& series = sampler.counter_deltas().at("test.latecomer");
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0], 0);
  EXPECT_EQ(series[1], 0);
  EXPECT_EQ(series[2], 0);
  EXPECT_EQ(series[3], 4);
}

TEST(MetricsSamplerTest, MaxWindowsStopsRescheduling) {
  Simulator sim;
  MetricsRegistry metrics;
  SamplerConfig config;
  config.period = SimTime::Millis(100);
  config.max_windows = 3;
  MetricsSampler sampler(sim, metrics, nullptr, config, {});
  sampler.Start();
  sim.Run();  // drains: the cap keeps the queue from self-sustaining forever
  EXPECT_EQ(sampler.windows(), 3);
}

TEST(MetricsSamplerTest, MinBreachWindowsGatesEpisodes) {
  Simulator sim;
  MetricsRegistry metrics;
  SamplerConfig config;
  config.period = SimTime::Millis(100);
  SloSpec spec;
  spec.name = "depth";
  spec.signal = SloSpec::Signal::kGaugeValue;
  spec.metric = "test.depth";
  spec.threshold = 10;
  spec.min_breach_windows = 2;
  MetricsSampler sampler(sim, metrics, nullptr, config, {spec});
  sampler.Start();
  Gauge& depth = metrics.gauge("test.depth");

  // Window values: 5, 15 (blip, ignored), 5, 20, 30 (episode), 5.
  const int64_t values[] = {5, 15, 5, 20, 30, 5};
  int64_t window = 0;
  for (int64_t value : values) {
    depth.Set(value);
    RunWindows(sim, sampler, ++window);
  }

  const TimelineReport timeline = sampler.BuildTimelineReport();
  ASSERT_EQ(timeline.slos.size(), 1u);
  const SloBreachReport& slo = timeline.slos[0];
  EXPECT_EQ(slo.name, "depth");
  EXPECT_EQ(slo.windows_evaluated, 6);
  EXPECT_EQ(slo.breach_episodes, 1);   // the single-window blip did not count
  EXPECT_EQ(slo.breach_windows, 2);    // windows 3 and 4 (values 20, 30)
  // Timestamps are window-end times: window 3 ends at 400 ms, 4 at 500 ms.
  EXPECT_EQ(slo.first_breach_us, SimTime::Millis(400).micros());
  EXPECT_EQ(slo.last_breach_us, SimTime::Millis(500).micros());
  EXPECT_EQ(slo.worst_window, 4);
  EXPECT_EQ(slo.worst_value, 30);
  EXPECT_EQ(slo.breached_us, 2 * SimTime::Millis(100).micros());
  // The breach also lands in the registry for end-of-run snapshots.
  EXPECT_EQ(metrics.counter("slo.depth.breach_windows").value(), 2);
}

TEST(MetricsSamplerTest, BreachEmitsTraceInstants) {
  Simulator sim;
  MetricsRegistry metrics;
  TraceRecorder trace(sim);
  trace.set_enabled(true);
  SamplerConfig config;
  config.period = SimTime::Millis(100);
  SloSpec spec;
  spec.name = "depth";
  spec.signal = SloSpec::Signal::kGaugeValue;
  spec.metric = "test.depth";
  spec.threshold = 10;
  MetricsSampler sampler(sim, metrics, &trace, config, {spec});
  sampler.Start();
  Gauge& depth = metrics.gauge("test.depth");

  const int64_t values[] = {5, 15, 5};
  int64_t window = 0;
  for (int64_t value : values) {
    depth.Set(value);
    RunWindows(sim, sampler, ++window);
  }
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("slo-breach:depth"), std::string::npos);
  EXPECT_NE(json.find("slo-clear:depth"), std::string::npos);
}

TEST(MetricsSamplerTest, WriteCsvOneRowPerWindow) {
  Simulator sim;
  MetricsRegistry metrics;
  SamplerConfig config;
  config.period = SimTime::Millis(100);
  SloSpec spec;
  spec.name = "depth";
  spec.signal = SloSpec::Signal::kGaugeValue;
  spec.metric = "test.depth";
  spec.threshold = 10;
  MetricsSampler sampler(sim, metrics, nullptr, config, {spec});
  sampler.Start();
  RunWindows(sim, sampler, 3);

  const std::string path = ::testing::TempDir() + "/timeline.csv";
  ASSERT_TRUE(sampler.WriteCsv(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[256];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  EXPECT_EQ(contents.find("window,end_us,packets"), 0u);
  EXPECT_NE(contents.find(",slo.depth"), std::string::npos);
  int lines = 0;
  for (char c : contents) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 4);  // header + one row per window
}

TEST(SuffixedTracePathTest, InsertsOrdinalBeforeExtension) {
  EXPECT_EQ(SuffixedTracePath("out.json", 1), "out.json");
  EXPECT_EQ(SuffixedTracePath("out.json", 2), "out.2.json");
  EXPECT_EQ(SuffixedTracePath("/tmp/t/out.json", 3), "/tmp/t/out.3.json");
  EXPECT_EQ(SuffixedTracePath("noext", 2), "noext.2");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(SuffixedTracePath("dir.v1/out", 2), "dir.v1/out.2");
}

// ---- acceptance scenario ----------------------------------------------------

struct ScenarioResult {
  ScenarioResult() = default;
  ClusterReport report;
  std::string report_json;
  SimTime fault_start;
  SimTime fault_end;
};

// One seeded playback run: three streams off one MSU with the sampler at
// 250 ms and a lateness-p99 SLO. With `with_fault`, a disk-slowdown window
// opens a third of the way in and outlives the playbacks, so every breach
// window — including the catch-up tail — falls inside it.
ScenarioResult RunDiskSlowScenario(bool with_sampler, bool with_fault) {
  ScenarioResult result;
  InstallationConfig config;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {2};
  if (with_sampler) {
    config.sampler.period = SimTime::Millis(250);
    SloSpec slo;
    slo.name = "lateness-p99";
    slo.signal = SloSpec::Signal::kLatenessP99;
    slo.threshold = SimTime::Millis(25).micros();
    // No debouncing here: a slowed disk delivers late pages as discrete
    // catch-up bursts, so breaching windows alternate with starved-empty
    // ones and a consecutive-window filter would mask the fault. The
    // min_breach_windows semantics get their own coverage in
    // MinBreachWindowsGatesEpisodes above.
    slo.min_breach_windows = 1;
    config.slos.push_back(slo);
  }
  Installation calliope(config);
  EXPECT_TRUE(calliope.Boot().ok());

  const SimTime play_span = SimTime::Seconds(6);
  const int streams = 3;
  for (int i = 0; i < streams; ++i) {
    EXPECT_TRUE(calliope
                    .LoadMpegMovie("t" + std::to_string(i), play_span + SimTime::Seconds(2), 0,
                                   false, i % 2)
                    .ok());
  }
  CalliopeClient& client = calliope.AddClient("viewer");
  EXPECT_TRUE(ConnectClient(calliope.sim(), client).ok());
  for (int i = 0; i < streams; ++i) {
    auto play = PlayOn(calliope.sim(), client, "t" + std::to_string(i),
                       "tv" + std::to_string(i));
    EXPECT_TRUE(play.ok()) << play.status().ToString();
  }

  result.fault_start = calliope.sim().Now() + play_span / 3;
  result.fault_end = result.fault_start + play_span * 2;
  if (with_fault) {
    FaultEvent fault;
    fault.what = FaultClass::kDiskSlow;
    fault.at = result.fault_start;
    fault.duration = play_span * 2;
    fault.node = "msu0";
    fault.disk = -1;
    // Per-read delay above the per-page playback span (~1.37 s at MPEG-1
    // rates with 256 KB pages): anything below that is fully absorbed by
    // the 2-page prefetch window and no deadline ever slips.
    fault.delay = SimTime::Millis(1600);
    FaultPlan plan;
    plan.events.push_back(fault);
    EXPECT_TRUE(calliope.ApplyFaultPlan(std::move(plan)).ok());
  }
  calliope.sim().RunFor(play_span);

  result.report = calliope.BuildClusterReport();
  result.report_json = result.report.ToJson();
  return result;
}

TEST(TelemetryScenarioTest, DiskSlowdownBreachIsBracketedByFaultWindow) {
  const ScenarioResult faulted = RunDiskSlowScenario(/*with_sampler=*/true, /*with_fault=*/true);
  ASSERT_TRUE(faulted.report.timeline.has_value());
  const TimelineReport& timeline = *faulted.report.timeline;
  ASSERT_EQ(timeline.slos.size(), 1u);
  const SloBreachReport& slo = timeline.slos[0];
  EXPECT_EQ(slo.name, "lateness-p99");
  EXPECT_GT(slo.breach_windows, 0) << "disk slowdown never surfaced as an SLO breach";
  EXPECT_GE(slo.breach_episodes, 1);
  EXPECT_GE(slo.first_breach_us, faulted.fault_start.micros())
      << "breach reported before the fault window opened";
  EXPECT_LE(slo.last_breach_us, faulted.fault_end.micros())
      << "breach reported after the fault window closed";
  EXPECT_GT(slo.worst_value, slo.threshold);

  // Identical seed without the fault: zero breach windows.
  const ScenarioResult clean = RunDiskSlowScenario(/*with_sampler=*/true, /*with_fault=*/false);
  ASSERT_TRUE(clean.report.timeline.has_value());
  ASSERT_EQ(clean.report.timeline->slos.size(), 1u);
  EXPECT_EQ(clean.report.timeline->slos[0].breach_windows, 0);
  EXPECT_EQ(clean.report.timeline->slos[0].breach_episodes, 0);
  EXPECT_EQ(clean.report.timeline->slos[0].first_breach_us, 0);

  // Determinism: both scenarios replay byte-identically.
  const ScenarioResult faulted2 =
      RunDiskSlowScenario(/*with_sampler=*/true, /*with_fault=*/true);
  EXPECT_EQ(faulted.report_json, faulted2.report_json);
  const ScenarioResult clean2 =
      RunDiskSlowScenario(/*with_sampler=*/true, /*with_fault=*/false);
  EXPECT_EQ(clean.report_json, clean2.report_json);
}

TEST(TelemetryScenarioTest, NoSamplerMeansNoTimelineAndNoPerturbation) {
  const ScenarioResult off = RunDiskSlowScenario(/*with_sampler=*/false, /*with_fault=*/false);
  // Zero-overhead-off: no timeline section at all, and the JSON is exactly
  // what a pre-telemetry installation produced (no stray keys).
  EXPECT_FALSE(off.report.timeline.has_value());
  EXPECT_EQ(off.report_json.find("\"timeline\""), std::string::npos);
  const ScenarioResult off2 = RunDiskSlowScenario(/*with_sampler=*/false, /*with_fault=*/false);
  EXPECT_EQ(off.report_json, off2.report_json);

  // Observer-only: turning the sampler on changes nothing outside its own
  // instruments and the timeline section.
  const ScenarioResult on = RunDiskSlowScenario(/*with_sampler=*/true, /*with_fault=*/false);
  ReportDiffOptions options;
  options.compare_timeline = false;
  options.ignore_metric_prefixes = {"obs.sampler.", "slo."};
  const ReportDiff diff = DiffClusterReports(off.report, on.report, options);
  EXPECT_TRUE(diff.empty()) << "sampler perturbed the run:\n" << diff.ToText();
}

}  // namespace
}  // namespace calliope
