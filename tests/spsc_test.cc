// Tests for the lock-free SPSC queue (§2.3), including real two-thread runs —
// the one component of the reproduction exercised with genuine concurrency.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "src/msu/spsc_queue.h"

namespace calliope {
namespace {

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<int> queue(8);
  EXPECT_TRUE(queue.Empty());
  EXPECT_FALSE(queue.TryPop().has_value());
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_EQ(queue.SizeApprox(), 2u);
  EXPECT_EQ(queue.TryPop(), 1);
  EXPECT_EQ(queue.TryPop(), 2);
  EXPECT_TRUE(queue.Empty());
}

TEST(SpscQueueTest, FullQueueRejectsPush) {
  SpscQueue<int> queue(4);  // capacity 3 (one slot sacrificed)
  EXPECT_EQ(queue.capacity(), 3u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_FALSE(queue.TryPush(4));
  EXPECT_EQ(queue.TryPop(), 1);
  EXPECT_TRUE(queue.TryPush(4));
}

TEST(SpscQueueTest, WrapsAroundRepeatedly) {
  SpscQueue<int> queue(4);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(queue.TryPush(round));
    EXPECT_EQ(queue.TryPop(), round);
  }
}

TEST(SpscQueueTest, MoveOnlyElements) {
  SpscQueue<std::unique_ptr<int>> queue(8);
  EXPECT_TRUE(queue.TryPush(std::make_unique<int>(7)));
  auto out = queue.TryPop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 7);
}

TEST(SpscQueueTest, TwoThreadsDeliverAllItemsInOrder) {
  constexpr int64_t kItems = 200000;
  SpscQueue<int64_t> queue(64);
  std::thread producer([&queue] {
    for (int64_t i = 0; i < kItems;) {
      if (queue.TryPush(i)) {
        ++i;
      }
    }
  });
  int64_t expected = 0;
  while (expected < kItems) {
    if (auto value = queue.TryPop()) {
      ASSERT_EQ(*value, expected);  // FIFO, no loss, no duplication
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(queue.Empty());
}

TEST(SpscQueueTest, TwoThreadsWithStrings) {
  constexpr int kItems = 20000;
  SpscQueue<std::string> queue(32);
  std::thread producer([&queue] {
    for (int i = 0; i < kItems;) {
      if (queue.TryPush("item-" + std::to_string(i))) {
        ++i;
      }
    }
  });
  for (int i = 0; i < kItems;) {
    if (auto value = queue.TryPop()) {
      ASSERT_EQ(*value, "item-" + std::to_string(i));
      ++i;
    }
  }
  producer.join();
}

TEST(SpscQueueTest, StressCheckSumPreserved) {
  constexpr int64_t kItems = 500000;
  SpscQueue<int64_t> queue(1024);
  int64_t produced_sum = 0;
  std::thread producer([&queue, &produced_sum] {
    for (int64_t i = 0; i < kItems;) {
      if (queue.TryPush(i * 7)) {
        produced_sum += i * 7;
        ++i;
      }
    }
  });
  int64_t consumed_sum = 0;
  for (int64_t received = 0; received < kItems;) {
    if (auto value = queue.TryPop()) {
      consumed_sum += *value;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(consumed_sum, produced_sum);
}

}  // namespace
}  // namespace calliope
