// Soak and end-to-end integrity tests: mixed record/play/VCR workloads over
// multiple seeds, with resource-accounting invariants checked afterwards,
// plus a bit-level comparison of what a client receives on playback against
// what it recorded.
#include <gtest/gtest.h>

#include <map>

#include "src/calliope/calliope.h"
#include "src/msu/msu.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

// ---- End-to-end integrity: what goes in comes back out ----

TEST(IntegrityTest, PlaybackReproducesTheRecordedSchedule) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("cam", "rtp-video"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));

  CoResult<Result<CalliopeClient::StartResult>> record;
  Collect(client.Record("take1", "rtp-video", "cam", SimTime::Seconds(30)), &record);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return record.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(record.value->ok());

  const PacketSequence source = GenerateVbr(Graph2File(1), SimTime::Seconds(6));
  CoResult<Result<int64_t>> sent;
  Collect(client.SendRecording((*record.value)->group, 0, source), &sent);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return sent.done(); }, SimTime::Seconds(20)));
  CoResult<Status> quit;
  Collect(client.Quit((*record.value)->group), &quit);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return quit.done(); }, SimTime::Seconds(10)));
  ASSERT_TRUE(quit.value->ok());

  // Collect playback arrivals: size per data packet, in order.
  std::vector<int64_t> received_sizes;
  NetNode& node = client.node();
  ClientDisplayPort* cam = client.FindPort("cam");
  ASSERT_NE(cam, nullptr);
  // Wrap the existing data port with a recording tap via a fresh port.
  CoResult<Result<ClientDisplayPort*>> tap_port;
  Collect(client.RegisterPort("tap", "rtp-video"), &tap_port);
  RunUntil(calliope.sim(), [&] { return tap_port.done(); }, SimTime::Seconds(5));
  (void)node.CloseUdp(tap_port.value->value()->udp_port());
  ASSERT_TRUE(node.BindUdp(tap_port.value->value()->udp_port(),
                           [&](const Datagram& datagram) {
                             auto payload = std::static_pointer_cast<const MediaDatagramPayload>(
                                 datagram.payload);
                             if (payload != nullptr && !payload->is_control) {
                               received_sizes.push_back(payload->packet.size.count());
                             }
                           })
                  .ok());

  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("take1", "tap"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(play.value->ok());
  ASSERT_TRUE(RunUntil(calliope.sim(),
                       [&] { return client.GroupTerminated((*play.value)->group); },
                       SimTime::Seconds(30)));

  // Every data packet came back, same sizes, same order.
  ASSERT_EQ(received_sizes.size(), source.size());
  for (size_t i = 0; i < source.size(); ++i) {
    EXPECT_EQ(received_sizes[i], source[i].size.count()) << i;
  }
}

// ---- Multi-seed soak: invariants survive a chaotic session ----

class SoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoakTest, MixedWorkloadLeavesNoLeakedResources) {
  InstallationConfig config;
  config.msu_count = 2;
  config.seed = GetParam();
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(calliope
                    .LoadMpegMovie("movie" + std::to_string(i), SimTime::Seconds(20), i % 2,
                                   i == 0)
                    .ok());
  }

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));

  // A scripted but seed-dependent mess of plays, VCR commands and quits.
  Rng rng(GetParam());
  std::vector<GroupId> groups;
  for (int i = 0; i < 8; ++i) {
    CoResult<Result<ClientDisplayPort*>> port;
    Collect(client.RegisterPort("tv" + std::to_string(i), "mpeg1"), &port);
    RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
    CoResult<Result<CalliopeClient::StartResult>> play;
    Collect(client.Play("movie" + std::to_string(rng.NextBelow(4)), "tv" + std::to_string(i)),
            &play);
    ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
    if (play.value->ok() && !(*play.value)->queued) {
      groups.push_back((*play.value)->group);
    }
    calliope.sim().RunFor(SimTime::Millis(rng.NextBelow(700)));
  }
  for (GroupId group : groups) {
    const uint64_t action = rng.NextBelow(4);
    CoResult<Status> acted;
    if (action == 0) {
      Collect(client.Vcr(group, VcrCommand::Op::kPause), &acted);
    } else if (action == 1) {
      Collect(client.Vcr(group, VcrCommand::Op::kSeek,
                         SimTime::Millis(rng.NextBelow(19000))),
              &acted);
    } else if (action == 2) {
      Collect(client.Quit(group), &acted);
    } else {
      Collect(client.Vcr(group, VcrCommand::Op::kPlay), &acted);
    }
    RunUntil(calliope.sim(), [&] { return acted.done(); }, SimTime::Seconds(10));
    calliope.sim().RunFor(SimTime::Millis(rng.NextBelow(400)));
  }
  // Resume anything paused so every stream can run out, then let the
  // 20-second movies end naturally.
  for (GroupId group : groups) {
    CoResult<Status> resumed;
    Collect(client.Vcr(group, VcrCommand::Op::kPlay), &resumed);
    RunUntil(calliope.sim(), [&] { return resumed.done(); }, SimTime::Seconds(10));
  }
  ASSERT_TRUE(RunUntil(calliope.sim(),
                       [&] { return calliope.coordinator().active_stream_count() == 0; },
                       SimTime::Seconds(120)));
  calliope.sim().RunFor(SimTime::Seconds(2));

  // Invariants: every slot, buffer and bandwidth reservation returned.
  for (size_t m = 0; m < 2; ++m) {
    EXPECT_EQ(calliope.msu(m).active_stream_count(), 0) << "msu" << m;
    for (size_t d = 0; d < calliope.msu(m).machine().disk_count(); ++d) {
      EXPECT_EQ(calliope.msu(m).duty_cycle().active_streams(static_cast<int>(d)), 0)
          << "msu" << m << " disk " << d;
      EXPECT_EQ(calliope.coordinator().DiskLoad("msu" + std::to_string(m), static_cast<int>(d)),
                DataRate())
          << "msu" << m << " disk " << d;
    }
  }
  EXPECT_EQ(calliope.coordinator().pending_request_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace calliope
