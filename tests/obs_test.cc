// Observability subsystem tests: MetricsRegistry instrument semantics,
// TraceRecorder output (parsed back with a real JSON parser, not substring
// checks), and the cluster-level contracts the chaos harness relies on —
// equal seeds snapshot bit-identical ClusterReports, and a traced run emits
// span events from at least the Coordinator, MSU and network subsystems.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

// ---- minimal JSON parser ----------------------------------------------------
// Validates the whole document and captures each traceEvents object's scalar
// fields (strings and numbers) as text; nested objects/arrays are validated
// recursively but not captured.

struct JsonEvent {
  JsonEvent() = default;

  std::map<std::string, std::string> fields;
};

class TraceJsonParser {
 public:
  explicit TraceJsonParser(std::string text) : s_(std::move(text)) {}

  bool ParseTrace(std::vector<JsonEvent>* events) {
    SkipWs();
    if (!Consume('{')) return Fail("expected top-level {");
    SkipWs();
    std::string key;
    if (!ParseString(&key) || key != "traceEvents") return Fail("expected traceEvents key");
    SkipWs();
    if (!Consume(':')) return Fail("expected :");
    SkipWs();
    if (!Consume('[')) return Fail("expected [");
    SkipWs();
    if (!Consume(']')) {
      while (true) {
        JsonEvent event;
        if (!ParseObject(&event)) return false;
        events->push_back(std::move(event));
        SkipWs();
        if (Consume(']')) break;
        if (!Consume(',')) return Fail("expected , or ] in traceEvents");
        SkipWs();
      }
    }
    SkipWs();
    if (!Consume('}')) return Fail("expected closing }");
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing data after document");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    std::string value;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return Fail("dangling escape");
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '/': c = '/'; break;
          default: return Fail("unsupported escape");
        }
      }
      value += c;
    }
    if (!Consume('"')) return Fail("unterminated string");
    if (out != nullptr) *out = std::move(value);
    return true;
  }

  bool ParseNumber(std::string* out) {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    if (out != nullptr) *out = s_.substr(start, pos_ - start);
    return true;
  }

  bool ParseValue(std::string* out) {
    const char c = Peek();
    if (c == '{') return ParseObject(nullptr);
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString(out);
    return ParseNumber(out);
  }

  bool ParseObject(JsonEvent* capture) {
    if (!Consume('{')) return Fail("expected {");
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return Fail("expected : after key " + key);
      SkipWs();
      const char first = Peek();
      std::string value;
      if (!ParseValue(&value)) return false;
      if (capture != nullptr && first != '{' && first != '[') {
        capture->fields[key] = std::move(value);
      }
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected , or } in object");
      SkipWs();
    }
  }

  bool ParseArray() {
    if (!Consume('[')) return Fail("expected [");
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      if (!ParseValue(nullptr)) return false;
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected , or ] in array");
      SkipWs();
    }
  }

  std::string s_;
  size_t pos_ = 0;
  std::string error_;
};

// ---- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsRegisterOnFirstUseWithStableAddresses) {
  MetricsRegistry registry;
  Counter& c = registry.counter("coord.admissions.accepted");
  c.Add();
  c.Add(2);
  EXPECT_EQ(&c, &registry.counter("coord.admissions.accepted"));
  EXPECT_EQ(c.value(), 3);

  Gauge& g = registry.gauge("coord.pending.depth");
  g.Set(7);
  g.Add(-2);
  EXPECT_EQ(&g, &registry.gauge("coord.pending.depth"));
  EXPECT_EQ(g.value(), 5);

  Histogram& h = registry.histogram("msu.msu0.send_lateness_us");
  h.Record(100);
  h.Record(900);
  EXPECT_EQ(&h, &registry.histogram("msu.msu0.send_lateness_us"));
  EXPECT_EQ(h.count(), 2);
}

TEST(MetricsRegistryTest, SnapshotCapturesAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.counter("a.count").Add(4);
  registry.gauge("b.level").Set(-3);
  registry.histogram("c.lat").Record(10);
  registry.histogram("c.lat").Record(1000);
  registry.SetGaugeCallback("d.pull", [] { return int64_t{42}; });

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.count("a.count"), 1u);
  EXPECT_EQ(snap.counters.at("a.count"), 4);
  ASSERT_EQ(snap.gauges.count("b.level"), 1u);
  EXPECT_EQ(snap.gauges.at("b.level"), -3);
  ASSERT_EQ(snap.gauges.count("d.pull"), 1u);
  EXPECT_EQ(snap.gauges.at("d.pull"), 42);
  ASSERT_EQ(snap.histograms.count("c.lat"), 1u);
  EXPECT_EQ(snap.histograms.at("c.lat").count, 2);
  EXPECT_EQ(snap.histograms.at("c.lat").sum, 1010);
  EXPECT_EQ(snap.histograms.at("c.lat").min, 10);
  EXPECT_EQ(snap.histograms.at("c.lat").max, 1000);

  // Equal registries snapshot equal; text/JSON renderings are non-empty and
  // reproducible from the same state.
  EXPECT_EQ(snap, registry.Snapshot());
  EXPECT_EQ(snap.ToJson(), registry.Snapshot().ToJson());
  EXPECT_FALSE(snap.ToText().empty());
}

TEST(MetricsRegistryTest, GaugeCallbackReRegistrationReplaces) {
  // An MSU restart re-attaches observability; the later callback must win
  // rather than double-register or keep a dangling earlier one.
  MetricsRegistry registry;
  registry.SetGaugeCallback("msu.msu0.streams.active", [] { return int64_t{1}; });
  registry.SetGaugeCallback("msu.msu0.streams.active", [] { return int64_t{9}; });
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.gauges.at("msu.msu0.streams.active"), 9);
  EXPECT_EQ(snap.gauges.size(), 1u);
}

// ---- TraceRecorder ----------------------------------------------------------

TEST(TraceRecorderTest, DisabledRecorderDropsEvents) {
  Simulator sim;
  TraceRecorder trace(sim);
  trace.Span("coordinator", "coord", "admit:play", SimTime());
  trace.Instant("net", "net", "conn-broken");
  EXPECT_EQ(trace.event_count(), 0u);

  std::vector<JsonEvent> events;
  TraceJsonParser parser(trace.ToJson());
  EXPECT_TRUE(parser.ParseTrace(&events)) << parser.error();
  EXPECT_TRUE(events.empty());
}

TEST(TraceRecorderTest, JsonParsesBackWithTracksAndPhases) {
  Simulator sim;
  TraceRecorder trace(sim);
  trace.set_enabled(true);
  sim.RunFor(SimTime::Millis(5));
  const SimTime start = sim.Now();
  sim.RunFor(SimTime::Millis(2));
  trace.Span("coordinator", "coord", "admit:play", start, "m0 group 1 \"quoted\"");
  trace.SpanAt("fault", "fault", "partition", SimTime::Seconds(1), SimTime::Seconds(3));
  trace.Instant("msu0", "msu", "first-packet", "stream 1");
  EXPECT_EQ(trace.event_count(), 3u);

  std::vector<JsonEvent> events;
  TraceJsonParser parser(trace.ToJson());
  ASSERT_TRUE(parser.ParseTrace(&events)) << parser.error();
  // 3 process_name metadata records (one per track) + 3 events.
  ASSERT_EQ(events.size(), 6u);

  int metadata = 0;
  int spans = 0;
  int instants = 0;
  for (const JsonEvent& event : events) {
    ASSERT_EQ(event.fields.count("ph"), 1u);
    const std::string& ph = event.fields.at("ph");
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(event.fields.at("name"), "process_name");
    } else if (ph == "X") {
      ++spans;
      EXPECT_EQ(event.fields.count("dur"), 1u);
      EXPECT_EQ(event.fields.count("ts"), 1u);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(event.fields.at("s"), "p");
    }
  }
  EXPECT_EQ(metadata, 3);
  EXPECT_EQ(spans, 2);
  EXPECT_EQ(instants, 1);

  // Span timestamps render microseconds with a fixed nanosecond fraction.
  bool found_admit = false;
  for (const JsonEvent& event : events) {
    if (event.fields.count("name") != 0u && event.fields.at("name") == "admit:play") {
      found_admit = true;
      EXPECT_EQ(event.fields.at("ts"), "5000.000");
      EXPECT_EQ(event.fields.at("dur"), "2000.000");
      EXPECT_EQ(event.fields.at("cat"), "coord");
    }
  }
  EXPECT_TRUE(found_admit);
}

// ---- cluster-level contracts ------------------------------------------------

struct ClusterRunOutput {
  ClusterRunOutput() = default;

  std::string report_json;
  std::string report_text;
  std::string trace_json;
};

// One small deterministic workload: boot 2 MSUs, load a movie, play it for a
// few seconds, quit, quiesce, snapshot.
ClusterRunOutput RunSmallWorkload(uint64_t seed) {
  ClusterRunOutput out;
  InstallationConfig config;
  config.seed = seed;
  config.msu_count = 2;
  TestCluster cluster(config);
  cluster.installation().trace().set_enabled(true);
  Simulator& sim = cluster.sim();

  EXPECT_TRUE(cluster.Boot().ok());
  EXPECT_TRUE(cluster.installation()
                  .LoadMpegMovie("m0", SimTime::Seconds(8), 0, /*with_fast_scan=*/true)
                  .ok());
  auto added = cluster.AddConnectedClient("c");
  EXPECT_TRUE(added.ok()) << added.status().ToString();
  if (!added.ok()) {
    return out;
  }
  CalliopeClient* client = *added;
  auto play = PlayOn(sim, *client, "m0", "p0");
  EXPECT_TRUE(play.ok()) << play.status().ToString();
  if (play.ok()) {
    sim.RunFor(SimTime::Seconds(3));
    EXPECT_TRUE(QuitGroup(sim, *client, play->group).ok());
    EXPECT_TRUE(WaitForTermination(sim, *client, play->group, SimTime::Seconds(10)));
  }
  sim.RunFor(SimTime::Seconds(1));

  const ClusterReport report = cluster.installation().BuildClusterReport();
  out.report_json = report.ToJson();
  out.report_text = report.ToText();
  out.trace_json = cluster.installation().trace().ToJson();
  return out;
}

TEST(ObsClusterTest, EqualSeedsSnapshotIdenticalReports) {
  const ClusterRunOutput a = RunSmallWorkload(1996);
  const ClusterRunOutput b = RunSmallWorkload(1996);
  ASSERT_FALSE(a.report_json.empty());
  EXPECT_EQ(a.report_json, b.report_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_FALSE(a.report_text.empty());

  // A different seed still produces a structurally valid report (and one
  // whose trace parses); we do not require it to differ byte-for-byte.
  const ClusterRunOutput c = RunSmallWorkload(7);
  std::vector<JsonEvent> events;
  TraceJsonParser parser(c.trace_json);
  EXPECT_TRUE(parser.ParseTrace(&events)) << parser.error();
}

TEST(ObsClusterTest, TraceCoversCoordinatorMsuAndNetwork) {
  const ClusterRunOutput out = RunSmallWorkload(1996);
  ASSERT_FALSE(out.trace_json.empty());

  std::vector<JsonEvent> events;
  TraceJsonParser parser(out.trace_json);
  ASSERT_TRUE(parser.ParseTrace(&events)) << parser.error();

  std::set<std::string> span_categories;
  for (const JsonEvent& event : events) {
    if (event.fields.count("ph") != 0u && event.fields.at("ph") == "X") {
      span_categories.insert(event.fields.at("cat"));
    }
  }
  EXPECT_EQ(span_categories.count("coord"), 1u) << "no Coordinator spans";
  EXPECT_EQ(span_categories.count("msu"), 1u) << "no MSU spans";
  EXPECT_EQ(span_categories.count("net"), 1u) << "no network spans";
}

TEST(ObsClusterTest, ReportCountsMatchClientAndStreamStats) {
  InstallationConfig config;
  config.msu_count = 1;
  TestCluster cluster(config);
  Simulator& sim = cluster.sim();
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation()
                  .LoadMpegMovie("m0", SimTime::Seconds(6), 0, /*with_fast_scan=*/false)
                  .ok());
  auto added = cluster.AddConnectedClient("c");
  ASSERT_TRUE(added.ok());
  CalliopeClient* client = *added;
  auto play = PlayOn(sim, *client, "m0", "p0");
  ASSERT_TRUE(play.ok());
  sim.RunFor(SimTime::Seconds(2));
  ASSERT_TRUE(QuitGroup(sim, *client, play->group).ok());
  ASSERT_TRUE(WaitForTermination(sim, *client, play->group, SimTime::Seconds(10)));
  sim.RunFor(SimTime::Seconds(1));

  const ClusterReport report = cluster.installation().BuildClusterReport();
  ASSERT_EQ(report.streams.size(), 1u);
  const StreamQosReport& stream = report.streams.front();
  EXPECT_EQ(stream.msu, "msu0");
  EXPECT_EQ(stream.file, "m0.mpg");
  EXPECT_FALSE(stream.recording);
  EXPECT_TRUE(stream.finished);
  EXPECT_GT(stream.packets_sent, 0);
  EXPECT_GE(stream.p99_lateness_us, stream.p50_lateness_us);
  EXPECT_GE(stream.max_lateness_us, 0);

  ASSERT_EQ(report.ports.size(), 1u);
  const PortQosReport& port = report.ports.front();
  EXPECT_EQ(port.client, "c");
  EXPECT_EQ(port.port, "p0");
  EXPECT_EQ(port.out_of_order, 0);
  const ClientDisplayPort* p = client->FindPort("p0");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(port.packets_received, p->packets_received());
  EXPECT_EQ(port.max_gap_us, p->max_arrival_gap().micros());
  EXPECT_GT(port.packets_received, 0);
  // Media packets are paced ~evenly, so the largest inter-arrival gap is
  // positive once more than one packet arrived.
  EXPECT_GT(port.max_gap_us, 0);

  // The registry view agrees with the per-stream rows.
  const MetricsSnapshot& snap = report.metrics;
  ASSERT_EQ(snap.counters.count("msu.msu0.packets_sent"), 1u);
  EXPECT_EQ(snap.counters.at("msu.msu0.packets_sent"), stream.packets_sent);
  ASSERT_EQ(snap.counters.count("coord.admissions.accepted"), 1u);
  EXPECT_EQ(snap.counters.at("coord.admissions.accepted"), 1);
}

}  // namespace
}  // namespace calliope
