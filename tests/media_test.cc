// Tests for the media substrate: CBR/VBR sources, the synthetic MPEG model
// and the offline fast-forward/backward filter (§2.3.1).
#include <gtest/gtest.h>

#include "src/media/mpeg.h"
#include "src/media/packet.h"
#include "src/media/sources.h"

namespace calliope {
namespace {

TEST(PacketStatsTest, EmptyAndSingleSequences) {
  PacketSequence empty;
  EXPECT_EQ(TotalBytes(empty).count(), 0);
  EXPECT_EQ(Duration(empty), SimTime());
  EXPECT_EQ(AverageRate(empty), DataRate());
  PacketSequence one(1);
  one[0].size = Bytes(100);
  EXPECT_EQ(TotalBytes(one).count(), 100);
  EXPECT_EQ(Duration(one), SimTime());
}

TEST(CbrSourceTest, UniformSpacingAndRate) {
  CbrSourceConfig config;
  const PacketSequence packets = GenerateCbr(config, SimTime::Seconds(60));
  ASSERT_GT(packets.size(), 2000u);
  const SimTime interval = packets[1].delivery_offset - packets[0].delivery_offset;
  EXPECT_NEAR(interval.millis_f(), 21.8, 0.2);  // 4 KB at 1.5 Mbit/s
  for (size_t i = 1; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].delivery_offset - packets[i - 1].delivery_offset, interval);
    EXPECT_EQ(packets[i].size, config.packet_size);
  }
  EXPECT_NEAR(AverageRate(packets).megabits_per_sec(), 1.5, 0.01);
}

TEST(VbrSourceTest, MatchesConfiguredAverageRate) {
  for (int f = 0; f < 3; ++f) {
    const VbrSourceConfig config = Graph2File(f);
    const PacketSequence packets = GenerateVbr(config, SimTime::Seconds(120));
    const double target = config.target_average.megabits_per_sec();
    EXPECT_NEAR(AverageRate(packets).megabits_per_sec(), target, target * 0.12) << "file " << f;
  }
}

TEST(VbrSourceTest, PeakRatesInPaperRange) {
  // "the peak rates of the files ranged from 2.0 to 5.4 MBit/sec" (50 ms
  // sliding window); allow modest overshoot on the hot file.
  for (int f = 0; f < 3; ++f) {
    const PacketSequence packets = GenerateVbr(Graph2File(f), SimTime::Seconds(120));
    const double peak = PeakRate(packets, SimTime::Millis(50)).megabits_per_sec();
    EXPECT_GE(peak, 2.0) << "file " << f;
    EXPECT_LE(peak, 7.5) << "file " << f;
  }
}

TEST(VbrSourceTest, PacketsAreAboutOneKilobyte) {
  const PacketSequence packets = GenerateVbr(Graph2File(0), SimTime::Seconds(60));
  int64_t full = 0;
  for (const MediaPacket& packet : packets) {
    EXPECT_LE(packet.size.count(), 1024);
    if (packet.size.count() == 1024) {
      ++full;
    }
  }
  // "Most of the packets in the streams are about one KByte long."
  EXPECT_GT(full, static_cast<int64_t>(packets.size()) / 2);
}

TEST(VbrSourceTest, DeliveryOffsetsMonotone) {
  const PacketSequence packets = GenerateVbr(Graph2File(2), SimTime::Seconds(300));
  for (size_t i = 1; i < packets.size(); ++i) {
    EXPECT_GE(packets[i].delivery_offset, packets[i - 1].delivery_offset) << i;
  }
}

TEST(VbrSourceTest, DeterministicForSeed) {
  const PacketSequence a = GenerateVbr(Graph2File(1), SimTime::Seconds(30));
  const PacketSequence b = GenerateVbr(Graph2File(1), SimTime::Seconds(30));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
}

TEST(MpegTest, GopStructure) {
  MpegEncoderConfig config;
  const MpegStream stream = EncodeMpeg(config, SimTime::Seconds(10), 7);
  ASSERT_EQ(stream.frames.size(), 300u);
  for (size_t i = 0; i < stream.frames.size(); ++i) {
    if (i % static_cast<size_t>(config.gop_size) == 0) {
      EXPECT_EQ(stream.frames[i].type, MpegFrame::Type::kIntra) << i;
    } else {
      EXPECT_NE(stream.frames[i].type, MpegFrame::Type::kIntra) << i;
    }
  }
}

TEST(MpegTest, AverageRateMatchesTarget) {
  const MpegStream stream = EncodeMpeg(MpegEncoderConfig{}, SimTime::Seconds(60), 7);
  const double rate = stream.total_bytes().count() * 8.0 / stream.duration().seconds();
  EXPECT_NEAR(rate / 1e6, 1.5, 0.08);
}

TEST(MpegTest, IntraFramesAreLargest) {
  const MpegStream stream = EncodeMpeg(MpegEncoderConfig{}, SimTime::Seconds(10), 7);
  double intra_sum = 0, other_sum = 0;
  int intra_n = 0, other_n = 0;
  for (const MpegFrame& frame : stream.frames) {
    if (frame.type == MpegFrame::Type::kIntra) {
      intra_sum += static_cast<double>(frame.size.count());
      ++intra_n;
    } else {
      other_sum += static_cast<double>(frame.size.count());
      ++other_n;
    }
  }
  EXPECT_GT(intra_sum / intra_n, 2.0 * other_sum / other_n);
}

TEST(FilterTest, FastForwardKeepsEveryFifteenthFrame) {
  const MpegStream stream = EncodeMpeg(MpegEncoderConfig{}, SimTime::Seconds(150), 7);
  const MpegStream ff = FilterFastForward(stream, 15);
  EXPECT_EQ(ff.frames.size(), stream.frames.size() / 15);
  // Filtered file covers the content in 1/15 the duration at the same rate.
  EXPECT_NEAR(ff.duration().seconds(), stream.duration().seconds() / 15.0, 0.5);
  for (const MpegFrame& frame : ff.frames) {
    EXPECT_EQ(frame.type, MpegFrame::Type::kIntra);  // recompressed as intra
  }
}

TEST(FilterTest, FastBackwardIsReversedFastForward) {
  const MpegStream stream = EncodeMpeg(MpegEncoderConfig{}, SimTime::Seconds(60), 7);
  const MpegStream ff = FilterFastForward(stream, 15);
  const MpegStream fb = FilterFastBackward(stream, 15);
  ASSERT_EQ(ff.frames.size(), fb.frames.size());
  for (size_t i = 0; i < ff.frames.size(); ++i) {
    EXPECT_EQ(ff.frames[i].size, fb.frames[fb.frames.size() - 1 - i].size);
  }
}

TEST(FilterTest, FilteredStreamPlaysAtNominalRate) {
  const MpegStream stream = EncodeMpeg(MpegEncoderConfig{}, SimTime::Seconds(150), 7);
  const MpegStream ff = FilterFastForward(stream, 15);
  const double rate = ff.total_bytes().count() * 8.0 / ff.duration().seconds();
  EXPECT_NEAR(rate / 1e6, 1.5, 0.1);  // same content type => same reservation
}

TEST(PacketizeTest, CbrPacketizationCoversAllBytesInOrder) {
  const MpegStream stream = EncodeMpeg(MpegEncoderConfig{}, SimTime::Seconds(30), 7);
  const PacketSequence packets = PacketizeCbr(stream, Bytes::KiB(4));
  EXPECT_EQ(TotalBytes(packets), stream.total_bytes());
  for (size_t i = 1; i < packets.size(); ++i) {
    EXPECT_GT(packets[i].delivery_offset, packets[i - 1].delivery_offset);
  }
  // Keyframe markers present roughly once per GOP.
  int64_t keyframes = 0;
  for (const MediaPacket& packet : packets) {
    if (packet.flags & kPacketKeyframe) {
      ++keyframes;
    }
  }
  EXPECT_NEAR(static_cast<double>(keyframes), 60.0, 8.0);  // 30 s * 30 fps / 15
}

// Property sweep: the CBR generator holds its rate across a span of rates
// and packet sizes.
class CbrRateProperty : public ::testing::TestWithParam<std::tuple<double, int64_t>> {};

TEST_P(CbrRateProperty, AverageMatches) {
  const auto [mbit, packet_bytes] = GetParam();
  CbrSourceConfig config;
  config.rate = DataRate::MegabitsPerSec(mbit);
  config.packet_size = Bytes(packet_bytes);
  const PacketSequence packets = GenerateCbr(config, SimTime::Seconds(30));
  ASSERT_GT(packets.size(), 10u);
  // AverageRate spans n packets over n-1 intervals; correct for the bias.
  const double unbias =
      static_cast<double>(packets.size() - 1) / static_cast<double>(packets.size());
  EXPECT_NEAR(AverageRate(packets).megabits_per_sec() * unbias, mbit, mbit * 0.02);
}

INSTANTIATE_TEST_SUITE_P(RateSweep, CbrRateProperty,
                         ::testing::Combine(::testing::Values(0.064, 0.65, 1.5, 4.0, 8.0),
                                            ::testing::Values(512, 1024, 4096, 8192)));

}  // namespace
}  // namespace calliope
