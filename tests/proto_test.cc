// Tests for the protocol extension modules (§2.3.2).
#include <gtest/gtest.h>

#include "src/proto/protocol.h"

namespace calliope {
namespace {

TEST(RegistryTest, BuiltinsPresent) {
  ProtocolRegistry registry = ProtocolRegistry::WithBuiltins();
  EXPECT_TRUE(registry.Contains("rtp"));
  EXPECT_TRUE(registry.Contains("vat"));
  EXPECT_TRUE(registry.Contains("raw-cbr"));
  EXPECT_FALSE(registry.Contains("h264"));
  EXPECT_EQ(registry.Instantiate("nope").status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, NewProtocolsCanBeRegistered) {
  // "Simple modules can be added if necessary."
  class NvModule : public ProtocolModule {
   public:
    std::string_view name() const override { return "nv"; }
  };
  ProtocolRegistry registry = ProtocolRegistry::WithBuiltins();
  ASSERT_TRUE(registry.Register("nv", [] { return std::make_unique<NvModule>(); }).ok());
  EXPECT_EQ(registry.Register("nv", [] { return std::make_unique<NvModule>(); }).code(),
            StatusCode::kAlreadyExists);
  auto module = registry.Instantiate("nv");
  ASSERT_TRUE(module.ok());
  EXPECT_EQ((*module)->name(), "nv");
}

TEST(RegistryTest, EachStreamGetsFreshModuleState) {
  ProtocolRegistry registry = ProtocolRegistry::WithBuiltins();
  auto a = registry.Instantiate("rtp");
  auto b = registry.Instantiate("rtp");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());
}

TEST(VatModuleTest, DefaultsToArrivalTimeSchedule) {
  VatModule vat;
  MediaPacket packet;
  packet.protocol_timestamp = 999999;  // ignored: VAT uses arrival times
  EXPECT_EQ(vat.RecordDeliveryOffset(packet, SimTime::Millis(123)), SimTime::Millis(123));
  EXPECT_FALSE(vat.uses_control_port());
  EXPECT_FALSE(vat.is_constant_rate());
}

TEST(RtpModuleTest, TimestampScheduleRemovesNetworkJitter) {
  // Packets arrive with jitter but carry clean 90 kHz timestamps; the stored
  // schedule follows the timestamps (§2.3.2).
  RtpModule rtp;
  MediaPacket first;
  first.protocol_timestamp = 90000;  // t=1s of media time
  const SimTime first_offset = rtp.RecordDeliveryOffset(first, SimTime::Millis(40));
  EXPECT_EQ(first_offset, SimTime::Millis(40));  // anchor

  MediaPacket second;
  second.protocol_timestamp = 90000 + 9000;  // +100 ms of media time
  // Arrival wildly late (+350 ms); schedule must still be +100 ms.
  const SimTime second_offset = rtp.RecordDeliveryOffset(second, SimTime::Millis(390));
  EXPECT_EQ(second_offset - first_offset, SimTime::Millis(100));
}

TEST(RtpModuleTest, TimestampWraparoundHandled) {
  RtpModule rtp;
  MediaPacket first;
  first.protocol_timestamp = 0xFFFFF000;
  const SimTime anchor = rtp.RecordDeliveryOffset(first, SimTime());
  MediaPacket second;
  second.protocol_timestamp = 0x00000C00;  // wrapped: +0x1C00 ticks
  const SimTime offset = rtp.RecordDeliveryOffset(second, SimTime::Millis(70));
  EXPECT_NEAR((offset - anchor).millis_f(), (0x1C00 / 90.0), 0.1);
}

TEST(RtpModuleTest, InterleavesPeriodicControlPackets) {
  RtpModule rtp;
  PacketSequence extra;
  MediaPacket packet;
  packet.size = Bytes(1000);
  rtp.OnRecordPacket(packet, SimTime::Seconds(6), extra);
  ASSERT_EQ(extra.size(), 1u);  // first report after the 5 s interval
  EXPECT_TRUE(extra[0].flags & kPacketControl);
  extra.clear();
  rtp.OnRecordPacket(packet, SimTime::Seconds(7), extra);
  EXPECT_TRUE(extra.empty());  // not due yet
  rtp.OnRecordPacket(packet, SimTime::Seconds(12), extra);
  EXPECT_EQ(extra.size(), 1u);
}

TEST(RtpModuleTest, RoutesControlPacketsToControlPort) {
  RtpModule rtp;
  MediaPacket data;
  EXPECT_FALSE(rtp.RoutePlayback(data).to_control_port);
  MediaPacket control;
  control.flags = kPacketControl;
  EXPECT_TRUE(rtp.RoutePlayback(control).to_control_port);
  EXPECT_TRUE(rtp.uses_control_port());
}

TEST(RawCbrModuleTest, ComputedSchedule) {
  // "For constant bit-rate streams, the delivery schedule is calculated
  // rather than stored."
  RawCbrModule raw(DataRate::MegabitsPerSec(1.5), Bytes::KiB(4));
  EXPECT_TRUE(raw.is_constant_rate());
  MediaPacket packet;
  const SimTime t0 = raw.RecordDeliveryOffset(packet, SimTime::Millis(3));
  const SimTime t1 = raw.RecordDeliveryOffset(packet, SimTime::Millis(91));
  const SimTime t2 = raw.RecordDeliveryOffset(packet, SimTime::Millis(92));
  EXPECT_EQ(t0, SimTime());
  EXPECT_NEAR((t1 - t0).millis_f(), 21.85, 0.05);  // exact spacing, arrival ignored
  EXPECT_EQ((t2 - t1), (t1 - t0));
}

}  // namespace
}  // namespace calliope
