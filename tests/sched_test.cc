// Tests for duty-cycle admission (§2.2.1 / §2.3.3).
#include <gtest/gtest.h>

#include "src/sched/duty_cycle.h"

namespace calliope {
namespace {

MachineParams Params() { return MicronP66(); }

TEST(DutyCycleTest, SlotTimeCoversWorstCase) {
  const SimTime slot = WorstCaseSlotTime(Params().disk, Params().hba, Bytes::KiB(256));
  // Full seek (~23 ms) + rotation (8.3) + transfer (~50.9) + overheads.
  EXPECT_GT(slot, SimTime::Millis(80));
  EXPECT_LT(slot, SimTime::Millis(95));
}

TEST(DutyCycleTest, MpegStreamsPerDisk) {
  // "The number of slots in a cycle is the maximum number of block transfers
  // that can be accomplished during the time it takes for a single stream to
  // transmit its block": 256 KB drains in ~1.4 s at 1.5 Mbit/s.
  const int slots =
      SlotsPerCycle(Params().disk, Params().hba, Bytes::KiB(256), DataRate::MegabitsPerSec(1.5));
  EXPECT_GE(slots, 14);
  EXPECT_LE(slots, 18);
}

TEST(DutyCycleTest, FasterStreamsGetFewerSlots) {
  const auto slots_for = [&](double mbit) {
    return SlotsPerCycle(Params().disk, Params().hba, Bytes::KiB(256),
                         DataRate::MegabitsPerSec(mbit));
  };
  EXPECT_GT(slots_for(0.65), slots_for(1.5));
  EXPECT_GT(slots_for(1.5), slots_for(4.0));
  EXPECT_EQ(SlotsPerCycle(Params().disk, Params().hba, Bytes::KiB(256), DataRate()), 0);
}

TEST(DutyCycleTest, AdmitAndReleasePerDisk) {
  DutyCycleAllocator allocator(Params().disk, Params().hba, Bytes::KiB(256), 2, false);
  const DataRate rate = DataRate::MegabitsPerSec(1.5);
  const int capacity = allocator.CapacityPerDisk(rate);
  for (int i = 0; i < capacity; ++i) {
    EXPECT_TRUE(allocator.Admit(0, rate).ok()) << i;
  }
  EXPECT_FALSE(allocator.CanAdmit(0, rate));
  EXPECT_EQ(allocator.Admit(0, rate).code(), StatusCode::kResourceExhausted);
  // The other disk is independent.
  EXPECT_TRUE(allocator.CanAdmit(1, rate));
  allocator.Release(0, rate);
  EXPECT_TRUE(allocator.CanAdmit(0, rate));
}

TEST(DutyCycleTest, StripedAdmissionIsMachineWide) {
  DutyCycleAllocator striped(Params().disk, Params().hba, Bytes::KiB(256), 4, true);
  const DataRate rate = DataRate::MegabitsPerSec(1.5);
  const int per_disk = striped.CapacityPerDisk(rate);
  // All streams land on "disk 0" logically but capacity is per-machine.
  for (int i = 0; i < per_disk * 4; ++i) {
    EXPECT_TRUE(striped.Admit(0, rate).ok()) << i;
  }
  EXPECT_FALSE(striped.CanAdmit(0, rate));
}

TEST(DutyCycleTest, StripedStartupDelayIsDTimesLonger) {
  // "this delay is D times as long as it is in the non-striped case".
  DutyCycleAllocator flat(Params().disk, Params().hba, Bytes::KiB(256), 4, false);
  DutyCycleAllocator striped(Params().disk, Params().hba, Bytes::KiB(256), 4, true);
  const DataRate rate = DataRate::MegabitsPerSec(1.5);
  const double flat_ms = flat.WorstCaseStartupDelay(rate).millis_f();
  const double striped_ms = striped.WorstCaseStartupDelay(rate).millis_f();
  EXPECT_NEAR(striped_ms / flat_ms, 4.0, 0.35);
}

TEST(DutyCycleTest, BlockDrainTimeMatchesPaperExample) {
  // "a 256 KByte buffer contains only about one second of 1.5 Mbit/sec
  // MPEG-1 video" (1.4 s exactly at 10^6-based rates).
  EXPECT_NEAR(BlockDrainTime(Bytes::KiB(256), DataRate::MegabitsPerSec(1.5)).seconds(), 1.4,
              0.05);
}

// Property: capacity * rate never exceeds what the disk can physically move
// (the admission test is conservative).
class DutyCycleCapacityProperty : public ::testing::TestWithParam<double> {};

TEST_P(DutyCycleCapacityProperty, AdmittedBandwidthIsDeliverable) {
  const DataRate rate = DataRate::MegabitsPerSec(GetParam());
  const int slots = SlotsPerCycle(Params().disk, Params().hba, Bytes::KiB(256), rate);
  const double admitted_mbytes = slots * rate.megabytes_per_sec();
  // Worst-case service of 256 KB is ~86 ms -> worst-case sustained ~3.0 MB/s.
  const double worst_case_capacity =
      Bytes::KiB(256).megabytes() /
      WorstCaseSlotTime(Params().disk, Params().hba, Bytes::KiB(256)).seconds();
  EXPECT_LE(admitted_mbytes, worst_case_capacity * 1.001) << "rate " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RateSweep, DutyCycleCapacityProperty,
                         ::testing::Values(0.064, 0.25, 0.65, 1.5, 2.0, 4.0, 8.0, 20.0));

}  // namespace
}  // namespace calliope
