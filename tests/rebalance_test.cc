// Dynamic cross-MSU rebalancing tests (DESIGN §5.8): the pure planner, the
// flash-crowd convergence claim (a cold title suddenly dominating the mix
// converges to zero queued viewers once the background copy installs, while
// live lateness stays within SLO throughout the copy), copy preemption by
// live admissions, copy-source crash and primary-flip-mid-replication chaos,
// and the equal-seed byte-identical ClusterReport guarantee with the
// rebalancer enabled.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "src/obs/report_diff.h"
#include "src/rebalance/planner.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

// Jitters fault timing; ctest sweeps it through CALLIOPE_CHAOS_SEED exactly
// like the chaos/sharing harnesses.
uint64_t RebalanceSeed() {
  const char* env = std::getenv("CALLIOPE_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1996;
}

int64_t CounterValue(TestCluster& cluster, const std::string& name) {
  return cluster.installation().metrics().counter(name).value();
}

// ---- planner unit tests -----------------------------------------------------

RebalanceSnapshot TwoMsuSnapshot() {
  RebalanceSnapshot snapshot;
  snapshot.disk_budget = DataRate::MegabytesPerSec(1.0);
  for (const char* name : {"msu0", "msu1"}) {
    MsuView msu;
    msu.node = name;
    msu.up = true;
    msu.free_space = Bytes::MiB(256);
    msu.disks.resize(2);
    snapshot.msus.push_back(std::move(msu));
  }
  return snapshot;
}

TitleView HotQueuedTitle() {
  TitleView title;
  title.name = "hot";
  title.popularity = 5.0;
  title.pending = 3;
  title.size = Bytes::MiB(8);
  ReplicaView replica;
  replica.msu = "msu0";
  replica.disk = 0;
  replica.file = "hot";
  replica.active_streams = 4;
  title.replicas.push_back(std::move(replica));
  return title;
}

TEST(RebalancePlannerTest, QueuePressureCopiesToLeastLoadedDisk) {
  RebalanceSnapshot snapshot = TwoMsuSnapshot();
  snapshot.msus[1].disks[0].load = DataRate::MegabitsPerSec(3);  // disk 1 is emptier
  snapshot.titles.push_back(HotQueuedTitle());

  const RebalancePlan plan = PlanRebalance(snapshot, RebalanceConfig(), 2);
  ASSERT_EQ(plan.copies.size(), 1u);
  EXPECT_EQ(plan.copies[0].content, "hot");
  EXPECT_EQ(plan.copies[0].source_msu, "msu0");
  EXPECT_EQ(plan.copies[0].source_file, "hot");
  EXPECT_EQ(plan.copies[0].target_msu, "msu1");
  EXPECT_EQ(plan.copies[0].target_disk, 1);
  EXPECT_EQ(plan.copies[0].space, Bytes::MiB(8));
  EXPECT_TRUE(plan.demotes.empty());
}

TEST(RebalancePlannerTest, NoCopyWithoutSlotsBudgetOrNeed) {
  RebalanceSnapshot snapshot = TwoMsuSnapshot();
  snapshot.titles.push_back(HotQueuedTitle());

  // No concurrency slots left this tick.
  EXPECT_TRUE(PlanRebalance(snapshot, RebalanceConfig(), 0).copies.empty());

  // An in-flight copy to the only other MSU already covers the demand.
  snapshot.titles[0].inflight_targets.push_back("msu1");
  EXPECT_TRUE(PlanRebalance(snapshot, RebalanceConfig(), 2).copies.empty());
  snapshot.titles[0].inflight_targets.clear();

  // Every target disk would break the live-admission budget.
  for (DiskView& disk : snapshot.msus[1].disks) {
    disk.load = snapshot.disk_budget;
  }
  EXPECT_TRUE(PlanRebalance(snapshot, RebalanceConfig(), 2).copies.empty());
  for (DiskView& disk : snapshot.msus[1].disks) {
    disk.load = DataRate();
  }

  // No space for the replica on the candidate target.
  snapshot.msus[1].free_space = Bytes::MiB(1);
  EXPECT_TRUE(PlanRebalance(snapshot, RebalanceConfig(), 2).copies.empty());
  snapshot.msus[1].free_space = Bytes::MiB(256);

  // A quiet title keeps its single copy.
  snapshot.titles[0].pending = 0;
  snapshot.titles[0].popularity = 0.5;
  EXPECT_TRUE(PlanRebalance(snapshot, RebalanceConfig(), 2).copies.empty());
}

TEST(RebalancePlannerTest, DemotesOnlyIdleDynamicSurplusReplicas) {
  RebalanceSnapshot snapshot = TwoMsuSnapshot();
  TitleView title;
  title.name = "cold";
  title.popularity = 0.1;
  title.size = Bytes::MiB(8);
  ReplicaView original;
  original.msu = "msu0";
  original.file = "cold";
  ReplicaView dynamic;
  dynamic.msu = "msu1";
  dynamic.file = "cold.r1";
  dynamic.dynamic = true;
  dynamic.active_streams = 1;
  title.replicas.push_back(original);
  title.replicas.push_back(dynamic);
  snapshot.titles.push_back(title);

  // A live stream pins the dynamic replica.
  EXPECT_TRUE(PlanRebalance(snapshot, RebalanceConfig(), 2).demotes.empty());

  // Idle: the dynamic copy goes, never the original.
  snapshot.titles[0].replicas[1].active_streams = 0;
  RebalancePlan plan = PlanRebalance(snapshot, RebalanceConfig(), 2);
  ASSERT_EQ(plan.demotes.size(), 1u);
  EXPECT_EQ(plan.demotes[0].msu, "msu1");
  EXPECT_EQ(plan.demotes[0].file, "cold.r1");

  // The last copy is never demoted even when cold, and a static replica is
  // not demotable at all.
  snapshot.titles[0].replicas[1].dynamic = false;
  EXPECT_TRUE(PlanRebalance(snapshot, RebalanceConfig(), 2).demotes.empty());
  snapshot.titles[0].replicas.pop_back();
  EXPECT_TRUE(PlanRebalance(snapshot, RebalanceConfig(), 2).demotes.empty());
}

// ---- system tests -----------------------------------------------------------

// 2 MSUs, one disk each, 1 MB/s admission budget: five concurrent MPEG-1
// viewers fit per disk. "hot" lives only on msu0.
InstallationConfig FlashCrowdConfig(bool rebalance) {
  InstallationConfig config;
  config.msu_count = 2;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(1.0);
  config.coordinator.rebalance.enabled = rebalance;
  // 2x the stream rate: an 11.25 MB title copies over in ~30 s, well inside
  // the 60 s playout, so convergence is attributable to the rebalancer and
  // not to the first wave of viewers finishing. (Much faster and the copy
  // would drain 256 KB pages quicker than the source's duty cycle can slot
  // them between five live viewers — the source would refuse the prepare.)
  config.coordinator.rebalance.copy_rate = DataRate::MegabitsPerSec(3);
  // Fast popularity decay so the same run also exercises cold-demotion once
  // the crowd leaves (sharing itself stays off).
  config.coordinator.sharing.popularity_halflife = SimTime::Seconds(5);
  return config;
}

constexpr int kCrowd = 8;  // 5 fit on msu0's disk, 3 queue

// The headline scenario: a cold title suddenly dominates the request mix.
// With rebalancing on, the planner copies it to the idle MSU and the queue
// converges to zero; with it off, the same workload leaves viewers starved
// for the whole playout. The delta is the point of the subsystem.
TEST(RebalanceTest, FlashCrowdConvergesOnlyWithRebalancing) {
  for (const bool rebalance : {true, false}) {
    TestCluster cluster(FlashCrowdConfig(rebalance));
    ASSERT_TRUE(cluster.Boot().ok());
    ASSERT_TRUE(
        cluster.installation().LoadMpegMovie("hot", SimTime::Seconds(60), 0, false).ok());

    auto client = cluster.AddConnectedClient("c");
    ASSERT_TRUE(client.ok());
    std::vector<GroupId> groups;
    int queued = 0;
    for (int i = 0; i < kCrowd; ++i) {
      auto play = PlayOn(cluster.sim(), **client, "hot", "tv" + std::to_string(i));
      ASSERT_TRUE(play.ok()) << "viewer " << i;
      groups.push_back(play->group);
      if (play->queued) {
        ++queued;
      }
    }
    EXPECT_EQ(queued, 3) << "msu0's disk admits exactly five viewers";

    // Well past the copy window (~32 s) but before the first wave finishes.
    while (cluster.sim().Now() < SimTime::Seconds(45)) {
      cluster.sim().RunFor(SimTime::Millis(100));
    }

    int starved = 0;
    for (int i = 0; i < kCrowd; ++i) {
      ClientDisplayPort* port = (*client)->FindPort("tv" + std::to_string(i));
      ASSERT_NE(port, nullptr);
      if (port->packets_received() == 0) {
        ++starved;
      } else {
        EXPECT_EQ(port->out_of_order(), 0) << "tv" << i;
      }
    }

    if (!rebalance) {
      // Static replica set: the queue is stuck until the first wave finishes.
      EXPECT_EQ(starved, 3);
      EXPECT_EQ(cluster.coordinator().pending_request_count(), 3u);
      continue;
    }

    // Converged: the replica installed, the queue drained onto it, and every
    // viewer is receiving.
    EXPECT_EQ(starved, 0);
    EXPECT_EQ(cluster.coordinator().pending_request_count(), 0u);
    EXPECT_EQ(CounterValue(cluster, "coord.rebalance.copies_started"), 1);
    EXPECT_EQ(CounterValue(cluster, "coord.rebalance.copies_installed"), 1);
    EXPECT_GT(CounterValue(cluster, "repl.pages_copied"), 0);
    auto record = cluster.coordinator().catalog().FindContent("hot");
    ASSERT_TRUE(record.ok());
    ASSERT_EQ((*record)->locations.size(), 2u);
    EXPECT_EQ((*record)->locations[1].msu_node, "msu1");
    EXPECT_TRUE((*record)->locations[1].dynamic);

    // The crowd has gone cold (5 s half-life) but the dynamic replica is
    // still serving the late wave, so it must not be demoted yet.
    EXPECT_EQ(CounterValue(cluster, "coord.rebalance.demotions"), 0);

    // Live delivery never paid for the background copy: every stream's send
    // lateness stayed within the 50 ms SLO for the whole run so far.
    const ClusterReport mid = cluster.installation().BuildClusterReport();
    for (const auto& stream : mid.streams) {
      EXPECT_LT(stream.p99_lateness_us, 50'000) << "stream " << stream.stream_id;
    }

    // Play out. The late wave started ~32 s in, so give it its full 60 s.
    ASSERT_TRUE(RunUntil(cluster.sim(),
                         [&] {
                           for (GroupId group : groups) {
                             if (!(*client)->GroupTerminated(group)) {
                               return false;
                             }
                           }
                           return true;
                         },
                         SimTime::Seconds(90)));
    ASSERT_TRUE(cluster.WaitForIdle(SimTime::Seconds(10)));

    // With the crowd gone and popularity decayed, the planner demotes the
    // now-idle dynamic replica — and only that one.
    ASSERT_TRUE(RunUntil(cluster.sim(),
                         [&] { return CounterValue(cluster, "coord.rebalance.demotions") == 1; },
                         SimTime::Seconds(30)));
    record = cluster.coordinator().catalog().FindContent("hot");
    ASSERT_TRUE(record.ok());
    ASSERT_EQ((*record)->locations.size(), 1u);
    EXPECT_EQ((*record)->locations[0].msu_node, "msu0");

    EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok())
        << cluster.coordinator().ledger().CheckInvariants().ToString();
    EXPECT_EQ(cluster.coordinator().ledger().outstanding_holds(), 0u);
    EXPECT_EQ(cluster.coordinator().ledger().TotalReserved(), DataRate());
  }
}

// A live admission that cannot be placed while a copy holds bandwidth evicts
// the copy: viewers always win over background replication.
TEST(RebalanceTest, LiveAdmissionPreemptsInflightCopy) {
  InstallationConfig config;
  config.msu_count = 2;
  config.msu_machine.disks_per_hba = {1};
  // Two viewers per disk; the default 1.5 Mbit/s copy occupies a third slot's
  // worth of placement bandwidth and takes the full playout to finish.
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.4);
  config.coordinator.rebalance.enabled = true;
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(
      cluster.installation().LoadMpegMovie("hot", SimTime::Seconds(60), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto a = PlayOn(cluster.sim(), **client, "hot", "tva");
  auto b = PlayOn(cluster.sim(), **client, "hot", "tvb");
  auto c = PlayOn(cluster.sim(), **client, "hot", "tvc");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->queued);
  EXPECT_FALSE(b->queued);
  EXPECT_TRUE(c->queued);  // msu0's disk is full; msu1 has no copy yet

  // The queued viewer makes "hot" copy-worthy at the next planner tick.
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().inflight_replication_count() == 1; },
                       SimTime::Seconds(5)));

  // Viewer A leaves. Retrying viewer C needs A's slot back, but the copy's
  // source bandwidth now stands in the way — so the copy dies, not the admit.
  ASSERT_TRUE(QuitGroup(cluster.sim(), **client, a->group).ok());
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return (*client)->FindPort("tvc")->packets_received() > 0; },
                       SimTime::Seconds(10)));
  EXPECT_EQ(CounterValue(cluster, "coord.rebalance.preemptions"), 1);
  EXPECT_EQ(CounterValue(cluster, "coord.rebalance.copies_aborted"), 1);
  EXPECT_EQ(CounterValue(cluster, "coord.rebalance.copies_installed"), 0);
  EXPECT_EQ(cluster.coordinator().pending_request_count(), 0u);
  EXPECT_GT(CounterValue(cluster, "repl.aborts"), 0);
  EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok())
      << cluster.coordinator().ledger().CheckInvariants().ToString();
}

// Runs the flash crowd with a seed-jittered copy-source crash mid-copy, then
// restarts the source. Returns the final ClusterReport for the determinism
// check below.
ClusterReport RunSourceCrashScenario(uint64_t seed) {
  TestCluster cluster(FlashCrowdConfig(true));
  EXPECT_TRUE(cluster.Boot().ok());
  EXPECT_TRUE(
      cluster.installation().LoadMpegMovie("hot", SimTime::Seconds(60), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  EXPECT_TRUE(client.ok());
  for (int i = 0; i < kCrowd; ++i) {
    auto play = PlayOn(cluster.sim(), **client, "hot", "tv" + std::to_string(i));
    EXPECT_TRUE(play.ok()) << "viewer " << i;
  }

  // Kill the copy source mid-transfer (the copy runs ~2 s to ~32 s).
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().inflight_replication_count() == 1; },
                       SimTime::Seconds(5)));
  cluster.sim().RunFor(SimTime::Seconds(4) + SimTime::Millis(static_cast<int64_t>(seed % 997)));
  cluster.msu(0).Crash();

  // The in-flight op is torn down and the target's partial file discarded.
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().inflight_replication_count() == 0; },
                       SimTime::Seconds(10)));
  EXPECT_GT(CounterValue(cluster, "coord.rebalance.copies_aborted"), 0);
  EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok())
      << cluster.coordinator().ledger().CheckInvariants().ToString();

  // Bring the source back. The dead MSU took the whole crowd with it (no
  // other replica existed), so the crowd returns — and this time the re-run
  // copy completes and installs.
  CoResult<Status> restarted;
  Collect(cluster.msu(0).Restart("coordinator"), &restarted);
  EXPECT_TRUE(RunUntil(cluster.sim(), [&] { return restarted.done(); }, SimTime::Seconds(20)));
  EXPECT_TRUE(restarted.value->ok());
  for (int i = 0; i < kCrowd; ++i) {
    auto play = PlayOn(cluster.sim(), **client, "hot", "again" + std::to_string(i));
    EXPECT_TRUE(play.ok()) << "second-wave viewer " << i;
  }
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] { return CounterValue(cluster, "coord.rebalance.copies_installed") == 1; },
                       SimTime::Seconds(60)));
  auto record = cluster.coordinator().catalog().FindContent("hot");
  EXPECT_TRUE(record.ok());
  if (record.ok()) {
    EXPECT_EQ((*record)->locations.size(), 2u);
  }
  EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok())
      << cluster.coordinator().ledger().CheckInvariants().ToString();

  cluster.WaitForIdle(SimTime::Seconds(150));
  // Idle() turns true the instant the Coordinator processes the last
  // termination note — on some seeds the ack back to the MSU is still on the
  // wire. Run past the RPC timeout so every in-flight Call completes (or
  // times out) before teardown: a Call frame abandoned mid-await never frees.
  cluster.sim().RunFor(SimTime::Seconds(11));
  return cluster.installation().BuildClusterReport();
}

TEST(RebalanceTest, ChaosCopySourceCrashMidReplication) {
  RunSourceCrashScenario(RebalanceSeed());
}

// Equal seeds must snapshot identical ClusterReports even across a copy-
// source crash: the rebalancer's decisions are part of the deterministic
// replay contract.
TEST(RebalanceTest, ChaosEqualSeedsAreByteIdentical) {
  const uint64_t seed = RebalanceSeed();
  const ClusterReport a = RunSourceCrashScenario(seed);
  const ClusterReport b = RunSourceCrashScenario(seed);
  const ReportDiff diff = DiffClusterReports(a, b);
  EXPECT_TRUE(diff.empty()) << diff.ToText();
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

// Primary flip mid-replication: the standby's oplog replay already holds the
// in-flight op, the copy finishes against the new primary, and the queued
// crowd drains onto the fresh replica.
TEST(RebalanceTest, ChaosPrimaryFlipMidReplicationKeepsThePlan) {
  InstallationConfig config = FlashCrowdConfig(true);
  config.standby_coordinator = true;
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  Coordinator* standby = cluster.installation().standby_coordinator();
  ASSERT_NE(standby, nullptr);
  ASSERT_TRUE(
      cluster.installation().LoadMpegMovie("hot", SimTime::Seconds(60), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  std::vector<GroupId> groups;
  for (int i = 0; i < kCrowd; ++i) {
    auto play = PlayOn(cluster.sim(), **client, "hot", "tv" + std::to_string(i));
    ASSERT_TRUE(play.ok()) << "viewer " << i;
    groups.push_back(play->group);
  }

  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().inflight_replication_count() == 1; },
                       SimTime::Seconds(5)));
  // Synchronous log shipping: the standby's shadow already carries the op.
  EXPECT_EQ(standby->inflight_replication_count(), 1u);

  // Kill the primary mid-copy, jittered by the seed sweep.
  cluster.sim().RunFor(SimTime::Seconds(3) +
                       SimTime::Millis(static_cast<int64_t>(RebalanceSeed() % 997)));
  cluster.coordinator().Crash();
  ASSERT_TRUE(
      RunUntil(cluster.sim(), [&] { return standby->is_primary(); }, SimTime::Seconds(10)));
  EXPECT_EQ(standby->inflight_replication_count(), 1u) << "takeover must keep the plan";

  // The copy (MSU-to-MSU, untouched by the flip) completes and installs at
  // the NEW primary; the queue drains onto the replica it placed.
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return standby->pending_request_count() == 0; },
                       SimTime::Seconds(40)));
  auto record = standby->catalog().FindContent("hot");
  ASSERT_TRUE(record.ok());
  ASSERT_EQ((*record)->locations.size(), 2u);
  EXPECT_TRUE((*record)->locations[1].dynamic);
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         for (int i = 0; i < kCrowd; ++i) {
                           ClientDisplayPort* port =
                               (*client)->FindPort("tv" + std::to_string(i));
                           if (port == nullptr || port->packets_received() == 0) {
                             return false;
                           }
                         }
                         return true;
                       },
                       SimTime::Seconds(20)));
  EXPECT_TRUE(standby->ledger().CheckInvariants().ok())
      << standby->ledger().CheckInvariants().ToString();
}

// Satellite regression: requesting sharing together with an HA standby is a
// silent downgrade no more — the force-disable is counted (and logged).
TEST(RebalanceTest, SharingDisabledUnderHaIsExplicit) {
  InstallationConfig config;
  config.msu_count = 1;
  config.standby_coordinator = true;
  config.coordinator.sharing.enabled = true;
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  EXPECT_EQ(CounterValue(cluster, "coord.sharing.disabled_ha"), 1);
  EXPECT_EQ(CounterValue(cluster, "coord2.sharing.disabled_ha"), 1);

  // And without HA the counter never exists: sharing runs, nothing degraded.
  InstallationConfig plain;
  plain.msu_count = 1;
  plain.coordinator.sharing.enabled = true;
  TestCluster solo(plain);
  ASSERT_TRUE(solo.Boot().ok());
  EXPECT_EQ(CounterValue(solo, "coord.sharing.disabled_ha"), 0);
}

}  // namespace
}  // namespace calliope
