// End-to-end tests of a whole Calliope installation: Coordinator + MSUs +
// clients over the simulated networks.
#include <gtest/gtest.h>

#include "src/calliope/calliope.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

TEST(IntegrationTest, BootRegistersAllMsus) {
  InstallationConfig config;
  config.msu_count = 3;
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  EXPECT_TRUE(calliope.coordinator().MsuUp("msu0"));
  EXPECT_TRUE(calliope.coordinator().MsuUp("msu1"));
  EXPECT_TRUE(calliope.coordinator().MsuUp("msu2"));
}

TEST(IntegrationTest, PlaySingleMpegStreamEndToEnd) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(60), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("client0");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(connected.value->ok()) << connected.value->ToString();

  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(port.value->ok()) << port.value->status().ToString();

  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(play.value->ok()) << play.value->status().ToString();
  EXPECT_FALSE((*play.value)->queued);

  // 10 seconds of playback: ~458 packets at 1.5 Mbit/s in 4 KB packets.
  calliope.sim().RunFor(SimTime::Seconds(10));
  ClientDisplayPort* tv = client.FindPort("tv");
  ASSERT_NE(tv, nullptr);
  EXPECT_GT(tv->packets_received(), 400);
  EXPECT_LT(tv->packets_received(), 520);
  EXPECT_EQ(tv->glitches(), 0);

  // Quit tears the stream down and the Coordinator hears about it.
  CoResult<Status> quit;
  Collect(client.Quit((*play.value)->group), &quit);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return quit.done(); }, SimTime::Seconds(5)));
  EXPECT_TRUE(quit.value->ok()) << quit.value->ToString();
  EXPECT_TRUE(RunUntil(calliope.sim(),
                       [&] { return calliope.coordinator().active_stream_count() == 0; },
                       SimTime::Seconds(5)));
  EXPECT_EQ(calliope.coordinator().DiskLoad("msu0", 0), DataRate());
}

TEST(IntegrationTest, PlaybackRunsToEndOfContentAndTerminates) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("short", SimTime::Seconds(5), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("client0");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("short", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(play.value->ok());
  const GroupId group = (*play.value)->group;

  // Let the whole 5-second movie play out; the MSU ends the stream itself.
  EXPECT_TRUE(RunUntil(calliope.sim(), [&] { return client.GroupTerminated(group); },
                       SimTime::Seconds(30)));
  EXPECT_EQ(calliope.coordinator().active_stream_count(), 0u);
}

TEST(IntegrationTest, PauseStopsDeliveryAndResumeContinues) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(120), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("client0");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  const GroupId group = (*play.value)->group;

  calliope.sim().RunFor(SimTime::Seconds(5));
  CoResult<Status> paused;
  Collect(client.Vcr(group, VcrCommand::Op::kPause), &paused);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return paused.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(paused.value->ok()) << paused.value->ToString();

  ClientDisplayPort* tv = client.FindPort("tv");
  calliope.sim().RunFor(SimTime::Seconds(1));  // drain in-flight packets
  const int64_t at_pause = tv->packets_received();
  calliope.sim().RunFor(SimTime::Seconds(5));
  EXPECT_EQ(tv->packets_received(), at_pause);  // paused: nothing arrives

  CoResult<Status> resumed;
  Collect(client.Vcr(group, VcrCommand::Op::kPlay), &resumed);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return resumed.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(resumed.value->ok());
  calliope.sim().RunFor(SimTime::Seconds(5));
  EXPECT_GT(tv->packets_received(), at_pause + 180);
}

TEST(IntegrationTest, SeekJumpsPosition) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(300), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("client0");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  const GroupId group = (*play.value)->group;

  calliope.sim().RunFor(SimTime::Seconds(3));
  // Seek near the end; playback should finish within ~15 s + slack, which it
  // never could from the 3-second mark without the seek.
  CoResult<Status> sought;
  Collect(client.Vcr(group, VcrCommand::Op::kSeek, SimTime::Seconds(285)), &sought);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return sought.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(sought.value->ok()) << sought.value->ToString();
  EXPECT_TRUE(RunUntil(calliope.sim(), [&] { return client.GroupTerminated(group); },
                       SimTime::Seconds(30)));
}

TEST(IntegrationTest, FastForwardUsesFilteredFile) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(300), 0, /*with_fast_scan=*/true).ok());

  CalliopeClient& client = calliope.AddClient("client0");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  const GroupId group = (*play.value)->group;

  calliope.sim().RunFor(SimTime::Seconds(3));
  CoResult<Status> ff;
  Collect(client.Vcr(group, VcrCommand::Op::kFastForward), &ff);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return ff.done(); }, SimTime::Seconds(10)));
  ASSERT_TRUE(ff.value->ok()) << ff.value->ToString();

  // The fast-forward file covers the movie in 1/15 of the time; from the
  // 3-second mark the whole rest plays out in under ~25 seconds.
  EXPECT_TRUE(RunUntil(calliope.sim(), [&] { return client.GroupTerminated(group); },
                       SimTime::Seconds(40)));
}

TEST(IntegrationTest, FastForwardWithoutVariantFailsCleanly) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(60), 0, /*with_fast_scan=*/false).ok());

  CalliopeClient& client = calliope.AddClient("client0");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));

  CoResult<Status> ff;
  Collect(client.Vcr((*play.value)->group, VcrCommand::Op::kFastForward), &ff);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return ff.done(); }, SimTime::Seconds(10)));
  EXPECT_FALSE(ff.value->ok());
}

TEST(IntegrationTest, RecordThenPlayBack) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());

  CalliopeClient& client = calliope.AddClient("client0");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("cam", "rtp-video"), &port);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(port.value->ok());

  CoResult<Result<CalliopeClient::StartResult>> record;
  Collect(client.Record("mymail", "rtp-video", "cam", SimTime::Seconds(30)), &record);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return record.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(record.value->ok()) << record.value->status().ToString();
  const GroupId record_group = (*record.value)->group;

  // Feed 10 seconds of NV-like video into the recording.
  VbrSourceConfig source = Graph2File(0);
  const PacketSequence packets = GenerateVbr(source, SimTime::Seconds(10));
  CoResult<Result<int64_t>> sent;
  Collect(client.SendRecording(record_group, 0, packets), &sent);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return sent.done(); }, SimTime::Seconds(30)));
  ASSERT_TRUE(sent.value->ok()) << sent.value->status().ToString();
  EXPECT_EQ(static_cast<size_t>(**sent.value), packets.size());

  CoResult<Status> quit;
  Collect(client.Quit(record_group), &quit);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return quit.done(); }, SimTime::Seconds(10)));
  ASSERT_TRUE(quit.value->ok()) << quit.value->ToString();

  // The recording is now playable content with a duration near 10 s.
  CoResult<Result<std::vector<ContentInfo>>> listing;
  Collect(client.ListContent(), &listing);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return listing.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(listing.value->ok());
  bool found = false;
  for (const ContentInfo& info : **listing.value) {
    if (info.name == "mymail") {
      found = true;
      EXPECT_NEAR(info.duration.seconds(), 10.0, 1.5);
    }
  }
  ASSERT_TRUE(found);

  CoResult<Result<CalliopeClient::StartResult>> playback;
  Collect(client.Play("mymail", "cam"), &playback);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return playback.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(playback.value->ok()) << playback.value->status().ToString();
  calliope.sim().RunFor(SimTime::Seconds(5));
  EXPECT_GT(client.FindPort("cam")->packets_received(), 100);
}

TEST(IntegrationTest, CompositeSeminarRecordAndPlay) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());

  CalliopeClient& client = calliope.AddClient("client0");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));

  CoResult<Result<ClientDisplayPort*>> video;
  Collect(client.RegisterPort("v", "rtp-video"), &video);
  RunUntil(calliope.sim(), [&] { return video.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> audio;
  Collect(client.RegisterPort("a", "vat-audio"), &audio);
  RunUntil(calliope.sim(), [&] { return audio.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> seminar;
  Collect(client.RegisterCompositePort("sem", "seminar", {"v", "a"}), &seminar);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return seminar.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(seminar.value->ok()) << seminar.value->status().ToString();

  CoResult<Result<CalliopeClient::StartResult>> record;
  Collect(client.Record("talk", "seminar", "sem", SimTime::Seconds(30)), &record);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return record.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(record.value->ok()) << record.value->status().ToString();
  const GroupId group = (*record.value)->group;

  // Feed both component streams.
  const PacketSequence video_packets = GenerateVbr(Graph2File(0), SimTime::Seconds(8));
  VbrSourceConfig audio_config;
  audio_config.target_average = DataRate::KilobitsPerSec(64);
  audio_config.seed = 99;
  const PacketSequence audio_packets = GenerateVbr(audio_config, SimTime::Seconds(8));
  CoResult<Result<int64_t>> video_sent;
  CoResult<Result<int64_t>> audio_sent;
  Collect(client.SendRecording(group, 0, video_packets), &video_sent);
  Collect(client.SendRecording(group, 1, audio_packets), &audio_sent);
  ASSERT_TRUE(RunUntil(calliope.sim(),
                       [&] { return video_sent.done() && audio_sent.done(); },
                       SimTime::Seconds(30)));
  ASSERT_TRUE(video_sent.value->ok());
  ASSERT_TRUE(audio_sent.value->ok());

  CoResult<Status> quit;
  Collect(client.Quit(group), &quit);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return quit.done(); }, SimTime::Seconds(10)));
  ASSERT_TRUE(quit.value->ok()) << quit.value->ToString();

  // Play the composite back: both ports receive their component streams.
  CoResult<Result<CalliopeClient::StartResult>> playback;
  Collect(client.Play("talk", "sem"), &playback);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return playback.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(playback.value->ok()) << playback.value->status().ToString();
  calliope.sim().RunFor(SimTime::Seconds(6));
  EXPECT_GT(client.FindPort("v")->packets_received(), 50);
  EXPECT_GT(client.FindPort("a")->packets_received(), 50);
}

TEST(IntegrationTest, MsuFailureDetectedAndRecovered) {
  InstallationConfig config;
  config.msu_count = 2;
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(60), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("client0");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  calliope.sim().RunFor(SimTime::Seconds(2));
  ASSERT_EQ(calliope.coordinator().active_stream_count(), 1u);

  // Crash msu0: "The Coordinator detects when one of the MSUs fails by a
  // break in the TCP connection."
  calliope.msu(0).Crash();
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return !calliope.coordinator().MsuUp("msu0"); },
                       SimTime::Seconds(5)));
  EXPECT_EQ(calliope.coordinator().active_stream_count(), 0u);
  EXPECT_TRUE(calliope.coordinator().MsuUp("msu1"));

  // Restart: the MSU re-contacts the Coordinator and is restored.
  CoResult<Status> restarted;
  Collect(calliope.msu(0).Restart("coordinator"), &restarted);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return restarted.done(); }, SimTime::Seconds(10)));
  ASSERT_TRUE(restarted.value->ok()) << restarted.value->ToString();
  EXPECT_TRUE(calliope.coordinator().MsuUp("msu0"));

  // Content survived the crash: play it again.
  CoResult<Result<CalliopeClient::StartResult>> replay;
  Collect(client.Play("movie", "tv"), &replay);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return replay.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(replay.value->ok()) << replay.value->status().ToString();
  calliope.sim().RunFor(SimTime::Seconds(3));
  EXPECT_GT(client.FindPort("tv")->packets_received(), 80);
}

TEST(IntegrationTest, RequestsQueueWhenBandwidthExhaustedAndStartLater) {
  // Shrink the admission budget so one disk holds only 2 concurrent streams.
  InstallationConfig config;
  config.coordinator.disk_budget = DataRate::MegabitsPerSec(3.2);
  config.msu_machine.disks_per_hba = {1};
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(30), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("client0");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));

  std::vector<std::unique_ptr<CoResult<Result<ClientDisplayPort*>>>> ports;
  for (int i = 0; i < 3; ++i) {
    ports.push_back(std::make_unique<CoResult<Result<ClientDisplayPort*>>>());
    Collect(client.RegisterPort("tv" + std::to_string(i), "mpeg1"), ports.back().get());
  }
  RunUntil(calliope.sim(), [&] { return ports.back()->done(); }, SimTime::Seconds(5));

  std::vector<std::unique_ptr<CoResult<Result<CalliopeClient::StartResult>>>> plays;
  for (int i = 0; i < 3; ++i) {
    plays.push_back(std::make_unique<CoResult<Result<CalliopeClient::StartResult>>>());
    Collect(client.Play("movie", "tv" + std::to_string(i)), plays.back().get());
  }
  ASSERT_TRUE(RunUntil(calliope.sim(),
                       [&] { return plays[0]->done() && plays[1]->done() && plays[2]->done(); },
                       SimTime::Seconds(10)));
  int queued = 0;
  for (auto& play : plays) {
    ASSERT_TRUE(play->value->ok());
    if ((*play->value)->queued) {
      ++queued;
    }
  }
  EXPECT_EQ(queued, 1);
  EXPECT_EQ(calliope.coordinator().pending_request_count(), 1u);

  // When the 30-second movies end, the queued request gets its resources.
  EXPECT_TRUE(RunUntil(calliope.sim(),
                       [&] { return calliope.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(60)));
  calliope.sim().RunFor(SimTime::Seconds(5));
  EXPECT_GT(client.FindPort("tv2")->packets_received(), 0);
}

TEST(IntegrationTest, AdminCanDeleteContentAndNonAdminCannot) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(10), 0, false).ok());

  CalliopeClient& bob = calliope.AddClient("bobhost");
  CoResult<Status> bob_connected;
  Collect(bob.Connect("bob", "bob-key"), &bob_connected);
  RunUntil(calliope.sim(), [&] { return bob_connected.done(); }, SimTime::Seconds(5));
  CoResult<Status> bob_delete;
  Collect(bob.DeleteContent("movie"), &bob_delete);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return bob_delete.done(); }, SimTime::Seconds(5)));
  EXPECT_FALSE(bob_delete.value->ok());

  CalliopeClient& alice = calliope.AddClient("alicehost");
  CoResult<Status> alice_connected;
  Collect(alice.Connect("alice", "alice-key"), &alice_connected);
  RunUntil(calliope.sim(), [&] { return alice_connected.done(); }, SimTime::Seconds(5));
  CoResult<Status> alice_delete;
  Collect(alice.DeleteContent("movie"), &alice_delete);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return alice_delete.done(); }, SimTime::Seconds(5)));
  EXPECT_TRUE(alice_delete.value->ok()) << alice_delete.value->ToString();

  // Gone from the catalog and from the MSU file system.
  EXPECT_FALSE(calliope.coordinator().catalog().FindContent("movie").ok());
  EXPECT_FALSE(calliope.msu(0).fs().Lookup("movie.mpg").ok());
}

TEST(IntegrationTest, CorruptPageTerminatesStreamCleanly) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(120), 0, false).ok());
  // Scribble over a page ~8 seconds in.
  auto file = calliope.msu(0).fs().Lookup("movie.mpg");
  ASSERT_TRUE(file.ok());
  calliope.msu(0).fs().CorruptPageForTesting(*file, 6);

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  const GroupId group = (*play.value)->group;

  // The stream dies at the bad page instead of stalling the viewer forever;
  // the group terminates and the Coordinator releases the slot.
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return client.GroupTerminated(group); },
                       SimTime::Seconds(30)));
  EXPECT_EQ(calliope.coordinator().active_stream_count(), 0u);
  // Roughly the first six pages' worth of packets arrived (~63 per page).
  const int64_t received = client.FindPort("tv")->packets_received();
  EXPECT_GT(received, 5 * 60);
  EXPECT_LT(received, 8 * 66);
}

TEST(IntegrationTest, RecordWhilePlayingSharesTheDisks) {
  // The disk processes interleave playback reads and recording writes in the
  // same round-robin duty cycle.
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(60), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));

  // Three viewers...
  for (int i = 0; i < 3; ++i) {
    CoResult<Result<ClientDisplayPort*>> port;
    Collect(client.RegisterPort("tv" + std::to_string(i), "mpeg1"), &port);
    RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
    CoResult<Result<CalliopeClient::StartResult>> play;
    Collect(client.Play("movie", "tv" + std::to_string(i)), &play);
    ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
    ASSERT_TRUE(play.value->ok());
  }
  // ...and one camera recording at the same time.
  CoResult<Result<ClientDisplayPort*>> cam;
  Collect(client.RegisterPort("cam", "rtp-video"), &cam);
  RunUntil(calliope.sim(), [&] { return cam.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> record;
  Collect(client.Record("live", "rtp-video", "cam", SimTime::Seconds(60)), &record);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return record.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(record.value->ok());
  const PacketSequence packets = GenerateVbr(Graph2File(0), SimTime::Seconds(12));
  CoResult<Result<int64_t>> sent;
  Collect(client.SendRecording((*record.value)->group, 0, packets), &sent);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return sent.done(); }, SimTime::Seconds(30)));

  CoResult<Status> quit;
  Collect(client.Quit((*record.value)->group), &quit);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return quit.done(); }, SimTime::Seconds(10)));
  ASSERT_TRUE(quit.value->ok());

  // Everyone made progress: viewers received on schedule, recording sealed.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(client.FindPort("tv" + std::to_string(i))->packets_received(), 300) << i;
  }
  EXPECT_TRUE(calliope.msu(0).fs().Lookup("live.dat").ok());
  EXPECT_GT(calliope.msu(0).fs().metadata_flushes(), 0);
}

TEST(IntegrationTest, SeekStormStaysConsistent) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(600), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  const GroupId group = (*play.value)->group;

  // A dozen rapid-fire seeks all over the file, each acknowledged.
  const int64_t targets[] = {500, 10, 300, 42, 599, 0, 250, 123, 400, 7, 550, 60};
  for (int64_t target : targets) {
    CoResult<Status> sought;
    Collect(client.Vcr(group, VcrCommand::Op::kSeek, SimTime::Seconds(target)), &sought);
    ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return sought.done(); }, SimTime::Seconds(10)));
    EXPECT_TRUE(sought.value->ok()) << target << ": " << sought.value->ToString();
    calliope.sim().RunFor(SimTime::Millis(300));
  }
  // Still delivering from the final position.
  const int64_t before = client.FindPort("tv")->packets_received();
  calliope.sim().RunFor(SimTime::Seconds(5));
  EXPECT_GT(client.FindPort("tv")->packets_received(), before + 180);
  EXPECT_EQ(calliope.coordinator().active_stream_count(), 1u);
}

TEST(IntegrationTest, LateJoinersQueueAndInheritFreedSlots) {
  // A revolving audience: as early streams end, queued requests take over.
  InstallationConfig config;
  config.coordinator.disk_budget = DataRate::MegabitsPerSec(3.2);  // 2 per disk
  config.msu_machine.disks_per_hba = {1};
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("clip", SimTime::Seconds(15), 0, false).ok());

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));

  std::vector<std::unique_ptr<CoResult<Result<CalliopeClient::StartResult>>>> plays;
  for (int i = 0; i < 6; ++i) {
    CoResult<Result<ClientDisplayPort*>> port;
    Collect(client.RegisterPort("tv" + std::to_string(i), "mpeg1"), &port);
    RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
    plays.push_back(std::make_unique<CoResult<Result<CalliopeClient::StartResult>>>());
    Collect(client.Play("clip", "tv" + std::to_string(i)), plays.back().get());
  }
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return plays.back()->done(); },
                       SimTime::Seconds(10)));
  EXPECT_GE(calliope.coordinator().pending_request_count(), 3u);

  // Three 15-second generations: everyone eventually gets served.
  EXPECT_TRUE(RunUntil(calliope.sim(),
                       [&] { return calliope.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(90)));
  calliope.sim().RunFor(SimTime::Seconds(10));
  for (int i = 0; i < 6; ++i) {
    EXPECT_GT(client.FindPort("tv" + std::to_string(i))->packets_received(), 0) << i;
  }
}

}  // namespace
}  // namespace calliope
