// End-to-end tests of a whole Calliope installation: Coordinator + MSUs +
// clients over the simulated networks.
#include <gtest/gtest.h>

#include "src/calliope/calliope.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

TEST(IntegrationTest, BootRegistersAllMsus) {
  InstallationConfig config;
  config.msu_count = 3;
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  EXPECT_TRUE(cluster.coordinator().MsuUp("msu0"));
  EXPECT_TRUE(cluster.coordinator().MsuUp("msu1"));
  EXPECT_TRUE(cluster.coordinator().MsuUp("msu2"));
}

TEST(IntegrationTest, PlaySingleMpegStreamEndToEnd) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("movie", SimTime::Seconds(60), 0, false).ok());

  auto client = cluster.AddConnectedClient("client0");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto play = PlayOn(cluster.sim(), **client, "movie", "tv");
  ASSERT_TRUE(play.ok()) << play.status().ToString();
  EXPECT_FALSE(play->queued);

  // 10 seconds of playback: ~458 packets at 1.5 Mbit/s in 4 KB packets.
  cluster.sim().RunFor(SimTime::Seconds(10));
  ClientDisplayPort* tv = (*client)->FindPort("tv");
  ASSERT_NE(tv, nullptr);
  EXPECT_GT(tv->packets_received(), 400);
  EXPECT_LT(tv->packets_received(), 520);
  EXPECT_EQ(tv->glitches(), 0);

  // Quit tears the stream down and the Coordinator hears about it.
  const Status quit = QuitGroup(cluster.sim(), **client, play->group);
  EXPECT_TRUE(quit.ok()) << quit.ToString();
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().active_stream_count() == 0; },
                       SimTime::Seconds(5)));
  EXPECT_EQ(cluster.coordinator().DiskLoad("msu0", 0), DataRate());
}

TEST(IntegrationTest, PlaybackRunsToEndOfContentAndTerminates) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("short", SimTime::Seconds(5), 0, false).ok());

  auto client = cluster.AddConnectedClient("client0");
  ASSERT_TRUE(client.ok());
  auto play = PlayOn(cluster.sim(), **client, "short", "tv");
  ASSERT_TRUE(play.ok());

  // Let the whole 5-second movie play out; the MSU ends the stream itself.
  EXPECT_TRUE(WaitForTermination(cluster.sim(), **client, play->group, SimTime::Seconds(30)));
  EXPECT_EQ(cluster.coordinator().active_stream_count(), 0u);
}

TEST(IntegrationTest, PauseStopsDeliveryAndResumeContinues) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("movie", SimTime::Seconds(120), 0, false).ok());

  auto client = cluster.AddConnectedClient("client0");
  ASSERT_TRUE(client.ok());
  auto play = PlayOn(cluster.sim(), **client, "movie", "tv");
  ASSERT_TRUE(play.ok());
  const GroupId group = play->group;

  cluster.sim().RunFor(SimTime::Seconds(5));
  const Status paused = VcrOp(cluster.sim(), **client, group, VcrCommand::Op::kPause);
  ASSERT_TRUE(paused.ok()) << paused.ToString();

  ClientDisplayPort* tv = (*client)->FindPort("tv");
  cluster.sim().RunFor(SimTime::Seconds(1));  // drain in-flight packets
  const int64_t at_pause = tv->packets_received();
  cluster.sim().RunFor(SimTime::Seconds(5));
  EXPECT_EQ(tv->packets_received(), at_pause);  // paused: nothing arrives

  const Status resumed = VcrOp(cluster.sim(), **client, group, VcrCommand::Op::kPlay);
  ASSERT_TRUE(resumed.ok());
  cluster.sim().RunFor(SimTime::Seconds(5));
  EXPECT_GT(tv->packets_received(), at_pause + 180);
}

TEST(IntegrationTest, SeekJumpsPosition) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("movie", SimTime::Seconds(300), 0, false).ok());

  auto client = cluster.AddConnectedClient("client0");
  ASSERT_TRUE(client.ok());
  auto play = PlayOn(cluster.sim(), **client, "movie", "tv");
  ASSERT_TRUE(play.ok());
  const GroupId group = play->group;

  cluster.sim().RunFor(SimTime::Seconds(3));
  // Seek near the end; playback should finish within ~15 s + slack, which it
  // never could from the 3-second mark without the seek.
  const Status sought =
      VcrOp(cluster.sim(), **client, group, VcrCommand::Op::kSeek, SimTime::Seconds(285));
  ASSERT_TRUE(sought.ok()) << sought.ToString();
  EXPECT_TRUE(WaitForTermination(cluster.sim(), **client, group, SimTime::Seconds(30)));
}

TEST(IntegrationTest, FastForwardUsesFilteredFile) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation()
                  .LoadMpegMovie("movie", SimTime::Seconds(300), 0, /*with_fast_scan=*/true)
                  .ok());

  auto client = cluster.AddConnectedClient("client0");
  ASSERT_TRUE(client.ok());
  auto play = PlayOn(cluster.sim(), **client, "movie", "tv");
  ASSERT_TRUE(play.ok());
  const GroupId group = play->group;

  cluster.sim().RunFor(SimTime::Seconds(3));
  const Status ff = VcrOp(cluster.sim(), **client, group, VcrCommand::Op::kFastForward);
  ASSERT_TRUE(ff.ok()) << ff.ToString();

  // The fast-forward file covers the movie in 1/15 of the time; from the
  // 3-second mark the whole rest plays out in under ~25 seconds.
  EXPECT_TRUE(WaitForTermination(cluster.sim(), **client, group, SimTime::Seconds(40)));
}

TEST(IntegrationTest, FastForwardWithoutVariantFailsCleanly) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation()
                  .LoadMpegMovie("movie", SimTime::Seconds(60), 0, /*with_fast_scan=*/false)
                  .ok());

  auto client = cluster.AddConnectedClient("client0");
  ASSERT_TRUE(client.ok());
  auto play = PlayOn(cluster.sim(), **client, "movie", "tv");
  ASSERT_TRUE(play.ok());

  const Status ff = VcrOp(cluster.sim(), **client, play->group, VcrCommand::Op::kFastForward);
  EXPECT_FALSE(ff.ok());
}

TEST(IntegrationTest, RecordThenPlayBack) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());

  auto client = cluster.AddConnectedClient("client0");
  ASSERT_TRUE(client.ok());
  auto record =
      RecordOn(cluster.sim(), **client, "mymail", "rtp-video", "cam", SimTime::Seconds(30));
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  const GroupId record_group = record->group;

  // Feed 10 seconds of NV-like video into the recording.
  VbrSourceConfig source = Graph2File(0);
  const PacketSequence packets = GenerateVbr(source, SimTime::Seconds(10));
  CoResult<Result<int64_t>> sent;
  Collect((*client)->SendRecording(record_group, 0, packets), &sent);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return sent.done(); }, SimTime::Seconds(30)));
  ASSERT_TRUE(sent.value->ok()) << sent.value->status().ToString();
  EXPECT_EQ(static_cast<size_t>(**sent.value), packets.size());

  const Status quit = QuitGroup(cluster.sim(), **client, record_group);
  ASSERT_TRUE(quit.ok()) << quit.ToString();

  // The recording is now playable content with a duration near 10 s.
  CoResult<Result<std::vector<ContentInfo>>> listing;
  Collect((*client)->ListContent(), &listing);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return listing.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(listing.value->ok());
  bool found = false;
  for (const ContentInfo& info : **listing.value) {
    if (info.name == "mymail") {
      found = true;
      EXPECT_NEAR(info.duration.seconds(), 10.0, 1.5);
    }
  }
  ASSERT_TRUE(found);

  auto playback = PlayOn(cluster.sim(), **client, "mymail", "cam");
  ASSERT_TRUE(playback.ok()) << playback.status().ToString();
  cluster.sim().RunFor(SimTime::Seconds(5));
  EXPECT_GT((*client)->FindPort("cam")->packets_received(), 100);
}

TEST(IntegrationTest, CompositeSeminarRecordAndPlay) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());

  auto client = cluster.AddConnectedClient("client0");
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(RegisterClientPort(cluster.sim(), **client, "v", "rtp-video").ok());
  ASSERT_TRUE(RegisterClientPort(cluster.sim(), **client, "a", "vat-audio").ok());
  CoResult<Result<ClientDisplayPort*>> seminar;
  Collect((*client)->RegisterCompositePort("sem", "seminar", {"v", "a"}), &seminar);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return seminar.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(seminar.value->ok()) << seminar.value->status().ToString();

  auto record = RecordOn(cluster.sim(), **client, "talk", "seminar", "sem", SimTime::Seconds(30));
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  const GroupId group = record->group;

  // Feed both component streams.
  const PacketSequence video_packets = GenerateVbr(Graph2File(0), SimTime::Seconds(8));
  VbrSourceConfig audio_config;
  audio_config.target_average = DataRate::KilobitsPerSec(64);
  audio_config.seed = 99;
  const PacketSequence audio_packets = GenerateVbr(audio_config, SimTime::Seconds(8));
  CoResult<Result<int64_t>> video_sent;
  CoResult<Result<int64_t>> audio_sent;
  Collect((*client)->SendRecording(group, 0, video_packets), &video_sent);
  Collect((*client)->SendRecording(group, 1, audio_packets), &audio_sent);
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return video_sent.done() && audio_sent.done(); },
                       SimTime::Seconds(30)));
  ASSERT_TRUE(video_sent.value->ok());
  ASSERT_TRUE(audio_sent.value->ok());

  const Status quit = QuitGroup(cluster.sim(), **client, group);
  ASSERT_TRUE(quit.ok()) << quit.ToString();

  // Play the composite back: both ports receive their component streams.
  auto playback = PlayOn(cluster.sim(), **client, "talk", "sem");
  ASSERT_TRUE(playback.ok()) << playback.status().ToString();
  cluster.sim().RunFor(SimTime::Seconds(6));
  EXPECT_GT((*client)->FindPort("v")->packets_received(), 50);
  EXPECT_GT((*client)->FindPort("a")->packets_received(), 50);
}

TEST(IntegrationTest, MsuFailureDetectedAndRecovered) {
  InstallationConfig config;
  config.msu_count = 2;
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("movie", SimTime::Seconds(60), 0, false).ok());

  auto client = cluster.AddConnectedClient("client0");
  ASSERT_TRUE(client.ok());
  auto play = PlayOn(cluster.sim(), **client, "movie", "tv");
  ASSERT_TRUE(play.ok());
  cluster.sim().RunFor(SimTime::Seconds(2));
  ASSERT_EQ(cluster.coordinator().active_stream_count(), 1u);

  // Crash msu0: "The Coordinator detects when one of the MSUs fails by a
  // break in the TCP connection."
  cluster.msu(0).Crash();
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return !cluster.coordinator().MsuUp("msu0"); },
                       SimTime::Seconds(5)));
  EXPECT_EQ(cluster.coordinator().active_stream_count(), 0u);
  EXPECT_TRUE(cluster.coordinator().MsuUp("msu1"));

  // Restart: the MSU re-contacts the Coordinator and is restored.
  CoResult<Status> restarted;
  Collect(cluster.msu(0).Restart("coordinator"), &restarted);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return restarted.done(); }, SimTime::Seconds(10)));
  ASSERT_TRUE(restarted.value->ok()) << restarted.value->ToString();
  EXPECT_TRUE(cluster.coordinator().MsuUp("msu0"));

  // Content survived the crash: play it again.
  auto replay = PlayOn(cluster.sim(), **client, "movie", "tv");
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  cluster.sim().RunFor(SimTime::Seconds(3));
  EXPECT_GT((*client)->FindPort("tv")->packets_received(), 80);
}

TEST(IntegrationTest, RequestsQueueWhenBandwidthExhaustedAndStartLater) {
  // Shrink the admission budget so one disk holds only 2 concurrent streams.
  InstallationConfig config;
  config.coordinator.disk_budget = DataRate::MegabitsPerSec(3.2);
  config.msu_machine.disks_per_hba = {1};
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("movie", SimTime::Seconds(30), 0, false).ok());

  auto client = cluster.AddConnectedClient("client0");
  ASSERT_TRUE(client.ok());

  int queued = 0;
  for (int i = 0; i < 3; ++i) {
    auto play = PlayOn(cluster.sim(), **client, "movie", "tv" + std::to_string(i));
    ASSERT_TRUE(play.ok());
    if (play->queued) {
      ++queued;
    }
  }
  EXPECT_EQ(queued, 1);
  EXPECT_EQ(cluster.coordinator().pending_request_count(), 1u);

  // When the 30-second movies end, the queued request gets its resources.
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(60)));
  cluster.sim().RunFor(SimTime::Seconds(5));
  EXPECT_GT((*client)->FindPort("tv2")->packets_received(), 0);
}

TEST(IntegrationTest, AdminCanDeleteContentAndNonAdminCannot) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("movie", SimTime::Seconds(10), 0, false).ok());

  auto bob = cluster.AddConnectedClient("bobhost");
  ASSERT_TRUE(bob.ok());
  CoResult<Status> bob_delete;
  Collect((*bob)->DeleteContent("movie"), &bob_delete);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return bob_delete.done(); }, SimTime::Seconds(5)));
  EXPECT_FALSE(bob_delete.value->ok());

  auto alice = cluster.AddConnectedClient("alicehost", "alice", "alice-key");
  ASSERT_TRUE(alice.ok());
  CoResult<Status> alice_delete;
  Collect((*alice)->DeleteContent("movie"), &alice_delete);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return alice_delete.done(); }, SimTime::Seconds(5)));
  EXPECT_TRUE(alice_delete.value->ok()) << alice_delete.value->ToString();

  // Gone from the catalog and from the MSU file system.
  EXPECT_FALSE(cluster.coordinator().catalog().FindContent("movie").ok());
  EXPECT_FALSE(cluster.msu(0).fs().Lookup("movie.mpg").ok());
}

TEST(IntegrationTest, CorruptPageTerminatesStreamCleanly) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("movie", SimTime::Seconds(120), 0, false).ok());
  // Scribble over a page ~8 seconds in.
  auto file = cluster.msu(0).fs().Lookup("movie.mpg");
  ASSERT_TRUE(file.ok());
  cluster.msu(0).fs().CorruptPageForTesting(*file, 6);

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto play = PlayOn(cluster.sim(), **client, "movie", "tv");
  ASSERT_TRUE(play.ok());
  const GroupId group = play->group;

  // The stream dies at the bad page instead of stalling the viewer forever;
  // the group terminates and the Coordinator releases the slot.
  ASSERT_TRUE(WaitForTermination(cluster.sim(), **client, group, SimTime::Seconds(30)));
  EXPECT_EQ(cluster.coordinator().active_stream_count(), 0u);
  // Roughly the first six pages' worth of packets arrived (~63 per page).
  const int64_t received = (*client)->FindPort("tv")->packets_received();
  EXPECT_GT(received, 5 * 60);
  EXPECT_LT(received, 8 * 66);
}

TEST(IntegrationTest, RecordWhilePlayingSharesTheDisks) {
  // The disk processes interleave playback reads and recording writes in the
  // same round-robin duty cycle.
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("movie", SimTime::Seconds(60), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());

  // Three viewers...
  for (int i = 0; i < 3; ++i) {
    auto play = PlayOn(cluster.sim(), **client, "movie", "tv" + std::to_string(i));
    ASSERT_TRUE(play.ok());
  }
  // ...and one camera recording at the same time.
  auto record =
      RecordOn(cluster.sim(), **client, "live", "rtp-video", "cam", SimTime::Seconds(60));
  ASSERT_TRUE(record.ok());
  const PacketSequence packets = GenerateVbr(Graph2File(0), SimTime::Seconds(12));
  CoResult<Result<int64_t>> sent;
  Collect((*client)->SendRecording(record->group, 0, packets), &sent);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return sent.done(); }, SimTime::Seconds(30)));

  const Status quit = QuitGroup(cluster.sim(), **client, record->group);
  ASSERT_TRUE(quit.ok());

  // Everyone made progress: viewers received on schedule, recording sealed.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT((*client)->FindPort("tv" + std::to_string(i))->packets_received(), 300) << i;
  }
  EXPECT_TRUE(cluster.msu(0).fs().Lookup("live.dat").ok());
  EXPECT_GT(cluster.msu(0).fs().metadata_flushes(), 0);
}

TEST(IntegrationTest, SeekStormStaysConsistent) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("movie", SimTime::Seconds(600), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto play = PlayOn(cluster.sim(), **client, "movie", "tv");
  ASSERT_TRUE(play.ok());
  const GroupId group = play->group;

  // A dozen rapid-fire seeks all over the file, each acknowledged.
  const int64_t targets[] = {500, 10, 300, 42, 599, 0, 250, 123, 400, 7, 550, 60};
  for (int64_t target : targets) {
    const Status sought =
        VcrOp(cluster.sim(), **client, group, VcrCommand::Op::kSeek, SimTime::Seconds(target));
    EXPECT_TRUE(sought.ok()) << target << ": " << sought.ToString();
    cluster.sim().RunFor(SimTime::Millis(300));
  }
  // Still delivering from the final position.
  const int64_t before = (*client)->FindPort("tv")->packets_received();
  cluster.sim().RunFor(SimTime::Seconds(5));
  EXPECT_GT((*client)->FindPort("tv")->packets_received(), before + 180);
  EXPECT_EQ(cluster.coordinator().active_stream_count(), 1u);
}

TEST(IntegrationTest, LateJoinersQueueAndInheritFreedSlots) {
  // A revolving audience: as early streams end, queued requests take over.
  InstallationConfig config;
  config.coordinator.disk_budget = DataRate::MegabitsPerSec(3.2);  // 2 per disk
  config.msu_machine.disks_per_hba = {1};
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("clip", SimTime::Seconds(15), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());

  for (int i = 0; i < 6; ++i) {
    auto play = PlayOn(cluster.sim(), **client, "clip", "tv" + std::to_string(i));
    ASSERT_TRUE(play.ok());
  }
  EXPECT_GE(cluster.coordinator().pending_request_count(), 3u);

  // Three 15-second generations: everyone eventually gets served.
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(90)));
  cluster.sim().RunFor(SimTime::Seconds(10));
  for (int i = 0; i < 6; ++i) {
    EXPECT_GT((*client)->FindPort("tv" + std::to_string(i))->packets_received(), 0) << i;
  }
}

}  // namespace
}  // namespace calliope
