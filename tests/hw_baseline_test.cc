// Calibration tests for the hardware models against the paper's §3.1
// baseline measurements (Table 1) and §2.3.3/§3.2.3 claims. These replicate
// the paper's simple test programs: a disk process doing random 256 KB raw
// reads and a ttcp-like UDP blaster.
#include <gtest/gtest.h>

#include "src/hw/machine.h"
#include "src/sim/task.h"
#include "src/util/rng.h"

namespace calliope {
namespace {

constexpr Bytes kBlock = Bytes::KiB(256);
constexpr Bytes kTtcpPacket = Bytes::KiB(4);

// Paper's disk test: "256 KByte reads of the raw disk device at random
// offsets", issued back to back.
Task RandomReader(Disk& disk, uint64_t seed) {
  Rng rng(seed);
  const int64_t blocks = disk.capacity() / kBlock;
  for (;;) {
    const Bytes offset = kBlock * static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(blocks)));
    co_await disk.Read(offset, kBlock);
  }
}

Task SequentialReader(Disk& disk) {
  const int64_t blocks = disk.capacity() / kBlock;
  for (int64_t i = 0;; i = (i + 1) % blocks) {
    co_await disk.Read(kBlock * i, kBlock);
  }
}

// Paper's modified ttcp: sends 4 KB UDP packets from a large buffer; on
// ENOBUFS it sleeps briefly and retries.
Task TtcpSender(Nic& nic) {
  for (;;) {
    co_await nic.SendBlocking(Frame{kTtcpPacket});
  }
}

TEST(HwBaselineTest, SingleDiskRandomReadsSustain3point6MBps) {
  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = {1};
  Machine machine(sim, params, "msu");
  RandomReader(machine.disk(0), 42);
  sim.RunFor(SimTime::Seconds(60));
  const double mbps = machine.disk(0).bytes_transferred().megabytes() / 60.0;
  // Paper Table 1, "1 disk (one HBA)", disks only: 3.6 MB/s.
  EXPECT_NEAR(mbps, 3.6, 0.25);
}

TEST(HwBaselineTest, SequentialReadsReachAbout70PercentBonusOverRandom) {
  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = {1};
  Machine machine(sim, params, "msu");
  SequentialReader(machine.disk(0));
  sim.RunFor(SimTime::Seconds(60));
  const double seq_mbps = machine.disk(0).bytes_transferred().megabytes() / 60.0;
  // Paper §2.3.3: "With 256 KByte transfers, the MSU achieves 70% of the
  // maximum disk transfer bandwidth" — i.e. random/seq ~ 0.7. Sequential
  // should approach the media rate.
  EXPECT_GT(seq_mbps, 4.6);
  EXPECT_NEAR(3.6 / seq_mbps, 0.70, 0.08);
}

TEST(HwBaselineTest, TwoDisksOneHbaSaturateTheChain) {
  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = {2};
  Machine machine(sim, params, "msu");
  RandomReader(machine.disk(0), 1);
  RandomReader(machine.disk(1), 2);
  sim.RunFor(SimTime::Seconds(60));
  const double d0 = machine.disk(0).bytes_transferred().megabytes() / 60.0;
  const double d1 = machine.disk(1).bytes_transferred().megabytes() / 60.0;
  // Paper Table 1, "2 disk (one HBA)", disks only: 2.8 each.
  EXPECT_NEAR(d0, 2.8, 0.3);
  EXPECT_NEAR(d1, 2.8, 0.3);
}

TEST(HwBaselineTest, FddiAloneReaches8point5MBps) {
  Simulator sim;
  Machine machine(sim, MicronP66(), "msu");
  TtcpSender(machine.fddi());
  sim.RunFor(SimTime::Seconds(30));
  const double mbps = machine.fddi().bytes_sent().megabytes() / 30.0;
  // Paper Table 1, "0 disk", FDDI only: 8.5 MB/s.
  EXPECT_NEAR(mbps, 8.5, 0.5);
}

TEST(HwBaselineTest, TwoHbasCollapseFddiThroughput) {
  // Paper Table 1: FDDI drops from 4.7 MB/s (2 disks, one HBA) to 2.3 MB/s
  // (2 disks, two HBAs) because port-I/O stalls starve the send path.
  auto run_config = [](std::vector<int> disks_per_hba) {
    Simulator sim;
    MachineParams params = MicronP66();
    params.disks_per_hba = std::move(disks_per_hba);
    Machine machine(sim, params, "msu");
    TtcpSender(machine.fddi());
    int seed = 10;
    for (size_t d = 0; d < machine.disk_count(); ++d) {
      RandomReader(machine.disk(d), static_cast<uint64_t>(seed++));
    }
    sim.RunFor(SimTime::Seconds(30));
    return machine.fddi().bytes_sent().megabytes() / 30.0;
  };
  const double one_hba = run_config({2});
  const double two_hba = run_config({1, 1});
  EXPECT_GT(one_hba, 4.0);
  EXPECT_LT(two_hba, one_hba * 0.65);  // dramatic collapse
}

TEST(HwBaselineTest, ElevatorBeatsFifoByAboutSixPercent) {
  // Paper §2.3.3: "a simple program that simulated 24 concurrent users
  // reading random 256 KByte disk blocks ... elevator scheduling improves
  // throughput by only about 6%".
  auto run_with = [](DiskQueueDiscipline discipline) {
    Simulator sim;
    MachineParams params = MicronP66();
    params.disks_per_hba = {1};
    Machine machine(sim, params, "msu");
    machine.disk(0).set_discipline(discipline);
    for (int u = 0; u < 24; ++u) {
      RandomReader(machine.disk(0), static_cast<uint64_t>(100 + u));
    }
    sim.RunFor(SimTime::Seconds(120));
    return machine.disk(0).bytes_transferred().megabytes() / 120.0;
  };
  const double fifo = run_with(DiskQueueDiscipline::kFifo);
  const double elevator = run_with(DiskQueueDiscipline::kElevator);
  const double gain = elevator / fifo - 1.0;
  EXPECT_GT(gain, 0.02);
  EXPECT_LT(gain, 0.12);
}

TEST(HwBaselineTest, CoarseTimerQuantizesWakeups) {
  Simulator sim;
  CoarseTimer timer(sim);
  EXPECT_EQ(timer.NextTickAtOrAfter(SimTime::Millis(13)), SimTime::Millis(20));
  EXPECT_EQ(timer.NextTickAtOrAfter(SimTime::Millis(20)), SimTime::Millis(20));
  EXPECT_EQ(timer.NextTickAtOrAfter(SimTime()), SimTime());
}

TEST(HwBaselineTest, NicReportsEnobufsWhenOutputQueueFull) {
  Simulator sim;
  MachineParams params = MicronP66();
  params.fddi.output_queue_limit = 2;
  params.fddi.wire_rate = DataRate::MegabitsPerSec(1);  // slow wire to back up
  Machine machine(sim, params, "msu");
  TtcpSender(machine.fddi());
  sim.RunFor(SimTime::Seconds(2));
  EXPECT_GT(machine.fddi().enobufs_count(), 0);
}

}  // namespace
}  // namespace calliope
