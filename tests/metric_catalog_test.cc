// Metric-catalog lint: every instrument a full-feature installation
// publishes must have a row in docs/OBSERVABILITY.md's catalog tables with
// the right kind, and every catalog row must match at least one published
// instrument — so the doc can never silently drift from the code.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "src/load/workload.h"
#include "tests/test_util.h"

#ifndef CALLIOPE_SOURCE_DIR
#error "CALLIOPE_SOURCE_DIR must point at the repo root"
#endif

namespace calliope {
namespace {

struct CatalogRow {
  std::string pattern;  // documented name, placeholders intact
  std::string kind;     // counter | gauge | histogram
  std::regex regex;
  bool matched = false;
};

// Parses every `| `name` | kind | meaning |` table row in the catalog.
// Placeholders become regexes: <node> an MSU node name, <d>/<N> an integer,
// <name> an SLO name.
std::vector<CatalogRow> LoadCatalog(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::vector<CatalogRow> rows;
  const std::regex row_pattern(R"(^\| `([^`]+)` \| (counter|gauge|histogram) \|)");
  std::string line;
  while (std::getline(in, line)) {
    std::smatch match;
    if (!std::regex_search(line, match, row_pattern)) {
      continue;
    }
    CatalogRow row;
    row.pattern = match[1];
    row.kind = match[2];
    std::string regex_text;
    for (size_t i = 0; i < row.pattern.size(); ++i) {
      const char c = row.pattern[i];
      if (c == '<') {
        const size_t close = row.pattern.find('>', i);
        EXPECT_NE(close, std::string::npos) << row.pattern;
        const std::string placeholder = row.pattern.substr(i + 1, close - i - 1);
        if (placeholder == "node") {
          regex_text += "msu[0-9]+";
        } else if (placeholder == "d" || placeholder == "N") {
          regex_text += "[0-9]+";
        } else if (placeholder == "name") {
          regex_text += "[A-Za-z0-9_-]+";
        } else if (placeholder == "class") {
          regex_text += "(interactive|standard|bulk)";
        } else {
          ADD_FAILURE() << "unknown placeholder <" << placeholder << "> in " << row.pattern;
        }
        i = close;
      } else if (c == '.') {
        regex_text += "\\.";
      } else {
        regex_text += c;
      }
    }
    row.regex = std::regex("^" + regex_text + "$");
    rows.push_back(std::move(row));
  }
  EXPECT_GT(rows.size(), 30u) << "catalog parse came up nearly empty — format drift?";
  return rows;
}

// The second HA coordinator republishes everything under coord2.*; the doc
// documents that with one sentence, not duplicate rows.
std::string Normalized(const std::string& name) {
  if (name.rfind("coord2.", 0) == 0) {
    return "coord." + name.substr(7);
  }
  return name;
}

void MergeSnapshot(const MetricsSnapshot& snapshot,
                   std::map<std::string, std::string>& published) {
  for (const auto& [name, value] : snapshot.counters) {
    published[Normalized(name)] = "counter";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    published[Normalized(name)] = "gauge";
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    published[Normalized(name)] = "histogram";
  }
}

TEST(MetricCatalogTest, EveryPublishedMetricIsDocumentedAndViceVersa) {
  std::map<std::string, std::string> published;  // name -> kind

  {
    // Full-feature installation A: HA standby + rebalancing + faults +
    // sampler + SLO. Sharing is requested so the explicit HA force-disable
    // (coord.sharing.disabled_ha) is published too.
    InstallationConfig config;
    config.msu_count = 2;
    config.standby_coordinator = true;
    config.coordinator.sharing.enabled = true;
    config.coordinator.rebalance.enabled = true;
    config.sampler.period = SimTime::Millis(500);
    SloSpec slo;
    slo.name = "lateness-p99";
    slo.signal = SloSpec::Signal::kLatenessP99;
    slo.threshold = SimTime::Millis(50).micros();
    config.slos.push_back(slo);
    Installation calliope(config);
    ASSERT_TRUE(calliope.Boot().ok());
    ASSERT_TRUE(calliope.ApplyFaultPlan(FaultPlan()).ok());
    calliope.sim().RunFor(SimTime::Seconds(1));
    MergeSnapshot(calliope.metrics().Snapshot(), published);
  }
  {
    // Installation B: stream sharing + interval cache (sharing is force-
    // disabled under HA, so it needs its own installation).
    InstallationConfig config;
    config.msu_count = 1;
    config.coordinator.sharing.enabled = true;
    config.msu.cache_memory = Bytes::MiB(16);
    Installation calliope(config);
    ASSERT_TRUE(calliope.Boot().ok());
    MergeSnapshot(calliope.metrics().Snapshot(), published);
  }
  {
    // Installation C: traffic control (admission classes + shedding) and the
    // workload generator's load.* instruments.
    InstallationConfig config;
    config.msu_count = 1;
    config.coordinator.traffic.enabled = true;
    config.sampler.period = SimTime::Millis(500);
    Installation calliope(config);
    ASSERT_TRUE(calliope.Boot().ok());
    WorkloadConfig workload;
    workload.titles = 1;
    workload.archive_titles = 1;
    workload.client_hosts = 1;
    workload.phases = {WorkloadPhase(SimTime::Seconds(1), 1.0)};
    WorkloadDriver driver(calliope, workload);
    ASSERT_TRUE(driver.Prepare().ok());
    driver.Start();
    calliope.sim().RunFor(SimTime::Seconds(2));
    MergeSnapshot(calliope.metrics().Snapshot(), published);
  }
  ASSERT_GT(published.size(), 30u);

  std::vector<CatalogRow> catalog =
      LoadCatalog(std::string(CALLIOPE_SOURCE_DIR) + "/docs/OBSERVABILITY.md");

  for (const auto& [name, kind] : published) {
    bool documented = false;
    for (CatalogRow& row : catalog) {
      if (std::regex_match(name, row.regex)) {
        row.matched = true;
        documented = true;
        EXPECT_EQ(kind, row.kind)
            << name << " is published as a " << kind << " but documented as a " << row.kind
            << " (row `" << row.pattern << "`)";
      }
    }
    EXPECT_TRUE(documented) << name << " (" << kind
                            << ") is published but has no docs/OBSERVABILITY.md catalog row";
  }
  for (const CatalogRow& row : catalog) {
    EXPECT_TRUE(row.matched) << "stale catalog row `" << row.pattern << "` (" << row.kind
                             << "): no full-feature installation publishes a matching metric";
  }
}

}  // namespace
}  // namespace calliope
