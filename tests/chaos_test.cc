// Chaos harness (the fault-injection tentpole): a seeded random workload —
// plays, recordings, VCR commands — composed with a seeded random FaultPlan
// covering every fault class, after which global invariants must hold:
//
//   * ledger conservation: CheckInvariants passes, zero outstanding holds,
//     zero reserved bandwidth once the cluster quiesces;
//   * no stream is left neither delivering nor failed: every group reaches a
//     terminal state, and MSUs/Coordinator drain to zero active streams;
//   * delivery-schedule monotonicity: no client port ever observes a
//     datagram sequence number at or below one it already saw;
//   * determinism: the same seed yields a bit-identical event trace.
//
// The seed comes from CALLIOPE_CHAOS_SEED; ctest registers a sweep of seeds
// (`ctest -R chaos` runs them all).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "src/obs/report_diff.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("CALLIOPE_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

// One scripted workload op. The schedule is derived from the seed alone, so
// a run's behavior is a pure function of (seed, binary).
struct ChaosOp {
  ChaosOp() = default;

  enum class Kind { kPlay, kPlayVbr, kRecord, kPause, kResume, kSeek, kFastForward, kQuit };
  Kind kind = Kind::kPlay;
  SimTime at;
  int arg = 0;  // title / group / seek-target selector
};

const char* KindName(ChaosOp::Kind kind) {
  switch (kind) {
    case ChaosOp::Kind::kPlay:
      return "play";
    case ChaosOp::Kind::kPlayVbr:
      return "play-vbr";
    case ChaosOp::Kind::kRecord:
      return "record";
    case ChaosOp::Kind::kPause:
      return "pause";
    case ChaosOp::Kind::kResume:
      return "resume";
    case ChaosOp::Kind::kSeek:
      return "seek";
    case ChaosOp::Kind::kFastForward:
      return "ff";
    case ChaosOp::Kind::kQuit:
      return "quit";
  }
  return "?";
}

std::vector<ChaosOp> MakeSchedule(uint64_t seed) {
  Rng rng(seed ^ 0xC4A05u);
  std::vector<ChaosOp> ops;
  SimTime t = SimTime::Millis(400);
  for (int i = 0; i < 14; ++i) {
    t += SimTime::Millis(rng.NextInRange(600, 2200));
    ChaosOp op;
    op.at = t;
    op.arg = static_cast<int>(rng.NextInRange(0, 1 << 20));
    if (i < 2) {
      op.kind = ChaosOp::Kind::kPlay;  // seed the system with targets first
    } else {
      switch (rng.NextInRange(0, 9)) {
        case 0:
        case 1:
        case 2:
          op.kind = ChaosOp::Kind::kPlay;
          break;
        case 3:
          op.kind = ChaosOp::Kind::kPlayVbr;
          break;
        case 4:
          op.kind = ChaosOp::Kind::kRecord;
          break;
        case 5:
          op.kind = ChaosOp::Kind::kPause;
          break;
        case 6:
          op.kind = ChaosOp::Kind::kResume;
          break;
        case 7:
          op.kind = ChaosOp::Kind::kSeek;
          break;
        case 8:
          op.kind = ChaosOp::Kind::kFastForward;
          break;
        default:
          op.kind = ChaosOp::Kind::kQuit;
          break;
      }
    }
    ops.push_back(op);
  }
  return ops;
}

struct ChaosResult {
  ChaosResult() = default;

  std::string trace;
  std::string report;  // ClusterReport::ToJson — part of the determinism contract
  ClusterReport cluster_report;  // structural form, for DiffClusterReports
  FaultPlan plan;
};

// Runs one full chaos episode and checks every invariant with EXPECTs (this
// helper returns a value, so gtest's fatal ASSERTs are off the table).
ChaosResult RunChaos(uint64_t seed) {
  ChaosResult result;
  InstallationConfig config;
  config.seed = seed;
  config.msu_count = 3;
  // Continuous telemetry rides along with every chaos run: the sampler is
  // observer-only, so it must not perturb any invariant, and its timeline
  // is part of the determinism contract checked below.
  config.sampler.period = SimTime::Millis(250);
  SloSpec slo;
  slo.name = "chaos-lateness-p99";
  slo.signal = SloSpec::Signal::kLatenessP99;
  slo.threshold = SimTime::Millis(20).micros();
  slo.min_breach_windows = 2;
  config.slos.push_back(slo);
  TestCluster cluster(config);
  // Record spans for every run so a failing seed can dump a Chrome trace
  // (set_enabled directly: EnableTracing would clobber a CALLIOPE_TRACE path).
  cluster.installation().trace().set_enabled(true);
  Simulator& sim = cluster.sim();
  std::string& trace = result.trace;
  auto note = [&](const std::string& line) {
    trace += "t=" + sim.Now().ToString() + " " + line + "\n";
  };

  EXPECT_TRUE(cluster.Boot().ok());
  for (int i = 0; i < 4; ++i) {
    const std::string name = "m" + std::to_string(i);
    EXPECT_TRUE(cluster.installation()
                    .LoadMpegMovie(name, SimTime::Seconds(15), static_cast<size_t>(i % 3),
                                   /*with_fast_scan=*/true)
                    .ok());
    EXPECT_TRUE(cluster.installation().ReplicateContent(name, static_cast<size_t>((i + 1) % 3)).ok());
  }
  EXPECT_TRUE(cluster.installation()
                  .LoadPackets("vbr0", "rtp-video",
                               GenerateVbr(Graph2File(0), SimTime::Seconds(12)), 1)
                  .ok());
  EXPECT_TRUE(cluster.installation().ReplicateContent("vbr0", 2).ok());

  FaultPlanOptions options;
  options.msu_nodes = {"msu0", "msu1", "msu2"};
  options.other_nodes = {"coordinator", "c"};
  options.horizon = SimTime::Seconds(28);
  FaultPlan plan = FaultPlan::Random(seed, options);
  result.plan = plan;
  trace += plan.ToString();
  EXPECT_TRUE(cluster.installation().ApplyFaultPlan(plan).ok());
  cluster.installation().fault_injector()->set_trace(
      [&trace](const std::string& line) { trace += line + "\n"; });

  auto added = cluster.AddConnectedClient("c");
  EXPECT_TRUE(added.ok()) << added.status().ToString();
  if (!added.ok()) {
    return result;
  }
  CalliopeClient* client = *added;

  std::vector<GroupId> live;
  std::vector<GroupId> all_groups;
  std::vector<std::string> ports;
  std::vector<std::unique_ptr<CoResult<Result<int64_t>>>> sends;
  const PacketSequence recording_feed = GenerateVbr(Graph2File(1), SimTime::Seconds(4));
  int next_port = 0;
  int next_recording = 0;

  for (const ChaosOp& op : MakeSchedule(seed)) {
    if (op.at > sim.Now()) {
      sim.RunFor(op.at - sim.Now());
    }
    // A Coordinator restart killed the session: open a fresh one (the paper's
    // amnesia model — clients must re-establish state themselves).
    if (!client->connected()) {
      const Status reconnected = ConnectClient(sim, *client);
      note(std::string("reconnect -> ") + reconnected.ToString());
      if (!reconnected.ok()) {
        note(std::string(KindName(op.kind)) + " skipped: no session");
        continue;
      }
    }
    switch (op.kind) {
      case ChaosOp::Kind::kPlay:
      case ChaosOp::Kind::kPlayVbr: {
        const bool vbr = op.kind == ChaosOp::Kind::kPlayVbr;
        const std::string title = vbr ? "vbr0" : "m" + std::to_string(op.arg % 4);
        const std::string port = "p" + std::to_string(next_port++);
        auto play = PlayOn(sim, *client, title, port, vbr ? "rtp-video" : "mpeg1");
        ports.push_back(port);
        if (play.ok()) {
          note("play " + title + " on " + port +
               (play->queued ? " -> queued" : " -> started"));
          live.push_back(play->group);
          all_groups.push_back(play->group);
        } else {
          note("play " + title + " -> " + play.status().ToString());
        }
        break;
      }
      case ChaosOp::Kind::kRecord: {
        const std::string name = "rec" + std::to_string(next_recording++);
        const std::string port = "q" + std::to_string(next_port++);
        auto record = RecordOn(sim, *client, name, "rtp-video", port, SimTime::Seconds(20));
        ports.push_back(port);
        if (record.ok()) {
          note("record " + name + " on " + port +
               (record->queued ? " -> queued" : " -> started"));
          live.push_back(record->group);
          all_groups.push_back(record->group);
          sends.push_back(std::make_unique<CoResult<Result<int64_t>>>());
          Collect(client->SendRecording(record->group, 0, recording_feed),
                  sends.back().get());
        } else {
          note("record " + name + " -> " + record.status().ToString());
        }
        break;
      }
      case ChaosOp::Kind::kPause:
      case ChaosOp::Kind::kResume:
      case ChaosOp::Kind::kSeek:
      case ChaosOp::Kind::kFastForward:
      case ChaosOp::Kind::kQuit: {
        // Retire groups that ended on their own before picking a target.
        std::erase_if(live, [&](GroupId g) { return client->GroupTerminated(g); });
        if (live.empty()) {
          note(std::string(KindName(op.kind)) + " -> no live group");
          break;
        }
        const size_t pick = static_cast<size_t>(op.arg) % live.size();
        const GroupId group = live[pick];
        VcrCommand::Op vcr_op = VcrCommand::Op::kQuit;
        SimTime seek_to;
        switch (op.kind) {
          case ChaosOp::Kind::kPause:
            vcr_op = VcrCommand::Op::kPause;
            break;
          case ChaosOp::Kind::kResume:
            vcr_op = VcrCommand::Op::kPlay;
            break;
          case ChaosOp::Kind::kSeek:
            vcr_op = VcrCommand::Op::kSeek;
            seek_to = SimTime::Seconds(op.arg % 14);
            break;
          case ChaosOp::Kind::kFastForward:
            vcr_op = VcrCommand::Op::kFastForward;
            break;
          default:
            break;
        }
        const Status done = VcrOp(sim, *client, group, vcr_op, seek_to);
        note(std::string(KindName(op.kind)) + " group " + std::to_string(group) + " -> " +
             done.ToString());
        if (op.kind == ChaosOp::Kind::kQuit) {
          live.erase(live.begin() + static_cast<long>(pick));
        }
        break;
      }
    }
  }

  // ---- recovery: every fault window closes by the horizon, every crash has
  // a scheduled restart, and reconnect loops re-register the MSUs.
  note("workload done");
  RunUntil(sim, [&] { return !cluster.coordinator().crashed(); }, SimTime::Seconds(60));
  EXPECT_FALSE(cluster.coordinator().crashed());
  const bool msus_up = RunUntil(sim,
                                [&] {
                                  for (int i = 0; i < config.msu_count; ++i) {
                                    if (!cluster.coordinator().MsuUp("msu" + std::to_string(i))) {
                                      return false;
                                    }
                                  }
                                  return true;
                                },
                                SimTime::Seconds(60));
  EXPECT_TRUE(msus_up) << "an MSU never re-registered after the chaos run";
  note("recovered");

  // ---- quiesce: ask every group that has not already reached a terminal
  // state to quit, then drain Coordinator and MSUs.
  std::vector<std::unique_ptr<CoResult<Status>>> quits;
  for (GroupId group : all_groups) {
    if (!client->GroupTerminated(group)) {
      quits.push_back(std::make_unique<CoResult<Status>>());
      Collect(client->Quit(group), quits.back().get());
    }
  }
  const bool drained = RunUntil(sim,
                                [&] {
                                  if (!cluster.Idle()) {
                                    return false;
                                  }
                                  for (size_t i = 0; i < cluster.msu_count(); ++i) {
                                    if (cluster.msu(i).active_stream_count() != 0) {
                                      return false;
                                    }
                                  }
                                  return true;
                                },
                                SimTime::Seconds(180));
  EXPECT_TRUE(drained) << "cluster failed to quiesce";
  // Let stragglers (quits against never-started queued groups, recording
  // feeds) resolve so the trace fingerprint is complete.
  RunUntil(sim,
           [&] {
             for (const auto& quit : quits) {
               if (!quit->done()) {
                 return false;
               }
             }
             for (const auto& send : sends) {
               if (!send->done()) {
                 return false;
               }
             }
             return true;
           },
           SimTime::Seconds(90));
  sim.RunFor(SimTime::Seconds(2));
  for (const auto& quit : quits) {
    note("quiesce quit -> " +
         (quit->done() ? quit->value->ToString() : std::string("still pending")));
  }

  // ---- invariants ----
  Coordinator& coord = cluster.coordinator();
  const bool coordinator_restarted = plan.HasClass(FaultClass::kCoordinatorRestart);

  // Ledger conservation: internally consistent, fully drained.
  const Status ledger_ok = coord.ledger().CheckInvariants();
  EXPECT_TRUE(ledger_ok.ok()) << ledger_ok.ToString();
  EXPECT_EQ(coord.active_stream_count(), 0u);
  EXPECT_EQ(coord.pending_request_count(), 0u);
  EXPECT_EQ(coord.ledger().outstanding_holds(), 0u);
  EXPECT_EQ(coord.ledger().TotalReserved(), DataRate());
  for (size_t i = 0; i < cluster.msu_count(); ++i) {
    EXPECT_EQ(cluster.msu(i).active_stream_count(), 0) << "msu" << i;
  }

  // No stream left neither delivering nor failed: every group reached a
  // terminal state. A Coordinator restart may orphan *queued* requests
  // (faithful amnesia — the paper's Coordinator keeps no durable stream
  // state), so only the restart-free runs can insist on client-side closure.
  if (!coordinator_restarted) {
    for (GroupId group : all_groups) {
      EXPECT_TRUE(client->GroupTerminated(group)) << "group " << group << " left dangling";
    }
  }

  // Delivery-schedule monotonicity at every client port.
  for (const std::string& port : ports) {
    ClientDisplayPort* p = client->FindPort(port);
    if (p != nullptr) {
      EXPECT_EQ(p->out_of_order(), 0) << port;
    }
  }

  // Space conservation: the ledger's view of an MSU's free space is an
  // optimistic upper bound of the file system's (block rounding, metadata);
  // a Coordinator restart breaks the pairing for recordings that straddled
  // it, so only restart-free runs check it.
  if (!coordinator_restarted) {
    for (size_t i = 0; i < cluster.msu_count(); ++i) {
      const std::string name = "msu" + std::to_string(i);
      if (coord.MsuUp(name)) {
        EXPECT_LE(cluster.msu(i).fs().TotalFreeSpace().count(),
                  coord.MsuFreeSpace(name).count())
            << name;
      }
    }
  }

  // ---- fingerprint ----
  FaultInjector* injector = cluster.installation().fault_injector();
  int64_t packets = 0;
  for (const std::string& port : ports) {
    if (ClientDisplayPort* p = client->FindPort(port)) {
      packets += p->packets_received();
    }
  }
  EXPECT_GT(packets, 0);
  trace += "counters disk_errors=" + std::to_string(injector->disk_errors()) +
           " disk_slowdowns=" + std::to_string(injector->disk_slowdowns()) +
           " dropped=" + std::to_string(injector->datagrams_dropped()) +
           " delayed=" + std::to_string(injector->datagrams_delayed()) +
           " msu_crashes=" + std::to_string(injector->msu_crashes()) +
           " coordinator_restarts=" + std::to_string(injector->coordinator_restarts()) +
           " packets=" + std::to_string(packets) +
           " events=" + std::to_string(sim.events_fired()) + "\n";

  const ClusterReport report = cluster.installation().BuildClusterReport();
  result.report = report.ToJson();
  result.cluster_report = report;

  // Per-packet purity: chaos runs keep the default fidelity config, so the
  // flow fast path must never engage — every invariant above was checked
  // against the bit-exact per-packet model (DESIGN.md §5.5).
  const auto flow_chunks = report.metrics.counters.find("sim.flow.chunks");
  EXPECT_TRUE(flow_chunks != report.metrics.counters.end());
  if (flow_chunks != report.metrics.counters.end()) {
    EXPECT_EQ(flow_chunks->second, 0) << "flow-mode chunks in a chaos run";
  }

  // Any invariant failure above: dump the full QoS report and the Chrome
  // trace next to the test binary and point at them from the failure message.
  if (::testing::Test::HasFailure()) {
    const std::string stem = "chaos_seed" + std::to_string(seed);
    const std::string trace_path = stem + "_trace.json";
    const std::string report_path = stem + "_report.txt";
    const Status trace_written = cluster.installation().WriteTrace(trace_path);
    std::ofstream out(report_path);
    out << report.ToText();
    out.close();
    ADD_FAILURE() << "chaos invariants failed for seed " << seed << "; ClusterReport -> "
                  << report_path << ", Chrome trace -> "
                  << (trace_written.ok() ? trace_path : trace_written.ToString()) << "\n"
                  << report.ToText();
  }
  return result;
}

TEST(ChaosTest, RandomFaultsPreserveInvariants) {
  const uint64_t seed = ChaosSeed();
  const ChaosResult result = RunChaos(seed);
  EXPECT_FALSE(result.trace.empty());
  if (std::getenv("CALLIOPE_CHAOS_DUMP") != nullptr) {
    fprintf(stderr, "--- chaos trace (seed=%llu) ---\n%s",
            static_cast<unsigned long long>(seed), result.trace.c_str());
  }
  // Every run exercises at least one plan event of every fault class.
  for (FaultClass what :
       {FaultClass::kDiskError, FaultClass::kDiskSlow, FaultClass::kLinkDelay,
        FaultClass::kPartition, FaultClass::kMsuCrash, FaultClass::kCoordinatorRestart}) {
    EXPECT_TRUE(result.plan.HasClass(what)) << FaultClassName(what);
  }
}

TEST(ChaosTest, IdenticalSeedsProduceIdenticalTraces) {
  const uint64_t seed = ChaosSeed();
  const ChaosResult a = RunChaos(seed);
  const ChaosResult b = RunChaos(seed);
  ASSERT_EQ(a.trace, b.trace) << "same seed must replay bit-identically";
  // Structural comparison at zero tolerance: equivalent to byte equality but
  // it names the first diverging stream/port/metric instead of dumping two
  // multi-kilobyte JSON blobs at each other.
  const ReportDiff diff = DiffClusterReports(a.cluster_report, b.cluster_report);
  EXPECT_TRUE(diff.empty()) << "equal seeds must snapshot identical ClusterReports:\n"
                            << diff.ToText();
  // The telemetry timeline is part of the contract too: equal seeds must
  // produce byte-identical window rows and SLO verdicts.
  ASSERT_TRUE(a.cluster_report.timeline.has_value());
  ASSERT_TRUE(b.cluster_report.timeline.has_value());
  EXPECT_EQ(a.cluster_report.timeline->ToJson(), b.cluster_report.timeline->ToJson());
  EXPECT_FALSE(a.trace.empty());
  EXPECT_FALSE(a.report.empty());
}

}  // namespace
}  // namespace calliope
