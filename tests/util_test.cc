// Tests for the utility layer: status/result, units, RNG, histogram, table.
#include <gtest/gtest.h>

#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/table.h"
#include "src/util/units.h"

namespace calliope {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(OkStatus().ok());
  const Status error = NotFoundError("thing");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.code(), StatusCode::kNotFound);
  EXPECT_EQ(error.ToString(), "NOT_FOUND: thing");
  EXPECT_EQ(OkStatus().ToString(), "OK");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) {
    return InvalidArgumentError("not positive");
  }
  return v;
}

TEST(ResultTest, ValueAndError) {
  auto good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  EXPECT_EQ(good.value_or(-1), 5);
  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(-1), -1);
}

Status UseMacros(int v) {
  CALLIOPE_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  CALLIOPE_RETURN_IF_ERROR(parsed > 100 ? InvalidArgumentError("too big") : OkStatus());
  return OkStatus();
}

TEST(ResultTest, Macros) {
  EXPECT_TRUE(UseMacros(5).ok());
  EXPECT_EQ(UseMacros(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UseMacros(500).message(), "too big");
}

TEST(UnitsTest, TimeArithmetic) {
  EXPECT_EQ(SimTime::Seconds(2) + SimTime::Millis(500), SimTime::Millis(2500));
  EXPECT_EQ(SimTime::Millis(10) * 3, SimTime::Millis(30));
  EXPECT_EQ(SimTime::Seconds(1) / SimTime::Millis(10), 100);
  EXPECT_LT(SimTime::Millis(1), SimTime::Millis(2));
  EXPECT_DOUBLE_EQ(SimTime::Millis(1500).seconds(), 1.5);
}

TEST(UnitsTest, BytesConversions) {
  EXPECT_EQ(Bytes::KiB(256).count(), 262144);
  EXPECT_EQ(Bytes::GiB(2) / Bytes::KiB(256), 8192);
  EXPECT_DOUBLE_EQ(Bytes(1000000).megabytes(), 1.0);
}

TEST(UnitsTest, DataRateTransferMath) {
  const DataRate mpeg = DataRate::MegabitsPerSec(1.5);
  // 4 KB at 1.5 Mbit/s is ~21.8 ms.
  EXPECT_NEAR(mpeg.TransferTime(Bytes::KiB(4)).millis_f(), 21.85, 0.05);
  // And the inverse: bytes in one second equals the byte rate.
  EXPECT_EQ(mpeg.BytesIn(SimTime::Seconds(1)).count(), mpeg.bytes_per_sec());
  // Large transfers must not overflow: a 2-hour movie.
  const SimTime t = mpeg.TransferTime(Bytes(1350000000));
  EXPECT_NEAR(t.seconds(), 7200.0, 1.0);
}

TEST(UnitsTest, ZeroRateNeverDivides) {
  EXPECT_EQ(DataRate().TransferTime(Bytes(100)), SimTime::Max());
}

TEST(RngTest, DeterministicAndDistinctStreams) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng a2(1);
  EXPECT_NE(a2.NextU64(), c.NextU64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    sum += rng.NextExponential(3.0);
  }
  EXPECT_NEAR(sum / 20000, 3.0, 0.1);
}

TEST(ZipfTest, HeadIsHot) {
  Rng rng(6);
  ZipfDistribution zipf(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[0], 20000 / 4);  // rank 0 dominates
}

TEST(HistogramTest, FractionAndQuantiles) {
  LatenessHistogram histogram;
  for (int i = 0; i < 90; ++i) {
    histogram.Record(SimTime::Millis(10));
  }
  for (int i = 0; i < 10; ++i) {
    histogram.Record(SimTime::Millis(200));
  }
  EXPECT_EQ(histogram.total_count(), 100);
  EXPECT_DOUBLE_EQ(histogram.FractionWithin(SimTime::Millis(50)), 0.9);
  EXPECT_DOUBLE_EQ(histogram.FractionWithin(SimTime::Millis(300)), 1.0);
  EXPECT_EQ(histogram.Quantile(0.5), SimTime::Millis(11));  // upper bin edge
  EXPECT_EQ(histogram.MaxRecorded(), SimTime::Millis(200));
}

TEST(HistogramTest, EarlyPacketsCountOnTime) {
  LatenessHistogram histogram;
  histogram.Record(SimTime::Millis(-5));
  histogram.Record(SimTime::Millis(5));
  EXPECT_EQ(histogram.underflow_count(), 1);
  EXPECT_DOUBLE_EQ(histogram.FractionWithin(SimTime::Millis(10)), 1.0);
}

TEST(HistogramTest, OverflowBin) {
  LatenessHistogram histogram(SimTime::Millis(1), 100);
  histogram.Record(SimTime::Seconds(10));
  EXPECT_EQ(histogram.overflow_count(), 1);
  EXPECT_EQ(histogram.Quantile(1.0), SimTime::Max());
}

// Regression: Quantile used a floor()ed rank target, so for fractional
// q * total it could return a lateness L with FractionWithin(L) < q —
// asymmetric with FractionWithin's own accounting.
TEST(HistogramTest, QuantileAgreesWithFractionWithin) {
  LatenessHistogram histogram;
  histogram.Record(SimTime::Millis(1));
  histogram.Record(SimTime::Millis(10));
  histogram.Record(SimTime::Millis(100));
  // ceil(0.5 * 3) = 2 samples must be covered: the 10 ms bin, not the 1 ms one.
  const SimTime median = histogram.Quantile(0.5);
  EXPECT_EQ(median, SimTime::Millis(11));
  EXPECT_GE(histogram.FractionWithin(median), 0.5);
}

// The underflow convention: early samples clamp to zero lateness in every
// aggregate (FractionWithin, Quantile, MeanLateness); MaxRecorded stays raw.
TEST(HistogramTest, UnderflowConventionUnifiedAcrossAggregates) {
  LatenessHistogram histogram;
  for (int i = 0; i < 3; ++i) {
    histogram.Record(SimTime::Millis(-50));
  }
  histogram.Record(SimTime::Millis(4));
  EXPECT_EQ(histogram.underflow_count(), 3);
  // 3 of 4 samples are early: the median sits in the underflow bin and is
  // reported as exactly on time, not negative and not the 4 ms bin.
  EXPECT_EQ(histogram.Quantile(0.5), SimTime());
  EXPECT_GE(histogram.FractionWithin(SimTime()), 0.75);
  // Mean clamps the early samples to zero: 4 ms / 4 samples = 1 ms.
  EXPECT_EQ(histogram.MeanLateness(), SimTime::Millis(1));
  EXPECT_EQ(histogram.MaxRecorded(), SimTime::Millis(4));
  EXPECT_EQ(histogram.CountAbove(SimTime()), 1);
  EXPECT_EQ(histogram.CountAbove(SimTime::Millis(10)), 0);
}

TEST(HistogramTest, GeneralHistogramExponentialBins) {
  Histogram histogram;
  EXPECT_EQ(histogram.Quantile(0.5), 0);
  histogram.Record(-7);  // clamps to the zero bin
  histogram.Record(0);
  histogram.Record(3);
  histogram.Record(100);
  histogram.Record(1000);
  EXPECT_EQ(histogram.count(), 5);
  EXPECT_EQ(histogram.sum(), 1103);  // negative sample contributes zero
  EXPECT_EQ(histogram.min(), -7);
  EXPECT_EQ(histogram.max(), 1000);
  EXPECT_EQ(histogram.Quantile(0.5), 3);      // bin [2,4) upper edge
  EXPECT_EQ(histogram.Quantile(1.0), 1000);   // clamped to witnessed max
  Histogram other;
  other.Record(5000);
  histogram.Merge(other);
  EXPECT_EQ(histogram.count(), 6);
  EXPECT_EQ(histogram.max(), 5000);
}

TEST(HistogramTest, MergeAddsCounts) {
  LatenessHistogram a, b;
  a.Record(SimTime::Millis(1));
  b.Record(SimTime::Millis(2));
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 2);
  EXPECT_EQ(a.MaxRecorded(), SimTime::Millis(2));
}

TEST(TableTest, RendersAlignedColumns) {
  AsciiTable table({"a", "long header"});
  table.AddRow({"x", "1"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| a | long header |"), std::string::npos);
  EXPECT_NE(out.find("| x | 1           |"), std::string::npos);
}

}  // namespace
}  // namespace calliope
