// Reproduction regression tests: fast (shortened-window) versions of the
// headline paper results, pinned as invariants so calibration drift breaks
// CI rather than silently un-reproducing the paper. Full-length runs live in
// bench/; see EXPERIMENTS.md for the measured-vs-paper tables.
#include <gtest/gtest.h>

#include <memory>

#include "src/calliope/calliope.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

// Shared driver: N CBR streams on the Graph-1 machine for `duration`.
LatenessHistogram RunCbrStreams(int stream_count, SimTime duration) {
  InstallationConfig config;
  config.msu_machine.disks_per_hba = {2};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(2.5);
  Installation calliope(config);
  EXPECT_TRUE(calliope.Boot().ok());
  for (int i = 0; i < stream_count; ++i) {
    EXPECT_TRUE(calliope
                    .LoadMpegMovie("m" + std::to_string(i), duration + SimTime::Seconds(30), 0,
                                   false, i % 2)
                    .ok());
  }
  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  for (int i = 0; i < stream_count; ++i) {
    CoResult<Result<ClientDisplayPort*>> port;
    Collect(client.RegisterPort("tv" + std::to_string(i), "mpeg1"), &port);
    RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
    CoResult<Result<CalliopeClient::StartResult>> play;
    Collect(client.Play("m" + std::to_string(i), "tv" + std::to_string(i)), &play);
    RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5));
    EXPECT_TRUE(play.value->ok());
  }
  calliope.sim().RunFor(SimTime::Seconds(5) + duration);
  return calliope.msu(0).AggregateLateness();
}

TEST(ReproductionTest, Graph1WorkingPointAt22Streams) {
  // Paper: 22 streams => 99.6% within 50 ms, none later than 150 ms.
  const LatenessHistogram lateness = RunCbrStreams(22, SimTime::Seconds(30));
  EXPECT_GT(lateness.FractionWithin(SimTime::Millis(50)), 0.96);
  EXPECT_LE(lateness.MaxRecorded(), SimTime::Millis(150));
}

TEST(ReproductionTest, Graph1CliffAt24Streams) {
  // Paper: 24 streams => only 38% within 50 ms. The cliff must exist.
  const LatenessHistogram lateness = RunCbrStreams(24, SimTime::Seconds(30));
  EXPECT_LT(lateness.FractionWithin(SimTime::Millis(50)), 0.60);
  EXPECT_GT(lateness.MaxRecorded(), SimTime::Millis(150));
}

TEST(ReproductionTest, Table1Baselines) {
  // ttcp-only: ~8.5 MB/s.
  {
    Simulator sim;
    MachineParams params = MicronP66();
    params.disks_per_hba = {};
    Machine machine(sim, params, "m");
    [](Nic* nic) -> Task {
      for (;;) {
        co_await nic->SendBlocking(Frame{Bytes::KiB(4)});
      }
    }(&machine.fddi());
    sim.RunFor(SimTime::Seconds(20));
    EXPECT_NEAR(machine.fddi().bytes_sent().megabytes() / 20.0, 8.5, 0.5);
  }
  // Combined one-HBA vs two-HBA: the collapse ordering must hold.
  auto combined_fddi = [](std::vector<int> disks_per_hba) {
    Simulator sim;
    MachineParams params = MicronP66();
    params.disks_per_hba = std::move(disks_per_hba);
    Machine machine(sim, params, "m");
    [](Nic* nic) -> Task {
      for (;;) {
        co_await nic->SendBlocking(Frame{Bytes::KiB(4)});
      }
    }(&machine.fddi());
    for (size_t d = 0; d < machine.disk_count(); ++d) {
      [](Disk* disk, uint64_t seed) -> Task {
        Rng rng(seed);
        const int64_t blocks = disk->capacity() / Bytes::KiB(256);
        for (;;) {
          co_await disk->Read(
              Bytes::KiB(256) * static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(blocks))),
              Bytes::KiB(256));
        }
      }(&machine.disk(d), 100 + d);
    }
    sim.RunFor(SimTime::Seconds(20));
    return machine.fddi().bytes_sent().megabytes() / 20.0;
  };
  const double one_disk = combined_fddi({1});
  const double two_disks_one_hba = combined_fddi({2});
  const double two_disks_two_hbas = combined_fddi({1, 1});
  EXPECT_GT(one_disk, two_disks_one_hba);           // 5.9 > 4.7
  EXPECT_GT(two_disks_one_hba, 4.0);                // the usable peak
  EXPECT_LT(two_disks_two_hbas, two_disks_one_hba * 0.6);  // the collapse
}

TEST(ReproductionTest, MemoryPipelineMatchesParagraph323) {
  // Theoretical 7.5 MB/s; measured disk-less pipeline ~6.3 MB/s.
  const MemoryBusParams memory = MicronP66().memory;
  const double theoretical =
      1.0 / (1.0 / memory.write_rate.megabytes_per_sec() +
             1.0 / memory.copy_rate.megabytes_per_sec() +
             2.0 / memory.read_rate.megabytes_per_sec());
  EXPECT_NEAR(theoretical, 7.5, 0.1);

  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = {};
  Machine machine(sim, params, "m");
  Semaphore full(sim, 0);
  Semaphore empty(sim, 8);
  [](Machine* m, Semaphore* f, Semaphore* e) -> Task {
    for (;;) {
      co_await e->Acquire();
      co_await m->memory().Write(Bytes::KiB(4));
      f->Release();
    }
  }(&machine, &full, &empty);
  [](Machine* m, Semaphore* f, Semaphore* e) -> Task {
    for (;;) {
      co_await f->Acquire();
      co_await m->fddi().SendBlocking(Frame{Bytes::KiB(4)});
      e->Release();
    }
  }(&machine, &full, &empty);
  sim.RunFor(SimTime::Seconds(15));
  EXPECT_NEAR(machine.fddi().bytes_sent().megabytes() / 15.0, 6.3, 0.4);
}

TEST(ReproductionTest, VbrSourcesMatchPaperCalibration) {
  // Averages 650/635/877 Kbit/s; 50 ms peaks in the low-megabit range.
  const double expected[] = {650, 635, 877};
  for (int f = 0; f < 3; ++f) {
    const PacketSequence packets = GenerateVbr(Graph2File(f), SimTime::Seconds(90));
    EXPECT_NEAR(AverageRate(packets).megabits_per_sec() * 1000.0, expected[f],
                expected[f] * 0.12)
        << f;
    const double peak = PeakRate(packets, SimTime::Millis(50)).megabits_per_sec();
    EXPECT_GE(peak, 2.0) << f;
  }
}

TEST(ReproductionTest, ElevatorGainStaysSmall) {
  // Paper: ~6% at 24 readers — if the model drifts so that head scheduling
  // wins big, the "no head scheduling" design rationale breaks.
  auto throughput = [](DiskQueueDiscipline discipline) {
    Simulator sim;
    MachineParams params = MicronP66();
    params.disks_per_hba = {1};
    Machine machine(sim, params, "m");
    machine.disk(0).set_discipline(discipline);
    for (int u = 0; u < 24; ++u) {
      [](Disk* disk, uint64_t seed) -> Task {
        Rng rng(seed);
        const int64_t blocks = disk->capacity() / Bytes::KiB(256);
        for (;;) {
          co_await disk->Read(
              Bytes::KiB(256) * static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(blocks))),
              Bytes::KiB(256));
        }
      }(&machine.disk(0), 700 + u);
    }
    sim.RunFor(SimTime::Seconds(60));
    return machine.disk(0).bytes_transferred().megabytes() / 60.0;
  };
  const double gain =
      throughput(DiskQueueDiscipline::kElevator) / throughput(DiskQueueDiscipline::kFifo) - 1.0;
  EXPECT_GT(gain, 0.0);
  EXPECT_LT(gain, 0.12);
}

}  // namespace
}  // namespace calliope
