// Warm-standby Coordinator HA tests: epoch-fenced takeover, zero-amnesia
// failover of admitted streams and queued requests, and determinism of the
// whole protocol under a seeded fault schedule.
//
// The load-bearing properties, mirrored from src/coord/replication.h:
//   * Already-admitted streams keep playing across a primary crash — the
//     data path is client<->MSU and the standby's replicated ledger already
//     accounts them.
//   * Queued requests stay queued (synchronous log shipping), and retry
//     outcomes interrupted by the crash are re-queued on takeover.
//   * At most one coordinator owns each epoch, observed from the MSUs'
//     durable epoch records.
//   * Equal seeds produce byte-identical ClusterReports.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "src/obs/report_diff.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

uint64_t HaChaosSeed() {
  const char* env = std::getenv("CALLIOPE_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return static_cast<uint64_t>(std::atoll(env));
  }
  return 1;
}

// Merges every MSU's durable (epoch -> coordinator host) record and fails if
// any epoch was ever claimed by two different hosts: the fencing guarantee.
void ExpectAtMostOnePrimaryPerEpoch(TestCluster& cluster) {
  std::map<int64_t, std::string> owners;
  for (size_t i = 0; i < cluster.msu_count(); ++i) {
    for (const auto& [epoch, host] : cluster.msu(i).coordinator_epochs()) {
      auto [it, inserted] = owners.emplace(epoch, host);
      EXPECT_EQ(it->second, host)
          << "epoch " << epoch << " accepted from two coordinators (msu" << i << ")";
    }
  }
}

TEST(HaTest, KillPrimaryMidWorkloadKeepsAdmittedStreams) {
  InstallationConfig config;
  config.msu_count = 2;
  config.standby_coordinator = true;
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  Coordinator* standby = cluster.installation().standby_coordinator();
  ASSERT_NE(standby, nullptr);
  EXPECT_TRUE(cluster.coordinator().is_primary());
  EXPECT_FALSE(standby->is_primary());

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster.installation()
                    .LoadMpegMovie("m" + std::to_string(i), SimTime::Seconds(60), i % 2, false)
                    .ok());
  }
  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  std::vector<GroupId> groups;
  for (int i = 0; i < 3; ++i) {
    auto play =
        PlayOn(cluster.sim(), **client, "m" + std::to_string(i), "tv" + std::to_string(i));
    ASSERT_TRUE(play.ok()) << play.status().ToString();
    EXPECT_FALSE(play->queued);
    groups.push_back(play->group);
  }
  for (int i = 0; i < 3; ++i) {
    const std::string port = "tv" + std::to_string(i);
    ASSERT_TRUE(RunUntil(
        cluster.sim(), [&] { return (*client)->FindPort(port)->packets_received() > 0; },
        SimTime::Seconds(10)));
  }
  cluster.sim().RunFor(SimTime::Seconds(1));
  std::vector<int64_t> before;
  for (int i = 0; i < 3; ++i) {
    before.push_back((*client)->FindPort("tv" + std::to_string(i))->packets_received());
  }

  const int64_t old_epoch = cluster.coordinator().ha_epoch();
  cluster.coordinator().Crash();
  ASSERT_TRUE(
      RunUntil(cluster.sim(), [&] { return standby->is_primary(); }, SimTime::Seconds(10)));
  EXPECT_GT(standby->ha_epoch(), old_epoch);
  EXPECT_EQ(standby->takeover_count(), 1);

  // The MSUs redial and accept the new epoch.
  ASSERT_TRUE(RunUntil(
      cluster.sim(),
      [&] {
        return cluster.msu(0).coordinator_epoch() == standby->ha_epoch() &&
               cluster.msu(1).coordinator_epoch() == standby->ha_epoch();
      },
      SimTime::Seconds(10)));

  // Zero loss: every admitted stream is still playing and still delivering.
  cluster.sim().RunFor(SimTime::Seconds(2));
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE((*client)->GroupTerminated(groups[static_cast<size_t>(i)])) << "group " << i;
    EXPECT_GT((*client)->FindPort("tv" + std::to_string(i))->packets_received(),
              before[static_cast<size_t>(i)])
        << "port " << i;
  }
  EXPECT_EQ(standby->active_stream_count(), 3u);
  EXPECT_TRUE(standby->ledger().CheckInvariants().ok())
      << standby->ledger().CheckInvariants().ToString();

  // New admissions are served by the survivor once the client has redialed.
  ASSERT_TRUE(
      RunUntil(cluster.sim(), [&] { return (*client)->connected(); }, SimTime::Seconds(10)));
  auto late = PlayOn(cluster.sim(), **client, "m3", "tv3");
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_FALSE(late->queued);
  ASSERT_TRUE(RunUntil(
      cluster.sim(), [&] { return (*client)->FindPort("tv3")->packets_received() > 0; },
      SimTime::Seconds(10)));
  groups.push_back(late->group);

  ExpectAtMostOnePrimaryPerEpoch(cluster);

  // The dead primary rejoins as the new standby.
  cluster.installation().coordinator().Restart();
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return cluster.coordinator().ha_joined(); },
                       SimTime::Seconds(10)));
  EXPECT_FALSE(cluster.coordinator().is_primary());

  for (GroupId group : groups) {
    EXPECT_TRUE(QuitGroup(cluster.sim(), **client, group).ok());
  }
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return standby->active_stream_count() == 0; },
                       SimTime::Seconds(15)));
  EXPECT_EQ(standby->requests_lost(), 0);
  EXPECT_TRUE(standby->ledger().CheckInvariants().ok())
      << standby->ledger().CheckInvariants().ToString();
}

TEST(HaTest, QueuedRequestSurvivesTakeover) {
  InstallationConfig config;
  config.standby_coordinator = true;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  Coordinator* standby = cluster.installation().standby_coordinator();
  ASSERT_NE(standby, nullptr);
  for (const std::string name : {"a", "b"}) {
    ASSERT_TRUE(
        cluster.installation().LoadMpegMovie(name, SimTime::Seconds(60), 0, false, 0).ok());
  }
  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto play_a = PlayOn(cluster.sim(), **client, "a", "tva");
  ASSERT_TRUE(play_a.ok());
  EXPECT_FALSE(play_a->queued);
  auto play_b = PlayOn(cluster.sim(), **client, "b", "tvb");
  ASSERT_TRUE(play_b.ok());
  EXPECT_TRUE(play_b->queued);
  // Synchronous log shipping: by the time the client heard "queued", the
  // standby's shadow queue already held the request.
  EXPECT_EQ(standby->pending_request_count(), 1u);

  cluster.coordinator().Crash();
  ASSERT_TRUE(
      RunUntil(cluster.sim(), [&] { return standby->is_primary(); }, SimTime::Seconds(10)));
  EXPECT_EQ(standby->pending_request_count(), 1u);

  ASSERT_TRUE(RunUntil(
      cluster.sim(),
      [&] {
        return cluster.msu(0).coordinator_epoch() == standby->ha_epoch() &&
               (*client)->connected();
      },
      SimTime::Seconds(10)));

  // VCR commands travel client<->MSU, so quitting works regardless of which
  // coordinator is alive; the MSU's termination note reaches the NEW primary,
  // which frees the disk bandwidth and starts the queued request.
  EXPECT_TRUE(QuitGroup(cluster.sim(), **client, play_a->group).ok());
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return standby->pending_request_count() == 0; },
                       SimTime::Seconds(15)));
  ASSERT_TRUE(RunUntil(
      cluster.sim(), [&] { return (*client)->FindPort("tvb")->packets_received() > 0; },
      SimTime::Seconds(10)));
  EXPECT_EQ(standby->requests_lost(), 0);
  EXPECT_TRUE(standby->ledger().CheckInvariants().ok())
      << standby->ledger().CheckInvariants().ToString();
}

TEST(HaTest, TerminationNoteOutlivesThePrimary) {
  InstallationConfig config;
  config.standby_coordinator = true;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  Coordinator* standby = cluster.installation().standby_coordinator();
  ASSERT_NE(standby, nullptr);
  for (const std::string name : {"a", "b"}) {
    ASSERT_TRUE(
        cluster.installation().LoadMpegMovie(name, SimTime::Seconds(60), 0, false, 0).ok());
  }
  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto play_a = PlayOn(cluster.sim(), **client, "a", "tva");
  ASSERT_TRUE(play_a.ok());
  EXPECT_FALSE(play_a->queued);
  auto play_b = PlayOn(cluster.sim(), **client, "b", "tvb");
  ASSERT_TRUE(play_b.ok());
  EXPECT_TRUE(play_b->queued);

  // Quit `a` and kill the primary in the same instant: the MSU's
  // StreamTerminated note cannot land on the dying primary. It parks in the
  // MSU's durable note spool, the standby takes over, the MSU re-registers
  // and flushes the note — and only then can the queued request start. The
  // retry trigger itself must survive the takeover.
  CoResult<Status> quit;
  Collect((*client)->Quit(play_a->group), &quit);
  cluster.coordinator().Crash();
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return quit.done(); }, SimTime::Seconds(10)));
  EXPECT_TRUE(quit.value->ok()) << quit.value->ToString();

  ASSERT_TRUE(
      RunUntil(cluster.sim(), [&] { return standby->is_primary(); }, SimTime::Seconds(10)));
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return standby->pending_request_count() == 0; },
                       SimTime::Seconds(20)));
  ASSERT_TRUE(RunUntil(
      cluster.sim(), [&] { return (*client)->FindPort("tvb")->packets_received() > 0; },
      SimTime::Seconds(10)));
  EXPECT_EQ(standby->requests_lost(), 0);
  EXPECT_TRUE(standby->ledger().CheckInvariants().ok())
      << standby->ledger().CheckInvariants().ToString();
}

TEST(HaTest, KillPrimaryWhileMsuFailoverIsInFlight) {
  InstallationConfig config;
  config.msu_count = 2;
  config.standby_coordinator = true;
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  Coordinator* standby = cluster.installation().standby_coordinator();
  ASSERT_NE(standby, nullptr);
  for (int i = 0; i < 2; ++i) {
    const std::string name = "m" + std::to_string(i);
    ASSERT_TRUE(cluster.installation().LoadMpegMovie(name, SimTime::Seconds(60), 0, false).ok());
    ASSERT_TRUE(cluster.installation().ReplicateContent(name, 1).ok());
  }
  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  std::vector<GroupId> groups;
  for (int i = 0; i < 2; ++i) {
    const std::string port = "tv" + std::to_string(i);
    auto play = PlayOn(cluster.sim(), **client, "m" + std::to_string(i), port);
    ASSERT_TRUE(play.ok());
    ASSERT_FALSE(play->queued);
    groups.push_back(play->group);
    ASSERT_TRUE(RunUntil(
        cluster.sim(), [&] { return (*client)->FindPort(port)->packets_received() > 0; },
        SimTime::Seconds(10)));
  }

  // Kill the MSU, give the primary 50ms to start failing groups over to the
  // replica, then kill the primary mid-flight. The standby must finish the
  // job from its shadow state (the takeover sweep retries groups whose
  // failover never logged an outcome).
  cluster.msu(0).Crash();
  cluster.sim().RunFor(SimTime::Millis(50));
  cluster.coordinator().Crash();
  ASSERT_TRUE(
      RunUntil(cluster.sim(), [&] { return standby->is_primary(); }, SimTime::Seconds(10)));

  // Every group ends up playing on the survivor MSU; none is lost.
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return cluster.msu(1).active_stream_count() == 2; },
                       SimTime::Seconds(20)));
  for (GroupId group : groups) {
    EXPECT_FALSE((*client)->GroupTerminated(group));
  }
  EXPECT_FALSE(standby->MsuUp("msu0"));
  EXPECT_TRUE(standby->ledger().CheckInvariants().ok())
      << standby->ledger().CheckInvariants().ToString();

  // And they actually deliver from the survivor.
  std::vector<int64_t> mark;
  for (int i = 0; i < 2; ++i) {
    mark.push_back((*client)->FindPort("tv" + std::to_string(i))->packets_received());
  }
  cluster.sim().RunFor(SimTime::Seconds(2));
  for (int i = 0; i < 2; ++i) {
    EXPECT_GT((*client)->FindPort("tv" + std::to_string(i))->packets_received(),
              mark[static_cast<size_t>(i)])
        << "port " << i;
  }
  ExpectAtMostOnePrimaryPerEpoch(cluster);
}

// One full soak pass: three streams play while the primaryship flips four
// times (crash the current primary, wait for takeover, restart the corpse,
// wait for it to rejoin as standby). Returns the final ClusterReport JSON.
ClusterReport RunPrimaryFlipSoak(uint64_t seed) {
  InstallationConfig config;
  config.msu_count = 2;
  config.standby_coordinator = true;
  config.seed = seed;
  TestCluster cluster(config);
  EXPECT_TRUE(cluster.Boot().ok());
  Coordinator* first = &cluster.coordinator();
  Coordinator* second = cluster.installation().standby_coordinator();
  EXPECT_NE(second, nullptr);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cluster.installation()
                    .LoadMpegMovie("m" + std::to_string(i), SimTime::Seconds(120), i % 2, false)
                    .ok());
  }
  auto client = cluster.AddConnectedClient("c");
  EXPECT_TRUE(client.ok());
  std::vector<GroupId> groups;
  for (int i = 0; i < 3; ++i) {
    auto play =
        PlayOn(cluster.sim(), **client, "m" + std::to_string(i), "tv" + std::to_string(i));
    EXPECT_TRUE(play.ok());
    if (play.ok()) {
      groups.push_back(play->group);
    }
  }
  cluster.sim().RunFor(SimTime::Seconds(1));

  for (int flip = 0; flip < 4; ++flip) {
    Coordinator* primary = (!first->crashed() && first->is_primary()) ? first : second;
    Coordinator* survivor = primary == first ? second : first;
    primary->Crash();
    EXPECT_TRUE(RunUntil(cluster.sim(),
                         [&] { return !survivor->crashed() && survivor->is_primary(); },
                         SimTime::Seconds(10)))
        << "flip " << flip;
    primary->Restart();
    EXPECT_TRUE(
        RunUntil(cluster.sim(), [&] { return primary->ha_joined(); }, SimTime::Seconds(10)))
        << "flip " << flip;
    EXPECT_TRUE(survivor->ledger().CheckInvariants().ok())
        << "flip " << flip << ": " << survivor->ledger().CheckInvariants().ToString();
    // No admitted stream was lost by this flip.
    for (GroupId group : groups) {
      EXPECT_FALSE((*client)->GroupTerminated(group)) << "flip " << flip;
    }
  }
  ExpectAtMostOnePrimaryPerEpoch(cluster);

  EXPECT_TRUE(
      RunUntil(cluster.sim(), [&] { return (*client)->connected(); }, SimTime::Seconds(10)));
  for (GroupId group : groups) {
    EXPECT_TRUE(QuitGroup(cluster.sim(), **client, group).ok());
  }
  Coordinator* primary =
      (!first->crashed() && first->is_primary()) ? first : second;
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         return primary->active_stream_count() == 0 &&
                                primary->pending_request_count() == 0;
                       },
                       SimTime::Seconds(20)));
  EXPECT_EQ(primary->requests_lost(), 0);
  EXPECT_TRUE(primary->ledger().CheckInvariants().ok())
      << primary->ledger().CheckInvariants().ToString();
  return cluster.installation().BuildClusterReport();
}

TEST(HaTest, PrimaryFlipSoakKeepsStreamsAndIsDeterministic) {
  const ClusterReport one = RunPrimaryFlipSoak(1996);
  const ClusterReport two = RunPrimaryFlipSoak(1996);
  // Zero-tolerance structural diff: same strength as byte equality, but a
  // regression names the first diverging field instead of two JSON blobs.
  const ReportDiff diff = DiffClusterReports(one, two);
  EXPECT_TRUE(diff.empty()) << "equal seeds must produce identical ClusterReports:\n"
                            << diff.ToText();
}

// Seeded chaos with coordinator-crash faults in the mix: the fault injector
// kills whichever coordinator is primary (possibly repeatedly) while link
// faults and disk faults fire, then restarts it. Afterwards the cluster must
// quiesce cleanly under ONE primary, with the fencing record intact.
ClusterReport RunHaChaos(uint64_t seed, int64_t* crashes_out) {
  InstallationConfig config;
  config.msu_count = 2;
  config.standby_coordinator = true;
  config.seed = seed;
  TestCluster cluster(config);
  EXPECT_TRUE(cluster.Boot().ok());
  for (int i = 0; i < 3; ++i) {
    const std::string name = "m" + std::to_string(i);
    EXPECT_TRUE(cluster.installation().LoadMpegMovie(name, SimTime::Seconds(45), 0, false).ok());
    EXPECT_TRUE(cluster.installation().ReplicateContent(name, 1).ok());
  }
  FaultPlanOptions options;
  options.msu_nodes = {"msu0", "msu1"};
  options.other_nodes = {"coordinator", "coordinator2", "c"};
  options.include_msu_crash = false;
  options.include_coordinator_restart = false;
  options.include_coordinator_crash = true;
  options.horizon = SimTime::Seconds(20);
  FaultPlan plan = FaultPlan::Random(seed, options);
  EXPECT_TRUE(plan.HasClass(FaultClass::kCoordinatorCrash));
  EXPECT_TRUE(cluster.installation().ApplyFaultPlan(std::move(plan)).ok());

  auto client = cluster.AddConnectedClient("c");
  EXPECT_TRUE(client.ok());
  std::vector<GroupId> groups;
  if (client.ok()) {
    for (int i = 0; i < 3; ++i) {
      auto play =
          PlayOn(cluster.sim(), **client, "m" + std::to_string(i), "tv" + std::to_string(i));
      if (play.ok() && !play->queued) {
        groups.push_back(play->group);
      }
    }
  }

  // Ride out the fault schedule plus the longest possible outage, then
  // require a single live primary (a double crash recovers via the orphan
  // grace self-promotion).
  cluster.sim().RunFor(SimTime::Seconds(26));
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         Coordinator& primary = cluster.installation().current_primary();
                         return !primary.crashed() && primary.is_primary();
                       },
                       SimTime::Seconds(10)));

  // Quiesce: quit what still plays (45s movies may simply have finished) and
  // drain; equal seeds must agree on every counter that follows.
  if (client.ok()) {
    for (GroupId group : groups) {
      if (!(*client)->GroupTerminated(group)) {
        (void)QuitGroup(cluster.sim(), **client, group);
      }
    }
  }
  EXPECT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         Coordinator& primary = cluster.installation().current_primary();
                         return !primary.crashed() && primary.active_stream_count() == 0 &&
                                primary.pending_request_count() == 0;
                       },
                       SimTime::Seconds(60)));
  Coordinator& primary = cluster.installation().current_primary();
  EXPECT_TRUE(primary.ledger().CheckInvariants().ok())
      << primary.ledger().CheckInvariants().ToString();
  ExpectAtMostOnePrimaryPerEpoch(cluster);
  if (crashes_out != nullptr) {
    *crashes_out = cluster.installation().fault_injector()->coordinator_crashes();
  }
  const ClusterReport report = cluster.installation().BuildClusterReport();
  // Per-packet purity: HA runs keep the default fidelity config, so every
  // takeover/failover invariant above held under the bit-exact per-packet
  // model — the flow fast path must never have engaged (DESIGN.md §5.5).
  const auto flow_chunks = report.metrics.counters.find("sim.flow.chunks");
  EXPECT_TRUE(flow_chunks != report.metrics.counters.end());
  if (flow_chunks != report.metrics.counters.end()) {
    EXPECT_EQ(flow_chunks->second, 0) << "flow-mode chunks in an HA chaos run";
  }
  return report;
}

TEST(HaTest, ChaosWithCoordinatorCrashesPreservesInvariants) {
  int64_t crashes = 0;
  (void)RunHaChaos(HaChaosSeed(), &crashes);
  EXPECT_GE(crashes, 1) << "the plan guarantees at least one coordinator-crash event";
}

TEST(HaTest, ChaosIdenticalSeedsProduceIdenticalReports) {
  const uint64_t seed = HaChaosSeed();
  int64_t first_crashes = 0;
  int64_t second_crashes = 0;
  const ClusterReport one = RunHaChaos(seed, &first_crashes);
  const ClusterReport two = RunHaChaos(seed, &second_crashes);
  const ReportDiff diff = DiffClusterReports(one, two);
  EXPECT_TRUE(diff.empty()) << diff.ToText();
  EXPECT_EQ(first_crashes, second_crashes);
}

}  // namespace
}  // namespace calliope
