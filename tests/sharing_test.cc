// System tests for popularity-aware stream sharing (DESIGN §5.6): shared
// delivery groups formed by batch-window coalescing, the per-MSU
// interval/prefix page cache, VCR splits, the cache-memory ledger column,
// and the Zipf capacity claim (shared mode admits at least twice the viewers
// of the unique-stream baseline on the same topology).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

// Seed for the Zipf title picks and the fault-timing jitter; ctest sweeps it
// through CALLIOPE_CHAOS_SEED exactly like the chaos harness.
uint64_t SharingSeed() {
  const char* env = std::getenv("CALLIOPE_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1996;
}

InstallationConfig SharingConfigFor(int msu_count) {
  InstallationConfig config;
  config.msu_count = msu_count;
  config.coordinator.sharing.enabled = true;
  config.msu.cache_memory = Bytes::MiB(32);
  return config;
}

int64_t CounterValue(TestCluster& cluster, const std::string& name) {
  return cluster.installation().metrics().counter(name).value();
}

// Two viewers asking for one title within the batch window ride a single
// disk stream; a third viewer of a different title gets its own delivery
// group. The ledger charges one disk-bandwidth hold per *title*, not per
// viewer.
TEST(SharingTest, BatchWindowCoalescesSameTitleRequests) {
  TestCluster cluster(SharingConfigFor(1));
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("m0", SimTime::Seconds(10), 0, false).ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("m1", SimTime::Seconds(10), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto a = PlayOn(cluster.sim(), **client, "m0", "tv0");
  auto b = PlayOn(cluster.sim(), **client, "m0", "tv1");
  auto c = PlayOn(cluster.sim(), **client, "m1", "tv2");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->group, b->group);  // every viewer keeps its own group id

  // Let both batch windows close and the deliveries start.
  cluster.sim().RunFor(SimTime::Seconds(2));
  EXPECT_EQ(CounterValue(cluster, "coord.groups.formed"), 2);
  EXPECT_EQ(CounterValue(cluster, "coord.groups.members"), 3);
  // Delivery streams + member bookkeeping: m0's delivery + 2 members, m1's
  // delivery + 1 member.
  EXPECT_EQ(cluster.coordinator().active_stream_count(), 5u);
  // Exactly two disk streams worth of bandwidth across the MSU's disks.
  const DataRate mpeg1 = DataRate::MegabitsPerSec(1.5);
  DataRate reserved;
  for (int d = 0; d < 2; ++d) {
    reserved = reserved + cluster.coordinator().DiskLoad("msu0", d);
  }
  EXPECT_EQ(reserved, mpeg1 + mpeg1);

  // Every viewer actually receives media despite the shared disk stream.
  cluster.sim().RunFor(SimTime::Seconds(2));
  for (const char* port : {"tv0", "tv1", "tv2"}) {
    ClientDisplayPort* p = (*client)->FindPort(port);
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->packets_received(), 0) << port;
    EXPECT_EQ(p->out_of_order(), 0) << port;
  }

  // Play to the end: all groups terminate and the ledger fully drains —
  // member holds (NIC-only) and delivery holds (disk) both come back.
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         return (*client)->GroupTerminated(a->group) &&
                                (*client)->GroupTerminated(b->group) &&
                                (*client)->GroupTerminated(c->group);
                       },
                       SimTime::Seconds(20)));
  ASSERT_TRUE(cluster.WaitForIdle(SimTime::Seconds(10)));
  EXPECT_EQ(cluster.coordinator().ledger().outstanding_holds(), 0u);
  EXPECT_EQ(cluster.coordinator().ledger().TotalReserved(), DataRate());
  EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok());
}

// A viewer arriving after the batch window but within the cache horizon
// attaches as a cache-fed solo stream: no additional disk bandwidth, and its
// reads hit the interval cache the leading delivery stream fills.
TEST(SharingTest, TrailingViewerRidesIntervalCache) {
  TestCluster cluster(SharingConfigFor(1));
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("m0", SimTime::Seconds(12), 0, false).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto leader = PlayOn(cluster.sim(), **client, "m0", "lead");
  ASSERT_TRUE(leader.ok());
  cluster.sim().RunFor(SimTime::Seconds(3));  // delivery under way, pages cached

  const DataRate mpeg1 = DataRate::MegabitsPerSec(1.5);
  DataRate before;
  for (int d = 0; d < 2; ++d) {
    before = before + cluster.coordinator().DiskLoad("msu0", d);
  }
  EXPECT_EQ(before, mpeg1);  // one disk stream for the leader

  auto trailer = PlayOn(cluster.sim(), **client, "m0", "trail");
  ASSERT_TRUE(trailer.ok());
  cluster.sim().RunFor(SimTime::Seconds(2));
  EXPECT_EQ(CounterValue(cluster, "coord.groups.attaches"), 1);
  // The trailing viewer consumed no disk bandwidth...
  DataRate after;
  for (int d = 0; d < 2; ++d) {
    after = after + cluster.coordinator().DiskLoad("msu0", d);
  }
  EXPECT_EQ(after, mpeg1);
  // ...because its reads come from the interval cache.
  EXPECT_GT(CounterValue(cluster, "sim.cache.insertions"), 0);
  EXPECT_GT(CounterValue(cluster, "sim.cache.interval_hits"), 0);

  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         return (*client)->GroupTerminated(leader->group) &&
                                (*client)->GroupTerminated(trailer->group);
                       },
                       SimTime::Seconds(30)));
  ASSERT_TRUE(cluster.WaitForIdle(SimTime::Seconds(10)));
  // Both viewers saw the whole title.
  ClientDisplayPort* lead = (*client)->FindPort("lead");
  ClientDisplayPort* trail = (*client)->FindPort("trail");
  ASSERT_NE(lead, nullptr);
  ASSERT_NE(trail, nullptr);
  EXPECT_EQ(lead->bytes_received().count(), trail->bytes_received().count());
  EXPECT_EQ(trail->out_of_order(), 0);
  // Cache-memory ledger column fully refunded.
  EXPECT_EQ(cluster.coordinator().ledger().outstanding_holds(), 0u);
  EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok());
}

// A VCR op from one member splits it out of the shared group without
// disturbing the other member, and the split viewer ends up with exactly the
// bytes a solo (never-shared) viewer of the same title receives.
TEST(SharingTest, VcrSplitDeliversSameBytesAsSoloStream) {
  // Reference run: sharing disabled, one viewer, pause/resume mid-play.
  int64_t solo_bytes = 0;
  {
    InstallationConfig config;
    config.msu_count = 1;
    TestCluster cluster(config);
    ASSERT_TRUE(cluster.Boot().ok());
    ASSERT_TRUE(
        cluster.installation().LoadMpegMovie("m0", SimTime::Seconds(10), 0, false).ok());
    auto client = cluster.AddConnectedClient("c");
    ASSERT_TRUE(client.ok());
    auto play = PlayOn(cluster.sim(), **client, "m0", "tv");
    ASSERT_TRUE(play.ok());
    cluster.sim().RunFor(SimTime::Seconds(4));
    ASSERT_TRUE(VcrOp(cluster.sim(), **client, play->group, VcrCommand::Op::kPause).ok());
    cluster.sim().RunFor(SimTime::Seconds(2));
    ASSERT_TRUE(VcrOp(cluster.sim(), **client, play->group, VcrCommand::Op::kPlay).ok());
    ASSERT_TRUE(RunUntil(cluster.sim(),
                         [&] { return (*client)->GroupTerminated(play->group); },
                         SimTime::Seconds(30)));
    ClientDisplayPort* p = (*client)->FindPort("tv");
    ASSERT_NE(p, nullptr);
    solo_bytes = p->bytes_received().count();
    ASSERT_GT(solo_bytes, 0);
  }

  // Shared run: two members; one pauses mid-delivery and is split into its
  // own stream (resumed paused at the split offset), then resumes.
  TestCluster cluster(SharingConfigFor(1));
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("m0", SimTime::Seconds(10), 0, false).ok());
  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto stay = PlayOn(cluster.sim(), **client, "m0", "stay");
  auto split = PlayOn(cluster.sim(), **client, "m0", "split");
  ASSERT_TRUE(stay.ok());
  ASSERT_TRUE(split.ok());
  cluster.sim().RunFor(SimTime::Seconds(4));
  EXPECT_EQ(CounterValue(cluster, "coord.groups.formed"), 1);

  ASSERT_TRUE(VcrOp(cluster.sim(), **client, split->group, VcrCommand::Op::kPause).ok());
  cluster.sim().RunFor(SimTime::Seconds(1));
  EXPECT_EQ(CounterValue(cluster, "coord.groups.splits"), 1);
  // The staying member keeps receiving while the split one is paused.
  ClientDisplayPort* stay_port = (*client)->FindPort("stay");
  ASSERT_NE(stay_port, nullptr);
  const int64_t stay_mark = stay_port->packets_received();
  cluster.sim().RunFor(SimTime::Seconds(1));
  EXPECT_GT(stay_port->packets_received(), stay_mark);

  ASSERT_TRUE(VcrOp(cluster.sim(), **client, split->group, VcrCommand::Op::kPlay).ok());
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         return (*client)->GroupTerminated(stay->group) &&
                                (*client)->GroupTerminated(split->group);
                       },
                       SimTime::Seconds(30)));
  ASSERT_TRUE(cluster.WaitForIdle(SimTime::Seconds(10)));

  ClientDisplayPort* split_port = (*client)->FindPort("split");
  ASSERT_NE(split_port, nullptr);
  // Byte identity: the split member received exactly what a solo viewer
  // doing the same pause/resume receives — nothing lost or duplicated across
  // the detach + re-admission.
  EXPECT_EQ(split_port->bytes_received().count(), solo_bytes);
  EXPECT_EQ(stay_port->bytes_received().count(), solo_bytes);
  EXPECT_EQ(split_port->out_of_order(), 0);
  EXPECT_EQ(stay_port->out_of_order(), 0);
  EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok());
  EXPECT_EQ(cluster.coordinator().ledger().outstanding_holds(), 0u);
}

// Crash the MSU serving a shared delivery group mid-play (chaos for the
// cache-memory ledger column): members fail over individually as unique
// streams on the replica holder, the delivery stream's disk hold and every
// member's NIC/cache hold are released exactly once, and after a restart +
// another round of shared viewing the ledger still balances.
TEST(SharingTest, SharedGroupFailoverKeepsLedgerInvariants) {
  TestCluster cluster(SharingConfigFor(2));
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("m0", SimTime::Seconds(15), 0, false).ok());
  ASSERT_TRUE(cluster.installation().ReplicateContent("m0", 1).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto a = PlayOn(cluster.sim(), **client, "m0", "tv0");
  auto b = PlayOn(cluster.sim(), **client, "m0", "tv1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Seed-jittered crash point so the ctest seed sweep kills the delivery at
  // different offsets within the title.
  cluster.sim().RunFor(SimTime::Seconds(4) + SimTime::Millis(static_cast<int64_t>(SharingSeed() % 997)));
  ASSERT_EQ(CounterValue(cluster, "coord.groups.formed"), 1);

  // Find and kill the serving MSU.
  const int serving = cluster.msu(0).active_stream_count() > 0 ? 0 : 1;
  const int survivor = 1 - serving;
  cluster.msu(static_cast<size_t>(serving)).Crash();

  // Both members resume as unique streams on the survivor.
  ASSERT_TRUE(RunUntil(
      cluster.sim(),
      [&] { return cluster.msu(static_cast<size_t>(survivor)).active_stream_count() == 2; },
      SimTime::Seconds(15)));
  EXPECT_FALSE((*client)->GroupTerminated(a->group));
  EXPECT_FALSE((*client)->GroupTerminated(b->group));

  // Restart the crashed MSU and run another shared round on it while the
  // failed-over viewers play out.
  CoResult<Status> restarted;
  Collect(cluster.msu(static_cast<size_t>(serving)).Restart("coordinator"), &restarted);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return restarted.done(); }, SimTime::Seconds(20)));
  ASSERT_TRUE(restarted.value->ok());
  auto c = PlayOn(cluster.sim(), **client, "m0", "tv2");
  auto d = PlayOn(cluster.sim(), **client, "m0", "tv3");
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());

  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         for (GroupId g : {a->group, b->group, c->group, d->group}) {
                           if (!(*client)->GroupTerminated(g)) {
                             return false;
                           }
                         }
                         return true;
                       },
                       SimTime::Seconds(45)));
  ASSERT_TRUE(cluster.WaitForIdle(SimTime::Seconds(10)));
  // The ledger survived crash + failover + restart + a second shared round.
  EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok());
  EXPECT_EQ(cluster.coordinator().ledger().outstanding_holds(), 0u);
  EXPECT_EQ(cluster.coordinator().ledger().TotalReserved(), DataRate());
  for (const char* port : {"tv0", "tv1", "tv2", "tv3"}) {
    ClientDisplayPort* p = (*client)->FindPort(port);
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->packets_received(), 0) << port;
    EXPECT_EQ(p->out_of_order(), 0) << port;
  }
}

// Regression (satellite 5): when a shared group's disk stream fails over
// mid-delivery, no member's receive gap exceeds the failover budget (MSU
// death detection + re-placement + restart, all well under 10 s of media
// time at 2 s progress-report staleness).
TEST(SharingTest, SharedGroupFailoverBoundsMaxGap) {
  TestCluster cluster(SharingConfigFor(2));
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(cluster.installation().LoadMpegMovie("m0", SimTime::Seconds(15), 0, false).ok());
  ASSERT_TRUE(cluster.installation().ReplicateContent("m0", 1).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto a = PlayOn(cluster.sim(), **client, "m0", "tv0");
  auto b = PlayOn(cluster.sim(), **client, "m0", "tv1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  cluster.sim().RunFor(SimTime::Seconds(5) + SimTime::Millis(static_cast<int64_t>(SharingSeed() % 997)));
  const int serving = cluster.msu(0).active_stream_count() > 0 ? 0 : 1;
  cluster.msu(static_cast<size_t>(serving)).Crash();

  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         return (*client)->GroupTerminated(a->group) &&
                                (*client)->GroupTerminated(b->group);
                       },
                       SimTime::Seconds(40)));
  const ClusterReport report = cluster.installation().BuildClusterReport();
  int ports_checked = 0;
  for (const auto& port : report.ports) {
    if (port.port != "tv0" && port.port != "tv1") {
      continue;
    }
    ++ports_checked;
    EXPECT_GT(port.max_gap_us, 0) << port.port;
    // The failover hole: progress staleness (<=2 s) + conn-break detection +
    // re-admission. Anything near 10 s would mean a member restarted from
    // zero or was forgotten until its group timed out.
    EXPECT_LT(port.max_gap_us, 6'000'000) << port.port;
  }
  EXPECT_EQ(ports_checked, 2);
}

// The capacity claim behind the whole subsystem: under a Zipf(1.0) title
// popularity distribution, shared mode concurrently serves at least twice
// the viewers per MSU that the unique-stream baseline admits on the same
// topology (same titles, same arrival schedule, same disk budget).
TEST(SharingTest, ZipfWorkloadSharedModeDoublesAdmittedViewers) {
  constexpr int kViewers = 24;
  constexpr int kTitles = 4;
  const SimTime kMovieLength = SimTime::Seconds(25);

  // Title picks are derived from a fixed seed so both runs see the identical
  // request sequence.
  std::vector<int> picks;
  {
    Rng rng(SharingSeed());
    ZipfDistribution zipf(kTitles, 1.0);
    for (int i = 0; i < kViewers; ++i) {
      picks.push_back(static_cast<int>(zipf.Sample(rng)));
    }
  }

  auto viewers_served = [&](bool sharing) -> int {
    InstallationConfig config;
    config.msu_count = 1;
    config.coordinator.sharing.enabled = sharing;
    if (sharing) {
      config.msu.cache_memory = Bytes::MiB(32);
    }
    // Tight disk budget: 4 unique mpeg1 streams per disk, 8 per MSU.
    config.coordinator.disk_budget = DataRate::MegabitsPerSec(6);
    TestCluster cluster(config);
    EXPECT_TRUE(cluster.Boot().ok());
    for (int t = 0; t < kTitles; ++t) {
      EXPECT_TRUE(cluster.installation()
                      .LoadMpegMovie("m" + std::to_string(t), kMovieLength, 0, false)
                      .ok());
    }
    auto client = cluster.AddConnectedClient("c");
    EXPECT_TRUE(client.ok());
    if (!client.ok()) {
      return 0;
    }
    std::vector<std::string> ports;
    for (int i = 0; i < kViewers; ++i) {
      const std::string port = "tv" + std::to_string(i);
      auto play = PlayOn(cluster.sim(), **client, "m" + std::to_string(picks[static_cast<size_t>(i)]),
                         port);
      EXPECT_TRUE(play.ok());
      ports.push_back(port);
    }
    // Past the batch window and into steady-state delivery, but well before
    // any title finishes: whoever has received media by now is being served
    // concurrently.
    cluster.sim().RunFor(SimTime::Seconds(6));
    int served = 0;
    for (const std::string& port : ports) {
      ClientDisplayPort* p = (*client)->FindPort(port);
      if (p != nullptr && p->packets_received() > 0) {
        ++served;
      }
    }
    return served;
  };

  const int baseline = viewers_served(false);
  const int shared = viewers_served(true);
  // The baseline saturates the disk budget; sharing coalesces the Zipf head
  // onto a handful of delivery streams and serves everyone.
  EXPECT_LE(baseline, 8);
  EXPECT_GT(baseline, 0);
  EXPECT_GE(shared, 2 * baseline) << "shared=" << shared << " baseline=" << baseline;
}

}  // namespace
}  // namespace calliope
