// Tests for the synthetic MPEG bitstream serializer/parser (§2.3.1).
#include <gtest/gtest.h>

#include "src/media/mpeg_bitstream.h"

namespace calliope {
namespace {

MpegStream Encode(SimTime duration) { return EncodeMpeg(MpegEncoderConfig{}, duration, 5); }

TEST(MpegBitstreamTest, RoundTripRecoversPictureStructure) {
  const MpegStream stream = Encode(SimTime::Seconds(10));
  const auto bytes = SerializeMpegBitstream(stream);
  auto parsed = ParseMpegBitstream(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->pictures.size(), stream.frames.size());
  for (size_t i = 0; i < stream.frames.size(); ++i) {
    EXPECT_EQ(parsed->pictures[i].type, stream.frames[i].type) << i;
  }
}

TEST(MpegBitstreamTest, GopCountMatchesIntraFrames) {
  const MpegStream stream = Encode(SimTime::Seconds(15));
  auto parsed = ParseMpegBitstream(SerializeMpegBitstream(stream));
  ASSERT_TRUE(parsed.ok());
  size_t intra = 0;
  for (const MpegFrame& frame : stream.frames) {
    if (frame.type == MpegFrame::Type::kIntra) {
      ++intra;
    }
  }
  EXPECT_EQ(parsed->gop_count, intra);
}

TEST(MpegBitstreamTest, CodedSizesCoverPayload) {
  const MpegStream stream = Encode(SimTime::Seconds(5));
  auto parsed = ParseMpegBitstream(SerializeMpegBitstream(stream));
  ASSERT_TRUE(parsed.ok());
  for (size_t i = 0; i < parsed->pictures.size(); ++i) {
    // picture header (7B + start code already inside) + frame payload.
    EXPECT_GE(parsed->pictures[i].coded_size,
              static_cast<size_t>(stream.frames[i].size.count()))
        << i;
    EXPECT_LE(parsed->pictures[i].coded_size,
              static_cast<size_t>(stream.frames[i].size.count()) + 16)
        << i;
  }
}

TEST(MpegBitstreamTest, NoStartCodeEmulationInPayload) {
  const auto bytes = SerializeMpegBitstream(Encode(SimTime::Seconds(2)));
  // Count start codes: must equal sequence(1) + end(1) + GOPs + pictures.
  auto parsed = ParseMpegBitstream(bytes);
  ASSERT_TRUE(parsed.ok());
  size_t start_codes = 0;
  for (size_t i = 0; i + 2 < bytes.size(); ++i) {
    if (bytes[i] == std::byte{0} && bytes[i + 1] == std::byte{0} &&
        bytes[i + 2] == std::byte{1}) {
      ++start_codes;
    }
  }
  EXPECT_EQ(start_codes, 2 + parsed->gop_count + parsed->pictures.size());
}

TEST(MpegBitstreamTest, TruncatedAndGarbageStreamsRejected) {
  EXPECT_FALSE(ParseMpegBitstream({}).ok());
  std::vector<std::byte> garbage(1000, std::byte{0xAB});
  EXPECT_FALSE(ParseMpegBitstream(garbage).ok());
  auto bytes = SerializeMpegBitstream(Encode(SimTime::Seconds(1)));
  bytes.resize(10);  // inside the sequence header
  EXPECT_FALSE(ParseMpegBitstream(bytes).ok());
}

TEST(MpegBitstreamTest, ParseCostModelScalesWithBytes) {
  EXPECT_EQ(ParseCpuTime(Bytes(0)), SimTime());
  const SimTime one_mb = ParseCpuTime(Bytes(1000000));
  EXPECT_NEAR(one_mb.millis_f(), 1e6 * kParseCyclesPerByte / kPentiumHz * 1000.0, 0.01);
}

}  // namespace
}  // namespace calliope
