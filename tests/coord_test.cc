// Unit tests for the Coordinator's database and scheduling logic (§2.2).
#include <gtest/gtest.h>

#include "src/calliope/calliope.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

TEST(CatalogTest, StandardTypesPresent) {
  Catalog catalog = Catalog::WithStandardTypes();
  ASSERT_TRUE(catalog.FindType("mpeg1").ok());
  ASSERT_TRUE(catalog.FindType("rtp-video").ok());
  ASSERT_TRUE(catalog.FindType("vat-audio").ok());
  auto seminar = catalog.FindType("seminar");
  ASSERT_TRUE(seminar.ok());
  EXPECT_TRUE((*seminar)->is_composite());
  EXPECT_EQ((*seminar)->components, (std::vector<std::string>{"rtp-video", "vat-audio"}));
  EXPECT_EQ(catalog.FindType("h264").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, CompositeTypesMustReferenceAtomicTypes) {
  Catalog catalog = Catalog::WithStandardTypes();
  ContentType bad;
  bad.name = "super";
  bad.components = {"seminar"};  // composite of composite: rejected
  EXPECT_EQ(catalog.AddType(std::move(bad)).code(), StatusCode::kInvalidArgument);
  ContentType unknown;
  unknown.name = "mystery";
  unknown.components = {"nope"};
  EXPECT_EQ(catalog.AddType(std::move(unknown)).code(), StatusCode::kNotFound);
}

TEST(CatalogTest, SeparateBandwidthAndStorageRates) {
  // §2.2: "the content type table contains separate rates for disk space and
  // bandwidth consumption" — VBR types reserve more than they store.
  Catalog catalog = Catalog::WithStandardTypes();
  auto rtp = catalog.FindType("rtp-video");
  ASSERT_TRUE(rtp.ok());
  EXPECT_GT((*rtp)->bandwidth_rate, (*rtp)->storage_rate);
  auto mpeg = catalog.FindType("mpeg1");
  ASSERT_TRUE(mpeg.ok());
  EXPECT_EQ((*mpeg)->bandwidth_rate, (*mpeg)->storage_rate);  // CBR: equal
}

TEST(CatalogTest, CustomerAuthentication) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddCustomer(Customer{"eve", "secret", false}).ok());
  EXPECT_TRUE(catalog.Authenticate("eve", "secret").ok());
  EXPECT_EQ(catalog.Authenticate("eve", "wrong").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(catalog.Authenticate("mallory", "x").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(catalog.AddCustomer(Customer{"eve", "other", false}).code(),
            StatusCode::kAlreadyExists);
}

TEST(CoordinatorTest, RejectsBadCredentialsAndUnknownContent) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  CalliopeClient& client = calliope.AddClient("c");

  CoResult<Status> bad_connect;
  Collect(client.Connect("bob", "wrong-key"), &bad_connect);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return bad_connect.done(); }, SimTime::Seconds(5)));
  EXPECT_EQ(bad_connect.value->code(), StatusCode::kPermissionDenied);

  CoResult<Status> good_connect;
  Collect(client.Connect("bob", "bob-key"), &good_connect);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return good_connect.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(good_connect.value->ok());

  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));

  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("no-such-movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  EXPECT_FALSE(play.value->ok());
}

TEST(CoordinatorTest, TypeMismatchBetweenPortAndContentRejected) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(10), 0, false).ok());
  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("audio-port", "vat-audio"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));

  // "Calliope checks that the port and the content have the same type."
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "audio-port"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  EXPECT_FALSE(play.value->ok());
}

TEST(CoordinatorTest, RecordingRequiresLengthEstimate) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("cam", "rtp-video"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));

  CoResult<Result<CalliopeClient::StartResult>> record;
  Collect(client.Record("clip", "rtp-video", "cam", SimTime()), &record);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return record.done(); }, SimTime::Seconds(5)));
  EXPECT_FALSE(record.value->ok());
}

TEST(CoordinatorTest, RecordingDebitsSpaceByStorageRateAndRefundsOverestimate) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("cam", "rtp-video"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));

  const Bytes before = calliope.coordinator().MsuFreeSpace("msu0");
  CoResult<Result<CalliopeClient::StartResult>> record;
  Collect(client.Record("clip", "rtp-video", "cam", SimTime::Seconds(100)), &record);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return record.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(record.value->ok());

  // Debit = storage_rate * estimate (700 Kbit/s * 100 s = 8.75 MB).
  const Bytes debit = before - calliope.coordinator().MsuFreeSpace("msu0");
  const Bytes expected =
      calliope.coordinator().catalog().FindType("rtp-video").value()->storage_rate.BytesIn(
          SimTime::Seconds(100));
  EXPECT_EQ(debit.count(), expected.count());

  // Record only ~4 seconds, quit, and most of the estimate comes back.
  const PacketSequence packets = GenerateVbr(Graph2File(0), SimTime::Seconds(4));
  CoResult<Result<int64_t>> sent;
  Collect(client.SendRecording((*record.value)->group, 0, packets), &sent);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return sent.done(); }, SimTime::Seconds(20)));
  CoResult<Status> quit;
  Collect(client.Quit((*record.value)->group), &quit);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return quit.done(); }, SimTime::Seconds(10)));
  const Bytes after = calliope.coordinator().MsuFreeSpace("msu0");
  EXPECT_GT(after.count(), before.count() - expected.count() / 4);
  EXPECT_LT(after.count(), before.count());  // the real recording stays charged
}

TEST(CoordinatorTest, SessionDropDeallocatesPorts) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(10), 0, false).ok());
  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5)));
  const SessionId session = client.session();

  // "When this session is dropped, the Coordinator deallocates its local
  // representation of the ports": a play against the dead session fails.
  client.Disconnect();
  calliope.sim().RunFor(SimTime::Seconds(1));

  CoResult<Status> reconnect;
  Collect(client.Connect("bob", "bob-key"), &reconnect);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return reconnect.done(); }, SimTime::Seconds(5)));
  EXPECT_NE(client.session(), session);  // a fresh session
}

TEST(CoordinatorTest, PlacementPrefersMsuHoldingTheContent) {
  InstallationConfig config;
  config.msu_count = 2;
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("only-on-msu1", SimTime::Seconds(30), 1, false).ok());

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("only-on-msu1", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(play.value->ok());
  calliope.sim().RunFor(SimTime::Seconds(1));
  EXPECT_EQ(calliope.msu(1).active_stream_count(), 1);
  EXPECT_EQ(calliope.msu(0).active_stream_count(), 0);
}

TEST(CoordinatorTest, ContentUnavailableWhileItsMsuIsDown) {
  InstallationConfig config;
  config.msu_count = 2;
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("movie", SimTime::Seconds(30), 0, false).ok());
  calliope.msu(0).Crash();
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return !calliope.coordinator().MsuUp("msu0"); },
                       SimTime::Seconds(5)));

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("tv", "mpeg1"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));

  // The only copy is on a down MSU: the request is queued, not failed.
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play("movie", "tv"), &play);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(play.value->ok());
  EXPECT_TRUE((*play.value)->queued);

  // When the MSU returns, the queued request starts.
  CoResult<Status> restarted;
  Collect(calliope.msu(0).Restart("coordinator"), &restarted);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return restarted.done(); }, SimTime::Seconds(10)));
  ASSERT_TRUE(RunUntil(calliope.sim(),
                       [&] { return calliope.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(10)));
  calliope.sim().RunFor(SimTime::Seconds(3));
  EXPECT_GT(client.FindPort("tv")->packets_received(), 0);
}

TEST(CoordinatorTest, ReplicatedContentSpreadsAcrossMsus) {
  InstallationConfig config;
  config.msu_count = 2;
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  ASSERT_TRUE(calliope.LoadMpegMovie("hit", SimTime::Seconds(60), 0, false).ok());
  // "we can make copies of popular content": a second copy on msu1.
  ASSERT_TRUE(calliope.ReplicateContent("hit", 1).ok());

  CalliopeClient& client = calliope.AddClient("c");
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  RunUntil(calliope.sim(), [&] { return connected.done(); }, SimTime::Seconds(5));
  for (int i = 0; i < 8; ++i) {
    CoResult<Result<ClientDisplayPort*>> port;
    Collect(client.RegisterPort("tv" + std::to_string(i), "mpeg1"), &port);
    RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));
    CoResult<Result<CalliopeClient::StartResult>> play;
    Collect(client.Play("hit", "tv" + std::to_string(i)), &play);
    ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return play.done(); }, SimTime::Seconds(5)));
    ASSERT_TRUE(play.value->ok());
  }
  calliope.sim().RunFor(SimTime::Seconds(2));
  // Least-loaded placement alternates between the two copies.
  EXPECT_EQ(calliope.msu(0).active_stream_count(), 4);
  EXPECT_EQ(calliope.msu(1).active_stream_count(), 4);
}

// coord.requests_lost: a queued request whose session disappears before
// resources free up is dropped during the retry pass and counted — the
// counter is the audit trail for requests the server consciously gave up on.
TEST(CoordinatorTest, DeadSessionQueuedRequestCountsAsLost) {
  InstallationConfig config;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  for (const std::string name : {"a", "b"}) {
    ASSERT_TRUE(
        cluster.installation().LoadMpegMovie(name, SimTime::Seconds(60), 0, false, 0).ok());
  }
  auto keeper = cluster.AddConnectedClient("keeper");
  auto leaver = cluster.AddConnectedClient("leaver");
  ASSERT_TRUE(keeper.ok());
  ASSERT_TRUE(leaver.ok());

  auto play_a = PlayOn(cluster.sim(), **keeper, "a", "tva");
  ASSERT_TRUE(play_a.ok());
  EXPECT_FALSE(play_a->queued);
  auto play_b = PlayOn(cluster.sim(), **leaver, "b", "tvb");
  ASSERT_TRUE(play_b.ok());
  EXPECT_TRUE(play_b->queued);
  EXPECT_EQ(cluster.coordinator().requests_lost(), 0);

  (*leaver)->Disconnect();
  cluster.sim().RunFor(SimTime::Seconds(1));
  EXPECT_TRUE(QuitGroup(cluster.sim(), **keeper, play_a->group).ok());
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(10)));
  EXPECT_EQ(cluster.coordinator().requests_lost(), 1);
}

// A queued request that fails permanently (its content was deleted while
// waiting) is counted lost AND the waiting client is pushed a
// PendingRequestFailed over the session connection, so it stops waiting for
// a stream that will never start.
TEST(CoordinatorTest, PermanentlyFailedQueuedRequestNotifiesClient) {
  InstallationConfig config;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  for (const std::string name : {"a", "b"}) {
    ASSERT_TRUE(
        cluster.installation().LoadMpegMovie(name, SimTime::Seconds(60), 0, false, 0).ok());
  }
  auto viewer = cluster.AddConnectedClient("viewer");
  auto admin = cluster.AddConnectedClient("adminhost", "alice", "alice-key");
  ASSERT_TRUE(viewer.ok());
  ASSERT_TRUE(admin.ok());

  auto play_a = PlayOn(cluster.sim(), **viewer, "a", "tva");
  ASSERT_TRUE(play_a.ok());
  EXPECT_FALSE(play_a->queued);
  auto play_b = PlayOn(cluster.sim(), **viewer, "b", "tvb");
  ASSERT_TRUE(play_b.ok());
  EXPECT_TRUE(play_b->queued);

  CoResult<Status> erase;
  Collect((*admin)->DeleteContent("b"), &erase);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return erase.done(); }, SimTime::Seconds(5)));
  EXPECT_TRUE(erase.value->ok()) << erase.value->ToString();

  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(10)));
  EXPECT_EQ(cluster.coordinator().requests_lost(), 1);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return (*viewer)->GroupTerminated(play_b->group); },
                       SimTime::Seconds(5)));
  // The admitted stream is untouched by the failed neighbor.
  EXPECT_FALSE((*viewer)->GroupTerminated(play_a->group));
}

}  // namespace
}  // namespace calliope
