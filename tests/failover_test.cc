// System tests for replica-aware stream failover and the admission queue
// (§2.2 failure handling + §2.3.3 replication).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

// Crash one of two fully mirrored MSUs mid-play: every interrupted stream
// must resume on the survivor near its last reported media offset, and the
// ledger must drain to zero once all groups end.
TEST(FailoverTest, CrashMidPlayResumesOnSurvivorNearOffset) {
  InstallationConfig config;
  config.msu_count = 2;
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  const int movies = 4;
  for (int i = 0; i < movies; ++i) {
    const std::string name = "m" + std::to_string(i);
    ASSERT_TRUE(cluster.installation().LoadMpegMovie(name, SimTime::Seconds(20), 0, false).ok());
    ASSERT_TRUE(cluster.installation().ReplicateContent(name, 1).ok());
  }

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  std::vector<GroupId> groups;
  for (int i = 0; i < movies; ++i) {
    auto play = PlayOn(cluster.sim(), **client, "m" + std::to_string(i),
                       "tv" + std::to_string(i));
    ASSERT_TRUE(play.ok());
    EXPECT_FALSE(play->queued);
    groups.push_back(play->group);
  }
  const SimTime play_start = cluster.sim().Now();
  // Least-loaded placement spreads the four replicated movies 2/2.
  cluster.sim().RunFor(SimTime::Seconds(1));
  EXPECT_EQ(cluster.msu(0).active_stream_count(), 2);
  EXPECT_EQ(cluster.msu(1).active_stream_count(), 2);

  cluster.sim().RunFor(SimTime::Seconds(7));
  const int lost = cluster.msu(0).active_stream_count();
  ASSERT_GT(lost, 0);
  cluster.msu(0).Crash();

  // Every interrupted stream is re-placed on the survivor.
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.msu(1).active_stream_count() == movies; },
                       SimTime::Seconds(10)));
  for (GroupId group : groups) {
    EXPECT_FALSE((*client)->GroupTerminated(group));
  }

  // Offset proof: the movies are 20 s long and were interrupted ~8 s in, with
  // progress reports at most 2 s stale. Resumed streams finish well before a
  // restart-from-zero could (crash time + full 20 s again).
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] {
                         for (GroupId group : groups) {
                           if (!(*client)->GroupTerminated(group)) {
                             return false;
                           }
                         }
                         return true;
                       },
                       play_start + SimTime::Seconds(25) - cluster.sim().Now()));
  EXPECT_LT(cluster.sim().Now() - play_start, SimTime::Seconds(25));

  // Admission accounting balanced across the crash.
  EXPECT_EQ(cluster.coordinator().active_stream_count(), 0u);
  EXPECT_EQ(cluster.coordinator().ledger().outstanding_holds(), 0u);
  EXPECT_EQ(cluster.coordinator().ledger().TotalReserved(), DataRate());
  EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok());
}

// The striped-layout variant of the same failover story (§2.3.3: "the blocks
// of each file are spread across all the disks in the MSU"): a title striped
// over both of an MSU's disks keeps both spindles busy, and when that MSU
// dies mid-play the stream resumes on the replica-holding MSU.
TEST(FailoverTest, StripedTitleFailsOverToReplica) {
  InstallationConfig config;
  config.msu_count = 2;
  config.msu.striped_layout = true;
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  ASSERT_TRUE(
      cluster.installation().LoadMpegMovie("wide", SimTime::Seconds(30), 0, false).ok());
  ASSERT_TRUE(cluster.installation().ReplicateContent("wide", 1).ok());

  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto play = PlayOn(cluster.sim(), **client, "wide", "tv");
  ASSERT_TRUE(play.ok());
  EXPECT_FALSE(play->queued);
  const GroupId group = play->group;
  const SimTime play_start = cluster.sim().Now();

  // Striping proof: with the file interleaved across msu0's two disks, both
  // see read traffic during normal playback.
  cluster.sim().RunFor(SimTime::Seconds(8));
  EXPECT_EQ(cluster.msu(0).active_stream_count(), 1);
  EXPECT_GT(cluster.msu(0).machine().disk(0).bytes_transferred().count(), 0);
  EXPECT_GT(cluster.msu(0).machine().disk(1).bytes_transferred().count(), 0);

  cluster.msu(0).Crash();

  // The stream resumes on msu1's replica rather than terminating...
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.msu(1).active_stream_count() == 1; },
                       SimTime::Seconds(10)));
  EXPECT_FALSE((*client)->GroupTerminated(group));
  // ...and the replica is striped too: both of msu1's disks serve it.
  cluster.sim().RunFor(SimTime::Seconds(8));
  EXPECT_GT(cluster.msu(1).machine().disk(0).bytes_transferred().count(), 0);
  EXPECT_GT(cluster.msu(1).machine().disk(1).bytes_transferred().count(), 0);

  // Resume happened near the interruption offset: the 30 s title finishes
  // well before a restart-from-zero could.
  ASSERT_TRUE(WaitForTermination(cluster.sim(), **client, group,
                                 play_start + SimTime::Seconds(36) - cluster.sim().Now()));
  EXPECT_LT(cluster.sim().Now() - play_start, SimTime::Seconds(36));

  // Ledger drained and internally consistent after the failover.
  EXPECT_EQ(cluster.coordinator().active_stream_count(), 0u);
  EXPECT_EQ(cluster.coordinator().ledger().outstanding_holds(), 0u);
  EXPECT_EQ(cluster.coordinator().ledger().TotalReserved(), DataRate());
  EXPECT_TRUE(cluster.coordinator().ledger().CheckInvariants().ok());
}

// A crash-interrupted recording: the reserved-space debit must come back
// exactly once, the client learns its group is dead, and the half-written
// file does not survive the MSU's restart.
TEST(FailoverTest, CrashInterruptedRecordingReleasesSpaceExactlyOnce) {
  TestCluster cluster;
  ASSERT_TRUE(cluster.Boot().ok());
  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());
  auto port = RegisterClientPort(cluster.sim(), **client, "cam", "rtp-video");
  ASSERT_TRUE(port.ok());

  const Bytes before = cluster.coordinator().MsuFreeSpace("msu0");
  auto record = RecordOn(cluster.sim(), **client, "clip", "rtp-video", "cam",
                         SimTime::Seconds(100));
  ASSERT_TRUE(record.ok());
  const GroupId group = record->group;
  EXPECT_LT(cluster.coordinator().MsuFreeSpace("msu0"), before);

  // Feed a few seconds of real packets, then crash the MSU mid-recording.
  const PacketSequence packets = GenerateVbr(Graph2File(0), SimTime::Seconds(10));
  CoResult<Result<int64_t>> sent;
  Collect((*client)->SendRecording(group, 0, packets), &sent);
  cluster.sim().RunFor(SimTime::Seconds(4));
  cluster.msu(0).Crash();
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return !cluster.coordinator().MsuUp("msu0"); },
                       SimTime::Seconds(5)));

  // The whole estimate is refunded, once: a crash-interrupted recording keeps
  // no usable bytes.
  EXPECT_EQ(cluster.coordinator().MsuFreeSpace("msu0").count(), before.count());
  EXPECT_EQ(cluster.coordinator().ledger().outstanding_holds(), 0u);
  EXPECT_EQ(cluster.coordinator().ledger().TotalReserved(), DataRate());
  // The in-progress catalog record is gone and the client was told.
  ASSERT_TRUE(WaitForTermination(cluster.sim(), **client, group, SimTime::Seconds(5)));
  EXPECT_FALSE(cluster.coordinator().catalog().FindContent("clip").ok());

  // After restart the MSU deletes the uncommitted file, so its re-registered
  // free space matches what the Coordinator already assumed.
  CoResult<Status> restarted;
  Collect(cluster.msu(0).Restart("coordinator"), &restarted);
  ASSERT_TRUE(RunUntil(cluster.sim(), [&] { return restarted.done(); }, SimTime::Seconds(10)));
  EXPECT_EQ(cluster.coordinator().MsuFreeSpace("msu0").count(), before.count());
}

// Requests queue in arrival order and stay in order across retry passes: one
// 0.2 MB/s disk serves exactly one mpeg1 stream at a time.
TEST(FailoverTest, PendingQueueStaysFifoAcrossRetryPasses) {
  InstallationConfig config;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  for (const std::string name : {"a", "b", "c"}) {
    ASSERT_TRUE(
        cluster.installation().LoadMpegMovie(name, SimTime::Seconds(60), 0, false, 0).ok());
  }
  auto client = cluster.AddConnectedClient("c");
  ASSERT_TRUE(client.ok());

  auto play_a = PlayOn(cluster.sim(), **client, "a", "tva");
  ASSERT_TRUE(play_a.ok());
  EXPECT_FALSE(play_a->queued);
  auto play_b = PlayOn(cluster.sim(), **client, "b", "tvb");
  ASSERT_TRUE(play_b.ok());
  EXPECT_TRUE(play_b->queued);
  auto play_c = PlayOn(cluster.sim(), **client, "c", "tvc");
  ASSERT_TRUE(play_c.ok());
  EXPECT_TRUE(play_c->queued);
  EXPECT_EQ(cluster.coordinator().pending_request_count(), 2u);

  // Quitting "a" frees exactly one slot: "b" (queued first) starts, "c" waits.
  EXPECT_TRUE(QuitGroup(cluster.sim(), **client, play_a->group).ok());
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().pending_request_count() == 1; },
                       SimTime::Seconds(10)));
  cluster.sim().RunFor(SimTime::Seconds(2));
  EXPECT_GT((*client)->FindPort("tvb")->packets_received(), 0);
  EXPECT_EQ((*client)->FindPort("tvc")->packets_received(), 0);

  EXPECT_TRUE(QuitGroup(cluster.sim(), **client, play_b->group).ok());
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(10)));
  cluster.sim().RunFor(SimTime::Seconds(2));
  EXPECT_GT((*client)->FindPort("tvc")->packets_received(), 0);
}

// A queued request whose session died is dropped with a warning instead of
// wedging the queue: later entries still start in order.
TEST(FailoverTest, DeadSessionQueuedRequestDoesNotWedgeQueue) {
  InstallationConfig config;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  TestCluster cluster(config);
  ASSERT_TRUE(cluster.Boot().ok());
  for (const std::string name : {"a", "b", "c"}) {
    ASSERT_TRUE(
        cluster.installation().LoadMpegMovie(name, SimTime::Seconds(60), 0, false, 0).ok());
  }
  auto keeper = cluster.AddConnectedClient("keeper");
  auto leaver = cluster.AddConnectedClient("leaver");
  ASSERT_TRUE(keeper.ok());
  ASSERT_TRUE(leaver.ok());

  auto play_a = PlayOn(cluster.sim(), **keeper, "a", "tva");
  ASSERT_TRUE(play_a.ok());
  EXPECT_FALSE(play_a->queued);
  auto play_b = PlayOn(cluster.sim(), **leaver, "b", "tvb");
  ASSERT_TRUE(play_b.ok());
  EXPECT_TRUE(play_b->queued);
  auto play_c = PlayOn(cluster.sim(), **keeper, "c", "tvc");
  ASSERT_TRUE(play_c.ok());
  EXPECT_TRUE(play_c->queued);

  // The first queued request's session disappears before resources free up.
  (*leaver)->Disconnect();
  cluster.sim().RunFor(SimTime::Seconds(1));

  EXPECT_TRUE(QuitGroup(cluster.sim(), **keeper, play_a->group).ok());
  ASSERT_TRUE(RunUntil(cluster.sim(),
                       [&] { return cluster.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(10)));
  cluster.sim().RunFor(SimTime::Seconds(2));
  EXPECT_GT((*keeper)->FindPort("tvc")->packets_received(), 0);
}

}  // namespace
}  // namespace calliope
