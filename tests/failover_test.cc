// System tests for replica-aware stream failover and the admission queue
// (§2.2 failure handling + §2.3.3 replication).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "tests/test_util.h"

namespace calliope {
namespace {

Status ConnectClient(Simulator& sim, CalliopeClient& client) {
  CoResult<Status> connected;
  Collect(client.Connect("bob", "bob-key"), &connected);
  if (!RunUntil(sim, [&] { return connected.done(); }, SimTime::Seconds(5))) {
    return DeadlineExceededError("connect timed out");
  }
  return *connected.value;
}

Result<CalliopeClient::StartResult> PlayOn(Simulator& sim, CalliopeClient& client,
                                           const std::string& content,
                                           const std::string& port) {
  CoResult<Result<ClientDisplayPort*>> registered;
  Collect(client.RegisterPort(port, "mpeg1"), &registered);
  RunUntil(sim, [&] { return registered.done(); }, SimTime::Seconds(5));
  CoResult<Result<CalliopeClient::StartResult>> play;
  Collect(client.Play(content, port), &play);
  if (!RunUntil(sim, [&] { return play.done(); }, SimTime::Seconds(5))) {
    return DeadlineExceededError("play timed out");
  }
  return *play.value;
}

void QuitGroup(Simulator& sim, CalliopeClient& client, GroupId group) {
  CoResult<Status> quit;
  Collect(client.Quit(group), &quit);
  RunUntil(sim, [&] { return quit.done(); }, SimTime::Seconds(5));
}

// Crash one of two fully mirrored MSUs mid-play: every interrupted stream
// must resume on the survivor near its last reported media offset, and the
// ledger must drain to zero once all groups end.
TEST(FailoverTest, CrashMidPlayResumesOnSurvivorNearOffset) {
  InstallationConfig config;
  config.msu_count = 2;
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  const int movies = 4;
  for (int i = 0; i < movies; ++i) {
    const std::string name = "m" + std::to_string(i);
    ASSERT_TRUE(calliope.LoadMpegMovie(name, SimTime::Seconds(20), 0, false).ok());
    ASSERT_TRUE(calliope.ReplicateContent(name, 1).ok());
  }

  CalliopeClient& client = calliope.AddClient("c");
  ASSERT_TRUE(ConnectClient(calliope.sim(), client).ok());
  std::vector<GroupId> groups;
  for (int i = 0; i < movies; ++i) {
    auto play = PlayOn(calliope.sim(), client, "m" + std::to_string(i),
                       "tv" + std::to_string(i));
    ASSERT_TRUE(play.ok());
    EXPECT_FALSE(play->queued);
    groups.push_back(play->group);
  }
  const SimTime play_start = calliope.sim().Now();
  // Least-loaded placement spreads the four replicated movies 2/2.
  calliope.sim().RunFor(SimTime::Seconds(1));
  EXPECT_EQ(calliope.msu(0).active_stream_count(), 2);
  EXPECT_EQ(calliope.msu(1).active_stream_count(), 2);

  calliope.sim().RunFor(SimTime::Seconds(7));
  const int lost = calliope.msu(0).active_stream_count();
  ASSERT_GT(lost, 0);
  calliope.msu(0).Crash();

  // Every interrupted stream is re-placed on the survivor.
  ASSERT_TRUE(RunUntil(calliope.sim(),
                       [&] { return calliope.msu(1).active_stream_count() == movies; },
                       SimTime::Seconds(10)));
  for (GroupId group : groups) {
    EXPECT_FALSE(client.GroupTerminated(group));
  }

  // Offset proof: the movies are 20 s long and were interrupted ~8 s in, with
  // progress reports at most 2 s stale. Resumed streams finish well before a
  // restart-from-zero could (crash time + full 20 s again).
  ASSERT_TRUE(RunUntil(calliope.sim(),
                       [&] {
                         for (GroupId group : groups) {
                           if (!client.GroupTerminated(group)) {
                             return false;
                           }
                         }
                         return true;
                       },
                       play_start + SimTime::Seconds(25) - calliope.sim().Now()));
  EXPECT_LT(calliope.sim().Now() - play_start, SimTime::Seconds(25));

  // Admission accounting balanced across the crash.
  EXPECT_EQ(calliope.coordinator().active_stream_count(), 0u);
  EXPECT_EQ(calliope.coordinator().ledger().outstanding_holds(), 0u);
  EXPECT_EQ(calliope.coordinator().ledger().TotalReserved(), DataRate());
}

// A crash-interrupted recording: the reserved-space debit must come back
// exactly once, the client learns its group is dead, and the half-written
// file does not survive the MSU's restart.
TEST(FailoverTest, CrashInterruptedRecordingReleasesSpaceExactlyOnce) {
  Installation calliope;
  ASSERT_TRUE(calliope.Boot().ok());
  CalliopeClient& client = calliope.AddClient("c");
  ASSERT_TRUE(ConnectClient(calliope.sim(), client).ok());
  CoResult<Result<ClientDisplayPort*>> port;
  Collect(client.RegisterPort("cam", "rtp-video"), &port);
  RunUntil(calliope.sim(), [&] { return port.done(); }, SimTime::Seconds(5));

  const Bytes before = calliope.coordinator().MsuFreeSpace("msu0");
  CoResult<Result<CalliopeClient::StartResult>> record;
  Collect(client.Record("clip", "rtp-video", "cam", SimTime::Seconds(100)), &record);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return record.done(); }, SimTime::Seconds(5)));
  ASSERT_TRUE(record.value->ok());
  const GroupId group = (*record.value)->group;
  EXPECT_LT(calliope.coordinator().MsuFreeSpace("msu0"), before);

  // Feed a few seconds of real packets, then crash the MSU mid-recording.
  const PacketSequence packets = GenerateVbr(Graph2File(0), SimTime::Seconds(10));
  CoResult<Result<int64_t>> sent;
  Collect(client.SendRecording(group, 0, packets), &sent);
  calliope.sim().RunFor(SimTime::Seconds(4));
  calliope.msu(0).Crash();
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return !calliope.coordinator().MsuUp("msu0"); },
                       SimTime::Seconds(5)));

  // The whole estimate is refunded, once: a crash-interrupted recording keeps
  // no usable bytes.
  EXPECT_EQ(calliope.coordinator().MsuFreeSpace("msu0").count(), before.count());
  EXPECT_EQ(calliope.coordinator().ledger().outstanding_holds(), 0u);
  EXPECT_EQ(calliope.coordinator().ledger().TotalReserved(), DataRate());
  // The in-progress catalog record is gone and the client was told.
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return client.GroupTerminated(group); },
                       SimTime::Seconds(5)));
  EXPECT_FALSE(calliope.coordinator().catalog().FindContent("clip").ok());

  // After restart the MSU deletes the uncommitted file, so its re-registered
  // free space matches what the Coordinator already assumed.
  CoResult<Status> restarted;
  Collect(calliope.msu(0).Restart("coordinator"), &restarted);
  ASSERT_TRUE(RunUntil(calliope.sim(), [&] { return restarted.done(); }, SimTime::Seconds(10)));
  EXPECT_EQ(calliope.coordinator().MsuFreeSpace("msu0").count(), before.count());
}

// Requests queue in arrival order and stay in order across retry passes: one
// 0.2 MB/s disk serves exactly one mpeg1 stream at a time.
TEST(FailoverTest, PendingQueueStaysFifoAcrossRetryPasses) {
  InstallationConfig config;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  for (const std::string name : {"a", "b", "c"}) {
    ASSERT_TRUE(calliope.LoadMpegMovie(name, SimTime::Seconds(60), 0, false, 0).ok());
  }
  CalliopeClient& client = calliope.AddClient("c");
  ASSERT_TRUE(ConnectClient(calliope.sim(), client).ok());

  auto play_a = PlayOn(calliope.sim(), client, "a", "tva");
  ASSERT_TRUE(play_a.ok());
  EXPECT_FALSE(play_a->queued);
  auto play_b = PlayOn(calliope.sim(), client, "b", "tvb");
  ASSERT_TRUE(play_b.ok());
  EXPECT_TRUE(play_b->queued);
  auto play_c = PlayOn(calliope.sim(), client, "c", "tvc");
  ASSERT_TRUE(play_c.ok());
  EXPECT_TRUE(play_c->queued);
  EXPECT_EQ(calliope.coordinator().pending_request_count(), 2u);

  // Quitting "a" frees exactly one slot: "b" (queued first) starts, "c" waits.
  QuitGroup(calliope.sim(), client, play_a->group);
  ASSERT_TRUE(RunUntil(calliope.sim(),
                       [&] { return calliope.coordinator().pending_request_count() == 1; },
                       SimTime::Seconds(10)));
  calliope.sim().RunFor(SimTime::Seconds(2));
  EXPECT_GT(client.FindPort("tvb")->packets_received(), 0);
  EXPECT_EQ(client.FindPort("tvc")->packets_received(), 0);

  QuitGroup(calliope.sim(), client, play_b->group);
  ASSERT_TRUE(RunUntil(calliope.sim(),
                       [&] { return calliope.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(10)));
  calliope.sim().RunFor(SimTime::Seconds(2));
  EXPECT_GT(client.FindPort("tvc")->packets_received(), 0);
}

// A queued request whose session died is dropped with a warning instead of
// wedging the queue: later entries still start in order.
TEST(FailoverTest, DeadSessionQueuedRequestDoesNotWedgeQueue) {
  InstallationConfig config;
  config.msu_machine.disks_per_hba = {1};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(0.2);
  Installation calliope(config);
  ASSERT_TRUE(calliope.Boot().ok());
  for (const std::string name : {"a", "b", "c"}) {
    ASSERT_TRUE(calliope.LoadMpegMovie(name, SimTime::Seconds(60), 0, false, 0).ok());
  }
  CalliopeClient& keeper = calliope.AddClient("keeper");
  CalliopeClient& leaver = calliope.AddClient("leaver");
  ASSERT_TRUE(ConnectClient(calliope.sim(), keeper).ok());
  ASSERT_TRUE(ConnectClient(calliope.sim(), leaver).ok());

  auto play_a = PlayOn(calliope.sim(), keeper, "a", "tva");
  ASSERT_TRUE(play_a.ok());
  EXPECT_FALSE(play_a->queued);
  auto play_b = PlayOn(calliope.sim(), leaver, "b", "tvb");
  ASSERT_TRUE(play_b.ok());
  EXPECT_TRUE(play_b->queued);
  auto play_c = PlayOn(calliope.sim(), keeper, "c", "tvc");
  ASSERT_TRUE(play_c.ok());
  EXPECT_TRUE(play_c->queued);

  // The first queued request's session disappears before resources free up.
  leaver.Disconnect();
  calliope.sim().RunFor(SimTime::Seconds(1));

  QuitGroup(calliope.sim(), keeper, play_a->group);
  ASSERT_TRUE(RunUntil(calliope.sim(),
                       [&] { return calliope.coordinator().pending_request_count() == 0; },
                       SimTime::Seconds(10)));
  calliope.sim().RunFor(SimTime::Seconds(2));
  EXPECT_GT(keeper.FindPort("tvc")->packets_received(), 0);
}

}  // namespace
}  // namespace calliope
