// The paper's headline claim (abstract): "Calliope can be scaled from a
// single PC producing about 22 MPEG-1 streams to hundreds of PCs producing
// thousands of streams ... The Coordinator and internal network are the only
// shared resources in the system, so their capacity will eventually limit
// system size."
//
// This bench grows the installation from 1 to 8 MSUs, loads each to the
// Graph-1 working point (22 well-delivered 1.5 Mbit/s streams), and shows
// aggregate capacity scaling linearly while delivery quality holds and the
// Coordinator's load stays negligible.
//
// It then demonstrates replica-aware failover (§2.3.3 replication + §2.2
// failure detection): two MSUs with fully replicated content, one crashes
// mid-play, and the Coordinator re-places the interrupted streams on the
// survivor near their last reported media offsets. Run with
// --policy=<least-loaded|first-fit|power-of-two|replica-aware|all> to sweep
// placement policies (default: all), or --failover-only to skip the
// scale-out table.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/load/workload.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace calliope {
namespace {

struct ScaleResult {
  int msus = 0;
  int streams = 0;
  double delivered_mbps = 0;
  double pct_within_50ms = 0;
  double coordinator_cpu = 0;
};

ScaleResult RunScale(int msu_count, SimTime duration) {
  InstallationConfig config;
  config.msu_count = msu_count;
  config.msu_machine.disks_per_hba = {2};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(2.2);  // 11/disk: a safe margin
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return ScaleResult{};
  }
  const int per_msu = 22;
  for (int m = 0; m < msu_count; ++m) {
    for (int i = 0; i < per_msu; ++i) {
      (void)calliope.LoadMpegMovie("m" + std::to_string(m) + "_" + std::to_string(i),
                                   duration + SimTime::Seconds(60), static_cast<size_t>(m),
                                   false, i % 2);
    }
  }
  CalliopeClient& client = calliope.AddClient("viewers");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  calliope.coordinator_node().machine().cpu().ResetStats();
  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int m = 0; m < msu_count; ++m) {
    for (int i = 0; i < per_msu; ++i) {
      handles.push_back(std::make_unique<PlaybackHandle>());
      StartPlayback(client, "m" + std::to_string(m) + "_" + std::to_string(i),
                    "tv" + std::to_string(m) + "_" + std::to_string(i), "mpeg1",
                    handles.back().get());
    }
  }
  RunSimUntil(calliope.sim(), [&] { return handles.back()->done; }, SimTime::Seconds(60));
  calliope.sim().RunFor(duration);

  ScaleResult result;
  result.msus = msu_count;
  LatenessHistogram total;
  for (int m = 0; m < msu_count; ++m) {
    total.Merge(calliope.msu(static_cast<size_t>(m)).AggregateLateness());
    result.streams += calliope.msu(static_cast<size_t>(m)).active_stream_count();
  }
  result.delivered_mbps =
      static_cast<double>(total.total_count()) * 4096.0 / 1e6 / duration.seconds();
  result.pct_within_50ms = 100.0 * total.FractionWithin(SimTime::Millis(50));
  result.coordinator_cpu = calliope.coordinator_node().machine().cpu().Utilization();
  return result;
}

struct FailoverResult {
  std::string policy;
  int started = 0;
  int lost = 0;       // active on the crashed MSU at crash time
  int resumed = 0;    // re-placed on the survivor after the crash
  double pct_resumed = 0;
  bool ledger_balanced = false;
};

// Two MSUs, every movie replicated on both; crash msu0 mid-play and measure
// how many of its streams the Coordinator resumes on msu1.
FailoverResult RunFailover(const std::string& policy, SimTime play_before, SimTime settle,
                           bool print_report) {
  FailoverResult result;
  result.policy = policy;

  InstallationConfig config;
  config.msu_count = 2;
  config.msu_machine.disks_per_hba = {2};
  config.coordinator.placement_policy = policy;
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return result;
  }
  // Unknown names fall back to least-loaded; report what actually ran.
  result.policy = calliope.coordinator().placement_policy_name();
  const int movies = 16;
  const SimTime content_length = play_before + settle + SimTime::Seconds(60);
  for (int i = 0; i < movies; ++i) {
    const std::string name = "f" + std::to_string(i);
    (void)calliope.LoadMpegMovie(name, content_length, 0, false, i % 2);
    (void)calliope.ReplicateContent(name, 1, i % 2);
  }

  CalliopeClient& client = calliope.AddClient("viewers");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int i = 0; i < movies; ++i) {
    handles.push_back(std::make_unique<PlaybackHandle>());
    StartPlayback(client, "f" + std::to_string(i), "ftv" + std::to_string(i), "mpeg1",
                  handles.back().get());
  }
  RunSimUntil(calliope.sim(),
              [&] {
                for (const auto& handle : handles) {
                  if (!handle->done) {
                    return false;
                  }
                }
                return true;
              },
              SimTime::Seconds(30));
  for (const auto& handle : handles) {
    if (!handle->failed) {
      ++result.started;
    }
  }

  calliope.sim().RunFor(play_before);
  result.lost = calliope.msu(0).active_stream_count();
  const int survivor_before = calliope.msu(1).active_stream_count();

  calliope.msu(0).Crash();
  RunSimUntil(calliope.sim(),
              [&] {
                return calliope.msu(1).active_stream_count() >= survivor_before + result.lost;
              },
              settle);
  result.resumed = calliope.msu(1).active_stream_count() - survivor_before;
  result.pct_resumed =
      result.lost > 0 ? 100.0 * result.resumed / result.lost : 100.0;

  // Quit everything and check the ledger drains to zero (admission accounting
  // balanced across the crash).
  for (const auto& handle : handles) {
    if (!handle->failed && !client.GroupTerminated(handle->group)) {
      [](CalliopeClient* c, GroupId group) -> Task {
        co_await c->Quit(group);
      }(&client, handle->group);
    }
  }
  RunSimUntil(calliope.sim(),
              [&] { return calliope.coordinator().active_stream_count() == 0; },
              SimTime::Seconds(10));
  result.ledger_balanced = calliope.coordinator().ledger().TotalReserved() == DataRate() &&
                           calliope.coordinator().ledger().outstanding_holds() == 0;
  if (print_report) {
    std::printf("\nClusterReport after failover (policy %s):\n%s\n", result.policy.c_str(),
                calliope.BuildClusterReport().ToText().c_str());
  }
  return result;
}

// ---- hybrid-fidelity throughput sweep (ROADMAP item 5 trajectory) ----------
//
// Wall-clock simulator throughput for the same steady-state workload in both
// fidelity modes, plus a flow-mode run at 200 MSUs / 10k+ streams — the
// paper's "hundreds of PCs" claim, which per-packet simulation cannot reach.

struct FidelityRunResult {
  const char* mode = "";
  int msus = 0;
  int streams = 0;
  double sim_seconds = 0;
  double wall_seconds = 0;
  int64_t events = 0;
  double coordinator_cpu = 0;  // utilization over the measurement window

  double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0;
  }
  double sim_seconds_per_sec() const {
    return wall_seconds > 0 ? sim_seconds / wall_seconds : 0;
  }
  // Stream-seconds of media delivery simulated per host core-second (the
  // simulator is single-threaded, so wall time == core time).
  double stream_seconds_per_core_sec() const {
    return wall_seconds > 0 ? streams * sim_seconds / wall_seconds : 0;
  }
  // The per-mode cost figure: how many simulator events one stream-second of
  // steady-state delivery costs. Flow mode's win is this dropping ~10-40x.
  double events_per_stream_sim_second() const {
    return streams > 0 && sim_seconds > 0
               ? static_cast<double>(events) / (streams * sim_seconds)
               : 0;
  }
};

FidelityRunResult RunFidelityWorkload(Fidelity mode, int msu_count, int per_msu,
                                      SimTime window, SimTime startup_timeout) {
  FidelityRunResult result;
  result.mode = mode == Fidelity::kFlow ? "flow" : "packet";
  result.msus = msu_count;

  InstallationConfig config;
  config.msu_count = msu_count;
  // Dense configs (the 200-MSU run) double the disks and budget so each MSU
  // admits ~52 streams instead of the Graph-1 22.
  const bool dense = per_msu > 22;
  config.msu_machine.disks_per_hba = dense ? std::vector<int>{2, 2} : std::vector<int>{2};
  config.coordinator.disk_budget =
      dense ? DataRate::MegabytesPerSec(2.7) : DataRate::MegabytesPerSec(2.2);
  config.msu.fidelity.default_mode = mode;
  config.msu.fidelity.quiet_window = SimTime::Millis(300);
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return result;
  }

  const int disks = dense ? 4 : 2;
  const int total = msu_count * per_msu;
  // Pace admissions below the coordinator's capacity. Each stream costs it
  // ~2.7 ms of compute (RegisterPort + Play + the MsuStartStream relay at
  // request_compute each), so ~250 streams/s saturates the shared resource
  // exactly as §3.3 predicts and the 10 s RPC timeout starts rejecting the
  // backlog; 200/s keeps the admission queue short.
  constexpr int kSpawnBatch = 100;
  const int batches = (total + kSpawnBatch - 1) / kSpawnBatch;
  const SimTime spawn_time = SimTime::Millis(500) * batches;
  const SimTime content = spawn_time + startup_timeout + window + SimTime::Seconds(30);
  for (int m = 0; m < msu_count; ++m) {
    for (int d = 0; d < disks; ++d) {
      (void)calliope.LoadMpegMovie("s" + std::to_string(m) + "_" + std::to_string(d), content,
                                   static_cast<size_t>(m), false, d);
    }
  }

  // Receiving a stream costs the viewer host ~2.7% of its serial CPU/memory
  // resource (checksum read + user copy + per-packet receive compute), so a
  // diskless host saturates near ~37 streams and its backlog then delays its
  // own RPC responses past the timeout. The paper's clients are set-top
  // boxes with one stream each; 16 per host is already generous.
  const int num_clients = std::max(1, (total + 15) / 16);
  std::vector<CalliopeClient*> clients;
  std::vector<char> connected(static_cast<size_t>(num_clients), 0);
  for (int c = 0; c < num_clients; ++c) {
    clients.push_back(&calliope.AddClient("viewers" + std::to_string(c)));
    [](CalliopeClient* cl, char* flag) -> Task {
      *flag = (co_await cl->Connect("bob", "bob-key")).ok() ? 1 : 0;
    }(clients.back(), &connected[static_cast<size_t>(c)]);
  }
  RunSimUntil(calliope.sim(),
              [&] {
                for (char flag : connected) {
                  if (flag == 0) {
                    return false;
                  }
                }
                return true;
              },
              SimTime::Seconds(30));

  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int i = 0; i < total; ++i) {
    const int m = i % msu_count;
    const int d = (i / msu_count) % disks;
    handles.push_back(std::make_unique<PlaybackHandle>());
    StartPlayback(*clients[static_cast<size_t>(i % num_clients)],
                  "s" + std::to_string(m) + "_" + std::to_string(d),
                  "tv" + std::to_string(i), "mpeg1", handles.back().get());
    if ((i + 1) % kSpawnBatch == 0 && i + 1 < total) {
      calliope.sim().RunFor(SimTime::Millis(500));
    }
  }
  RunSimUntil(calliope.sim(),
              [&] {
                for (const auto& handle : handles) {
                  if (!handle->done) {
                    return false;
                  }
                }
                return true;
              },
              startup_timeout, SimTime::Millis(200));
  // Let the last admissions pass their quiet window and promote.
  calliope.sim().RunFor(SimTime::Seconds(1));
  for (int m = 0; m < msu_count; ++m) {
    result.streams += calliope.msu(static_cast<size_t>(m)).active_stream_count();
  }
  if (result.streams < total) {
    int failed = 0, queued = 0, pending = 0;
    std::map<std::string, int> reasons;
    for (const auto& handle : handles) {
      if (!handle->done) {
        ++pending;
      } else if (handle->failed) {
        ++failed;
        ++reasons[handle->error];
      } else if (handle->queued) {
        ++queued;
      }
    }
    std::fprintf(stderr, "[fidelity] %s %d MSUs: %d/%d streams active (%d failed, %d queued, %d pending)\n",
                 result.mode, msu_count, result.streams, total, failed, queued, pending);
    for (const auto& [reason, count] : reasons) {
      std::fprintf(stderr, "[fidelity]   %5d x %s\n", count, reason.c_str());
    }
  }

  const int64_t events_before = calliope.sim().events_fired();
  calliope.coordinator_node().machine().cpu().ResetStats();
  const auto wall_before = std::chrono::steady_clock::now();
  calliope.sim().RunFor(window);
  const auto wall_after = std::chrono::steady_clock::now();
  result.coordinator_cpu = calliope.coordinator_node().machine().cpu().Utilization();
  result.events = calliope.sim().events_fired() - events_before;
  result.sim_seconds = window.seconds();
  result.wall_seconds = std::chrono::duration<double>(wall_after - wall_before).count();
  return result;
}

// ---- popularity-aware stream sharing: Zipf capacity (DESIGN.md §5.6) -------
//
// The batching/caching claim: under a Zipf(1.0) title popularity distribution
// (a realistic video-server workload), shared delivery groups plus the
// interval cache let one MSU concurrently serve at least twice the viewers
// the unique-stream baseline admits on the same topology and disk budget.

struct SharingCapacityResult {
  int viewers_offered = 0;
  int titles = 0;
  double zipf_skew = 1.0;
  int baseline_served = 0;  // unique-stream mode: viewers receiving media
  int shared_served = 0;    // sharing + interval cache enabled
  int64_t groups_formed = 0;
  int64_t cache_attaches = 0;
  double ratio() const {
    return baseline_served > 0 ? static_cast<double>(shared_served) / baseline_served : 0;
  }
};

// One capacity probe: `picks[i]` is viewer i's title. Returns the number of
// viewers actually receiving media at the checkpoint (mid-play, past the
// batch window, before any title ends).
int ServeZipfViewers(bool sharing, const std::vector<int>& picks, int titles,
                     SimTime checkpoint, int64_t* groups_formed, int64_t* cache_attaches) {
  InstallationConfig config;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {2};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(2.2);  // 11 streams/disk
  config.coordinator.sharing.enabled = sharing;
  config.coordinator.sharing.batch_window = SimTime::Seconds(1);
  if (sharing) {
    config.msu.cache_memory = Bytes::MiB(64);
  }
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return 0;
  }
  const SimTime content_length = checkpoint + SimTime::Seconds(60);
  for (int t = 0; t < titles; ++t) {
    (void)calliope.LoadMpegMovie("z" + std::to_string(t), content_length, 0, false, t % 2);
  }

  // Spread viewers over client hosts: receiving a stream costs the host CPU,
  // and one diskless host saturates near ~37 streams.
  const int num_clients = std::max(1, (static_cast<int>(picks.size()) + 15) / 16);
  std::vector<CalliopeClient*> clients;
  std::vector<char> connected(static_cast<size_t>(num_clients), 0);
  for (int c = 0; c < num_clients; ++c) {
    clients.push_back(&calliope.AddClient("zview" + std::to_string(c)));
    [](CalliopeClient* cl, char* flag) -> Task {
      *flag = (co_await cl->Connect("bob", "bob-key")).ok() ? 1 : 0;
    }(clients.back(), &connected[static_cast<size_t>(c)]);
  }
  RunSimUntil(calliope.sim(),
              [&] {
                for (char flag : connected) {
                  if (flag == 0) {
                    return false;
                  }
                }
                return true;
              },
              SimTime::Seconds(10));

  // Most viewers arrive inside one batch window (coalesced into groups); the
  // last sixth trickle in 3 s later — past the window but inside the interval
  // cache horizon, so shared mode attaches them from cached pages.
  const size_t prompt_count = picks.size() - picks.size() / 6;
  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  const auto start_viewer = [&](size_t i) {
    handles.push_back(std::make_unique<PlaybackHandle>());
    StartPlayback(*clients[i % clients.size()], "z" + std::to_string(picks[i]),
                  "ztv" + std::to_string(i), "mpeg1", handles.back().get());
  };
  const auto all_done = [&] {
    for (const auto& handle : handles) {
      if (!handle->done) {
        return false;
      }
    }
    return true;
  };
  for (size_t i = 0; i < prompt_count; ++i) {
    start_viewer(i);
  }
  RunSimUntil(calliope.sim(), all_done, SimTime::Seconds(20));
  calliope.sim().RunFor(SimTime::Seconds(3));
  for (size_t i = prompt_count; i < picks.size(); ++i) {
    start_viewer(i);
  }
  RunSimUntil(calliope.sim(), all_done, SimTime::Seconds(20));
  calliope.sim().RunFor(checkpoint);

  int served = 0;
  for (size_t i = 0; i < picks.size(); ++i) {
    ClientDisplayPort* port = clients[i % clients.size()]->FindPort("ztv" + std::to_string(i));
    if (port != nullptr && port->packets_received() > 0) {
      ++served;
    }
  }
  if (groups_formed != nullptr) {
    *groups_formed = calliope.metrics().counter("coord.groups.formed").value();
  }
  if (cache_attaches != nullptr) {
    *cache_attaches = calliope.metrics().counter("coord.groups.attaches").value();
  }
  return served;
}

SharingCapacityResult RunSharingSweep() {
  PrintHeader("Stream sharing: Zipf(1.0) capacity, unique streams vs shared groups",
              "DESIGN.md section 5.6 (beyond-paper popularity-aware delivery)");
  SharingCapacityResult result;
  result.viewers_offered = 66;  // 3x the 22-stream unique cap of one MSU
  result.titles = 6;
  result.zipf_skew = 1.0;
  const SimTime checkpoint = FastBenchMode() ? SimTime::Seconds(8) : SimTime::Seconds(12);

  // Fixed seed: both modes see the identical request sequence.
  std::vector<int> picks;
  Rng rng(1996);
  ZipfDistribution zipf(static_cast<size_t>(result.titles), result.zipf_skew);
  for (int i = 0; i < result.viewers_offered; ++i) {
    picks.push_back(static_cast<int>(zipf.Sample(rng)));
  }

  result.baseline_served =
      ServeZipfViewers(false, picks, result.titles, checkpoint, nullptr, nullptr);
  result.shared_served = ServeZipfViewers(true, picks, result.titles, checkpoint,
                                          &result.groups_formed, &result.cache_attaches);

  AsciiTable table({"mode", "viewers offered", "served per MSU", "disk streams"});
  table.AddRow({"unique", std::to_string(result.viewers_offered),
                std::to_string(result.baseline_served), std::to_string(result.baseline_served)});
  table.AddRow({"shared", std::to_string(result.viewers_offered),
                std::to_string(result.shared_served),
                std::to_string(result.groups_formed)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("Zipf(%.1f) over %d titles: the unique-stream baseline hits the disk budget\n",
              result.zipf_skew, result.titles);
  std::printf("at %d viewers; batching the popularity head onto %lld shared delivery\n",
              result.baseline_served, static_cast<long long>(result.groups_formed));
  std::printf("streams (+%lld interval-cache attaches) serves %d — %.1fx the viewers per\n",
              static_cast<long long>(result.cache_attaches), result.shared_served,
              result.ratio());
  std::printf("MSU on the same hardware (acceptance floor: 2x).\n\n");
  return result;
}

// ---- dynamic rebalancing: flash crowd, static vs dynamic replicas ----------
//
// The rebalancing claim (DESIGN.md §5.8): a flash crowd hits one title whose
// only replica lives on one of two MSUs, oversubscribing that disk's duty
// cycle. With the static replica set the overflow viewers stay queued for the
// whole run; with background rebalancing enabled the planner copies the hot
// title to the idle MSU over a rate-limited background stream and the queue
// drains — convergence time is the copy install plus the admission retry.

struct RebalanceCrowdResult {
  bool rebalance = false;
  int viewers = 0;
  int admitted = 0;            // receiving immediately, before any copy
  int queued = 0;              // parked in the admission queue at request time
  int served = 0;              // ports receiving media at the checkpoint
  int rejected = 0;            // still starved at the checkpoint
  int64_t copies_started = 0;
  int64_t copies_installed = 0;
  int64_t demotions = 0;
  int64_t convergence_us = -1;  // first sim instant every viewer is receiving
  int64_t p50_lateness_us = 0;  // worst live-stream p50 at the checkpoint
  int64_t p99_lateness_us = 0;  // worst live-stream p99 at the checkpoint
};

RebalanceCrowdResult RunFlashCrowd(bool rebalance, SimTime checkpoint) {
  RebalanceCrowdResult result;
  result.rebalance = rebalance;
  result.viewers = 8;

  InstallationConfig config;
  config.msu_count = 2;
  config.msu_machine.disks_per_hba = {1};
  // 5 MPEG-1 streams per disk: a crowd of 8 oversubscribes the one replica.
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(1.0);
  config.coordinator.rebalance.enabled = rebalance;
  // 2x the stream rate: ~30 s to copy the 60 s title, and the copy's duty
  // slot still fits on the source disk next to the 5 live streams.
  config.coordinator.rebalance.copy_rate = DataRate::MegabitsPerSec(3);
  // Fast popularity decay so the dynamic replica cools and demotes within
  // the bench window once the crowd disperses.
  config.coordinator.sharing.popularity_halflife = SimTime::Seconds(5);
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return result;
  }
  (void)calliope.LoadMpegMovie("hot", SimTime::Seconds(60), 0, false, 0);

  CalliopeClient& client = calliope.AddClient("crowd");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  const SimTime crowd_at = calliope.sim().Now();
  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int i = 0; i < result.viewers; ++i) {
    handles.push_back(std::make_unique<PlaybackHandle>());
    StartPlayback(client, "hot", "ctv" + std::to_string(i), "mpeg1", handles.back().get());
  }
  RunSimUntil(calliope.sim(),
              [&] {
                for (const auto& handle : handles) {
                  if (!handle->done) {
                    return false;
                  }
                }
                return true;
              },
              SimTime::Seconds(10));
  for (const auto& handle : handles) {
    if (handle->failed) {
      continue;
    }
    ++(handle->queued ? result.queued : result.admitted);
  }

  // Convergence: the first instant the admission queue is empty and every
  // viewer's port is receiving media.
  const auto all_receiving = [&] {
    if (calliope.coordinator().pending_request_count() > 0) {
      return false;
    }
    for (int i = 0; i < result.viewers; ++i) {
      ClientDisplayPort* port = client.FindPort("ctv" + std::to_string(i));
      if (port == nullptr || port->packets_received() == 0) {
        return false;
      }
    }
    return true;
  };
  if (RunSimUntil(calliope.sim(), all_receiving, checkpoint, SimTime::Millis(100))) {
    result.convergence_us = (calliope.sim().Now() - crowd_at).micros();
  }
  if (calliope.sim().Now() < crowd_at + checkpoint) {
    calliope.sim().RunFor(crowd_at + checkpoint - calliope.sim().Now());
  }

  for (int i = 0; i < result.viewers; ++i) {
    ClientDisplayPort* port = client.FindPort("ctv" + std::to_string(i));
    ++(port != nullptr && port->packets_received() > 0 ? result.served : result.rejected);
  }
  const ClusterReport report = calliope.BuildClusterReport();
  for (const StreamQosReport& stream : report.streams) {
    if (stream.finished) {
      continue;
    }
    result.p50_lateness_us = std::max(result.p50_lateness_us, stream.p50_lateness_us);
    result.p99_lateness_us = std::max(result.p99_lateness_us, stream.p99_lateness_us);
  }
  result.copies_started = calliope.metrics().counter("coord.rebalance.copies_started").value();
  result.copies_installed =
      calliope.metrics().counter("coord.rebalance.copies_installed").value();

  // Crowd disperses: quit everything, let the popularity EWMA cool, and the
  // planner should demote the now-cold dynamic replica.
  for (const auto& handle : handles) {
    if (!handle->failed && !client.GroupTerminated(handle->group)) {
      [](CalliopeClient* c, GroupId group) -> Task {
        co_await c->Quit(group);
      }(&client, handle->group);
    }
  }
  RunSimUntil(calliope.sim(),
              [&] { return calliope.coordinator().active_stream_count() == 0; },
              SimTime::Seconds(10));
  if (rebalance) {
    RunSimUntil(calliope.sim(),
                [&] {
                  return calliope.metrics().counter("coord.rebalance.demotions").value() >= 1;
                },
                SimTime::Seconds(40), SimTime::Millis(250));
    result.demotions = calliope.metrics().counter("coord.rebalance.demotions").value();
  }
  return result;
}

struct RebalanceSweepResult {
  RebalanceCrowdResult off;  // static replica set
  RebalanceCrowdResult on;   // background rebalancing enabled
  bool accepted() const {
    return off.rejected > 0 && on.rejected == 0 && on.convergence_us >= 0 &&
           on.copies_installed >= 1 && on.p99_lateness_us < SimTime::Millis(50).micros();
  }
};

RebalanceSweepResult RunRebalanceSweep() {
  PrintHeader("Dynamic rebalancing: flash crowd, static vs dynamic replica sets",
              "DESIGN.md section 5.8 (beyond-paper hot-title replication)");
  RebalanceSweepResult result;
  const SimTime checkpoint = SimTime::Seconds(45);  // copy installs ~32 s in
  result.off = RunFlashCrowd(false, checkpoint);
  result.on = RunFlashCrowd(true, checkpoint);

  AsciiTable table({"replica set", "viewers", "admitted", "queued", "served @45s",
                    "starved @45s", "copies", "converged", "p99 late"});
  const auto add_row = [&](const RebalanceCrowdResult& r) {
    char converged[32], late[32];
    if (r.convergence_us >= 0) {
      std::snprintf(converged, sizeof(converged), "%.1f s", r.convergence_us / 1e6);
    } else {
      std::snprintf(converged, sizeof(converged), "never");
    }
    std::snprintf(late, sizeof(late), "%.1f ms", r.p99_lateness_us / 1e3);
    table.AddRow({r.rebalance ? "dynamic" : "static", std::to_string(r.viewers),
                  std::to_string(r.admitted), std::to_string(r.queued),
                  std::to_string(r.served), std::to_string(r.rejected),
                  std::to_string(r.copies_installed), converged, late});
  };
  add_row(result.off);
  add_row(result.on);
  std::printf("%s\n", table.Render().c_str());
  std::printf("One 1 MB/s disk admits 5 MPEG-1 streams; the crowd of %d oversubscribes\n",
              result.on.viewers);
  std::printf("the single replica. Static: %d viewers starve for the whole run. Dynamic:\n",
              result.off.rejected);
  std::printf("the planner copies the hot title to the idle MSU at 3 Mbit/s in the\n");
  std::printf("background, the queue drains at %.1f s, and the cold replica is demoted\n",
              result.on.convergence_us >= 0 ? result.on.convergence_us / 1e6 : -1.0);
  std::printf("(%lld demotion%s) after the crowd disperses — all without pushing any\n",
              static_cast<long long>(result.on.demotions), result.on.demotions == 1 ? "" : "s");
  std::printf("live viewer past the 50 ms lateness SLO (worst p99: %.1f ms).\n\n",
              result.on.p99_lateness_us / 1e3);
  return result;
}

// ---- overload control: saturation sweep, shedding on vs off ----------------
//
// The overload-control claim (DESIGN.md §5.9): offered load at ~2x the disk's
// duty-cycle capacity. With traffic control off the pending queue grows
// unchecked and the pending-depth SLO breaches. With it on, the saturation
// governor sheds standard/bulk queued load (explicit notices, never
// interactive) and interactive sessions keep their lateness SLO.

struct LoadRunResult {
  bool shedding = false;
  int64_t offered = 0;             // sessions the generator launched
  int64_t started = 0;             // requests that reached a served stream
  int64_t refused_interactive = 0;
  int64_t refused_standard = 0;
  int64_t refused_bulk = 0;
  int64_t shed_interactive = 0;    // governor + queue-cap sheds, per class
  int64_t shed_standard = 0;
  int64_t shed_bulk = 0;
  int64_t shed_episodes = 0;
  int64_t breach_episodes = 0;     // pending-depth SLO
  int64_t worst_depth = 0;
  int64_t interactive_started = 0;
  int64_t interactive_p99_us = 0;  // worst interactive stream p99 lateness
  double goodput_pct() const {
    return offered > 0 ? 100.0 * static_cast<double>(started) / static_cast<double>(offered)
                       : 0.0;
  }
};

LoadRunResult RunSaturatedWorkload(bool shedding, uint64_t seed) {
  LoadRunResult result;
  result.shedding = shedding;

  InstallationConfig config;
  config.seed = seed;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {1};
  // Five concurrent MPEG-1 viewers fit on the single disk.
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(1.0);
  config.sampler.period = SimTime::Millis(250);
  SloSpec depth;
  depth.name = "queue-depth";
  depth.signal = SloSpec::Signal::kPendingDepth;
  depth.threshold = 3;
  depth.min_breach_windows = 2;
  config.slos.push_back(depth);
  if (shedding) {
    config.coordinator.traffic.enabled = true;
    // Long queue deadlines: the governor's shedding, not expiry, bounds the
    // backlog, so the comparison isolates the policy.
    config.coordinator.traffic.interactive_deadline = SimTime::Seconds(120);
    config.coordinator.traffic.standard_deadline = SimTime::Seconds(120);
    config.coordinator.traffic.bulk_deadline = SimTime::Seconds(120);
  }
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return result;
  }

  // ~1.7 arrivals/s x ~6 s mean hold ~= 10 concurrent stream-equivalents
  // against 5 slots: saturated, not just busy.
  WorkloadConfig workload;
  workload.seed = seed;
  workload.titles = 3;
  workload.archive_titles = 1;
  workload.client_hosts = 3;
  workload.phases = {WorkloadPhase(SimTime::Seconds(18), 1.7)};
  workload.viewer_hold_mean = SimTime::Seconds(6);
  workload.surfer_hold_mean = SimTime::Seconds(4);
  workload.recording_length = SimTime::Seconds(2);
  workload.ready_timeout = SimTime::Seconds(25);
  WorkloadDriver driver(calliope, workload);
  if (!driver.Prepare().ok()) {
    return result;
  }
  driver.Start();
  RunSimUntil(calliope.sim(), [&] { return driver.done(); }, SimTime::Seconds(120));

  const WorkloadStats& stats = driver.stats();
  result.offered = stats.arrivals;
  result.started = stats.started;
  const size_t interactive = static_cast<size_t>(AdmissionClass::kInteractive);
  const size_t standard = static_cast<size_t>(AdmissionClass::kStandard);
  const size_t bulk = static_cast<size_t>(AdmissionClass::kBulk);
  result.refused_interactive = stats.refused_by_class[interactive];
  result.refused_standard = stats.refused_by_class[standard];
  result.refused_bulk = stats.refused_by_class[bulk];
  result.interactive_started = stats.started_by_class[interactive];
  if (shedding) {
    result.shed_interactive =
        calliope.metrics().counter("coord.admission.interactive.shed").value();
    result.shed_standard = calliope.metrics().counter("coord.admission.standard.shed").value();
    result.shed_bulk = calliope.metrics().counter("coord.admission.bulk.shed").value();
    result.shed_episodes = calliope.metrics().counter("coord.shed.episodes").value();
  }
  const ClusterReport report = calliope.BuildClusterReport();
  if (report.timeline.has_value()) {
    for (const SloBreachReport& slo : report.timeline->slos) {
      if (slo.name == "queue-depth") {
        result.breach_episodes = slo.breach_episodes;
        result.worst_depth = slo.worst_value;
      }
    }
  }
  for (GroupId group : driver.started_groups(AdmissionClass::kInteractive)) {
    for (const StreamQosReport& stream : report.streams) {
      if (stream.group_id == group && stream.p99_lateness_us > result.interactive_p99_us) {
        result.interactive_p99_us = stream.p99_lateness_us;
      }
    }
  }
  return result;
}

struct LoadSweepResult {
  LoadRunResult off;  // traffic control disabled: backlog grows, SLO breaches
  LoadRunResult on;   // shedding: interactive protected, lower classes shed
  bool accepted() const {
    return on.shed_episodes >= 1 && on.shed_interactive == 0 &&
           on.shed_standard + on.shed_bulk > 0 && on.refused_interactive == 0 &&
           on.interactive_started > 0 &&
           on.interactive_p99_us <= SimTime::Millis(20).micros() && off.breach_episodes >= 1 &&
           off.worst_depth > on.worst_depth;
  }
};

LoadSweepResult RunLoadSweep() {
  PrintHeader("Overload control: saturated workload, shedding on vs off",
              "DESIGN.md section 5.9 (beyond-paper traffic control)");
  LoadSweepResult result;
  const uint64_t seed = 1;
  result.off = RunSaturatedWorkload(false, seed);
  result.on = RunSaturatedWorkload(true, seed);

  AsciiTable table({"mode", "offered", "started", "goodput", "refused i/s/b", "shed i/s/b",
                    "depth breaches", "worst depth", "interactive p99"});
  const auto add_row = [&](const LoadRunResult& r) {
    char goodput[32], refused[48], shed[48], late[32];
    std::snprintf(goodput, sizeof(goodput), "%.0f%%", r.goodput_pct());
    std::snprintf(refused, sizeof(refused), "%lld/%lld/%lld",
                  static_cast<long long>(r.refused_interactive),
                  static_cast<long long>(r.refused_standard),
                  static_cast<long long>(r.refused_bulk));
    std::snprintf(shed, sizeof(shed), "%lld/%lld/%lld",
                  static_cast<long long>(r.shed_interactive),
                  static_cast<long long>(r.shed_standard),
                  static_cast<long long>(r.shed_bulk));
    std::snprintf(late, sizeof(late), "%.1f ms", r.interactive_p99_us / 1e3);
    table.AddRow({r.shedding ? "shed" : "off", std::to_string(r.offered),
                  std::to_string(r.started), goodput, refused, shed,
                  std::to_string(r.breach_episodes), std::to_string(r.worst_depth), late});
  };
  add_row(result.off);
  add_row(result.on);
  std::printf("%s\n", table.Render().c_str());
  std::printf("A 1 MB/s disk serves 5 MPEG-1 streams; the generator offers ~2x that.\n");
  std::printf("Off: the pending queue grows to %lld and the depth SLO breaches %lld\n",
              static_cast<long long>(result.off.worst_depth),
              static_cast<long long>(result.off.breach_episodes));
  std::printf("time(s). Shed: the governor fires (%lld episode%s), refuses only\n",
              static_cast<long long>(result.on.shed_episodes),
              result.on.shed_episodes == 1 ? "" : "s");
  std::printf("standard/bulk load with explicit notices (%lld shed, interactive: 0),\n",
              static_cast<long long>(result.on.shed_standard + result.on.shed_bulk));
  std::printf("and every interactive session stays within the lateness SLO\n");
  std::printf("(worst p99: %.1f ms).\n\n", result.on.interactive_p99_us / 1e3);
  return result;
}

void WriteLoadJson(std::FILE* file, const LoadSweepResult& load) {
  const auto write_run = [&](const char* key, const LoadRunResult& r, const char* tail) {
    std::fprintf(file,
                 "    \"%s\": {\"offered\": %lld, \"started\": %lld, \"goodput_pct\": %.1f, "
                 "\"refused_interactive\": %lld, \"refused_standard\": %lld, "
                 "\"refused_bulk\": %lld, \"shed_interactive\": %lld, \"shed_standard\": %lld, "
                 "\"shed_bulk\": %lld, \"shed_episodes\": %lld, \"depth_breach_episodes\": %lld, "
                 "\"worst_depth\": %lld, \"interactive_started\": %lld, "
                 "\"interactive_p99_lateness_us\": %lld}%s\n",
                 key, static_cast<long long>(r.offered), static_cast<long long>(r.started),
                 r.goodput_pct(), static_cast<long long>(r.refused_interactive),
                 static_cast<long long>(r.refused_standard),
                 static_cast<long long>(r.refused_bulk),
                 static_cast<long long>(r.shed_interactive),
                 static_cast<long long>(r.shed_standard), static_cast<long long>(r.shed_bulk),
                 static_cast<long long>(r.shed_episodes),
                 static_cast<long long>(r.breach_episodes),
                 static_cast<long long>(r.worst_depth),
                 static_cast<long long>(r.interactive_started),
                 static_cast<long long>(r.interactive_p99_us), tail);
  };
  std::fprintf(file,
               "  \"load\": {\"disk_capacity_streams\": 5, \"offered_multiple\": 2.0, "
               "\"accepted\": %s,\n",
               load.accepted() ? "true" : "false");
  write_run("unshed", load.off, ",");
  write_run("shed", load.on, "");
  std::fprintf(file, "  },\n");
}

// ---- continuous telemetry: disk-slowdown fault as an SLO breach ------------
//
// One MSU serving a handful of streams with the MetricsSampler running; a
// kDiskSlow fault window opens mid-play and the lateness-p99 SLO must go into
// breach, with its first/last breach timestamps bracketed by the fault window.

struct TelemetryResult {
  TimelineReport timeline;
  SimTime fault_start;
  SimTime fault_end;
  bool breached = false;
  bool bracketed = false;
};

TelemetryResult RunTelemetryScenario(const std::string& csv_path) {
  PrintHeader("Continuous telemetry: windowed QoS timelines and SLO monitors",
              "DESIGN.md section 5.7 (beyond-paper observability)");
  TelemetryResult result;

  InstallationConfig config;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {2};
  config.sampler.period = SimTime::Millis(500);
  SloSpec p99;
  p99.name = "lateness-p99";
  p99.signal = SloSpec::Signal::kLatenessP99;
  p99.threshold = SimTime::Millis(25).micros();
  // No debouncing: a slowed disk delivers late pages as discrete catch-up
  // bursts, so breaching windows alternate with starved-empty ones and a
  // consecutive-window filter would mask exactly the fault this scenario
  // exists to localize.
  p99.min_breach_windows = 1;
  SloSpec gap;
  gap.name = "delivery-gap";
  gap.signal = SloSpec::Signal::kMaxGap;
  gap.threshold = SimTime::Millis(500).micros();
  config.slos = {p99, gap};
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return result;
  }
  const SimTime play_span = FastBenchMode() ? SimTime::Seconds(8) : SimTime::Seconds(12);
  const int streams = 8;
  for (int i = 0; i < streams; ++i) {
    (void)calliope.LoadMpegMovie("t" + std::to_string(i), play_span + SimTime::Seconds(2), 0,
                                 false, i % 2);
  }

  CalliopeClient& client = calliope.AddClient("viewers");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int i = 0; i < streams; ++i) {
    handles.push_back(std::make_unique<PlaybackHandle>());
    StartPlayback(client, "t" + std::to_string(i), "tv" + std::to_string(i), "mpeg1",
                  handles.back().get());
  }
  RunSimUntil(calliope.sim(), [&] { return handles.back()->done; }, SimTime::Seconds(10));

  // The fault window opens a third of the way in and outlives the playbacks,
  // so every breach window the catch-up tail produces still falls inside it.
  FaultEvent fault;
  fault.what = FaultClass::kDiskSlow;
  fault.at = calliope.sim().Now() + play_span / 3;
  fault.duration = play_span * 2;
  fault.node = "msu0";
  fault.disk = -1;
  // Just above the per-page playback span (~1.37 s at MPEG-1 rates with
  // 256 KB pages): the disk falls behind continuously, so lateness climbs
  // and stays up for the rest of the fault window instead of collapsing
  // into one catch-up burst.
  fault.delay = SimTime::Millis(1600);
  result.fault_start = fault.at;
  result.fault_end = fault.end();
  FaultPlan plan;
  plan.events.push_back(fault);
  (void)calliope.ApplyFaultPlan(std::move(plan));

  calliope.sim().RunFor(play_span);
  result.timeline = calliope.BuildClusterReport().timeline.value();

  AsciiTable table({"SLO", "threshold (us)", "windows", "breached", "episodes",
                    "first breach", "last breach", "worst value"});
  for (const SloBreachReport& slo : result.timeline.slos) {
    table.AddRow({slo.name, std::to_string(slo.threshold),
                  std::to_string(slo.windows_evaluated), std::to_string(slo.breach_windows),
                  std::to_string(slo.breach_episodes),
                  SimTime::Micros(slo.first_breach_us).ToString(),
                  SimTime::Micros(slo.last_breach_us).ToString(),
                  std::to_string(slo.worst_value)});
    if (slo.name == "lateness-p99" && slo.breach_windows > 0) {
      result.breached = true;
      result.bracketed = slo.first_breach_us >= result.fault_start.micros() &&
                         slo.last_breach_us <= result.fault_end.micros();
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Disk slowdown window: %s .. %s; the lateness-p99 breach is %sbracketed\n",
              result.fault_start.ToString().c_str(), result.fault_end.ToString().c_str(),
              result.bracketed ? "" : "NOT ");
  std::printf("by it — the SLO monitor localizes the fault in simulated time.\n\n");
  if (!csv_path.empty()) {
    const Status written = calliope.sampler()->WriteCsv(csv_path);
    if (written.ok()) {
      std::printf("(wrote %s)\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
    }
  }
  return result;
}

void WriteTelemetryJson(std::FILE* file, const TelemetryResult& telemetry) {
  const TimelineReport& t = telemetry.timeline;
  std::fprintf(file,
               "  \"telemetry\": {\"window_us\": %lld, \"windows\": %lld, "
               "\"fault_start_us\": %lld, \"fault_end_us\": %lld, "
               "\"breach_bracketed\": %s, \"slos\": [",
               static_cast<long long>(t.window_us), static_cast<long long>(t.windows),
               static_cast<long long>(telemetry.fault_start.micros()),
               static_cast<long long>(telemetry.fault_end.micros()),
               telemetry.bracketed ? "true" : "false");
  for (size_t i = 0; i < t.slos.size(); ++i) {
    const SloBreachReport& slo = t.slos[i];
    std::fprintf(file,
                 "%s{\"name\": \"%s\", \"threshold\": %lld, \"breach_windows\": %lld, "
                 "\"breach_episodes\": %lld, \"first_breach_us\": %lld, "
                 "\"last_breach_us\": %lld, \"worst_value\": %lld}",
                 i > 0 ? ", " : "", slo.name.c_str(), static_cast<long long>(slo.threshold),
                 static_cast<long long>(slo.breach_windows),
                 static_cast<long long>(slo.breach_episodes),
                 static_cast<long long>(slo.first_breach_us),
                 static_cast<long long>(slo.last_breach_us),
                 static_cast<long long>(slo.worst_value));
  }
  std::fprintf(file, "]},\n");
}

void WriteRebalanceJson(std::FILE* file, const RebalanceSweepResult& rebalance) {
  const auto write_run = [&](const char* key, const RebalanceCrowdResult& r, const char* tail) {
    std::fprintf(file,
                 "    \"%s\": {\"admitted\": %d, \"queued\": %d, \"served_at_checkpoint\": %d, "
                 "\"rejected_at_checkpoint\": %d, \"convergence_us\": %lld, "
                 "\"copies_started\": %lld, \"copies_installed\": %lld, \"demotions\": %lld, "
                 "\"p50_lateness_us\": %lld, \"p99_lateness_us\": %lld}%s\n",
                 key, r.admitted, r.queued, r.served, r.rejected,
                 static_cast<long long>(r.convergence_us),
                 static_cast<long long>(r.copies_started),
                 static_cast<long long>(r.copies_installed),
                 static_cast<long long>(r.demotions),
                 static_cast<long long>(r.p50_lateness_us),
                 static_cast<long long>(r.p99_lateness_us), tail);
  };
  std::fprintf(file,
               "  \"rebalance\": {\"viewers\": %d, \"disk_capacity_streams\": 5, "
               "\"checkpoint_us\": %lld, \"accepted\": %s,\n",
               rebalance.on.viewers, static_cast<long long>(SimTime::Seconds(45).micros()),
               rebalance.accepted() ? "true" : "false");
  write_run("static", rebalance.off, ",");
  write_run("dynamic", rebalance.on, "");
  std::fprintf(file, "  },\n");
}

void WriteFidelityJson(const std::string& path, const std::vector<FidelityRunResult>& runs,
                       double speedup_8msu, const SharingCapacityResult* sharing,
                       const TelemetryResult* telemetry,
                       const RebalanceSweepResult* rebalance,
                       const LoadSweepResult* load = nullptr) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "{\n");
  std::fprintf(file, "  \"bench\": \"scaleout_fidelity\",\n");
  std::fprintf(file, "  \"fast_mode\": %s,\n", FastBenchMode() ? "true" : "false");
  std::fprintf(file, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const FidelityRunResult& r = runs[i];
    std::fprintf(file,
                 "    {\"mode\": \"%s\", \"msus\": %d, \"streams\": %d, "
                 "\"sim_seconds\": %.1f, \"wall_seconds\": %.3f, \"events\": %lld, "
                 "\"events_per_sec\": %.0f, \"sim_seconds_per_wall_sec\": %.3f, "
                 "\"stream_seconds_per_core_sec\": %.1f, "
                 "\"events_per_stream_sim_second\": %.2f, "
                 "\"coordinator_cpu\": %.4f}%s\n",
                 r.mode, r.msus, r.streams, r.sim_seconds, r.wall_seconds,
                 static_cast<long long>(r.events), r.events_per_sec(), r.sim_seconds_per_sec(),
                 r.stream_seconds_per_core_sec(), r.events_per_stream_sim_second(),
                 r.coordinator_cpu, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n");
  if (telemetry != nullptr) {
    WriteTelemetryJson(file, *telemetry);
  }
  if (rebalance != nullptr) {
    WriteRebalanceJson(file, *rebalance);
  }
  if (load != nullptr) {
    WriteLoadJson(file, *load);
  }
  if (sharing != nullptr) {
    std::fprintf(file,
                 "  \"sharing\": {\"viewers_offered\": %d, \"titles\": %d, "
                 "\"zipf_skew\": %.2f, "
                 "\"baseline_max_concurrent_viewers_per_msu\": %d, "
                 "\"shared_max_concurrent_viewers_per_msu\": %d, "
                 "\"groups_formed\": %lld, \"cache_attaches\": %lld, "
                 "\"viewers_per_msu_ratio\": %.2f},\n",
                 sharing->viewers_offered, sharing->titles, sharing->zipf_skew,
                 sharing->baseline_served, sharing->shared_served,
                 static_cast<long long>(sharing->groups_formed),
                 static_cast<long long>(sharing->cache_attaches), sharing->ratio());
  }
  std::fprintf(file, "  \"events_per_stream_speedup_8msu\": %.2f\n", speedup_8msu);
  std::fprintf(file, "}\n");
  std::fclose(file);
  std::printf("(wrote %s)\n", path.c_str());
}

int RunFidelitySweep(const std::string& json_path, const SharingCapacityResult* sharing,
                     const TelemetryResult* telemetry, const RebalanceSweepResult* rebalance,
                     const LoadSweepResult* load = nullptr) {
  PrintHeader("Hybrid fidelity: simulator throughput, per-packet vs flow mode",
              "DESIGN.md section 5.5 (beyond-paper scale-out)");
  const SimTime window = FastBenchMode() ? SimTime::Seconds(5) : SimTime::Seconds(20);

  std::vector<FidelityRunResult> runs;
  AsciiTable table({"mode", "MSUs", "streams", "events/s", "sim-s per s",
                    "stream-s per core-s", "events per stream-s", "coord CPU"});
  const auto add_row = [&](const FidelityRunResult& r) {
    char ev[32], simrate[32], streamrate[32], cost[32], coord[32];
    std::snprintf(ev, sizeof(ev), "%.0f", r.events_per_sec());
    std::snprintf(simrate, sizeof(simrate), "%.2f", r.sim_seconds_per_sec());
    std::snprintf(streamrate, sizeof(streamrate), "%.0f", r.stream_seconds_per_core_sec());
    std::snprintf(cost, sizeof(cost), "%.2f", r.events_per_stream_sim_second());
    std::snprintf(coord, sizeof(coord), "%.1f%%", 100.0 * r.coordinator_cpu);
    table.AddRow({r.mode, std::to_string(r.msus), std::to_string(r.streams), ev, simrate,
                  streamrate, cost, coord});
  };

  double packet_cost_8msu = 0;
  double flow_cost_8msu = 0;
  for (Fidelity mode : {Fidelity::kPacket, Fidelity::kFlow}) {
    for (int msus : {1, 2, 4, 8}) {
      const FidelityRunResult r =
          RunFidelityWorkload(mode, msus, 22, window, SimTime::Seconds(30));
      if (msus == 8) {
        (mode == Fidelity::kFlow ? flow_cost_8msu : packet_cost_8msu) =
            r.events_per_stream_sim_second();
      }
      add_row(r);
      runs.push_back(r);
    }
  }
  // The headline run: 200 MSUs x 52 streams = 10,400 concurrent streams,
  // feasible only in flow mode.
  const FidelityRunResult big =
      RunFidelityWorkload(Fidelity::kFlow, 200, 52, window, SimTime::Seconds(120));
  add_row(big);
  runs.push_back(big);

  const double speedup = flow_cost_8msu > 0 ? packet_cost_8msu / flow_cost_8msu : 0;
  std::printf("%s\n", table.Render().c_str());
  std::printf("Flow mode replaces ~8 events per packet with ~1 event per chunk; at the\n");
  std::printf("8-MSU Graph-1 working point one stream-second costs %.1fx fewer events\n",
              speedup);
  std::printf("(acceptance floor: 10x), which is what lets the 200-MSU row above exist.\n");
  WriteFidelityJson(json_path, runs, speedup, sharing, telemetry, rebalance, load);
  const bool sharing_ok = sharing == nullptr || sharing->ratio() >= 2.0;
  const bool telemetry_ok = telemetry == nullptr || telemetry->bracketed;
  const bool rebalance_ok = rebalance == nullptr || rebalance->accepted();
  const bool load_ok = load == nullptr || load->accepted();
  return big.streams >= 10000 && speedup >= 10.0 && sharing_ok && telemetry_ok &&
                 rebalance_ok && load_ok
             ? 0
             : 1;
}

}  // namespace
}  // namespace calliope

int main(int argc, char** argv) {
  using namespace calliope;
  std::string policy_flag = "all";
  bool failover_only = false;
  bool print_report = false;
  bool fidelity = false;
  bool fidelity_only = false;
  bool sharing = false;
  bool slo = false;
  bool rebalance = false;
  bool load_sweep = false;
  std::string timeline_csv;
  std::string json_path = "BENCH_scaleout.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      policy_flag = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--failover-only") == 0) {
      failover_only = true;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      print_report = true;
    } else if (std::strcmp(argv[i], "--fidelity") == 0) {
      fidelity = true;
    } else if (std::strcmp(argv[i], "--fidelity-only") == 0) {
      fidelity = fidelity_only = true;
    } else if (std::strcmp(argv[i], "--sharing") == 0) {
      sharing = true;
    } else if (std::strcmp(argv[i], "--slo") == 0) {
      slo = true;
    } else if (std::strcmp(argv[i], "--rebalance") == 0) {
      rebalance = true;
    } else if (std::strcmp(argv[i], "--load") == 0) {
      load_sweep = true;
    } else if (std::strncmp(argv[i], "--timeline-csv=", 15) == 0) {
      timeline_csv = argv[i] + 15;
      slo = true;  // the CSV comes out of the SLO scenario
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--policy=<name|all>] [--failover-only] [--report]\n"
                   "          [--fidelity | --fidelity-only] [--sharing] [--slo]\n"
                   "          [--rebalance] [--load] [--timeline-csv=PATH] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  // --load alone runs just the saturation sweep; combined with
  // --fidelity(-only) the overload section rides along in the JSON.
  if (load_sweep && !fidelity && !rebalance && !sharing && !slo) {
    const LoadSweepResult result = RunLoadSweep();
    WriteFidelityJson(json_path, {}, 0.0, nullptr, nullptr, nullptr, &result);
    return result.accepted() ? 0 : 1;
  }
  // --slo alone runs just the telemetry scenario; combined with
  // --fidelity(-only) its verdicts ride along in the JSON.
  if (slo && !fidelity && !rebalance) {
    const TelemetryResult result = RunTelemetryScenario(timeline_csv);
    WriteFidelityJson(json_path, {}, 0.0, nullptr, &result, nullptr);
    return result.breached && result.bracketed ? 0 : 1;
  }
  // --sharing alone runs just the Zipf capacity sweep; combined with
  // --fidelity(-only) the shared-capacity section rides along in the JSON.
  if (sharing && !fidelity && !rebalance) {
    const SharingCapacityResult result = RunSharingSweep();
    WriteFidelityJson(json_path, {}, 0.0, &result, nullptr, nullptr);
    return result.ratio() >= 2.0 ? 0 : 1;
  }
  // --rebalance alone runs just the flash-crowd sweep; combined with
  // --fidelity(-only) the rebalance section rides along in the JSON.
  if (rebalance && !fidelity) {
    const RebalanceSweepResult result = RunRebalanceSweep();
    SharingCapacityResult sharing_result;
    TelemetryResult telemetry_result;
    if (sharing) {
      sharing_result = RunSharingSweep();
    }
    if (slo) {
      telemetry_result = RunTelemetryScenario(timeline_csv);
    }
    WriteFidelityJson(json_path, {}, 0.0, sharing ? &sharing_result : nullptr,
                      slo ? &telemetry_result : nullptr, &result);
    const bool sharing_ok = !sharing || sharing_result.ratio() >= 2.0;
    const bool telemetry_ok = !slo || (telemetry_result.breached && telemetry_result.bracketed);
    return result.accepted() && sharing_ok && telemetry_ok ? 0 : 1;
  }
  if (fidelity_only) {
    SharingCapacityResult sharing_result;
    if (sharing) {
      sharing_result = RunSharingSweep();
    }
    TelemetryResult telemetry_result;
    if (slo) {
      telemetry_result = RunTelemetryScenario(timeline_csv);
    }
    RebalanceSweepResult rebalance_result;
    if (rebalance) {
      rebalance_result = RunRebalanceSweep();
    }
    LoadSweepResult load_result;
    if (load_sweep) {
      load_result = RunLoadSweep();
    }
    return RunFidelitySweep(json_path, sharing ? &sharing_result : nullptr,
                            slo ? &telemetry_result : nullptr,
                            rebalance ? &rebalance_result : nullptr,
                            load_sweep ? &load_result : nullptr);
  }
  std::vector<std::string> policies;
  if (policy_flag == "all") {
    policies = PlacementPolicyRegistry::WithBuiltins().names();
  } else {
    policies.push_back(policy_flag);
  }

  if (!failover_only) {
    PrintHeader("Scale-out: aggregate capacity vs number of MSUs",
                "USENIX '96 Calliope paper, abstract + section 3.3");

    const SimTime duration = FastBenchMode() ? SimTime::Seconds(20) : SimTime::Seconds(60);
    AsciiTable table({"MSUs", "streams", "delivered MB/s", "% <= 50ms late", "coordinator CPU"});
    for (int msus : {1, 2, 4, 8}) {
      const ScaleResult result = RunScale(msus, duration);
      char mb[32], pct[32], cpu[32];
      std::snprintf(mb, sizeof(mb), "%.2f", result.delivered_mbps);
      std::snprintf(pct, sizeof(pct), "%.1f", result.pct_within_50ms);
      std::snprintf(cpu, sizeof(cpu), "%.2f%%", result.coordinator_cpu * 100.0);
      table.AddRow({std::to_string(result.msus), std::to_string(result.streams), mb, pct, cpu});
    }
    std::printf("%s\n", table.Render().c_str());
    std::printf("Each MSU carries the Graph-1 working load (22 x 1.5 Mbit/s); capacity\n");
    std::printf("scales with the box count while the Coordinator idles — extrapolating,\n");
    std::printf("\"150 MSUs at 20 streams each\" (3000 streams) needs ~50 requests/second\n");
    std::printf("of Coordinator work, per the scalability bench.\n\n");
  }

  PrintHeader("Replica-aware failover: crash one of two mirrored MSUs mid-play",
              "USENIX '96 Calliope paper, sections 2.2 + 2.3.3");
  const SimTime play_before = FastBenchMode() ? SimTime::Seconds(6) : SimTime::Seconds(10);
  AsciiTable failover({"policy", "streams", "on crashed MSU", "resumed", "% resumed",
                       "ledger balanced"});
  for (const std::string& policy : policies) {
    const FailoverResult result = RunFailover(policy, play_before, SimTime::Seconds(8),
                                              print_report);
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.0f%%", result.pct_resumed);
    failover.AddRow({result.policy, std::to_string(result.started),
                     std::to_string(result.lost), std::to_string(result.resumed), pct,
                     result.ledger_balanced ? "yes" : "NO"});
  }
  std::printf("%s\n", failover.Render().c_str());
  std::printf("Every movie is mirrored on both MSUs; when one crashes, the Coordinator\n");
  std::printf("re-runs placement for its interrupted groups against the replicas and\n");
  std::printf("resumes each stream near its last reported media offset.\n");
  // Each Installation writes its own suffixed trace at destruction
  // (out.json, out.2.json, ...), so multi-scenario runs keep every trace.
  if (const char* trace_env = std::getenv("CALLIOPE_TRACE");
      trace_env != nullptr && *trace_env != '\0') {
    std::printf("\nChrome traces written to %s (one suffixed file per scenario) — open at "
                "https://ui.perfetto.dev\n",
                trace_env);
  }
  if (fidelity) {
    std::printf("\n");
    SharingCapacityResult sharing_result;
    if (sharing) {
      sharing_result = RunSharingSweep();
    }
    TelemetryResult telemetry_result;
    if (slo) {
      telemetry_result = RunTelemetryScenario(timeline_csv);
    }
    RebalanceSweepResult rebalance_result;
    if (rebalance) {
      rebalance_result = RunRebalanceSweep();
    }
    LoadSweepResult load_result;
    if (load_sweep) {
      load_result = RunLoadSweep();
    }
    return RunFidelitySweep(json_path, sharing ? &sharing_result : nullptr,
                            slo ? &telemetry_result : nullptr,
                            rebalance ? &rebalance_result : nullptr,
                            load_sweep ? &load_result : nullptr);
  }
  return 0;
}
