// The paper's headline claim (abstract): "Calliope can be scaled from a
// single PC producing about 22 MPEG-1 streams to hundreds of PCs producing
// thousands of streams ... The Coordinator and internal network are the only
// shared resources in the system, so their capacity will eventually limit
// system size."
//
// This bench grows the installation from 1 to 8 MSUs, loads each to the
// Graph-1 working point (22 well-delivered 1.5 Mbit/s streams), and shows
// aggregate capacity scaling linearly while delivery quality holds and the
// Coordinator's load stays negligible.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/table.h"

namespace calliope {
namespace {

struct ScaleResult {
  int msus = 0;
  int streams = 0;
  double delivered_mbps = 0;
  double pct_within_50ms = 0;
  double coordinator_cpu = 0;
};

ScaleResult RunScale(int msu_count, SimTime duration) {
  InstallationConfig config;
  config.msu_count = msu_count;
  config.msu_machine.disks_per_hba = {2};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(2.2);  // 11/disk: a safe margin
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return ScaleResult{};
  }
  const int per_msu = 22;
  for (int m = 0; m < msu_count; ++m) {
    for (int i = 0; i < per_msu; ++i) {
      (void)calliope.LoadMpegMovie("m" + std::to_string(m) + "_" + std::to_string(i),
                                   duration + SimTime::Seconds(60), static_cast<size_t>(m),
                                   false, i % 2);
    }
  }
  CalliopeClient& client = calliope.AddClient("viewers");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  calliope.coordinator_node().machine().cpu().ResetStats();
  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int m = 0; m < msu_count; ++m) {
    for (int i = 0; i < per_msu; ++i) {
      handles.push_back(std::make_unique<PlaybackHandle>());
      StartPlayback(client, "m" + std::to_string(m) + "_" + std::to_string(i),
                    "tv" + std::to_string(m) + "_" + std::to_string(i), "mpeg1",
                    handles.back().get());
    }
  }
  RunSimUntil(calliope.sim(), [&] { return handles.back()->done; }, SimTime::Seconds(60));
  calliope.sim().RunFor(duration);

  ScaleResult result;
  result.msus = msu_count;
  LatenessHistogram total;
  for (int m = 0; m < msu_count; ++m) {
    total.Merge(calliope.msu(static_cast<size_t>(m)).AggregateLateness());
    result.streams += calliope.msu(static_cast<size_t>(m)).active_stream_count();
  }
  result.delivered_mbps =
      static_cast<double>(total.total_count()) * 4096.0 / 1e6 / duration.seconds();
  result.pct_within_50ms = 100.0 * total.FractionWithin(SimTime::Millis(50));
  result.coordinator_cpu = calliope.coordinator_node().machine().cpu().Utilization();
  return result;
}

}  // namespace
}  // namespace calliope

int main() {
  using namespace calliope;
  PrintHeader("Scale-out: aggregate capacity vs number of MSUs",
              "USENIX '96 Calliope paper, abstract + section 3.3");

  const SimTime duration = FastBenchMode() ? SimTime::Seconds(20) : SimTime::Seconds(60);
  AsciiTable table({"MSUs", "streams", "delivered MB/s", "% <= 50ms late", "coordinator CPU"});
  for (int msus : {1, 2, 4, 8}) {
    const ScaleResult result = RunScale(msus, duration);
    char mb[32], pct[32], cpu[32];
    std::snprintf(mb, sizeof(mb), "%.2f", result.delivered_mbps);
    std::snprintf(pct, sizeof(pct), "%.1f", result.pct_within_50ms);
    std::snprintf(cpu, sizeof(cpu), "%.2f%%", result.coordinator_cpu * 100.0);
    table.AddRow({std::to_string(result.msus), std::to_string(result.streams), mb, pct, cpu});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Each MSU carries the Graph-1 working load (22 x 1.5 Mbit/s); capacity\n");
  std::printf("scales with the box count while the Coordinator idles — extrapolating,\n");
  std::printf("\"150 MSUs at 20 streams each\" (3000 streams) needs ~50 requests/second\n");
  std::printf("of Coordinator work, per the scalability bench.\n");
  return 0;
}
