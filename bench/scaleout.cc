// The paper's headline claim (abstract): "Calliope can be scaled from a
// single PC producing about 22 MPEG-1 streams to hundreds of PCs producing
// thousands of streams ... The Coordinator and internal network are the only
// shared resources in the system, so their capacity will eventually limit
// system size."
//
// This bench grows the installation from 1 to 8 MSUs, loads each to the
// Graph-1 working point (22 well-delivered 1.5 Mbit/s streams), and shows
// aggregate capacity scaling linearly while delivery quality holds and the
// Coordinator's load stays negligible.
//
// It then demonstrates replica-aware failover (§2.3.3 replication + §2.2
// failure detection): two MSUs with fully replicated content, one crashes
// mid-play, and the Coordinator re-places the interrupted streams on the
// survivor near their last reported media offsets. Run with
// --policy=<least-loaded|first-fit|power-of-two|replica-aware|all> to sweep
// placement policies (default: all), or --failover-only to skip the
// scale-out table.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/table.h"

namespace calliope {
namespace {

struct ScaleResult {
  int msus = 0;
  int streams = 0;
  double delivered_mbps = 0;
  double pct_within_50ms = 0;
  double coordinator_cpu = 0;
};

ScaleResult RunScale(int msu_count, SimTime duration) {
  InstallationConfig config;
  config.msu_count = msu_count;
  config.msu_machine.disks_per_hba = {2};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(2.2);  // 11/disk: a safe margin
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return ScaleResult{};
  }
  const int per_msu = 22;
  for (int m = 0; m < msu_count; ++m) {
    for (int i = 0; i < per_msu; ++i) {
      (void)calliope.LoadMpegMovie("m" + std::to_string(m) + "_" + std::to_string(i),
                                   duration + SimTime::Seconds(60), static_cast<size_t>(m),
                                   false, i % 2);
    }
  }
  CalliopeClient& client = calliope.AddClient("viewers");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  calliope.coordinator_node().machine().cpu().ResetStats();
  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int m = 0; m < msu_count; ++m) {
    for (int i = 0; i < per_msu; ++i) {
      handles.push_back(std::make_unique<PlaybackHandle>());
      StartPlayback(client, "m" + std::to_string(m) + "_" + std::to_string(i),
                    "tv" + std::to_string(m) + "_" + std::to_string(i), "mpeg1",
                    handles.back().get());
    }
  }
  RunSimUntil(calliope.sim(), [&] { return handles.back()->done; }, SimTime::Seconds(60));
  calliope.sim().RunFor(duration);

  ScaleResult result;
  result.msus = msu_count;
  LatenessHistogram total;
  for (int m = 0; m < msu_count; ++m) {
    total.Merge(calliope.msu(static_cast<size_t>(m)).AggregateLateness());
    result.streams += calliope.msu(static_cast<size_t>(m)).active_stream_count();
  }
  result.delivered_mbps =
      static_cast<double>(total.total_count()) * 4096.0 / 1e6 / duration.seconds();
  result.pct_within_50ms = 100.0 * total.FractionWithin(SimTime::Millis(50));
  result.coordinator_cpu = calliope.coordinator_node().machine().cpu().Utilization();
  return result;
}

struct FailoverResult {
  std::string policy;
  int started = 0;
  int lost = 0;       // active on the crashed MSU at crash time
  int resumed = 0;    // re-placed on the survivor after the crash
  double pct_resumed = 0;
  bool ledger_balanced = false;
};

// Two MSUs, every movie replicated on both; crash msu0 mid-play and measure
// how many of its streams the Coordinator resumes on msu1.
FailoverResult RunFailover(const std::string& policy, SimTime play_before, SimTime settle,
                           bool print_report) {
  FailoverResult result;
  result.policy = policy;

  InstallationConfig config;
  config.msu_count = 2;
  config.msu_machine.disks_per_hba = {2};
  config.coordinator.placement_policy = policy;
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return result;
  }
  // Unknown names fall back to least-loaded; report what actually ran.
  result.policy = calliope.coordinator().placement_policy_name();
  const int movies = 16;
  const SimTime content_length = play_before + settle + SimTime::Seconds(60);
  for (int i = 0; i < movies; ++i) {
    const std::string name = "f" + std::to_string(i);
    (void)calliope.LoadMpegMovie(name, content_length, 0, false, i % 2);
    (void)calliope.ReplicateContent(name, 1, i % 2);
  }

  CalliopeClient& client = calliope.AddClient("viewers");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int i = 0; i < movies; ++i) {
    handles.push_back(std::make_unique<PlaybackHandle>());
    StartPlayback(client, "f" + std::to_string(i), "ftv" + std::to_string(i), "mpeg1",
                  handles.back().get());
  }
  RunSimUntil(calliope.sim(),
              [&] {
                for (const auto& handle : handles) {
                  if (!handle->done) {
                    return false;
                  }
                }
                return true;
              },
              SimTime::Seconds(30));
  for (const auto& handle : handles) {
    if (!handle->failed) {
      ++result.started;
    }
  }

  calliope.sim().RunFor(play_before);
  result.lost = calliope.msu(0).active_stream_count();
  const int survivor_before = calliope.msu(1).active_stream_count();

  calliope.msu(0).Crash();
  RunSimUntil(calliope.sim(),
              [&] {
                return calliope.msu(1).active_stream_count() >= survivor_before + result.lost;
              },
              settle);
  result.resumed = calliope.msu(1).active_stream_count() - survivor_before;
  result.pct_resumed =
      result.lost > 0 ? 100.0 * result.resumed / result.lost : 100.0;

  // Quit everything and check the ledger drains to zero (admission accounting
  // balanced across the crash).
  for (const auto& handle : handles) {
    if (!handle->failed && !client.GroupTerminated(handle->group)) {
      [](CalliopeClient* c, GroupId group) -> Task {
        co_await c->Quit(group);
      }(&client, handle->group);
    }
  }
  RunSimUntil(calliope.sim(),
              [&] { return calliope.coordinator().active_stream_count() == 0; },
              SimTime::Seconds(10));
  result.ledger_balanced = calliope.coordinator().ledger().TotalReserved() == DataRate() &&
                           calliope.coordinator().ledger().outstanding_holds() == 0;
  if (print_report) {
    std::printf("\nClusterReport after failover (policy %s):\n%s\n", result.policy.c_str(),
                calliope.BuildClusterReport().ToText().c_str());
  }
  return result;
}

}  // namespace
}  // namespace calliope

int main(int argc, char** argv) {
  using namespace calliope;
  std::string policy_flag = "all";
  bool failover_only = false;
  bool print_report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      policy_flag = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--failover-only") == 0) {
      failover_only = true;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      print_report = true;
    } else {
      std::fprintf(stderr, "usage: %s [--policy=<name|all>] [--failover-only] [--report]\n",
                   argv[0]);
      return 2;
    }
  }
  std::vector<std::string> policies;
  if (policy_flag == "all") {
    policies = PlacementPolicyRegistry::WithBuiltins().names();
  } else {
    policies.push_back(policy_flag);
  }

  if (!failover_only) {
    PrintHeader("Scale-out: aggregate capacity vs number of MSUs",
                "USENIX '96 Calliope paper, abstract + section 3.3");

    const SimTime duration = FastBenchMode() ? SimTime::Seconds(20) : SimTime::Seconds(60);
    AsciiTable table({"MSUs", "streams", "delivered MB/s", "% <= 50ms late", "coordinator CPU"});
    for (int msus : {1, 2, 4, 8}) {
      const ScaleResult result = RunScale(msus, duration);
      char mb[32], pct[32], cpu[32];
      std::snprintf(mb, sizeof(mb), "%.2f", result.delivered_mbps);
      std::snprintf(pct, sizeof(pct), "%.1f", result.pct_within_50ms);
      std::snprintf(cpu, sizeof(cpu), "%.2f%%", result.coordinator_cpu * 100.0);
      table.AddRow({std::to_string(result.msus), std::to_string(result.streams), mb, pct, cpu});
    }
    std::printf("%s\n", table.Render().c_str());
    std::printf("Each MSU carries the Graph-1 working load (22 x 1.5 Mbit/s); capacity\n");
    std::printf("scales with the box count while the Coordinator idles — extrapolating,\n");
    std::printf("\"150 MSUs at 20 streams each\" (3000 streams) needs ~50 requests/second\n");
    std::printf("of Coordinator work, per the scalability bench.\n\n");
  }

  PrintHeader("Replica-aware failover: crash one of two mirrored MSUs mid-play",
              "USENIX '96 Calliope paper, sections 2.2 + 2.3.3");
  const SimTime play_before = FastBenchMode() ? SimTime::Seconds(6) : SimTime::Seconds(10);
  AsciiTable failover({"policy", "streams", "on crashed MSU", "resumed", "% resumed",
                       "ledger balanced"});
  for (const std::string& policy : policies) {
    const FailoverResult result = RunFailover(policy, play_before, SimTime::Seconds(8),
                                              print_report);
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.0f%%", result.pct_resumed);
    failover.AddRow({result.policy, std::to_string(result.started),
                     std::to_string(result.lost), std::to_string(result.resumed), pct,
                     result.ledger_balanced ? "yes" : "NO"});
  }
  std::printf("%s\n", failover.Render().c_str());
  std::printf("Every movie is mirrored on both MSUs; when one crashes, the Coordinator\n");
  std::printf("re-runs placement for its interrupted groups against the replicas and\n");
  std::printf("resumes each stream near its last reported media offset.\n");
  // Each Installation writes the trace at destruction, so with several runs
  // the file holds the last scenario (use --policy=<one> for a single run).
  if (const char* trace_env = std::getenv("CALLIOPE_TRACE");
      trace_env != nullptr && *trace_env != '\0') {
    std::printf("\nChrome trace written to %s — open at https://ui.perfetto.dev\n", trace_env);
  }
  return 0;
}
