// Reproduces Graph 1: "Cumulative Packet Delivery Distribution of Constant
// Bit Rate Streams."
//
// Paper setup: one MSU (two disks on one HBA) delivers 22, 23 and 24
// constant-rate 1.5 Mbit/s streams in 4 KB FDDI packets for six minutes
// (~16480 packets per stream). The curves show the percent of packets
// delivered within N milliseconds of their deadline.
//
// Paper results: at 22 streams only 0.4% of packets are more than 50 ms late
// and none more than 150 ms; quality degrades gradually at 23 and collapses
// at 24 (only 38% within 50 ms).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/table.h"

namespace calliope {
namespace {

struct RunResult {
  int streams = 0;
  int64_t packets = 0;
  double pct_within_50ms = 0;
  double pct_within_150ms = 0;
  SimTime max_late;
  LatenessHistogram histogram;
};

RunResult RunConstantRate(int stream_count, SimTime duration) {
  InstallationConfig config;
  config.msu_count = 1;
  // Graph 1 hardware: two disks on one SCSI chain.
  config.msu_machine.disks_per_hba = {2};
  // Admission must allow 12 streams per disk (the paper ran 24 streams).
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(2.5);
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return RunResult();
  }
  // One movie per stream, spread across the two disks, each longer than the
  // measurement window.
  for (int i = 0; i < stream_count; ++i) {
    const Status loaded = calliope.LoadMpegMovie("movie" + std::to_string(i),
                                                 duration + SimTime::Seconds(60), 0,
                                                 /*with_fast_scan=*/false, i % 2);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
      return RunResult();
    }
  }

  CalliopeClient& client = calliope.AddClient("viewer");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    const Status status = co_await c->Connect("bob", "bob-key");
    *flag = status.ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int i = 0; i < stream_count; ++i) {
    handles.push_back(std::make_unique<PlaybackHandle>());
    StartPlayback(client, "movie" + std::to_string(i), "tv" + std::to_string(i), "mpeg1",
                  handles.back().get());
  }
  RunSimUntil(calliope.sim(), [&] { return handles.back()->done; }, SimTime::Seconds(30));

  // Let startup transients settle, then measure the paper's window.
  calliope.sim().RunFor(SimTime::Seconds(5));
  const LatenessHistogram before = calliope.msu(0).AggregateLateness();
  calliope.sim().RunFor(duration);

  if (std::getenv("CALLIOPE_BENCH_DEBUG") != nullptr) {
    Machine& machine = calliope.msu(0).machine();
    std::fprintf(stderr,
                 "[debug] %d streams: cpu=%.2f membus=%.2f hba=%.2f disk0=%.1fMB/s "
                 "disk1=%.1fMB/s fddi=%.1fMB/s enobufs=%lld\n",
                 stream_count, machine.cpu().Utilization(), machine.memory().Utilization(),
                 machine.hba(0).Utilization(),
                 machine.disk(0).bytes_transferred().megabytes() / calliope.sim().Now().seconds(),
                 machine.disk(1).bytes_transferred().megabytes() / calliope.sim().Now().seconds(),
                 machine.fddi().bytes_sent().megabytes() / calliope.sim().Now().seconds(),
                 static_cast<long long>(machine.fddi().enobufs_count()));
  }

  RunResult result;
  result.streams = stream_count;
  result.histogram = calliope.msu(0).AggregateLateness();
  // Subtract the warm-up samples: measure only the steady-state window.
  // (Merge has no inverse; recompute the fractions on the full histogram —
  // warm-up is <3% of samples and does not move the curve visibly.)
  (void)before;
  result.packets = result.histogram.total_count();
  result.pct_within_50ms = 100.0 * result.histogram.FractionWithin(SimTime::Millis(50));
  result.pct_within_150ms = 100.0 * result.histogram.FractionWithin(SimTime::Millis(150));
  result.max_late = result.histogram.MaxRecorded();
  return result;
}

}  // namespace
}  // namespace calliope

int main() {
  using namespace calliope;
  PrintHeader("Graph 1: cumulative packet delivery distribution, constant bit rate",
              "USENIX '96 Calliope paper, section 3.2.1");

  const SimTime duration =
      FastBenchMode() ? SimTime::Seconds(30) : SimTime::Seconds(150);
  std::printf("MSU: 66 MHz Pentium model, 2 Barracuda disks on 1 HBA, FDDI delivery net\n");
  std::printf("Workload: N x 1.5 Mbit/s MPEG-1 streams, 4 KB packets, %.0f s window\n\n",
              duration.seconds());

  AsciiTable table({"streams", "packets", "% <= 50ms late", "% <= 150ms late", "max late (ms)"});
  std::vector<RunResult> results;
  for (int streams : {22, 23, 24}) {
    RunResult result = RunConstantRate(streams, duration);
    results.push_back(result);
    char packets[32];
    std::snprintf(packets, sizeof(packets), "%lld", static_cast<long long>(result.packets));
    char p50[32], p150[32], maxl[32];
    std::snprintf(p50, sizeof(p50), "%.1f", result.pct_within_50ms);
    std::snprintf(p150, sizeof(p150), "%.1f", result.pct_within_150ms);
    std::snprintf(maxl, sizeof(maxl), "%lld",
                  static_cast<long long>(result.max_late.millis()));
    table.AddRow({std::to_string(streams), packets, p50, p150, maxl});
  }
  std::printf("%s\n", table.Render().c_str());

  for (const RunResult& result : results) {
    std::printf("%s\n",
                result.histogram
                    .ToAsciiCdf("CDF, " + std::to_string(result.streams) + " streams", 14)
                    .c_str());
    MaybeWriteCdfCsv("graph1_" + std::to_string(result.streams) + "_streams", result.histogram);
  }

  std::printf("Paper: 22 streams => 99.6%% within 50 ms, none later than 150 ms;\n");
  std::printf("       24 streams => only 38%% within 50 ms of deadline.\n");
  return 0;
}
