// Shared helpers for the paper-reproduction benchmark binaries.
#ifndef CALLIOPE_BENCH_BENCH_UTIL_H_
#define CALLIOPE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "src/calliope/calliope.h"

namespace calliope {

// Set CALLIOPE_BENCH_FAST=1 to shrink measurement windows (CI smoke runs).
inline bool FastBenchMode() {
  const char* env = std::getenv("CALLIOPE_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline bool RunSimUntil(Simulator& sim, const std::function<bool()>& pred, SimTime timeout,
                        SimTime step = SimTime::Millis(20)) {
  const SimTime deadline = sim.Now() + timeout;
  while (!pred() && sim.Now() < deadline) {
    sim.RunFor(step);
  }
  return pred();
}

// Starts one client session playing `content` on a fresh mpeg1 display port.
// Returns through `out` (0 = failed).
struct PlaybackHandle {
  GroupId group = 0;
  bool failed = false;
  bool queued = false;  // Coordinator accepted but has no resources yet
  bool done = false;
  SimTime requested_at;  // when the play request was issued
  std::string error;     // status of the step that failed, if any
};

inline Task StartPlayback(CalliopeClient& client, std::string content, std::string port_name,
                          std::string type_name, PlaybackHandle* out) {
  auto port = co_await client.RegisterPort(port_name, type_name);
  if (!port.ok()) {
    out->failed = true;
    out->error = "RegisterPort: " + port.status().ToString();
    out->done = true;
    co_return;
  }
  out->requested_at = client.sim().Now();
  auto play = co_await client.Play(std::move(content), std::move(port_name));
  if (!play.ok()) {
    out->failed = true;
    out->error = "Play: " + play.status().ToString();
    out->done = true;
    co_return;
  }
  out->group = play->group;
  out->queued = play->queued;
  out->done = true;
}

// When CALLIOPE_BENCH_CSV is set to a directory, figure benches also write
// their cumulative-distribution series as CSV for external plotting.
inline void MaybeWriteCdfCsv(const std::string& name, const LatenessHistogram& histogram) {
  const char* dir = std::getenv("CALLIOPE_BENCH_CSV");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "milliseconds_late,cumulative_percent\n");
  for (const auto& point : histogram.CdfSeries(400)) {
    if (point.lateness == SimTime::Max()) {
      continue;
    }
    std::fprintf(file, "%lld,%.4f\n", static_cast<long long>(point.lateness.millis()),
                 point.cumulative_percent);
  }
  std::fclose(file);
  std::printf("(wrote %s)\n", path.c_str());
}

inline void PrintHeader(const char* title, const char* paper_reference) {
  std::printf("==========================================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paper_reference);
  std::printf("==========================================================================\n");
}

}  // namespace calliope

#endif  // CALLIOPE_BENCH_BENCH_UTIL_H_
