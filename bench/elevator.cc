// Reproduces the §2.3.3 disk-head-scheduling experiment.
//
// "Using a simple program that simulated 24 concurrent users reading random
// 256 KByte disk blocks, we found that an elevator scheduling algorithm
// improves throughput by only about 6% for our disks" — because rotation and
// settle time dominate, and the 256 KB block size already amortizes seeks.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace calliope {
namespace {

constexpr Bytes kBlock = Bytes::KiB(256);

Task RandomReader(Disk& disk, uint64_t seed) {
  Rng rng(seed);
  const int64_t blocks = disk.capacity() / kBlock;
  for (;;) {
    const Bytes offset =
        kBlock * static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(blocks)));
    co_await disk.Read(offset, kBlock);
  }
}

double Throughput(DiskQueueDiscipline discipline, int users, SimTime duration) {
  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = {1};
  Machine machine(sim, params, "bench");
  machine.disk(0).set_discipline(discipline);
  for (int u = 0; u < users; ++u) {
    RandomReader(machine.disk(0), 7000 + static_cast<uint64_t>(u));
  }
  sim.RunFor(duration);
  return machine.disk(0).bytes_transferred().megabytes() / duration.seconds();
}

}  // namespace
}  // namespace calliope

int main() {
  using namespace calliope;
  PrintHeader("Disk head scheduling: elevator (SCAN) vs round-robin FCFS",
              "USENIX '96 Calliope paper, section 2.3.3");

  const SimTime duration = FastBenchMode() ? SimTime::Seconds(60) : SimTime::Seconds(240);
  AsciiTable table({"concurrent readers", "FCFS MB/s", "elevator MB/s", "gain"});
  for (int users : {1, 4, 8, 16, 24, 32}) {
    const double fcfs = Throughput(DiskQueueDiscipline::kFifo, users, duration);
    const double elevator = Throughput(DiskQueueDiscipline::kElevator, users, duration);
    char f[32], e[32], g[32];
    std::snprintf(f, sizeof(f), "%.2f", fcfs);
    std::snprintf(e, sizeof(e), "%.2f", elevator);
    std::snprintf(g, sizeof(g), "%+.1f%%", 100.0 * (elevator / fcfs - 1.0));
    table.AddRow({std::to_string(users), f, e, g});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper: at 24 concurrent readers the elevator improves throughput by only ~6%%\n");
  std::printf("(rotation + settle dominate; 256 KB transfers already amortize seeks), which\n");
  std::printf("is why the MSU ships with round-robin service and no head scheduling.\n");
  return 0;
}
