// Micro-benchmarks for the Integrated B-tree (§2.2.1), using
// google-benchmark: build throughput, sequential-scan cost with and without
// embedded internal pages, and seek cost. Also verifies the paper's claim
// that internal pages appear in ~0.1% of data pages.
#include <benchmark/benchmark.h>

#include "src/ibtree/ibtree.h"
#include "src/media/sources.h"

namespace calliope {
namespace {

PacketSequence MakeCbrPackets(SimTime duration) {
  return GenerateCbr(CbrSourceConfig{}, duration);
}

IbTreeFile BuildFile(const PacketSequence& packets) {
  IbTreeBuilder builder;
  for (const MediaPacket& packet : packets) {
    (void)builder.Add(packet);
  }
  return builder.Finish();
}

void BM_IbTreeBuild(benchmark::State& state) {
  const PacketSequence packets = MakeCbrPackets(SimTime::Seconds(state.range(0)));
  for (auto _ : state) {
    IbTreeFile file = BuildFile(packets);
    benchmark::DoNotOptimize(file.page_count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_IbTreeBuild)->Arg(60)->Arg(600);

void BM_IbTreeSequentialScan(benchmark::State& state) {
  const IbTreeFile file = BuildFile(MakeCbrPackets(SimTime::Seconds(600)));
  for (auto _ : state) {
    int64_t records = 0;
    Bytes payload;
    for (size_t p = 0; p < file.page_count(); ++p) {
      // Sequential reads take internal pages in as part of the data page but
      // ignore them — no decode on this path.
      records += static_cast<int64_t>(file.page(p).records.size());
      payload += file.page(p).payload_bytes();
    }
    benchmark::DoNotOptimize(records);
    benchmark::DoNotOptimize(payload.count());
  }
  state.SetItemsProcessed(state.iterations() * file.record_count());
}
BENCHMARK(BM_IbTreeSequentialScan);

void BM_IbTreeSeek(benchmark::State& state) {
  const IbTreeFile file = BuildFile(MakeCbrPackets(SimTime::Seconds(state.range(0))));
  const SimTime duration = file.duration();
  uint64_t x = 12345;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const SimTime target = SimTime(static_cast<int64_t>(x % static_cast<uint64_t>(
                                        duration.nanos() > 0 ? duration.nanos() : 1)));
    auto result = file.Seek(target);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetLabel("height=" + std::to_string(file.height()));
}
BENCHMARK(BM_IbTreeSeek)->Arg(60)->Arg(3600);

void BM_InternalPageEncodeDecode(benchmark::State& state) {
  std::vector<InternalEntry> entries;
  for (size_t i = 0; i < kMaxInternalEntries; ++i) {
    entries.push_back(InternalEntry{static_cast<int64_t>(i) * 1000000, static_cast<int64_t>(i)});
  }
  for (auto _ : state) {
    auto encoded = EncodeInternalPage(entries);
    auto decoded = DecodeInternalPage(encoded);
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_InternalPageEncodeDecode);

// Not a timing benchmark: checks the 0.1% embedded-internal-page claim on a
// two-hour-movie-sized file and reports it as a counter.
void BM_InternalPageFraction(benchmark::State& state) {
  const IbTreeFile file = BuildFile(MakeCbrPackets(SimTime::Seconds(7200)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(file.internal_page_fraction());
  }
  state.counters["pages"] = static_cast<double>(file.page_count());
  state.counters["internal_fraction_pct"] = file.internal_page_fraction() * 100.0;
  // Paper: internal pages "only appear in 0.1% of the data pages".
}
BENCHMARK(BM_InternalPageFraction)->Iterations(1);

}  // namespace
}  // namespace calliope

BENCHMARK_MAIN();
