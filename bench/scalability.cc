// Reproduces the §3.3 scalability measurement.
//
// Paper setup: "we have created a fake MSU which, when scheduled, delays for
// 50 ms and then reports that the user has terminated the stream. We start
// two of these MSUs on different machines and started two clients who
// together sent 10,000 requests to the coordinator at a rate of about 60
// requests per second. We measured the Coordinator's CPU utilization at 14%
// and the network utilization at 6%."
//
// "Even if sessions are as short as one minute, a large scale implementation
// of Calliope serving 3000 simultaneous streams (150 MSUs at 20 streams
// each) would need to service only 50 requests per second."
// Run with --policy=<least-loaded|first-fit|power-of-two|replica-aware> to
// measure the Coordinator's per-request cost under a different placement
// policy (the scheduling decision is part of the measured CPU work).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace calliope {
namespace {

// A fake MSU: accepts any stream instantly and reports termination 50 ms
// later. It registers with the Coordinator exactly like a real MSU.
class FakeMsu {
 public:
  FakeMsu(Simulator& sim, NetNode& node) : sim_(&sim), node_(&node) {}

  Co<Status> Register(std::string coordinator_node, int coordinator_port) {
    auto conn = co_await node_->ConnectTcp(std::move(coordinator_node), coordinator_port);
    if (!conn.ok()) {
      co_return conn.status();
    }
    conn_ = *conn;
    conn_->set_request_handler([this](const MessageBody& body) -> Co<MessageBody> {
      if (const auto* start = std::get_if<MsuStartStream>(&body)) {
        TerminateLater(start->stream, start->group, start->file, start->disk_hint);
        co_return MessageBody{MsuStartStreamResponse{true, ""}};
      }
      co_return MessageBody{SimpleResponse{true, ""}};
    });
    MsuRegisterRequest reg;
    reg.msu_node = node_->name();
    reg.disk_count = 3;
    reg.free_space = Bytes::GiB(6);
    auto ack = co_await conn_->Call(MessageBody{std::move(reg)});
    co_return ack.status();
  }

 private:
  Task TerminateLater(StreamId stream, GroupId group, std::string file, int disk) {
    co_await sim_->Delay(SimTime::Millis(50));
    StreamTerminated note;
    note.stream = stream;
    note.group = group;
    note.file = std::move(file);
    note.disk = disk < 0 ? 0 : disk;
    co_await conn_->Send(Envelope{0, false, MessageBody{std::move(note)}});
  }

  Simulator* sim_;
  NetNode* node_;
  TcpConn* conn_ = nullptr;
};

struct ClientState {
  int64_t sent = 0;
  int64_t completed = 0;
};

Task RequestDriver(CalliopeClient& client, std::string port_name, int64_t requests,
                   SimTime interval, int content_count, ClientState* state) {
  Rng rng(std::hash<std::string>{}(port_name));
  for (int64_t i = 0; i < requests; ++i) {
    const SimTime next = client.sim().Now() + interval;
    const std::string content =
        "item" + std::to_string(rng.NextBelow(static_cast<uint64_t>(content_count)));
    ++state->sent;
    auto play = co_await client.Play(content, port_name);
    if (play.ok()) {
      ++state->completed;
    }
    if (client.sim().Now() < next) {
      co_await client.sim().Delay(next - client.sim().Now());
    }
  }
}

}  // namespace
}  // namespace calliope

int main(int argc, char** argv) {
  using namespace calliope;
  std::string policy = "least-loaded";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      policy = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--policy=<name>]\n", argv[0]);
      return 2;
    }
  }
  PrintHeader("Coordinator scalability: fake-MSU request flood",
              "USENIX '96 Calliope paper, section 3.3");
  std::printf("Placement policy: %s\n", policy.c_str());

  const int64_t total_requests = FastBenchMode() ? 2000 : 10000;
  const int kContentCount = 40;

  InstallationConfig config;
  config.msu_count = 0;  // only fake MSUs
  config.coordinator.placement_policy = policy;
  Installation calliope(config);

  // Two fake MSUs on their own machines.
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<std::unique_ptr<FakeMsu>> fakes;
  for (int i = 0; i < 2; ++i) {
    MachineParams params = DisklessHost();
    const std::string name = "fakemsu" + std::to_string(i);
    machines.push_back(std::make_unique<Machine>(calliope.sim(), params, name));
    NetNode* node = calliope.network().AddNode(name, machines.back().get(), /*on_intra=*/true);
    fakes.push_back(std::make_unique<FakeMsu>(calliope.sim(), *node));
    [](FakeMsu* fake, std::string coord, int port) -> Task {
      co_await fake->Register(std::move(coord), port);
    }(fakes.back().get(), "coordinator", config.coordinator.listen_port);
  }
  RunSimUntil(calliope.sim(), [&] { return calliope.coordinator().msu_count() == 2; },
              SimTime::Seconds(5));

  // Catalog entries pointing at the fake MSUs.
  for (int i = 0; i < kContentCount; ++i) {
    ContentRecord record;
    record.name = "item" + std::to_string(i);
    record.type_name = "mpeg1";
    record.file_name = record.name + ".mpg";
    record.duration = SimTime::Seconds(60);
    record.locations.push_back(
        ContentLocation{"fakemsu" + std::to_string(i % 2), i % 3});
    (void)calliope.coordinator().catalog().AddContent(std::move(record));
  }

  // Two clients together sending 60 requests/second. Like the paper's lab
  // setup, the load clients sit on the internal Ethernet, so their request
  // traffic is part of the measured network load.
  std::vector<ClientState> states(2);
  std::vector<std::unique_ptr<CalliopeClient>> clients;
  for (int i = 0; i < 2; ++i) {
    const std::string name = "load" + std::to_string(i);
    machines.push_back(std::make_unique<Machine>(calliope.sim(), DisklessHost(), name));
    NetNode* node = calliope.network().AddNode(name, machines.back().get(), /*on_intra=*/true);
    clients.push_back(std::make_unique<CalliopeClient>(*node, "coordinator",
                                                       config.coordinator.listen_port));
    CalliopeClient& client = *clients.back();
    [](CalliopeClient* c, std::string port, int64_t n, int items, ClientState* state) -> Task {
      if (!(co_await c->Connect("bob", "bob-key")).ok()) {
        co_return;
      }
      if (!(co_await c->RegisterPort(port, "mpeg1")).ok()) {
        co_return;
      }
      RequestDriver(*c, port, n, SimTime::Micros(33333), items, state);
    }(&client, "p" + std::to_string(i), total_requests / 2, kContentCount, &states[i]);
  }
  RunSimUntil(calliope.sim(), [&] { return states[0].sent > 0 && states[1].sent > 0; },
              SimTime::Seconds(10));

  // Measure over the steady-state flood.
  Machine& coordinator_machine = calliope.coordinator_node().machine();
  coordinator_machine.cpu().ResetStats();
  const Bytes intra_before = calliope.network().segment_bytes(Segment::kIntra);
  const SimTime window_start = calliope.sim().Now();
  const int64_t handled_before = calliope.coordinator().requests_handled();

  RunSimUntil(calliope.sim(),
              [&] {
                return states[0].completed + states[1].completed >= total_requests - 2;
              },
              SimTime::Seconds(600));

  const SimTime window = calliope.sim().Now() - window_start;
  const double cpu_util = coordinator_machine.cpu().Utilization();
  const Bytes intra_bytes = calliope.network().segment_bytes(Segment::kIntra) - intra_before;
  const double net_util =
      static_cast<double>(intra_bytes.count()) * 8.0 / (10e6 * window.seconds());
  const double request_rate =
      static_cast<double>(states[0].completed + states[1].completed) / window.seconds();
  const double handled_rate =
      static_cast<double>(calliope.coordinator().requests_handled() - handled_before) /
      window.seconds();

  AsciiTable table({"metric", "measured", "paper"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f req/s", request_rate);
  table.AddRow({"client request rate", buf, "~60 req/s"});
  std::snprintf(buf, sizeof(buf), "%.0f msg/s", handled_rate);
  table.AddRow({"coordinator messages handled", buf, "(requests + terminations)"});
  std::snprintf(buf, sizeof(buf), "%.1f%%", cpu_util * 100.0);
  table.AddRow({"coordinator CPU utilization", buf, "14%"});
  std::snprintf(buf, sizeof(buf), "%.1f%%", net_util * 100.0);
  table.AddRow({"intra-server network utilization", buf, "6%"});
  std::printf("%s\n", table.Render().c_str());

  // The paper's extrapolation.
  std::printf("Extrapolation (paper): 150 MSUs x 20 streams = 3000 simultaneous streams;\n");
  std::printf("with 1-minute sessions that is 50 requests/second — i.e. about\n");
  std::printf("%.0f%% coordinator CPU at the measured per-request cost. The Coordinator\n",
              cpu_util * 100.0 * 50.0 / request_rate);
  std::printf("and intra-server network are nowhere near limiting at hundreds of MSUs.\n");
  return 0;
}
