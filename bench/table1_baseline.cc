// Reproduces Table 1: "Baseline Performance Measurements."
//
// The paper's simple test programs: a per-disk process doing 256 KB raw reads
// at random offsets, and a modified ttcp blasting 4 KB UDP packets out the
// FDDI interface ("Send from memory, not stdin", stepping through a 1 MB
// buffer). The table sweeps FDDI-only, disks-only, and combined runs over
// 1-3 disks on one or two SCSI host bus adaptors — exposing the motherboard
// bug that stalls port-mapped I/O when two HBAs are active simultaneously.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace calliope {
namespace {

constexpr Bytes kBlock = Bytes::KiB(256);
constexpr Bytes kTtcpPacket = Bytes::KiB(4);

Task RandomReader(Disk& disk, uint64_t seed) {
  Rng rng(seed);
  const int64_t blocks = disk.capacity() / kBlock;
  for (;;) {
    const Bytes offset =
        kBlock * static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(blocks)));
    co_await disk.Read(offset, kBlock);
  }
}

Task TtcpSender(Nic& nic) {
  for (;;) {
    co_await nic.SendBlocking(Frame{kTtcpPacket});
  }
}

// Runs one hardware configuration in the given mode.
enum class Mode { kFddiOnly, kDisksOnly, kCombined };

std::pair<double, std::vector<double>> RunOne(const std::vector<int>& disks_per_hba, Mode mode,
                                              SimTime duration) {
  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = disks_per_hba;
  Machine machine(sim, params, "bench");
  if (mode != Mode::kDisksOnly) {
    TtcpSender(machine.fddi());
  }
  if (mode != Mode::kFddiOnly) {
    for (size_t d = 0; d < machine.disk_count(); ++d) {
      RandomReader(machine.disk(d), 1000 + d);
    }
  }
  sim.RunFor(duration);
  const double seconds = duration.seconds();
  std::vector<double> disk_rates;
  for (size_t d = 0; d < machine.disk_count(); ++d) {
    disk_rates.push_back(machine.disk(d).bytes_transferred().megabytes() / seconds);
  }
  return {machine.fddi().bytes_sent().megabytes() / seconds, disk_rates};
}

}  // namespace
}  // namespace calliope

int main() {
  using namespace calliope;
  PrintHeader("Table 1: baseline performance measurements (MBytes/sec, 10^6 B/s)",
              "USENIX '96 Calliope paper, section 3.1");

  const SimTime duration = FastBenchMode() ? SimTime::Seconds(20) : SimTime::Seconds(60);

  struct Config {
    const char* label;
    std::vector<int> disks_per_hba;
  };
  const std::vector<Config> configs = {
      {"0 disk", {}},
      {"1 disk (one HBA)", {1}},
      {"2 disk (one HBA)", {2}},
      {"2 disk (two HBA)", {1, 1}},
      {"3 disk (two HBA)", {2, 1}},
  };

  AsciiTable table({"configuration", "FDDI only", "Disk 1", "Disk 2", "Disk 3", "FDDI(comb)",
                    "Disk 1(c)", "Disk 2(c)", "Disk 3(c)"});
  const double nan = std::nan("");
  for (const Config& config : configs) {
    std::vector<double> cells;
    // FDDI only.
    if (config.disks_per_hba.empty()) {
      cells.push_back(RunOne(config.disks_per_hba, Mode::kFddiOnly, duration).first);
    } else {
      cells.push_back(nan);
    }
    // Disks only.
    std::vector<double> disks_only(3, nan);
    if (!config.disks_per_hba.empty()) {
      auto [fddi, rates] = RunOne(config.disks_per_hba, Mode::kDisksOnly, duration);
      (void)fddi;
      for (size_t i = 0; i < rates.size() && i < 3; ++i) {
        disks_only[i] = rates[i];
      }
    }
    cells.insert(cells.end(), disks_only.begin(), disks_only.end());
    // Combined.
    std::vector<double> combined(4, nan);
    if (!config.disks_per_hba.empty()) {
      auto [fddi, rates] = RunOne(config.disks_per_hba, Mode::kCombined, duration);
      combined[0] = fddi;
      for (size_t i = 0; i < rates.size() && i < 3; ++i) {
        combined[i + 1] = rates[i];
      }
    }
    cells.insert(cells.end(), combined.begin(), combined.end());
    table.AddRow(config.label, cells, 1);
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("Paper's Table 1 for comparison:\n");
  std::printf("  0 disk:            FDDI only 8.5\n");
  std::printf("  1 disk (one HBA):  disks 3.6            | combined FDDI 5.9, disk 3.4\n");
  std::printf("  2 disk (one HBA):  disks 2.8, 2.8       | combined FDDI 4.7, disks 2.4, 2.4\n");
  std::printf("  2 disk (two HBA):  disks 2.9, 2.9       | combined FDDI 2.3, disks 2.7, 2.7\n");
  std::printf("  3 disk (two HBA):  disks 2.2, 2.2, 2.7  | combined FDDI 1.4, disks 1.9, 1.9, 2.5\n");
  std::printf("\nKey shape: the highest total (FDDI 4.7 + disks) is 2 disks on ONE HBA;\n");
  std::printf("adding a second HBA *collapses* FDDI throughput (port-I/O stall bug).\n");
  return 0;
}
