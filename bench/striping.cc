// Ablation for the §2.3.3 striping discussion.
//
// The paper's MSU does not stripe files; it argues both sides:
//   + striping lets "all of the system's customers access any of the items"
//     even when popularity is skewed — without it, a popular title's home
//     disk saturates at 1/D of the machine's customers;
//   - a striped duty cycle has N*D slots, so stream startup and every VCR
//     reposition wait up to D times longer ("In retrospect, we were probably
//     wrong" about that delay being unacceptable).
//
// This benchmark runs the same Zipf-skewed workload against a 4-disk MSU in
// both layouts and reports admitted streams, delivered bandwidth, and
// startup latency.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace calliope {
namespace {

struct LayoutResult {
  int requested = 0;
  int admitted = 0;
  double delivered_mbps = 0;
  double mean_startup_ms = 0;
  double max_startup_ms = 0;
};

LayoutResult RunLayout(bool striped, bool replicate_hot, int requests, SimTime duration) {
  InstallationConfig config;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {2, 2};  // 4 disks
  config.msu.striped_layout = striped;
  if (striped) {
    // Striped admission is machine-wide; the MSU's N*D-slot duty cycle is
    // the authority, so keep the Coordinator's per-disk model out of the way.
    config.coordinator.disk_budget = DataRate::MegabytesPerSec(100);
  }
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return LayoutResult{};
  }

  const int kTitles = 8;
  for (int i = 0; i < kTitles; ++i) {
    if (Status loaded = calliope.LoadMpegMovie("title" + std::to_string(i),
                                               duration + SimTime::Seconds(60), 0,
                                               /*with_fast_scan=*/false);
        !loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
      return LayoutResult{};
    }
  }

  if (replicate_hot) {
    // The paper's alternative mitigation: "we can make copies of popular
    // content on several disks" — put the head title on every disk.
    for (int d = 1; d < 4; ++d) {
      if (Status s = calliope.ReplicateContent("title0", 0, d); !s.ok()) {
        std::fprintf(stderr, "replicate: %s\n", s.ToString().c_str());
      }
    }
  }

  CalliopeClient& client = calliope.AddClient("viewer");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  // Zipf-skewed demand: the head title draws a large share of the audience.
  Rng rng(42);
  ZipfDistribution zipf(kTitles, 1.3);
  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int i = 0; i < requests; ++i) {
    handles.push_back(std::make_unique<PlaybackHandle>());
    const std::string title = "title" + std::to_string(zipf.Sample(rng));
    StartPlayback(client, title, "tv" + std::to_string(i), "mpeg1", handles.back().get());
  }
  RunSimUntil(calliope.sim(), [&] { return handles.back()->done; }, SimTime::Seconds(60));

  calliope.sim().RunFor(duration);

  LayoutResult result;
  result.requested = requests;
  double startup_sum = 0;
  int startup_count = 0;
  for (int i = 0; i < requests; ++i) {
    ClientDisplayPort* port = client.FindPort("tv" + std::to_string(i));
    if (port == nullptr || port->packets_received() == 0) {
      continue;
    }
    ++result.admitted;
    const double ms = (port->first_arrival() - handles[static_cast<size_t>(i)]->requested_at)
                          .millis_f();
    startup_sum += ms;
    ++startup_count;
    result.max_startup_ms = std::max(result.max_startup_ms, ms);
  }
  // Startup latency relative to the moment requests were fired (~t=boot).
  if (startup_count > 0) {
    result.mean_startup_ms = startup_sum / startup_count;
  }
  Bytes delivered;
  for (size_t d = 0; d < calliope.msu(0).machine().disk_count(); ++d) {
    delivered += calliope.msu(0).machine().disk(d).bytes_transferred();
  }
  result.delivered_mbps = delivered.megabytes() / calliope.sim().Now().seconds();
  return result;
}

}  // namespace
}  // namespace calliope

int main() {
  using namespace calliope;
  PrintHeader("Striped vs per-disk file layout under skewed popularity",
              "USENIX '96 Calliope paper, section 2.3.3 (design discussion)");

  const SimTime duration = FastBenchMode() ? SimTime::Seconds(20) : SimTime::Seconds(60);
  const int requests = 48;

  AsciiTable table({"layout", "requested", "admitted", "disk MB/s", "mean startup (ms)",
                    "max startup (ms)"});
  struct Row {
    const char* label;
    bool striped;
    bool replicate;
  };
  for (const Row& row : {Row{"per-disk files (paper's MSU)", false, false},
                         Row{"per-disk + hot title replicated", false, true},
                         Row{"striped (round-robin blocks)", true, false}}) {
    const LayoutResult result = RunLayout(row.striped, row.replicate, requests, duration);
    char mb[32], mean[32], mx[32];
    std::snprintf(mb, sizeof(mb), "%.2f", result.delivered_mbps);
    std::snprintf(mean, sizeof(mean), "%.0f", result.mean_startup_ms);
    std::snprintf(mx, sizeof(mx), "%.0f", result.max_startup_ms);
    table.AddRow({row.label, std::to_string(result.requested), std::to_string(result.admitted),
                  mb, mean, mx});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Expected shape: per-disk layout strands bandwidth when one title is hot\n");
  std::printf("(its home disk's duty cycle fills while others idle), so fewer of the 40\n");
  std::printf("requests are admitted; striping admits more streams at the cost of longer\n");
  std::printf("startup — the N*D-slot duty cycle the paper worried about.\n");
  return 0;
}
