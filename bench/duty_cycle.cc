// Duty-cycle admission capacity (§2.2.1): the number of slots per disk cycle
// as a function of block size and per-stream rate, plus the worst-case
// startup delay a client sees — including the striped-layout variant whose
// delay is D times longer (§2.3.3's trade-off).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/sched/duty_cycle.h"
#include "src/util/table.h"

int main() {
  using namespace calliope;
  PrintHeader("Disk duty-cycle slot capacity", "USENIX '96 Calliope paper, section 2.2.1");

  const MachineParams machine = MicronP66();
  std::printf("Worst-case slot time (256 KB block): %s  (full seek + rotation + transfer)\n\n",
              WorstCaseSlotTime(machine.disk, machine.hba, Bytes::KiB(256)).ToString().c_str());

  AsciiTable table({"block size", "stream rate", "slots/disk", "worst start delay",
                    "striped (4 disks) delay"});
  const std::vector<Bytes> blocks = {Bytes::KiB(64), Bytes::KiB(128), Bytes::KiB(256),
                                     Bytes::KiB(512)};
  const std::vector<DataRate> rates = {DataRate::MegabitsPerSec(1.5),
                                       DataRate::KilobitsPerSec(650),
                                       DataRate::MegabitsPerSec(4.0)};
  for (Bytes block : blocks) {
    for (DataRate rate : rates) {
      DutyCycleAllocator flat(machine.disk, machine.hba, block, 1, /*striped=*/false);
      DutyCycleAllocator striped(machine.disk, machine.hba, block, 4, /*striped=*/true);
      table.AddRow({block.ToString(), rate.ToString(),
                    std::to_string(flat.CapacityPerDisk(rate)),
                    flat.WorstCaseStartupDelay(rate).ToString(),
                    striped.WorstCaseStartupDelay(rate).ToString()});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper: \"the number of slots in a cycle is the maximum number of block\n");
  std::printf("transfers that can be accomplished during the time it takes for a single\n");
  std::printf("stream to transmit its block\"; a striped cycle has N*D slots, so VCR\n");
  std::printf("commands wait D times longer (section 2.3.3).\n");
  return 0;
}
