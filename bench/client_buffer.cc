// Client buffer-size sweep for the §2.2.1 jitter-budget analysis.
//
// "We assume that clients have enough buffer space to smooth any jitter
// introduced by either the approximate scheduling or the intervening
// network. A 200 KByte buffer will hold more than one second of 1.5 Mbit/sec
// video. Calliope will not add more than 150 milliseconds of jitter in the
// worst case and any network that introduces more than 850 milliseconds of
// jitter is probably not usable for video delivery."
//
// A loaded MSU (22 constant-rate streams, Graph 1's working point) delivers
// through a network with injected jitter; each viewer runs an explicit
// decoder-buffer simulation. The sweep shows where the glitch-free region
// begins.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/table.h"

namespace calliope {
namespace {

struct SweepResult {
  int64_t packets = 0;
  int64_t glitches = 0;
  int64_t overflows = 0;
  SimTime prebuffer;
};

SweepResult RunWithBuffer(Bytes buffer_size, SimTime network_jitter, SimTime duration) {
  InstallationConfig config;
  config.msu_machine.disks_per_hba = {2};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(2.5);
  config.network.udp_jitter_max = network_jitter;
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return SweepResult{};
  }
  const int kStreams = 22;  // Graph 1's maximum working load
  for (int i = 0; i < kStreams; ++i) {
    (void)calliope.LoadMpegMovie("m" + std::to_string(i), duration + SimTime::Seconds(60), 0,
                                 false, i % 2);
  }
  CalliopeClient& client = calliope.AddClient("viewer");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    *flag = (co_await c->Connect("bob", "bob-key")).ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int i = 0; i < kStreams; ++i) {
    handles.push_back(std::make_unique<PlaybackHandle>());
    StartPlayback(client, "m" + std::to_string(i), "tv" + std::to_string(i), "mpeg1",
                  handles.back().get());
  }
  RunSimUntil(calliope.sim(), [&] { return handles.back()->done; }, SimTime::Seconds(30));
  SweepResult result;
  for (int i = 0; i < kStreams; ++i) {
    ClientDisplayPort* port = client.FindPort("tv" + std::to_string(i));
    if (port != nullptr) {
      port->AttachPlayoutBuffer(buffer_size, DataRate::MegabitsPerSec(1.5));
      result.prebuffer = PlayoutBuffer::ForStream(buffer_size, DataRate::MegabitsPerSec(1.5))
                             .prebuffer();
    }
  }
  calliope.sim().RunFor(duration);
  for (int i = 0; i < kStreams; ++i) {
    const ClientDisplayPort* port = client.FindPort("tv" + std::to_string(i));
    if (port == nullptr || port->playout() == nullptr) {
      continue;
    }
    result.packets += port->playout()->packets();
    result.glitches += port->playout()->glitches();
    result.overflows += port->playout()->overflow_drops();
  }
  return result;
}

}  // namespace
}  // namespace calliope

int main() {
  using namespace calliope;
  PrintHeader("Client buffer sizing under server + network jitter",
              "USENIX '96 Calliope paper, section 2.2.1");

  const SimTime duration = FastBenchMode() ? SimTime::Seconds(20) : SimTime::Seconds(60);
  const SimTime jitter = SimTime::Millis(120);
  std::printf("Load: 22 x 1.5 Mbit/s streams (the Graph 1 working point, <=150 ms server\n");
  std::printf("jitter) through a delivery network adding U(0, %lld ms) of jitter.\n\n",
              static_cast<long long>(jitter.millis()));

  AsciiTable table({"client buffer", "prebuffer delay", "packets", "glitches", "overflow drops"});
  for (int64_t kib : {25, 50, 100, 200, 400}) {
    const SweepResult result = RunWithBuffer(Bytes::KiB(kib), jitter, duration);
    char packets[32], glitches[32], overflows[32];
    std::snprintf(packets, sizeof(packets), "%lld", static_cast<long long>(result.packets));
    std::snprintf(glitches, sizeof(glitches), "%lld", static_cast<long long>(result.glitches));
    std::snprintf(overflows, sizeof(overflows), "%lld",
                  static_cast<long long>(result.overflows));
    table.AddRow({Bytes::KiB(kib).ToString(), result.prebuffer.ToString(), packets, glitches,
                  overflows});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Expected shape: small buffers glitch (their prebuffer is inside the jitter\n");
  std::printf("band); the paper's 200 KB buffer (~1.1 s of 1.5 Mbit/s video) absorbs the\n");
  std::printf("server's <=150 ms plus this network comfortably, as claimed.\n");
  return 0;
}
