// Micro-benchmark for the MSU's lock-free shared-memory queue (§2.3):
// "Instead of using expensive semaphore operations, the MSU processes
// communicate using a shared memory queue structure that relies on the
// atomicity of memory read and write instructions."
//
// Compares the SPSC ring against a mutex+condvar queue, single-threaded
// (the ping-pong cost the MSU cares about) and across two real threads.
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "src/msu/spsc_queue.h"

namespace calliope {
namespace {

// The "expensive semaphore" strawman.
class MutexQueue {
 public:
  bool TryPush(int64_t value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.size() >= 1024) {
      return false;
    }
    items_.push_back(value);
    return true;
  }
  std::optional<int64_t> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    int64_t value = items_.front();
    items_.pop_front();
    return value;
  }

 private:
  std::mutex mutex_;
  std::deque<int64_t> items_;
};

template <typename Queue>
void PingPong(benchmark::State& state, Queue& queue) {
  for (auto _ : state) {
    queue.TryPush(1);
    auto out = queue.TryPop();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SpscSingleThread(benchmark::State& state) {
  SpscQueue<int64_t> queue(1024);
  PingPong(state, queue);
}
BENCHMARK(BM_SpscSingleThread);

void BM_MutexQueueSingleThread(benchmark::State& state) {
  MutexQueue queue;
  PingPong(state, queue);
}
BENCHMARK(BM_MutexQueueSingleThread);

void BM_SpscTwoThreads(benchmark::State& state) {
  constexpr int64_t kBatch = 1 << 16;
  for (auto _ : state) {
    SpscQueue<int64_t> queue(1024);
    std::thread producer([&queue] {
      for (int64_t i = 0; i < kBatch;) {
        if (queue.TryPush(i)) {
          ++i;
        }
      }
    });
    int64_t sum = 0;
    for (int64_t received = 0; received < kBatch;) {
      if (auto value = queue.TryPop()) {
        sum += *value;
        ++received;
      }
    }
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SpscTwoThreads);

void BM_MutexQueueTwoThreads(benchmark::State& state) {
  constexpr int64_t kBatch = 1 << 16;
  for (auto _ : state) {
    MutexQueue queue;
    std::thread producer([&queue] {
      for (int64_t i = 0; i < kBatch;) {
        if (queue.TryPush(i)) {
          ++i;
        }
      }
    });
    int64_t sum = 0;
    for (int64_t received = 0; received < kBatch;) {
      if (auto value = queue.TryPop()) {
        sum += *value;
        ++received;
      }
    }
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_MutexQueueTwoThreads);

}  // namespace
}  // namespace calliope

BENCHMARK_MAIN();
