// Reproduces the paper's §3.2.3 memory-bottleneck analysis.
//
// The data path of one byte from disk to network crosses memory four times:
//   1. write (disk DMA into a user buffer)      @ 25 MB/s
//   2. copy  (user buffer -> kernel mbuf)        @ 18 MB/s
//   3. read  (UDP checksum)                      @ 53 MB/s
//   4. read  (DMA to the FDDI interface)         @ 53 MB/s
// giving a theoretical 1/(1/25 + 1/18 + 2/53) = 7.5 MB/s. The paper measured
// 6.3 MB/s with a disk-less pipeline (a process writing buffers while ttcp
// sends them) and attributes the gap to instruction fetches.
#include <cstdio>

#include "bench/bench_util.h"

namespace calliope {
namespace {

constexpr Bytes kPacket = Bytes::KiB(4);

// Writer and sender are coupled through double buffering, like the MSU's
// disk and network processes: the writer fills buffers the sender drains.
Task WriterProcess(Machine& machine, Semaphore& full, Semaphore& empty,
                   int64_t* bytes_written) {
  for (;;) {
    co_await empty.Acquire();
    co_await machine.memory().Write(kPacket);
    *bytes_written += kPacket.count();
    full.Release();
  }
}

Task SenderProcess(Machine& machine, Semaphore& full, Semaphore& empty) {
  for (;;) {
    co_await full.Acquire();
    co_await machine.fddi().SendBlocking(Frame{kPacket});
    empty.Release();
  }
}

Task FreeSender(Machine& machine) {
  for (;;) {
    co_await machine.fddi().SendBlocking(Frame{kPacket});
  }
}

}  // namespace
}  // namespace calliope

int main() {
  using namespace calliope;
  PrintHeader("Memory data-path bottleneck analysis", "USENIX '96 Calliope paper, section 3.2.3");

  const MemoryBusParams memory = MicronP66().memory;
  const double w = memory.write_rate.megabytes_per_sec();
  const double c = memory.copy_rate.megabytes_per_sec();
  const double r = memory.read_rate.megabytes_per_sec();
  const double theoretical = 1.0 / (1.0 / w + 1.0 / c + 2.0 / r);
  std::printf("Memory bandwidths: read %.0f, write %.0f, copy %.0f MB/s\n", r, w, c);
  std::printf("Theoretical pipeline: 1/(1/%.0f + 1/%.0f + 2/%.0f) = %.1f MB/s  (paper: 7.5)\n\n",
              w, c, r, theoretical);

  // Disk-less measurement: writer + sender share the machine.
  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = {};
  Machine machine(sim, params, "bench");
  int64_t bytes_written = 0;
  Semaphore full(sim, 0);
  Semaphore empty(sim, 8);  // a handful of in-flight 4 KB buffers
  WriterProcess(machine, full, empty, &bytes_written);
  SenderProcess(machine, full, empty);
  const SimTime duration = FastBenchMode() ? SimTime::Seconds(10) : SimTime::Seconds(30);
  sim.RunFor(duration);

  const double sent = machine.fddi().bytes_sent().megabytes() / duration.seconds();
  const double written = static_cast<double>(bytes_written) * 1e-6 / duration.seconds();
  std::printf("Measured disk-less pipeline: sender %.1f MB/s while writer wrote %.1f MB/s\n",
              sent, written);
  std::printf("Paper measured: ~6.3 MB/s for both (difference vs 7.5 = instruction fetches,\n");
  std::printf("modeled here as the %.0f%% memory-bus efficiency factor).\n",
              memory.efficiency * 100.0);

  // Reference: the ttcp-only path (no writer) for the 8.5 MB/s baseline.
  Simulator sim2;
  Machine machine2(sim2, params, "bench2");
  FreeSender(machine2);
  sim2.RunFor(duration);
  std::printf("\nttcp-only send path: %.1f MB/s (paper Table 1: 8.5 MB/s)\n",
              machine2.fddi().bytes_sent().megabytes() / duration.seconds());
  return 0;
}
