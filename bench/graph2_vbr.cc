// Reproduces Graph 2: "Variable Bit Rate Cumulative Packet Delivery
// Distribution."
//
// Paper setup: three NV-encoded files with average rates of 650, 635 and 877
// Kbit/s (peaks 2.0-5.4 Mbit/s over a 50 ms sliding window, ~1 KB packets)
// played as 15, 16 and 17 simultaneous streams — each file played by a third
// of the streams, all started at the same instant, which aligns the bursts.
//
// Paper results: substantially worse than the constant-rate curves (packets
// are 1/4 the size, so per-byte processing overhead is ~4x, and bursts are
// impossible to pace exactly through 10 ms timers); 15 streams acceptable,
// 17 degraded. A single-file workload saturates at only 11 streams.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/media/sources.h"
#include "src/util/table.h"

namespace calliope {
namespace {

struct RunResult {
  int streams = 0;
  int started = 0;  // streams the system actually admitted
  int64_t packets = 0;
  double pct_within_50ms = 0;
  double pct_within_150ms = 0;
  SimTime max_late;
  LatenessHistogram histogram;
};

RunResult RunVariableRate(int stream_count, int file_count, SimTime duration) {
  InstallationConfig config;
  config.msu_count = 1;
  config.msu_machine.disks_per_hba = {2};
  config.coordinator.disk_budget = DataRate::MegabytesPerSec(2.6);
  Installation calliope(config);
  if (!calliope.Boot().ok()) {
    return RunResult();
  }

  // The three NV files (or one, for the single-file experiment).
  for (int f = 0; f < file_count; ++f) {
    const PacketSequence packets =
        GenerateVbr(Graph2File(f), duration + SimTime::Seconds(30));
    const Status loaded =
        calliope.LoadPackets("nv" + std::to_string(f), "rtp-video", packets, 0, f % 2);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
      return RunResult();
    }
  }

  CalliopeClient& client = calliope.AddClient("viewer");
  bool connected = false;
  [](CalliopeClient* c, bool* flag) -> Task {
    const Status status = co_await c->Connect("bob", "bob-key");
    *flag = status.ok();
  }(&client, &connected);
  RunSimUntil(calliope.sim(), [&] { return connected; }, SimTime::Seconds(5));

  // "All of the streams in the tests were started simultaneously": fire all
  // play requests in one burst.
  std::vector<std::unique_ptr<PlaybackHandle>> handles;
  for (int i = 0; i < stream_count; ++i) {
    handles.push_back(std::make_unique<PlaybackHandle>());
    StartPlayback(client, "nv" + std::to_string(i % file_count), "tv" + std::to_string(i),
                  "rtp-video", handles.back().get());
  }
  RunSimUntil(calliope.sim(), [&] { return handles.back()->done; }, SimTime::Seconds(30));
  for (const auto& handle : handles) {
    if (handle->failed) {
      std::fprintf(stderr, "a stream failed to start\n");
    }
  }

  int admitted = 0;
  for (const auto& handle : handles) {
    if (!handle->failed && !handle->queued) {
      ++admitted;
    }
  }

  // Emulate the paper's synchronized starts ("All of the streams in the
  // tests were started simultaneously" — which it notes is an artifact of
  // the automated test setup): pause every group, then resume them all in
  // one burst so their media clocks align.
  int acks = 0;
  for (const auto& handle : handles) {
    if (handle->queued || handle->failed) {
      continue;
    }
    [](CalliopeClient* c, GroupId group, VcrCommand::Op op, int* count) -> Task {
      co_await c->Vcr(group, op);
      ++*count;
    }(&client, handle->group, VcrCommand::Op::kPause, &acks);
  }
  RunSimUntil(calliope.sim(), [&] { return acks == admitted; }, SimTime::Seconds(30));
  calliope.sim().RunFor(SimTime::Seconds(2));
  // Rewind every stream to the first frame so identical files burst in step.
  acks = 0;
  for (const auto& handle : handles) {
    if (handle->queued || handle->failed) {
      continue;
    }
    [](CalliopeClient* c, GroupId group, int* count) -> Task {
      co_await c->Vcr(group, VcrCommand::Op::kSeek, SimTime());
      ++*count;
    }(&client, handle->group, &acks);
  }
  RunSimUntil(calliope.sim(), [&] { return acks == admitted; }, SimTime::Seconds(30));
  acks = 0;
  for (const auto& handle : handles) {
    if (handle->queued || handle->failed) {
      continue;
    }
    [](CalliopeClient* c, GroupId group, VcrCommand::Op op, int* count) -> Task {
      co_await c->Vcr(group, op);
      ++*count;
    }(&client, handle->group, VcrCommand::Op::kPlay, &acks);
  }
  RunSimUntil(calliope.sim(), [&] { return acks == admitted; }, SimTime::Seconds(30));

  calliope.sim().RunFor(SimTime::Seconds(3) + duration);

  RunResult result;
  result.streams = stream_count;
  result.started = admitted;
  result.histogram = calliope.msu(0).AggregateLateness();
  result.packets = result.histogram.total_count();
  result.pct_within_50ms = 100.0 * result.histogram.FractionWithin(SimTime::Millis(50));
  result.pct_within_150ms = 100.0 * result.histogram.FractionWithin(SimTime::Millis(150));
  result.max_late = result.histogram.MaxRecorded();
  return result;
}

void PrintRow(AsciiTable& table, const RunResult& result, const char* label) {
  char packets[32], p50[32], p150[32], maxl[32];
  std::snprintf(packets, sizeof(packets), "%lld", static_cast<long long>(result.packets));
  std::snprintf(p50, sizeof(p50), "%.1f", result.pct_within_50ms);
  std::snprintf(p150, sizeof(p150), "%.1f", result.pct_within_150ms);
  std::snprintf(maxl, sizeof(maxl), "%lld", static_cast<long long>(result.max_late.millis()));
  table.AddRow({label, std::to_string(result.started), packets, p50, p150, maxl});
}

}  // namespace
}  // namespace calliope

int main() {
  using namespace calliope;
  PrintHeader("Graph 2: cumulative packet delivery distribution, variable bit rate",
              "USENIX '96 Calliope paper, section 3.2.2");

  // Report the source calibration the paper quotes.
  for (int f = 0; f < 3; ++f) {
    const PacketSequence packets = GenerateVbr(Graph2File(f), SimTime::Seconds(60));
    std::printf("NV file %d: avg %.0f Kbit/s, 50ms-window peak %.1f Mbit/s, %zu packets/min\n",
                f, AverageRate(packets).megabits_per_sec() * 1000.0,
                PeakRate(packets, SimTime::Millis(50)).megabits_per_sec(), packets.size());
  }
  std::printf("(paper: averages 650/635/877 Kbit/s, peaks 2.0-5.4 Mbit/s)\n\n");

  const SimTime duration = FastBenchMode() ? SimTime::Seconds(30) : SimTime::Seconds(150);
  AsciiTable table(
      {"workload", "started", "packets", "% <= 50ms late", "% <= 150ms late", "max late (ms)"});
  std::vector<RunResult> results;
  for (int streams : {15, 16, 17}) {
    RunResult result = RunVariableRate(streams, 3, duration);
    results.push_back(result);
    PrintRow(table, result, (std::to_string(streams) + " streams / 3 files").c_str());
  }
  // "when tested while transmitting only a single file, the MSU could only
  // produce 11 streams instead of 15" — fully-aligned bursts.
  RunResult eleven = RunVariableRate(11, 1, duration);
  PrintRow(table, eleven, "11 streams / 1 file");
  RunResult fifteen_single = RunVariableRate(15, 1, duration);
  PrintRow(table, fifteen_single, "15 streams / 1 file");
  std::printf("%s\n", table.Render().c_str());

  for (const RunResult& result : results) {
    std::printf("%s\n",
                result.histogram
                    .ToAsciiCdf("CDF, " + std::to_string(result.streams) + " streams / 3 files", 14)
                    .c_str());
    MaybeWriteCdfCsv("graph2_" + std::to_string(result.streams) + "_streams", result.histogram);
  }
  std::printf("Paper: variable-rate delivery is substantially worse than constant-rate\n");
  std::printf("       at the same stream counts; 15 streams is the usable limit with\n");
  std::printf("       three files and 11 with one file (synchronized bursts).\n");
  return 0;
}
