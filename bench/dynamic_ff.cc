// Quantifies §2.3.1's rejection of *dynamic* fast-forward — extracting the
// fast stream from the normal-rate recording on the fly — versus the
// offline-filtered files Calliope actually uses.
//
// The paper gives two reasons:
//  1. "the MPEG encoders that we have produce an opaque stream with no
//     framing information. While recording, the MSU would have to search the
//     stream to find the intra-coded frames. Parsing the MPEG stream is too
//     expensive to do in real time."
//  2. "fast forward delivery has a larger impact on disk usage than normal
//     rate delivery" — either many small reads (I-frames only) or reading
//     the whole stream at several times the normal rate.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/media/mpeg_bitstream.h"
#include "src/sched/duty_cycle.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace calliope {
namespace {

double RandomReadThroughput(Bytes read_size, SimTime duration) {
  Simulator sim;
  MachineParams params = MicronP66();
  params.disks_per_hba = {1};
  Machine machine(sim, params, "bench");
  [](Disk* disk, Bytes size) -> Task {
    Rng rng(3);
    const int64_t slots = disk->capacity() / size;
    for (;;) {
      co_await disk->Read(size * static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(slots))),
                          size);
    }
  }(&machine.disk(0), read_size);
  sim.RunFor(duration);
  return machine.disk(0).bytes_transferred().megabytes() / duration.seconds();
}

}  // namespace
}  // namespace calliope

int main() {
  using namespace calliope;
  PrintHeader("Why dynamic fast-forward was rejected (design ablation)",
              "USENIX '96 Calliope paper, section 2.3.1");

  // ---- 1. Real-time parsing cost --------------------------------------
  const MpegStream stream = EncodeMpeg(MpegEncoderConfig{}, SimTime::Seconds(30), 99);
  const std::vector<std::byte> bitstream = SerializeMpegBitstream(stream);
  const auto host_start = std::chrono::steady_clock::now();
  auto parsed = ParseMpegBitstream(bitstream);
  const auto host_elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - host_start);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("Synthetic MPEG-1 bitstream: %.1f MB, %zu pictures, %zu GOPs",
              static_cast<double>(bitstream.size()) / 1e6, parsed->pictures.size(),
              parsed->gop_count);
  std::printf(" (host parse: %.1f ms)\n\n", host_elapsed.count() * 1000.0);

  const double scan_mbps = kPentiumHz / kParseCyclesPerByte / 1e6;
  const double stream_mbps = DataRate::MegabitsPerSec(1.5).megabytes_per_sec();
  const double per_stream_cpu = stream_mbps / scan_mbps;
  std::printf("66 MHz Pentium start-code scan: ~%.1f MB/s (%.0f cycles/byte)\n", scan_mbps,
              kParseCyclesPerByte);
  std::printf("  scanning ONE 1.5 Mbit/s recording: %5.1f%% CPU\n", per_stream_cpu * 100.0);
  std::printf("  scanning a full 22-stream load (4.1 MB/s): %5.1f%% CPU\n",
              4.125 / scan_mbps * 100.0);
  std::printf("  ...on a machine the data path already runs at ~95%% CPU (Graph 1):\n");
  std::printf("  even one scanned stream eats the MSU's entire headroom.\n\n");

  // ---- 2. Disk cost of the two dynamic schemes ------------------------
  const MachineParams machine = MicronP66();
  const double full_rate_mb = 15 * stream_mbps;
  const int slots_per_disk =
      SlotsPerCycle(machine.disk, machine.hba, Bytes::KiB(256), DataRate::MegabitsPerSec(1.5));
  const int ff_slots =
      SlotsPerCycle(machine.disk, machine.hba, Bytes::KiB(256), DataRate::MegabitsPerSec(22.5));

  const SimTime duration = FastBenchMode() ? SimTime::Seconds(20) : SimTime::Seconds(60);
  const double big_read = RandomReadThroughput(Bytes::KiB(256), duration);
  // I-frame-only reads: one GOP's intra frame is ~19 KB at 1.5 Mbit/s.
  const double small_read = RandomReadThroughput(Bytes::KiB(19), duration);

  AsciiTable table({"scheme", "disk demand", "cost"});
  table.AddRow({"offline filtered file (shipped)", "1 slot/cycle (256 KB sequential)",
                "admin runs the filter; extra copy on disk"});
  char buf1[96], buf2[96];
  std::snprintf(buf1, sizeof(buf1), "%.1f MB/s (= %d of %d slots)", full_rate_mb,
                slots_per_disk / (ff_slots > 0 ? ff_slots : 1), slots_per_disk);
  table.AddRow({"dynamic: read all frames at 15x", buf1, "one viewer ~ an entire disk"});
  std::snprintf(buf2, sizeof(buf2), "random 19 KB reads: %.2f MB/s (vs %.2f at 256 KB)",
                small_read, big_read);
  table.AddRow({"dynamic: read only I-frames", buf2, "seeks dominate: ~6x bandwidth penalty"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Paper's conclusion, reproduced: \"A more practical approach is to read all\n");
  std::printf("of the stream's frames from the disk and then skip over the unneeded\n");
  std::printf("frames once they are in memory. However, ... the MSU must read fast\n");
  std::printf("forward streams from disk at several times the normal stream rate\", and\n");
  std::printf("per-I-frame reads \"will significantly worsen disk performance\" — so the\n");
  std::printf("offline filter (bench: the .ff/.fb files every example uses) wins.\n");
  return 0;
}
