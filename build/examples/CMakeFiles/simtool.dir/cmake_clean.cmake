file(REMOVE_RECURSE
  "CMakeFiles/simtool.dir/simtool.cpp.o"
  "CMakeFiles/simtool.dir/simtool.cpp.o.d"
  "simtool"
  "simtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
