# Empty dependencies file for simtool.
# This may be replaced when dependencies are built.
