# Empty compiler generated dependencies file for seminar_recorder.
# This may be replaced when dependencies are built.
