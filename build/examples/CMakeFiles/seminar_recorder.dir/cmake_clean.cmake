file(REMOVE_RECURSE
  "CMakeFiles/seminar_recorder.dir/seminar_recorder.cpp.o"
  "CMakeFiles/seminar_recorder.dir/seminar_recorder.cpp.o.d"
  "seminar_recorder"
  "seminar_recorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seminar_recorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
