# Empty dependencies file for video_on_demand.
# This may be replaced when dependencies are built.
