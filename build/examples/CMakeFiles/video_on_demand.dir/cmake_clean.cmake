file(REMOVE_RECURSE
  "CMakeFiles/video_on_demand.dir/video_on_demand.cpp.o"
  "CMakeFiles/video_on_demand.dir/video_on_demand.cpp.o.d"
  "video_on_demand"
  "video_on_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_on_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
