# Empty dependencies file for admin_console.
# This may be replaced when dependencies are built.
