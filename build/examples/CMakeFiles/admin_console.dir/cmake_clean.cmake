file(REMOVE_RECURSE
  "CMakeFiles/admin_console.dir/admin_console.cpp.o"
  "CMakeFiles/admin_console.dir/admin_console.cpp.o.d"
  "admin_console"
  "admin_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
