# Empty compiler generated dependencies file for video_mail.
# This may be replaced when dependencies are built.
