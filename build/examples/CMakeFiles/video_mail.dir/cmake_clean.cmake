file(REMOVE_RECURSE
  "CMakeFiles/video_mail.dir/video_mail.cpp.o"
  "CMakeFiles/video_mail.dir/video_mail.cpp.o.d"
  "video_mail"
  "video_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
