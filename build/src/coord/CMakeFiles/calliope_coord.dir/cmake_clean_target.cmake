file(REMOVE_RECURSE
  "libcalliope_coord.a"
)
