file(REMOVE_RECURSE
  "CMakeFiles/calliope_coord.dir/catalog.cc.o"
  "CMakeFiles/calliope_coord.dir/catalog.cc.o.d"
  "CMakeFiles/calliope_coord.dir/coordinator.cc.o"
  "CMakeFiles/calliope_coord.dir/coordinator.cc.o.d"
  "libcalliope_coord.a"
  "libcalliope_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
