# Empty compiler generated dependencies file for calliope_coord.
# This may be replaced when dependencies are built.
