file(REMOVE_RECURSE
  "CMakeFiles/calliope_client.dir/client.cc.o"
  "CMakeFiles/calliope_client.dir/client.cc.o.d"
  "CMakeFiles/calliope_client.dir/playout_buffer.cc.o"
  "CMakeFiles/calliope_client.dir/playout_buffer.cc.o.d"
  "libcalliope_client.a"
  "libcalliope_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
