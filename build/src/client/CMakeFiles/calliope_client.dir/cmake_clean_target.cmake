file(REMOVE_RECURSE
  "libcalliope_client.a"
)
