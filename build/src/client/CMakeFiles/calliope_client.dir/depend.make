# Empty dependencies file for calliope_client.
# This may be replaced when dependencies are built.
