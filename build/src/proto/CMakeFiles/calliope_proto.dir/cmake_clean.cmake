file(REMOVE_RECURSE
  "CMakeFiles/calliope_proto.dir/protocol.cc.o"
  "CMakeFiles/calliope_proto.dir/protocol.cc.o.d"
  "libcalliope_proto.a"
  "libcalliope_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
