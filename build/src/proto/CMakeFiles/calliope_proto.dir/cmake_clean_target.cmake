file(REMOVE_RECURSE
  "libcalliope_proto.a"
)
