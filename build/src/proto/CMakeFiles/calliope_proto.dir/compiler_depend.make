# Empty compiler generated dependencies file for calliope_proto.
# This may be replaced when dependencies are built.
