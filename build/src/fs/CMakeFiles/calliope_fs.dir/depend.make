# Empty dependencies file for calliope_fs.
# This may be replaced when dependencies are built.
