file(REMOVE_RECURSE
  "CMakeFiles/calliope_fs.dir/msu_fs.cc.o"
  "CMakeFiles/calliope_fs.dir/msu_fs.cc.o.d"
  "CMakeFiles/calliope_fs.dir/volume.cc.o"
  "CMakeFiles/calliope_fs.dir/volume.cc.o.d"
  "libcalliope_fs.a"
  "libcalliope_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
