file(REMOVE_RECURSE
  "libcalliope_fs.a"
)
