file(REMOVE_RECURSE
  "CMakeFiles/calliope_sched.dir/duty_cycle.cc.o"
  "CMakeFiles/calliope_sched.dir/duty_cycle.cc.o.d"
  "libcalliope_sched.a"
  "libcalliope_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
