# Empty compiler generated dependencies file for calliope_sched.
# This may be replaced when dependencies are built.
