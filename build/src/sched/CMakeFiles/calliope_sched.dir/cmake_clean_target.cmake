file(REMOVE_RECURSE
  "libcalliope_sched.a"
)
