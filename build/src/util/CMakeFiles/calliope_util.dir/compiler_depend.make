# Empty compiler generated dependencies file for calliope_util.
# This may be replaced when dependencies are built.
