file(REMOVE_RECURSE
  "libcalliope_util.a"
)
