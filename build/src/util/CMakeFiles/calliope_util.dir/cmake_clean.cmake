file(REMOVE_RECURSE
  "CMakeFiles/calliope_util.dir/histogram.cc.o"
  "CMakeFiles/calliope_util.dir/histogram.cc.o.d"
  "CMakeFiles/calliope_util.dir/logging.cc.o"
  "CMakeFiles/calliope_util.dir/logging.cc.o.d"
  "CMakeFiles/calliope_util.dir/rng.cc.o"
  "CMakeFiles/calliope_util.dir/rng.cc.o.d"
  "CMakeFiles/calliope_util.dir/status.cc.o"
  "CMakeFiles/calliope_util.dir/status.cc.o.d"
  "CMakeFiles/calliope_util.dir/table.cc.o"
  "CMakeFiles/calliope_util.dir/table.cc.o.d"
  "CMakeFiles/calliope_util.dir/units.cc.o"
  "CMakeFiles/calliope_util.dir/units.cc.o.d"
  "libcalliope_util.a"
  "libcalliope_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
