file(REMOVE_RECURSE
  "CMakeFiles/calliope_msu.dir/msu.cc.o"
  "CMakeFiles/calliope_msu.dir/msu.cc.o.d"
  "CMakeFiles/calliope_msu.dir/stream.cc.o"
  "CMakeFiles/calliope_msu.dir/stream.cc.o.d"
  "libcalliope_msu.a"
  "libcalliope_msu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_msu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
