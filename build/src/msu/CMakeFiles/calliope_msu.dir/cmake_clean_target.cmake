file(REMOVE_RECURSE
  "libcalliope_msu.a"
)
