# Empty compiler generated dependencies file for calliope_msu.
# This may be replaced when dependencies are built.
