file(REMOVE_RECURSE
  "libcalliope_net.a"
)
