# Empty dependencies file for calliope_net.
# This may be replaced when dependencies are built.
