file(REMOVE_RECURSE
  "CMakeFiles/calliope_net.dir/message.cc.o"
  "CMakeFiles/calliope_net.dir/message.cc.o.d"
  "CMakeFiles/calliope_net.dir/network.cc.o"
  "CMakeFiles/calliope_net.dir/network.cc.o.d"
  "libcalliope_net.a"
  "libcalliope_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
