# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("hw")
subdirs("media")
subdirs("ibtree")
subdirs("fs")
subdirs("sched")
subdirs("net")
subdirs("proto")
subdirs("msu")
subdirs("coord")
subdirs("client")
subdirs("calliope")
