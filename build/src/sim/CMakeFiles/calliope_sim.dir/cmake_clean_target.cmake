file(REMOVE_RECURSE
  "libcalliope_sim.a"
)
