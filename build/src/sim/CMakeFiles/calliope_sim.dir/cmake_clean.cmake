file(REMOVE_RECURSE
  "CMakeFiles/calliope_sim.dir/resource.cc.o"
  "CMakeFiles/calliope_sim.dir/resource.cc.o.d"
  "CMakeFiles/calliope_sim.dir/simulator.cc.o"
  "CMakeFiles/calliope_sim.dir/simulator.cc.o.d"
  "libcalliope_sim.a"
  "libcalliope_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
