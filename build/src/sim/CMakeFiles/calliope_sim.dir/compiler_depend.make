# Empty compiler generated dependencies file for calliope_sim.
# This may be replaced when dependencies are built.
