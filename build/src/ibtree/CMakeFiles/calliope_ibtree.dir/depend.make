# Empty dependencies file for calliope_ibtree.
# This may be replaced when dependencies are built.
