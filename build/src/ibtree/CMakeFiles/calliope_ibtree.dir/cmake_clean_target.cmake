file(REMOVE_RECURSE
  "libcalliope_ibtree.a"
)
