file(REMOVE_RECURSE
  "CMakeFiles/calliope_ibtree.dir/ibtree.cc.o"
  "CMakeFiles/calliope_ibtree.dir/ibtree.cc.o.d"
  "libcalliope_ibtree.a"
  "libcalliope_ibtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_ibtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
