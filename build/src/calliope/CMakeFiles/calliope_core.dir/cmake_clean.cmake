file(REMOVE_RECURSE
  "CMakeFiles/calliope_core.dir/calliope.cc.o"
  "CMakeFiles/calliope_core.dir/calliope.cc.o.d"
  "libcalliope_core.a"
  "libcalliope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
