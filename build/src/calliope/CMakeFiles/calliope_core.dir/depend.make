# Empty dependencies file for calliope_core.
# This may be replaced when dependencies are built.
