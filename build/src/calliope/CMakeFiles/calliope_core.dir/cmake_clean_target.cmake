file(REMOVE_RECURSE
  "libcalliope_core.a"
)
