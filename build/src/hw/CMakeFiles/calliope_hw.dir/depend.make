# Empty dependencies file for calliope_hw.
# This may be replaced when dependencies are built.
