file(REMOVE_RECURSE
  "libcalliope_hw.a"
)
