
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cpu.cc" "src/hw/CMakeFiles/calliope_hw.dir/cpu.cc.o" "gcc" "src/hw/CMakeFiles/calliope_hw.dir/cpu.cc.o.d"
  "/root/repo/src/hw/disk.cc" "src/hw/CMakeFiles/calliope_hw.dir/disk.cc.o" "gcc" "src/hw/CMakeFiles/calliope_hw.dir/disk.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/calliope_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/calliope_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/memory_bus.cc" "src/hw/CMakeFiles/calliope_hw.dir/memory_bus.cc.o" "gcc" "src/hw/CMakeFiles/calliope_hw.dir/memory_bus.cc.o.d"
  "/root/repo/src/hw/nic.cc" "src/hw/CMakeFiles/calliope_hw.dir/nic.cc.o" "gcc" "src/hw/CMakeFiles/calliope_hw.dir/nic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/calliope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/calliope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
