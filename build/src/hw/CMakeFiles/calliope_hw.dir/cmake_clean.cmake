file(REMOVE_RECURSE
  "CMakeFiles/calliope_hw.dir/cpu.cc.o"
  "CMakeFiles/calliope_hw.dir/cpu.cc.o.d"
  "CMakeFiles/calliope_hw.dir/disk.cc.o"
  "CMakeFiles/calliope_hw.dir/disk.cc.o.d"
  "CMakeFiles/calliope_hw.dir/machine.cc.o"
  "CMakeFiles/calliope_hw.dir/machine.cc.o.d"
  "CMakeFiles/calliope_hw.dir/memory_bus.cc.o"
  "CMakeFiles/calliope_hw.dir/memory_bus.cc.o.d"
  "CMakeFiles/calliope_hw.dir/nic.cc.o"
  "CMakeFiles/calliope_hw.dir/nic.cc.o.d"
  "libcalliope_hw.a"
  "libcalliope_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
