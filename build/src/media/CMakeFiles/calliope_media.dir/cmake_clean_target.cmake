file(REMOVE_RECURSE
  "libcalliope_media.a"
)
