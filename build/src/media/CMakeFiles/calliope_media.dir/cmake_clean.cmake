file(REMOVE_RECURSE
  "CMakeFiles/calliope_media.dir/mpeg.cc.o"
  "CMakeFiles/calliope_media.dir/mpeg.cc.o.d"
  "CMakeFiles/calliope_media.dir/mpeg_bitstream.cc.o"
  "CMakeFiles/calliope_media.dir/mpeg_bitstream.cc.o.d"
  "CMakeFiles/calliope_media.dir/packet.cc.o"
  "CMakeFiles/calliope_media.dir/packet.cc.o.d"
  "CMakeFiles/calliope_media.dir/sources.cc.o"
  "CMakeFiles/calliope_media.dir/sources.cc.o.d"
  "libcalliope_media.a"
  "libcalliope_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calliope_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
