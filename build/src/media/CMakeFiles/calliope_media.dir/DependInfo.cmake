
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/mpeg.cc" "src/media/CMakeFiles/calliope_media.dir/mpeg.cc.o" "gcc" "src/media/CMakeFiles/calliope_media.dir/mpeg.cc.o.d"
  "/root/repo/src/media/mpeg_bitstream.cc" "src/media/CMakeFiles/calliope_media.dir/mpeg_bitstream.cc.o" "gcc" "src/media/CMakeFiles/calliope_media.dir/mpeg_bitstream.cc.o.d"
  "/root/repo/src/media/packet.cc" "src/media/CMakeFiles/calliope_media.dir/packet.cc.o" "gcc" "src/media/CMakeFiles/calliope_media.dir/packet.cc.o.d"
  "/root/repo/src/media/sources.cc" "src/media/CMakeFiles/calliope_media.dir/sources.cc.o" "gcc" "src/media/CMakeFiles/calliope_media.dir/sources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/calliope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
