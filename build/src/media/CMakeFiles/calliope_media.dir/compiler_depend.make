# Empty compiler generated dependencies file for calliope_media.
# This may be replaced when dependencies are built.
