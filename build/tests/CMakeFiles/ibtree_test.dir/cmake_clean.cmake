file(REMOVE_RECURSE
  "CMakeFiles/ibtree_test.dir/ibtree_test.cc.o"
  "CMakeFiles/ibtree_test.dir/ibtree_test.cc.o.d"
  "ibtree_test"
  "ibtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
