# Empty compiler generated dependencies file for ibtree_test.
# This may be replaced when dependencies are built.
