file(REMOVE_RECURSE
  "CMakeFiles/msu_test.dir/msu_test.cc.o"
  "CMakeFiles/msu_test.dir/msu_test.cc.o.d"
  "msu_test"
  "msu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
