# Empty dependencies file for msu_test.
# This may be replaced when dependencies are built.
