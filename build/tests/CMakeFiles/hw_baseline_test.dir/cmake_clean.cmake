file(REMOVE_RECURSE
  "CMakeFiles/hw_baseline_test.dir/hw_baseline_test.cc.o"
  "CMakeFiles/hw_baseline_test.dir/hw_baseline_test.cc.o.d"
  "hw_baseline_test"
  "hw_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
