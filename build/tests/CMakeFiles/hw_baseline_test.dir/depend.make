# Empty dependencies file for hw_baseline_test.
# This may be replaced when dependencies are built.
