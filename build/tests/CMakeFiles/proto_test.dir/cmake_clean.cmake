file(REMOVE_RECURSE
  "CMakeFiles/proto_test.dir/proto_test.cc.o"
  "CMakeFiles/proto_test.dir/proto_test.cc.o.d"
  "proto_test"
  "proto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
