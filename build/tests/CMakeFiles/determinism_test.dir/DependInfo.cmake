
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/determinism_test.cc" "tests/CMakeFiles/determinism_test.dir/determinism_test.cc.o" "gcc" "tests/CMakeFiles/determinism_test.dir/determinism_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calliope/CMakeFiles/calliope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/calliope_client.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/calliope_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/msu/CMakeFiles/calliope_msu.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/calliope_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/calliope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/calliope_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/calliope_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/ibtree/CMakeFiles/calliope_ibtree.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/calliope_media.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/calliope_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/calliope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/calliope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
