file(REMOVE_RECURSE
  "CMakeFiles/mpeg_bitstream_test.dir/mpeg_bitstream_test.cc.o"
  "CMakeFiles/mpeg_bitstream_test.dir/mpeg_bitstream_test.cc.o.d"
  "mpeg_bitstream_test"
  "mpeg_bitstream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg_bitstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
