# Empty compiler generated dependencies file for mpeg_bitstream_test.
# This may be replaced when dependencies are built.
