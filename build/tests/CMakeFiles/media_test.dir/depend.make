# Empty dependencies file for media_test.
# This may be replaced when dependencies are built.
