file(REMOVE_RECURSE
  "CMakeFiles/media_test.dir/media_test.cc.o"
  "CMakeFiles/media_test.dir/media_test.cc.o.d"
  "media_test"
  "media_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
