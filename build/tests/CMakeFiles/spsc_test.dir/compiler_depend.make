# Empty compiler generated dependencies file for spsc_test.
# This may be replaced when dependencies are built.
