file(REMOVE_RECURSE
  "CMakeFiles/spsc_test.dir/spsc_test.cc.o"
  "CMakeFiles/spsc_test.dir/spsc_test.cc.o.d"
  "spsc_test"
  "spsc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
