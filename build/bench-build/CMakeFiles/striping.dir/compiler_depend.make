# Empty compiler generated dependencies file for striping.
# This may be replaced when dependencies are built.
