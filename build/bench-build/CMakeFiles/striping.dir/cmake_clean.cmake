file(REMOVE_RECURSE
  "../bench/striping"
  "../bench/striping.pdb"
  "CMakeFiles/striping.dir/striping.cc.o"
  "CMakeFiles/striping.dir/striping.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
