file(REMOVE_RECURSE
  "../bench/ibtree_micro"
  "../bench/ibtree_micro.pdb"
  "CMakeFiles/ibtree_micro.dir/ibtree_micro.cc.o"
  "CMakeFiles/ibtree_micro.dir/ibtree_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibtree_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
