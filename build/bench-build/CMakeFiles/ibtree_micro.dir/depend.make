# Empty dependencies file for ibtree_micro.
# This may be replaced when dependencies are built.
