file(REMOVE_RECURSE
  "../bench/graph2_vbr"
  "../bench/graph2_vbr.pdb"
  "CMakeFiles/graph2_vbr.dir/graph2_vbr.cc.o"
  "CMakeFiles/graph2_vbr.dir/graph2_vbr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph2_vbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
