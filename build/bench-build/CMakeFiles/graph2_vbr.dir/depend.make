# Empty dependencies file for graph2_vbr.
# This may be replaced when dependencies are built.
