file(REMOVE_RECURSE
  "../bench/graph1_cbr"
  "../bench/graph1_cbr.pdb"
  "CMakeFiles/graph1_cbr.dir/graph1_cbr.cc.o"
  "CMakeFiles/graph1_cbr.dir/graph1_cbr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph1_cbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
