# Empty dependencies file for graph1_cbr.
# This may be replaced when dependencies are built.
