# Empty compiler generated dependencies file for duty_cycle.
# This may be replaced when dependencies are built.
