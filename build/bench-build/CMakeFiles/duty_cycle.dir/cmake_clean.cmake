file(REMOVE_RECURSE
  "../bench/duty_cycle"
  "../bench/duty_cycle.pdb"
  "CMakeFiles/duty_cycle.dir/duty_cycle.cc.o"
  "CMakeFiles/duty_cycle.dir/duty_cycle.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duty_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
