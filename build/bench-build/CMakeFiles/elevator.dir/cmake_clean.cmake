file(REMOVE_RECURSE
  "../bench/elevator"
  "../bench/elevator.pdb"
  "CMakeFiles/elevator.dir/elevator.cc.o"
  "CMakeFiles/elevator.dir/elevator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elevator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
