# Empty dependencies file for elevator.
# This may be replaced when dependencies are built.
