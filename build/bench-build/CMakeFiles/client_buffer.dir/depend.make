# Empty dependencies file for client_buffer.
# This may be replaced when dependencies are built.
