file(REMOVE_RECURSE
  "../bench/client_buffer"
  "../bench/client_buffer.pdb"
  "CMakeFiles/client_buffer.dir/client_buffer.cc.o"
  "CMakeFiles/client_buffer.dir/client_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
