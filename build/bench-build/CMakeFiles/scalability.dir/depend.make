# Empty dependencies file for scalability.
# This may be replaced when dependencies are built.
