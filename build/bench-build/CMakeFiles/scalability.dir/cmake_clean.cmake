file(REMOVE_RECURSE
  "../bench/scalability"
  "../bench/scalability.pdb"
  "CMakeFiles/scalability.dir/scalability.cc.o"
  "CMakeFiles/scalability.dir/scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
