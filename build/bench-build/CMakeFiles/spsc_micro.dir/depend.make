# Empty dependencies file for spsc_micro.
# This may be replaced when dependencies are built.
