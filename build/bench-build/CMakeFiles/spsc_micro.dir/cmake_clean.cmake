file(REMOVE_RECURSE
  "../bench/spsc_micro"
  "../bench/spsc_micro.pdb"
  "CMakeFiles/spsc_micro.dir/spsc_micro.cc.o"
  "CMakeFiles/spsc_micro.dir/spsc_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spsc_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
