file(REMOVE_RECURSE
  "../bench/memory_path"
  "../bench/memory_path.pdb"
  "CMakeFiles/memory_path.dir/memory_path.cc.o"
  "CMakeFiles/memory_path.dir/memory_path.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
