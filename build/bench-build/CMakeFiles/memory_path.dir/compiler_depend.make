# Empty compiler generated dependencies file for memory_path.
# This may be replaced when dependencies are built.
