file(REMOVE_RECURSE
  "../bench/scaleout"
  "../bench/scaleout.pdb"
  "CMakeFiles/scaleout.dir/scaleout.cc.o"
  "CMakeFiles/scaleout.dir/scaleout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
