# Empty dependencies file for dynamic_ff.
# This may be replaced when dependencies are built.
