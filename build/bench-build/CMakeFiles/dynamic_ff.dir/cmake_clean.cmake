file(REMOVE_RECURSE
  "../bench/dynamic_ff"
  "../bench/dynamic_ff.pdb"
  "CMakeFiles/dynamic_ff.dir/dynamic_ff.cc.o"
  "CMakeFiles/dynamic_ff.dir/dynamic_ff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_ff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
