# Empty compiler generated dependencies file for table1_baseline.
# This may be replaced when dependencies are built.
