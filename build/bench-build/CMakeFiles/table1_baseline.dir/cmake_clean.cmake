file(REMOVE_RECURSE
  "../bench/table1_baseline"
  "../bench/table1_baseline.pdb"
  "CMakeFiles/table1_baseline.dir/table1_baseline.cc.o"
  "CMakeFiles/table1_baseline.dir/table1_baseline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
