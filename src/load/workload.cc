#include "src/load/workload.h"

#include <cmath>
#include <utility>

#include "src/media/sources.h"
#include "src/util/logging.h"

namespace calliope {

namespace {

// Default schedule when the config leaves `phases` empty.
std::vector<WorkloadPhase> DefaultPhases() {
  return {WorkloadPhase(SimTime::Seconds(10), 1.0)};
}

}  // namespace

SimTime WorkloadHorizon(const WorkloadConfig& config) {
  const std::vector<WorkloadPhase> phases =
      config.phases.empty() ? DefaultPhases() : config.phases;
  SimTime total;
  for (const WorkloadPhase& phase : phases) {
    total += phase.duration;
  }
  return total;
}

std::vector<WorkloadPhase> DiurnalPhases(double trough_per_sec, double peak_per_sec,
                                         SimTime day, int days) {
  const SimTime quarter = SimTime::Micros(day.micros() / 4);
  const double shoulder = (trough_per_sec + peak_per_sec) / 2.0;
  std::vector<WorkloadPhase> phases;
  for (int d = 0; d < days; ++d) {
    phases.emplace_back(quarter, trough_per_sec);
    phases.emplace_back(quarter, shoulder);
    phases.emplace_back(quarter, peak_per_sec);
    phases.emplace_back(quarter, shoulder);
  }
  return phases;
}

std::vector<WorkloadPhase> FlashCrowdPhases(double base_per_sec, double spike_per_sec,
                                            SimTime before, SimTime burst, SimTime after) {
  return {WorkloadPhase(before, base_per_sec), WorkloadPhase(burst, spike_per_sec),
          WorkloadPhase(after, base_per_sec)};
}

const char* SessionKindName(SessionPlan::Kind kind) {
  switch (kind) {
    case SessionPlan::Kind::kViewer:
      return "viewer";
    case SessionPlan::Kind::kSurfer:
      return "surfer";
    case SessionPlan::Kind::kArchive:
      return "archive";
    case SessionPlan::Kind::kRecorder:
      return "recorder";
  }
  return "?";
}

AdmissionClass ClassForSession(SessionPlan::Kind kind) {
  switch (kind) {
    case SessionPlan::Kind::kSurfer:
      return AdmissionClass::kInteractive;
    case SessionPlan::Kind::kViewer:
      return AdmissionClass::kStandard;
    case SessionPlan::Kind::kArchive:
    case SessionPlan::Kind::kRecorder:
      return AdmissionClass::kBulk;
  }
  return AdmissionClass::kStandard;
}

std::vector<SessionPlan> BuildWorkloadSchedule(const WorkloadConfig& config) {
  Rng rng(config.seed ^ 0x10ADull);
  const ZipfDistribution zipf(static_cast<size_t>(std::max(config.titles, 1)),
                              config.zipf_skew);
  const std::vector<WorkloadPhase> phases =
      config.phases.empty() ? DefaultPhases() : config.phases;
  const WorkloadMix& mix = config.mix;
  const int total_weight =
      std::max(1, mix.viewer + mix.surfer + mix.archive + mix.recorder);

  std::vector<SessionPlan> schedule;
  SimTime phase_start;
  int ordinal = 0;
  for (const WorkloadPhase& phase : phases) {
    const SimTime phase_end = phase_start + phase.duration;
    if (phase.arrivals_per_sec <= 0.0) {
      phase_start = phase_end;
      continue;
    }
    SimTime t = phase_start;
    while (true) {
      const double gap_sec = rng.NextExponential(1.0 / phase.arrivals_per_sec);
      t += SimTime::Micros(static_cast<int64_t>(std::llround(gap_sec * 1e6)) + 1);
      if (t >= phase_end) {
        break;
      }
      SessionPlan plan;
      plan.start = t;
      plan.client_host = ordinal % std::max(config.client_hosts, 1);
      const int pick = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(total_weight)));
      SimTime hold_mean = config.viewer_hold_mean;
      if (pick < mix.viewer) {
        plan.kind = SessionPlan::Kind::kViewer;
      } else if (pick < mix.viewer + mix.surfer) {
        plan.kind = SessionPlan::Kind::kSurfer;
        hold_mean = config.surfer_hold_mean;
      } else if (pick < mix.viewer + mix.surfer + mix.archive) {
        plan.kind = SessionPlan::Kind::kArchive;
      } else {
        plan.kind = SessionPlan::Kind::kRecorder;
      }
      if (plan.kind == SessionPlan::Kind::kArchive) {
        plan.title = static_cast<int>(
            rng.NextBelow(static_cast<uint64_t>(std::max(config.archive_titles, 1))));
      } else {
        plan.title = static_cast<int>(zipf.Sample(rng));
      }
      const double hold_sec =
          rng.NextExponential(static_cast<double>(hold_mean.micros()) / 1e6);
      plan.hold = std::max(
          SimTime::Millis(500),
          SimTime::Micros(static_cast<int64_t>(std::llround(hold_sec * 1e6))));
      plan.ops_seed = rng.NextU64();
      schedule.push_back(plan);
      ++ordinal;
    }
    phase_start = phase_end;
  }
  return schedule;
}

WorkloadDriver::WorkloadDriver(Installation& installation, WorkloadConfig config)
    : installation_(&installation),
      config_(std::move(config)),
      schedule_(BuildWorkloadSchedule(config_)) {}

Status WorkloadDriver::Prepare() {
  if (prepared_) {
    return OkStatus();
  }
  const size_t msu_count = std::max<size_t>(installation_->msu_count(), 1);
  for (int i = 0; i < config_.titles; ++i) {
    CALLIOPE_RETURN_IF_ERROR(installation_->LoadMpegMovie(
        "wl-t" + std::to_string(i), config_.title_length,
        static_cast<size_t>(i) % msu_count, /*with_fast_scan=*/true));
  }
  for (int i = 0; i < config_.archive_titles; ++i) {
    CALLIOPE_RETURN_IF_ERROR(installation_->LoadMpegMovie(
        "wl-a" + std::to_string(i), config_.archive_length,
        static_cast<size_t>(config_.titles + i) % msu_count,
        /*with_fast_scan=*/false));
  }
  for (int host = 0; host < std::max(config_.client_hosts, 1); ++host) {
    clients_.push_back(&installation_->AddClient("wl-c" + std::to_string(host)));
  }
  recording_feed_ = GenerateCbr(CbrSourceConfig{}, config_.recording_length);
  prepared_ = true;
  return OkStatus();
}

void WorkloadDriver::Start() {
  MetricsRegistry& metrics = installation_->metrics();
  arrivals_metric_ = &metrics.counter("load.arrivals");
  started_metric_ = &metrics.counter("load.requests.started");
  queued_metric_ = &metrics.counter("load.requests.queued");
  rejected_metric_ = &metrics.counter("load.requests.rejected");
  failed_metric_ = &metrics.counter("load.requests.failed");
  finished_metric_ = &metrics.counter("load.sessions.finished");
  vcr_ops_metric_ = &metrics.counter("load.vcr.ops");
  recordings_metric_ = &metrics.counter("load.recordings");
  metrics.SetGaugeCallback("load.sessions.active", [this] { return active_sessions_; });
  ArrivalLoop();
}

Task WorkloadDriver::ArrivalLoop() {
  Simulator& sim = installation_->sim();
  // Connect every client host up front so concurrent first sessions on one
  // host never race each other's Connect.
  for (CalliopeClient* client : clients_) {
    if (!client->connected()) {
      (void)co_await client->Connect("bob", "bob-key");
    }
  }
  int ordinal = 0;
  for (const SessionPlan& plan : schedule_) {
    if (plan.start > sim.Now()) {
      co_await sim.Delay(plan.start - sim.Now());
    }
    RunSession(plan, ordinal++);
  }
  arrivals_done_ = true;
}

void WorkloadDriver::NoteRefused(AdmissionClass klass, bool was_queued) {
  const size_t idx = static_cast<size_t>(klass);
  if (idx < kAdmissionClassCount) {
    ++stats_.refused_by_class[idx];
  }
  if (was_queued) {
    ++stats_.failed;
    if (failed_metric_ != nullptr) {
      failed_metric_->Add();
    }
  } else {
    ++stats_.rejected;
    if (rejected_metric_ != nullptr) {
      rejected_metric_->Add();
    }
  }
}

Task WorkloadDriver::RunSession(SessionPlan plan, int ordinal) {
  ++stats_.arrivals;
  ++active_sessions_;
  if (arrivals_metric_ != nullptr) {
    arrivals_metric_->Add();
  }
  CalliopeClient* client = clients_.at(static_cast<size_t>(plan.client_host));
  bool ok = true;
  if (!client->connected()) {
    const Status connected = co_await client->Connect("bob", "bob-key");
    ok = connected.ok();
  }
  if (ok) {
    const std::string port_name = "wp" + std::to_string(ordinal);
    auto port = co_await client->RegisterPort(port_name, "mpeg1");
    if (port.ok()) {
      if (plan.kind == SessionPlan::Kind::kRecorder) {
        co_await RunRecorderSession(client, plan, port_name, ordinal);
      } else {
        co_await RunPlaySession(client, plan, port_name);
      }
    }
  }
  ++stats_.finished;
  ++finished_sessions_;
  --active_sessions_;
  if (finished_metric_ != nullptr) {
    finished_metric_->Add();
  }
}

Co<void> WorkloadDriver::RunPlaySession(CalliopeClient* client, const SessionPlan& plan,
                                        const std::string& port_name) {
  Simulator& sim = installation_->sim();
  const AdmissionClass klass = ClassForSession(plan.kind);
  const size_t idx = static_cast<size_t>(klass);
  const std::string title = (plan.kind == SessionPlan::Kind::kArchive ? "wl-a" : "wl-t") +
                            std::to_string(plan.title);
  ++stats_.submitted_by_class[idx];
  auto play = co_await client->Play(title, port_name, klass);
  if (!play.ok()) {
    NoteRefused(klass, /*was_queued=*/false);
    co_return;
  }
  if (play->queued) {
    ++stats_.queued;
    if (queued_metric_ != nullptr) {
      queued_metric_->Add();
    }
  }
  const Status ready = co_await client->WaitForGroupReady(play->group, config_.ready_timeout);
  if (!ready.ok()) {
    // The queue shed or expired the request (explicit PendingRequestFailed),
    // or the wait timed out; either way the viewer never saw a frame.
    NoteRefused(klass, play->queued);
    co_return;
  }
  ++stats_.started;
  ++stats_.started_by_class[idx];
  started_groups_[idx].push_back(play->group);
  if (started_metric_ != nullptr) {
    started_metric_->Add();
  }
  Rng ops(plan.ops_seed);
  if (plan.kind == SessionPlan::Kind::kSurfer && config_.surfer_ops_max > 0) {
    // Channel surfer: VCR ops spread across the hold, then quit.
    const int op_count =
        1 + static_cast<int>(ops.NextBelow(static_cast<uint64_t>(config_.surfer_ops_max)));
    const SimTime slice = SimTime::Micros(plan.hold.micros() / (op_count + 1));
    for (int i = 0; i < op_count; ++i) {
      co_await sim.Delay(slice);
      if (client->GroupTerminated(play->group)) {
        co_return;  // stream ended (or was failed) under us
      }
      VcrCommand::Op op = VcrCommand::Op::kPause;
      SimTime seek_to;
      switch (ops.NextBelow(4)) {
        case 0:
          op = VcrCommand::Op::kPause;
          break;
        case 1:
          op = VcrCommand::Op::kPlay;
          break;
        case 2:
          op = VcrCommand::Op::kSeek;
          seek_to = SimTime::Micros(static_cast<int64_t>(
              ops.NextBelow(static_cast<uint64_t>(config_.title_length.micros()))));
          break;
        default:
          op = VcrCommand::Op::kFastForward;
          break;
      }
      const Status vcr = co_await client->Vcr(play->group, op, seek_to);
      if (vcr.ok()) {
        ++stats_.vcr_ops;
        if (vcr_ops_metric_ != nullptr) {
          vcr_ops_metric_->Add();
        }
      }
    }
    co_await sim.Delay(slice);
  } else {
    co_await sim.Delay(plan.hold);
  }
  if (!client->GroupTerminated(play->group)) {
    (void)co_await client->Vcr(play->group, VcrCommand::Op::kQuit);
  }
}

Co<void> WorkloadDriver::RunRecorderSession(CalliopeClient* client, const SessionPlan& plan,
                                            const std::string& port_name, int ordinal) {
  const AdmissionClass klass = ClassForSession(plan.kind);
  const size_t idx = static_cast<size_t>(klass);
  ++stats_.submitted_by_class[idx];
  const std::string name = "wl-r" + std::to_string(ordinal);
  auto record = co_await client->Record(name, "mpeg1", port_name,
                                        config_.recording_length + SimTime::Seconds(2), klass);
  if (!record.ok()) {
    NoteRefused(klass, /*was_queued=*/false);
    co_return;
  }
  if (record->queued) {
    ++stats_.queued;
    if (queued_metric_ != nullptr) {
      queued_metric_->Add();
    }
  }
  const Status ready = co_await client->WaitForGroupReady(record->group, config_.ready_timeout);
  if (!ready.ok()) {
    NoteRefused(klass, record->queued);
    co_return;
  }
  ++stats_.started;
  ++stats_.started_by_class[idx];
  started_groups_[idx].push_back(record->group);
  if (started_metric_ != nullptr) {
    started_metric_->Add();
  }
  auto sent = co_await client->SendRecording(record->group, 0, recording_feed_);
  (void)sent;
  if (!client->GroupTerminated(record->group)) {
    (void)co_await client->Vcr(record->group, VcrCommand::Op::kQuit);
  }
  ++stats_.recordings;
  if (recordings_metric_ != nullptr) {
    recordings_metric_->Add();
  }
}

}  // namespace calliope
