// Deterministic workload generation (DESIGN §5.9).
//
// Two layers. BuildWorkloadSchedule is a pure function of WorkloadConfig: it
// expands a phased arrival-rate schedule (diurnal curves, flash crowds) into
// a concrete list of SessionPlans — which kind of session starts when, on
// which client host, against which Zipf-ranked title — using only the seeded
// Rng, so equal configs yield identical schedules, byte for byte.
// WorkloadDriver then executes a schedule against a live Installation from
// inside the simulation: every client call is a sim coroutine, so a run is a
// pure function of (seed, binary) and composes with the chaos harness, the
// ctest suites and bench/scaleout.
//
// Session kinds map onto the Coordinator's admission classes:
//   channel surfer  -> kInteractive  (VCR-heavy, short attention span)
//   movie viewer    -> kStandard     (watch, then quit)
//   archive pull    -> kBulk         (long-tail title, patient)
//   recorder        -> kBulk         (record-while-play ingest)
#ifndef CALLIOPE_SRC_LOAD_WORKLOAD_H_
#define CALLIOPE_SRC_LOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/calliope/calliope.h"
#include "src/net/message.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace calliope {

// One segment of the arrival-rate schedule: `arrivals_per_sec` Poisson
// arrivals for `duration`. Zero arrivals is valid (a quiet overnight phase).
struct WorkloadPhase {
  WorkloadPhase() = default;
  WorkloadPhase(SimTime duration_in, double arrivals_per_sec_in)
      : duration(duration_in), arrivals_per_sec(arrivals_per_sec_in) {}

  SimTime duration;
  double arrivals_per_sec = 0.0;
};

// Session-mix weights (relative, not percentages).
struct WorkloadMix {
  WorkloadMix() = default;

  int viewer = 6;
  int surfer = 2;
  int archive = 1;
  int recorder = 1;
};

struct WorkloadConfig {
  WorkloadConfig() = default;

  uint64_t seed = 1;

  // Popular catalog: `titles` MPEG movies with Zipf(zipf_skew) popularity,
  // spread round-robin over the MSUs; plus `archive_titles` long-tail items
  // pulled uniformly (archive sessions never touch the popular set).
  int titles = 4;
  int archive_titles = 2;
  double zipf_skew = 1.0;
  SimTime title_length = SimTime::Seconds(12);
  SimTime archive_length = SimTime::Seconds(8);

  // Client hosts; sessions round-robin over them so one host's NIC is never
  // the bottleneck being measured.
  int client_hosts = 3;

  // Arrival schedule; empty means one 10 s phase at 1/s.
  std::vector<WorkloadPhase> phases;
  WorkloadMix mix;

  // Mean session hold times (exponential); a viewer quits after its hold, a
  // surfer spreads its VCR ops across the hold then quits.
  SimTime viewer_hold_mean = SimTime::Seconds(6);
  SimTime surfer_hold_mean = SimTime::Seconds(3);
  int surfer_ops_max = 4;

  // Recorder sessions ingest a CBR feed of this length (record-while-play:
  // the feed is sent in real time while viewers stream from the same MSUs).
  SimTime recording_length = SimTime::Seconds(3);

  // How long a session waits for a queued request before giving up.
  SimTime ready_timeout = SimTime::Seconds(60);
};

// Sum of phase durations (with the default phase applied when empty).
SimTime WorkloadHorizon(const WorkloadConfig& config);

// Canned arrival schedules.
// Diurnal: trough -> shoulder -> peak -> shoulder, one cycle per `day`.
std::vector<WorkloadPhase> DiurnalPhases(double trough_per_sec, double peak_per_sec,
                                         SimTime day, int days = 1);
// Flash crowd: `base` rate, a `burst` spike at `spike` rate, then `base`.
std::vector<WorkloadPhase> FlashCrowdPhases(double base_per_sec, double spike_per_sec,
                                            SimTime before, SimTime burst, SimTime after);

struct SessionPlan {
  SessionPlan() = default;

  enum class Kind { kViewer, kSurfer, kArchive, kRecorder };
  Kind kind = Kind::kViewer;
  SimTime start;
  int title = 0;        // index into the popular (or archive) catalog
  int client_host = 0;  // which client host issues the session
  SimTime hold;         // watch time before quitting (viewer/surfer)
  uint64_t ops_seed = 0;  // per-session Rng stream for VCR op choices
};

const char* SessionKindName(SessionPlan::Kind kind);
AdmissionClass ClassForSession(SessionPlan::Kind kind);

// Pure: equal configs (including seed) yield equal schedules.
std::vector<SessionPlan> BuildWorkloadSchedule(const WorkloadConfig& config);

// Client-observed outcome tallies, per admission class and overall.
struct WorkloadStats {
  WorkloadStats() = default;

  int64_t arrivals = 0;        // sessions launched
  int64_t started = 0;         // requests that reached a served stream
  int64_t queued = 0;          // requests the Coordinator queued first
  int64_t rejected = 0;        // refused at submit (queue full / placement)
  int64_t failed = 0;          // queued then explicitly failed (shed/expired)
  int64_t finished = 0;        // sessions fully retired
  int64_t vcr_ops = 0;
  int64_t recordings = 0;
  int64_t submitted_by_class[kAdmissionClassCount] = {};
  int64_t started_by_class[kAdmissionClassCount] = {};
  int64_t refused_by_class[kAdmissionClassCount] = {};  // rejected + failed
};

// Executes a schedule against an Installation. Construct, Prepare() (loads
// the catalog, adds client hosts — synchronous), Start() (spawns the in-sim
// arrival task), then pump the simulation until done().
class WorkloadDriver {
 public:
  WorkloadDriver(Installation& installation, WorkloadConfig config);

  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  // Loads `wl-t<i>` popular and `wl-a<i>` archive titles round-robin over
  // the MSUs and creates the client hosts. Call once, after Boot.
  Status Prepare();

  // Registers the load.* instruments and schedules every session. The
  // simulation must then run (RunFor / RunUntil) for sessions to execute.
  void Start();

  // All arrivals fired and every session retired.
  bool done() const {
    return arrivals_done_ && finished_sessions_ == static_cast<int64_t>(schedule_.size());
  }

  const std::vector<SessionPlan>& schedule() const { return schedule_; }
  const WorkloadStats& stats() const { return stats_; }
  CalliopeClient* client(int host) { return clients_.at(static_cast<size_t>(host)); }
  // Groups that reached a served stream, per admission class (for per-class
  // QoS assertions against the ClusterReport's stream rows).
  const std::vector<GroupId>& started_groups(AdmissionClass klass) const {
    return started_groups_[static_cast<size_t>(klass)];
  }

 private:
  Task ArrivalLoop();
  Task RunSession(SessionPlan plan, int ordinal);
  Co<void> RunPlaySession(CalliopeClient* client, const SessionPlan& plan,
                          const std::string& port_name);
  Co<void> RunRecorderSession(CalliopeClient* client, const SessionPlan& plan,
                              const std::string& port_name, int ordinal);
  void NoteRefused(AdmissionClass klass, bool was_queued);

  Installation* installation_;
  WorkloadConfig config_;
  std::vector<SessionPlan> schedule_;
  std::vector<CalliopeClient*> clients_;
  PacketSequence recording_feed_;
  WorkloadStats stats_;
  std::vector<GroupId> started_groups_[kAdmissionClassCount];
  int64_t active_sessions_ = 0;
  int64_t finished_sessions_ = 0;
  bool arrivals_done_ = false;
  bool prepared_ = false;

  Counter* arrivals_metric_ = nullptr;
  Counter* started_metric_ = nullptr;
  Counter* queued_metric_ = nullptr;
  Counter* rejected_metric_ = nullptr;
  Counter* failed_metric_ = nullptr;
  Counter* finished_metric_ = nullptr;
  Counter* vcr_ops_metric_ = nullptr;
  Counter* recordings_metric_ = nullptr;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_LOAD_WORKLOAD_H_
