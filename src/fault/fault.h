// Deterministic fault injection for Calliope installations.
//
// A FaultPlan is a declarative schedule of fault events on the simulator
// clock: disk errors and latency spikes on a given MSU/disk, link delays and
// partitions between node pairs, MSU crash+restart, and Coordinator restart
// (catalog survives, ledger rebuilt from MSU re-registrations). The
// FaultInjector arms a plan against the cheap check-site hooks in src/hw/disk
// (Disk::FaultHook) and src/net/network (Network::LinkFaultHook) and
// schedules the crash/restart events. Everything stochastic flows from one
// seed, so a run is bit-reproducible.
//
// Partition semantics: UDP datagrams inside a partition window are lost; TCP
// segments are *held* until the window closes (this simulator has no TCP
// retransmission, so dropping a segment would wedge the receiver's reorder
// buffer forever). Per-pair FIFO ordering is preserved across window edges so
// delayed traffic never overtakes or is overtaken.
#ifndef CALLIOPE_SRC_FAULT_FAULT_H_
#define CALLIOPE_SRC_FAULT_FAULT_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/coord/coordinator.h"
#include "src/hw/disk.h"
#include "src/msu/msu.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace calliope {

enum class FaultClass {
  kDiskError,           // probabilistic I/O errors on an MSU's disk(s)
  kDiskSlow,            // fixed extra positioning latency per request
  kLinkDelay,           // extra one-way delay between a node pair
  kPartition,           // node pair unreachable (UDP lost, TCP held)
  kMsuCrash,            // Msu::Crash at `at`, Restart after `duration`
  kCoordinatorRestart,  // Coordinator::Crash at `at`, Restart after `duration`
  // Warm-standby HA: kill whichever coordinator is the current PRIMARY at
  // `at` (the standby takes over via the lease protocol), restart the dead
  // one after `duration` — it rejoins as the new standby.
  kCoordinatorCrash,
};

const char* FaultClassName(FaultClass what);

struct FaultEvent {
  FaultEvent() = default;

  FaultClass what = FaultClass::kDiskError;
  SimTime at;        // window start, or the crash instant
  SimTime duration;  // window length, or the outage before restart
  std::string node;  // targeted MSU node; unused for kCoordinatorRestart
  // kDiskError / kDiskSlow:
  int disk = -1;  // -1 targets every disk on the node
  double probability = 1.0;  // per-access failure probability (kDiskError)
  SimTime delay;             // per-access (kDiskSlow) / per-datagram (kLinkDelay)
  bool reads = true;
  bool writes = true;
  // kLinkDelay / kPartition: the other endpoint; empty matches any peer.
  std::string peer;

  SimTime end() const { return at + duration; }
  std::string ToString() const;
};

struct FaultPlanOptions {
  FaultPlanOptions() = default;

  // Extra random events on top of the one-per-class guarantee.
  int extra_events = 2;
  // All windows start and end inside [earliest, horizon].
  SimTime earliest = SimTime::Seconds(1);
  SimTime horizon = SimTime::Seconds(30);
  std::vector<std::string> msu_nodes;    // crash / disk fault targets
  std::vector<std::string> other_nodes;  // extra link endpoints (clients, coordinator)
  bool include_msu_crash = true;
  bool include_coordinator_restart = true;
  // kCoordinatorCrash events need a standby attached; default off so plans
  // for single-coordinator installations are unchanged.
  bool include_coordinator_crash = false;
};

struct FaultPlan {
  FaultPlan() = default;

  std::vector<FaultEvent> events;

  // Deterministic random plan: at least one event of every enabled fault
  // class, with randomized timing, targets and magnitudes, plus
  // `options.extra_events` more. Same seed + options => same plan.
  static FaultPlan Random(uint64_t seed, const FaultPlanOptions& options);

  bool HasClass(FaultClass what) const;
  std::string ToString() const;
};

// Arms a FaultPlan against live subsystems. Attach targets first, then Arm()
// exactly once. The injector must outlive the simulation run.
class FaultInjector {
 public:
  FaultInjector(Simulator& sim, Network& network, uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Hooks every disk of the MSU's machine and makes the MSU a valid
  // crash/restart target.
  void AttachMsu(const std::string& node, Msu* msu);
  void AttachCoordinator(Coordinator* coordinator, std::string coordinator_node);
  // Warm-standby HA pair member; required for kCoordinatorCrash events.
  void AttachStandbyCoordinator(Coordinator* coordinator, std::string node);

  // One line per fault firing (crashes, restarts); window events are traced
  // when they first bite. Useful as part of a determinism fingerprint.
  void set_trace(std::function<void(const std::string&)> sink) { trace_ = std::move(sink); }

  // Publishes effect counters into `metrics` and arm/fire events (plus the
  // planned fault windows as spans) into `recorder`. Either may be null.
  // Call before Arm() so the window spans are emitted.
  void AttachObservability(MetricsRegistry* metrics, TraceRecorder* recorder);

  Status Arm(FaultPlan plan);
  const FaultPlan& plan() const { return plan_; }
  bool armed() const { return armed_; }

  // Effect counters for assertions and fingerprints.
  int64_t disk_errors() const { return disk_errors_; }
  int64_t disk_slowdowns() const { return disk_slowdowns_; }
  int64_t datagrams_dropped() const { return datagrams_dropped_; }
  int64_t datagrams_delayed() const { return datagrams_delayed_; }
  int64_t msu_crashes() const { return msu_crashes_; }
  int64_t coordinator_restarts() const { return coordinator_restarts_; }
  int64_t coordinator_crashes() const { return coordinator_crashes_; }

 private:
  DiskFault OnDiskAccess(const std::string& node, int disk, Disk::Op op);
  LinkFault OnDatagram(const Datagram& datagram);
  bool MatchesPair(const FaultEvent& event, const std::string& src,
                   const std::string& dst) const;
  void Trace(const std::string& line);
  Task RestartMsuLater(Msu* msu, SimTime delay);

  Simulator* sim_;
  Network* network_;
  Rng rng_;
  FaultPlan plan_;
  bool armed_ = false;
  std::map<std::string, Msu*> msus_;
  Coordinator* coordinator_ = nullptr;
  std::string coordinator_node_;
  Coordinator* standby_coordinator_ = nullptr;
  std::string standby_node_;
  std::function<void(const std::string&)> trace_;
  MetricsRegistry* metrics_ = nullptr;
  TraceRecorder* recorder_ = nullptr;
  // FIFO clamp per (src,dst): the sim time at which the last datagram on the
  // pair was released onto the wire; later sends never release earlier.
  std::map<std::pair<std::string, std::string>, SimTime> last_release_;

  int64_t disk_errors_ = 0;
  int64_t disk_slowdowns_ = 0;
  int64_t datagrams_dropped_ = 0;
  int64_t datagrams_delayed_ = 0;
  int64_t msu_crashes_ = 0;
  int64_t coordinator_restarts_ = 0;
  int64_t coordinator_crashes_ = 0;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_FAULT_FAULT_H_
