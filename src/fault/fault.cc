#include "src/fault/fault.h"

#include <algorithm>

namespace calliope {

const char* FaultClassName(FaultClass what) {
  switch (what) {
    case FaultClass::kDiskError:
      return "disk-error";
    case FaultClass::kDiskSlow:
      return "disk-slow";
    case FaultClass::kLinkDelay:
      return "link-delay";
    case FaultClass::kPartition:
      return "partition";
    case FaultClass::kMsuCrash:
      return "msu-crash";
    case FaultClass::kCoordinatorRestart:
      return "coordinator-restart";
    case FaultClass::kCoordinatorCrash:
      return "coordinator-crash";
  }
  return "unknown";
}

std::string FaultEvent::ToString() const {
  std::string out = std::string(FaultClassName(what)) + " [" + at.ToString() + "," +
                    end().ToString() + ")";
  if (!node.empty()) {
    out += " node=" + node;
  }
  switch (what) {
    case FaultClass::kDiskError:
      out += " disk=" + std::to_string(disk) + " p=" + std::to_string(probability) +
             (reads ? " r" : "") + (writes ? " w" : "");
      break;
    case FaultClass::kDiskSlow:
      out += " disk=" + std::to_string(disk) + " +" + delay.ToString() +
             (reads ? " r" : "") + (writes ? " w" : "");
      break;
    case FaultClass::kLinkDelay:
      out += " peer=" + (peer.empty() ? std::string("*") : peer) + " +" + delay.ToString();
      break;
    case FaultClass::kPartition:
      out += " peer=" + (peer.empty() ? std::string("*") : peer);
      break;
    case FaultClass::kMsuCrash:
    case FaultClass::kCoordinatorRestart:
    case FaultClass::kCoordinatorCrash:
      break;
  }
  return out;
}

namespace {

SimTime RandSpan(Rng& rng, SimTime lo, SimTime hi) {
  return SimTime(rng.NextInRange(lo.nanos(), hi.nanos()));
}

// Window start such that [at, at+duration) fits inside [earliest, horizon).
SimTime RandStart(Rng& rng, const FaultPlanOptions& options, SimTime duration) {
  SimTime latest = options.horizon - duration;
  if (latest < options.earliest) {
    latest = options.earliest;
  }
  return RandSpan(rng, options.earliest, latest);
}

std::string Pick(Rng& rng, const std::vector<std::string>& from) {
  if (from.empty()) {
    return "";
  }
  return from[static_cast<size_t>(rng.NextBelow(from.size()))];
}

FaultEvent MakeEvent(Rng& rng, FaultClass what, const FaultPlanOptions& options) {
  FaultEvent event;
  event.what = what;
  switch (what) {
    case FaultClass::kDiskError: {
      event.node = Pick(rng, options.msu_nodes);
      event.disk = rng.NextBernoulli(0.5) ? -1 : static_cast<int>(rng.NextBelow(2));
      event.probability = 0.2 + 0.6 * rng.NextDouble();
      const int64_t mode = rng.NextInRange(0, 2);
      event.reads = mode != 1;
      event.writes = mode != 2;
      event.duration = RandSpan(rng, SimTime::Seconds(1), SimTime::Seconds(5));
      event.at = RandStart(rng, options, event.duration);
      break;
    }
    case FaultClass::kDiskSlow: {
      event.node = Pick(rng, options.msu_nodes);
      event.disk = rng.NextBernoulli(0.5) ? -1 : static_cast<int>(rng.NextBelow(2));
      event.delay = RandSpan(rng, SimTime::Millis(5), SimTime::Millis(40));
      event.duration = RandSpan(rng, SimTime::Seconds(2), SimTime::Seconds(6));
      event.at = RandStart(rng, options, event.duration);
      break;
    }
    case FaultClass::kLinkDelay: {
      event.node = Pick(rng, options.msu_nodes);
      event.peer = rng.NextBernoulli(0.3) ? "" : Pick(rng, options.other_nodes);
      event.delay = RandSpan(rng, SimTime::Millis(10), SimTime::Millis(80));
      event.duration = RandSpan(rng, SimTime::Seconds(1), SimTime::Seconds(4));
      event.at = RandStart(rng, options, event.duration);
      break;
    }
    case FaultClass::kPartition: {
      event.node = Pick(rng, options.msu_nodes);
      // A concrete peer keeps a partition surgical; "*" would isolate the
      // node from everything, including the Coordinator.
      event.peer = Pick(rng, options.other_nodes);
      event.duration = RandSpan(rng, SimTime::Seconds(1), SimTime::Seconds(3));
      event.at = RandStart(rng, options, event.duration);
      break;
    }
    case FaultClass::kMsuCrash: {
      event.node = Pick(rng, options.msu_nodes);
      event.duration = RandSpan(rng, SimTime::Seconds(2), SimTime::Seconds(5));
      event.at = RandStart(rng, options, event.duration);
      break;
    }
    case FaultClass::kCoordinatorRestart:
    case FaultClass::kCoordinatorCrash: {
      event.duration = RandSpan(rng, SimTime::Seconds(1), SimTime::Seconds(3));
      event.at = RandStart(rng, options, event.duration);
      break;
    }
  }
  return event;
}

}  // namespace

FaultPlan FaultPlan::Random(uint64_t seed, const FaultPlanOptions& options) {
  Rng rng(seed);
  FaultPlan plan;
  std::vector<FaultClass> classes = {FaultClass::kDiskError, FaultClass::kDiskSlow,
                                     FaultClass::kLinkDelay, FaultClass::kPartition};
  if (options.include_msu_crash) {
    classes.push_back(FaultClass::kMsuCrash);
  }
  if (options.include_coordinator_restart) {
    classes.push_back(FaultClass::kCoordinatorRestart);
  }
  if (options.include_coordinator_crash) {
    classes.push_back(FaultClass::kCoordinatorCrash);
  }
  for (FaultClass what : classes) {
    plan.events.push_back(MakeEvent(rng, what, options));
  }
  for (int i = 0; i < options.extra_events; ++i) {
    const FaultClass what = classes[static_cast<size_t>(rng.NextBelow(classes.size()))];
    plan.events.push_back(MakeEvent(rng, what, options));
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

bool FaultPlan::HasClass(FaultClass what) const {
  for (const FaultEvent& event : events) {
    if (event.what == what) {
      return true;
    }
  }
  return false;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& event : events) {
    out += event.ToString();
    out += "\n";
  }
  return out;
}

// ---- FaultInjector ----

FaultInjector::FaultInjector(Simulator& sim, Network& network, uint64_t seed)
    : sim_(&sim), network_(&network), rng_(seed) {}

void FaultInjector::AttachMsu(const std::string& node, Msu* msu) {
  msus_[node] = msu;
  Machine& machine = msu->machine();
  for (size_t i = 0; i < machine.disk_count(); ++i) {
    const int disk_index = static_cast<int>(i);
    machine.disk(i).set_fault_hook(
        [this, node, disk_index](Disk::Op op, Bytes offset, Bytes size) {
          (void)offset;
          (void)size;
          return OnDiskAccess(node, disk_index, op);
        });
  }
}

void FaultInjector::AttachCoordinator(Coordinator* coordinator, std::string coordinator_node) {
  coordinator_ = coordinator;
  coordinator_node_ = std::move(coordinator_node);
}

void FaultInjector::AttachStandbyCoordinator(Coordinator* coordinator, std::string node) {
  standby_coordinator_ = coordinator;
  standby_node_ = std::move(node);
}

void FaultInjector::AttachObservability(MetricsRegistry* metrics, TraceRecorder* recorder) {
  metrics_ = metrics;
  recorder_ = recorder;
  if (metrics_ == nullptr) {
    return;
  }
  // Effect counters (they were always documented as counters): pull-mode
  // counter callbacks mirroring the injector's accessors.
  metrics_->SetCounterCallback("fault.disk_errors", [this] { return disk_errors_; });
  metrics_->SetCounterCallback("fault.disk_slowdowns", [this] { return disk_slowdowns_; });
  metrics_->SetCounterCallback("fault.datagrams_dropped",
                               [this] { return datagrams_dropped_; });
  metrics_->SetCounterCallback("fault.datagrams_delayed",
                               [this] { return datagrams_delayed_; });
  metrics_->SetCounterCallback("fault.msu_crashes", [this] { return msu_crashes_; });
  metrics_->SetCounterCallback("fault.coordinator_restarts",
                               [this] { return coordinator_restarts_; });
  metrics_->SetCounterCallback("fault.coordinator_crashes",
                               [this] { return coordinator_crashes_; });
}

void FaultInjector::Trace(const std::string& line) {
  if (trace_) {
    trace_("t=" + sim_->Now().ToString() + " " + line);
  }
  if (recorder_ != nullptr) {
    // First token as the event name, full line as detail.
    const size_t space = line.find(' ');
    recorder_->Instant("fault", "fault",
                       space == std::string::npos ? line : line.substr(0, space), line);
  }
}

Task FaultInjector::RestartMsuLater(Msu* msu, SimTime delay) {
  co_await sim_->Delay(delay);
  const Status restarted = co_await msu->Restart(coordinator_node_);
  Trace("msu-restart " + msu->node().name() + " -> " + restarted.ToString());
}

Status FaultInjector::Arm(FaultPlan plan) {
  if (armed_) {
    return FailedPreconditionError("fault injector already armed");
  }
  for (const FaultEvent& event : plan.events) {
    switch (event.what) {
      case FaultClass::kMsuCrash:
      case FaultClass::kDiskError:
      case FaultClass::kDiskSlow:
        if (!msus_.contains(event.node)) {
          return InvalidArgumentError("fault plan targets unattached MSU: " + event.node);
        }
        break;
      case FaultClass::kCoordinatorRestart:
        if (coordinator_ == nullptr) {
          return FailedPreconditionError("fault plan restarts an unattached coordinator");
        }
        break;
      case FaultClass::kCoordinatorCrash:
        if (coordinator_ == nullptr || standby_coordinator_ == nullptr) {
          return FailedPreconditionError(
              "coordinator-crash events need both HA coordinators attached");
        }
        break;
      case FaultClass::kLinkDelay:
      case FaultClass::kPartition:
        break;
    }
    if ((event.what == FaultClass::kMsuCrash) && coordinator_node_.empty()) {
      return FailedPreconditionError("msu-crash events need AttachCoordinator for re-registration");
    }
  }
  plan_ = std::move(plan);
  armed_ = true;
  network_->set_fault_hook([this](const Datagram& datagram) { return OnDatagram(datagram); });

  for (const FaultEvent& event : plan_.events) {
    Trace("arm: " + event.ToString());
    if (recorder_ != nullptr && event.duration > SimTime() &&
        event.what != FaultClass::kMsuCrash && event.what != FaultClass::kCoordinatorRestart) {
      // Window faults are fully known at arm time: emit the whole window as a
      // span so the outage renders as a block in the trace viewer.
      recorder_->SpanAt("fault", "fault", FaultClassName(event.what), event.at, event.duration,
                        event.ToString());
    }
    if (event.what == FaultClass::kMsuCrash) {
      Msu* msu = msus_[event.node];
      const std::string node = event.node;
      const SimTime outage = event.duration;
      sim_->ScheduleAt(event.at, [this, msu, node, outage] {
        if (msu->crashed()) {
          Trace("msu-crash " + node + " skipped: already down");
          return;
        }
        ++msu_crashes_;
        Trace("msu-crash " + node);
        msu->Crash();
        RestartMsuLater(msu, outage);
      });
    } else if (event.what == FaultClass::kCoordinatorRestart) {
      sim_->ScheduleAt(event.at, [this] {
        if (coordinator_->crashed()) {
          Trace("coordinator-crash skipped: already down");
          return;
        }
        ++coordinator_restarts_;
        Trace("coordinator-crash");
        coordinator_->Crash();
      });
      sim_->ScheduleAt(event.end(), [this] {
        if (!coordinator_->crashed()) {
          return;
        }
        Trace("coordinator-restart");
        coordinator_->Restart();
      });
    } else if (event.what == FaultClass::kCoordinatorCrash) {
      // Which member of the pair is primary depends on earlier takeovers, so
      // resolve the victim at fire time and share it with the rejoin event.
      auto victim = std::make_shared<Coordinator*>(nullptr);
      sim_->ScheduleAt(event.at, [this, victim] {
        Coordinator* primary = nullptr;
        std::string name;
        if (coordinator_ != nullptr && !coordinator_->crashed() && coordinator_->is_primary()) {
          primary = coordinator_;
          name = coordinator_node_;
        } else if (standby_coordinator_ != nullptr && !standby_coordinator_->crashed() &&
                   standby_coordinator_->is_primary()) {
          primary = standby_coordinator_;
          name = standby_node_;
        }
        if (primary == nullptr) {
          Trace("coordinator-crash skipped: no live primary");
          return;
        }
        *victim = primary;
        ++coordinator_crashes_;
        Trace("coordinator-crash " + name);
        primary->Crash();
      });
      sim_->ScheduleAt(event.end(), [this, victim] {
        if (*victim == nullptr || !(*victim)->crashed()) {
          return;
        }
        Trace("coordinator-rejoin");
        (*victim)->Restart();
      });
    }
  }
  return OkStatus();
}

DiskFault FaultInjector::OnDiskAccess(const std::string& node, int disk, Disk::Op op) {
  DiskFault fault;
  if (!armed_) {
    return fault;
  }
  const SimTime now = sim_->Now();
  for (const FaultEvent& event : plan_.events) {
    if (event.node != node || now < event.at || now >= event.end()) {
      continue;
    }
    if (event.disk != -1 && event.disk != disk) {
      continue;
    }
    const bool matches_op = op == Disk::Op::kRead ? event.reads : event.writes;
    if (!matches_op) {
      continue;
    }
    if (event.what == FaultClass::kDiskError) {
      if (rng_.NextBernoulli(event.probability)) {
        fault.fail = true;
        ++disk_errors_;
      }
    } else if (event.what == FaultClass::kDiskSlow) {
      fault.extra_latency += event.delay;
      ++disk_slowdowns_;
    }
  }
  return fault;
}

bool FaultInjector::MatchesPair(const FaultEvent& event, const std::string& src,
                                const std::string& dst) const {
  if (event.peer.empty()) {
    return src == event.node || dst == event.node;
  }
  return (src == event.node && dst == event.peer) ||
         (src == event.peer && dst == event.node);
}

LinkFault FaultInjector::OnDatagram(const Datagram& datagram) {
  LinkFault fault;
  const SimTime now = sim_->Now();
  SimTime extra;
  SimTime hold_until;  // latest partition heal point covering this send
  for (const FaultEvent& event : plan_.events) {
    if (now < event.at || now >= event.end() ||
        !MatchesPair(event, datagram.src_node, datagram.dst_node)) {
      continue;
    }
    if (event.what == FaultClass::kPartition) {
      if (datagram.proto == Datagram::Proto::kUdp) {
        ++datagrams_dropped_;
        fault.drop = true;
        return fault;
      }
      // TCP has no retransmission in this model: hold the segment until the
      // partition heals instead of wedging the receiver's reorder buffer.
      hold_until = std::max(hold_until, event.end());
    } else if (event.what == FaultClass::kLinkDelay) {
      extra += event.delay;
    }
  }
  SimTime release = now + extra;
  release = std::max(release, hold_until);
  // FIFO clamp: traffic on a pair never overtakes earlier traffic, even
  // across a fault window's edge. Strictly increasing release times keep
  // same-instant events from racing in the scheduler.
  SimTime& last = last_release_[{datagram.src_node, datagram.dst_node}];
  if (release <= last) {
    release = last + SimTime(1);
  }
  last = release;
  if (release > now) {
    ++datagrams_delayed_;
    fault.extra_delay = release - now;
  }
  return fault;
}

}  // namespace calliope
