// MsuPageCache: the per-MSU interval + prefix page cache behind stream
// sharing (DESIGN §5.6, after Jayarekha & Nair's prefix+popularity interval
// caching). The paper's file system deliberately has no LRU block cache
// (§2.3.3: "multimedia workloads have no useful locality") — but *shared*
// viewing creates exactly one kind of locality worth exploiting: a viewer
// trailing another by seconds re-reads the pages the leader just delivered,
// and every viewer of a hot title reads its first pages. So the cache is a
// memory-budgeted ring of recently delivered pages (the interval cache) plus
// pinned prefixes of hot titles, not a general-purpose block cache.
//
// Pages are the `const DataPage*` images MsuFileSystem::ReadPage returns;
// they stay valid until the file is deleted, so the cache holds pointers and
// only accounts bytes. InvalidateFile must be called before a file's pages
// are freed. Keys are file *names* (not pointers) so iteration and eviction
// order are deterministic across runs — the determinism contract covers
// cache state.
#ifndef CALLIOPE_SRC_MSU_PAGE_CACHE_H_
#define CALLIOPE_SRC_MSU_PAGE_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "src/ibtree/ibtree.h"
#include "src/util/units.h"

namespace calliope {

class MsuPageCache {
 public:
  // What a successful Lookup hit: a pinned prefix page or the trailing
  // interval ring. kMiss carries no page.
  enum class HitKind { kMiss, kInterval, kPrefix };

  struct LookupResult {
    LookupResult() = default;
    LookupResult(const DataPage* p, HitKind k) : page(p), kind(k) {}

    const DataPage* page = nullptr;
    HitKind kind = HitKind::kMiss;
  };

  explicit MsuPageCache(Bytes budget) : budget_(budget) {}

  // A zero budget disables the cache entirely: no lookups, no accounting, so
  // default configurations stay byte-identical to the pre-sharing behavior.
  bool enabled() const { return budget_ > Bytes(0); }

  LookupResult Lookup(const std::string& file, size_t page_index) const;

  // Records a page just read from disk. Evicts the oldest unpinned pages to
  // make room; if only pinned pages remain the insert is dropped. Returns
  // true if the page ended up cached. Re-inserting a cached page refreshes
  // its ring position.
  bool Insert(const std::string& file, size_t page_index, const DataPage* page);

  // Marks the first `pages` pages of `file` as prefix-pinned: once inserted
  // they are never evicted (until the file is invalidated or the pin drops).
  void PinPrefix(const std::string& file, int64_t pages);

  // Drops every cached page and pin for `file` (file deleted or rewritten).
  void InvalidateFile(const std::string& file);

  // Drops everything (MSU crash: cached pages lived in the dead process).
  void Clear();

  Bytes bytes_used() const { return used_; }
  Bytes budget() const { return budget_; }
  int64_t evictions() const { return evictions_; }

 private:
  using Key = std::pair<std::string, size_t>;

  struct Entry {
    Entry() = default;

    const DataPage* page = nullptr;
    bool pinned = false;
    uint64_t seq = 0;  // position in the eviction ring (unpinned entries)
  };

  bool pinned_for(const std::string& file, size_t page_index) const;

  Bytes budget_;
  Bytes used_;
  uint64_t next_seq_ = 0;
  int64_t evictions_ = 0;
  std::map<Key, Entry> entries_;
  std::map<uint64_t, Key> ring_;  // unpinned entries in insertion order
  std::map<std::string, int64_t> prefix_pins_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_MSU_PAGE_CACHE_H_
