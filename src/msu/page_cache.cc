#include "src/msu/page_cache.h"

namespace calliope {

bool MsuPageCache::pinned_for(const std::string& file, size_t page_index) const {
  auto it = prefix_pins_.find(file);
  return it != prefix_pins_.end() && static_cast<int64_t>(page_index) < it->second;
}

MsuPageCache::LookupResult MsuPageCache::Lookup(const std::string& file,
                                                size_t page_index) const {
  if (!enabled()) {
    return LookupResult();
  }
  auto it = entries_.find(Key(file, page_index));
  if (it == entries_.end()) {
    return LookupResult();
  }
  return LookupResult(it->second.page,
                      it->second.pinned ? HitKind::kPrefix : HitKind::kInterval);
}

bool MsuPageCache::Insert(const std::string& file, size_t page_index, const DataPage* page) {
  if (!enabled() || page == nullptr) {
    return false;
  }
  const Key key(file, page_index);
  auto existing = entries_.find(key);
  if (existing != entries_.end()) {
    // Refresh the ring position so a page two viewers straddle stays hot.
    if (!existing->second.pinned) {
      ring_.erase(existing->second.seq);
      existing->second.seq = next_seq_++;
      ring_[existing->second.seq] = key;
    }
    return true;
  }
  while (used_ + kDataPageSize > budget_ && !ring_.empty()) {
    auto oldest = ring_.begin();
    entries_.erase(oldest->second);
    ring_.erase(oldest);
    used_ -= kDataPageSize;
    ++evictions_;
  }
  if (used_ + kDataPageSize > budget_) {
    return false;  // everything left is pinned prefix
  }
  Entry entry;
  entry.page = page;
  entry.pinned = pinned_for(file, page_index);
  entry.seq = next_seq_++;
  if (!entry.pinned) {
    ring_[entry.seq] = key;
  }
  entries_[key] = entry;
  used_ += kDataPageSize;
  return true;
}

void MsuPageCache::PinPrefix(const std::string& file, int64_t pages) {
  if (!enabled()) {
    return;
  }
  if (pages <= 0) {
    prefix_pins_.erase(file);
  } else {
    prefix_pins_[file] = pages;
  }
  // Promote already-cached prefix pages out of the eviction ring (and demote
  // pages a shrinking pin no longer covers back into it).
  for (auto& [key, entry] : entries_) {
    if (key.first != file) {
      continue;
    }
    const bool want_pinned = pinned_for(file, key.second);
    if (want_pinned == entry.pinned) {
      continue;
    }
    if (want_pinned) {
      ring_.erase(entry.seq);
    } else {
      entry.seq = next_seq_++;
      ring_[entry.seq] = key;
    }
    entry.pinned = want_pinned;
  }
}

void MsuPageCache::Clear() {
  entries_.clear();
  ring_.clear();
  prefix_pins_.clear();
  used_ = Bytes(0);
}

void MsuPageCache::InvalidateFile(const std::string& file) {
  prefix_pins_.erase(file);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first != file) {
      ++it;
      continue;
    }
    if (!it->second.pinned) {
      ring_.erase(it->second.seq);
    }
    used_ -= kDataPageSize;
    it = entries_.erase(it);
  }
}

}  // namespace calliope
