#include <algorithm>

#include "src/msu/msu.h"
#include "src/obs/sampler.h"
#include "src/util/logging.h"

namespace calliope {

MsuStream::MsuStream(Msu& msu, const MsuStartStream& request,
                     std::unique_ptr<ProtocolModule> protocol)
    : msu_(&msu),
      id_(request.stream),
      group_(request.group),
      mode_(request.record ? Mode::kRecord : Mode::kPlay),
      file_name_(request.file),
      ff_file_(request.fast_forward_file),
      fb_file_(request.fast_backward_file),
      protocol_name_(request.protocol),
      protocol_(std::move(protocol)),
      rate_(request.rate),
      client_node_(request.client_node),
      client_udp_port_(request.client_udp_port),
      shared_(request.shared),
      from_cache_(request.from_cache),
      buffers_changed_(msu.sim()),
      fanout_settled_(msu.sim()),
      last_interesting_(msu.sim().Now()),  // admission is an interesting moment
      record_pages_ready_(msu.sim()),
      start_time_(msu.sim().Now()) {
  members_.reserve(request.shared_members.size());
  for (const SharedMemberSpec& spec : request.shared_members) {
    members_.emplace_back(spec);
  }
}

SharedMemberState* MsuStream::FindMember(GroupId group) {
  for (SharedMemberState& member : members_) {
    if (member.group == group) {
      return &member;
    }
  }
  return nullptr;
}

SharedMemberState* MsuStream::FindMemberByStream(StreamId stream) {
  for (SharedMemberState& member : members_) {
    if (member.stream == stream) {
      return &member;
    }
  }
  return nullptr;
}

SharedMemberState MsuStream::DetachMember(GroupId group) {
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->group == group) {
      SharedMemberState member = *it;
      members_.erase(it);
      return member;
    }
  }
  return SharedMemberState();
}

Co<void> MsuStream::SettleFanout() {
  while (fanout_in_flight_) {
    co_await fanout_settled_.Wait();
  }
}

bool MsuStream::NeedsDiskService() const {
  if (state_ == State::kStopped) {
    return false;
  }
  if (mode_ == Mode::kPlay) {
    // Flow-mode streams self-prefetch with aggregate reads inside FlowStep;
    // keeping them off the round-robin disk process avoids double reads.
    if (fidelity_ == Fidelity::kFlow) {
      return false;
    }
    return state_ == State::kRunning && file_ != nullptr && prefetched_.size() < 2 &&
           next_page_to_read_ < file_->image().page_count();
  }
  return builder_.pages_closed() > pages_written_ && !record_write_in_flight_;
}

Co<bool> MsuStream::ServiceDisk() {
  if (!NeedsDiskService()) {
    co_return false;
  }
  if (mode_ == Mode::kPlay) {
    const size_t target = next_page_to_read_;
    // Interval/prefix cache read-through: a hit skips the disk entirely —
    // that is the capacity win for trailing viewers and hot-title starts.
    const DataPage* cached = msu_->CacheLookup(file_->name(), target);
    if (cached != nullptr) {
      ++next_page_to_read_;
      prefetched_.push_back(cached);
      bytes_moved_ += kDataPageSize;
      buffers_changed_.NotifyAll();
      co_return true;
    }
    const SimTime service_start = msu_->sim().Now();
    auto page = co_await msu_->fs().ReadPage(file_, target);
    if (!page.ok()) {
      if (page.status().code() == StatusCode::kDataLoss) {
        // Unrecoverable media: end the stream rather than stall the viewer.
        CALLIOPE_LOG(kWarning, "msu") << "stream " << id_ << ": " << page.status().ToString();
        StopInternal();
        msu_->OnStreamFinished(this);
      }
      co_return false;
    }
    if (msu_->blocks_read_metric_ != nullptr) {
      msu_->blocks_read_metric_->Add();
    }
    if (msu_->trace_ != nullptr) {
      msu_->trace_->Span(msu_->node().name() + ".disk" + std::to_string(disk_), "msu",
                         "read-block", service_start, "stream " + std::to_string(id_));
    }
    // A seek may have moved the cursor while the read was in flight; only
    // keep the page if it is still the one the stream wants next.
    if (state_ == State::kStopped || target != next_page_to_read_) {
      co_return true;
    }
    msu_->CacheInsert(file_->name(), target, *page);
    ++next_page_to_read_;
    prefetched_.push_back(*page);
    bytes_moved_ += kDataPageSize;
    buffers_changed_.NotifyAll();
    co_return true;
  }
  // Recording: flush one closed page (write-behind).
  record_write_in_flight_ = true;
  const auto page_index = static_cast<int64_t>(pages_written_);
  const SimTime service_start = msu_->sim().Now();
  const Status written = co_await msu_->fs().WriteNextPage(file_, page_index);
  record_write_in_flight_ = false;
  if (written.ok()) {
    ++pages_written_;
    bytes_moved_ += kDataPageSize;
    if (msu_->blocks_written_metric_ != nullptr) {
      msu_->blocks_written_metric_->Add();
    }
    if (msu_->trace_ != nullptr) {
      msu_->trace_->Span(msu_->node().name() + ".disk" + std::to_string(disk_), "msu",
                         "write-block", service_start, "stream " + std::to_string(id_));
    }
  }
  record_pages_ready_.NotifyAll();
  co_return true;
}

SimTime MsuStream::CurrentMediaOffset() const {
  if (file_ == nullptr || file_->image().page_count() == 0) {
    return SimTime();
  }
  if (!prefetched_.empty() && play_record_ < prefetched_.front()->records.size()) {
    return prefetched_.front()->records[play_record_].delivery_offset;
  }
  if (play_page_ < file_->image().page_count()) {
    const DataPage& page = file_->image().page(play_page_);
    if (play_record_ < page.records.size()) {
      return page.records[play_record_].delivery_offset;
    }
    return page.last_offset();
  }
  return file_->image().duration();
}

Task MsuStream::PlaybackLoop() {
  while (state_ != State::kStopped) {
    if (state_ == State::kPaused || state_ == State::kStarting) {
      co_await buffers_changed_.Wait();
      continue;
    }
    MaybePromote();
    if (fidelity_ == Fidelity::kFlow) {
      co_await FlowStep();
      continue;
    }
    if (prefetched_.empty()) {
      if (file_ == nullptr || play_page_ >= file_->image().page_count()) {
        break;  // end of content
      }
      // Running with no prefetched page: the network process is starved
      // waiting on the disk (startup fill or a genuine double-buffer miss).
      if (msu_->buffer_stalls_metric_ != nullptr) {
        msu_->buffer_stalls_metric_->Add();
      }
      msu_->disk_work_[static_cast<size_t>(disk_)]->NotifyAll();
      co_await buffers_changed_.Wait();
      continue;
    }
    const DataPage* page = prefetched_.front();
    if (play_record_ >= page->records.size()) {
      prefetched_.pop_front();
      ++play_page_;
      play_record_ = 0;
      msu_->disk_work_[static_cast<size_t>(disk_)]->NotifyAll();
      continue;
    }
    const MediaPacket record = page->records[play_record_];
    if (rebase_needed_) {
      origin_ = record.delivery_offset;
      base_ = msu_->sim().Now();
      rebase_needed_ = false;
    }
    const SimTime deadline = base_ + (record.delivery_offset - origin_);
    const int64_t gen_before = position_gen_;
    if (deadline > msu_->sim().Now()) {
      // tsleep until the 10 ms tick at/after the deadline; a packet whose
      // deadline already passed (mid-burst) goes out back to back instead.
      co_await msu_->machine().timer().WaitUntil(deadline);
      if (state_ != State::kRunning || position_gen_ != gen_before) {
        continue;  // paused, stopped or repositioned while asleep
      }
      // Waking the network process costs a tsleep/wakeup switch. Timekeeping
      // uses the Pentium cycle counter — the paper's workaround for the
      // port-I/O stall bug — so no in/out stalls here.
      co_await msu_->machine().cpu().Run(msu_->machine().cpu().params().timer_wakeup_compute, 0);
      if (state_ != State::kRunning || position_gen_ != gen_before) {
        continue;
      }
    }
    // Per-packet MSU bookkeeping (schedule lookup, buffer accounting); this
    // is charged whether or not the process slept — it is what caps the MSU
    // at ~90% of the raw send baseline. Stored (variable-rate) delivery
    // schedules cost more per packet than computed constant-rate ones.
    SimTime per_packet = msu_->machine().cpu().params().msu_packet_compute;
    if (!protocol_->is_constant_rate()) {
      per_packet += msu_->machine().cpu().params().msu_stored_schedule_compute;
    }
    co_await msu_->machine().cpu().Run(per_packet, 0);
    if (state_ != State::kRunning || position_gen_ != gen_before) {
      continue;
    }
    const auto route = protocol_->RoutePlayback(record);
    if (route.send && shared_) {
      // Shared fan-out: one real UDP datagram per member, each in the
      // member's own stream-id and sequence space. Iterate a snapshot of
      // stream ids — a VCR split can mutate members_ while a send is on the
      // wire — and re-find the member across every suspension point.
      std::vector<StreamId> targets;
      targets.reserve(members_.size());
      for (const SharedMemberState& member : members_) {
        targets.push_back(member.stream);
      }
      bool interrupted = false;
      fanout_in_flight_ = true;
      for (StreamId target : targets) {
        SharedMemberState* member = FindMemberByStream(target);
        if (member == nullptr) {
          continue;  // split away while fanning out
        }
        auto payload = std::make_shared<MediaDatagramPayload>();
        payload->stream = target;
        payload->seq = member->seq;
        payload->deadline = deadline;
        payload->packet = record;
        payload->is_control = route.to_control_port;
        const std::string dst = member->client_node;
        const int port =
            route.to_control_port ? member->client_udp_port + 1 : member->client_udp_port;
        const bool sent_ok =
            co_await msu_->node().SendUdp(dst, port, record.size, std::move(payload));
        if (state_ != State::kRunning || position_gen_ != gen_before) {
          interrupted = true;
          break;
        }
        member = FindMemberByStream(target);
        if (member != nullptr) {
          ++member->seq;
          member->bytes_moved += record.size;
          ++member->packets_sent;
        }
        if (!sent_ok) {
          NoteInteresting();
        }
        AccountSentPacket(msu_->sim().Now() - deadline);
      }
      fanout_in_flight_ = false;
      fanout_settled_.NotifyAll();
      if (interrupted) {
        continue;
      }
    } else if (route.send) {
      auto payload = std::make_shared<MediaDatagramPayload>();
      payload->stream = id_;
      payload->seq = send_seq_;
      payload->deadline = deadline;
      payload->packet = record;
      payload->is_control = route.to_control_port;
      const int port = route.to_control_port ? client_udp_port_ + 1 : client_udp_port_;
      const bool sent_ok =
          co_await msu_->node().SendUdp(client_node_, port, record.size, std::move(payload));
      if (state_ != State::kRunning || position_gen_ != gen_before) {
        continue;
      }
      if (!sent_ok) {
        // ENOBUFS: congestion counts as interesting — it restarts the quiet
        // window so the stream stays on the per-packet model while squeezed.
        NoteInteresting();
      }
      AccountSentPacket(msu_->sim().Now() - deadline);
    }
    ++send_seq_;
    ++play_record_;
  }
  if (state_ != State::kStopped) {
    StopInternal();
    msu_->OnStreamFinished(this);
  }
}

Status MsuStream::Pause() {
  if (mode_ != Mode::kPlay) {
    return FailedPreconditionError("cannot pause a recording");
  }
  if (state_ != State::kRunning) {
    return FailedPreconditionError("stream not running");
  }
  NoteInteresting();  // settles any in-flight flow page before the state flips
  state_ = State::kPaused;
  ++position_gen_;
  buffers_changed_.NotifyAll();
  return OkStatus();
}

Status MsuStream::Resume() {
  if (state_ == State::kStarting) {
    state_ = State::kRunning;
    buffers_changed_.NotifyAll();
    msu_->disk_work_[static_cast<size_t>(disk_)]->NotifyAll();
    return OkStatus();
  }
  if (state_ != State::kPaused) {
    return FailedPreconditionError("stream not paused");
  }
  NoteInteresting();
  state_ = State::kRunning;
  ++position_gen_;
  rebase_needed_ = true;  // deadlines restart from the paused position
  buffers_changed_.NotifyAll();
  msu_->disk_work_[static_cast<size_t>(disk_)]->NotifyAll();
  return OkStatus();
}

Co<Status> MsuStream::SeekTo(SimTime media_offset) {
  if (mode_ != Mode::kPlay) {
    co_return FailedPreconditionError("cannot seek a recording");
  }
  if (file_ == nullptr) {
    co_return FailedPreconditionError("no file attached");
  }
  // Demote before the tree walk: while the internal-page reads are in
  // flight the stream keeps delivering from its old position, and the
  // per-packet model is the one whose mid-seek behavior we guarantee.
  NoteInteresting();
  const SimTime seek_start = msu_->sim().Now();
  auto target = file_->image().Seek(media_offset);
  if (!target.ok()) {
    co_return target.status();
  }
  // Charge the internal-page reads of the tree walk.
  for (const int64_t internal_page : target->internal_pages_read) {
    auto read = co_await msu_->fs().ReadPage(file_, static_cast<size_t>(internal_page));
    if (!read.ok()) {
      co_return read.status();
    }
  }
  if (msu_->ibtree_reads_metric_ != nullptr) {
    msu_->ibtree_reads_metric_->Add(static_cast<int64_t>(target->internal_pages_read.size()));
  }
  if (msu_->trace_ != nullptr) {
    msu_->trace_->Span(msu_->node().name(), "msu", "seek", seek_start,
                       "stream " + std::to_string(id_) + " -> " +
                           std::to_string(media_offset.millis()) + "ms");
  }
  prefetched_.clear();
  play_page_ = target->page_index;
  play_record_ = target->record_index;
  next_page_to_read_ = target->page_index;
  rebase_needed_ = true;
  ++position_gen_;
  buffers_changed_.NotifyAll();
  msu_->disk_work_[static_cast<size_t>(disk_)]->NotifyAll();
  co_return OkStatus();
}

Co<Status> MsuStream::SwitchVariant(Variant variant) {
  if (mode_ != Mode::kPlay) {
    co_return FailedPreconditionError("cannot fast-scan a recording");
  }
  if (variant == variant_) {
    co_return OkStatus();
  }
  NoteInteresting();  // settle before file_ is swapped out from under the page
  const std::string* target_name = nullptr;
  switch (variant) {
    case Variant::kNormal:
      target_name = &file_name_;
      break;
    case Variant::kFastForward:
      target_name = &ff_file_;
      break;
    case Variant::kFastBackward:
      target_name = &fb_file_;
      break;
  }
  if (target_name->empty()) {
    co_return FailedPreconditionError("content has no fast-scan variant loaded");
  }
  auto target_file = msu_->fs().Lookup(*target_name);
  if (!target_file.ok()) {
    co_return target_file.status();
  }

  // Map the current media position between the normal-rate and filtered
  // timelines. The filtered file covers the same content in 1/K of the time
  // (every K-th frame kept), so positions scale by the duration ratio.
  const SimTime old_duration = file_->image().duration();
  const SimTime new_duration = (*target_file)->image().duration();
  SimTime position = CurrentMediaOffset();
  if (variant_ == Variant::kFastBackward) {
    position = old_duration - position;  // fb timeline runs backwards
  }
  double scale = 1.0;
  if (old_duration > SimTime()) {
    scale = new_duration.seconds() / old_duration.seconds();
  }
  SimTime mapped = SimTime::SecondsF(position.seconds() * scale);
  if (variant == Variant::kFastBackward) {
    mapped = new_duration - mapped;
  }
  mapped = std::clamp(mapped, SimTime(), new_duration);

  file_ = *target_file;
  variant_ = variant;
  CALLIOPE_CO_RETURN_IF_ERROR(co_await SeekTo(mapped));
  co_return OkStatus();
}

void MsuStream::OnRecordedPacket(const MediaPacket& packet) {
  if (mode_ != Mode::kRecord || state_ != State::kRunning) {
    return;
  }
  if (!record_started_) {
    record_started_ = true;
    record_start_ = msu_->sim().Now();
  }
  const SimTime arrival_offset = msu_->sim().Now() - record_start_;

  PacketSequence interleave;
  protocol_->OnRecordPacket(packet, arrival_offset, interleave);
  for (MediaPacket& control : interleave) {
    control.delivery_offset = std::max(control.delivery_offset, last_stored_offset_);
    last_stored_offset_ = control.delivery_offset;
    (void)builder_.Add(control);
  }

  MediaPacket stored = packet;
  stored.delivery_offset =
      std::max(protocol_->RecordDeliveryOffset(packet, arrival_offset), last_stored_offset_);
  last_stored_offset_ = stored.delivery_offset;
  if (Status added = builder_.Add(stored); !added.ok()) {
    CALLIOPE_LOG(kWarning, "msu") << "record drop: " << added.ToString();
    return;
  }
  if (NeedsDiskService()) {
    msu_->disk_work_[static_cast<size_t>(disk_)]->NotifyAll();
  }
}

Co<Status> MsuStream::FinishRecording() {
  state_ = State::kStopped;
  // Wait out any write the disk process has in flight.
  while (record_write_in_flight_) {
    co_await record_pages_ready_.Wait();
  }
  IbTreeFile image = builder_.Finish();
  // Drain the remaining closed pages.
  while (pages_written_ < image.page_count()) {
    const Status written =
        co_await msu_->fs().WriteNextPage(file_, static_cast<int64_t>(pages_written_));
    if (!written.ok()) {
      co_return written;
    }
    ++pages_written_;
    bytes_moved_ += kDataPageSize;
  }
  co_return msu_->fs().CommitRecording(file_, std::move(image));
}

Co<Status> MsuStream::Quit() {
  if (state_ == State::kStopped) {
    co_return OkStatus();
  }
  Status result = OkStatus();
  if (mode_ == Mode::kRecord) {
    result = co_await FinishRecording();
    if (result.ok()) {
      msu_->FlushMetadataBehind();
    } else if (file_ != nullptr && !file_->committed()) {
      // The recording could not be sealed; a partial file with no IB-tree is
      // unreadable, so free its blocks. The termination note then reports
      // record_committed=false and the Coordinator refunds the full estimate.
      (void)msu_->fs().Delete(file_name_);
      file_ = nullptr;
    }
  }
  StopInternal();
  msu_->OnStreamFinished(this);
  co_return result;
}

void MsuStream::StopInternal() {
  // Settle any in-flight flow page first: records whose delivery instants
  // already passed were sent in the per-packet model, so the analytic model
  // must count them before the page is dropped (quit, crash, data loss).
  NoteInteresting();
  state_ = State::kStopped;
  ++position_gen_;
  prefetched_.clear();
  buffers_changed_.NotifyAll();
  record_pages_ready_.NotifyAll();
}

void MsuStream::AccountSentPacket(SimTime lateness) {
  lateness_.Record(lateness);
  ++packets_sent_;
  if (packets_sent_ == 1 && msu_->trace_ != nullptr) {
    msu_->trace_->Instant(msu_->node().name(), "msu", "first-packet",
                          "stream " + std::to_string(id_));
  }
  if (msu_->packets_sent_metric_ != nullptr) {
    msu_->packets_sent_metric_->Add();
    if (lateness > SimTime()) {
      msu_->packets_late_metric_->Add();
    }
    msu_->send_lateness_us_->Record(std::max<int64_t>(lateness.micros(), 0));
  }
  if (msu_->qos_ != nullptr) {
    msu_->qos_->RecordLateness(lateness);
  }
}

}  // namespace calliope
