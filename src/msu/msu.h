// The Multimedia Storage Unit (MSU): Calliope's real-time component (§2.3).
//
// Each MSU runs a central control process (RPCs from the Coordinator and VCR
// commands from clients), one disk process per disk (round-robin duty-cycle
// service with double buffering) and network delivery paced against stored or
// computed delivery schedules through 10 ms coarse timers. Streams support
// the full VCR set — play, pause, seek, quit — plus fast-forward and
// fast-backward via administrator-produced filtered files (§2.3.1).
#ifndef CALLIOPE_SRC_MSU_MSU_H_
#define CALLIOPE_SRC_MSU_MSU_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/msu_fs.h"
#include "src/hw/machine.h"
#include "src/msu/page_cache.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/proto/protocol.h"
#include "src/sched/duty_cycle.h"
#include "src/sim/condition.h"
#include "src/sim/fidelity.h"
#include "src/util/histogram.h"

namespace calliope {

class Msu;
class QosAccumulator;

// Payload carried by every media UDP datagram; clients use it to measure
// arrival lateness and feed software decoders.
struct MediaDatagramPayload {
  MediaDatagramPayload() = default;

  StreamId stream = 0;
  int64_t seq = 0;
  SimTime deadline;        // sender-side delivery deadline (absolute)
  MediaPacket packet;
  bool is_control = false;

  // Flow-fidelity chunk (flow_count > 0): this payload stands in for
  // `flow_count` consecutive packets of one steady-state stream, delivered as
  // a single aggregate datagram. Per-record deadlines/sizes ride along so the
  // client can synthesize exactly the per-packet arrival accounting it would
  // have produced in packet fidelity; `flow_sent_at` lets it reconstruct each
  // record's transit time (arrival_i = deadline_i's tick + measured transit).
  struct FlowRecord {
    SimTime deadline;         // sender-side delivery deadline (absolute)
    SimTime delivery_offset;  // media-time offset of the record
    Bytes size;
  };
  int64_t flow_count = 0;
  SimTime flow_sent_at;
  std::vector<FlowRecord> flow_records;
};

// One viewer attached to a shared delivery stream (DESIGN §5.6). The
// delivery stream reads each block once and fans every packet out to all
// members; each member keeps its own client address, sequence space and
// byte accounting so the client side is indistinguishable from a solo
// stream until a VCR op splits the member off.
struct SharedMemberState {
  SharedMemberState() = default;
  explicit SharedMemberState(const SharedMemberSpec& spec)
      : stream(spec.stream),
        group(spec.group),
        client_node(spec.client_node),
        client_udp_port(spec.client_udp_port),
        client_control_port(spec.client_control_port) {}

  StreamId stream = 0;
  GroupId group = 0;  // the member's client-facing stream group
  std::string client_node;
  int client_udp_port = 0;
  int client_control_port = 0;
  int64_t seq = 0;
  Bytes bytes_moved;
  int64_t packets_sent = 0;
};

// One active stream on an MSU (one member of a stream group).
class MsuStream {
 public:
  enum class Mode { kPlay, kRecord };
  enum class State { kStarting, kRunning, kPaused, kStopped };
  enum class Variant { kNormal, kFastForward, kFastBackward };

  MsuStream(Msu& msu, const MsuStartStream& request, std::unique_ptr<ProtocolModule> protocol);

  StreamId id() const { return id_; }
  GroupId group() const { return group_; }
  Mode mode() const { return mode_; }
  State state() const { return state_; }
  Variant variant() const { return variant_; }
  int disk() const { return disk_; }
  const std::string& file_name() const { return file_name_; }
  Bytes bytes_moved() const { return bytes_moved_; }
  int64_t packets_sent() const { return packets_sent_; }
  const LatenessHistogram& lateness() const { return lateness_; }
  SimTime start_time() const { return start_time_; }

  // VCR surface (applied by the MSU's control process). Seek and variant
  // switches are awaitable: they traverse IB-tree internal pages on disk.
  Status Pause();
  Status Resume();
  Co<Status> SeekTo(SimTime media_offset);
  Co<Status> SwitchVariant(Variant variant);
  Co<Status> Quit();

  // Recording input (from the MSU's UDP receive port).
  void OnRecordedPacket(const MediaPacket& packet);

  // Media-time position of the next packet to send.
  SimTime CurrentMediaOffset() const;

  // Current delivery fidelity (see src/sim/fidelity.h and DESIGN.md §5.5).
  Fidelity fidelity() const { return fidelity_; }

  // --- Stream sharing (DESIGN §5.6) ---
  // True for a shared delivery stream: one disk stream fanning out to the
  // members below. False for solo streams (the historical shape).
  bool shared() const { return shared_; }
  // True for a trailing viewer served read-through from the MSU page cache
  // (no duty-cycle admission; misses spill to disk).
  bool from_cache() const { return from_cache_; }
  const std::vector<SharedMemberState>& members() const { return members_; }
  SharedMemberState* FindMember(GroupId group);
  SharedMemberState* FindMemberByStream(StreamId stream);
  // Removes and returns the member for `group`. The caller must have settled
  // any in-flight flow page first (NoteInteresting) so the member's byte
  // accounting covers everything delivered before the split point.
  SharedMemberState DetachMember(GroupId group);
  // Blocks until no packet-path fan-out send is in flight. Detaching a member
  // mid-fan-out would leave its resume offset one record behind the datagram
  // already on the wire, duplicating that record after a split.
  Co<void> SettleFanout();

 private:
  friend class Msu;

  Task PlaybackLoop();
  // Disk-process work unit: one block read (play prefetch) or one block
  // write (recording flush). Returns false if there was nothing to do.
  Co<bool> ServiceDisk();
  Co<Status> FinishRecording();
  bool NeedsDiskService() const;
  void StopInternal();

  // --- Hybrid fidelity (flow fast path; see stream_flow.cc) ---
  // One flow-mode iteration: aggregate refill, one sleep to the front page's
  // last deadline, then one chunk send covering the whole page.
  Co<void> FlowStep();
  // Marks an interesting moment (VCR op, admission churn, disk fault,
  // congestion, stop): restarts the promotion quiet window and, if the stream
  // is in flow mode, settles the in-flight page and demotes to packet mode.
  void NoteInteresting();
  // Accounts and ships the already-due records of the in-flight flow page so
  // a demotion mid-page loses nothing the packet model would have sent.
  void SettleFlowPage();
  void MaybePromote();
  bool FlowEligible() const;
  // Max records per aggregated chunk send: the whole page when every
  // co-resident stream is in flow mode, a few packet times' worth while a
  // packet-fidelity neighbour could queue behind the frame.
  size_t FlowChunkCap() const;
  // Builds the chunk payload for records [first, limit) of the front page,
  // accounting each record's analytic lateness. Returns total media bytes.
  std::shared_ptr<MediaDatagramPayload> BuildFlowChunk(size_t first, size_t limit,
                                                       Bytes* total_out);
  // Shared per-packet accounting (histogram, counters, first-packet trace):
  // both fidelities report through this so observability is mode-agnostic.
  void AccountSentPacket(SimTime lateness);

  Msu* msu_;
  StreamId id_;
  GroupId group_;
  Mode mode_;
  State state_ = State::kStarting;
  Variant variant_ = Variant::kNormal;
  std::string file_name_;
  std::string ff_file_;
  std::string fb_file_;
  std::string protocol_name_;
  std::unique_ptr<ProtocolModule> protocol_;
  DataRate rate_;
  int disk_ = 0;
  std::string client_node_;
  int client_udp_port_ = 0;

  // Sharing state. A shared delivery stream has no client of its own; every
  // viewer lives in members_ and the fan-out loops address them directly.
  bool shared_ = false;
  bool from_cache_ = false;
  std::vector<SharedMemberState> members_;
  bool fanout_in_flight_ = false;  // packet-path fan-out has a send on the wire
  Condition fanout_settled_;

  // Playback state.
  MsuFile* file_ = nullptr;
  size_t next_page_to_read_ = 0;   // disk process cursor
  size_t play_page_ = 0;           // network process cursor
  size_t play_record_ = 0;
  std::deque<const DataPage*> prefetched_;  // double buffering: at most 2
  Condition buffers_changed_;
  // Wall-clock base: packet deadline = base_ + (delivery_offset - origin_).
  SimTime base_;
  SimTime origin_;
  bool rebase_needed_ = true;
  int64_t send_seq_ = 0;
  // Bumped by every VCR operation that moves the position; the playback loop
  // re-evaluates after timer sleeps when it changes.
  int64_t position_gen_ = 0;
  // Hybrid-fidelity state. Streams always start in packet mode; MaybePromote
  // lifts eligible steady-state streams to flow mode after a quiet window.
  Fidelity fidelity_ = Fidelity::kPacket;
  SimTime last_interesting_;          // last admission/VCR/fault/congestion event
  bool flow_page_in_flight_ = false;  // front page's records are analytically due

  // Recording state.
  IbTreeBuilder builder_;
  SimTime record_start_;
  bool record_started_ = false;
  SimTime last_stored_offset_;
  size_t pages_written_ = 0;
  bool record_write_in_flight_ = false;
  Condition record_pages_ready_;

  // Stats.
  SimTime start_time_;  // sim time the stream object was created
  Bytes bytes_moved_;
  int64_t packets_sent_ = 0;
  LatenessHistogram lateness_;
};

struct MsuParams {
  // "available main memory is organized into large buffers" — 32 MB minus
  // code/metadata leaves ~112 file-block buffers.
  int buffer_count = 112;
  Bytes block_size = kDataPageSize;
  bool striped_layout = false;  // §2.3.3: current implementation does not stripe
  // §2.3.3: "The current implementation of the MSU does not employ disk head
  // scheduling" — optional elevator (SCAN) ordering, worth ~6%.
  bool elevator_scheduling = false;
  int coordinator_port = 5000;
  int media_udp_port = 7000;    // MSU-side recording receive port base
  // TCP port serving ReplPullRequests for in-progress background replica
  // copies (the rebalancer's MSU-to-MSU transfer path, DESIGN §5.8).
  int replica_pull_port = 7100;
  // Coordinator nodes to cycle through when redialing (warm-standby HA).
  // Empty: only the host passed to RegisterWithCoordinator is retried.
  std::vector<std::string> coordinator_hosts;
  // How often the MSU batches playback media offsets to the Coordinator (one
  // small message per MSU, so Coordinator CPU cost stays negligible). The
  // Coordinator uses the offsets to resume streams elsewhere after a crash.
  SimTime progress_interval = SimTime::Seconds(2);
  // Delivery-path fidelity policy. default_mode == kPacket keeps every stream
  // on the bit-exact per-packet model (the chaos/HA configuration);
  // kFlow enables the hybrid: eligible steady-state streams promote to the
  // flow fast path after `fidelity.quiet_window` without interesting events.
  FidelityConfig fidelity;
  // Interval/prefix page-cache budget (DESIGN §5.6). Zero (the default)
  // disables the cache entirely, keeping default configurations byte-
  // identical to the pre-sharing behavior. Also reported to the Coordinator
  // at registration so its ledger can admit cache-fed trailing viewers.
  Bytes cache_memory;
  // Pages pinned per hot title when the Coordinator flags a start with
  // pin_prefix (the popularity-EWMA prefix cache).
  int64_t cache_prefix_pages = 4;
};

class Msu {
 public:
  Msu(Machine& machine, NetNode& node, MsuParams params = MsuParams());

  Msu(const Msu&) = delete;
  Msu& operator=(const Msu&) = delete;

  // Connects to the Coordinator and registers ("When the MSU becomes
  // available again, it contacts the Coordinator").
  // Coroutine parameters are by value (lazy start).
  Co<Status> RegisterWithCoordinator(std::string coordinator_node);

  // Local control surface (also reachable via the Coordinator RPCs / the
  // group's client VCR connection).
  Co<MessageBody> HandleStartStream(MsuStartStream request);
  Co<MessageBody> HandleVcr(VcrCommand command);

  // Background replica copy (rebalancing, DESIGN §5.8), driven by the
  // Coordinator over the registration connection. Prepare admits a read
  // slot on the source file's disk; Begin admits a write slot and starts
  // the paced pull; Abort stops either end (idempotent, unknown ops ack).
  MessageBody HandlePrepareCopy(const MsuPrepareCopy& request);
  MessageBody HandleBeginCopy(const MsuBeginCopy& request);
  MessageBody HandleAbortCopy(const MsuAbortCopy& request);
  // Copy ends still live on this MSU (source serves plus target pulls).
  int active_copy_count() const;

  MsuFileSystem& fs() { return fs_; }
  MsuPageCache& page_cache() { return page_cache_; }
  Machine& machine() { return *machine_; }
  NetNode& node() { return *node_; }
  Simulator& sim() { return machine_->sim(); }
  const MsuParams& params() const { return params_; }
  DutyCycleAllocator& duty_cycle() { return duty_cycle_; }
  ProtocolRegistry& protocols() { return protocols_; }

  // Crash / recovery for fault-tolerance experiments.
  void Crash();
  Co<Status> Restart(std::string coordinator_node);
  bool crashed() const { return crashed_; }

  // Aggregate stats over streams that ran (including finished ones).
  LatenessHistogram AggregateLateness() const;
  int active_stream_count() const;
  MsuStream* FindStream(StreamId id);

  // Visits every stream this MSU has served, live then finished, in stream-id
  // order (for ClusterReport assembly).
  void ForEachStream(const std::function<void(const MsuStream&, bool finished)>& fn) const;

  // Publishes per-MSU counters/gauges into `metrics` and stream/disk events
  // into `trace`. Either may be null (standalone construction in unit tests).
  void AttachObservability(MetricsRegistry* metrics, TraceRecorder* trace);

  // Windowed QoS sink for the continuous-telemetry sampler (null = no
  // sampler): every sent packet's lateness is recorded through it, from both
  // delivery fidelities.
  void set_qos_sink(QosAccumulator* qos) { qos_ = qos; }

  // Highest Coordinator HA epoch this MSU has registered under (0 until the
  // first registration against an HA coordinator).
  int64_t coordinator_epoch() const { return last_epoch_; }
  // Epoch -> coordinator host that claimed it. Survives Crash() (models a
  // small durable epoch file); the split-brain test uses it to prove at most
  // one primary was ever accepted per epoch.
  const std::map<int64_t, std::string>& coordinator_epochs() const { return epoch_hosts_; }

 private:
  friend class MsuStream;

  struct Group {
    Group() = default;

    GroupId id = 0;
    TcpConn* control_conn = nullptr;
    std::vector<StreamId> streams;
  };

  Task DiskProcess(int disk_index);
  Task ProgressReporter();
  // Retries registration in the background after the Coordinator connection
  // breaks (Coordinator crash or a long partition) until it succeeds or this
  // MSU itself crashes.
  void ScheduleReconnect();
  Task ReconnectLoop();
  Task FlushMetadataBehind();
  void OnStreamFinished(MsuStream* stream);
  void NotifyTermination(StreamTerminated note);
  // Drains unsent_notes_ over the coordinator connection, popping each note
  // only once the (current) primary acknowledged it — so terminations
  // in flight when a primary dies are redelivered to its successor.
  Task FlushTerminationNotes();
  // True if `epoch` (0 = HA disabled) is acceptable and records the
  // epoch->host claim; false means the command comes from a deposed primary
  // or a second claimant of an already-claimed epoch.
  bool AcceptEpoch(int64_t epoch, const std::string& host);
  // Next host to dial: cycles params_.coordinator_hosts, or repeats the
  // remembered host when no list is configured.
  std::string NextCoordinatorHost();
  Task QuitStaleStreams(std::vector<StreamId> stale);
  Co<void> EnsureControlConn(Group& group, std::string client_node, int control_port);
  // Sends the per-member StreamGroupInfo that tells a client its group is
  // live on this MSU (used for solo groups and each shared member's group).
  Co<void> SendGroupInfo(Group& group);
  // VCR op on a member of a shared stream with other members still attached:
  // settles the fan-out, detaches the member and hands it to the Coordinator
  // (SharedMemberSplit) to re-admit as a solo stream at the split offset.
  Co<MessageBody> SplitSharedMember(MsuStream& stream, GroupId group, VcrCommand command);
  // Detaches `group`'s member for a quit: emits its termination note and
  // stops the delivery stream when the last member leaves.
  Co<MessageBody> QuitSharedMember(MsuStream& stream, GroupId group);
  Task SendSplitToCoordinator(SharedMemberSplit split);
  // Termination bookkeeping for one shared member: its note to the
  // Coordinator, its group entry and control connection.
  void EmitMemberTermination(MsuStream& stream, const SharedMemberState& member);
  // Page-cache access with metric accounting. Lookup returns nullptr on a
  // miss (counted); Insert counts insertions and eviction deltas.
  const DataPage* CacheLookup(const std::string& file, size_t page_index);
  void CacheInsert(const std::string& file, size_t page_index, const DataPage* page);
  void OnMediaDatagram(const Datagram& datagram);
  // Interesting moment scoped to one disk (admission churn, disk fault):
  // demotes that disk's flow-mode streams back to the per-packet model.
  void NoteDiskInteresting(int disk_index);

  // --- Background replica copies (DESIGN §5.8) ---
  // Source end of one copy: serves ReplPullRequests while holding a
  // duty-cycle slot on the file's disk, so live service is never oversold
  // by replication reads.
  struct ReplicaSourceOp {
    ReplicaSourceOp() = default;

    int64_t op = 0;
    std::string file;
    int disk = 0;
    DataRate rate;
    bool slot_held = false;
  };
  // Target end of one copy: a paced pull in progress.
  struct ReplicaPullOp {
    ReplicaPullOp() = default;

    int64_t op = 0;
    std::string content;
    std::string source_node;
    int source_port = 0;
    std::string source_file;
    std::string replica_file;
    DataRate rate;
    int64_t page_count = 0;
    int disk = 0;
    bool slot_held = false;
    bool aborted = false;
    std::string abort_reason;
    TcpConn* conn = nullptr;
    Bytes bytes_copied;
    std::shared_ptr<const void> image;  // sealed IB-tree image off the last pull
  };
  // Paced pull loop for replica_pulls_[op_id]: one 256 KB page per
  // rate.TransferTime(page), landed on the local disk as it arrives and
  // committed via the deep-copied image on the last page. Re-looks the op
  // up after every await — aborts and crashes mutate the map underneath it.
  Task RunReplicaPull(int64_t op_id);
  // Stops a target-end pull: frees its duty slot immediately (preempting
  // callers need it synchronously) and flags the loop to roll back.
  void AbortPull(ReplicaPullOp& pull, std::string reason);
  // Frees the duty slot of one in-flight copy end on `disk_index` so a live
  // admission can take it; the copy aborts and the Coordinator reschedules.
  bool PreemptCopyOnDisk(int disk_index);
  // Serves one ReplPullRequest on the replica pull listener.
  Co<MessageBody> ServeReplicaPull(ReplPullRequest request);
  // Install/failure notes use the same queue-then-flush discipline as
  // unsent_notes_: queued until some primary acks, surviving failovers.
  void QueueReplNote(MessageBody note);
  Task FlushReplNotes();

  Machine* machine_;
  NetNode* node_;
  MsuParams params_;
  MsuFileSystem fs_;
  MsuPageCache page_cache_;
  DutyCycleAllocator duty_cycle_;
  ProtocolRegistry protocols_;
  Semaphore buffer_pool_;
  std::map<StreamId, std::unique_ptr<MsuStream>> streams_;
  std::map<StreamId, std::unique_ptr<MsuStream>> finished_streams_;
  std::map<GroupId, Group> groups_;
  std::vector<std::unique_ptr<Condition>> disk_work_;
  TcpConn* coordinator_conn_ = nullptr;
  std::string coordinator_host_;  // remembered for background reconnects
  bool reconnect_pending_ = false;
  bool crashed_ = false;
  // --- Coordinator HA state ---
  int64_t last_epoch_ = 0;                     // highest epoch registered under
  std::map<int64_t, std::string> epoch_hosts_; // epoch -> claiming host (durable)
  size_t host_index_ = 0;                      // redial rotation cursor
  // True once a registration succeeded while streams could be live: the next
  // registration is "warm" (keep ledger holds). Reset by Crash() — a cold
  // restart lost its streams, so the Coordinator must rebuild the account.
  bool warm_eligible_ = false;
  // Termination notes not yet acknowledged by a primary. Cleared by Crash()
  // (the MSU process died); otherwise drained by FlushTerminationNotes().
  std::deque<StreamTerminated> unsent_notes_;
  bool notes_flushing_ = false;
  // Background replica-copy state (DESIGN §5.8), keyed by Coordinator op id.
  std::map<int64_t, ReplicaSourceOp> replica_sources_;
  std::map<int64_t, ReplicaPullOp> replica_pulls_;
  std::deque<MessageBody> unsent_repl_notes_;
  bool repl_notes_flushing_ = false;
  StreamId next_local_stream_id_ = 1000000;  // for locally-initiated streams

  // Observability (null when not attached). Instrument pointers are cached
  // once at attach time so the per-packet path is a branch plus an add.
  MetricsRegistry* metrics_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  QosAccumulator* qos_ = nullptr;
  Counter* packets_sent_metric_ = nullptr;
  Counter* packets_late_metric_ = nullptr;
  Counter* buffer_stalls_metric_ = nullptr;
  Counter* blocks_read_metric_ = nullptr;
  Counter* blocks_written_metric_ = nullptr;
  Counter* ibtree_reads_metric_ = nullptr;
  Histogram* send_lateness_us_ = nullptr;
  // sim.flow.* counters are cluster-global (no per-MSU prefix): every MSU
  // attached to the registry shares them, and chaos/HA suites assert
  // sim.flow.chunks == 0 to prove the per-packet model ran pure.
  Counter* flow_chunks_metric_ = nullptr;
  Counter* flow_packets_metric_ = nullptr;
  Counter* flow_demotions_metric_ = nullptr;
  Counter* flow_promotions_metric_ = nullptr;
  Counter* flow_refills_metric_ = nullptr;
  // sim.cache.* counters are cluster-global like sim.flow.*: the sharing
  // suites assert on the aggregate interval/prefix hit mix.
  Counter* cache_interval_hits_metric_ = nullptr;
  Counter* cache_prefix_hits_metric_ = nullptr;
  Counter* cache_misses_metric_ = nullptr;
  Counter* cache_insertions_metric_ = nullptr;
  Counter* cache_evictions_metric_ = nullptr;
  // repl.* counters are cluster-global like sim.flow.*: the rebalance suites
  // assert on aggregate copy traffic across the whole fleet.
  Counter* repl_pages_metric_ = nullptr;
  Counter* repl_bytes_metric_ = nullptr;
  Counter* repl_installs_metric_ = nullptr;
  Counter* repl_aborts_metric_ = nullptr;
  Counter* repl_preempts_metric_ = nullptr;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_MSU_MSU_H_
