#include "src/msu/msu.h"

#include <utility>

#include "src/util/backoff.h"
#include "src/util/logging.h"

namespace calliope {

namespace {

std::vector<Disk*> MachineDisks(Machine& machine) {
  std::vector<Disk*> disks;
  for (size_t i = 0; i < machine.disk_count(); ++i) {
    disks.push_back(&machine.disk(i));
  }
  return disks;
}

}  // namespace

Msu::Msu(Machine& machine, NetNode& node, MsuParams params)
    : machine_(&machine),
      node_(&node),
      params_(params),
      fs_(MachineDisks(machine)),
      page_cache_(params.cache_memory),
      duty_cycle_(machine.params().disk, machine.params().hba, params.block_size,
                  static_cast<int>(machine.disk_count()), params.striped_layout),
      protocols_(ProtocolRegistry::WithBuiltins()),
      buffer_pool_(machine.sim(), params.buffer_count) {
  for (size_t d = 0; d < machine.disk_count(); ++d) {
    if (params_.elevator_scheduling) {
      machine.disk(d).set_discipline(DiskQueueDiscipline::kElevator);
    }
    // A degraded or failing disk is an interesting moment for every flow-mode
    // stream it serves: drop them back to the per-packet model, which is the
    // one whose fault behavior the chaos suites verify.
    machine.disk(d).set_fault_observer(
        [this, disk = static_cast<int>(d)](const DiskFault&) { NoteDiskInteresting(disk); });
    disk_work_.push_back(std::make_unique<Condition>(machine.sim()));
    DiskProcess(static_cast<int>(d));
  }
  (void)node_->BindUdp(params_.media_udp_port,
                       [this](const Datagram& datagram) { OnMediaDatagram(datagram); });
  // Replica pull listener (DESIGN §5.8): copy targets dial this port and pull
  // one page per request; the pull's duty slot was admitted at prepare time.
  (void)node_->ListenTcp(params_.replica_pull_port, [this](TcpConn* conn) {
    conn->set_request_handler([this](const MessageBody& body) -> Co<MessageBody> {
      if (const auto* pull = std::get_if<ReplPullRequest>(&body)) {
        co_return co_await ServeReplicaPull(*pull);
      }
      co_return MessageBody{SimpleResponse{false, "msu: not a replica pull"}};
    });
  });
  ProgressReporter();
}

void Msu::AttachObservability(MetricsRegistry* metrics, TraceRecorder* trace) {
  metrics_ = metrics;
  trace_ = trace;
  if (metrics_ == nullptr) {
    packets_sent_metric_ = nullptr;
    packets_late_metric_ = nullptr;
    buffer_stalls_metric_ = nullptr;
    blocks_read_metric_ = nullptr;
    blocks_written_metric_ = nullptr;
    ibtree_reads_metric_ = nullptr;
    send_lateness_us_ = nullptr;
    flow_chunks_metric_ = nullptr;
    flow_packets_metric_ = nullptr;
    flow_demotions_metric_ = nullptr;
    flow_promotions_metric_ = nullptr;
    flow_refills_metric_ = nullptr;
    cache_interval_hits_metric_ = nullptr;
    cache_prefix_hits_metric_ = nullptr;
    cache_misses_metric_ = nullptr;
    cache_insertions_metric_ = nullptr;
    cache_evictions_metric_ = nullptr;
    repl_pages_metric_ = nullptr;
    repl_bytes_metric_ = nullptr;
    repl_installs_metric_ = nullptr;
    repl_aborts_metric_ = nullptr;
    repl_preempts_metric_ = nullptr;
    return;
  }
  // Cluster-global fidelity counters (find-or-create: all MSUs share them).
  flow_chunks_metric_ = &metrics_->counter("sim.flow.chunks");
  flow_packets_metric_ = &metrics_->counter("sim.flow.packets");
  flow_demotions_metric_ = &metrics_->counter("sim.flow.demotions");
  flow_promotions_metric_ = &metrics_->counter("sim.flow.promotions");
  flow_refills_metric_ = &metrics_->counter("sim.flow.refills");
  // Cluster-global interval/prefix cache counters (DESIGN §5.6).
  cache_interval_hits_metric_ = &metrics_->counter("sim.cache.interval_hits");
  cache_prefix_hits_metric_ = &metrics_->counter("sim.cache.prefix_hits");
  cache_misses_metric_ = &metrics_->counter("sim.cache.misses");
  cache_insertions_metric_ = &metrics_->counter("sim.cache.insertions");
  cache_evictions_metric_ = &metrics_->counter("sim.cache.evictions");
  // Cluster-global background-replication counters (DESIGN §5.8).
  repl_pages_metric_ = &metrics_->counter("repl.pages_copied");
  repl_bytes_metric_ = &metrics_->counter("repl.bytes_copied");
  repl_installs_metric_ = &metrics_->counter("repl.installs");
  repl_aborts_metric_ = &metrics_->counter("repl.aborts");
  repl_preempts_metric_ = &metrics_->counter("repl.preemptions");
  const std::string prefix = "msu." + node_->name() + ".";
  packets_sent_metric_ = &metrics_->counter(prefix + "packets_sent");
  packets_late_metric_ = &metrics_->counter(prefix + "packets_late");
  buffer_stalls_metric_ = &metrics_->counter(prefix + "buffer_stalls");
  blocks_read_metric_ = &metrics_->counter(prefix + "blocks_read");
  blocks_written_metric_ = &metrics_->counter(prefix + "blocks_written");
  ibtree_reads_metric_ = &metrics_->counter(prefix + "ibtree_internal_reads");
  send_lateness_us_ = &metrics_->histogram(prefix + "send_lateness_us");
  metrics_->SetGaugeCallback(prefix + "streams.active",
                             [this] { return static_cast<int64_t>(streams_.size()); });
  for (size_t d = 0; d < machine_->disk_count(); ++d) {
    metrics_->SetGaugeCallback(prefix + "disk" + std::to_string(d) + ".slots", [this, d] {
      return static_cast<int64_t>(duty_cycle_.active_streams(static_cast<int>(d)));
    });
  }
}

Task Msu::DiskProcess(int disk_index) {
  // "The MSU services the customers for each disk in a round-robin fashion":
  // one block of service per stream per pass, in stream-id order.
  auto& work = *disk_work_[static_cast<size_t>(disk_index)];
  StreamId cursor = 0;
  for (;;) {
    MsuStream* chosen = nullptr;
    // Pick the first stream after `cursor` (wrapping) that needs service.
    for (int pass = 0; pass < 2 && chosen == nullptr; ++pass) {
      for (auto& [id, stream] : streams_) {
        const bool after_cursor = pass == 1 || id > cursor;
        if (after_cursor && stream->disk() == disk_index && stream->NeedsDiskService()) {
          chosen = stream.get();
          break;
        }
      }
    }
    if (chosen == nullptr) {
      co_await work.Wait();
      continue;
    }
    cursor = chosen->id();
    co_await chosen->ServiceDisk();
  }
}

void Msu::OnMediaDatagram(const Datagram& datagram) {
  if (crashed_) {
    return;
  }
  auto payload = std::static_pointer_cast<const MediaDatagramPayload>(datagram.payload);
  if (payload == nullptr) {
    return;
  }
  auto it = streams_.find(payload->stream);
  if (it == streams_.end()) {
    return;
  }
  it->second->OnRecordedPacket(payload->packet);
}

bool Msu::AcceptEpoch(int64_t epoch, const std::string& host) {
  if (epoch <= 0) {
    return true;  // HA disabled
  }
  if (epoch < last_epoch_) {
    return false;  // deposed primary
  }
  auto it = epoch_hosts_.find(epoch);
  if (it != epoch_hosts_.end() && it->second != host) {
    return false;  // a second coordinator claiming an already-claimed epoch
  }
  epoch_hosts_[epoch] = host;
  last_epoch_ = epoch;
  return true;
}

std::string Msu::NextCoordinatorHost() {
  if (params_.coordinator_hosts.empty()) {
    return coordinator_host_;
  }
  const std::string& host =
      params_.coordinator_hosts[host_index_ % params_.coordinator_hosts.size()];
  ++host_index_;
  return host;
}

Co<Status> Msu::RegisterWithCoordinator(std::string coordinator_node) {
  coordinator_host_ = coordinator_node;
  auto conn = co_await node_->ConnectTcp(coordinator_node, params_.coordinator_port);
  if (!conn.ok()) {
    co_return conn.status();
  }
  coordinator_conn_ = *conn;
  // "When the MSU becomes available again, it contacts the Coordinator" —
  // symmetrically, when the *Coordinator* comes back (after a crash or a
  // partition broke this connection) the MSU re-registers on its own.
  coordinator_conn_->set_close_handler([this](TcpConn* closed) {
    if (coordinator_conn_ == closed) {
      coordinator_conn_ = nullptr;
    }
    ScheduleReconnect();
  });
  coordinator_conn_->set_request_handler(
      [this, host = coordinator_node](const MessageBody& body) -> Co<MessageBody> {
        if (const auto* start = std::get_if<MsuStartStream>(&body)) {
          // Epoch fence: refuse data-path commands from a deposed primary.
          if (!AcceptEpoch(start->epoch, host)) {
            co_return MessageBody{MsuStartStreamResponse{false, "stale epoch"}};
          }
          co_return co_await HandleStartStream(*start);
        }
        if (const auto* del = std::get_if<MsuDeleteFile>(&body)) {
          if (!AcceptEpoch(del->epoch, host)) {
            co_return MessageBody{SimpleResponse{false, "stale epoch"}};
          }
          // The cache holds pointers into the file's page images; drop them
          // before the delete frees the backing store.
          page_cache_.InvalidateFile(del->file);
          const Status deleted = fs_.Delete(del->file);
          if (deleted.ok()) {
            FlushMetadataBehind();
          }
          co_return MessageBody{SimpleResponse{deleted.ok(), deleted.ok() ? "" : deleted.ToString()}};
        }
        if (const auto* prepare = std::get_if<MsuPrepareCopy>(&body)) {
          if (!AcceptEpoch(prepare->epoch, host)) {
            co_return MessageBody{MsuPrepareCopyResponse{false, "stale epoch"}};
          }
          co_return HandlePrepareCopy(*prepare);
        }
        if (const auto* begin = std::get_if<MsuBeginCopy>(&body)) {
          if (!AcceptEpoch(begin->epoch, host)) {
            co_return MessageBody{SimpleResponse{false, "stale epoch"}};
          }
          co_return HandleBeginCopy(*begin);
        }
        if (const auto* abort = std::get_if<MsuAbortCopy>(&body)) {
          if (!AcceptEpoch(abort->epoch, host)) {
            co_return MessageBody{SimpleResponse{false, "stale epoch"}};
          }
          co_return HandleAbortCopy(*abort);
        }
        co_return MessageBody{SimpleResponse{false, "msu: unexpected request"}};
      });

  MsuRegisterRequest reg;
  reg.msu_node = node_->name();
  reg.disk_count = static_cast<int>(machine_->disk_count());
  reg.free_space = fs_.TotalFreeSpace();
  reg.nic_bandwidth = machine_->fddi().params().wire_rate;
  reg.cache_memory = params_.cache_memory;
  reg.warm = warm_eligible_;
  if (reg.warm) {
    for (const auto& [id, stream] : streams_) {
      reg.active_streams.push_back(id);
    }
  }
  auto response = co_await coordinator_conn_->Call(MessageBody{std::move(reg)});
  if (!response.ok()) {
    co_return response.status();
  }
  bool ok = false;
  std::string error = "bad response type";
  int64_t epoch = 0;
  std::vector<StreamId> stale;
  if (const auto* full = std::get_if<MsuRegisterResponse>(&response->body)) {
    ok = full->ok;
    error = full->error;
    epoch = full->epoch;
    stale = full->stale_streams;
  } else if (const auto* simple = std::get_if<SimpleResponse>(&response->body)) {
    ok = simple->ok;
    error = simple->error;
  }
  const bool epoch_ok = ok && AcceptEpoch(epoch, coordinator_node);
  if (!ok || !epoch_ok) {
    // Drop the useless connection (a standby, a deposed primary, or an epoch
    // conflict) so the redial loop keeps cycling hosts instead of treating
    // the live-but-wrong connection as success.
    TcpConn* stale_conn = coordinator_conn_;
    coordinator_conn_ = nullptr;
    if (stale_conn != nullptr && !stale_conn->closed()) {
      stale_conn->Close();
    }
    if (!ok) {
      co_return InternalError("coordinator rejected registration: " + error);
    }
    co_return InternalError("coordinator epoch " + std::to_string(epoch) +
                            " is stale or conflicts (have " + std::to_string(last_epoch_) + ")");
  }
  // Streams the new primary does not know about (admitted by the old primary
  // but never replicated): quit them locally so the resources free up; their
  // termination notes are dropped by the Coordinator as unknown streams.
  if (!stale.empty()) {
    QuitStaleStreams(std::move(stale));
  }
  warm_eligible_ = true;
  // Terminations that went unacknowledged while no primary was reachable are
  // owed to the new one — and so are replica install/failure notes.
  FlushTerminationNotes();
  FlushReplNotes();
  co_return OkStatus();
}

Task Msu::QuitStaleStreams(std::vector<StreamId> stale) {
  for (StreamId id : stale) {
    auto it = streams_.find(id);
    if (it == streams_.end()) {
      continue;
    }
    CALLIOPE_LOG(kWarning, "msu") << node_->name() << ": quitting stale stream " << id
                                  << " (unknown to the new primary)";
    co_await it->second->Quit();
  }
}

Co<void> Msu::EnsureControlConn(Group& group, std::string client_node, int control_port) {
  if (group.control_conn != nullptr || control_port == 0) {
    co_return;
  }
  // "As soon as it is ready to deliver the content stream, the MSU
  // establishes a control stream (TCP connection) with the client."
  auto conn = co_await node_->ConnectTcp(client_node, control_port);
  if (!conn.ok()) {
    CALLIOPE_LOG(kWarning, "msu") << "control conn failed: " << conn.status().ToString();
    co_return;
  }
  group.control_conn = *conn;
  group.control_conn->set_request_handler(
      [this](const MessageBody& body) -> Co<MessageBody> {
        if (const auto* vcr = std::get_if<VcrCommand>(&body)) {
          co_return co_await HandleVcr(*vcr);
        }
        co_return MessageBody{VcrAck{false, "msu: not a vcr command"}};
      });
}

Co<void> Msu::SendGroupInfo(Group& group) {
  if (group.control_conn == nullptr || group.control_conn->closed()) {
    co_return;
  }
  StreamGroupInfo info;
  info.group = group.id;
  info.msu_node = node_->name();
  info.media_udp_port = params_.media_udp_port;
  for (size_t i = 0; i < group.streams.size(); ++i) {
    auto member_it = streams_.find(group.streams[i]);
    if (member_it == streams_.end()) {
      continue;
    }
    info.members.push_back(StreamGroupInfo::Member{
        group.streams[i], static_cast<int>(i),
        member_it->second->mode() == MsuStream::Mode::kRecord});
  }
  co_await group.control_conn->Send(Envelope{0, false, MessageBody{std::move(info)}});
}

Co<MessageBody> Msu::HandleStartStream(MsuStartStream request) {
  if (crashed_) {
    co_return MessageBody{MsuStartStreamResponse{false, "msu down"}};
  }
  auto protocol = protocols_.Instantiate(request.protocol);
  if (!protocol.ok()) {
    co_return MessageBody{MsuStartStreamResponse{false, protocol.status().ToString()}};
  }

  auto stream = std::make_unique<MsuStream>(*this, request, std::move(*protocol));

  // Attach or create the file and pick the disk.
  if (request.record) {
    const Bytes estimated = request.rate.BytesIn(request.estimated_length);
    auto file = fs_.Create(request.file, estimated, params_.striped_layout, request.disk_hint);
    if (!file.ok()) {
      co_return MessageBody{MsuStartStreamResponse{false, file.status().ToString()}};
    }
    stream->file_ = *file;
    stream->disk_ = (*file)->home_disk();
  } else {
    auto file = fs_.Lookup(request.file);
    if (!file.ok()) {
      co_return MessageBody{MsuStartStreamResponse{false, file.status().ToString()}};
    }
    if (!(*file)->committed()) {
      co_return MessageBody{MsuStartStreamResponse{false, "content still recording"}};
    }
    stream->file_ = *file;
    stream->disk_ = (*file)->home_disk();
    if (request.pin_prefix) {
      // Popularity-EWMA hot title: pin its first pages so every fresh viewer
      // reads the startup burst from memory.
      page_cache_.PinPrefix(request.file, params_.cache_prefix_pages);
    }
  }

  // Admission: one duty-cycle slot on the stream's disk. Cache-fed trailing
  // viewers skip admission — their reads are meant to come out of the
  // interval cache; a miss spills to disk unadmitted (counted in sim.cache).
  if (!stream->from_cache_) {
    Status admitted = duty_cycle_.Admit(stream->disk_, request.rate);
    if (!admitted.ok() && PreemptCopyOnDisk(stream->disk_)) {
      // A background replica copy held the last slot: the live viewer wins
      // (DESIGN §5.8 — replication must never displace real-time service).
      admitted = duty_cycle_.Admit(stream->disk_, request.rate);
    }
    if (!admitted.ok()) {
      if (request.record) {
        (void)fs_.Delete(request.file);
      }
      co_return MessageBody{MsuStartStreamResponse{false, admitted.ToString()}};
    }
  }
  // Double buffering: two large buffers per stream.
  if (!buffer_pool_.TryAcquire() ) {
    if (!stream->from_cache_) {
      duty_cycle_.Release(stream->disk_, request.rate);
    }
    co_return MessageBody{MsuStartStreamResponse{false, "out of stream buffers"}};
  }
  if (!buffer_pool_.TryAcquire()) {
    buffer_pool_.Release();
    if (!stream->from_cache_) {
      duty_cycle_.Release(stream->disk_, request.rate);
    }
    co_return MessageBody{MsuStartStreamResponse{false, "out of stream buffers"}};
  }

  // Admission churn is an interesting moment for the disk's existing
  // flow-mode streams: the new load changes contention, so they re-earn
  // their fast path through a fresh quiet window on the per-packet model.
  NoteDiskInteresting(stream->disk_);

  MsuStream* raw = stream.get();
  streams_[raw->id()] = std::move(stream);
  if (raw->shared()) {
    // Each member gets its own client-facing group entry, all pointing at the
    // one delivery stream so VCR commands find it. Snapshot the member list:
    // a VCR split arriving over an already-dialed member conn can mutate it
    // while a later member's conn is still being dialed.
    const std::vector<SharedMemberState> member_list = raw->members();
    for (const SharedMemberState& member : member_list) {
      auto& group = groups_[member.group];
      group.id = member.group;
      group.streams.assign(1, raw->id());
      // Members always get their own control conns (`open_control_conn`
      // refers to the delivery stream, which the Coordinator owns silently).
      co_await EnsureControlConn(group, member.client_node, member.client_control_port);
    }
  } else {
    auto& group = groups_[request.group];
    group.id = request.group;
    group.streams.push_back(raw->id());
    if (request.open_control_conn) {
      co_await EnsureControlConn(group, request.client_node, request.client_control_port);
    }
  }

  if (request.record) {
    raw->state_ = MsuStream::State::kRunning;
  } else {
    raw->PlaybackLoop();
    if (request.start_offset > SimTime()) {
      // Failover resume: jump to where the stream's previous MSU died. A
      // failed seek (corrupt tree, truncated file) falls back to the start.
      const Status seeked = co_await raw->SeekTo(request.start_offset);
      if (!seeked.ok()) {
        CALLIOPE_LOG(kWarning, "msu") << "start-offset seek failed: " << seeked.ToString();
      }
    }
    if (!request.start_paused) {
      (void)raw->Resume();  // kStarting -> kRunning; first slot fills the buffer
    }
  }

  // Tell the client the group is live (and, for recordings, where to send).
  if (raw->shared()) {
    // Per-member group info carrying the member's own stream id — the
    // client's arrival accounting is keyed by it, so a shared viewer looks
    // exactly like a solo one from the living-room end.
    const std::vector<SharedMemberState> member_list = raw->members();
    for (const SharedMemberState& member : member_list) {
      auto group_it = groups_.find(member.group);
      if (group_it == groups_.end() || group_it->second.control_conn == nullptr ||
          group_it->second.control_conn->closed()) {
        continue;
      }
      StreamGroupInfo info;
      info.group = member.group;
      info.msu_node = node_->name();
      info.media_udp_port = params_.media_udp_port;
      info.members.push_back(StreamGroupInfo::Member{member.stream, 0, false});
      co_await group_it->second.control_conn->Send(Envelope{0, false, MessageBody{std::move(info)}});
    }
  } else {
    auto group_it = groups_.find(request.group);
    if (group_it != groups_.end()) {
      co_await SendGroupInfo(group_it->second);
    }
  }
  co_return MessageBody{MsuStartStreamResponse{true, ""}};
}

namespace {

const char* VcrOpName(VcrCommand::Op op) {
  switch (op) {
    case VcrCommand::Op::kPlay:
      return "play";
    case VcrCommand::Op::kPause:
      return "pause";
    case VcrCommand::Op::kSeek:
      return "seek";
    case VcrCommand::Op::kFastForward:
      return "ff";
    case VcrCommand::Op::kFastBackward:
      return "fb";
    case VcrCommand::Op::kQuit:
      return "quit";
  }
  return "?";
}

}  // namespace

Co<MessageBody> Msu::HandleVcr(VcrCommand command) {
  if (trace_ != nullptr) {
    trace_->Instant(node_->name(), "msu", std::string("vcr:") + VcrOpName(command.op),
                    "group " + std::to_string(command.group));
  }
  auto group_it = groups_.find(command.group);
  if (group_it == groups_.end()) {
    co_return MessageBody{VcrAck{false, "no such stream group"}};
  }
  // A shared member's group maps to the delivery stream: route the op through
  // the sharing surface. Quit detaches the member; any other op with other
  // members still attached splits the member into its own solo stream; the
  // last member keeps the delivery stream and gets solo semantics in place.
  if (group_it->second.streams.size() == 1) {
    auto shared_it = streams_.find(group_it->second.streams.front());
    if (shared_it != streams_.end() && shared_it->second->shared()) {
      MsuStream& stream = *shared_it->second;
      if (stream.FindMember(command.group) == nullptr) {
        co_return MessageBody{VcrAck{false, "no such shared member"}};
      }
      if (command.op == VcrCommand::Op::kQuit) {
        co_return co_await QuitSharedMember(stream, command.group);
      }
      if (stream.members().size() > 1) {
        co_return co_await SplitSharedMember(stream, command.group, command);
      }
      // Sole remaining member: fall through and apply the op directly.
    }
  }
  // "All streams in a stream group are controlled by the same VCR commands."
  const std::vector<StreamId> members = group_it->second.streams;
  Status overall = OkStatus();
  for (StreamId id : members) {
    auto it = streams_.find(id);
    if (it == streams_.end()) {
      continue;
    }
    MsuStream& stream = *it->second;
    Status status = OkStatus();
    switch (command.op) {
      case VcrCommand::Op::kPlay:
        // NOTE: co_await must be a full statement (never nested in ternary
        // or argument expressions) — GCC 12 mishandles branch temporaries.
        if (stream.state() == MsuStream::State::kPaused ||
            stream.state() == MsuStream::State::kStarting) {
          status = stream.Resume();
        } else {
          status = co_await stream.SwitchVariant(MsuStream::Variant::kNormal);
        }
        break;
      case VcrCommand::Op::kPause:
        status = stream.Pause();
        break;
      case VcrCommand::Op::kSeek:
        status = co_await stream.SeekTo(command.seek_to);
        break;
      case VcrCommand::Op::kFastForward:
        status = co_await stream.SwitchVariant(MsuStream::Variant::kFastForward);
        break;
      case VcrCommand::Op::kFastBackward:
        status = co_await stream.SwitchVariant(MsuStream::Variant::kFastBackward);
        break;
      case VcrCommand::Op::kQuit:
        status = co_await stream.Quit();
        break;
    }
    if (!status.ok()) {
      overall = status;
    }
  }
  co_return MessageBody{VcrAck{overall.ok(), overall.ok() ? "" : overall.ToString()}};
}

Co<MessageBody> Msu::QuitSharedMember(MsuStream& stream, GroupId group) {
  // Settle first: any in-flight flow page ships to the current membership and
  // any packet fan-out completes, so the departing member's byte accounting
  // is complete at the detach point.
  stream.NoteInteresting();
  co_await stream.SettleFanout();
  if (stream.FindMember(group) == nullptr) {
    // Stream finished (or the member was already torn down) while settling.
    co_return MessageBody{VcrAck{true, ""}};
  }
  const SharedMemberState member = stream.DetachMember(group);
  EmitMemberTermination(stream, member);
  if (stream.members().empty()) {
    // Last viewer gone: the delivery stream has nobody to feed.
    co_await stream.Quit();
  }
  co_return MessageBody{VcrAck{true, ""}};
}

Co<MessageBody> Msu::SplitSharedMember(MsuStream& stream, GroupId group, VcrCommand command) {
  // Settle + demote before detaching: membership churn is an interesting
  // moment, and the split offset must account every byte already fanned out —
  // a detach mid-fan-out would re-deliver the record already on the wire.
  stream.NoteInteresting();
  co_await stream.SettleFanout();
  if (stream.FindMember(group) == nullptr) {
    // Stream finished while settling: the member's termination note has
    // already gone out, nothing left to split.
    co_return MessageBody{VcrAck{true, ""}};
  }
  const SharedMemberState member = stream.DetachMember(group);
  SharedMemberSplit split;
  split.msu_node = node_->name();
  split.delivery_stream = stream.id();
  split.member_stream = member.stream;
  split.group = member.group;
  split.media_offset = stream.CurrentMediaOffset();
  split.bytes_moved = member.bytes_moved;
  split.op = command.op;
  split.seek_to = command.seek_to;
  if (trace_ != nullptr) {
    trace_->Instant(node_->name(), "msu", "shared-split",
                    "group " + std::to_string(group) + " off stream " +
                        std::to_string(stream.id()));
  }
  SendSplitToCoordinator(std::move(split));
  // Drop the member's old group entry; the Coordinator's solo re-admission
  // dials the client a fresh control conn (the client treats it as a
  // migration). Deferred close so the VcrAck below still gets through.
  auto group_it = groups_.find(member.group);
  if (group_it != groups_.end()) {
    TcpConn* conn = group_it->second.control_conn;
    groups_.erase(group_it);
    if (conn != nullptr && !conn->closed()) {
      sim().ScheduleAfter(SimTime::Millis(20), [conn] { conn->Close(); });
    }
  }
  co_return MessageBody{VcrAck{true, ""}};
}

Task Msu::SendSplitToCoordinator(SharedMemberSplit split) {
  if (crashed_ || coordinator_conn_ == nullptr || coordinator_conn_->closed()) {
    // No primary reachable: the member's progress records let failover resume
    // it as a unique stream once a coordinator is back.
    co_return;
  }
  auto response = co_await coordinator_conn_->Call(MessageBody{std::move(split)});
  if (!response.ok()) {
    CALLIOPE_LOG(kWarning, "msu") << node_->name() << ": shared-member split lost: "
                                  << response.status().ToString();
  }
}

void Msu::EmitMemberTermination(MsuStream& stream, const SharedMemberState& member) {
  auto group_it = groups_.find(member.group);
  if (group_it != groups_.end()) {
    TcpConn* conn = group_it->second.control_conn;
    groups_.erase(group_it);
    if (conn != nullptr && !conn->closed()) {
      sim().ScheduleAfter(SimTime::Millis(20), [conn] { conn->Close(); });
    }
  }
  StreamTerminated note;
  note.stream = member.stream;
  note.group = member.group;
  note.file = stream.file_name();
  note.bytes_moved = member.bytes_moved;
  note.was_recording = false;
  note.disk = stream.disk();
  note.last_media_offset = stream.CurrentMediaOffset();
  NotifyTermination(std::move(note));
}

const DataPage* Msu::CacheLookup(const std::string& file, size_t page_index) {
  if (!page_cache_.enabled()) {
    return nullptr;
  }
  const MsuPageCache::LookupResult result = page_cache_.Lookup(file, page_index);
  if (result.page == nullptr) {
    if (cache_misses_metric_ != nullptr) {
      cache_misses_metric_->Add();
    }
    return nullptr;
  }
  if (result.kind == MsuPageCache::HitKind::kPrefix) {
    if (cache_prefix_hits_metric_ != nullptr) {
      cache_prefix_hits_metric_->Add();
    }
  } else if (cache_interval_hits_metric_ != nullptr) {
    cache_interval_hits_metric_->Add();
  }
  return result.page;
}

void Msu::CacheInsert(const std::string& file, size_t page_index, const DataPage* page) {
  if (!page_cache_.enabled()) {
    return;
  }
  const int64_t evictions_before = page_cache_.evictions();
  if (page_cache_.Insert(file, page_index, page) && cache_insertions_metric_ != nullptr) {
    cache_insertions_metric_->Add();
  }
  const int64_t evicted = page_cache_.evictions() - evictions_before;
  if (evicted > 0 && cache_evictions_metric_ != nullptr) {
    cache_evictions_metric_->Add(evicted);
  }
}

void Msu::NoteDiskInteresting(int disk_index) {
  for (auto& [id, stream] : streams_) {
    if (stream->disk() == disk_index && stream->mode() == MsuStream::Mode::kPlay) {
      stream->NoteInteresting();
    }
  }
}

void Msu::OnStreamFinished(MsuStream* stream) {
  auto it = streams_.find(stream->id());
  if (it == streams_.end()) {
    return;  // already finished
  }
  if (trace_ != nullptr) {
    trace_->Span(node_->name(), "msu",
                 (stream->mode() == MsuStream::Mode::kRecord ? "record:" : "play:") +
                     stream->file_name(),
                 stream->start_time(), "stream " + std::to_string(stream->id()) + " quiesced");
  }
  if (!stream->from_cache_) {
    duty_cycle_.Release(stream->disk(), stream->rate_);
  }
  buffer_pool_.Release();
  buffer_pool_.Release();

  // A shared delivery stream ending (end of content, data loss) takes its
  // remaining members with it: each gets its own termination note so the
  // Coordinator releases the member holds and the clients learn.
  if (stream->shared()) {
    for (const SharedMemberState& member : stream->members_) {
      EmitMemberTermination(*stream, member);
    }
    stream->members_.clear();
  }

  // Group bookkeeping: drop this member; tear down the control connection
  // when the last member ends.
  auto group_it = groups_.find(stream->group());
  if (group_it != groups_.end()) {
    auto& members = group_it->second.streams;
    members.erase(std::remove(members.begin(), members.end(), stream->id()), members.end());
    if (members.empty()) {
      // Defer the close: if this termination was triggered by a VCR "quit",
      // the acknowledgment still has to travel back over this connection.
      TcpConn* conn = group_it->second.control_conn;
      groups_.erase(group_it);
      if (conn != nullptr && !conn->closed()) {
        sim().ScheduleAfter(SimTime::Millis(20), [conn] { conn->Close(); });
      }
    }
  }

  // "After a 'quit' command from the client, the MSU informs the coordinator
  // that the stream has been terminated."
  StreamTerminated note;
  note.stream = stream->id();
  note.group = stream->group();
  note.file = stream->file_name();
  note.bytes_moved = stream->bytes_moved();
  note.was_recording = stream->mode() == MsuStream::Mode::kRecord;
  note.disk = stream->disk();
  if (note.was_recording && stream->file_ != nullptr && stream->file_->committed()) {
    note.record_committed = true;
    note.recorded_duration = stream->file_->image().duration();
  }
  if (!note.was_recording) {
    note.last_media_offset = stream->CurrentMediaOffset();
  }
  NotifyTermination(std::move(note));

  finished_streams_[stream->id()] = std::move(it->second);
  streams_.erase(it);
}

void Msu::NotifyTermination(StreamTerminated note) {
  // Queue-then-flush so a primary failover between the stream ending and the
  // note arriving cannot orphan the termination: the note stays queued until
  // some primary acknowledges it.
  unsent_notes_.push_back(std::move(note));
  FlushTerminationNotes();
}

Task Msu::FlushTerminationNotes() {
  if (notes_flushing_) {
    co_return;
  }
  notes_flushing_ = true;
  while (!unsent_notes_.empty() && !crashed_ && coordinator_conn_ != nullptr &&
         !coordinator_conn_->closed()) {
    StreamTerminated note = unsent_notes_.front();
    auto response = co_await coordinator_conn_->Call(MessageBody{std::move(note)});
    if (!response.ok()) {
      break;  // conn broke; the close handler's reconnect re-triggers a flush
    }
    const auto* ack = std::get_if<SimpleResponse>(&response->body);
    if (ack == nullptr || !ack->ok) {
      // "not primary": the coordinator stepped down between our registration
      // and this call. Keep the note queued, drop the stale connection and
      // redial until the new primary answers.
      TcpConn* stale = coordinator_conn_;
      coordinator_conn_ = nullptr;
      if (stale != nullptr && !stale->closed()) {
        stale->Close();
      }
      ScheduleReconnect();
      break;
    }
    unsent_notes_.pop_front();
  }
  notes_flushing_ = false;
}

MessageBody Msu::HandlePrepareCopy(const MsuPrepareCopy& request) {
  if (crashed_) {
    return MessageBody{MsuPrepareCopyResponse{false, "msu down"}};
  }
  if (replica_sources_.count(request.op) != 0) {
    return MessageBody{MsuPrepareCopyResponse{false, "op already prepared"}};
  }
  auto file = fs_.Lookup(request.file);
  if (!file.ok()) {
    return MessageBody{MsuPrepareCopyResponse{false, file.status().ToString()}};
  }
  if (!(*file)->committed()) {
    return MessageBody{MsuPrepareCopyResponse{false, "content still recording"}};
  }
  const int disk = (*file)->home_disk();
  // The copy reads like one extra viewer: it takes a real duty-cycle slot, so
  // a source too busy to serve another stream refuses the copy too and the
  // Coordinator retries from another replica (or next tick).
  if (Status admitted = duty_cycle_.Admit(disk, request.rate); !admitted.ok()) {
    return MessageBody{MsuPrepareCopyResponse{false, admitted.ToString()}};
  }
  ReplicaSourceOp source;
  source.op = request.op;
  source.file = request.file;
  source.disk = disk;
  source.rate = request.rate;
  source.slot_held = true;
  replica_sources_[request.op] = std::move(source);
  MsuPrepareCopyResponse response(true, "");
  response.disk = disk;
  response.page_count = static_cast<int64_t>((*file)->pages_written());
  // Block footprint, not payload: the target reserves whole 256 KB blocks.
  response.file_size = kDataPageSize * response.page_count;
  response.pull_port = params_.replica_pull_port;
  return MessageBody{std::move(response)};
}

Co<MessageBody> Msu::ServeReplicaPull(ReplPullRequest request) {
  ReplPullResponse response;
  if (crashed_) {
    response.error = "msu down";
    co_return MessageBody{std::move(response)};
  }
  auto it = replica_sources_.find(request.op);
  if (it == replica_sources_.end()) {
    response.error = "unknown copy op";
    co_return MessageBody{std::move(response)};
  }
  auto file = fs_.Lookup(it->second.file);
  if (!file.ok()) {
    response.error = file.status().ToString();
    co_return MessageBody{std::move(response)};
  }
  auto page = co_await fs_.ReadPage(*file, static_cast<size_t>(request.page_index));
  // The read may have raced an abort or crash; re-validate before answering.
  it = replica_sources_.find(request.op);
  if (crashed_ || it == replica_sources_.end()) {
    response.error = "copy aborted";
    co_return MessageBody{std::move(response)};
  }
  if (!page.ok()) {
    response.error = page.status().ToString();
    co_return MessageBody{std::move(response)};
  }
  response.ok = true;
  response.page_bytes = kDataPageSize;
  const int64_t page_total = static_cast<int64_t>((*file)->pages_written());
  if (request.page_index + 1 >= page_total) {
    response.last = true;
    // Deep copy: the image must not dangle if the source deletes the file
    // while the response is still on the wire.
    response.image = std::make_shared<const IbTreeFile>((*file)->image());
    // Source end done — the last page is served, free the read slot.
    if (it->second.slot_held) {
      duty_cycle_.Release(it->second.disk, it->second.rate);
    }
    replica_sources_.erase(it);
  }
  co_return MessageBody{std::move(response)};
}

MessageBody Msu::HandleBeginCopy(const MsuBeginCopy& request) {
  if (crashed_) {
    return MessageBody{SimpleResponse{false, "msu down"}};
  }
  if (replica_pulls_.count(request.op) != 0) {
    return MessageBody{SimpleResponse{true, ""}};  // duplicate: already running
  }
  auto file = fs_.Create(request.replica_file, request.estimated_size, false, request.disk_hint);
  if (!file.ok()) {
    return MessageBody{SimpleResponse{false, file.status().ToString()}};
  }
  const int disk = (*file)->home_disk();
  if (Status admitted = duty_cycle_.Admit(disk, request.rate); !admitted.ok()) {
    (void)fs_.Delete(request.replica_file);
    return MessageBody{SimpleResponse{false, admitted.ToString()}};
  }
  ReplicaPullOp pull;
  pull.op = request.op;
  pull.content = request.content;
  pull.source_node = request.source_node;
  pull.source_port = request.source_port;
  pull.source_file = request.source_file;
  pull.replica_file = request.replica_file;
  pull.rate = request.rate;
  pull.page_count = request.page_count;
  pull.disk = disk;
  pull.slot_held = true;
  replica_pulls_[request.op] = std::move(pull);
  RunReplicaPull(request.op);
  return MessageBody{SimpleResponse{true, ""}};
}

MessageBody Msu::HandleAbortCopy(const MsuAbortCopy& request) {
  auto pull_it = replica_pulls_.find(request.op);
  if (pull_it != replica_pulls_.end()) {
    AbortPull(pull_it->second, "aborted by coordinator");
    return MessageBody{SimpleResponse{true, ""}};
  }
  auto source_it = replica_sources_.find(request.op);
  if (source_it != replica_sources_.end()) {
    if (source_it->second.slot_held) {
      duty_cycle_.Release(source_it->second.disk, source_it->second.rate);
    }
    replica_sources_.erase(source_it);
  }
  return MessageBody{SimpleResponse{true, ""}};  // idempotent: unknown op acked
}

void Msu::AbortPull(ReplicaPullOp& pull, std::string reason) {
  if (pull.aborted) {
    return;
  }
  pull.aborted = true;
  pull.abort_reason = std::move(reason);
  if (pull.slot_held) {
    duty_cycle_.Release(pull.disk, pull.rate);
    pull.slot_held = false;
  }
  // A pending pull Call fails as the connection closes, waking the loop; a
  // loop asleep at its pace point notices `aborted` when the timer fires.
  if (pull.conn != nullptr && !pull.conn->closed()) {
    pull.conn->Close();
  }
}

bool Msu::PreemptCopyOnDisk(int disk_index) {
  for (auto& [op, pull] : replica_pulls_) {
    if (pull.disk == disk_index && pull.slot_held && !pull.aborted) {
      if (trace_ != nullptr) {
        trace_->Instant(node_->name(), "msu", "copy-preempt", "op " + std::to_string(op));
      }
      if (repl_preempts_metric_ != nullptr) {
        repl_preempts_metric_->Add();
      }
      AbortPull(pull, "preempted by live admission");
      return true;
    }
  }
  for (auto it = replica_sources_.begin(); it != replica_sources_.end(); ++it) {
    if (it->second.disk != disk_index || !it->second.slot_held) {
      continue;
    }
    // Killing the source serve (not just its slot): an unaccounted read
    // stream on a saturated disk is exactly what replication must never be.
    duty_cycle_.Release(it->second.disk, it->second.rate);
    if (trace_ != nullptr) {
      trace_->Instant(node_->name(), "msu", "copy-preempt",
                      "op " + std::to_string(it->first) + " (source)");
    }
    if (repl_preempts_metric_ != nullptr) {
      repl_preempts_metric_->Add();
    }
    ReplicaCopyFailed note;
    note.op = it->first;
    note.msu_node = node_->name();
    note.error = "preempted by live admission (copy source)";
    replica_sources_.erase(it);
    QueueReplNote(MessageBody{std::move(note)});
    return true;
  }
  return false;
}

Task Msu::RunReplicaPull(int64_t op_id) {
  // Immutable fields are copied out up front; everything mutable is
  // re-fetched after every await, because aborts, preemptions and crashes
  // mutate replica_pulls_ underneath the suspended loop.
  std::string source_node;
  int source_port = 0;
  DataRate rate;
  int64_t page_count = 0;
  {
    auto it = replica_pulls_.find(op_id);
    if (it == replica_pulls_.end()) {
      co_return;
    }
    source_node = it->second.source_node;
    source_port = it->second.source_port;
    rate = it->second.rate;
    page_count = it->second.page_count;
  }
  auto conn = co_await node_->ConnectTcp(source_node, source_port);
  {
    auto it = replica_pulls_.find(op_id);
    if (it == replica_pulls_.end()) {
      // Crashed away mid-dial; Restart() reclaims the partial file.
      if (conn.ok()) {
        (*conn)->Close();
      }
      co_return;
    }
    if (!conn.ok()) {
      it->second.aborted = true;
      it->second.abort_reason = "source dial failed: " + conn.status().ToString();
    } else {
      it->second.conn = *conn;
    }
  }
  const SimTime per_page = rate.TransferTime(kDataPageSize);
  SimTime next_due = sim().Now();
  for (int64_t page = 0; conn.ok() && page < page_count; ++page) {
    {
      auto it = replica_pulls_.find(op_id);
      if (it == replica_pulls_.end()) {
        co_return;
      }
      if (it->second.aborted) {
        break;
      }
    }
    ReplPullRequest pull_request;
    pull_request.op = op_id;
    pull_request.page_index = page;
    auto response = co_await (*conn)->Call(MessageBody{std::move(pull_request)});
    auto it = replica_pulls_.find(op_id);
    if (it == replica_pulls_.end()) {
      co_return;
    }
    if (it->second.aborted) {
      break;
    }
    if (!response.ok()) {
      it->second.aborted = true;
      it->second.abort_reason = "pull failed: " + response.status().ToString();
      break;
    }
    const auto* page_response = std::get_if<ReplPullResponse>(&response->body);
    if (page_response == nullptr || !page_response->ok) {
      it->second.aborted = true;
      it->second.abort_reason =
          page_response == nullptr ? "bad pull response" : page_response->error;
      break;
    }
    if (page_response->last) {
      it->second.image = page_response->image;
    }
    const Bytes page_bytes = page_response->page_bytes;
    // Land the page on the local disk (allocates the block and charges a
    // full-block write to the replica's home disk).
    auto lookup = fs_.Lookup(it->second.replica_file);
    if (!lookup.ok()) {
      it->second.aborted = true;
      it->second.abort_reason = lookup.status().ToString();
      break;
    }
    Status written = co_await fs_.WriteNextPage(*lookup, page);
    it = replica_pulls_.find(op_id);
    if (it == replica_pulls_.end()) {
      co_return;
    }
    if (it->second.aborted) {
      break;
    }
    if (!written.ok()) {
      it->second.aborted = true;
      it->second.abort_reason = written.ToString();
      break;
    }
    it->second.bytes_copied += page_bytes;
    if (repl_pages_metric_ != nullptr) {
      repl_pages_metric_->Add();
    }
    if (repl_bytes_metric_ != nullptr) {
      repl_bytes_metric_->Add(page_bytes.count());
    }
    // Pace to the background rate: the wire charge happened in the pull
    // response, this sleep keeps the long-run transfer at `rate` no matter
    // how fast the network is.
    next_due += per_page;
    if (sim().Now() < next_due) {
      const SimTime delay = next_due - sim().Now();
      co_await sim().Delay(delay);
    }
  }

  // Epilogue: install (image landed, not aborted) or roll the partial back.
  auto it = replica_pulls_.find(op_id);
  if (it == replica_pulls_.end()) {
    co_return;
  }
  ReplicaPullOp done = std::move(it->second);
  replica_pulls_.erase(it);
  if (done.conn != nullptr && !done.conn->closed()) {
    done.conn->Close();
  }
  if (done.slot_held) {
    duty_cycle_.Release(done.disk, done.rate);
  }
  bool installed = false;
  std::string error = done.abort_reason.empty() ? "copy failed" : done.abort_reason;
  if (!done.aborted && done.image != nullptr) {
    auto lookup = fs_.Lookup(done.replica_file);
    if (lookup.ok()) {
      IbTreeFile image = *std::static_pointer_cast<const IbTreeFile>(done.image);
      const Status committed = fs_.CommitRecording(*lookup, std::move(image));
      if (committed.ok()) {
        installed = true;
      } else {
        error = committed.ToString();
      }
    } else {
      error = lookup.status().ToString();
    }
  }
  if (installed) {
    FlushMetadataBehind();
    if (trace_ != nullptr) {
      trace_->Instant(node_->name(), "msu", "replica-install",
                      done.content + " op " + std::to_string(done.op));
    }
    if (repl_installs_metric_ != nullptr) {
      repl_installs_metric_->Add();
    }
    ReplicaInstalled note;
    note.op = done.op;
    note.msu_node = node_->name();
    note.content = done.content;
    note.file = done.replica_file;
    note.disk = done.disk;
    note.bytes_copied = done.bytes_copied;
    QueueReplNote(MessageBody{std::move(note)});
  } else {
    page_cache_.InvalidateFile(done.replica_file);
    (void)fs_.Delete(done.replica_file);
    FlushMetadataBehind();
    if (repl_aborts_metric_ != nullptr) {
      repl_aborts_metric_->Add();
    }
    CALLIOPE_LOG(kWarning, "msu") << node_->name() << ": replica copy " << done.op
                                  << " aborted: " << error;
    ReplicaCopyFailed note;
    note.op = done.op;
    note.msu_node = node_->name();
    note.error = error;
    QueueReplNote(MessageBody{std::move(note)});
  }
}

void Msu::QueueReplNote(MessageBody note) {
  // Same queue-then-flush discipline as termination notes: a failover
  // between the copy ending and the note arriving cannot orphan the result.
  unsent_repl_notes_.push_back(std::move(note));
  FlushReplNotes();
}

Task Msu::FlushReplNotes() {
  if (repl_notes_flushing_) {
    co_return;
  }
  repl_notes_flushing_ = true;
  while (!unsent_repl_notes_.empty() && !crashed_ && coordinator_conn_ != nullptr &&
         !coordinator_conn_->closed()) {
    MessageBody note = unsent_repl_notes_.front();
    auto response = co_await coordinator_conn_->Call(std::move(note));
    if (!response.ok()) {
      break;  // conn broke; the close handler's reconnect re-triggers a flush
    }
    const auto* ack = std::get_if<SimpleResponse>(&response->body);
    if (ack == nullptr || !ack->ok) {
      // "not primary": keep the note queued, drop the stale connection and
      // redial until the new primary answers (it learned the op from the
      // oplog shadow, or treats it as unknown and acks the cleanup).
      TcpConn* stale = coordinator_conn_;
      coordinator_conn_ = nullptr;
      if (stale != nullptr && !stale->closed()) {
        stale->Close();
      }
      ScheduleReconnect();
      break;
    }
    unsent_repl_notes_.pop_front();
  }
  repl_notes_flushing_ = false;
}

int Msu::active_copy_count() const {
  return static_cast<int>(replica_pulls_.size() + replica_sources_.size());
}

Task Msu::ProgressReporter() {
  // Periodically tells the Coordinator where each playback stream is in its
  // media, so failover can resume streams near the interruption point.
  for (;;) {
    co_await sim().Delay(params_.progress_interval);
    if (crashed_ || coordinator_conn_ == nullptr || coordinator_conn_->closed()) {
      continue;
    }
    StreamProgressReport report;
    report.msu_node = node_->name();
    for (const auto& [id, stream] : streams_) {
      if (stream->mode() != MsuStream::Mode::kPlay ||
          stream->state() == MsuStream::State::kStopped) {
        continue;
      }
      if (stream->shared()) {
        // Report each member under its own stream id: failover resumes the
        // members individually as unique streams, never the delivery stream.
        for (const SharedMemberState& member : stream->members()) {
          report.entries.push_back(
              StreamProgressReport::Entry{member.stream, stream->CurrentMediaOffset()});
        }
      } else {
        report.entries.push_back(StreamProgressReport::Entry{id, stream->CurrentMediaOffset()});
      }
    }
    if (report.entries.empty()) {
      continue;
    }
    co_await coordinator_conn_->Send(Envelope{0, false, MessageBody{std::move(report)}});
  }
}

void Msu::Crash() {
  crashed_ = true;
  if (trace_ != nullptr) {
    trace_->Instant(node_->name(), "msu", "crash",
                    std::to_string(streams_.size()) + " streams cut");
  }
  // Streams die with the process; content on disk survives. Their duty-cycle
  // slots and delivery buffers come back too — the allocator tables outlive
  // the crash, and a restarted MSU serving zero streams must not inherit
  // phantom slot holds (repeated crash cycles would strangle admission).
  for (auto& [id, stream] : streams_) {
    stream->StopInternal();
    if (!stream->from_cache_) {
      duty_cycle_.Release(stream->disk(), stream->rate_);
    }
    buffer_pool_.Release();
    buffer_pool_.Release();
    if (trace_ != nullptr) {
      trace_->Span(node_->name(), "msu",
                   (stream->mode() == MsuStream::Mode::kRecord ? "record:" : "play:") +
                       stream->file_name(),
                   stream->start_time(), "stream " + std::to_string(id) + " cut by crash");
    }
    finished_streams_[id] = std::move(stream);
  }
  streams_.clear();
  // Cached pages lived in the dead process's memory.
  page_cache_.Clear();
  for (auto& [id, group] : groups_) {
    (void)id;
    (void)group;  // conns break via the node going down
  }
  groups_.clear();
  node_->SetDown(true);
  coordinator_conn_ = nullptr;
  // In-flight replica copies die with the process: free their duty slots so
  // the restarted MSU's table starts clean for copies, and drop the op maps —
  // resumed pull loops see the missing op and just exit. Partial replica
  // files are uncommitted, so the Restart() sweep reclaims them.
  for (auto& [op, pull] : replica_pulls_) {
    (void)op;
    if (pull.slot_held) {
      duty_cycle_.Release(pull.disk, pull.rate);
    }
  }
  replica_pulls_.clear();
  for (auto& [op, source] : replica_sources_) {
    (void)op;
    if (source.slot_held) {
      duty_cycle_.Release(source.disk, source.rate);
    }
  }
  replica_sources_.clear();
  unsent_repl_notes_.clear();
  // The process died: queued termination notes and warm-registration
  // eligibility are gone. epoch_hosts_ survives (a tiny durable epoch file),
  // so a restarted MSU still fences deposed primaries.
  unsent_notes_.clear();
  warm_eligible_ = false;
}

void Msu::ScheduleReconnect() {
  if (crashed_ || reconnect_pending_) {
    return;
  }
  reconnect_pending_ = true;
  ReconnectLoop();
}

Task Msu::ReconnectLoop() {
  // Capped exponential backoff with seeded jitter: retries grow politely and
  // the fleet's redials do not synchronize, yet the schedule is a pure
  // function of the node name so runs stay bit-reproducible.
  BackoffParams backoff_params;
  backoff_params.initial = SimTime::Millis(200);
  backoff_params.max = SimTime::Seconds(2);
  Backoff backoff(backoff_params, std::hash<std::string>{}(node_->name()) ^ 0x5bd1e995ULL);
  for (;;) {
    {
      const SimTime delay = backoff.Next();
      co_await sim().Delay(delay);
    }
    if (crashed_) {
      break;
    }
    if (coordinator_conn_ != nullptr && !coordinator_conn_->closed()) {
      break;  // an explicit Restart() already re-registered
    }
    // Cycle the configured coordinator pair (warm-standby HA): whichever one
    // is the current primary accepts; the standby refuses and we move on.
    const Status registered = co_await RegisterWithCoordinator(NextCoordinatorHost());
    if (registered.ok()) {
      break;
    }
  }
  reconnect_pending_ = false;
}

Co<Status> Msu::Restart(std::string coordinator_node) {
  node_->SetDown(false);
  crashed_ = false;
  if (trace_ != nullptr) {
    trace_->Instant(node_->name(), "msu", "restart");
  }
  // Crash recovery: recordings interrupted by the crash left uncommitted
  // files whose data is unusable. Reclaim their space before reporting
  // capacity to the Coordinator, so its ledger matches reality.
  for (const std::string& name : fs_.ListFiles()) {
    auto file = fs_.Lookup(name);
    if (file.ok() && !(*file)->committed()) {
      page_cache_.InvalidateFile(name);
      (void)fs_.Delete(name);
    }
  }
  FlushMetadataBehind();
  const Status registered = co_await RegisterWithCoordinator(std::move(coordinator_node));
  if (!registered.ok()) {
    // The Coordinator may itself be down right now; keep dialing in the
    // background so the MSU rejoins once it answers again.
    ScheduleReconnect();
  }
  co_return registered;
}

Task Msu::FlushMetadataBehind() {
  // Write-behind of the file table; failures only matter on recovery and
  // the next mutation re-dirties the table anyway.
  co_await fs_.FlushMetadata();
}

LatenessHistogram Msu::AggregateLateness() const {
  LatenessHistogram total;
  for (const auto& [id, stream] : streams_) {
    total.Merge(stream->lateness());
  }
  for (const auto& [id, stream] : finished_streams_) {
    total.Merge(stream->lateness());
  }
  return total;
}

int Msu::active_stream_count() const { return static_cast<int>(streams_.size()); }

void Msu::ForEachStream(const std::function<void(const MsuStream&, bool finished)>& fn) const {
  for (const auto& [id, stream] : streams_) {
    fn(*stream, false);
  }
  for (const auto& [id, stream] : finished_streams_) {
    fn(*stream, true);
  }
}

MsuStream* Msu::FindStream(StreamId id) {
  auto it = streams_.find(id);
  if (it != streams_.end()) {
    return it->second.get();
  }
  auto fin = finished_streams_.find(id);
  return fin == finished_streams_.end() ? nullptr : fin->second.get();
}

}  // namespace calliope
