// Lock-free single-producer/single-consumer queue (§2.3).
//
// "Instead of using expensive semaphore operations, the MSU processes
// communicate using a shared memory queue structure that relies on the
// atomicity of memory read and write instructions to produce atomic enqueue
// and dequeue operations."
//
// A fixed-capacity ring buffer: the producer owns `head_`, the consumer owns
// `tail_`; each reads the other's index with acquire ordering and publishes
// its own with release ordering. Safe for exactly one producer thread and one
// consumer thread (unit-tested with real threads; the simulated MSU uses it
// single-threaded between its disk and network processes).
#ifndef CALLIOPE_SRC_MSU_SPSC_QUEUE_H_
#define CALLIOPE_SRC_MSU_SPSC_QUEUE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

namespace calliope {

template <typename T>
class SpscQueue {
 public:
  // Capacity must be a power of two (one slot is sacrificed to distinguish
  // full from empty).
  explicit SpscQueue(size_t capacity) : buffer_(capacity), mask_(capacity - 1) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when full.
  bool TryPush(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    buffer_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  // Consumer side. Empty optional when the queue is empty.
  std::optional<T> TryPop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    T value = std::move(buffer_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  bool Empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  size_t capacity() const { return buffer_.size() - 1; }

 private:
  std::vector<T> buffer_;
  const size_t mask_;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_MSU_SPSC_QUEUE_H_
