// Flow-fidelity delivery path (DESIGN.md §5.5).
//
// The per-packet model in stream.cc wakes the network process once per packet
// (a 10 ms coarse-timer sleep, per-packet CPU, one UDP send). For a
// steady-state constant-rate stream every one of those events is predictable
// from the page's delivery schedule, so the flow model advances the stream
// with ONE event per buffer refill: sleep to the front page's last deadline,
// charge the page's per-packet CPU in a lump, send one aggregate chunk, and
// synthesize the same byte/lateness accounting analytically
// (lateness_i = coarse_tick(deadline_i) - deadline_i).
//
// Anything interesting — a VCR op, admission churn on the disk, a disk
// fault, ENOBUFS, a stop — demotes the stream back to packet fidelity via
// NoteInteresting(), which first settles the in-flight page: records whose
// delivery instants have already passed are accounted and shipped, so the
// demotion loses nothing the per-packet model would have sent.
#include <algorithm>

#include "src/msu/msu.h"
#include "src/util/logging.h"

namespace calliope {

namespace {
// Chunk cap while a per-packet stream shares the MSU: one aggregated send
// then occupies the delivery wire for only a few packet times (8 records ≈
// 32 KB ≈ 3 ms on FDDI) instead of a whole page (≈ 21 ms), so the
// packet-fidelity neighbour never queues behind a page-sized frame.
constexpr size_t kFlowChunkRecordsShared = 8;
// "Unlimited" cap that still adds safely to a record index.
constexpr size_t kFlowChunkRecordsAlone = size_t{1} << 32;
}  // namespace

size_t MsuStream::FlowChunkCap() const {
  // When every co-resident stream is also in flow mode nobody can observe
  // per-packet wire interleave, and the whole page goes out as one frame —
  // the big event win. Any packet-fidelity neighbour (just admitted, mid-VCR,
  // demoted, recording) brings the cap down.
  for (const auto& [id, stream] : msu_->streams_) {
    if (stream.get() != this && stream->fidelity_ == Fidelity::kPacket &&
        stream->state_ != State::kStopped) {
      return kFlowChunkRecordsShared;
    }
  }
  return kFlowChunkRecordsAlone;
}

bool MsuStream::FlowEligible() const {
  // Steady-state playback with a computed (constant-rate) schedule and no
  // control-port interleave: the analytic model can reproduce exactly what
  // the per-packet loop would do. RTP-style protocols stay per-packet.
  if (mode_ != Mode::kPlay || state_ != State::kRunning || file_ == nullptr ||
      !protocol_->is_constant_rate() || protocol_->uses_control_port()) {
    return false;
  }
  // Content must remain: at end of content FlowStep hands back to the packet
  // loop, whose end-of-content break owns termination — promoting again there
  // would bounce straight back, at the same instant, forever.
  return !prefetched_.empty() || play_page_ < file_->image().page_count();
}

void MsuStream::MaybePromote() {
  if (msu_->params().fidelity.default_mode != Fidelity::kFlow ||
      fidelity_ == Fidelity::kFlow || !FlowEligible()) {
    return;
  }
  if (msu_->sim().Now() - last_interesting_ < msu_->params().fidelity.quiet_window) {
    return;
  }
  fidelity_ = Fidelity::kFlow;
  if (msu_->flow_promotions_metric_ != nullptr) {
    msu_->flow_promotions_metric_->Add();
  }
}

void MsuStream::NoteInteresting() {
  last_interesting_ = msu_->sim().Now();
  if (fidelity_ != Fidelity::kFlow) {
    return;
  }
  SettleFlowPage();
  fidelity_ = Fidelity::kPacket;
  if (msu_->flow_demotions_metric_ != nullptr) {
    msu_->flow_demotions_metric_->Add();
  }
  // Wake the flow sleep (it re-checks fidelity_) and put the stream back on
  // the round-robin disk process, which now owns its prefetching again.
  buffers_changed_.NotifyAll();
  msu_->disk_work_[static_cast<size_t>(disk_)]->NotifyAll();
}

std::shared_ptr<MediaDatagramPayload> MsuStream::BuildFlowChunk(size_t first, size_t limit,
                                                                Bytes* total_out) {
  const DataPage* page = prefetched_.front();
  auto payload = std::make_shared<MediaDatagramPayload>();
  payload->stream = id_;
  payload->seq = send_seq_;
  payload->flow_sent_at = msu_->sim().Now();
  payload->flow_count = static_cast<int64_t>(limit - first);
  payload->flow_records.reserve(limit - first);
  // Shared delivery accounts one sent packet per record per member — the
  // same counts the packet-mode fan-out loop produces.
  const size_t fanout = shared_ ? members_.size() : 1;
  Bytes total;
  for (size_t i = first; i < limit; ++i) {
    const MediaPacket& record = page->records[i];
    const SimTime deadline = base_ + (record.delivery_offset - origin_);
    // The per-packet loop would have slept to the coarse tick at/after the
    // deadline and sent there; the tick rounding dominates its lateness.
    const SimTime lateness = msu_->machine().timer().NextTickAtOrAfter(deadline) - deadline;
    payload->flow_records.push_back(
        MediaDatagramPayload::FlowRecord{deadline, record.delivery_offset, record.size});
    total += record.size;
    for (size_t f = 0; f < fanout; ++f) {
      AccountSentPacket(lateness);
    }
  }
  payload->deadline = payload->flow_records.front().deadline;
  payload->packet = page->records[first];
  send_seq_ += payload->flow_count;
  *total_out = total;
  return payload;
}

void MsuStream::SettleFlowPage() {
  if (!flow_page_in_flight_ || prefetched_.empty()) {
    return;
  }
  const DataPage* page = prefetched_.front();
  const SimTime now = msu_->sim().Now();
  size_t limit = play_record_;
  while (limit < page->records.size() &&
         base_ + (page->records[limit].delivery_offset - origin_) <= now) {
    ++limit;
  }
  if (limit == play_record_) {
    return;
  }
  const auto count = static_cast<int64_t>(limit - play_record_);
  Bytes total;
  auto payload = BuildFlowChunk(play_record_, limit, &total);
  play_record_ = limit;
  if (msu_->flow_chunks_metric_ != nullptr) {
    msu_->flow_chunks_metric_->Add();
    msu_->flow_packets_metric_->Add(count);
  }
  // Fire-and-forget: the records' delivery instants have already passed and
  // the caller (a VCR handler, the fault observer, StopInternal) must not
  // block on the chunk clearing the NIC.
  if (shared_) {
    for (SharedMemberState& member : members_) {
      auto clone = std::make_shared<MediaDatagramPayload>(*payload);
      clone->stream = member.stream;
      clone->seq = member.seq;
      member.seq += count;
      member.bytes_moved += total;
      member.packets_sent += count;
      [](Msu* msu, std::string dst, int port, Bytes size, int64_t n,
         std::shared_ptr<MediaDatagramPayload> chunk) -> Task {
        co_await msu->node().SendUdpFlow(std::move(dst), port, size, n, std::move(chunk));
      }(msu_, member.client_node, member.client_udp_port, total, count, std::move(clone));
    }
    return;
  }
  [](Msu* msu, std::string dst, int port, Bytes size, int64_t n,
     std::shared_ptr<MediaDatagramPayload> chunk) -> Task {
    co_await msu->node().SendUdpFlow(std::move(dst), port, size, n, std::move(chunk));
  }(msu_, client_node_, client_udp_port_, total, count, std::move(payload));
}

Co<void> MsuStream::FlowStep() {
  // Refill: one aggregate read of up to two pages ("deliver N bytes over the
  // service window") keeps the stream's footprint at the same two buffers the
  // admission test charged, while replacing two seeks with one.
  if (prefetched_.empty()) {
    if (file_ == nullptr || play_page_ >= file_->image().page_count()) {
      // End of content: hand back to the packet loop, whose end-of-content
      // break owns stream termination.
      fidelity_ = Fidelity::kPacket;
      co_return;
    }
    const size_t first = next_page_to_read_;
    const size_t want = std::min<size_t>(2, file_->image().page_count() - first);
    // Cache read-through mirrors ServiceDisk: consume the run of cached pages
    // from the cursor; the first miss falls back to one aggregate disk read.
    size_t cached_count = 0;
    while (cached_count < want) {
      const DataPage* cached = msu_->CacheLookup(file_->name(), first + cached_count);
      if (cached == nullptr) {
        break;
      }
      prefetched_.push_back(cached);
      ++cached_count;
    }
    if (cached_count > 0) {
      next_page_to_read_ += cached_count;
      bytes_moved_ += kDataPageSize * static_cast<int64_t>(cached_count);
      co_return;  // loop re-enters with (partially) full buffers
    }
    const SimTime service_start = msu_->sim().Now();
    auto pages = co_await msu_->fs().ReadPages(file_, first, want);
    if (state_ == State::kStopped) {
      co_return;
    }
    if (!pages.ok()) {
      if (pages.status().code() == StatusCode::kDataLoss) {
        CALLIOPE_LOG(kWarning, "msu") << "stream " << id_ << ": " << pages.status().ToString();
        StopInternal();
        msu_->OnStreamFinished(this);
        co_return;
      }
      // Transient read error: drop to packet fidelity and let the disk
      // process's retry semantics handle it.
      NoteInteresting();
      co_return;
    }
    if (first != next_page_to_read_) {
      co_return;  // a seek moved the cursor while the read was in flight
    }
    next_page_to_read_ += want;
    for (size_t i = 0; i < pages->size(); ++i) {
      msu_->CacheInsert(file_->name(), first + i, (*pages)[i]);
      prefetched_.push_back((*pages)[i]);
    }
    bytes_moved_ += kDataPageSize * static_cast<int64_t>(want);
    if (msu_->blocks_read_metric_ != nullptr) {
      msu_->blocks_read_metric_->Add(static_cast<int64_t>(want));
    }
    if (msu_->flow_refills_metric_ != nullptr) {
      msu_->flow_refills_metric_->Add();
    }
    if (msu_->trace_ != nullptr) {
      msu_->trace_->Span(msu_->node().name() + ".disk" + std::to_string(disk_), "msu",
                         "read-blocks", service_start, "stream " + std::to_string(id_));
    }
    co_return;  // loop re-enters with full buffers
  }

  const DataPage* page = prefetched_.front();
  if (play_record_ >= page->records.size()) {
    prefetched_.pop_front();
    ++play_page_;
    play_record_ = 0;
    co_return;
  }
  if (rebase_needed_) {
    origin_ = page->records[play_record_].delivery_offset;
    base_ = msu_->sim().Now();
    rebase_needed_ = false;
  }
  const SimTime last_deadline = base_ + (page->records.back().delivery_offset - origin_);
  const SimTime wake_at = msu_->machine().timer().NextTickAtOrAfter(last_deadline);
  const int64_t gen_before = position_gen_;
  // Interruptible sleep to the page's last deadline: ONE event per page
  // instead of one per packet. NoteInteresting() wakes it early via
  // buffers_changed_, and the cancelable wakeup leaves no stale timer event
  // behind when that happens.
  flow_page_in_flight_ = true;
  if (wake_at > msu_->sim().Now()) {
    EventToken wake =
        msu_->sim().ScheduleCancelableAt(wake_at, [this] { buffers_changed_.NotifyAll(); });
    while (msu_->sim().Now() < wake_at && state_ == State::kRunning &&
           position_gen_ == gen_before && fidelity_ == Fidelity::kFlow) {
      co_await buffers_changed_.Wait();
    }
    wake.Cancel();
  }
  // flow_page_in_flight_ stays set through the sends below: an interruption
  // while a chunk is on the wire settles the rest of the page (all its
  // deadlines have passed) instead of leaving it for the packet loop to send
  // as a late burst.
  if (state_ != State::kRunning || position_gen_ != gen_before ||
      fidelity_ != Fidelity::kFlow) {
    flow_page_in_flight_ = false;
    co_return;  // a VCR op / fault / demotion intervened (the page settled there)
  }
  co_await msu_->machine().cpu().Run(msu_->machine().cpu().params().timer_wakeup_compute, 0);
  if (state_ != State::kRunning || position_gen_ != gen_before ||
      fidelity_ != Fidelity::kFlow) {
    flow_page_in_flight_ = false;
    co_return;
  }
  // Batched per-packet bookkeeping: the same compute the packet loop charges,
  // paid in one lump at the page boundary. Eligibility implies a computed
  // constant-rate schedule, so there is no stored-schedule surcharge.
  co_await msu_->machine().cpu().Run(
      msu_->machine().cpu().params().msu_packet_compute *
          static_cast<int64_t>(page->records.size() - play_record_),
      0);
  // Chunked sends, each re-reading play_record_: SettleFlowPage may have
  // advanced it while a send (or the compute charge) was suspended.
  while (play_record_ < page->records.size() && state_ == State::kRunning &&
         position_gen_ == gen_before && fidelity_ == Fidelity::kFlow) {
    const size_t first_record = play_record_;
    const size_t limit = std::min(first_record + FlowChunkCap(), page->records.size());
    const auto count = static_cast<int64_t>(limit - first_record);
    Bytes total;
    auto payload = BuildFlowChunk(first_record, limit, &total);
    play_record_ = limit;
    if (msu_->flow_chunks_metric_ != nullptr) {
      msu_->flow_chunks_metric_->Add();
      msu_->flow_packets_metric_->Add(count);
    }
    if (shared_) {
      // Fan the chunk out per member in its own stream-id/sequence space.
      // Accounting commits before each send (the member pointer does not
      // survive the suspension); a split mid-fan-out settles the remainder
      // of the page through NoteInteresting, so nothing is double-sent.
      std::vector<StreamId> targets;
      targets.reserve(members_.size());
      for (const SharedMemberState& member : members_) {
        targets.push_back(member.stream);
      }
      for (StreamId target : targets) {
        SharedMemberState* member = FindMemberByStream(target);
        if (member == nullptr) {
          continue;  // split away while fanning out
        }
        auto clone = std::make_shared<MediaDatagramPayload>(*payload);
        clone->stream = target;
        clone->seq = member->seq;
        member->seq += count;
        member->bytes_moved += total;
        member->packets_sent += count;
        const std::string dst = member->client_node;
        const int port = member->client_udp_port;
        co_await msu_->node().SendUdpFlow(dst, port, total, count, std::move(clone));
        if (state_ != State::kRunning || position_gen_ != gen_before ||
            fidelity_ != Fidelity::kFlow) {
          break;
        }
      }
      continue;
    }
    // Blocking admission: pacing is already folded into the refill schedule,
    // so an ENOBUFS retries every 1 ms rather than dropping a whole page.
    co_await msu_->node().SendUdpFlow(client_node_, client_udp_port_, total, count,
                                      std::move(payload));
  }
  flow_page_in_flight_ = false;
}

}  // namespace calliope
