// Warm-standby Coordinator HA: configuration and roles.
//
// The primary Coordinator ships a deterministic operation log (session
// open/close, port registration, admission decisions, group/stream
// lifecycle, pending-queue changes, ledger deltas — see the ReplRecord
// variant in src/net/message.h) to a standby over the simulated network,
// Harp-style (Liskov et al., SOSP '91). The standby replays the records into
// shadow state, so on takeover it already holds every session, active
// stream, queued request and the full resource ledger: admitted streams keep
// playing, queued requests stay queued, in-flight recordings are not
// orphaned.
//
// Fencing is epoch-numbered and lease-based (Gray & Cheriton):
//   * Exactly one coordinator owns each epoch. MSUs and clients learn the
//     epoch when they register; MSUs refuse data-path commands stamped with
//     an older epoch, so a deposed primary cannot start or delete streams.
//   * In this simulator a TCP connection breaks only when a peer NODE dies
//     (partitions hold segments instead), so a broken replication conn is
//     proof of peer death: the primary continues solo, and a joined standby
//     promotes itself immediately.
//   * A silent-but-alive link means a partition. The primary steps down when
//     an append goes unacknowledged for `lease`; the standby promotes only
//     after `takeover_grace` > lease of silence. One simulation clock, so
//     the deposed primary is always fenced before the standby serves.
//   * Every externally visible mutation is acknowledged by the standby
//     before the client sees the response (synchronous log shipping); a
//     primary crash can only lose admissions the client was never told
//     about, which the MSU reconciliation sweep then garbage-collects.
//
// The HA member functions of Coordinator live in replication.cc.
#ifndef CALLIOPE_SRC_COORD_REPLICATION_H_
#define CALLIOPE_SRC_COORD_REPLICATION_H_

#include <string>

#include "src/util/units.h"

namespace calliope {

enum class HaRole { kPrimary, kStandby };

struct HaConfig {
  HaConfig() = default;

  bool enabled = false;
  std::string peer_node;  // the other coordinator's node
  int peer_port = 5000;   // its control listen port
  bool start_as_standby = false;
  // Maximum quiet gap between appends; empty batches double as heartbeats.
  SimTime heartbeat = SimTime::Millis(250);
  // An append unacknowledged this long deposes the primary (self-fencing).
  SimTime lease = SimTime::Millis(900);
  // A joined standby promotes itself after this much append silence. Must
  // exceed `lease` so the old primary always fences first.
  SimTime takeover_grace = SimTime::Millis(1500);
  // A standby that never receives a snapshot (no live primary anywhere, e.g.
  // both crashed before the first join) self-promotes after this long, two
  // epochs ahead so it can never collide with an unseen takeover.
  SimTime orphan_grace = SimTime::Seconds(4);
  // After takeover, MSUs that have not redialed the new primary within this
  // window are declared down and their groups failed over.
  SimTime msu_rejoin_grace = SimTime::Seconds(3);
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_COORD_REPLICATION_H_
