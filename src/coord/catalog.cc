#include "src/coord/catalog.h"

namespace calliope {

Catalog Catalog::WithStandardTypes() {
  Catalog catalog;
  // MPEG-1 system streams: constant 1.5 Mbit/s; bandwidth == storage rate.
  ContentType mpeg1;
  mpeg1.name = "mpeg1";
  mpeg1.protocol = "raw-cbr";
  mpeg1.bandwidth_rate = DataRate::MegabitsPerSec(1.5);
  mpeg1.storage_rate = DataRate::MegabitsPerSec(1.5);
  mpeg1.constant_rate = true;
  (void)catalog.AddType(std::move(mpeg1));
  // NV-style RTP video: bursty, reserve near the peak, store near the mean.
  ContentType rtp_video;
  rtp_video.name = "rtp-video";
  rtp_video.protocol = "rtp";
  rtp_video.bandwidth_rate = DataRate::KilobitsPerSec(1800);  // near the NV peak
  rtp_video.storage_rate = DataRate::KilobitsPerSec(700);
  (void)catalog.AddType(std::move(rtp_video));
  ContentType vat_audio;
  vat_audio.name = "vat-audio";
  vat_audio.protocol = "vat";
  vat_audio.bandwidth_rate = DataRate::KilobitsPerSec(80);
  vat_audio.storage_rate = DataRate::KilobitsPerSec(64);
  (void)catalog.AddType(std::move(vat_audio));
  ContentType seminar;
  seminar.name = "seminar";
  seminar.components = {"rtp-video", "vat-audio"};
  (void)catalog.AddType(std::move(seminar));
  return catalog;
}

Status Catalog::AddType(ContentType type) {
  if (types_.contains(type.name)) {
    return AlreadyExistsError("type exists: " + type.name);
  }
  for (const auto& component : type.components) {
    auto found = FindType(component);
    if (!found.ok()) {
      return found.status();
    }
    if ((*found)->is_composite()) {
      return InvalidArgumentError("composite types must be composed of atomic types: " +
                                  component);
    }
  }
  types_[type.name] = std::move(type);
  return OkStatus();
}

Result<const ContentType*> Catalog::FindType(const std::string& name) const {
  auto it = types_.find(name);
  if (it == types_.end()) {
    return NotFoundError("no such content type: " + name);
  }
  return &it->second;
}

Status Catalog::AddCustomer(Customer customer) {
  if (customers_.contains(customer.name)) {
    return AlreadyExistsError("customer exists: " + customer.name);
  }
  customers_[customer.name] = std::move(customer);
  return OkStatus();
}

Result<const Customer*> Catalog::Authenticate(const std::string& name,
                                              const std::string& credential) const {
  auto it = customers_.find(name);
  if (it == customers_.end() || it->second.credential != credential) {
    return PermissionDeniedError("bad customer name or credential");
  }
  return &it->second;
}

Status Catalog::AddContent(ContentRecord record) {
  if (content_.contains(record.name)) {
    return AlreadyExistsError("content exists: " + record.name);
  }
  content_[record.name] = std::move(record);
  return OkStatus();
}

Result<ContentRecord*> Catalog::FindContent(const std::string& name) {
  auto it = content_.find(name);
  if (it == content_.end()) {
    return NotFoundError("no such content: " + name);
  }
  return &it->second;
}

Result<const ContentRecord*> Catalog::FindContent(const std::string& name) const {
  auto it = content_.find(name);
  if (it == content_.end()) {
    return NotFoundError("no such content: " + name);
  }
  return &it->second;
}

Status Catalog::RemoveContent(const std::string& name) {
  if (content_.erase(name) == 0) {
    return NotFoundError("no such content: " + name);
  }
  return OkStatus();
}

std::vector<const ContentRecord*> Catalog::ListContent() const {
  std::vector<const ContentRecord*> records;
  records.reserve(content_.size());
  for (const auto& [name, record] : content_) {
    records.push_back(&record);
  }
  return records;
}

}  // namespace calliope
