// Warm-standby HA for the Coordinator: oplog shipping, epoch-fenced
// takeover, standby replay. See replication.h for the protocol overview.
#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/coord/coordinator.h"
#include "src/util/backoff.h"
#include "src/util/logging.h"

namespace calliope {

void Coordinator::StartHa() {
  oplog_cond_ = std::make_unique<Condition>(machine_->sim());
  flush_cond_ = std::make_unique<Condition>(machine_->sim());
  if (params_.ha.start_as_standby) {
    epoch_ = 0;  // learned from the primary's first snapshot
    BecomeStandby();
  } else {
    role_ = HaRole::kPrimary;
    epoch_ = 1;
    ReplicationLoop();
  }
}

void Coordinator::BecomeStandby() {
  role_ = HaRole::kStandby;
  joined_ = false;
  peer_joined_ = false;
  need_snapshot_ = true;
  pending_records_.clear();
  repl_conn_ = nullptr;
  standby_since_ = machine_->sim().Now();
  last_append_ = standby_since_;
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "standby",
                    "epoch " + std::to_string(epoch_));
  }
  StandbyWatchdog();
}

void Coordinator::LogRecord(ReplRecord record) {
  if (!params_.ha.enabled || role_ != HaRole::kPrimary || crashed_) {
    return;
  }
  if (!peer_joined_) {
    // No standby holds our snapshot; the next join's snapshot covers this
    // mutation, so buffering the delta would only duplicate it.
    need_snapshot_ = true;
    return;
  }
  pending_records_.push_back(std::move(record));
  ++oplog_appended_;
  oplog_cond_->NotifyAll();
}

Co<bool> Coordinator::SyncReplicate(int64_t target) {
  // Solo mode (peer dead, conn broken ⇒ node death in this simulator) waits
  // on nothing; a live standby must ack before the caller replies.
  while (!crashed_ && role_ == HaRole::kPrimary && peer_joined_ && oplog_acked_ < target) {
    co_await flush_cond_->Wait();
  }
  co_return !crashed_ && role_ == HaRole::kPrimary;
}

Task Coordinator::ReplicationLoop() {
  if (repl_loop_running_ || !params_.ha.enabled) {
    co_return;
  }
  repl_loop_running_ = true;
  BackoffParams backoff_params;
  backoff_params.initial = SimTime::Millis(50);
  backoff_params.max = params_.ha.heartbeat;
  Backoff backoff(backoff_params, std::hash<std::string>{}(node_->name()) ^ 0x9e3779b9ULL);
  while (!crashed_ && role_ == HaRole::kPrimary) {
    if (repl_conn_ == nullptr) {
      auto conn = co_await node_->ConnectTcp(params_.ha.peer_node, params_.ha.peer_port);
      if (crashed_ || role_ != HaRole::kPrimary) {
        break;
      }
      if (!conn.ok()) {
        const SimTime delay = backoff.Next();
        co_await machine_->sim().Delay(delay);
        continue;
      }
      backoff.Reset();
      repl_conn_ = *conn;
      repl_conn_->set_close_handler([this](TcpConn* closed) {
        if (closed != repl_conn_) {
          return;
        }
        // The standby node died; continue solo and re-snapshot on rejoin.
        repl_conn_ = nullptr;
        peer_joined_ = false;
        need_snapshot_ = true;
        if (flush_cond_ != nullptr) {
          flush_cond_->NotifyAll();
        }
      });
      need_snapshot_ = true;
    }

    ReplAppendRequest req;
    req.epoch = epoch_;
    req.next_session = next_session_;
    req.next_stream = next_stream_;
    req.next_group = next_group_;
    const bool snapshot = need_snapshot_;
    if (snapshot) {
      req.snapshot = true;
      req.first_seq = 0;
      req.records = BuildSnapshotRecords();
      pending_records_.clear();
    } else {
      req.first_seq = oplog_acked_ + 1;
      req.records = std::move(pending_records_);
      pending_records_.clear();
    }
    const int64_t batch_target = oplog_appended_;
    const size_t batch_size = req.records.size();
    TcpConn* conn = repl_conn_;
    auto response = co_await conn->Call(MessageBody{std::move(req)}, params_.ha.lease);
    if (crashed_ || role_ != HaRole::kPrimary) {
      break;
    }
    if (!response.ok()) {
      if (repl_conn_ == nullptr || conn->broken() || conn->closed()) {
        // Peer node death (the only way a conn breaks here): safe to serve
        // solo. The dropped batch is covered by the rejoin snapshot.
        repl_conn_ = nullptr;
        peer_joined_ = false;
        need_snapshot_ = true;
        flush_cond_->NotifyAll();
        const SimTime delay = backoff.Next();
        co_await machine_->sim().Delay(delay);
        continue;
      }
      // Silent-but-alive link: a partition. The standby may have applied our
      // snapshot without the ack reaching us, so it can promote — fence
      // ourself unconditionally. No split-brain: one primary per epoch.
      CALLIOPE_LOG(kWarning, "coord")
          << node_->name() << ": replication lease lost (partition?); stepping down";
      StepDown();
      break;
    }
    const auto* ack = std::get_if<ReplAppendResponse>(&response->body);
    if (ack == nullptr) {
      need_snapshot_ = true;
      continue;
    }
    if (!ack->ok) {
      if (ack->epoch > epoch_ || ack->error == "stale epoch") {
        CALLIOPE_LOG(kWarning, "coord")
            << node_->name() << ": deposed by epoch " << ack->epoch << "; stepping down";
        StepDown();
        break;
      }
      need_snapshot_ = true;  // "need snapshot": standby restarted unjoined
      continue;
    }
    last_ack_ = machine_->sim().Now();
    if (snapshot) {
      peer_joined_ = true;
      need_snapshot_ = false;
      if (trace_ != nullptr) {
        trace_->Instant(trace_track_, metrics_prefix_, "standby-joined",
                        std::to_string(batch_size) + " snapshot records");
      }
    }
    if (batch_target > oplog_acked_) {
      oplog_acked_ = batch_target;
    }
    flush_cond_->NotifyAll();
    if (repl_batches_ != nullptr) {
      repl_batches_->Add();
    }
    if (repl_records_shipped_ != nullptr && batch_size > 0) {
      repl_records_shipped_->Add(static_cast<int64_t>(batch_size));
    }
    if (pending_records_.empty() && !need_snapshot_) {
      // Idle: sleep until new records or the heartbeat deadline (empty
      // batches renew the standby's lease).
      const SimTime deadline = machine_->sim().Now() + params_.ha.heartbeat;
      EventToken token = machine_->sim().ScheduleCancelableAt(
          deadline, [this] { oplog_cond_->NotifyAll(); });
      co_await oplog_cond_->Wait();
      token.Cancel();
    }
  }
  repl_loop_running_ = false;
}

Task Coordinator::StandbyWatchdog() {
  if (standby_watchdog_running_ || !params_.ha.enabled) {
    co_return;
  }
  standby_watchdog_running_ = true;
  while (true) {
    co_await machine_->sim().Delay(params_.ha.heartbeat);
    if (crashed_ || role_ == HaRole::kPrimary) {
      break;
    }
    const SimTime now = machine_->sim().Now();
    if (joined_ && now - last_append_ > params_.ha.takeover_grace) {
      // The primary went silent past its lease; it has fenced itself by now
      // (takeover_grace > lease, one simulated clock).
      standby_watchdog_running_ = false;
      TakeOver(epoch_ + 1);
      co_return;
    }
    if (!joined_ && now - standby_since_ > params_.ha.orphan_grace) {
      // Never saw a primary: both coordinators may have crashed before the
      // first join. Promote two epochs ahead so this can never collide with
      // a peer's +1 takeover; a higher-epoch primary deposes a lower one
      // when the log channel connects.
      standby_watchdog_running_ = false;
      TakeOver(epoch_ + 2);
      co_return;
    }
  }
  standby_watchdog_running_ = false;
}

Co<MessageBody> Coordinator::HandleReplAppend(TcpConn* conn, const ReplAppendRequest& request) {
  ReplAppendResponse ack;
  ack.epoch = epoch_;
  if (!params_.ha.enabled) {
    ack.error = "ha disabled";
    co_return MessageBody{std::move(ack)};
  }
  co_await machine_->cpu().Run(params_.request_compute, 0);
  if (crashed_) {
    ack.error = "coordinator down";
    co_return MessageBody{std::move(ack)};
  }
  if (request.epoch < epoch_) {
    ack.error = "stale epoch";
    co_return MessageBody{std::move(ack)};
  }
  if (role_ == HaRole::kPrimary) {
    if (request.epoch == epoch_) {
      // Epoch allocation (+1/+2) makes two primaries on one epoch impossible;
      // an equal-epoch append is our own stale peer echoing back.
      ack.error = "stale epoch";
      co_return MessageBody{std::move(ack)};
    }
    // A higher-epoch primary exists — we were deposed without noticing
    // (e.g. healed partition). Fence first, then follow.
    CALLIOPE_LOG(kWarning, "coord")
        << node_->name() << ": saw primary with epoch " << request.epoch << "; stepping down";
    StepDown();
  }
  if (request.snapshot) {
    ResetVolatileState();
    for (const ReplRecord& record : request.records) {
      ApplyReplRecord(record);
    }
    joined_ = true;
  } else {
    if (!joined_) {
      ack.error = "need snapshot";
      co_return MessageBody{std::move(ack)};
    }
    for (const ReplRecord& record : request.records) {
      ApplyReplRecord(record);
    }
  }
  epoch_ = request.epoch;
  next_session_ = request.next_session;
  next_stream_ = request.next_stream;
  next_group_ = request.next_group;
  last_append_ = machine_->sim().Now();
  repl_in_conn_ = conn;
  StandbyWatchdog();  // no-op when already running
  ack.ok = true;
  ack.applied_seq = request.first_seq + static_cast<int64_t>(request.records.size()) - 1;
  ack.epoch = epoch_;
  co_return MessageBody{std::move(ack)};
}

void Coordinator::ApplyReplRecord(const ReplRecord& record) {
  // Replay is mechanical and defensive: unknown ids no-op, no placement, no
  // RPCs, and never a catalog write (the catalog is the shared durable
  // database — the primary already updated it).
  if (const auto* r = std::get_if<ReplSessionOpened>(&record)) {
    SessionInfo session;
    session.id = r->session;
    session.customer = r->customer;
    session.admin = r->admin;
    session.conn = nullptr;
    sessions_[r->session] = std::move(session);
    return;
  }
  if (const auto* r = std::get_if<ReplSessionClosed>(&record)) {
    sessions_.erase(r->session);
    return;
  }
  if (const auto* r = std::get_if<ReplPortRegistered>(&record)) {
    auto it = sessions_.find(r->session);
    if (it != sessions_.end()) {
      it->second.ports[r->port.name] = r->port;
    }
    return;
  }
  if (const auto* r = std::get_if<ReplPortUnregistered>(&record)) {
    auto it = sessions_.find(r->session);
    if (it != sessions_.end()) {
      it->second.ports.erase(r->port_name);
    }
    return;
  }
  if (const auto* r = std::get_if<ReplMsuUp>(&record)) {
    if (r->reattach) {
      ledger_.ReattachMsu(r->node, r->disk_count, r->free_space, r->nic_budget, r->cache_memory);
    } else {
      ledger_.RegisterMsu(r->node, r->disk_count, r->free_space, r->nic_budget, r->cache_memory);
    }
    MsuInfo& msu = msus_[r->node];
    msu.node = r->node;
    msu.conn = nullptr;  // the MSU dials the primary, never the standby
    return;
  }
  if (const auto* r = std::get_if<ReplMsuDown>(&record)) {
    auto it = msus_.find(r->node);
    if (it != msus_.end()) {
      it->second.conn = nullptr;
    }
    ledger_.MarkDown(r->node);
    // Stream teardown arrives as explicit ReplStreamEnded/ReplGroupEnded
    // records, so replay stays order-faithful to the primary.
    return;
  }
  if (const auto* r = std::get_if<ReplGroupStarted>(&record)) {
    std::vector<ResourceLedger::ReserveItem> items;
    for (const ReplStreamMember& member : r->members) {
      items.push_back(ResourceLedger::ReserveItem{member.disk, member.rate, member.space});
    }
    auto reservation = ledger_.Reserve(r->msu, std::move(items));
    if (reservation.ok()) {
      ResourceLedger::Txn txn = std::move(reservation).value();
      for (size_t i = 0; i < r->members.size(); ++i) {
        txn.Commit(i, r->members[i].stream);
      }
    }
    for (const ReplStreamMember& member : r->members) {
      ActiveStream active;
      active.id = member.stream;
      active.group = r->group;
      active.msu = r->msu;
      active.disk = member.disk;
      active.component = member.component;
      active.content_item = member.content_item;
      active.recording = member.recording;
      active.session = r->request.session;
      active.last_offset = member.offset;
      active_streams_[member.stream] = std::move(active);
      groups_[r->group].push_back(member.stream);
    }
    group_requests_[r->group] = r->request;
    DropInFlight(r->group);  // the retry the pop announced has landed
    return;
  }
  if (const auto* r = std::get_if<ReplStreamEnded>(&record)) {
    auto it = active_streams_.find(r->stream);
    if (it == active_streams_.end()) {
      return;
    }
    const GroupId group = it->second.group;
    active_streams_.erase(it);
    (void)ledger_.Release(r->stream, r->space_used);
    auto group_it = groups_.find(group);
    if (group_it != groups_.end()) {
      auto& members = group_it->second;
      members.erase(std::remove(members.begin(), members.end(), r->stream), members.end());
      // Group/bookkeeping erasure waits for the explicit ReplGroupEnded.
    }
    return;
  }
  if (const auto* r = std::get_if<ReplGroupEnded>(&record)) {
    groups_.erase(r->group);
    group_requests_.erase(r->group);
    return;
  }
  if (const auto* r = std::get_if<ReplPendingPushed>(&record)) {
    DropInFlight(r->request.group);  // an exhausted retry went back in line
    pending_.push_back(r->request);
    return;
  }
  if (const auto* r = std::get_if<ReplPendingPopped>(&record)) {
    // Don't forget the request yet: the primary popped it to retry, but may
    // die before logging the outcome. It parks in the in-flight list until a
    // ReplGroupStarted / ReplPendingPushed resolves it; takeover re-queues
    // whatever is still parked, so a crash mid-retry never loses a request
    // the client was told is queued.
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->group == r->group) {
        repl_in_flight_.push_back(std::move(*it));
        pending_.erase(it);
        break;
      }
    }
    return;
  }
  if (const auto* r = std::get_if<ReplReplicationStarted>(&record)) {
    ReplOp op;
    op.op = r->op;
    op.content = r->content;
    op.source_msu = r->source_msu;
    op.source_disk = r->source_disk;
    op.source_file = r->source_file;
    op.target_msu = r->target_msu;
    op.target_disk = r->target_disk;
    op.replica_file = r->replica_file;
    op.rate = r->rate;
    op.space = r->space;
    repl_ops_[r->op] = std::move(op);
    if (r->op >= next_repl_op_) {
      // Post-takeover mints must not collide with ops the MSUs still track.
      next_repl_op_ = r->op + 1;
    }
    (void)ledger_.AddReplication(r->op, r->source_msu, r->source_disk, r->rate);
    (void)ledger_.AddReplication(r->op, r->target_msu, r->target_disk, r->rate, r->space);
    return;
  }
  if (const auto* r = std::get_if<ReplReplicationEnded>(&record)) {
    (void)ledger_.ReleaseReplication(r->op, r->installed);
    repl_ops_.erase(r->op);
    return;
  }
  if (const auto* r = std::get_if<ReplProgress>(&record)) {
    for (const ReplProgress::Entry& entry : r->entries) {
      auto it = active_streams_.find(entry.stream);
      if (it != active_streams_.end()) {
        it->second.last_offset = entry.offset;
      }
    }
    return;
  }
}

std::vector<ReplRecord> Coordinator::BuildSnapshotRecords() const {
  std::vector<ReplRecord> records;
  // MSU accounts first: replayed group reservations need them in place.
  for (const auto& [name, account] : ledger_.msus()) {
    ReplMsuUp up;
    up.node = name;
    up.disk_count = account.disk_count;
    // Add back the space held by current-epoch streams: the standby's replay
    // of ReplGroupStarted re-debits it through Reserve.
    Bytes free = account.free_space;
    ledger_.ForEachHold([&](StreamId, const ResourceLedger::HoldInfo& hold) {
      if (hold.msu == name && hold.current_epoch) {
        free += hold.space;
      }
    });
    // Replication holds re-debit through the replayed ReplReplicationStarted.
    ledger_.ForEachReplication(
        [&](int64_t, const ResourceLedger::ReplicationHoldInfo& hold) {
          if (hold.msu == name && hold.current_epoch) {
            free += hold.space;
          }
        });
    up.free_space = free;
    up.nic_budget = account.nic_budget;
    up.cache_memory = account.cache_memory;
    up.reattach = false;
    records.push_back(ReplRecord{std::move(up)});
    if (!account.up) {
      ReplMsuDown down;
      down.node = name;
      records.push_back(ReplRecord{std::move(down)});
    }
  }
  for (const auto& [id, session] : sessions_) {
    ReplSessionOpened opened;
    opened.session = id;
    opened.customer = session.customer;
    opened.admin = session.admin;
    records.push_back(ReplRecord{std::move(opened)});
    for (const auto& [port_name, port] : session.ports) {
      ReplPortRegistered registered;
      registered.session = id;
      registered.port = port;
      records.push_back(ReplRecord{std::move(registered)});
    }
  }
  for (const auto& [group, request] : group_requests_) {
    ReplGroupStarted started;
    started.group = group;
    started.request = request;
    auto group_it = groups_.find(group);
    if (group_it != groups_.end()) {
      for (StreamId id : group_it->second) {
        auto stream_it = active_streams_.find(id);
        if (stream_it == active_streams_.end()) {
          continue;
        }
        const ActiveStream& active = stream_it->second;
        started.msu = active.msu;
        ReplStreamMember member;
        member.stream = id;
        member.disk = active.disk;
        member.component = active.component;
        member.content_item = active.content_item;
        member.recording = active.recording;
        auto hold = ledger_.FindHold(id);
        if (hold.has_value()) {
          member.rate = hold->rate;
          member.space = hold->space;
        }
        member.offset = active.last_offset;
        started.members.push_back(std::move(member));
      }
    }
    records.push_back(ReplRecord{std::move(started)});
  }
  for (const PendingRequest& request : pending_) {
    ReplPendingPushed pushed;
    pushed.request = request;
    records.push_back(ReplRecord{std::move(pushed)});
  }
  for (const auto& [op_id, op] : repl_ops_) {
    ReplReplicationStarted started;
    started.op = op_id;
    started.content = op.content;
    started.source_msu = op.source_msu;
    started.source_disk = op.source_disk;
    started.source_file = op.source_file;
    started.target_msu = op.target_msu;
    started.target_disk = op.target_disk;
    started.replica_file = op.replica_file;
    started.rate = op.rate;
    started.space = op.space;
    records.push_back(ReplRecord{std::move(started)});
  }
  return records;
}

void Coordinator::ResetVolatileState() {
  msus_.clear();
  sessions_.clear();
  conn_sessions_.clear();
  active_streams_.clear();
  groups_.clear();
  group_requests_.clear();
  pending_.clear();
  repl_in_flight_.clear();
  repl_ops_.clear();
  ledger_ = ResourceLedger();
}

void Coordinator::StepDown() {
  if (role_ != HaRole::kPrimary) {
    return;
  }
  // Flip the role first so OnConnClosed treats the closures below as
  // housekeeping, not MSU failures.
  role_ = HaRole::kStandby;
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "stepdown",
                    "epoch " + std::to_string(epoch_));
  }
  std::vector<TcpConn*> conns;
  for (auto& [name, msu] : msus_) {
    if (msu.conn != nullptr) {
      conns.push_back(msu.conn);
      msu.conn = nullptr;
    }
  }
  for (auto& [id, session] : sessions_) {
    if (session.conn != nullptr) {
      conns.push_back(session.conn);
      session.conn = nullptr;
    }
  }
  if (repl_conn_ != nullptr) {
    conns.push_back(repl_conn_);
    repl_conn_ = nullptr;
  }
  if (repl_in_conn_ != nullptr) {
    conns.push_back(repl_in_conn_);
    repl_in_conn_ = nullptr;
  }
  conn_sessions_.clear();
  for (TcpConn* conn : conns) {
    conn->Close();  // MSUs and clients redial and find the new primary
  }
  ResetVolatileState();  // the new primary's snapshot rebuilds our shadow
  peer_joined_ = false;
  pending_records_.clear();
  oplog_appended_ = 0;
  oplog_acked_ = 0;
  flush_cond_->NotifyAll();  // SyncReplicate waiters fail with "not primary"
  BecomeStandby();
}

void Coordinator::TakeOver(int64_t new_epoch) {
  if (crashed_ || role_ == HaRole::kPrimary) {
    return;
  }
  const SimTime now = machine_->sim().Now();
  const SimTime gap = now - last_append_;
  epoch_ = new_epoch;
  role_ = HaRole::kPrimary;
  joined_ = false;
  peer_joined_ = false;
  need_snapshot_ = true;
  pending_records_.clear();
  oplog_appended_ = 0;
  oplog_acked_ = 0;
  ++takeovers_count_;
  if (takeovers_metric_ != nullptr) {
    takeovers_metric_->Add();
  }
  if (takeover_gap_us_ != nullptr) {
    takeover_gap_us_->Record(gap.micros());
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "takeover",
                    "epoch " + std::to_string(new_epoch) + ", gap " +
                        std::to_string(gap.micros()) + "us");
  }
  CALLIOPE_LOG(kInfo, "coord") << node_->name() << ": taking over as primary, epoch "
                               << new_epoch << " (gap " << gap.micros() << "us)";
  if (repl_in_conn_ != nullptr) {
    TcpConn* conn = repl_in_conn_;
    repl_in_conn_ = nullptr;
    conn->Close();
  }
  ReplicationLoop();
  // Reconciliation sweep: MSUs that do not redial us within the grace window
  // are dead; their groups fail over to surviving replicas.
  for (const auto& [name, msu] : msus_) {
    machine_->sim().ScheduleAfter(params_.ha.msu_rejoin_grace, [this, node = name] {
      if (crashed_ || role_ != HaRole::kPrimary) {
        return;
      }
      auto it = msus_.find(node);
      if (it != msus_.end() && it->second.conn == nullptr && ledger_.IsUp(node)) {
        CALLIOPE_LOG(kWarning, "coord")
            << node_->name() << ": MSU " << node << " never rejoined after takeover";
        MarkMsuDown(it->second);
      }
    });
  }
  // Requests the old primary popped for a retry whose outcome never made the
  // log go back in line: better a duplicate failure notification than a
  // request the client believes is queued silently evaporating.
  for (PendingRequest& request : repl_in_flight_) {
    pending_.push_back(std::move(request));
  }
  repl_in_flight_.clear();
  // Groups whose MSU failover was in flight when the primary died: their
  // ReplStreamEnded records arrived but the restart on a survivor was never
  // logged. Re-run the failover pipeline for any group left with no streams.
  // (A normal quit logs StreamEnded + GroupEnded back-to-back in one batch,
  // so a member-less group here really is an interrupted failover.)
  std::vector<PendingRequest> orphaned;
  for (const auto& [group, request] : group_requests_) {
    auto members = groups_.find(group);
    if (members != groups_.end() && !members->second.empty()) {
      continue;
    }
    bool queued = false;
    for (const PendingRequest& waiting : pending_) {
      if (waiting.group == group) {
        queued = true;
        break;
      }
    }
    if (!queued) {
      orphaned.push_back(request);
    }
  }
  for (PendingRequest& request : orphaned) {
    CALLIOPE_LOG(kWarning, "coord") << node_->name() << ": group " << request.group
                                    << " was mid-failover at takeover; retrying";
    // Match MarkMsuDown's contract: failover owns the request, the stale
    // bookkeeping goes first.
    groups_.erase(request.group);
    group_requests_.erase(request.group);
    FailoverGroup(std::move(request));
  }
  // Queued requests survived the failover; try them against our ledger. The
  // replicated enqueue stamps survive too, so the new primary re-arms the
  // queue-deadline sweep over the inherited queue.
  ScheduleExpirySweep();
  RetryPendingQueue();
}

void Coordinator::DropInFlight(GroupId group) {
  for (auto it = repl_in_flight_.begin(); it != repl_in_flight_.end(); ++it) {
    if (it->group == group) {
      repl_in_flight_.erase(it);
      return;
    }
  }
}

}  // namespace calliope
