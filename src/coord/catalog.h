// The Coordinator's administrative database (§2.2): customers, content
// types, and the table of contents.
//
// Content types may be atomic (a protocol plus rates) or composite ("we have
// a VAT audio type, an RTP video type and a Seminar type composed of one VAT
// and one RTP stream"). Each type carries *separate* bandwidth and storage
// consumption rates: "The bandwidth consumption rate should be closer to the
// stream's peak rate and the storage consumption rate should be closer to
// the average rate" for variable-rate encodings.
#ifndef CALLIOPE_SRC_COORD_CATALOG_H_
#define CALLIOPE_SRC_COORD_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/units.h"

namespace calliope {

// NOTE: catalog structs declare constructors so they are not aggregates;
// GCC 12 miscompiles aggregate init/copies inside coroutine bodies (see
// src/sim/co.h).
struct ContentType {
  ContentType() = default;

  std::string name;
  // Atomic leaf:
  std::string protocol;     // MSU protocol module ("rtp", "vat", "raw-cbr")
  DataRate bandwidth_rate;  // reservation rate (nearer the peak for VBR)
  DataRate storage_rate;    // disk-space estimation rate (nearer the average)
  bool constant_rate = false;
  // Composite: names of component types (empty for atomic types).
  std::vector<std::string> components;

  bool is_composite() const { return !components.empty(); }
};

// Where one copy of an atomic content item lives.
struct ContentLocation {
  ContentLocation() = default;
  ContentLocation(std::string msu, int disk_index)
      : msu_node(std::move(msu)), disk(disk_index) {}

  std::string msu_node;
  int disk = 0;
  // MSU file holding this copy when it differs from the record's file_name
  // (same-MSU replicas on other disks need distinct file names).
  std::string file_name;
  // True for replicas installed online by the background rebalancer (DESIGN
  // §5.8). Dynamic copies carry no fast-scan variants — streams they serve
  // fall back to skip-mode scans — and they are the only copies the planner
  // may demote when the title goes cold.
  bool dynamic = false;
};

struct ContentRecord {
  ContentRecord() = default;

  std::string name;          // public name ("lecture42", or "lecture42.0" components)
  std::string type_name;     // atomic type of this item
  std::string file_name;     // MSU file-system name
  SimTime duration;
  std::vector<ContentLocation> locations;  // copies (usually one)
  std::string fast_forward_file;   // §2.3.1 filtered variants, if loaded
  std::string fast_backward_file;
  bool recording_in_progress = false;
  // For composite items: the component item names, in type order.
  std::vector<std::string> component_items;

  bool is_composite() const { return !component_items.empty(); }
  bool has_fast_scan() const { return !fast_forward_file.empty(); }
};

struct Customer {
  Customer() = default;
  Customer(std::string customer_name, std::string customer_credential, bool is_admin)
      : name(std::move(customer_name)),
        credential(std::move(customer_credential)),
        admin(is_admin) {}

  std::string name;
  std::string credential;
  bool admin = false;  // may delete content and load fast-scan variants
};

class Catalog {
 public:
  // Preloads the paper's standard types: vat, rtp, raw-cbr (MPEG-1 at
  // 1.5 Mbit/s) and the composite seminar = rtp + vat.
  static Catalog WithStandardTypes();

  Status AddType(ContentType type);
  Result<const ContentType*> FindType(const std::string& name) const;

  Status AddCustomer(Customer customer);
  Result<const Customer*> Authenticate(const std::string& name,
                                       const std::string& credential) const;

  Status AddContent(ContentRecord record);
  Result<ContentRecord*> FindContent(const std::string& name);
  Result<const ContentRecord*> FindContent(const std::string& name) const;
  Status RemoveContent(const std::string& name);
  std::vector<const ContentRecord*> ListContent() const;

 private:
  std::map<std::string, ContentType> types_;
  std::map<std::string, ContentRecord> content_;
  std::map<std::string, Customer> customers_;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_COORD_CATALOG_H_
