#include "src/coord/coordinator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/logging.h"

namespace calliope {

Coordinator::Coordinator(Machine& machine, NetNode& node, Catalog catalog,
                         CoordinatorParams params)
    : Coordinator(machine, node, std::make_shared<Catalog>(std::move(catalog)),
                  std::move(params)) {}

Coordinator::Coordinator(Machine& machine, NetNode& node, std::shared_ptr<Catalog> catalog,
                         CoordinatorParams params)
    : machine_(&machine), node_(&node), params_(params), catalog_(std::move(catalog)) {
  const PlacementPolicyRegistry registry = PlacementPolicyRegistry::WithBuiltins();
  auto policy = registry.Instantiate(params_.placement_policy, params_.placement_seed);
  if (!policy.ok()) {
    CALLIOPE_LOG(kWarning, "coord") << "unknown placement policy '" << params_.placement_policy
                                    << "', falling back to least-loaded";
    policy = registry.Instantiate("least-loaded", params_.placement_seed);
  }
  policy_ = std::move(policy).value();
  if (params_.sharing.enabled && params_.ha.enabled) {
    // Shared-group state is not replicated; a takeover would leak delivery
    // streams. Members still fail over fine as unique streams, so sharing
    // simply turns off rather than half-working.
    CALLIOPE_LOG(kWarning, "coord") << "stream sharing unsupported with HA; disabling sharing";
    params_.sharing.enabled = false;
    sharing_disabled_ha_ = true;
  }
  (void)node_->ListenTcp(params_.listen_port, [this](TcpConn* conn) { OnAccept(conn); });
  if (params_.ha.enabled) {
    StartHa();
  }
  if (params_.rebalance.enabled) {
    RebalanceLoop();
  }
  if (params_.traffic.enabled) {
    ShedGovernorLoop();
  }
}

void Coordinator::AttachObservability(MetricsRegistry* metrics, TraceRecorder* trace,
                                      std::string prefix) {
  metrics_ = metrics;
  trace_ = trace;
  metrics_prefix_ = std::move(prefix);
  trace_track_ = metrics_prefix_ == "coord" ? "coordinator" : metrics_prefix_;
  if (metrics_ == nullptr) {
    admit_accepted_ = nullptr;
    admit_rejected_ = nullptr;
    admit_queued_ = nullptr;
    failover_groups_ = nullptr;
    groups_formed_ = nullptr;
    groups_members_ = nullptr;
    groups_attaches_ = nullptr;
    groups_splits_ = nullptr;
    recordings_lost_ = nullptr;
    requests_lost_metric_ = nullptr;
    takeovers_metric_ = nullptr;
    repl_batches_ = nullptr;
    repl_records_shipped_ = nullptr;
    takeover_gap_us_ = nullptr;
    rebalance_ticks_ = nullptr;
    rebalance_copies_started_ = nullptr;
    rebalance_copies_installed_ = nullptr;
    rebalance_copies_aborted_ = nullptr;
    rebalance_preemptions_ = nullptr;
    rebalance_demotions_ = nullptr;
    requests_expired_metric_ = nullptr;
    for (int c = 0; c < kAdmissionClassCount; ++c) {
      class_accepted_[c] = nullptr;
      class_queued_[c] = nullptr;
      class_shed_[c] = nullptr;
      class_expired_[c] = nullptr;
    }
    shed_episodes_ = nullptr;
    shed_rejected_ = nullptr;
    shed_degraded_ = nullptr;
    shed_rebalance_paused_ = nullptr;
    return;
  }
  if (sharing_disabled_ha_) {
    // The constructor force-disabled sharing under HA: make the degradation
    // explicit in the metrics instead of silently serving unique streams.
    metrics_->counter(metrics_prefix_ + ".sharing.disabled_ha").Add();
  }
  admit_accepted_ = &metrics_->counter(metrics_prefix_ + ".admissions.accepted");
  admit_rejected_ = &metrics_->counter(metrics_prefix_ + ".admissions.rejected");
  admit_queued_ = &metrics_->counter(metrics_prefix_ + ".admissions.queued");
  requests_expired_metric_ = &metrics_->counter(metrics_prefix_ + ".requests.expired");
  failover_groups_ = &metrics_->counter(metrics_prefix_ + ".failover.groups");
  recordings_lost_ = &metrics_->counter(metrics_prefix_ + ".failover.recordings_lost");
  requests_lost_metric_ = &metrics_->counter(metrics_prefix_ + ".requests_lost");
  // Monotonic tally: published as a counter so per-window deltas read as a
  // request rate (the gauge shape it shipped with made deltas meaningless).
  metrics_->SetCounterCallback(metrics_prefix_ + ".requests.handled",
                               [this] { return requests_handled_; });
  metrics_->SetGaugeCallback(metrics_prefix_ + ".pending.depth",
                             [this] { return static_cast<int64_t>(pending_.size()); });
  metrics_->SetGaugeCallback(metrics_prefix_ + ".streams.active",
                             [this] { return static_cast<int64_t>(active_streams_.size()); });
  metrics_->SetGaugeCallback(metrics_prefix_ + ".msus.up", [this] {
    int64_t up = 0;
    for (const auto& [name, msu] : msus_) {
      if (ledger_.IsUp(name)) {
        ++up;
      }
    }
    return up;
  });
  if (params_.sharing.enabled) {
    groups_formed_ = &metrics_->counter(metrics_prefix_ + ".groups.formed");
    groups_members_ = &metrics_->counter(metrics_prefix_ + ".groups.members");
    groups_attaches_ = &metrics_->counter(metrics_prefix_ + ".groups.attaches");
    groups_splits_ = &metrics_->counter(metrics_prefix_ + ".groups.splits");
    metrics_->SetGaugeCallback(metrics_prefix_ + ".groups.active", [this] {
      return static_cast<int64_t>(shared_groups_.size());
    });
    metrics_->SetGaugeCallback(metrics_prefix_ + ".groups.hot_titles", [this] {
      int64_t hot = 0;
      for (const auto& [title, ewma] : popularity_) {
        if (IsHot(title)) {
          ++hot;
        }
      }
      return hot;
    });
  }
  if (params_.ha.enabled) {
    takeovers_metric_ = &metrics_->counter(metrics_prefix_ + ".ha.takeovers");
    repl_batches_ = &metrics_->counter(metrics_prefix_ + ".repl.batches");
    repl_records_shipped_ = &metrics_->counter(metrics_prefix_ + ".repl.records_shipped");
    takeover_gap_us_ = &metrics_->histogram(metrics_prefix_ + ".ha.takeover_gap_us");
    metrics_->SetGaugeCallback(metrics_prefix_ + ".ha.epoch", [this] { return epoch_; });
    metrics_->SetGaugeCallback(metrics_prefix_ + ".ha.role", [this] {
      return static_cast<int64_t>(role_ == HaRole::kPrimary ? 1 : 0);
    });
    metrics_->SetGaugeCallback(metrics_prefix_ + ".repl.lag_records",
                               [this] { return oplog_appended_ - oplog_acked_; });
    metrics_->SetGaugeCallback(metrics_prefix_ + ".repl.log_len", [this] {
      return static_cast<int64_t>(pending_records_.size());
    });
  }
  if (params_.rebalance.enabled) {
    rebalance_ticks_ = &metrics_->counter(metrics_prefix_ + ".rebalance.ticks");
    rebalance_copies_started_ = &metrics_->counter(metrics_prefix_ + ".rebalance.copies_started");
    rebalance_copies_installed_ =
        &metrics_->counter(metrics_prefix_ + ".rebalance.copies_installed");
    rebalance_copies_aborted_ = &metrics_->counter(metrics_prefix_ + ".rebalance.copies_aborted");
    rebalance_preemptions_ = &metrics_->counter(metrics_prefix_ + ".rebalance.preemptions");
    rebalance_demotions_ = &metrics_->counter(metrics_prefix_ + ".rebalance.demotions");
    metrics_->SetGaugeCallback(metrics_prefix_ + ".rebalance.active_copies", [this] {
      return static_cast<int64_t>(repl_ops_.size());
    });
  }
  if (params_.traffic.enabled) {
    for (int c = 0; c < kAdmissionClassCount; ++c) {
      const AdmissionClass klass = static_cast<AdmissionClass>(c);
      const std::string stem =
          metrics_prefix_ + ".admission." + AdmissionClassName(klass);
      class_accepted_[c] = &metrics_->counter(stem + ".accepted");
      class_queued_[c] = &metrics_->counter(stem + ".queued");
      class_shed_[c] = &metrics_->counter(stem + ".shed");
      class_expired_[c] = &metrics_->counter(stem + ".expired");
      metrics_->SetGaugeCallback(stem + ".depth", [this, klass] {
        return static_cast<int64_t>(pending_count_for(klass));
      });
    }
    shed_episodes_ = &metrics_->counter(metrics_prefix_ + ".shed.episodes");
    shed_rejected_ = &metrics_->counter(metrics_prefix_ + ".shed.rejected");
    shed_degraded_ = &metrics_->counter(metrics_prefix_ + ".shed.degraded");
    shed_rebalance_paused_ = &metrics_->counter(metrics_prefix_ + ".shed.rebalance_paused");
    metrics_->SetGaugeCallback(metrics_prefix_ + ".shed.active",
                               [this] { return shed_active_ ? int64_t{1} : int64_t{0}; });
  }
}

void Coordinator::RecordAdmission(const char* kind, const PendingRequest& request,
                                  const Status& outcome, SimTime start) {
  if (metrics_ != nullptr) {
    const size_t klass = static_cast<size_t>(request.admission_class);
    if (outcome.ok()) {
      admit_accepted_->Add();
      if (klass < kAdmissionClassCount && class_accepted_[klass] != nullptr) {
        class_accepted_[klass]->Add();
      }
    } else if (outcome.code() == StatusCode::kResourceExhausted) {
      admit_queued_->Add();
      if (klass < kAdmissionClassCount && class_queued_[klass] != nullptr) {
        class_queued_[klass]->Add();
      }
    } else {
      admit_rejected_->Add();
    }
  }
  if (trace_ != nullptr) {
    const char* verdict = outcome.ok() ? "accepted"
                          : outcome.code() == StatusCode::kResourceExhausted ? "queued"
                                                                             : "rejected";
    trace_->Span(trace_track_, metrics_prefix_, std::string("admit:") + kind, start,
                 request.content + " group " + std::to_string(request.group) + " " + verdict);
  }
}

void Coordinator::CountRequestLost(int64_t count) {
  if (count <= 0) {
    return;
  }
  requests_lost_count_ += count;
  if (requests_lost_metric_ != nullptr) {
    requests_lost_metric_->Add(count);
  }
}

void Coordinator::OnAccept(TcpConn* conn) {
  conn->set_request_handler(
      [this, conn](const MessageBody& body) -> Co<MessageBody> {
        co_return co_await Dispatch(conn, body);
      });
  conn->set_close_handler([this](TcpConn* closed) { OnConnClosed(closed); });
}

Co<MessageBody> Coordinator::Dispatch(TcpConn* conn, MessageArg request) {
  if (crashed_) {
    co_return MessageBody{SimpleResponse{false, "coordinator down"}};
  }
  const MessageBody& body = request.value;
  if (const auto* m = std::get_if<ReplAppendRequest>(&body)) {
    co_return co_await HandleReplAppend(conn, *m);
  }
  if (params_.ha.enabled && role_ != HaRole::kPrimary) {
    // Fencing: a standby serves nobody; callers redial the pair and find
    // whichever coordinator currently holds the primaryship.
    co_return MessageBody{SimpleResponse{false, "not primary"}};
  }
  // Every request consumes Coordinator CPU (the shared resource whose
  // capacity bounds system size, §3.3).
  co_await machine_->cpu().Run(params_.request_compute, 0);
  ++requests_handled_;

  const int64_t log_mark = oplog_appended_;
  MessageBody response{SimpleResponse{false, "coordinator: unknown request"}};
  if (const auto* open_req = std::get_if<OpenSessionRequest>(&body)) {
    response = co_await HandleOpenSession(conn, *open_req);
  } else if (const auto* list_req = std::get_if<ListContentRequest>(&body)) {
    response = co_await HandleListContent(*list_req);
  } else if (const auto* reg_req = std::get_if<RegisterPortRequest>(&body)) {
    response = co_await HandleRegisterPort(conn, *reg_req);
  } else if (const auto* unreg_req = std::get_if<UnregisterPortRequest>(&body)) {
    response = co_await HandleUnregisterPort(conn, *unreg_req);
  } else if (const auto* play_req = std::get_if<PlayRequest>(&body)) {
    response = co_await HandlePlay(conn, *play_req);
  } else if (const auto* record_req = std::get_if<RecordRequest>(&body)) {
    response = co_await HandleRecord(conn, *record_req);
  } else if (const auto* delete_req = std::get_if<DeleteContentRequest>(&body)) {
    response = co_await HandleDelete(conn, *delete_req);
  } else if (const auto* scan_req = std::get_if<LoadFastScanRequest>(&body)) {
    response = co_await HandleLoadFastScan(conn, *scan_req);
  } else if (const auto* msu_req = std::get_if<MsuRegisterRequest>(&body)) {
    response = co_await HandleMsuRegister(conn, *msu_req);
  } else if (const auto* note = std::get_if<StreamTerminated>(&body)) {
    HandleStreamTerminated(*note);
    response = MessageBody{SimpleResponse{true, ""}};
  } else if (const auto* split = std::get_if<SharedMemberSplit>(&body)) {
    response = co_await HandleSharedMemberSplit(*split);
  } else if (const auto* report = std::get_if<StreamProgressReport>(&body)) {
    HandleProgressReport(*report);
    response = MessageBody{SimpleResponse{true, ""}};
  } else if (const auto* installed = std::get_if<ReplicaInstalled>(&body)) {
    HandleReplicaInstalled(*installed);
    response = MessageBody{SimpleResponse{true, ""}};
  } else if (const auto* copy_failed = std::get_if<ReplicaCopyFailed>(&body)) {
    HandleReplicaCopyFailed(*copy_failed);
    response = MessageBody{SimpleResponse{true, ""}};
  }

  // Synchronous log shipping: no externally visible state change leaves here
  // before a joined standby acknowledges the records it produced. A primary
  // crash can then only lose admissions the caller was never told about.
  if (params_.ha.enabled && role_ == HaRole::kPrimary && oplog_appended_ > log_mark) {
    const bool flushed = co_await SyncReplicate(oplog_appended_);
    if (!flushed) {
      co_return MessageBody{SimpleResponse{false, "not primary"}};
    }
  }
  co_return response;
}

void Coordinator::Crash() {
  // The process dies with its in-memory scheduling state. The node goes down
  // first so the resulting connection breakage (including our own MSU conns)
  // is not misread as MSU failures needing failover.
  //
  // With a joined standby (or as a standby) the state survives on the peer;
  // otherwise every queued request is lost for good.
  const bool state_survives =
      params_.ha.enabled && (role_ == HaRole::kStandby || peer_joined_);
  if (!state_survives) {
    CountRequestLost(static_cast<int64_t>(pending_.size()));
  }
  crashed_ = true;
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "crash",
                    std::to_string(active_streams_.size()) + " streams forgotten");
  }
  node_->SetDown(true);
  msus_.clear();
  sessions_.clear();
  conn_sessions_.clear();
  active_streams_.clear();
  groups_.clear();
  group_requests_.clear();
  pending_.clear();
  expiry_token_.Cancel();
  expiry_armed_at_ = SimTime();
  shed_active_ = false;
  rebalance_paused_ = false;
  shared_groups_.clear();
  share_batches_.clear();
  popularity_.clear();
  popularity_bumped_.clear();
  repl_ops_.clear();  // in-flight copies are orphaned; MSUs finish or abort alone
  ledger_ = ResourceLedger();
  // HA volatile state dies with the process.
  repl_conn_ = nullptr;
  repl_in_conn_ = nullptr;
  joined_ = false;
  peer_joined_ = false;
  need_snapshot_ = true;
  pending_records_.clear();
  oplog_appended_ = 0;
  oplog_acked_ = 0;
  if (flush_cond_ != nullptr) {
    flush_cond_->NotifyAll();
  }
  if (oplog_cond_ != nullptr) {
    oplog_cond_->NotifyAll();
  }
}

void Coordinator::Restart() {
  if (params_.ha.enabled) {
    // The peer took over (or will, via the orphan grace); rejoin as its
    // standby and wait for a snapshot. No catalog scrub: in-progress
    // recordings now belong to the new primary and must not be corrupted.
    node_->SetDown(false);
    crashed_ = false;
    if (trace_ != nullptr) {
      trace_->Instant(trace_track_, metrics_prefix_, "restart", "rejoining as standby");
    }
    BecomeStandby();
    if (params_.rebalance.enabled) {
      RebalanceLoop();  // the crash broke the loop; it idles until primary
    }
    if (params_.traffic.enabled) {
      ShedGovernorLoop();  // likewise: idles until this node is primary
    }
    return;
  }
  // The catalog survived (the paper's durable database); scrub recordings
  // that were in progress at the crash — their streams are unknown now, so
  // they can never be sealed through this Coordinator.
  std::vector<std::string> aborted;
  for (const ContentRecord* record : catalog_->ListContent()) {
    if (record->recording_in_progress) {
      aborted.push_back(record->name);
    }
  }
  for (const std::string& name : aborted) {
    (void)catalog_->RemoveContent(name);
  }
  node_->SetDown(false);  // the TCP listener survives on the node
  crashed_ = false;
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "restart");
  }
  if (params_.rebalance.enabled) {
    RebalanceLoop();
  }
  if (params_.traffic.enabled) {
    ShedGovernorLoop();
  }
}

void Coordinator::OnConnClosed(TcpConn* conn) {
  if (crashed_) {
    return;  // connection breakage caused by our own crash
  }
  if (conn == repl_in_conn_) {
    // The primary's node died (a conn only breaks on peer-node death here).
    // A joined standby holds its full state and promotes immediately.
    repl_in_conn_ = nullptr;
    if (params_.ha.enabled && role_ == HaRole::kStandby && joined_) {
      TakeOver(epoch_ + 1);
    }
    return;
  }
  if (params_.ha.enabled && role_ != HaRole::kPrimary) {
    return;  // a standby tracks no live MSU or client connections
  }
  // A broken MSU connection marks the MSU unavailable (§2.2 fault tolerance).
  for (auto& [name, msu] : msus_) {
    if (msu.conn == conn && ledger_.IsUp(name)) {
      MarkMsuDown(msu);
      return;
    }
  }
  // A dropped client session deallocates its ports.
  auto it = conn_sessions_.find(conn);
  if (it != conn_sessions_.end()) {
    ReplSessionClosed closed;
    closed.session = it->second;
    sessions_.erase(it->second);
    conn_sessions_.erase(it);
    LogRecord(ReplRecord{std::move(closed)});
  }
}

Result<Coordinator::SessionInfo*> Coordinator::FindSession(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return NotFoundError("no such session: " + std::to_string(id));
  }
  return &it->second;
}

Co<MessageBody> Coordinator::HandleOpenSession(TcpConn* conn, const OpenSessionRequest& request) {
  auto customer = catalog_->Authenticate(request.customer, request.credential);
  if (!customer.ok()) {
    co_return MessageBody{OpenSessionResponse{false, customer.status().ToString(), 0}};
  }
  if (request.resume_session != 0) {
    // Failover redial: the session was replicated to us; rebind it to the
    // client's fresh connection instead of minting a new identity.
    auto it = sessions_.find(request.resume_session);
    if (it != sessions_.end() && it->second.customer == request.customer) {
      if (it->second.conn != nullptr) {
        conn_sessions_.erase(it->second.conn);
      }
      it->second.conn = conn;
      conn_sessions_[conn] = it->second.id;
      OpenSessionResponse resumed{true, "", it->second.id};
      resumed.epoch = params_.ha.enabled ? epoch_ : 0;
      co_return MessageBody{std::move(resumed)};
    }
  }
  const SessionId id = next_session_++;
  SessionInfo session;
  session.id = id;
  session.customer = request.customer;
  session.admin = (*customer)->admin;
  session.conn = conn;
  sessions_[id] = std::move(session);
  conn_sessions_[conn] = id;
  ReplSessionOpened opened;
  opened.session = id;
  opened.customer = request.customer;
  opened.admin = (*customer)->admin;
  LogRecord(ReplRecord{std::move(opened)});
  OpenSessionResponse response{true, "", id};
  response.epoch = params_.ha.enabled ? epoch_ : 0;
  co_return MessageBody{std::move(response)};
}

Co<MessageBody> Coordinator::HandleListContent(const ListContentRequest& request) {
  ListContentResponse response;
  auto session = FindSession(request.session);
  if (!session.ok()) {
    response.error = session.status().ToString();
    co_return MessageBody{std::move(response)};
  }
  response.ok = true;
  for (const ContentRecord* record : catalog_->ListContent()) {
    // Component items (parent.N) are internal; list only top-level entries.
    if (record->name.find('.') != std::string::npos) {
      continue;
    }
    ContentInfo info;
    info.name = record->name;
    info.type = record->type_name;
    info.duration = record->duration;
    info.has_fast_scan = record->has_fast_scan();
    response.items.push_back(std::move(info));
  }
  co_return MessageBody{std::move(response)};
}

Co<MessageBody> Coordinator::HandleRegisterPort(TcpConn* conn,
                                                const RegisterPortRequest& request) {
  auto session = FindSession(request.session);
  if (!session.ok()) {
    co_return MessageBody{SimpleResponse{false, session.status().ToString()}};
  }
  auto type = catalog_->FindType(request.type_name);
  if (!type.ok()) {
    co_return MessageBody{SimpleResponse{false, type.status().ToString()}};
  }
  if ((*session)->ports.contains(request.port_name)) {
    co_return MessageBody{SimpleResponse{false, "port exists: " + request.port_name}};
  }
  // Composite display ports are "constructed from previously-registered
  // display ports of the component types".
  if ((*type)->is_composite()) {
    if (request.component_ports.size() != (*type)->components.size()) {
      co_return MessageBody{
          SimpleResponse{false, "composite port needs " +
                                    std::to_string((*type)->components.size()) +
                                    " component ports"}};
    }
    for (size_t i = 0; i < (*type)->components.size(); ++i) {
      auto component = (*session)->ports.find(request.component_ports[i]);
      if (component == (*session)->ports.end()) {
        co_return MessageBody{
            SimpleResponse{false, "unknown component port: " + request.component_ports[i]}};
      }
      if (component->second.type_name != (*type)->components[i]) {
        co_return MessageBody{
            SimpleResponse{false, "component port " + request.component_ports[i] +
                                      " has type " + component->second.type_name +
                                      ", expected " + (*type)->components[i]}};
      }
    }
  }
  DisplayPort port;
  port.name = request.port_name;
  port.type_name = request.type_name;
  port.node = request.node;
  port.udp_port = request.udp_port;
  port.control_port = request.control_port;
  port.component_ports = request.component_ports;
  ReplPortRegistered registered;
  registered.session = request.session;
  registered.port = port;
  (*session)->ports[request.port_name] = std::move(port);
  LogRecord(ReplRecord{std::move(registered)});
  co_return MessageBody{SimpleResponse{true, ""}};
}

Co<MessageBody> Coordinator::HandleUnregisterPort(TcpConn* conn,
                                                  const UnregisterPortRequest& request) {
  auto session = FindSession(request.session);
  if (!session.ok()) {
    co_return MessageBody{SimpleResponse{false, session.status().ToString()}};
  }
  if ((*session)->ports.erase(request.port_name) == 0) {
    co_return MessageBody{SimpleResponse{false, "no such port: " + request.port_name}};
  }
  ReplPortUnregistered unregistered;
  unregistered.session = request.session;
  unregistered.port_name = request.port_name;
  LogRecord(ReplRecord{std::move(unregistered)});
  co_return MessageBody{SimpleResponse{true, ""}};
}

Result<std::vector<Coordinator::Component>> Coordinator::ResolveComponents(
    const PendingRequest& request, SessionInfo& session) {
  std::vector<Component> components;
  const DisplayPort& root = request.port;

  auto port_for = [&](size_t index, size_t total) -> Result<DisplayPort> {
    if (total == 1) {
      return root;
    }
    if (index >= root.component_ports.size()) {
      return InvalidArgumentError("composite port missing component " + std::to_string(index));
    }
    auto it = session.ports.find(root.component_ports[index]);
    if (it == session.ports.end()) {
      return NotFoundError("component port gone: " + root.component_ports[index]);
    }
    return it->second;
  };

  if (!request.record) {
    CALLIOPE_ASSIGN_OR_RETURN(const ContentRecord* record,
                              catalog_->FindContent(request.content));
    if (record->recording_in_progress) {
      return FailedPreconditionError("content still being recorded: " + request.content);
    }
    if (record->type_name != root.type_name) {
      return InvalidArgumentError("content type " + record->type_name +
                                  " does not match port type " + root.type_name);
    }
    std::vector<std::string> items =
        record->is_composite() ? record->component_items : std::vector<std::string>{record->name};
    for (size_t i = 0; i < items.size(); ++i) {
      CALLIOPE_ASSIGN_OR_RETURN(const ContentRecord* item, catalog_->FindContent(items[i]));
      CALLIOPE_ASSIGN_OR_RETURN(DisplayPort port, port_for(i, items.size()));
      components.push_back(Component{item->name, item->file_name, item->type_name, port});
    }
    return components;
  }

  // Recording: items do not exist yet.
  CALLIOPE_ASSIGN_OR_RETURN(const ContentType* type, catalog_->FindType(request.type_name));
  if (type->name != root.type_name) {
    return InvalidArgumentError("record type " + type->name + " does not match port type " +
                                root.type_name);
  }
  const std::vector<std::string> leaf_types =
      type->is_composite() ? type->components : std::vector<std::string>{type->name};
  for (size_t i = 0; i < leaf_types.size(); ++i) {
    CALLIOPE_ASSIGN_OR_RETURN(DisplayPort port, port_for(i, leaf_types.size()));
    const std::string item_name = leaf_types.size() == 1
                                      ? request.content
                                      : request.content + "." + std::to_string(i);
    components.push_back(Component{item_name, item_name + ".dat", leaf_types[i], port});
  }
  return components;
}

Result<PlacementSpec> Coordinator::BuildPlacementSpec(
    const PendingRequest& request, const std::vector<Component>& components) {
  PlacementSpec spec;
  spec.record = request.record;
  spec.disk_budget = params_.disk_budget;
  spec.prefer_msu = request.prefer_msu;
  for (const Component& component : components) {
    CALLIOPE_ASSIGN_OR_RETURN(const ContentType* type, catalog_->FindType(component.type_name));
    ComponentSpec item;
    item.rate = type->bandwidth_rate;
    item.file_name = component.file_name;
    if (request.record) {
      item.space = type->storage_rate.BytesIn(request.estimated_length);
    } else {
      // Every copy of the item is a candidate; the policy filters by MSU. An
      // item with no reachable copy leaves the component candidate-less, so
      // no MSU is feasible and the request queues (kResourceExhausted) until
      // a copy comes back — the behavior this path has always had.
      auto record = catalog_->FindContent(component.item_name);
      if (record.ok()) {
        for (const ContentLocation& location : (*record)->locations) {
          item.candidates.push_back(
              PlacementCandidate{location.msu_node, location.disk, location.file_name});
        }
      }
    }
    spec.components.push_back(std::move(item));
  }
  return spec;
}

Co<Status> Coordinator::TryStartGroup(const PendingRequest& request) {
  auto session = FindSession(request.session);
  if (!session.ok()) {
    co_return session.status();
  }
  auto resolved = ResolveComponents(request, **session);
  if (!resolved.ok()) {
    co_return resolved.status();
  }
  const std::vector<Component>& components = *resolved;

  // Placement: one MSU must host every member of the group ("Calliope
  // assigns all streams in a group to the same MSU"); which feasible MSU
  // wins is the pluggable policy's call.
  auto spec = BuildPlacementSpec(request, components);
  if (!spec.ok()) {
    co_return spec.status();
  }
  auto placement = policy_->Place(*spec, ledger_);
  if (!placement.ok() && placement.status().code() == StatusCode::kResourceExhausted &&
      !repl_ops_.empty()) {
    // Live admissions outrank background copies (DESIGN §5.8): abort every
    // in-flight copy touching a candidate MSU, then re-run placement once
    // against the freed bandwidth.
    std::vector<int64_t> preempt;
    for (const auto& [op_id, op] : repl_ops_) {
      bool overlaps = spec->record;  // recordings may land on any MSU
      for (const ComponentSpec& component : spec->components) {
        for (const PlacementCandidate& candidate : component.candidates) {
          if (candidate.msu == op.source_msu || candidate.msu == op.target_msu) {
            overlaps = true;
          }
        }
      }
      if (overlaps) {
        preempt.push_back(op_id);
      }
    }
    if (!preempt.empty()) {
      for (int64_t op_id : preempt) {
        AbortReplication(op_id, "preempted by live admission");
      }
      if (rebalance_preemptions_ != nullptr) {
        rebalance_preemptions_->Add(static_cast<int64_t>(preempt.size()));
      }
      placement = policy_->Place(*spec, ledger_);
    }
  }
  if (!placement.ok()) {
    co_return placement.status();
  }
  const std::string chosen_msu = placement->msu;

  // Reserve the whole group's bandwidth and space *before* contacting the
  // MSU: "As the Coordinator assigns resources to clients, it keeps track of
  // load by processor and disk." Requests racing with this one must see the
  // updated load, or they would all be admitted against stale numbers. The
  // transaction refunds whatever is not committed below.
  std::vector<ResourceLedger::ReserveItem> reserve_items;
  for (size_t i = 0; i < components.size(); ++i) {
    reserve_items.push_back(ResourceLedger::ReserveItem{
        placement->disks[i], spec->components[i].rate, spec->components[i].space});
  }
  auto reservation = ledger_.Reserve(chosen_msu, std::move(reserve_items));
  if (!reservation.ok()) {
    co_return reservation.status();
  }
  ResourceLedger::Txn txn = std::move(reservation).value();

  // Launch every member. The first member's stream carries the group's VCR
  // control connection.
  std::vector<StreamId> started;
  for (size_t i = 0; i < components.size(); ++i) {
    const Component& component = components[i];
    MsuStartStream start;
    start.epoch = params_.ha.enabled ? epoch_ : 0;
    start.group = request.group;
    start.stream = next_stream_++;
    start.file = !request.record && !placement->files[i].empty() ? placement->files[i]
                                                                 : component.file_name;
    auto component_type = catalog_->FindType(component.type_name);
    start.protocol = (*component_type)->protocol;
    start.rate = spec->components[i].rate;
    start.record = request.record;
    start.estimated_length = request.estimated_length;
    start.disk_hint = placement->disks[i];
    start.client_node = component.port.node;
    start.client_udp_port = component.port.udp_port;
    start.client_control_port = request.port.control_port;
    start.open_control_conn = (i == 0);
    start.start_paused = request.start_paused;
    if (i < request.start_offsets.size()) {
      start.start_offset = request.start_offsets[i];
    }
    if (!request.record) {
      auto content = catalog_->FindContent(component.item_name);
      // Dynamic replicas carry no fast-scan variants (only the title's data
      // file is copied); a stream served from one falls back to skip-mode
      // scans rather than dangling file references (DESIGN §5.8).
      bool dynamic_copy = false;
      for (const ContentLocation& location : (*content)->locations) {
        const std::string& copy_file =
            location.file_name.empty() ? (*content)->file_name : location.file_name;
        if (location.dynamic && location.msu_node == chosen_msu && copy_file == start.file) {
          dynamic_copy = true;
        }
      }
      if (!dynamic_copy) {
        start.fast_forward_file = (*content)->fast_forward_file;
        start.fast_backward_file = (*content)->fast_backward_file;
      }
    }

    // The MSU may have died while earlier members were starting.
    MsuInfo& msu = msus_[chosen_msu];
    const auto* ack = static_cast<const MsuStartStreamResponse*>(nullptr);
    Result<Envelope> response = UnavailableError("msu went down mid-launch");
    if (ledger_.IsUp(chosen_msu) && msu.conn != nullptr) {
      response = co_await msu.conn->Call(MessageBody{start});
      ack = response.ok() ? std::get_if<MsuStartStreamResponse>(&response->body) : nullptr;
    }
    if (ack == nullptr || !ack->ok) {
      // The transaction's destructor refunds this member and the members
      // never launched; started members unwind through HandleStreamTerminated.
      for (StreamId id : started) {
        StreamTerminated undo;
        undo.stream = id;
        undo.group = request.group;
        undo.file = active_streams_[id].content_item;
        undo.was_recording = request.record;
        undo.disk = active_streams_[id].disk;
        HandleStreamTerminated(undo);
      }
      co_return InternalError("msu refused stream: " +
                              (ack != nullptr ? ack->error : response.status().ToString()));
    }

    ActiveStream active;
    active.id = start.stream;
    active.group = request.group;
    active.msu = chosen_msu;
    active.disk = placement->disks[i];
    active.component = static_cast<int>(i);
    active.content_item = component.item_name;
    active.recording = request.record;
    active.session = request.session;
    active.last_offset = start.start_offset;
    txn.Commit(i, active.id);
    if (request.record) {
      // New catalog entry, playable once the recording completes.
      ContentRecord record;
      record.name = component.item_name;
      record.type_name = component.type_name;
      record.file_name = component.file_name;
      record.recording_in_progress = true;
      record.locations.push_back(ContentLocation{chosen_msu, placement->disks[i]});
      (void)catalog_->AddContent(std::move(record));
    }
    active_streams_[active.id] = active;
    groups_[request.group].push_back(active.id);
    started.push_back(active.id);
  }

  // Remember what started this group so an MSU failure can re-place it.
  group_requests_[request.group] = request;

  if (params_.ha.enabled) {
    // Replicate the whole admitted group in one record: member streams, their
    // ledger holds, and the originating request (for post-takeover failover).
    ReplGroupStarted group_started;
    group_started.group = request.group;
    group_started.msu = chosen_msu;
    group_started.request = request;
    for (StreamId id : started) {
      const ActiveStream& active = active_streams_[id];
      ReplStreamMember member;
      member.stream = id;
      member.disk = active.disk;
      member.component = active.component;
      member.content_item = active.content_item;
      member.recording = active.recording;
      auto hold = ledger_.FindHold(id);
      if (hold.has_value()) {
        member.rate = hold->rate;
        member.space = hold->space;
      }
      member.offset = active.last_offset;
      group_started.members.push_back(std::move(member));
    }
    LogRecord(ReplRecord{std::move(group_started)});
  }

  if (request.record && components.size() > 1) {
    // Parent composite record pointing at the component items.
    ContentRecord parent;
    parent.name = request.content;
    parent.type_name = request.type_name;
    parent.recording_in_progress = true;
    for (const Component& component : components) {
      parent.component_items.push_back(component.item_name);
    }
    (void)catalog_->AddContent(std::move(parent));
  }
  co_return OkStatus();
}

Co<MessageBody> Coordinator::HandlePlay(TcpConn* conn, const PlayRequest& request) {
  auto session = FindSession(request.session);
  if (!session.ok()) {
    co_return MessageBody{PlayResponse{false, session.status().ToString(), 0, false}};
  }
  auto port = (*session)->ports.find(request.display_port);
  if (port == (*session)->ports.end()) {
    co_return MessageBody{
        PlayResponse{false, "no such display port: " + request.display_port, 0, false}};
  }
  PendingRequest pending;
  pending.session = request.session;
  pending.record = false;
  pending.content = request.content;
  pending.port = port->second;
  pending.group = next_group_++;
  pending.admission_class = request.admission_class;

  if (params_.rebalance.enabled && !params_.sharing.enabled) {
    // Sharing normally owns the popularity EWMA; with it off (for instance
    // force-disabled under HA) the rebalance planner still needs the signal.
    BumpPopularity(pending.content);
  }

  if (SharingEligible(pending)) {
    BumpPopularity(pending.content);
    const SimTime admit_start = machine_->sim().Now();
    // A viewer arriving within the cache horizon of a live group's playback
    // position rides the serving MSU's interval cache: no disk bandwidth.
    const SharedGroup* target = FindAttachTarget(pending.content);
    if (target != nullptr) {
      const Status attached = co_await StartCacheAttach(pending, *target);
      if (attached.ok()) {
        RecordAdmission("attach", pending, attached, admit_start);
        co_return MessageBody{PlayResponse{true, "", pending.group, false}};
      }
      // Cache memory ran out (or the MSU died mid-attach): fall through and
      // coalesce into a batch like any other viewer.
    }
    // Coalesce with other requests for this title; the first waiter opens
    // the window and FlushShareBatch closes it after batch_window. The
    // client's WaitForGroupReady tolerates the delay.
    ShareBatch& batch = share_batches_[pending.content];
    const bool first = batch.waiters.empty();
    batch.waiters.push_back(pending);
    if (first) {
      FlushShareBatch(pending.content);
    }
    if (trace_ != nullptr) {
      trace_->Instant(trace_track_, metrics_prefix_, "share-batch",
                      pending.content + " group " + std::to_string(pending.group));
    }
    co_return MessageBody{PlayResponse{true, "", pending.group, false}};
  }

  const SimTime admit_start = machine_->sim().Now();
  const Status started = co_await TryStartGroup(pending);
  if (started.code() == StatusCode::kResourceExhausted && !EnqueuePending(pending)) {
    // The class queue is full: reject-newest, explicitly, rather than
    // deepening a backlog that already exceeds what the deadline can clear.
    const Status rejected = UnavailableError("admission queue full");
    RecordAdmission("play", pending, rejected, admit_start);
    co_return MessageBody{PlayResponse{false, rejected.ToString(), 0, false}};
  }
  RecordAdmission("play", pending, started, admit_start);
  if (started.ok()) {
    co_return MessageBody{PlayResponse{true, "", pending.group, false}};
  }
  if (started.code() == StatusCode::kResourceExhausted) {
    // "If a client's request cannot be satisfied, the Coordinator queues the
    // request until an MSU with the necessary resources becomes available."
    co_return MessageBody{PlayResponse{true, "", pending.group, true}};
  }
  co_return MessageBody{PlayResponse{false, started.ToString(), 0, false}};
}

// ---- stream sharing (DESIGN §5.6) ----

bool Coordinator::SharingEligible(const PendingRequest& request) const {
  if (!params_.sharing.enabled || request.record) {
    return false;
  }
  // Only atomic, fully-recorded titles share a delivery stream; composites
  // and in-progress recordings take the historical path (and report their
  // errors through it).
  auto record = catalog_->FindContent(request.content);
  if (!record.ok()) {
    return false;
  }
  return !(*record)->is_composite() && !(*record)->recording_in_progress;
}

void Coordinator::BumpPopularity(const std::string& content) {
  const SimTime now = machine_->sim().Now();
  double& ewma = popularity_[content];
  auto bumped = popularity_bumped_.find(content);
  if (bumped != popularity_bumped_.end() && params_.sharing.popularity_halflife > SimTime()) {
    const double age =
        (now - bumped->second).seconds() / params_.sharing.popularity_halflife.seconds();
    ewma *= std::exp2(-age);
  }
  ewma += 1.0;
  popularity_bumped_[content] = now;
}

double Coordinator::DecayedPopularity(const std::string& content) const {
  auto it = popularity_.find(content);
  if (it == popularity_.end()) {
    return 0.0;
  }
  double value = it->second;
  auto bumped = popularity_bumped_.find(content);
  if (bumped != popularity_bumped_.end() && params_.sharing.popularity_halflife > SimTime()) {
    const double age = (machine_->sim().Now() - bumped->second).seconds() /
                       params_.sharing.popularity_halflife.seconds();
    value *= std::exp2(-age);
  }
  return value;
}

bool Coordinator::IsHot(const std::string& content) const {
  return DecayedPopularity(content) >= params_.sharing.hot_threshold;
}

const Coordinator::SharedGroup* Coordinator::FindAttachTarget(const std::string& content) const {
  const SimTime now = machine_->sim().Now();
  for (const auto& [id, group] : shared_groups_) {
    if (group.content != content || group.member_count <= 0 || !ledger_.IsUp(group.msu)) {
      continue;
    }
    if (now - group.started_at <= params_.sharing.cache_horizon) {
      return &group;
    }
  }
  return nullptr;
}

Co<Status> Coordinator::StartCacheAttach(PendingRequest request, SharedGroup target) {
  auto session = FindSession(request.session);
  if (!session.ok()) {
    co_return session.status();
  }
  auto record = catalog_->FindContent(request.content);
  if (!record.ok()) {
    co_return record.status();
  }
  auto type = catalog_->FindType((*record)->type_name);
  if (!type.ok()) {
    co_return type.status();
  }
  // The interval cache must hold everything between this viewer (starting at
  // zero) and the leader's current position; charge that many bytes against
  // the MSU's cache budget, plus NIC bandwidth for the extra send. No disk
  // bandwidth: the reads come from memory.
  const SimTime gap = machine_->sim().Now() - target.started_at;
  const Bytes interval = target.rate.BytesIn(gap) + kDataPageSize;
  auto reservation = ledger_.Reserve(
      target.msu, {ResourceLedger::ReserveItem{ResourceLedger::kSharedDisk, target.rate,
                                               Bytes(), interval}});
  if (!reservation.ok()) {
    co_return reservation.status();
  }
  ResourceLedger::Txn txn = std::move(reservation).value();

  MsuStartStream start;
  start.epoch = params_.ha.enabled ? epoch_ : 0;
  start.group = request.group;
  start.stream = next_stream_++;
  start.file = target.file;
  start.protocol = (*type)->protocol;
  start.rate = target.rate;
  start.disk_hint = target.disk;
  start.client_node = request.port.node;
  start.client_udp_port = request.port.udp_port;
  start.client_control_port = request.port.control_port;
  start.open_control_conn = true;
  start.fast_forward_file = (*record)->fast_forward_file;
  start.fast_backward_file = (*record)->fast_backward_file;
  start.from_cache = true;
  start.pin_prefix = IsHot(request.content);

  MsuInfo& msu = msus_[target.msu];
  Result<Envelope> response = UnavailableError("serving msu went away");
  if (ledger_.IsUp(target.msu) && msu.conn != nullptr) {
    response = co_await msu.conn->Call(MessageBody{start});
  }
  const auto* ack = response.ok() ? std::get_if<MsuStartStreamResponse>(&response->body) : nullptr;
  if (ack == nullptr || !ack->ok) {
    // Txn destructor refunds the cache hold; the caller falls back to a batch.
    co_return InternalError("msu refused cache attach: " +
                            (ack != nullptr ? ack->error : response.status().ToString()));
  }

  ActiveStream active;
  active.id = start.stream;
  active.group = request.group;
  active.msu = target.msu;
  active.disk = target.disk;
  active.content_item = request.content;
  active.session = request.session;
  txn.Commit(0, active.id);
  active_streams_[active.id] = active;
  groups_[request.group].push_back(active.id);
  // The plain request is remembered: if the MSU dies this viewer fails over
  // as an ordinary unique stream (a fresh disk hold elsewhere).
  group_requests_[request.group] = request;
  if (groups_attaches_ != nullptr) {
    groups_attaches_->Add();
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "cache-attach",
                    request.content + " group " + std::to_string(request.group) + " on " +
                        target.msu);
  }
  co_return OkStatus();
}

Task Coordinator::FlushShareBatch(std::string content) {
  co_await machine_->sim().Delay(params_.sharing.batch_window);
  if (crashed_) {
    co_return;  // the crash already dropped the batch
  }
  auto it = share_batches_.find(content);
  if (it == share_batches_.end()) {
    co_return;
  }
  std::vector<PendingRequest> waiters = std::move(it->second.waiters);
  share_batches_.erase(it);
  co_await StartSharedGroup(std::move(content), std::move(waiters));
}

Co<void> Coordinator::StartSharedGroup(std::string content,
                                       std::vector<PendingRequest> waiters) {
  std::vector<PendingRequest> live;
  for (PendingRequest& request : waiters) {
    if (FindSession(request.session).ok()) {
      live.push_back(std::move(request));
    } else {
      CountRequestLost();  // client left during the batch window
    }
  }
  if (live.empty()) {
    co_return;
  }

  // Degraded exit: park every waiter in the pending queue; each retries as a
  // unique stream through the historical path.
  auto queue_all = [this, &live] {
    for (PendingRequest& request : live) {
      if (!EnqueuePending(request)) {
        CountRequestLost();
        NotifyRequestFailed(std::move(request), UnavailableError("admission queue full"));
      }
    }
    RetryPendingQueue();
  };
  auto fail_all = [this, &live](const Status& error) {
    for (PendingRequest& request : live) {
      CountRequestLost();
      NotifyRequestFailed(request, error);
    }
  };

  const SimTime admit_start = machine_->sim().Now();
  auto session = FindSession(live.front().session);
  auto resolved = ResolveComponents(live.front(), **session);
  if (!resolved.ok()) {
    fail_all(resolved.status());
    co_return;
  }
  const Component& component = resolved->front();  // eligibility => exactly one
  auto spec = BuildPlacementSpec(live.front(), *resolved);
  if (!spec.ok()) {
    fail_all(spec.status());
    co_return;
  }
  auto placement = policy_->Place(*spec, ledger_);
  if (!placement.ok()) {
    if (placement.status().code() == StatusCode::kResourceExhausted) {
      queue_all();
    } else {
      fail_all(placement.status());
    }
    co_return;
  }
  const std::string chosen_msu = placement->msu;
  const DataRate rate = spec->components[0].rate;

  // One disk-bandwidth hold feeds the whole group; every member charges NIC
  // bandwidth only (kSharedDisk) — that is the entire point of sharing.
  std::vector<ResourceLedger::ReserveItem> items;
  items.push_back(ResourceLedger::ReserveItem{placement->disks[0], rate, Bytes()});
  for (size_t i = 0; i < live.size(); ++i) {
    items.push_back(ResourceLedger::ReserveItem{ResourceLedger::kSharedDisk, rate, Bytes(),
                                                Bytes()});
  }
  auto reservation = ledger_.Reserve(chosen_msu, std::move(items));
  if (!reservation.ok()) {
    if (reservation.status().code() == StatusCode::kResourceExhausted) {
      queue_all();
    } else {
      fail_all(reservation.status());
    }
    co_return;
  }
  ResourceLedger::Txn txn = std::move(reservation).value();

  MsuStartStream start;
  start.epoch = params_.ha.enabled ? epoch_ : 0;
  const GroupId delivery_group = next_group_++;
  start.group = delivery_group;
  start.stream = next_stream_++;
  start.file = !placement->files[0].empty() ? placement->files[0] : component.file_name;
  auto type = catalog_->FindType(component.type_name);
  start.protocol = (*type)->protocol;
  start.rate = rate;
  start.disk_hint = placement->disks[0];
  start.open_control_conn = false;  // members carry their own control conns
  auto record = catalog_->FindContent(component.item_name);
  start.fast_forward_file = (*record)->fast_forward_file;
  start.fast_backward_file = (*record)->fast_backward_file;
  start.shared = true;
  start.pin_prefix = IsHot(content);
  for (const PendingRequest& request : live) {
    SharedMemberSpec member;
    member.stream = next_stream_++;
    member.group = request.group;
    member.client_node = request.port.node;
    member.client_udp_port = request.port.udp_port;
    member.client_control_port = request.port.control_port;
    start.shared_members.push_back(std::move(member));
  }

  MsuInfo& msu = msus_[chosen_msu];
  Result<Envelope> response = UnavailableError("msu went down before launch");
  if (ledger_.IsUp(chosen_msu) && msu.conn != nullptr) {
    response = co_await msu.conn->Call(MessageBody{start});
  }
  const auto* ack = response.ok() ? std::get_if<MsuStartStreamResponse>(&response->body) : nullptr;
  if (ack == nullptr || !ack->ok) {
    // Txn destructor refunds everything; members retry as unique streams.
    queue_all();
    co_return;
  }

  // The delivery stream holds the disk bandwidth. Its group deliberately has
  // no group_requests_ entry: if the MSU dies, MarkMsuDown releases the hold
  // and drops it silently while each member fails over on its own.
  ActiveStream delivery;
  delivery.id = start.stream;
  delivery.group = delivery_group;
  delivery.msu = chosen_msu;
  delivery.disk = placement->disks[0];
  delivery.content_item = component.item_name;
  txn.Commit(0, delivery.id);
  active_streams_[delivery.id] = delivery;
  groups_[delivery_group].push_back(delivery.id);

  SharedGroup shared;
  shared.delivery_stream = delivery.id;
  shared.msu = chosen_msu;
  shared.disk = placement->disks[0];
  shared.content = content;
  shared.file = start.file;
  shared.rate = rate;
  shared.started_at = machine_->sim().Now();
  shared.member_count = static_cast<int>(live.size());
  shared_groups_[delivery.id] = shared;

  for (size_t i = 0; i < live.size(); ++i) {
    const PendingRequest& request = live[i];
    ActiveStream active;
    active.id = start.shared_members[i].stream;
    active.group = request.group;
    active.msu = chosen_msu;
    active.disk = placement->disks[0];
    active.content_item = component.item_name;
    active.session = request.session;
    txn.Commit(i + 1, active.id);
    active_streams_[active.id] = active;
    groups_[request.group].push_back(active.id);
    group_requests_[request.group] = request;
    RecordAdmission("share", request, OkStatus(), admit_start);
  }
  if (groups_formed_ != nullptr) {
    groups_formed_->Add();
  }
  if (groups_members_ != nullptr) {
    groups_members_->Add(static_cast<int64_t>(live.size()));
  }
  if (trace_ != nullptr) {
    trace_->Span(trace_track_, metrics_prefix_, "share-group", admit_start,
                 content + " x" + std::to_string(live.size()) + " on " + chosen_msu);
  }
}

Co<MessageBody> Coordinator::HandleSharedMemberSplit(const SharedMemberSplit& split) {
  auto shared_it = shared_groups_.find(split.delivery_stream);
  if (shared_it != shared_groups_.end() && shared_it->second.member_count > 0) {
    --shared_it->second.member_count;
  }
  auto it = active_streams_.find(split.member_stream);
  if (it == active_streams_.end()) {
    // Failover raced the split message; the member was already re-placed.
    co_return MessageBody{SimpleResponse{true, ""}};
  }
  PendingRequest resume;
  auto request_it = group_requests_.find(split.group);
  const bool have_request = request_it != group_requests_.end();
  if (have_request) {
    resume = request_it->second;
  }
  (void)ledger_.Release(split.member_stream);
  active_streams_.erase(it);
  groups_.erase(split.group);
  group_requests_.erase(split.group);
  if (groups_splits_ != nullptr) {
    groups_splits_->Add();
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "share-split",
                    "group " + std::to_string(split.group) + " off delivery " +
                        std::to_string(split.delivery_stream));
  }
  if (!have_request) {
    co_return MessageBody{SimpleResponse{true, ""}};
  }
  // Re-admit the member as a solo stream where the shared delivery left it:
  // pauses start paused at the split offset (the later Resume picks up
  // there), seeks land at the seek target, FF/FB split at the current offset
  // and the client re-issues the scan against its now-solo stream.
  resume.start_offsets.assign(
      1, split.op == VcrCommand::Op::kSeek ? split.seek_to : split.media_offset);
  resume.start_paused = (split.op == VcrCommand::Op::kPause);
  resume.prefer_msu = split.msu_node;  // the page cache there already holds the title
  const SimTime admit_start = machine_->sim().Now();
  const Status started = co_await TryStartGroup(resume);
  RecordAdmission("split", resume, started, admit_start);
  if (started.code() == StatusCode::kResourceExhausted) {
    if (!EnqueuePending(resume)) {
      CountRequestLost();
      NotifyRequestFailed(std::move(resume), UnavailableError("admission queue full"));
    }
    co_return MessageBody{SimpleResponse{true, ""}};
  }
  if (!started.ok()) {
    CALLIOPE_LOG(kWarning, "coord") << "shared member group " << split.group
                                    << " could not re-admit after split: " << started.ToString();
    CountRequestLost();
    NotifyRequestFailed(std::move(resume), started);
  }
  co_return MessageBody{SimpleResponse{true, ""}};
}

// ---- background rebalancing (DESIGN §5.8) ----

Task Coordinator::RebalanceLoop() {
  if (rebalance_loop_running_ || !params_.rebalance.enabled) {
    co_return;
  }
  rebalance_loop_running_ = true;
  while (!crashed_) {
    co_await machine_->sim().Delay(params_.rebalance.interval);
    if (crashed_) {
      break;
    }
    if (params_.ha.enabled && role_ != HaRole::kPrimary) {
      continue;  // the standby mirrors in-flight ops but never plans
    }
    if (rebalance_ticks_ != nullptr) {
      rebalance_ticks_->Add();
    }
    const int slots =
        params_.rebalance.max_concurrent_copies - static_cast<int>(repl_ops_.size());
    RebalancePlan plan = PlanRebalance(BuildRebalanceSnapshot(), params_.rebalance, slots);
    for (const DemoteAction& demote : plan.demotes) {
      if (crashed_ || (params_.ha.enabled && role_ != HaRole::kPrimary)) {
        break;
      }
      co_await ExecuteDemotion(demote);
    }
    for (const CopyAction& copy : plan.copies) {
      if (crashed_ || (params_.ha.enabled && role_ != HaRole::kPrimary)) {
        break;
      }
      co_await StartReplication(copy);
    }
  }
  rebalance_loop_running_ = false;
}

RebalanceSnapshot Coordinator::BuildRebalanceSnapshot() const {
  RebalanceSnapshot snapshot;
  snapshot.disk_budget = params_.disk_budget;
  // While the shed governor is active, the plan may still demote cold
  // replicas (frees space for free) but must not start new copies.
  snapshot.allow_copies = !rebalance_paused_;
  for (const auto& [name, account] : ledger_.msus()) {
    MsuView view;
    view.node = name;
    view.up = account.up;
    view.nic_budget = account.nic_budget;
    view.nic_load = account.NicLoad();
    view.free_space = account.free_space;
    for (const DiskAccount& disk : account.disks) {
      DiskView disk_view;
      disk_view.load = disk.load + disk.replication_io;
      view.disks.push_back(disk_view);
    }
    snapshot.msus.push_back(std::move(view));
  }
  // Titles in catalog (name) order, so the plan is a pure function of state.
  for (const ContentRecord* record : catalog_->ListContent()) {
    if (record->is_composite() || record->recording_in_progress || record->locations.empty()) {
      continue;
    }
    TitleView title;
    title.name = record->name;
    title.popularity = DecayedPopularity(record->name);
    for (const PendingRequest& request : pending_) {
      if (!request.record && request.content == record->name) {
        ++title.pending;
      }
    }
    auto type = catalog_->FindType(record->type_name);
    if (type.ok()) {
      title.size = (*type)->storage_rate.BytesIn(record->duration);
    }
    for (const ContentLocation& location : record->locations) {
      ReplicaView replica;
      replica.msu = location.msu_node;
      replica.disk = location.disk;
      replica.file = location.file_name.empty() ? record->file_name : location.file_name;
      replica.dynamic = location.dynamic;
      for (const auto& [id, active] : active_streams_) {
        if (active.content_item == record->name && active.msu == location.msu_node) {
          ++replica.active_streams;
        }
      }
      title.replicas.push_back(std::move(replica));
    }
    for (const auto& [op_id, op] : repl_ops_) {
      if (op.content == record->name) {
        title.inflight_targets.push_back(op.target_msu);
      }
    }
    snapshot.titles.push_back(std::move(title));
  }
  return snapshot;
}

Co<void> Coordinator::StartReplication(CopyAction action) {
  auto source_it = msus_.find(action.source_msu);
  if (source_it == msus_.end() || source_it->second.conn == nullptr ||
      !ledger_.IsUp(action.source_msu)) {
    co_return;
  }
  const int64_t op_id = next_repl_op_++;
  const DataRate rate = params_.rebalance.copy_rate;

  // The source admits the copy against its duty cycle in PrepareCopy; a
  // refusal (every slot serving viewers) just skips this copy until a later
  // tick — background replication never displaces live work.
  MsuPrepareCopy prepare;
  prepare.op = op_id;
  prepare.file = action.source_file;
  prepare.rate = rate;
  prepare.epoch = params_.ha.enabled ? epoch_ : 0;
  auto prepared = co_await source_it->second.conn->Call(MessageBody{std::move(prepare)});
  const auto* prep =
      prepared.ok() ? std::get_if<MsuPrepareCopyResponse>(&prepared->body) : nullptr;
  if (prep == nullptr || !prep->ok) {
    co_return;
  }
  if (crashed_ || (params_.ha.enabled && role_ != HaRole::kPrimary)) {
    SendAbortCopy(action.source_msu, op_id);  // release the source's slot
    co_return;
  }

  ReplOp op;
  op.op = op_id;
  op.content = action.content;
  op.source_msu = action.source_msu;
  op.source_disk = prep->disk;
  op.source_file = action.source_file;
  op.target_msu = action.target_msu;
  op.target_disk = action.target_disk;
  op.replica_file = action.content + ".r" + std::to_string(op_id);
  op.rate = rate;
  op.space = prep->file_size.count() > 0 ? prep->file_size : action.space;

  MsuBeginCopy begin;
  begin.op = op_id;
  begin.content = op.content;
  begin.source_node = op.source_msu;
  begin.source_port = prep->pull_port;
  begin.source_file = op.source_file;
  begin.replica_file = op.replica_file;
  begin.rate = rate;
  begin.page_count = prep->page_count;
  begin.estimated_size = op.space;
  begin.disk_hint = op.target_disk;
  begin.epoch = params_.ha.enabled ? epoch_ : 0;
  auto target_it = msus_.find(action.target_msu);
  Result<Envelope> began = UnavailableError("target msu went down");
  if (target_it != msus_.end() && target_it->second.conn != nullptr &&
      ledger_.IsUp(action.target_msu)) {
    began = co_await target_it->second.conn->Call(MessageBody{std::move(begin)});
  }
  const auto* ack = began.ok() ? std::get_if<SimpleResponse>(&began->body) : nullptr;
  if (crashed_ || (params_.ha.enabled && role_ != HaRole::kPrimary) || ack == nullptr ||
      !ack->ok) {
    SendAbortCopy(action.source_msu, op_id);
    SendAbortCopy(action.target_msu, op_id);
    co_return;
  }

  // Both ends are running: account the copy's bandwidth (and the replica's
  // space) so placement routes live admissions around it, and replicate the
  // op so a standby takeover keeps the plan.
  (void)ledger_.AddReplication(op_id, op.source_msu, op.source_disk, rate);
  (void)ledger_.AddReplication(op_id, op.target_msu, op.target_disk, rate, op.space);
  ReplReplicationStarted started;
  started.op = op_id;
  started.content = op.content;
  started.source_msu = op.source_msu;
  started.source_disk = op.source_disk;
  started.source_file = op.source_file;
  started.target_msu = op.target_msu;
  started.target_disk = op.target_disk;
  started.replica_file = op.replica_file;
  started.rate = rate;
  started.space = op.space;
  LogRecord(ReplRecord{std::move(started)});
  if (rebalance_copies_started_ != nullptr) {
    rebalance_copies_started_->Add();
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "rebalance-copy",
                    op.content + " " + op.source_msu + " -> " + op.target_msu + " op " +
                        std::to_string(op_id));
  }
  repl_ops_[op_id] = std::move(op);
}

Co<void> Coordinator::ExecuteDemotion(DemoteAction action) {
  auto record = catalog_->FindContent(action.content);
  if (!record.ok()) {
    co_return;
  }
  // Re-validate against live state (the plan came from a snapshot): the
  // replica must still be dynamic and idle.
  for (const auto& [id, active] : active_streams_) {
    if (active.content_item == action.content && active.msu == action.msu) {
      co_return;
    }
  }
  auto& locations = (*record)->locations;
  bool found = false;
  for (auto it = locations.begin(); it != locations.end(); ++it) {
    const std::string& copy_file =
        it->file_name.empty() ? (*record)->file_name : it->file_name;
    if (it->dynamic && it->msu_node == action.msu && copy_file == action.file) {
      locations.erase(it);  // catalog first: no new admission lands on it
      found = true;
      break;
    }
  }
  if (!found) {
    co_return;
  }
  if (rebalance_demotions_ != nullptr) {
    rebalance_demotions_->Add();
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "rebalance-demote",
                    action.content + " off " + action.msu);
  }
  SendDeleteFile(action.msu, action.file);
}

void Coordinator::HandleReplicaInstalled(const ReplicaInstalled& note) {
  auto it = repl_ops_.find(note.op);
  const bool known = it != repl_ops_.end();
  if (known) {
    repl_ops_.erase(it);
  }
  (void)ledger_.ReleaseReplication(note.op, /*keep_space=*/true);
  auto record = catalog_->FindContent(note.content);
  if (!record.ok()) {
    // The title was deleted while the copy ran; the fresh replica is orphaned.
    SendDeleteFile(note.msu_node, note.file);
    if (known) {
      ReplReplicationEnded ended;
      ended.op = note.op;
      ended.installed = false;
      LogRecord(ReplRecord{std::move(ended)});
    }
    return;
  }
  // Install the copy (idempotent: a note resent over a fresh connection, or
  // one landing at a post-takeover primary, must not duplicate the location).
  bool already = false;
  for (const ContentLocation& location : (*record)->locations) {
    if (location.msu_node == note.msu_node && location.file_name == note.file) {
      already = true;
    }
  }
  if (!already) {
    ContentLocation location{note.msu_node, note.disk};
    location.file_name = note.file;
    location.dynamic = true;
    (*record)->locations.push_back(std::move(location));
  }
  if (known) {
    ReplReplicationEnded ended;
    ended.op = note.op;
    ended.installed = true;
    LogRecord(ReplRecord{std::move(ended)});
  }
  if (rebalance_copies_installed_ != nullptr) {
    rebalance_copies_installed_->Add();
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "rebalance-installed",
                    note.content + " on " + note.msu_node + " op " + std::to_string(note.op));
  }
  // Queued requests — the flash crowd — can now land on the fresh replica.
  RetryPendingQueue();
}

void Coordinator::HandleReplicaCopyFailed(const ReplicaCopyFailed& note) {
  if (!repl_ops_.contains(note.op)) {
    return;  // already aborted, or an orphan of a previous incarnation
  }
  CALLIOPE_LOG(kInfo, "coord") << "replica copy op " << note.op << " failed on "
                               << note.msu_node << ": " << note.error;
  AbortReplication(note.op, note.error);
}

void Coordinator::AbortReplication(int64_t op_id, const std::string& reason) {
  auto it = repl_ops_.find(op_id);
  if (it == repl_ops_.end()) {
    return;
  }
  ReplOp op = std::move(it->second);
  repl_ops_.erase(it);
  (void)ledger_.ReleaseReplication(op_id, /*keep_space=*/false);
  ReplReplicationEnded ended;
  ended.op = op_id;
  ended.installed = false;
  LogRecord(ReplRecord{std::move(ended)});
  if (rebalance_copies_aborted_ != nullptr) {
    rebalance_copies_aborted_->Add();
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "rebalance-abort",
                    op.content + " op " + std::to_string(op_id) + ": " + reason);
  }
  SendAbortCopy(op.source_msu, op_id);
  SendAbortCopy(op.target_msu, op_id);
}

Task Coordinator::SendAbortCopy(std::string msu_node, int64_t op_id) {
  auto it = msus_.find(msu_node);
  if (crashed_ || it == msus_.end() || it->second.conn == nullptr || !ledger_.IsUp(msu_node)) {
    co_return;
  }
  MsuAbortCopy abort;
  abort.op = op_id;
  abort.epoch = params_.ha.enabled ? epoch_ : 0;
  auto response = co_await it->second.conn->Call(MessageBody{std::move(abort)});
  (void)response;
}

Task Coordinator::SendDeleteFile(std::string msu_node, std::string file) {
  auto it = msus_.find(msu_node);
  if (crashed_ || it == msus_.end() || it->second.conn == nullptr || !ledger_.IsUp(msu_node)) {
    co_return;
  }
  MsuDeleteFile erase_file{std::move(file)};
  erase_file.epoch = params_.ha.enabled ? epoch_ : 0;
  auto response = co_await it->second.conn->Call(MessageBody{std::move(erase_file)});
  (void)response;
}

void Coordinator::AbortReplicationsTouching(const std::string& msu_node) {
  std::vector<int64_t> doomed;
  for (const auto& [op_id, op] : repl_ops_) {
    if (op.source_msu == msu_node || op.target_msu == msu_node) {
      doomed.push_back(op_id);
    }
  }
  for (int64_t op_id : doomed) {
    AbortReplication(op_id, "msu " + msu_node + " went down");
  }
}

Co<MessageBody> Coordinator::HandleRecord(TcpConn* conn, const RecordRequest& request) {
  auto session = FindSession(request.session);
  if (!session.ok()) {
    co_return MessageBody{RecordResponse{false, session.status().ToString(), 0, false}};
  }
  auto port = (*session)->ports.find(request.display_port);
  if (port == (*session)->ports.end()) {
    co_return MessageBody{
        RecordResponse{false, "no such display port: " + request.display_port, 0, false}};
  }
  if (catalog_->FindContent(request.content_name).ok()) {
    co_return MessageBody{
        RecordResponse{false, "content exists: " + request.content_name, 0, false}};
  }
  if (request.estimated_length <= SimTime()) {
    // "the client request must also contain an estimate of the recording
    // length" — it sizes the disk reservation.
    co_return MessageBody{RecordResponse{false, "recording length estimate required", 0, false}};
  }
  PendingRequest pending;
  pending.session = request.session;
  pending.record = true;
  pending.content = request.content_name;
  pending.type_name = request.type_name;
  pending.estimated_length = request.estimated_length;
  pending.port = port->second;
  pending.group = next_group_++;
  pending.admission_class = request.admission_class;

  const SimTime admit_start = machine_->sim().Now();
  const Status started = co_await TryStartGroup(pending);
  if (started.code() == StatusCode::kResourceExhausted && !EnqueuePending(pending)) {
    const Status rejected = UnavailableError("admission queue full");
    RecordAdmission("record", pending, rejected, admit_start);
    co_return MessageBody{RecordResponse{false, rejected.ToString(), 0, false}};
  }
  RecordAdmission("record", pending, started, admit_start);
  if (started.ok()) {
    co_return MessageBody{RecordResponse{true, "", pending.group, false}};
  }
  if (started.code() == StatusCode::kResourceExhausted) {
    co_return MessageBody{RecordResponse{true, "", pending.group, true}};
  }
  co_return MessageBody{RecordResponse{false, started.ToString(), 0, false}};
}

Co<MessageBody> Coordinator::HandleDelete(TcpConn* conn, const DeleteContentRequest& request) {
  auto session = FindSession(request.session);
  if (!session.ok()) {
    co_return MessageBody{SimpleResponse{false, session.status().ToString()}};
  }
  if (!(*session)->admin) {
    co_return MessageBody{SimpleResponse{false, "delete requires administrative permission"}};
  }
  auto record = catalog_->FindContent(request.content);
  if (!record.ok()) {
    co_return MessageBody{SimpleResponse{false, record.status().ToString()}};
  }
  const bool composite = (*record)->is_composite();
  std::vector<std::string> items =
      composite ? (*record)->component_items : std::vector<std::string>{(*record)->name};
  for (const auto& [id, active] : active_streams_) {
    for (const auto& item : items) {
      if (active.content_item == item) {
        co_return MessageBody{SimpleResponse{false, "content is in use"}};
      }
    }
  }
  for (const std::string& item_name : items) {
    // Copies of the doomed title still in flight are pointless now.
    std::vector<int64_t> doomed;
    for (const auto& [op_id, op] : repl_ops_) {
      if (op.content == item_name) {
        doomed.push_back(op_id);
      }
    }
    for (int64_t op_id : doomed) {
      AbortReplication(op_id, "content deleted");
    }
    auto item = catalog_->FindContent(item_name);
    if (!item.ok()) {
      continue;
    }
    for (const ContentLocation& location : (*item)->locations) {
      auto msu_it = msus_.find(location.msu_node);
      if (msu_it == msus_.end() || !ledger_.IsUp(location.msu_node) ||
          msu_it->second.conn == nullptr) {
        continue;
      }
      for (const std::string& file :
           {(*item)->file_name, (*item)->fast_forward_file, (*item)->fast_backward_file}) {
        if (!file.empty()) {
          MsuDeleteFile erase_file{file};
          erase_file.epoch = params_.ha.enabled ? epoch_ : 0;
          co_await msu_it->second.conn->Call(MessageBody{std::move(erase_file)});
        }
      }
    }
    (void)catalog_->RemoveContent(item_name);
  }
  if (composite) {
    (void)catalog_->RemoveContent(request.content);
  }
  RetryPendingQueue();
  co_return MessageBody{SimpleResponse{true, ""}};
}

Co<MessageBody> Coordinator::HandleLoadFastScan(TcpConn* conn,
                                                const LoadFastScanRequest& request) {
  auto session = FindSession(request.session);
  if (!session.ok()) {
    co_return MessageBody{SimpleResponse{false, session.status().ToString()}};
  }
  if (!(*session)->admin) {
    co_return MessageBody{SimpleResponse{false, "fast-scan load requires admin permission"}};
  }
  auto record = catalog_->FindContent(request.content);
  if (!record.ok()) {
    co_return MessageBody{SimpleResponse{false, record.status().ToString()}};
  }
  (*record)->fast_forward_file = request.fast_forward_file;
  (*record)->fast_backward_file = request.fast_backward_file;
  co_return MessageBody{SimpleResponse{true, ""}};
}

Co<MessageBody> Coordinator::HandleMsuRegister(TcpConn* conn, const MsuRegisterRequest& request) {
  // Warm registration: the MSU never stopped serving, only its control
  // connection moved (Coordinator failover) — keep the account and holds.
  const MsuAccount* known = ledger_.Find(request.msu_node);
  const bool warm =
      request.warm && known != nullptr && known->disk_count == request.disk_count;
  MsuInfo& msu = msus_[request.msu_node];
  msu.node = request.msu_node;
  if (!warm && known != nullptr) {
    // Cold re-registration of a known MSU: whatever it was serving died with
    // it. Tear its groups down (failover) before resetting the account.
    bool busy = known->up;
    if (!busy) {
      for (const auto& [id, active] : active_streams_) {
        if (active.msu == request.msu_node) {
          busy = true;
          break;
        }
      }
    }
    if (busy) {
      msu.conn = nullptr;  // MarkMsuDown must not break the fresh connection
      MarkMsuDown(msu);
    }
  }
  msu.conn = conn;
  if (warm) {
    ledger_.ReattachMsu(request.msu_node, request.disk_count, request.free_space,
                        request.nic_bandwidth, request.cache_memory);
  } else {
    ledger_.RegisterMsu(request.msu_node, request.disk_count, request.free_space,
                        request.nic_bandwidth, request.cache_memory);
  }
  MsuRegisterResponse ack{true, ""};
  ack.epoch = params_.ha.enabled ? epoch_ : 0;
  if (params_.ha.enabled) {
    // Reconciliation sweep: streams the MSU still serves that we do not know
    // are admissions lost in the failover window — the MSU quits them. (A
    // single Coordinator without a standby keeps the historical behavior:
    // orphaned streams play out on their own.)
    for (StreamId id : request.active_streams) {
      if (!active_streams_.contains(id)) {
        ack.stale_streams.push_back(id);
      }
    }
    ReplMsuUp up;
    up.node = request.msu_node;
    up.disk_count = request.disk_count;
    up.free_space = request.free_space;
    up.nic_budget = request.nic_bandwidth;
    up.cache_memory = request.cache_memory;
    up.reattach = warm;
    LogRecord(ReplRecord{std::move(up)});
  }
  if (metrics_ != nullptr) {
    // Per-disk ledger gauges; SetGaugeCallback overwrites on re-registration
    // so MSU restarts do not stack stale callbacks.
    const std::string prefix = metrics_prefix_ + ".ledger." + request.msu_node + ".";
    for (int d = 0; d < request.disk_count; ++d) {
      metrics_->SetGaugeCallback(
          prefix + "disk" + std::to_string(d) + ".reserved_kbps",
          [this, node = request.msu_node, d] { return ledger_.DiskLoad(node, d).bits_per_sec() / 1000; });
    }
    metrics_->SetGaugeCallback(prefix + "free_mib", [this, node = request.msu_node] {
      return ledger_.FreeSpace(node).count() / (1024 * 1024);
    });
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "msu-register",
                    request.msu_node + (warm ? " (warm)" : ""));
  }
  RetryPendingQueue();
  co_return MessageBody{std::move(ack)};
}

void Coordinator::HandleStreamTerminated(const StreamTerminated& note) {
  shared_groups_.erase(note.stream);  // no-op unless a shared delivery ended
  auto it = active_streams_.find(note.stream);
  if (it == active_streams_.end()) {
    return;
  }
  ActiveStream active = it->second;
  active_streams_.erase(it);

  // Refund the stream's hold: bandwidth in full; for recordings, the space
  // over-estimate ("If the client overestimates the length of the recording,
  // the unused space will be returned to the system"). A recording the MSU
  // could not seal keeps no bytes; refund the whole estimate and drop its
  // catalog entry.
  const bool record_kept = active.recording && note.record_committed;
  (void)ledger_.Release(note.stream, record_kept ? note.bytes_moved : Bytes());
  ReplStreamEnded ended;
  ended.stream = note.stream;
  ended.space_used = record_kept ? note.bytes_moved : Bytes();
  LogRecord(ReplRecord{std::move(ended)});
  if (record_kept) {
    auto record = catalog_->FindContent(active.content_item);
    if (record.ok()) {
      (*record)->recording_in_progress = false;
      (*record)->duration = note.recorded_duration;
    }
  } else if (active.recording) {
    (void)catalog_->RemoveContent(active.content_item);
  }

  auto group_it = groups_.find(active.group);
  if (group_it != groups_.end()) {
    auto& members = group_it->second;
    members.erase(std::remove(members.begin(), members.end(), note.stream), members.end());
    if (members.empty()) {
      groups_.erase(group_it);
      group_requests_.erase(active.group);
      ReplGroupEnded group_ended;
      group_ended.group = active.group;
      LogRecord(ReplRecord{std::move(group_ended)});
      if (active.recording) {
        // Composite parent becomes playable when all components are sealed.
        for (const ContentRecord* candidate : catalog_->ListContent()) {
          if (candidate->is_composite() &&
              std::find(candidate->component_items.begin(), candidate->component_items.end(),
                        active.content_item) != candidate->component_items.end()) {
            auto parent = catalog_->FindContent(candidate->name);
            if (parent.ok()) {
              (*parent)->recording_in_progress = false;
              SimTime longest;
              for (const std::string& item_name : (*parent)->component_items) {
                auto item = catalog_->FindContent(item_name);
                if (item.ok()) {
                  longest = std::max(longest, (*item)->duration);
                }
              }
              (*parent)->duration = longest;
            }
            break;
          }
        }
      }
    }
  }
  RetryPendingQueue();
}

void Coordinator::HandleProgressReport(const StreamProgressReport& report) {
  ReplProgress progress;
  for (const StreamProgressReport::Entry& entry : report.entries) {
    auto it = active_streams_.find(entry.stream);
    if (it != active_streams_.end()) {
      it->second.last_offset = entry.media_offset;
      progress.entries.push_back(ReplProgress::Entry{entry.stream, entry.media_offset});
    }
  }
  if (!progress.entries.empty()) {
    // Keeps the standby's failover resume offsets fresh.
    LogRecord(ReplRecord{std::move(progress)});
  }
}

void Coordinator::MarkMsuDown(MsuInfo& msu) {
  msu.conn = nullptr;
  ledger_.MarkDown(msu.node);
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "msu-down", msu.node);
  }
  ReplMsuDown down;
  down.node = msu.node;
  LogRecord(ReplRecord{std::move(down)});

  // Shared delivery groups on this MSU die with it; the cached pages and the
  // fan-out state lived in the dead process. Members keep their own
  // ActiveStream/group_requests_ entries, so the loop below resumes each as a
  // unique stream; the delivery stream's group has no request and is dropped
  // silently once its hold is released.
  for (auto it = shared_groups_.begin(); it != shared_groups_.end();) {
    if (it->second.msu == msu.node) {
      it = shared_groups_.erase(it);
    } else {
      ++it;
    }
  }

  // In-flight background copies reading from or writing to the dead MSU die
  // with it; the surviving end is told to stop and the holds are refunded.
  AbortReplicationsTouching(msu.node);

  // Partition the failed MSU's streams by group (every member of a group
  // lives on one MSU, so a group is lost whole or not at all).
  std::map<GroupId, std::vector<StreamId>> lost;
  for (const auto& [id, active] : active_streams_) {
    if (active.msu == msu.node) {
      lost[active.group].push_back(id);
    }
  }
  for (const auto& [group, members] : lost) {
    bool recording = false;
    PendingRequest resume;
    auto request_it = group_requests_.find(group);
    const bool have_request = request_it != group_requests_.end();
    if (have_request) {
      resume = request_it->second;
      resume.start_offsets.assign(members.size(), SimTime());
    }
    for (StreamId id : members) {
      const ActiveStream& active = active_streams_[id];
      recording = recording || active.recording;
      if (have_request && static_cast<size_t>(active.component) < resume.start_offsets.size()) {
        resume.start_offsets[static_cast<size_t>(active.component)] = active.last_offset;
      }
      // Release the stream's hold exactly once: bandwidth in full, and for
      // recordings the *entire* space debit — a crash-interrupted recording
      // keeps no usable bytes (the MSU deletes the uncommitted file when it
      // restarts), so nothing stays charged against the account.
      (void)ledger_.Release(id);
      ReplStreamEnded ended;
      ended.stream = id;
      LogRecord(ReplRecord{std::move(ended)});
      if (active.recording) {
        // The half-recorded item is unusable; drop it from the catalog.
        (void)catalog_->RemoveContent(active.content_item);
      }
      active_streams_.erase(id);
    }
    groups_.erase(group);
    group_requests_.erase(group);
    ReplGroupEnded group_ended;
    group_ended.group = group;
    LogRecord(ReplRecord{std::move(group_ended)});
    if (recording) {
      if (have_request && resume.record) {
        (void)catalog_->RemoveContent(resume.content);  // composite parent, if any
      }
      if (recordings_lost_ != nullptr) {
        recordings_lost_->Add();
      }
      CALLIOPE_LOG(kWarning, "coord")
          << "MSU " << msu.node << " failed; recording group " << group << " lost";
      if (have_request) {
        NotifyRequestFailed(resume, UnavailableError("MSU failed during recording"));
      }
      continue;
    }
    if (!have_request) {
      continue;
    }
    // Replica-aware failover (§2.2 fault tolerance, extended): re-run the
    // resolve→reserve→launch pipeline against the surviving MSUs holding a
    // copy, resuming near where each member was interrupted.
    FailoverGroup(std::move(resume));
  }
}

Task Coordinator::FailoverGroup(PendingRequest request) {
  const SimTime failover_start = machine_->sim().Now();
  // Let the failure event settle (broken conns, ledger state) before
  // re-placing the group.
  co_await machine_->sim().Yield();
  if (crashed_) {
    co_return;  // the coordinator died between MarkMsuDown and this task
  }
  if (!FindSession(request.session).ok()) {
    co_return;  // client went away; nobody is watching this group
  }
  const Status started = co_await TryStartGroup(request);
  if (trace_ != nullptr) {
    const char* verdict = started.ok() ? "resumed"
                          : started.code() == StatusCode::kResourceExhausted ? "queued"
                                                                             : "failed";
    trace_->Span(trace_track_, metrics_prefix_, "failover", failover_start,
                 "group " + std::to_string(request.group) + " " + verdict);
  }
  if (started.ok()) {
    if (failover_groups_ != nullptr) {
      failover_groups_->Add();
    }
    CALLIOPE_LOG(kInfo, "coord") << "group " << request.group
                                 << " failed over to a surviving replica";
    co_return;
  }
  if (started.code() == StatusCode::kResourceExhausted) {
    // No survivor holds a copy with bandwidth headroom right now; wait in
    // the pending queue like any other unsatisfiable request.
    if (!EnqueuePending(request)) {
      CountRequestLost();
      NotifyRequestFailed(std::move(request), UnavailableError("admission queue full"));
    }
    co_return;
  }
  CALLIOPE_LOG(kWarning, "coord") << "group " << request.group
                                  << " failover failed: " << started.ToString();
  CountRequestLost();
  NotifyRequestFailed(std::move(request), started);
}

Task Coordinator::NotifyRequestFailed(PendingRequest request, Status error) {
  auto session = FindSession(request.session);
  if (!session.ok() || (*session)->conn == nullptr) {
    co_return;
  }
  PendingRequestFailed failed{request.group, error.ToString()};
  failed.epoch = params_.ha.enabled ? epoch_ : 0;
  Envelope envelope;
  envelope.body = MessageBody{std::move(failed)};
  const Status sent = co_await (*session)->conn->Send(std::move(envelope));
  (void)sent;
}

Task Coordinator::RetryPendingQueue() {
  if (retry_scheduled_ || pending_.empty()) {
    co_return;
  }
  // Hold the guard for the whole pass: triggers landing mid-pass are covered
  // because the loop re-reads pending_, which may grow meanwhile.
  retry_scheduled_ = true;
  co_await machine_->sim().Yield();  // run after the triggering event settles
  if (params_.traffic.enabled) {
    // Interactive outranks standard outranks bulk when freed capacity is
    // handed out; stable within a class, so FIFO fairness survives.
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const PendingRequest& a, const PendingRequest& b) {
                       return a.admission_class < b.admission_class;
                     });
  }
  std::deque<PendingRequest> still_waiting;
  while (!pending_.empty()) {
    if (crashed_) {
      retry_scheduled_ = false;
      co_return;  // the crash already dropped the queue's state
    }
    PendingRequest request = std::move(pending_.front());
    pending_.pop_front();
    ReplPendingPopped popped;
    popped.group = request.group;
    LogRecord(ReplRecord{std::move(popped)});
    if (!FindSession(request.session).ok()) {
      // The client went away while queued: the request is gone for good.
      CountRequestLost();
      continue;
    }
    const SimTime admit_start = machine_->sim().Now();
    const Status started = co_await TryStartGroup(request);
    if (started.code() != StatusCode::kResourceExhausted) {
      // A still-exhausted retry stays queued and was already counted once.
      RecordAdmission("retry", request, started, admit_start);
    }
    if (started.code() == StatusCode::kResourceExhausted) {
      still_waiting.push_back(std::move(request));
    } else if (!started.ok()) {
      // Never drop a queued request silently: the client is told its group
      // is dead so it can stop waiting for a stream that will never arrive.
      CALLIOPE_LOG(kWarning, "coord") << "queued request for '" << request.content
                                      << "' failed permanently: " << started.ToString();
      CountRequestLost();
      NotifyRequestFailed(std::move(request), started);
    }
  }
  // Re-queue this pass's failures behind anything newly queued. A re-queue
  // keeps its original enqueue stamp and never re-checks the class cap: the
  // request already holds its queue slot.
  for (PendingRequest& request : still_waiting) {
    (void)EnqueuePending(std::move(request), /*requeue=*/true);
  }
  ScheduleExpirySweep();  // cancels the armed sweep if the queue drained
  retry_scheduled_ = false;
}

// ---- pending-queue bounds, deadlines and shedding (DESIGN §5.9) ----

bool Coordinator::EnqueuePending(PendingRequest request, bool requeue) {
  if (!requeue && params_.traffic.enabled) {
    const int cap = QueueCapFor(request.admission_class);
    if (cap > 0 && pending_count_for(request.admission_class) >= static_cast<size_t>(cap)) {
      const size_t klass = static_cast<size_t>(request.admission_class);
      if (klass < kAdmissionClassCount && class_shed_[klass] != nullptr) {
        class_shed_[klass]->Add();
      }
      if (trace_ != nullptr) {
        trace_->Instant(trace_track_, metrics_prefix_, "queue-full",
                        std::string(AdmissionClassName(request.admission_class)) + " " +
                            request.content + " group " + std::to_string(request.group));
      }
      return false;
    }
  }
  if (request.enqueued_at == SimTime()) {
    request.enqueued_at = machine_->sim().Now();
  }
  ReplPendingPushed pushed;
  pushed.request = request;
  LogRecord(ReplRecord{std::move(pushed)});
  pending_.push_back(std::move(request));
  ScheduleExpirySweep();
  return true;
}

SimTime Coordinator::QueueDeadlineFor(AdmissionClass klass) const {
  if (params_.traffic.enabled) {
    SimTime deadline;
    switch (klass) {
      case AdmissionClass::kInteractive:
        deadline = params_.traffic.interactive_deadline;
        break;
      case AdmissionClass::kStandard:
        deadline = params_.traffic.standard_deadline;
        break;
      case AdmissionClass::kBulk:
        deadline = params_.traffic.bulk_deadline;
        break;
    }
    if (deadline > SimTime()) {
      return deadline;
    }
  }
  return params_.pending_deadline;
}

int Coordinator::QueueCapFor(AdmissionClass klass) const {
  switch (klass) {
    case AdmissionClass::kInteractive:
      return params_.traffic.interactive_queue_cap;
    case AdmissionClass::kStandard:
      return params_.traffic.standard_queue_cap;
    case AdmissionClass::kBulk:
      return params_.traffic.bulk_queue_cap;
  }
  return 0;
}

size_t Coordinator::pending_count_for(AdmissionClass klass) const {
  size_t count = 0;
  for (const PendingRequest& request : pending_) {
    if (request.admission_class == klass) {
      ++count;
    }
  }
  return count;
}

void Coordinator::ScheduleExpirySweep() {
  SimTime earliest;
  bool any = false;
  for (const PendingRequest& request : pending_) {
    const SimTime deadline = QueueDeadlineFor(request.admission_class);
    if (request.enqueued_at == SimTime() || !(deadline > SimTime())) {
      continue;  // no stamp (replicated legacy state) or deadline disabled
    }
    const SimTime expires = request.enqueued_at + deadline;
    if (!any || expires < earliest) {
      earliest = expires;
      any = true;
    }
  }
  if (!any) {
    expiry_token_.Cancel();
    expiry_armed_at_ = SimTime();
    return;
  }
  const SimTime fire_at = std::max(earliest, machine_->sim().Now());
  if (expiry_armed_at_ != SimTime() && expiry_armed_at_ <= fire_at) {
    return;  // an armed sweep already fires no later than needed
  }
  expiry_token_.Cancel();
  expiry_armed_at_ = fire_at;
  expiry_token_ = machine_->sim().ScheduleCancelableAt(fire_at, [this] { RunExpirySweep(); });
}

void Coordinator::RunExpirySweep() {
  expiry_armed_at_ = SimTime();
  if (crashed_ || (params_.ha.enabled && role_ != HaRole::kPrimary)) {
    return;  // re-armed on restart/takeover
  }
  const SimTime now = machine_->sim().Now();
  std::vector<PendingRequest> expired;
  for (auto it = pending_.begin(); it != pending_.end();) {
    const SimTime deadline = QueueDeadlineFor(it->admission_class);
    if (it->enqueued_at != SimTime() && deadline > SimTime() &&
        now >= it->enqueued_at + deadline) {
      expired.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (PendingRequest& request : expired) {
    ReplPendingPopped popped;
    popped.group = request.group;
    LogRecord(ReplRecord{std::move(popped)});
    ++requests_expired_count_;
    if (requests_expired_metric_ != nullptr) {
      requests_expired_metric_->Add();
    }
    const size_t klass = static_cast<size_t>(request.admission_class);
    if (klass < kAdmissionClassCount && class_expired_[klass] != nullptr) {
      class_expired_[klass]->Add();
    }
    CountRequestLost();
    if (trace_ != nullptr) {
      trace_->Instant(trace_track_, metrics_prefix_, "pending-expired",
                      request.content + " group " + std::to_string(request.group));
    }
    CALLIOPE_LOG(kWarning, "coord")
        << "queued request for '" << request.content << "' (group " << request.group
        << ") expired after its queue deadline";
    NotifyRequestFailed(std::move(request), DeadlineExceededError("queued past deadline"));
  }
  ScheduleExpirySweep();
}

Task Coordinator::ShedGovernorLoop() {
  if (governor_loop_running_ || !params_.traffic.enabled) {
    co_return;
  }
  governor_loop_running_ = true;
  while (!crashed_) {
    co_await machine_->sim().Delay(params_.traffic.governor_interval);
    if (crashed_) {
      break;
    }
    if (params_.ha.enabled && role_ != HaRole::kPrimary) {
      continue;  // only the primary owns the queue
    }
    const bool overloaded = overload_probe_ != nullptr && overload_probe_();
    if (!overloaded) {
      if (shed_active_) {
        shed_active_ = false;
        rebalance_paused_ = false;
        if (trace_ != nullptr) {
          trace_->Instant(trace_track_, metrics_prefix_, "shed-clear");
        }
      }
      continue;
    }
    if (!shed_active_) {
      shed_active_ = true;
      if (shed_episodes_ != nullptr) {
        shed_episodes_->Add();
      }
      if (trace_ != nullptr) {
        trace_->Instant(trace_track_, metrics_prefix_, "shed-start");
      }
    }
    // Bulk replication is the first casualty: pause the planner and abort
    // in-flight copies so their disk and NIC bandwidth serves viewers.
    if (params_.rebalance.enabled && !rebalance_paused_) {
      rebalance_paused_ = true;
      if (shed_rebalance_paused_ != nullptr) {
        shed_rebalance_paused_->Add();
      }
      std::vector<int64_t> inflight;
      for (const auto& [op_id, op] : repl_ops_) {
        inflight.push_back(op_id);
      }
      for (int64_t op_id : inflight) {
        AbortReplication(op_id, "load shedding");
      }
      if (!inflight.empty()) {
        continue;  // see whether the freed bandwidth clears the breach first
      }
    }
    // Shed queued requests newest-first, bulk before standard; interactive
    // traffic is never shed.
    int budget = params_.traffic.shed_per_tick;
    for (AdmissionClass klass : {AdmissionClass::kBulk, AdmissionClass::kStandard}) {
      while (budget > 0) {
        auto victim = pending_.end();
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
          if (it->admission_class == klass) {
            victim = it;  // the last match is the newest arrival
          }
        }
        if (victim == pending_.end()) {
          break;
        }
        PendingRequest request = std::move(*victim);
        pending_.erase(victim);
        ReplPendingPopped popped;
        popped.group = request.group;
        LogRecord(ReplRecord{std::move(popped)});
        --budget;
        co_await ShedRequest(std::move(request));
        if (crashed_ || (params_.ha.enabled && role_ != HaRole::kPrimary)) {
          break;
        }
      }
    }
    ScheduleExpirySweep();
  }
  governor_loop_running_ = false;
}

Co<void> Coordinator::ShedRequest(PendingRequest request) {
  if (params_.traffic.degrade_to_attach && SharingEligible(request)) {
    // Graceful degradation: a viewer within a live group's cache horizon can
    // ride the interval cache with no disk reservation at all.
    const SharedGroup* target = FindAttachTarget(request.content);
    if (target != nullptr) {
      const Status attached = co_await StartCacheAttach(request, *target);
      if (attached.ok()) {
        if (shed_degraded_ != nullptr) {
          shed_degraded_->Add();
        }
        if (trace_ != nullptr) {
          trace_->Instant(trace_track_, metrics_prefix_, "shed-degrade",
                          request.content + " group " + std::to_string(request.group));
        }
        co_return;
      }
    }
  }
  const size_t klass = static_cast<size_t>(request.admission_class);
  if (klass < kAdmissionClassCount && class_shed_[klass] != nullptr) {
    class_shed_[klass]->Add();
  }
  if (shed_rejected_ != nullptr) {
    shed_rejected_->Add();
  }
  CountRequestLost();
  if (trace_ != nullptr) {
    trace_->Instant(trace_track_, metrics_prefix_, "shed",
                    std::string(AdmissionClassName(request.admission_class)) + " " +
                        request.content + " group " + std::to_string(request.group));
  }
  NotifyRequestFailed(std::move(request), UnavailableError("shed under overload"));
}

bool Coordinator::MsuUp(const std::string& node) const { return ledger_.IsUp(node); }

DataRate Coordinator::DiskLoad(const std::string& msu, int disk) const {
  return ledger_.DiskLoad(msu, disk);
}

Bytes Coordinator::MsuFreeSpace(const std::string& msu) const {
  return ledger_.FreeSpace(msu);
}

}  // namespace calliope
