// The Calliope Coordinator: global resource manager and the system's single
// point of contact (§2.2).
//
// Non-real-time duties only: it authenticates clients, serves the table of
// contents, registers display ports, allocates MSU disk bandwidth and disk
// space, forms stream groups for composite types (all members on one MSU, so
// VCR commands start and stop them together), queues requests that cannot be
// satisfied yet, and detects MSU failures through broken TCP connections.
// Once a stream is scheduled the client talks to the MSU directly; the
// Coordinator only hears about it again at termination.
//
// With HaConfig.enabled two Coordinators form a warm-standby pair: the
// primary ships an operation log to the standby (see replication.h), and an
// epoch-fenced lease protocol governs takeover. HA member functions are
// defined in replication.cc.
#ifndef CALLIOPE_SRC_COORD_COORDINATOR_H_
#define CALLIOPE_SRC_COORD_COORDINATOR_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/coord/catalog.h"
#include "src/coord/replication.h"
#include "src/hw/machine.h"
#include "src/ibtree/ibtree.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/place/ledger.h"
#include "src/place/policy.h"
#include "src/rebalance/planner.h"
#include "src/sim/condition.h"
#include "src/sim/simulator.h"

namespace calliope {

// Popularity-aware stream sharing (DESIGN §5.6). Disabled by default: with
// `enabled == false` the Coordinator's admission path is byte-identical to
// the pre-sharing behavior, which is what the determinism/chaos suites pin.
struct SharingConfig {
  SharingConfig() = default;

  bool enabled = false;
  // Requests for the same title arriving within this window coalesce into one
  // shared delivery group fed by a single disk stream. Must stay well under
  // the client's WaitForGroupReady timeout (60s).
  SimTime batch_window = SimTime::Millis(500);
  // A viewer arriving within this much media time of a live shared group's
  // playback position attaches as a cache-fed solo stream (no disk bandwidth
  // reserved) instead of opening a new batch.
  SimTime cache_horizon = SimTime::Seconds(8);
  // Per-title popularity EWMA half-life; a bump decays by half every
  // `popularity_halflife` of simulated time.
  SimTime popularity_halflife = SimTime::Seconds(60);
  // EWMA value at which a title counts as hot and new delivery streams pin
  // its prefix pages in the serving MSU's page cache.
  double hot_threshold = 3.0;
};

// SLO-driven traffic control (DESIGN §5.9). Disabled by default: with
// `enabled == false` the pending queue stays one classless FIFO and no
// governor runs, byte-identical to the pre-traffic-control admission path.
// Enabled, each request's AdmissionClass buys it a bounded queue slot, a
// class deadline, retry priority (interactive > standard > bulk) and
// shedding protection — the saturation governor never sheds interactive
// traffic and pauses background rebalancing before touching any viewer.
struct TrafficControlConfig {
  TrafficControlConfig() = default;

  bool enabled = false;
  // Bounded per-class pending queues: a request arriving to a full class
  // queue is rejected immediately (reject-newest) instead of deepening the
  // backlog. Zero = unbounded.
  int interactive_queue_cap = 64;
  int standard_queue_cap = 32;
  int bulk_queue_cap = 8;
  // Per-class queue deadlines; zero falls back to
  // CoordinatorParams::pending_deadline. Interactive waits the least: a
  // channel surfer who has not seen frames in 10 s has already surfed away.
  SimTime interactive_deadline = SimTime::Seconds(10);
  SimTime standard_deadline = SimTime::Seconds(30);
  SimTime bulk_deadline = SimTime::Seconds(120);
  // Saturation-governor cadence. Each tick consults the overload probe
  // (Installation wires it to a MetricsSampler SLO monitor) and sheds while
  // the probe reports a breach.
  SimTime governor_interval = SimTime::Millis(500);
  // Queued requests shed per governor tick, newest-first, bulk before
  // standard. Bounded so one long breach degrades gradually rather than
  // emptying the queue in a single burst.
  int shed_per_tick = 4;
  // Before rejecting a shed viewer outright, try re-admitting it as a
  // cache-horizon attach (no disk bandwidth; needs sharing enabled).
  bool degrade_to_attach = true;
};

struct CoordinatorParams {
  int listen_port = 5000;
  // CPU cost of handling one scheduling request (authentication, catalog
  // lookups, placement decision, bookkeeping). Calibrated so the §3.3 load
  // test (60 req/s) puts the Coordinator near 14% CPU.
  SimTime request_compute = SimTime::Micros(900);
  // Deliverable per-disk bandwidth budget used for admission accounting
  // (Table 1: a Barracuda under concurrent load sustains ~2.4 MB/s).
  DataRate disk_budget = DataRate::MegabytesPerSec(2.35);
  // Placement policy name (see PlacementPolicyRegistry::WithBuiltins);
  // unknown names fall back to the historical least-loaded behavior.
  std::string placement_policy = "least-loaded";
  // Seed for stochastic policies (power-of-two), so runs stay reproducible.
  uint64_t placement_seed = 1996;
  // Warm-standby pairing; disabled by default (single Coordinator).
  HaConfig ha;
  // Stream sharing; disabled by default. Force-disabled when `ha.enabled`
  // (shared-group state is not replicated; failover falls back to resuming
  // members as unique streams, which the non-HA path already provides).
  SharingConfig sharing;
  // Background hot-title replication (DESIGN §5.8); disabled by default.
  // Works with or without HA: in-flight copy ops are oplog-shipped, so a
  // standby takeover keeps the plan.
  RebalanceConfig rebalance;
  // How long a request may sit in the pending queue before it is expired
  // with an explicit PendingRequestFailed notification (zero disables
  // expiry). On by default with a generous allowance: the historical
  // behavior — a client waiting forever for a title that stays saturated,
  // with no notification — was a bug, not a feature.
  SimTime pending_deadline = SimTime::Seconds(600);
  // SLO-driven admission classes + load shedding (DESIGN §5.9); disabled by
  // default.
  TrafficControlConfig traffic;
};

class Coordinator {
 public:
  Coordinator(Machine& machine, NetNode& node, Catalog catalog,
              CoordinatorParams params = CoordinatorParams());
  // HA pairs share one Catalog instance — the paper's durable database, which
  // both coordinators mount. Single-coordinator callers keep the by-value
  // constructor above.
  Coordinator(Machine& machine, NetNode& node, std::shared_ptr<Catalog> catalog,
              CoordinatorParams params = CoordinatorParams());

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  Catalog& catalog() { return *catalog_; }
  const CoordinatorParams& params() const { return params_; }

  // Crash / recovery for fault-tolerance experiments. A crash loses all
  // in-memory scheduling state (sessions, active streams, pending queue,
  // ledger); the catalog — the paper's durable database — survives. Without
  // a standby, restart rebuilds the ledger from MSU re-registrations (MSUs
  // reconnect on their own; clients must open new sessions). With HA enabled
  // a restarted Coordinator rejoins as the standby of whoever took over.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  // ---- introspection for tests, benches and examples ----
  bool MsuUp(const std::string& node) const;
  size_t msu_count() const { return msus_.size(); }
  size_t active_stream_count() const { return active_streams_.size(); }
  size_t pending_request_count() const { return pending_.size(); }
  int64_t requests_handled() const { return requests_handled_; }
  DataRate DiskLoad(const std::string& msu, int disk) const;
  Bytes MsuFreeSpace(const std::string& msu) const;
  const ResourceLedger& ledger() const { return ledger_; }
  const char* placement_policy_name() const { return policy_->name(); }
  // Background copies currently in flight (rebalancing, DESIGN §5.8).
  size_t inflight_replication_count() const { return repl_ops_.size(); }

  // ---- HA introspection ----
  bool is_primary() const { return !params_.ha.enabled || role_ == HaRole::kPrimary; }
  int64_t ha_epoch() const { return epoch_; }
  // Standby: true once a snapshot from the current primary has been applied.
  bool ha_joined() const { return joined_; }
  int64_t takeover_count() const { return takeovers_count_; }
  // Queued requests dropped for good (client notified where possible).
  int64_t requests_lost() const { return requests_lost_count_; }
  // Queued requests expired past their queue deadline (subset of lost).
  int64_t requests_expired() const { return requests_expired_count_; }

  // ---- traffic control (DESIGN §5.9) ----
  // Saturation probe consulted by the shedding governor: returns true while
  // the watched SLO monitor is breaching. Installation wires this to
  // MetricsSampler::SloBreaching; unset, the governor never sheds.
  void SetOverloadProbe(std::function<bool()> probe) { overload_probe_ = std::move(probe); }
  // True while the governor is actively shedding (between an overload
  // episode's first breaching tick and its clear).
  bool shedding_active() const { return shed_active_; }
  // Queued requests currently waiting in `klass`.
  size_t pending_count_for(AdmissionClass klass) const;

  // Publishes admission/failover/ledger instruments into `metrics` and
  // scheduling events into `trace`. Either may be null (standalone
  // construction in unit tests). `prefix` keys the instrument names so an HA
  // pair's coordinators stay distinguishable ("coord" vs "coord2").
  void AttachObservability(MetricsRegistry* metrics, TraceRecorder* trace,
                           std::string prefix = "coord");

 private:
  // Connection bookkeeping only; capacity and load live in the ledger.
  struct MsuInfo {
    MsuInfo() = default;

    std::string node;
    TcpConn* conn = nullptr;
  };

  // The wire structs double as the in-memory bookkeeping so the oplog can
  // ship them verbatim (field sets are identical by construction).
  using DisplayPort = DisplayPortSpec;
  using PendingRequest = PendingPlayRequest;

  struct SessionInfo {
    SessionInfo() = default;

    SessionId id = 0;
    std::string customer;
    bool admin = false;
    TcpConn* conn = nullptr;
    std::map<std::string, DisplayPort> ports;
  };

  struct ActiveStream {
    ActiveStream() = default;

    StreamId id = 0;
    GroupId group = 0;
    std::string msu;
    int disk = 0;
    int component = 0;         // index within the group's composite type
    std::string content_item;  // atomic item name
    bool recording = false;
    SessionId session = 0;
    SimTime last_offset;  // playback: last reported media position
  };

  // ---- wiring ----
  void OnAccept(TcpConn* conn);
  Co<MessageBody> Dispatch(TcpConn* conn, MessageArg body);
  void OnConnClosed(TcpConn* conn);

  // ---- client request handlers ----
  Co<MessageBody> HandleOpenSession(TcpConn* conn, const OpenSessionRequest& request);
  Co<MessageBody> HandleListContent(const ListContentRequest& request);
  Co<MessageBody> HandleRegisterPort(TcpConn* conn, const RegisterPortRequest& request);
  Co<MessageBody> HandleUnregisterPort(TcpConn* conn, const UnregisterPortRequest& request);
  Co<MessageBody> HandlePlay(TcpConn* conn, const PlayRequest& request);
  Co<MessageBody> HandleRecord(TcpConn* conn, const RecordRequest& request);
  Co<MessageBody> HandleDelete(TcpConn* conn, const DeleteContentRequest& request);
  Co<MessageBody> HandleLoadFastScan(TcpConn* conn, const LoadFastScanRequest& request);

  // ---- MSU-facing ----
  Co<MessageBody> HandleMsuRegister(TcpConn* conn, const MsuRegisterRequest& request);
  void HandleStreamTerminated(const StreamTerminated& note);
  void HandleProgressReport(const StreamProgressReport& report);
  void MarkMsuDown(MsuInfo& msu);

  // ---- stream sharing (DESIGN §5.6) ----
  // One live shared delivery group, keyed by its delivery stream id. Members
  // are ordinary ActiveStream entries (their kSharedDisk ledger holds charge
  // NIC + cache memory only), so progress reports and failover reuse the
  // unique-stream machinery; this record exists for attach decisions and the
  // groups gauge.
  struct SharedGroup {
    SharedGroup() = default;

    StreamId delivery_stream = 0;
    std::string msu;
    int disk = 0;
    std::string content;  // title (atomic item name)
    std::string file;
    DataRate rate;
    SimTime started_at;  // delivery start; playback position ~= Now() - this
    int member_count = 0;
  };
  // Requests for one title coalescing until the batch window closes.
  struct ShareBatch {
    ShareBatch() = default;

    std::vector<PendingRequest> waiters;
  };

  // True when `request` can ride a shared delivery group: sharing on, a
  // non-composite playback of an existing, fully-recorded title.
  bool SharingEligible(const PendingRequest& request) const;
  // Decays and bumps the title's popularity EWMA (a request arrived).
  void BumpPopularity(const std::string& content);
  bool IsHot(const std::string& content) const;
  // Live shared group on an up MSU whose playback position trails within the
  // cache horizon, or nullptr.
  const SharedGroup* FindAttachTarget(const std::string& content) const;
  // Admits `request` as a cache-fed solo stream trailing `target` (no disk
  // bandwidth; NIC + interval-cache bytes on the serving MSU).
  Co<Status> StartCacheAttach(PendingRequest request, SharedGroup target);
  // Closes the batch window for `content`, then starts one delivery stream
  // fanning out to every waiter still holding a live session.
  Task FlushShareBatch(std::string content);
  Co<void> StartSharedGroup(std::string content, std::vector<PendingRequest> waiters);
  // A member VCR op split it out of its shared group on the MSU; release the
  // member's shared hold and re-admit it as a solo stream at the split offset.
  Co<MessageBody> HandleSharedMemberSplit(const SharedMemberSplit& split);

  // ---- background rebalancing (DESIGN §5.8) ----
  // One in-flight background copy, mirrored on the HA standby through
  // ReplReplicationStarted/Ended records so takeover keeps the plan.
  struct ReplOp {
    ReplOp() = default;

    int64_t op = 0;
    std::string content;
    std::string source_msu;
    int source_disk = 0;
    std::string source_file;
    std::string target_msu;
    int target_disk = -1;
    std::string replica_file;
    DataRate rate;
    Bytes space;  // estimated replica size, held against the target
  };

  // Periodic planner tick: snapshot → PlanRebalance → execute. Runs on every
  // coordinator with rebalancing enabled but only acts while primary.
  Task RebalanceLoop();
  RebalanceSnapshot BuildRebalanceSnapshot() const;
  // The title's popularity EWMA decayed to now (same math as IsHot).
  double DecayedPopularity(const std::string& content) const;
  // Executes one planned copy: source PrepareCopy → target BeginCopy, then
  // registers the op, takes its ledger holds and logs ReplReplicationStarted.
  // Any refusal just skips the copy until a later tick.
  Co<void> StartReplication(CopyAction action);
  // Drops a cold dynamic replica: catalog first (no new admission lands on
  // it), then the MSU file.
  Co<void> ExecuteDemotion(DemoteAction action);
  void HandleReplicaInstalled(const ReplicaInstalled& note);
  void HandleReplicaCopyFailed(const ReplicaCopyFailed& note);
  // Forgets op `op_id`: refunds its ledger holds, logs ReplReplicationEnded
  // and tells both ends to stop (idempotent; dead MSUs are skipped).
  void AbortReplication(int64_t op_id, const std::string& reason);
  Task SendAbortCopy(std::string msu_node, int64_t op_id);
  Task SendDeleteFile(std::string msu_node, std::string file);
  // Every in-flight copy reading from or writing to `msu_node` dies with it.
  void AbortReplicationsTouching(const std::string& msu_node);

  // ---- scheduling core ----
  // Starts all component streams of a (possibly composite) request on one
  // MSU. Returns kResourceExhausted when no MSU currently qualifies (the
  // caller queues the request).
  Co<Status> TryStartGroup(const PendingRequest& request);
  Task RetryPendingQueue();
  // The single entrance to the pending queue: stamps the first enqueue time,
  // enforces the per-class queue cap, logs ReplPendingPushed and arms the
  // expiry sweep. Returns false when the class queue is full (the caller
  // rejects the request explicitly — nothing was queued). Re-queues after a
  // failed retry pass `requeue` so they keep the original stamp and bypass
  // the cap (the request already held a slot this pass).
  bool EnqueuePending(PendingRequest request, bool requeue = false);
  // Queue deadline for a class: the per-class override when traffic control
  // is on, else CoordinatorParams::pending_deadline. Zero = no deadline.
  SimTime QueueDeadlineFor(AdmissionClass klass) const;
  int QueueCapFor(AdmissionClass klass) const;
  // (Re)arms the one-shot expiry event at the earliest pending deadline;
  // cancels it when the queue is empty or expiry is disabled.
  void ScheduleExpirySweep();
  // Expires every request past its deadline: explicit PendingRequestFailed,
  // `coord.requests.expired`, then re-arms for the next deadline.
  void RunExpirySweep();
  // Saturation governor (traffic control only): while the overload probe
  // reports an SLO breach, pause/abort background rebalancing first, then
  // shed queued bulk/standard requests newest-first. Interactive requests
  // are never shed.
  Task ShedGovernorLoop();
  // Sheds one queued request: with degrade_to_attach, tries a cache-horizon
  // attach before the explicit rejection.
  Co<void> ShedRequest(PendingRequest request);
  // Replica-aware failover: re-places one interrupted playback group on the
  // surviving MSUs, resuming near the last known media offsets.
  Task FailoverGroup(PendingRequest request);
  // Tells the session's client that a queued/migrating group died for good.
  Task NotifyRequestFailed(PendingRequest request, Status error);
  Result<SessionInfo*> FindSession(SessionId id);
  // Resolves the atomic (item, port) component pairs of a request.
  struct Component {
    std::string item_name;  // catalog item ("sem1.0") — or new item for records
    std::string file_name;
    std::string type_name;
    DisplayPort port;
  };
  Result<std::vector<Component>> ResolveComponents(const PendingRequest& request,
                                                   SessionInfo& session);
  // Reduces a resolved request to the policy's input: per-component rates,
  // space estimates and candidate copies.
  Result<PlacementSpec> BuildPlacementSpec(const PendingRequest& request,
                                           const std::vector<Component>& components);
  // Admission outcome bookkeeping shared by the play/record/retry paths:
  // bumps the right counter and emits an "admit" span for the decision.
  void RecordAdmission(const char* kind, const PendingRequest& request, const Status& outcome,
                       SimTime start);
  // Bumps the lost-requests counter for a queued request dropped for good.
  void CountRequestLost(int64_t count = 1);

  // ---- HA / log shipping (definitions in replication.cc) ----
  // Called from the constructor when params_.ha.enabled.
  void StartHa();
  void BecomeStandby();
  // Appends one record to the primary's outgoing oplog (no-op otherwise).
  void LogRecord(ReplRecord record);
  // Blocks until the standby acked the log through `target`. True: flushed
  // (or running solo, peer dead); false: we lost the primaryship meanwhile.
  Co<bool> SyncReplicate(int64_t target);
  Task ReplicationLoop();
  Task StandbyWatchdog();
  Co<MessageBody> HandleReplAppend(TcpConn* conn, const ReplAppendRequest& request);
  void ApplyReplRecord(const ReplRecord& record);
  std::vector<ReplRecord> BuildSnapshotRecords() const;
  // Clears all replicated scheduling state (not the catalog, not counters).
  void ResetVolatileState();
  // Removes `group`'s parked request from the in-flight retry list (its
  // outcome record arrived).
  void DropInFlight(GroupId group);
  // Primary lost its lease (partition) or saw a higher epoch: fence ourself.
  void StepDown();
  // Standby assumes the primaryship under `new_epoch`.
  void TakeOver(int64_t new_epoch);

  Machine* machine_;
  NetNode* node_;
  CoordinatorParams params_;
  std::shared_ptr<Catalog> catalog_;
  ResourceLedger ledger_;
  std::unique_ptr<PlacementPolicy> policy_;
  std::map<std::string, MsuInfo> msus_;
  std::map<SessionId, SessionInfo> sessions_;
  std::map<TcpConn*, SessionId> conn_sessions_;
  std::map<StreamId, ActiveStream> active_streams_;
  std::map<GroupId, std::vector<StreamId>> groups_;
  // Snapshot of the request that started each live group, kept so a failed
  // MSU's groups can be re-placed; erased when the group ends normally.
  std::map<GroupId, PendingRequest> group_requests_;
  std::deque<PendingRequest> pending_;
  // ---- sharing state (empty unless params_.sharing.enabled) ----
  std::map<StreamId, SharedGroup> shared_groups_;
  std::map<std::string, ShareBatch> share_batches_;  // title -> open batch
  std::map<std::string, double> popularity_;         // title -> EWMA
  std::map<std::string, SimTime> popularity_bumped_;  // title -> last bump
  // Standby shadow: requests the primary popped for a retry whose outcome
  // has not been logged yet. Re-queued on takeover (zero-amnesia for a crash
  // mid-retry); always empty on a primary.
  std::vector<PendingRequest> repl_in_flight_;
  // ---- rebalancing state (empty unless params_.rebalance.enabled) ----
  std::map<int64_t, ReplOp> repl_ops_;  // in-flight background copies
  int64_t next_repl_op_ = 1;
  bool rebalance_loop_running_ = false;
  // ---- traffic-control state (DESIGN §5.9) ----
  std::function<bool()> overload_probe_;
  bool governor_loop_running_ = false;
  bool shed_active_ = false;        // an overload episode is in progress
  bool rebalance_paused_ = false;   // governor paused background copies
  EventToken expiry_token_;         // one-shot queue-deadline sweep
  SimTime expiry_armed_at_;         // when it fires (zero: not armed)
  int64_t requests_expired_count_ = 0;
  // Set when HA forced sharing off at construction; surfaced as the
  // `.sharing.disabled_ha` counter at attach time so the degradation is
  // explicit rather than silent.
  bool sharing_disabled_ha_ = false;
  SessionId next_session_ = 1;
  StreamId next_stream_ = 1;
  GroupId next_group_ = 1;
  int64_t requests_handled_ = 0;
  int64_t requests_lost_count_ = 0;
  bool retry_scheduled_ = false;
  bool crashed_ = false;

  // ---- HA state (meaningful only when params_.ha.enabled) ----
  HaRole role_ = HaRole::kPrimary;
  int64_t epoch_ = 1;
  bool joined_ = false;        // standby: applied a snapshot from the primary
  bool peer_joined_ = false;   // primary: the standby holds our snapshot
  bool need_snapshot_ = true;  // primary: next batch must be a full install
  TcpConn* repl_conn_ = nullptr;     // primary: outbound conn to the standby
  TcpConn* repl_in_conn_ = nullptr;  // standby: inbound conn from the primary
  std::vector<ReplRecord> pending_records_;  // primary: unshipped oplog tail
  int64_t oplog_appended_ = 0;  // records appended this primaryship
  int64_t oplog_acked_ = 0;     // records the standby has acknowledged
  SimTime last_append_;   // standby: when the primary last appended
  SimTime last_ack_;      // primary: when the standby last acked
  SimTime standby_since_;
  bool repl_loop_running_ = false;
  bool standby_watchdog_running_ = false;
  int64_t takeovers_count_ = 0;
  std::unique_ptr<Condition> oplog_cond_;  // wakes the shipping loop
  std::unique_ptr<Condition> flush_cond_;  // wakes SyncReplicate waiters

  // Observability (null when not attached). Counter pointers are cached once
  // at attach time; callbacks pull gauges at snapshot time.
  MetricsRegistry* metrics_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  std::string metrics_prefix_ = "coord";
  std::string trace_track_ = "coordinator";
  Counter* admit_accepted_ = nullptr;
  Counter* admit_rejected_ = nullptr;
  Counter* admit_queued_ = nullptr;
  Counter* failover_groups_ = nullptr;
  Counter* groups_formed_ = nullptr;     // shared delivery groups started
  Counter* groups_members_ = nullptr;    // viewers admitted through a batch
  Counter* groups_attaches_ = nullptr;   // cache-fed trailing-viewer admits
  Counter* groups_splits_ = nullptr;     // members split out by VCR ops
  Counter* recordings_lost_ = nullptr;
  Counter* requests_lost_metric_ = nullptr;
  Counter* takeovers_metric_ = nullptr;
  Counter* repl_batches_ = nullptr;
  Counter* repl_records_shipped_ = nullptr;
  Histogram* takeover_gap_us_ = nullptr;
  Counter* rebalance_ticks_ = nullptr;
  Counter* rebalance_copies_started_ = nullptr;
  Counter* rebalance_copies_installed_ = nullptr;
  Counter* rebalance_copies_aborted_ = nullptr;
  Counter* rebalance_preemptions_ = nullptr;
  Counter* rebalance_demotions_ = nullptr;
  Counter* requests_expired_metric_ = nullptr;
  // Per-class admission counters, indexed by AdmissionClass value; null
  // unless traffic control is enabled.
  Counter* class_accepted_[kAdmissionClassCount] = {};
  Counter* class_queued_[kAdmissionClassCount] = {};
  Counter* class_shed_[kAdmissionClassCount] = {};
  Counter* class_expired_[kAdmissionClassCount] = {};
  Counter* shed_episodes_ = nullptr;
  Counter* shed_rejected_ = nullptr;
  Counter* shed_degraded_ = nullptr;
  Counter* shed_rebalance_paused_ = nullptr;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_COORD_COORDINATOR_H_
