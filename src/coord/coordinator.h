// The Calliope Coordinator: global resource manager and the system's single
// point of contact (§2.2).
//
// Non-real-time duties only: it authenticates clients, serves the table of
// contents, registers display ports, allocates MSU disk bandwidth and disk
// space, forms stream groups for composite types (all members on one MSU, so
// VCR commands start and stop them together), queues requests that cannot be
// satisfied yet, and detects MSU failures through broken TCP connections.
// Once a stream is scheduled the client talks to the MSU directly; the
// Coordinator only hears about it again at termination.
#ifndef CALLIOPE_SRC_COORD_COORDINATOR_H_
#define CALLIOPE_SRC_COORD_COORDINATOR_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/coord/catalog.h"
#include "src/hw/machine.h"
#include "src/ibtree/ibtree.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/place/ledger.h"
#include "src/place/policy.h"

namespace calliope {

struct CoordinatorParams {
  int listen_port = 5000;
  // CPU cost of handling one scheduling request (authentication, catalog
  // lookups, placement decision, bookkeeping). Calibrated so the §3.3 load
  // test (60 req/s) puts the Coordinator near 14% CPU.
  SimTime request_compute = SimTime::Micros(900);
  // Deliverable per-disk bandwidth budget used for admission accounting
  // (Table 1: a Barracuda under concurrent load sustains ~2.4 MB/s).
  DataRate disk_budget = DataRate::MegabytesPerSec(2.35);
  // Placement policy name (see PlacementPolicyRegistry::WithBuiltins);
  // unknown names fall back to the historical least-loaded behavior.
  std::string placement_policy = "least-loaded";
  // Seed for stochastic policies (power-of-two), so runs stay reproducible.
  uint64_t placement_seed = 1996;
};

class Coordinator {
 public:
  Coordinator(Machine& machine, NetNode& node, Catalog catalog,
              CoordinatorParams params = CoordinatorParams());

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  Catalog& catalog() { return catalog_; }
  const CoordinatorParams& params() const { return params_; }

  // Crash / recovery for fault-tolerance experiments. A crash loses all
  // in-memory scheduling state (sessions, active streams, pending queue,
  // ledger); the catalog — the paper's durable database — survives. On
  // restart the ledger is rebuilt from MSU re-registrations (MSUs reconnect
  // on their own; clients must open new sessions).
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  // ---- introspection for tests, benches and examples ----
  bool MsuUp(const std::string& node) const;
  size_t msu_count() const { return msus_.size(); }
  size_t active_stream_count() const { return active_streams_.size(); }
  size_t pending_request_count() const { return pending_.size(); }
  int64_t requests_handled() const { return requests_handled_; }
  DataRate DiskLoad(const std::string& msu, int disk) const;
  Bytes MsuFreeSpace(const std::string& msu) const;
  const ResourceLedger& ledger() const { return ledger_; }
  const char* placement_policy_name() const { return policy_->name(); }

  // Publishes admission/failover/ledger instruments into `metrics` and
  // scheduling events into `trace`. Either may be null (standalone
  // construction in unit tests).
  void AttachObservability(MetricsRegistry* metrics, TraceRecorder* trace);

 private:
  // Connection bookkeeping only; capacity and load live in the ledger.
  struct MsuInfo {
    MsuInfo() = default;

    std::string node;
    TcpConn* conn = nullptr;
  };

  struct DisplayPort {
    DisplayPort() = default;

    std::string name;
    std::string type_name;
    std::string node;
    int udp_port = 0;
    int control_port = 0;
    std::vector<std::string> component_ports;  // for composite ports
  };

  struct SessionInfo {
    SessionInfo() = default;

    SessionId id = 0;
    std::string customer;
    bool admin = false;
    TcpConn* conn = nullptr;
    std::map<std::string, DisplayPort> ports;
  };

  struct ActiveStream {
    ActiveStream() = default;

    StreamId id = 0;
    GroupId group = 0;
    std::string msu;
    int disk = 0;
    int component = 0;         // index within the group's composite type
    std::string content_item;  // atomic item name
    bool recording = false;
    SessionId session = 0;
    SimTime last_offset;  // playback: last reported media position
  };

  // A play/record request waiting for resources.
  struct PendingRequest {
    PendingRequest() = default;

    SessionId session = 0;
    bool record = false;
    std::string content;       // play: content name; record: new content name
    std::string type_name;     // record only
    SimTime estimated_length;  // record only
    DisplayPort port;          // snapshot of the display port
    GroupId group = 0;         // pre-assigned so the client can reference it
    // Failover: per-component media offsets to resume playback at.
    std::vector<SimTime> start_offsets;
  };

  // ---- wiring ----
  void OnAccept(TcpConn* conn);
  Co<MessageBody> Dispatch(TcpConn* conn, MessageArg body);
  void OnConnClosed(TcpConn* conn);

  // ---- client request handlers ----
  Co<MessageBody> HandleOpenSession(TcpConn* conn, const OpenSessionRequest& request);
  Co<MessageBody> HandleListContent(const ListContentRequest& request);
  Co<MessageBody> HandleRegisterPort(TcpConn* conn, const RegisterPortRequest& request);
  Co<MessageBody> HandleUnregisterPort(TcpConn* conn, const UnregisterPortRequest& request);
  Co<MessageBody> HandlePlay(TcpConn* conn, const PlayRequest& request);
  Co<MessageBody> HandleRecord(TcpConn* conn, const RecordRequest& request);
  Co<MessageBody> HandleDelete(TcpConn* conn, const DeleteContentRequest& request);
  Co<MessageBody> HandleLoadFastScan(TcpConn* conn, const LoadFastScanRequest& request);

  // ---- MSU-facing ----
  Co<MessageBody> HandleMsuRegister(TcpConn* conn, const MsuRegisterRequest& request);
  void HandleStreamTerminated(const StreamTerminated& note);
  void HandleProgressReport(const StreamProgressReport& report);
  void MarkMsuDown(MsuInfo& msu);

  // ---- scheduling core ----
  // Starts all component streams of a (possibly composite) request on one
  // MSU. Returns kResourceExhausted when no MSU currently qualifies (the
  // caller queues the request).
  Co<Status> TryStartGroup(const PendingRequest& request);
  Task RetryPendingQueue();
  // Replica-aware failover: re-places one interrupted playback group on the
  // surviving MSUs, resuming near the last known media offsets.
  Task FailoverGroup(PendingRequest request);
  // Tells the session's client that a queued/migrating group died for good.
  Task NotifyRequestFailed(PendingRequest request, Status error);
  Result<SessionInfo*> FindSession(SessionId id);
  // Resolves the atomic (item, port) component pairs of a request.
  struct Component {
    std::string item_name;  // catalog item ("sem1.0") — or new item for records
    std::string file_name;
    std::string type_name;
    DisplayPort port;
  };
  Result<std::vector<Component>> ResolveComponents(const PendingRequest& request,
                                                   SessionInfo& session);
  // Reduces a resolved request to the policy's input: per-component rates,
  // space estimates and candidate copies.
  Result<PlacementSpec> BuildPlacementSpec(const PendingRequest& request,
                                           const std::vector<Component>& components);
  // Admission outcome bookkeeping shared by the play/record/retry paths:
  // bumps the right counter and emits an "admit" span for the decision.
  void RecordAdmission(const char* kind, const PendingRequest& request, const Status& outcome,
                       SimTime start);

  Machine* machine_;
  NetNode* node_;
  CoordinatorParams params_;
  Catalog catalog_;
  ResourceLedger ledger_;
  std::unique_ptr<PlacementPolicy> policy_;
  std::map<std::string, MsuInfo> msus_;
  std::map<SessionId, SessionInfo> sessions_;
  std::map<TcpConn*, SessionId> conn_sessions_;
  std::map<StreamId, ActiveStream> active_streams_;
  std::map<GroupId, std::vector<StreamId>> groups_;
  // Snapshot of the request that started each live group, kept so a failed
  // MSU's groups can be re-placed; erased when the group ends normally.
  std::map<GroupId, PendingRequest> group_requests_;
  std::deque<PendingRequest> pending_;
  SessionId next_session_ = 1;
  StreamId next_stream_ = 1;
  GroupId next_group_ = 1;
  int64_t requests_handled_ = 0;
  bool retry_scheduled_ = false;
  bool crashed_ = false;

  // Observability (null when not attached). Counter pointers are cached once
  // at attach time; callbacks pull gauges at snapshot time.
  MetricsRegistry* metrics_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  Counter* admit_accepted_ = nullptr;
  Counter* admit_rejected_ = nullptr;
  Counter* admit_queued_ = nullptr;
  Counter* failover_groups_ = nullptr;
  Counter* recordings_lost_ = nullptr;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_COORD_COORDINATOR_H_
