// Volume: block allocation over one raw disk.
//
// The MSU file system uses large (256 KB) file blocks so "the file system
// meta-data ... can be entirely cached in main memory" (§2.3.3). A 2 GB
// Barracuda holds 8192 such blocks; the allocation bitmap is a few KB.
#ifndef CALLIOPE_SRC_FS_VOLUME_H_
#define CALLIOPE_SRC_FS_VOLUME_H_

#include <cstdint>
#include <vector>

#include "src/hw/disk.h"
#include "src/ibtree/ibtree.h"
#include "src/util/status.h"

namespace calliope {

class Volume {
 public:
  // `reserve_metadata_block` pins block 0 for the on-disk copy of the file
  // table (the in-memory metadata's persistence home).
  explicit Volume(Disk& disk, bool reserve_metadata_block = false);

  Volume(const Volume&) = delete;
  Volume& operator=(const Volume&) = delete;

  // Next-fit allocation: sequential allocations land on consecutive blocks
  // when possible, so sequentially-written files read back without seeks.
  Result<int64_t> AllocateBlock();
  // Reserves `count` blocks without choosing addresses yet (space
  // accounting for recording-length estimates).
  Status Reserve(int64_t count);
  void Unreserve(int64_t count);
  void FreeBlock(int64_t block);

  int64_t total_blocks() const { return static_cast<int64_t>(bitmap_.size()); }
  int64_t free_blocks() const { return free_; }
  int64_t reserved_blocks() const { return reserved_; }
  // Blocks available for new reservations.
  int64_t unreserved_free_blocks() const { return free_ - reserved_; }

  Disk& disk() { return *disk_; }
  const Disk& disk() const { return *disk_; }
  Bytes BlockOffset(int64_t block) const { return kDataPageSize * block; }

 private:
  Disk* disk_;
  std::vector<bool> bitmap_;  // true = allocated
  int64_t free_;
  int64_t reserved_ = 0;
  int64_t next_fit_ = 0;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_FS_VOLUME_H_
