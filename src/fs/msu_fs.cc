#include "src/fs/msu_fs.h"

#include <algorithm>
#include <cstring>

namespace calliope {

namespace {

uint64_t Fnv1a(const std::byte* data, size_t len) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    hash ^= static_cast<uint64_t>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

int64_t BlocksForSize(Bytes size) {
  return (size.count() + kDataPageSize.count() - 1) / kDataPageSize.count();
}

}  // namespace

MsuFileSystem::MsuFileSystem(std::vector<Disk*> disks) {
  bool first = true;
  for (Disk* disk : disks) {
    volumes_.push_back(std::make_unique<Volume>(*disk, /*reserve_metadata_block=*/first));
    first = false;
  }
}

int MsuFileSystem::EmptiestDisk() const {
  int best = 0;
  for (size_t i = 1; i < volumes_.size(); ++i) {
    if (volumes_[i]->unreserved_free_blocks() > volumes_[static_cast<size_t>(best)]->unreserved_free_blocks()) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

Result<MsuFile*> MsuFileSystem::Create(const std::string& name, Bytes estimated_size, bool striped,
                                       int preferred_disk) {
  if (files_.contains(name)) {
    return AlreadyExistsError("file exists: " + name);
  }
  if (volumes_.empty()) {
    return FailedPreconditionError("no disks");
  }
  const int64_t blocks = std::max<int64_t>(1, BlocksForSize(estimated_size));
  auto file = std::make_unique<MsuFile>();
  file->name_ = name;
  file->striped_ = striped;
  file->reserved_blocks_ = blocks;
  if (striped) {
    // Spread the reservation evenly; disk i gets ceil or floor share.
    const auto n = static_cast<int64_t>(volumes_.size());
    for (int64_t i = 0; i < n; ++i) {
      const int64_t share = blocks / n + (i < blocks % n ? 1 : 0);
      CALLIOPE_RETURN_IF_ERROR(volumes_[static_cast<size_t>(i)]->Reserve(share));
    }
    file->home_disk_ = 0;
  } else {
    const int disk = preferred_disk >= 0 ? preferred_disk : EmptiestDisk();
    if (disk >= static_cast<int>(volumes_.size())) {
      return InvalidArgumentError("no such disk");
    }
    CALLIOPE_RETURN_IF_ERROR(volumes_[static_cast<size_t>(disk)]->Reserve(blocks));
    file->home_disk_ = disk;
  }
  MsuFile* raw = file.get();
  files_[name] = std::move(file);
  metadata_dirty_ = true;
  return raw;
}

Result<MsuFile*> MsuFileSystem::Lookup(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFoundError("no such file: " + name);
  }
  return it->second.get();
}

Status MsuFileSystem::Delete(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFoundError("no such file: " + name);
  }
  MsuFile* file = it->second.get();
  for (const BlockAddr& addr : file->blocks_) {
    volumes_[static_cast<size_t>(addr.disk)]->FreeBlock(addr.block);
  }
  // Return any never-written reservation.
  const int64_t leftover = file->reserved_blocks_ - static_cast<int64_t>(file->blocks_.size());
  if (leftover > 0) {
    if (file->striped_) {
      const auto n = static_cast<int64_t>(volumes_.size());
      for (int64_t i = 0; i < n; ++i) {
        volumes_[static_cast<size_t>(i)]->Unreserve(leftover / n + (i < leftover % n ? 1 : 0));
      }
    } else {
      volumes_[static_cast<size_t>(file->home_disk_)]->Unreserve(leftover);
    }
  }
  files_.erase(it);
  metadata_dirty_ = true;
  return OkStatus();
}

Result<BlockAddr> MsuFileSystem::AllocateForPage(MsuFile* file, int64_t page_index) {
  const size_t disk = file->striped_
                          ? static_cast<size_t>(page_index) % volumes_.size()
                          : static_cast<size_t>(file->home_disk_);
  auto& volume = *volumes_[disk];
  CALLIOPE_ASSIGN_OR_RETURN(const int64_t block, volume.AllocateBlock());
  volume.Unreserve(1);  // the reservation converts into a real block
  return BlockAddr{static_cast<int>(disk), block};
}

Co<Status> MsuFileSystem::WriteNextPage(MsuFile* file, int64_t page_index) {
  if (file->committed_) {
    co_return FailedPreconditionError("file already committed: " + file->name_);
  }
  if (page_index != static_cast<int64_t>(file->blocks_.size())) {
    co_return InvalidArgumentError("pages must be written in order");
  }
  auto addr = AllocateForPage(file, page_index);
  if (!addr.ok()) {
    co_return addr.status();
  }
  file->blocks_.push_back(*addr);
  auto& volume = *volumes_[static_cast<size_t>(addr->disk)];
  // One full-block transfer: "the IB-tree writes both data page and internal
  // page using a single disk transfer and seek".
  const bool ok = co_await volume.disk().Write(volume.BlockOffset(addr->block), kDataPageSize);
  if (!ok) {
    // Undo the allocation so the caller can retry this page index: without
    // the rollback the in-order check above would reject the retry without
    // consuming any simulated time.
    file->blocks_.pop_back();
    volume.FreeBlock(addr->block);
    (void)volume.Reserve(1);
    co_return UnavailableError("disk write error on " + file->name_ + " page " +
                               std::to_string(page_index));
  }
  co_return OkStatus();
}

Status MsuFileSystem::CommitRecording(MsuFile* file, IbTreeFile image) {
  if (file->committed_) {
    return FailedPreconditionError("file already committed: " + file->name_);
  }
  if (image.page_count() != file->blocks_.size()) {
    return InvalidArgumentError("image has " + std::to_string(image.page_count()) +
                                " pages but " + std::to_string(file->blocks_.size()) +
                                " were written");
  }
  const int64_t leftover = file->reserved_blocks_ - static_cast<int64_t>(file->blocks_.size());
  if (leftover > 0) {
    if (file->striped_) {
      const auto n = static_cast<int64_t>(volumes_.size());
      for (int64_t i = 0; i < n; ++i) {
        volumes_[static_cast<size_t>(i)]->Unreserve(leftover / n + (i < leftover % n ? 1 : 0));
      }
    } else {
      volumes_[static_cast<size_t>(file->home_disk_)]->Unreserve(leftover);
    }
  }
  file->reserved_blocks_ = static_cast<int64_t>(file->blocks_.size());
  file->image_ = std::move(image);
  file->committed_ = true;
  metadata_dirty_ = true;
  return OkStatus();
}

Co<Result<const DataPage*>> MsuFileSystem::ReadPage(MsuFile* file, size_t page_index) {
  if (!file->committed_) {
    co_return Result<const DataPage*>(FailedPreconditionError("file not committed"));
  }
  if (page_index >= file->blocks_.size()) {
    co_return Result<const DataPage*>(NotFoundError("page out of range"));
  }
  const BlockAddr addr = file->blocks_[page_index];
  auto& volume = *volumes_[static_cast<size_t>(addr.disk)];
  const bool ok = co_await volume.disk().Read(volume.BlockOffset(addr.block), kDataPageSize);
  if (!ok) {
    // Transient medium error: retryable, unlike the checksum mismatch below.
    co_return Result<const DataPage*>(UnavailableError(
        "disk read error on " + file->name_ + " page " + std::to_string(page_index)));
  }
  // Verify the page's record table (the read happened either way).
  for (size_t corrupt : file->corrupt_pages_) {
    if (corrupt == page_index) {
      co_return Result<const DataPage*>(
          DataLossError("record table checksum mismatch in page " +
                        std::to_string(page_index) + " of " + file->name_));
    }
  }
  co_return Result<const DataPage*>(&file->image_.page(page_index));
}

Co<Result<std::vector<const DataPage*>>> MsuFileSystem::ReadPages(MsuFile* file, size_t first,
                                                                  size_t count) {
  using Pages = std::vector<const DataPage*>;
  if (!file->committed_) {
    co_return Result<Pages>(FailedPreconditionError("file not committed"));
  }
  if (count == 0 || first + count > file->blocks_.size()) {
    co_return Result<Pages>(NotFoundError("page range out of range"));
  }
  if (file->striped_) {
    co_return Result<Pages>(FailedPreconditionError("aggregate read of striped file"));
  }
  const BlockAddr addr = file->blocks_[first];
  auto& volume = *volumes_[static_cast<size_t>(addr.disk)];
  const bool ok = co_await volume.disk().Read(volume.BlockOffset(addr.block),
                                              kDataPageSize * static_cast<int64_t>(count),
                                              /*bulk=*/true);
  if (!ok) {
    co_return Result<Pages>(UnavailableError("disk read error on " + file->name_ + " pages " +
                                             std::to_string(first) + "+" + std::to_string(count)));
  }
  for (size_t corrupt : file->corrupt_pages_) {
    if (corrupt >= first && corrupt < first + count) {
      co_return Result<Pages>(DataLossError("record table checksum mismatch in page " +
                                            std::to_string(corrupt) + " of " + file->name_));
    }
  }
  Pages pages;
  pages.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pages.push_back(&file->image_.page(first + i));
  }
  co_return Result<Pages>(std::move(pages));
}

void MsuFileSystem::CorruptPageForTesting(MsuFile* file, size_t page_index) {
  file->corrupt_pages_.push_back(page_index);
}

Result<MsuFile*> MsuFileSystem::InstallImage(const std::string& name, IbTreeFile image,
                                             bool striped, int preferred_disk) {
  const Bytes size = kDataPageSize * static_cast<int64_t>(image.page_count());
  CALLIOPE_ASSIGN_OR_RETURN(MsuFile * file, Create(name, size, striped, preferred_disk));
  for (size_t i = 0; i < image.page_count(); ++i) {
    auto addr = AllocateForPage(file, static_cast<int64_t>(i));
    if (!addr.ok()) {
      (void)Delete(name);
      return addr.status();
    }
    file->blocks_.push_back(*addr);
  }
  CALLIOPE_RETURN_IF_ERROR(CommitRecording(file, std::move(image)));
  return file;
}

Bytes MsuFileSystem::TotalFreeSpace() const {
  Bytes total;
  for (const auto& volume : volumes_) {
    total += kDataPageSize * volume->unreserved_free_blocks();
  }
  return total;
}

std::vector<std::string> MsuFileSystem::ListFiles() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) {
    names.push_back(name);
  }
  return names;
}

Co<Status> MsuFileSystem::FlushMetadata() {
  if (volumes_.empty()) {
    co_return FailedPreconditionError("no disks");
  }
  if (!metadata_dirty_) {
    co_return OkStatus();
  }
  metadata_dirty_ = false;
  ++metadata_flushes_;
  // One block-sized write to the reserved metadata block; the table itself
  // is far smaller ("the file system meta-data ... can be entirely cached").
  auto& volume = *volumes_.front();
  const bool ok = co_await volume.disk().Write(volume.BlockOffset(0), kDataPageSize);
  if (!ok) {
    metadata_dirty_ = true;  // still needs a flush
    co_return UnavailableError("disk write error flushing metadata");
  }
  co_return OkStatus();
}

std::vector<std::byte> MsuFileSystem::SerializeFileTable() const {
  std::vector<std::byte> out;
  auto put_u32 = [&out](uint32_t v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    out.insert(out.end(), p, p + sizeof(v));
  };
  put_u32(0xCA111073);
  put_u32(static_cast<uint32_t>(files_.size()));
  for (const auto& [name, file] : files_) {
    put_u32(static_cast<uint32_t>(name.size()));
    const auto* p = reinterpret_cast<const std::byte*>(name.data());
    out.insert(out.end(), p, p + name.size());
    put_u32(file->striped_ ? 1 : 0);
    put_u32(static_cast<uint32_t>(file->blocks_.size()));
  }
  const uint64_t checksum = Fnv1a(out.data(), out.size());
  const auto* p = reinterpret_cast<const std::byte*>(&checksum);
  out.insert(out.end(), p, p + sizeof(checksum));
  return out;
}

Result<std::vector<std::string>> MsuFileSystem::ParseFileTableNames(
    const std::vector<std::byte>& bytes) {
  if (bytes.size() < 16) {
    return DataLossError("file table truncated");
  }
  const size_t body = bytes.size() - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + body, sizeof(stored));
  if (stored != Fnv1a(bytes.data(), body)) {
    return DataLossError("file table checksum mismatch");
  }
  size_t pos = 0;
  auto get_u32 = [&bytes, &pos](uint32_t& v) {
    if (pos + sizeof(v) > bytes.size()) {
      return false;
    }
    std::memcpy(&v, bytes.data() + pos, sizeof(v));
    pos += sizeof(v);
    return true;
  };
  uint32_t magic = 0;
  uint32_t count = 0;
  if (!get_u32(magic) || magic != 0xCA111073 || !get_u32(count)) {
    return DataLossError("file table bad header");
  }
  std::vector<std::string> names;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!get_u32(len) || pos + len > body) {
      return DataLossError("file table bad entry");
    }
    names.emplace_back(reinterpret_cast<const char*>(bytes.data() + pos), len);
    pos += len;
    uint32_t striped = 0;
    uint32_t blocks = 0;
    if (!get_u32(striped) || !get_u32(blocks)) {
      return DataLossError("file table bad entry tail");
    }
  }
  return names;
}

}  // namespace calliope
