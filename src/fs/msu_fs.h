// The MSU's user-level multimedia file system (§2.3.3).
//
// Design points from the paper, all reproduced here:
//  * simple user-level file system over raw disks — no kernel FFS;
//  * 256 KB file blocks; one IB-tree data page per block;
//  * metadata small enough to live entirely in memory (it is also
//    serializable, with checksums, for the persistence path);
//  * no LRU block cache — multimedia workloads have no useful locality;
//  * recordings reserve space up front from the client's length estimate;
//    unused reservation returns to the system when the recording completes;
//  * optionally, a file may be striped so "consecutive blocks are on
//    'adjacent' disks" and any content can use the full bandwidth of the
//    array (the trade-off §2.3.3 discusses; benchmarked in bench/striping).
//
// The simulated disks carry timing only, so the volume stores each file's
// IB-tree image in memory while reads/writes charge the owning disk.
#ifndef CALLIOPE_SRC_FS_MSU_FS_H_
#define CALLIOPE_SRC_FS_MSU_FS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/volume.h"
#include "src/hw/disk.h"
#include "src/ibtree/ibtree.h"
#include "src/sim/co.h"
#include "src/util/status.h"

namespace calliope {

struct BlockAddr {
  int disk = 0;
  int64_t block = 0;
  bool operator==(const BlockAddr&) const = default;
};

class MsuFile {
 public:
  const std::string& name() const { return name_; }
  bool striped() const { return striped_; }
  bool committed() const { return committed_; }
  const IbTreeFile& image() const { return image_; }
  const std::vector<BlockAddr>& blocks() const { return blocks_; }
  size_t pages_written() const { return blocks_.size(); }
  int64_t reserved_blocks() const { return reserved_blocks_; }
  // Disk the file lives on (non-striped files only).
  int home_disk() const { return home_disk_; }

 private:
  friend class MsuFileSystem;
  std::string name_;
  bool striped_ = false;
  bool committed_ = false;
  std::vector<size_t> corrupt_pages_;
  int home_disk_ = 0;
  int64_t reserved_blocks_ = 0;
  std::vector<BlockAddr> blocks_;
  IbTreeFile image_;
};

class MsuFileSystem {
 public:
  explicit MsuFileSystem(std::vector<Disk*> disks);

  MsuFileSystem(const MsuFileSystem&) = delete;
  MsuFileSystem& operator=(const MsuFileSystem&) = delete;

  // Creates a file sized from the recording-length estimate. Non-striped
  // files reserve all blocks on one disk (preferred_disk, or the emptiest);
  // striped files spread the reservation across every disk.
  Result<MsuFile*> Create(const std::string& name, Bytes estimated_size, bool striped,
                          int preferred_disk = -1);

  Result<MsuFile*> Lookup(const std::string& name);
  Status Delete(const std::string& name);

  // Recording path: writes the next page of the file (allocating its block)
  // and charges the owning disk for a full-block transfer. `page` is the
  // just-closed IB-tree page; its index must equal pages_written().
  Co<Status> WriteNextPage(MsuFile* file, int64_t page_index);

  // Seals a recording: attaches the final IB-tree image and releases any
  // unused reservation ("If the client overestimates the length of the
  // recording, the unused space will be returned to the system").
  Status CommitRecording(MsuFile* file, IbTreeFile image);

  // Playback path: reads page `page_index`, charging the owning disk.
  // Returns the page contents (valid until the file is deleted).
  Co<Result<const DataPage*>> ReadPage(MsuFile* file, size_t page_index);

  // Flow-mode aggregate read: pages [first, first + count) as one disk
  // reservation ("deliver N bytes over the service window") instead of
  // `count` round-robin requests. Non-striped files only — all pages sit on
  // the home disk, so a single request spanning their blocks is charged.
  // Per-page corruption checks still apply (kDataLoss on the first bad page).
  Co<Result<std::vector<const DataPage*>>> ReadPages(MsuFile* file, size_t first, size_t count);

  // Loads pre-built content directly (admin bulk load / test fixtures):
  // allocates blocks for every page and installs the image without charging
  // simulated time.
  Result<MsuFile*> InstallImage(const std::string& name, IbTreeFile image, bool striped,
                                int preferred_disk = -1);

  size_t disk_count() const { return volumes_.size(); }
  Volume& volume(size_t i) { return *volumes_.at(i); }
  Bytes TotalFreeSpace() const;
  std::vector<std::string> ListFiles() const;

  // Metadata persistence. The file table is "entirely cached in main
  // memory" (§2.3.3); mutations mark it dirty and FlushMetadata writes the
  // serialized, checksummed table to disk 0's reserved metadata block.
  std::vector<std::byte> SerializeFileTable() const;
  static Result<std::vector<std::string>> ParseFileTableNames(const std::vector<std::byte>& bytes);
  bool metadata_dirty() const { return metadata_dirty_; }
  int64_t metadata_flushes() const { return metadata_flushes_; }
  Co<Status> FlushMetadata();

  // Fault injection: marks one on-disk page as corrupt; the next ReadPage of
  // it fails the record-table checksum with kDataLoss.
  void CorruptPageForTesting(MsuFile* file, size_t page_index);

 private:
  Result<BlockAddr> AllocateForPage(MsuFile* file, int64_t page_index);
  int EmptiestDisk() const;

  std::vector<std::unique_ptr<Volume>> volumes_;
  std::map<std::string, std::unique_ptr<MsuFile>> files_;
  bool metadata_dirty_ = false;
  int64_t metadata_flushes_ = 0;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_FS_MSU_FS_H_
