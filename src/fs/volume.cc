#include "src/fs/volume.h"

namespace calliope {

Volume::Volume(Disk& disk, bool reserve_metadata_block) : disk_(&disk) {
  const int64_t blocks = disk.capacity() / kDataPageSize;
  bitmap_.assign(static_cast<size_t>(blocks), false);
  free_ = blocks;
  if (reserve_metadata_block && blocks > 0) {
    bitmap_[0] = true;  // block 0 holds the serialized file table
    --free_;
    next_fit_ = 1;
  }
}

Result<int64_t> Volume::AllocateBlock() {
  if (free_ == 0) {
    return ResourceExhaustedError("volume full");
  }
  const int64_t n = total_blocks();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t candidate = (next_fit_ + i) % n;
    if (!bitmap_[static_cast<size_t>(candidate)]) {
      bitmap_[static_cast<size_t>(candidate)] = true;
      --free_;
      next_fit_ = (candidate + 1) % n;
      return candidate;
    }
  }
  return InternalError("bitmap/free count mismatch");
}

Status Volume::Reserve(int64_t count) {
  if (count > unreserved_free_blocks()) {
    return ResourceExhaustedError("not enough free space to reserve " + std::to_string(count) +
                                  " blocks");
  }
  reserved_ += count;
  return OkStatus();
}

void Volume::Unreserve(int64_t count) {
  reserved_ -= count;
  if (reserved_ < 0) {
    reserved_ = 0;
  }
}

void Volume::FreeBlock(int64_t block) {
  if (bitmap_[static_cast<size_t>(block)]) {
    bitmap_[static_cast<size_t>(block)] = false;
    ++free_;
  }
}

}  // namespace calliope
