#include "src/client/client.h"

#include <algorithm>
#include <utility>

#include "src/msu/msu.h"  // MediaDatagramPayload
#include "src/obs/sampler.h"
#include "src/util/backoff.h"
#include "src/util/logging.h"

namespace calliope {

CalliopeClient::CalliopeClient(NetNode& node, std::string coordinator_node, int coordinator_port)
    : node_(&node),
      coordinator_node_(std::move(coordinator_node)),
      coordinator_port_(coordinator_port),
      group_events_(std::make_unique<Condition>(node.machine().sim())) {
  // One listener accepts the VCR control connections MSUs open back to us.
  control_listen_port_ = node_->AllocateEphemeralPort();
  (void)node_->ListenTcp(control_listen_port_, [this](TcpConn* conn) { OnControlAccept(conn); });
}

void CalliopeClient::WireSessionConn() {
  // The Coordinator pushes PendingRequestFailed over the session connection
  // when a queued or migrating group can never be (re)started.
  conn_->set_receive_handler([this](TcpConn*, const Envelope& envelope) {
    if (const auto* failed = std::get_if<PendingRequestFailed>(&envelope.body)) {
      if (failed->epoch > 0 && failed->epoch < coordinator_epoch_) {
        // A deposed primary draining its queue; the current primary still
        // owns this request.
        return;
      }
      GroupState& group = GroupFor(failed->group);
      group.terminated = true;
      group.failure_reason = failed->error;
      group_events_->NotifyAll();
    }
  });
  conn_->set_close_handler([this](TcpConn* closed) {
    if (conn_ == closed) {
      conn_ = nullptr;
    }
    // With a coordinator pair configured, a broken session means the primary
    // died: redial the pair and resume on the survivor. With a single host
    // the legacy behavior stands — the session is simply gone.
    if (coordinator_hosts_.size() > 1 && session_ != 0) {
      RedialLoop();
    }
  });
}

Co<Status> CalliopeClient::Connect(std::string customer, std::string credential) {
  customer_ = customer;
  credential_ = credential;
  auto conn = co_await node_->ConnectTcp(coordinator_node_, coordinator_port_);
  if (!conn.ok()) {
    co_return conn.status();
  }
  conn_ = *conn;
  WireSessionConn();
  auto response = co_await conn_->Call(MessageBody{OpenSessionRequest{customer, credential}});
  if (!response.ok()) {
    co_return response.status();
  }
  const auto* open = std::get_if<OpenSessionResponse>(&response->body);
  if (open == nullptr) {
    co_return InternalError("bad response to OpenSession");
  }
  if (!open->ok) {
    co_return PermissionDeniedError(open->error);
  }
  session_ = open->session;
  coordinator_epoch_ = std::max(coordinator_epoch_, open->epoch);
  co_return OkStatus();
}

void CalliopeClient::Disconnect() {
  session_ = 0;  // cleared first so the close handler does not redial
  if (conn_ != nullptr) {
    TcpConn* conn = conn_;
    conn_ = nullptr;
    conn->Close();
  }
}

Task CalliopeClient::RedialLoop() {
  if (redialing_) {
    co_return;
  }
  redialing_ = true;
  const SessionId old_session = session_;
  BackoffParams backoff_params;
  backoff_params.initial = SimTime::Millis(200);
  backoff_params.max = SimTime::Seconds(2);
  Backoff backoff(backoff_params, std::hash<std::string>{}(node_->name()) ^ 0x27d4eb2fULL);
  while (session_ == old_session) {
    {
      const SimTime delay = backoff.Next();
      co_await sim().Delay(delay);
    }
    if (conn_ != nullptr && !conn_->closed()) {
      break;  // something else already re-established the session
    }
    const std::string host =
        coordinator_hosts_[host_index_ % coordinator_hosts_.size()];
    ++host_index_;
    auto conn = co_await node_->ConnectTcp(host, coordinator_port_);
    if (!conn.ok()) {
      continue;
    }
    TcpConn* candidate = std::move(conn).value();
    OpenSessionRequest request;
    request.customer = customer_;
    request.credential = credential_;
    request.resume_session = old_session;
    auto response = co_await candidate->Call(MessageBody{std::move(request)});
    if (!response.ok()) {
      continue;  // connection died mid-call; the host may be rebooting
    }
    const auto* open = std::get_if<OpenSessionResponse>(&response->body);
    if (open == nullptr || !open->ok) {
      // A standby answers "not primary" (a SimpleResponse): try the other.
      if (!candidate->closed()) {
        candidate->Close();
      }
      continue;
    }
    conn_ = candidate;
    WireSessionConn();
    coordinator_epoch_ = std::max(coordinator_epoch_, open->epoch);
    const bool resumed = open->session == old_session;
    session_ = open->session;
    if (!resumed) {
      // Fresh session (the pair lost our registration entirely): display
      // ports must be registered again under the new session id.
      co_await ReRegisterPorts();
    }
    break;
  }
  redialing_ = false;
}

Co<void> CalliopeClient::ReRegisterPorts() {
  // Atomic ports first: composites reference them by name.
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& [name, port] : ports_) {
      const bool atomic = port->component_ports_.empty();
      if (atomic != (pass == 0)) {
        continue;
      }
      if (conn_ == nullptr || conn_->closed()) {
        co_return;
      }
      RegisterPortRequest request;
      request.session = session_;
      request.port_name = name;
      request.type_name = port->type_name_;
      request.node = node_->name();
      request.udp_port = port->udp_port_;
      request.control_port = control_listen_port_;
      request.component_ports = port->component_ports_;
      auto response = co_await conn_->Call(MessageBody{std::move(request)});
      if (!response.ok()) {
        co_return;  // conn broke again; the close handler redials
      }
    }
  }
}

Co<Result<std::vector<ContentInfo>>> CalliopeClient::ListContent() {
  using Out = Result<std::vector<ContentInfo>>;
  if (!connected()) {
    co_return Out(FailedPreconditionError("not connected"));
  }
  auto response = co_await conn_->Call(MessageBody{ListContentRequest{session_}});
  if (!response.ok()) {
    co_return Out(response.status());
  }
  const auto* list = std::get_if<ListContentResponse>(&response->body);
  if (list == nullptr) {
    co_return Out(InternalError("bad response to ListContent"));
  }
  if (!list->ok) {
    co_return Out(InternalError(list->error));
  }
  co_return Out(list->items);
}

Co<Result<ClientDisplayPort*>> CalliopeClient::RegisterPort(std::string name,
                                                            std::string type_name) {
  return RegisterCompositePort(std::move(name), std::move(type_name), {});
}

Co<Result<ClientDisplayPort*>> CalliopeClient::RegisterCompositePort(
    std::string name, std::string type_name, std::vector<std::string> component_ports) {
  using Out = Result<ClientDisplayPort*>;
  if (!connected()) {
    co_return Out(FailedPreconditionError("not connected"));
  }
  if (ports_.contains(name)) {
    co_return Out(AlreadyExistsError("port exists: " + name));
  }
  auto port = std::make_unique<ClientDisplayPort>();
  port->name_ = name;
  port->type_name_ = type_name;
  port->component_ports_ = component_ports;
  if (component_ports.empty()) {
    // Atomic port: bind a data socket and the adjacent control socket
    // (protocols like RTP use data + control port pairs).
    port->udp_port_ = node_->AllocateEphemeralPort();
    node_->AllocateEphemeralPort();  // reserve udp_port + 1 for control
    ClientDisplayPort* raw = port.get();
    if (Status bound = node_->BindUdp(
            raw->udp_port_, [this, raw](const Datagram& d) { OnMediaDatagram(*raw, d); });
        !bound.ok()) {
      co_return Out(bound);
    }
    if (Status bound = node_->BindUdp(
            raw->udp_port_ + 1, [this, raw](const Datagram& d) { OnMediaDatagram(*raw, d); });
        !bound.ok()) {
      co_return Out(bound);
    }
  }

  RegisterPortRequest request;
  request.session = session_;
  request.port_name = name;
  request.type_name = type_name;
  request.node = node_->name();
  request.udp_port = port->udp_port_;
  request.control_port = control_listen_port_;
  request.component_ports = component_ports;
  auto response = co_await conn_->Call(MessageBody{std::move(request)});
  if (!response.ok()) {
    co_return Out(response.status());
  }
  const auto* ack = std::get_if<SimpleResponse>(&response->body);
  if (ack == nullptr || !ack->ok) {
    co_return Out(InvalidArgumentError(ack != nullptr ? ack->error : "bad response"));
  }
  ClientDisplayPort* raw = port.get();
  ports_[name] = std::move(port);
  co_return Out(raw);
}

Co<Status> CalliopeClient::UnregisterPort(std::string name) {
  if (!connected()) {
    co_return FailedPreconditionError("not connected");
  }
  auto it = ports_.find(name);
  if (it == ports_.end()) {
    co_return NotFoundError("no such port: " + name);
  }
  auto response =
      co_await conn_->Call(MessageBody{UnregisterPortRequest{session_, name}});
  if (!response.ok()) {
    co_return response.status();
  }
  if (it->second->udp_port_ != 0) {
    (void)node_->CloseUdp(it->second->udp_port_);
    (void)node_->CloseUdp(it->second->udp_port_ + 1);
  }
  ports_.erase(it);
  co_return OkStatus();
}

ClientDisplayPort* CalliopeClient::FindPort(const std::string& name) {
  auto it = ports_.find(name);
  return it == ports_.end() ? nullptr : it->second.get();
}

void CalliopeClient::ForEachPort(const std::function<void(const ClientDisplayPort&)>& fn) const {
  for (const auto& [name, port] : ports_) {
    fn(*port);
  }
}

void CalliopeClient::OnMediaDatagram(ClientDisplayPort& port, const Datagram& datagram) {
  auto payload = std::static_pointer_cast<const MediaDatagramPayload>(datagram.payload);
  if (payload == nullptr) {
    return;
  }
  if (payload->flow_count > 0) {
    OnFlowChunk(port, *payload);
    return;
  }
  const SimTime lateness = sim().Now() - payload->deadline;
  auto [seq_it, first_from_stream] = port.last_seq_.try_emplace(payload->stream, -1);
  if (!first_from_stream && payload->seq <= seq_it->second) {
    ++port.out_of_order_;
  }
  seq_it->second = std::max(seq_it->second, payload->seq);
  if (payload->is_control) {
    ++port.control_packets_received_;
  } else {
    if (port.first_arrival_ == SimTime()) {
      port.first_arrival_ = sim().Now();
    }
    if (port.last_arrival_ != SimTime()) {
      const SimTime gap = sim().Now() - port.last_arrival_;
      port.max_arrival_gap_ = std::max(port.max_arrival_gap_, gap);
      if (qos_ != nullptr) {
        qos_->RecordGap(gap);
      }
    }
    port.last_arrival_ = sim().Now();
    ++port.packets_received_;
    port.arrival_lateness_.Record(lateness);
    if (lateness > port.buffer_allowance_) {
      ++port.glitches_;
    }
    if (port.playout_.has_value()) {
      // A backwards jump in media time is a seek/rewind: new playout epoch.
      if (payload->packet.delivery_offset + SimTime::Seconds(1) < port.last_media_offset_) {
        port.playout_->Reset();
      }
      port.last_media_offset_ = payload->packet.delivery_offset;
      port.playout_->OnArrival(sim().Now(), payload->packet.delivery_offset,
                               payload->packet.size);
    }
  }
  port.bytes_received_ += payload->packet.size;
}

void CalliopeClient::OnFlowChunk(ClientDisplayPort& port, const MediaDatagramPayload& payload) {
  // One aggregate datagram standing in for `flow_count` packets of a
  // steady-state stream. Each record "arrives" at the coarse tick of its
  // deadline (when the MSU's per-packet loop would have sent it) plus the
  // chunk's measured network transit, so the port's histograms and gap/glitch
  // counters match what packet fidelity would have recorded.
  const SimTime transit = sim().Now() - payload.flow_sent_at;
  auto [seq_it, inserted] = port.last_seq_.try_emplace(payload.stream, -1);
  bool first_from_stream = inserted;
  CoarseTimer& timer = node_->machine().timer();
  int64_t seq = payload.seq;
  for (const auto& record : payload.flow_records) {
    const SimTime arrival = timer.NextTickAtOrAfter(record.deadline) + transit;
    const SimTime lateness = arrival - record.deadline;
    if (!first_from_stream && seq <= seq_it->second) {
      ++port.out_of_order_;
    }
    first_from_stream = false;
    seq_it->second = std::max(seq_it->second, seq);
    ++seq;
    if (port.first_arrival_ == SimTime()) {
      port.first_arrival_ = arrival;
    }
    if (port.last_arrival_ != SimTime()) {
      const SimTime gap = arrival - port.last_arrival_;
      port.max_arrival_gap_ = std::max(port.max_arrival_gap_, gap);
      if (qos_ != nullptr) {
        qos_->RecordGap(gap);
      }
    }
    port.last_arrival_ = arrival;
    ++port.packets_received_;
    port.arrival_lateness_.Record(lateness);
    if (lateness > port.buffer_allowance_) {
      ++port.glitches_;
    }
    if (port.playout_.has_value()) {
      if (record.delivery_offset + SimTime::Seconds(1) < port.last_media_offset_) {
        port.playout_->Reset();
      }
      port.last_media_offset_ = record.delivery_offset;
      port.playout_->OnArrival(arrival, record.delivery_offset, record.size);
    }
    port.bytes_received_ += record.size;
  }
}

void CalliopeClient::OnControlAccept(TcpConn* conn) {
  conn->set_receive_handler([this, conn](TcpConn*, const Envelope& envelope) {
    if (const auto* info = std::get_if<StreamGroupInfo>(&envelope.body)) {
      GroupState& group = GroupFor(info->group);
      group.control_conn = conn;
      group.info = *info;
      group.info_received = true;
      // A fresh control connection for a known group means the stream migrated
      // to another MSU after a failure; the old conn's close no longer counts.
      group.terminated = false;
      group_events_->NotifyAll();
    }
  });
  conn->set_close_handler([this](TcpConn* closed) {
    for (auto& [id, group] : groups_) {
      if (group.control_conn == closed) {
        group.terminated = true;
      }
    }
    group_events_->NotifyAll();
  });
}

CalliopeClient::GroupState& CalliopeClient::GroupFor(GroupId group) {
  GroupState& state = groups_[group];
  state.group = group;
  return state;
}

Co<Result<CalliopeClient::StartResult>> CalliopeClient::Play(std::string content,
                                                             std::string port_name,
                                                             AdmissionClass klass) {
  using Out = Result<StartResult>;
  if (!connected()) {
    co_return Out(FailedPreconditionError("not connected"));
  }
  PlayRequest play_request{session_, content, port_name};
  play_request.admission_class = klass;
  auto response = co_await conn_->Call(MessageBody{std::move(play_request)});
  if (!response.ok()) {
    co_return Out(response.status());
  }
  const auto* play = std::get_if<PlayResponse>(&response->body);
  if (play == nullptr) {
    co_return Out(InternalError("bad response to Play"));
  }
  if (!play->ok) {
    co_return Out(InvalidArgumentError(play->error));
  }
  GroupFor(play->group);
  co_return Out(StartResult{play->group, play->queued});
}

Co<Result<CalliopeClient::StartResult>> CalliopeClient::Record(std::string content_name,
                                                               std::string type_name,
                                                               std::string port_name,
                                                               SimTime estimated_length,
                                                               AdmissionClass klass) {
  using Out = Result<StartResult>;
  if (!connected()) {
    co_return Out(FailedPreconditionError("not connected"));
  }
  RecordRequest record_request{session_, content_name, type_name, port_name, estimated_length};
  record_request.admission_class = klass;
  auto response = co_await conn_->Call(MessageBody{std::move(record_request)});
  if (!response.ok()) {
    co_return Out(response.status());
  }
  const auto* record = std::get_if<RecordResponse>(&response->body);
  if (record == nullptr) {
    co_return Out(InternalError("bad response to Record"));
  }
  if (!record->ok) {
    co_return Out(InvalidArgumentError(record->error));
  }
  GroupFor(record->group);
  co_return Out(StartResult{record->group, record->queued});
}

Co<Status> CalliopeClient::DeleteContent(std::string content) {
  if (!connected()) {
    co_return FailedPreconditionError("not connected");
  }
  auto response =
      co_await conn_->Call(MessageBody{DeleteContentRequest{session_, content}});
  if (!response.ok()) {
    co_return response.status();
  }
  const auto* ack = std::get_if<SimpleResponse>(&response->body);
  if (ack == nullptr || !ack->ok) {
    co_return InvalidArgumentError(ack != nullptr ? ack->error : "bad response");
  }
  co_return OkStatus();
}

Co<Status> CalliopeClient::LoadFastScan(std::string content, std::string ff_file,
                                        std::string fb_file) {
  if (!connected()) {
    co_return FailedPreconditionError("not connected");
  }
  auto response = co_await conn_->Call(
      MessageBody{LoadFastScanRequest{session_, content, ff_file, fb_file}});
  if (!response.ok()) {
    co_return response.status();
  }
  const auto* ack = std::get_if<SimpleResponse>(&response->body);
  if (ack == nullptr || !ack->ok) {
    co_return InvalidArgumentError(ack != nullptr ? ack->error : "bad response");
  }
  co_return OkStatus();
}

Co<Status> CalliopeClient::WaitForGroupReady(GroupId group, SimTime timeout) {
  const SimTime deadline = sim().Now() + timeout;
  GroupState& state = GroupFor(group);
  while (!state.info_received && !state.terminated) {
    if (sim().Now() >= deadline) {
      co_return DeadlineExceededError("group never became ready");
    }
    // Wake on group events or every 100 ms to re-check the deadline.
    EventToken tick = sim().ScheduleCancelableAt(sim().Now() + SimTime::Millis(100),
                                                 [this] { group_events_->NotifyAll(); });
    co_await group_events_->Wait();
    tick.Cancel();
  }
  if (state.terminated && !state.info_received) {
    co_return UnavailableError("group terminated before becoming ready");
  }
  co_return OkStatus();
}

bool CalliopeClient::GroupTerminated(GroupId group) const {
  auto it = groups_.find(group);
  return it != groups_.end() && it->second.terminated;
}

std::string CalliopeClient::GroupFailure(GroupId group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.failure_reason : std::string();
}

Co<Status> CalliopeClient::Vcr(GroupId group, VcrCommand::Op op, SimTime seek_to) {
  CALLIOPE_CO_RETURN_IF_ERROR(co_await WaitForGroupReady(group));
  GroupState& state = GroupFor(group);
  if (state.control_conn == nullptr || state.control_conn->closed()) {
    co_return UnavailableError("group control connection closed");
  }
  VcrCommand command;
  command.op = op;
  command.group = group;
  command.seek_to = seek_to;
  auto response = co_await state.control_conn->Call(MessageBody{command});
  if (!response.ok()) {
    co_return response.status();
  }
  const auto* ack = std::get_if<VcrAck>(&response->body);
  if (ack == nullptr) {
    co_return InternalError("bad response to VCR command");
  }
  if (!ack->ok) {
    co_return FailedPreconditionError(ack->error);
  }
  co_return OkStatus();
}

Co<Result<int64_t>> CalliopeClient::SendRecording(GroupId group, int component_index,
                                                  const PacketSequence& packets) {
  using Out = Result<int64_t>;
  CALLIOPE_CO_RETURN_IF_ERROR(co_await WaitForGroupReady(group));
  GroupState& state = GroupFor(group);
  StreamId stream = 0;
  bool found = false;
  for (const auto& member : state.info.members) {
    if (member.component_index == component_index) {
      stream = member.stream;
      found = true;
      break;
    }
  }
  if (!found) {
    co_return Out(NotFoundError("no group member with index " +
                                std::to_string(component_index)));
  }
  const std::string msu_node = state.info.msu_node;
  const int media_port = state.info.media_udp_port;
  const SimTime start = sim().Now();
  int64_t sent = 0;
  for (const MediaPacket& packet : packets) {
    if (state.terminated) {
      break;
    }
    const SimTime when = start + packet.delivery_offset;
    if (when > sim().Now()) {
      co_await sim().Delay(when - sim().Now());
    }
    auto payload = std::make_shared<MediaDatagramPayload>();
    payload->stream = stream;
    payload->seq = sent;
    payload->deadline = when;
    payload->packet = packet;
    co_await node_->SendUdp(msu_node, media_port, packet.size, std::move(payload));
    ++sent;
  }
  co_return Out(sent);
}

}  // namespace calliope
