// Calliope client library (§2.1).
//
// Wraps the client side of the protocol: session establishment with the
// Coordinator, display-port registration (atomic and composite), play /
// record requests, the VCR control connection the MSU opens back to the
// client, and media endpoints that receive (playback) or transmit
// (recording) UDP packet streams.
//
// Each display port models the paper's client buffering assumption: "A 200
// KByte buffer will hold more than one second of 1.5 Mbit/sec video" — a
// packet is a glitch only if it arrives later than the buffer can absorb.
#ifndef CALLIOPE_SRC_CLIENT_CLIENT_H_
#define CALLIOPE_SRC_CLIENT_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/client/playout_buffer.h"
#include "src/media/packet.h"
#include "src/net/network.h"
#include "src/util/histogram.h"

namespace calliope {

struct MediaDatagramPayload;
class QosAccumulator;

// A registered media endpoint. The software behind it "can be a software
// encoder/decoder that is part of the client application or a simple driver
// for a hardware device"; here it gathers delivery statistics.
class ClientDisplayPort {
 public:
  const std::string& name() const { return name_; }
  const std::string& type_name() const { return type_name_; }
  int udp_port() const { return udp_port_; }

  int64_t packets_received() const { return packets_received_; }
  // Arrival time of the most recent run's first media packet (startup /
  // post-seek latency measurements). Zero when nothing has arrived.
  SimTime first_arrival() const { return first_arrival_; }
  void ResetArrivalMark() { first_arrival_ = SimTime(); }
  int64_t control_packets_received() const { return control_packets_received_; }
  Bytes bytes_received() const { return bytes_received_; }
  // Arrival time minus the sender's deadline (includes network latency).
  const LatenessHistogram& arrival_lateness() const { return arrival_lateness_; }
  // Packets that arrived too late for the client buffer to smooth.
  int64_t glitches() const { return glitches_; }
  SimTime buffer_allowance() const { return buffer_allowance_; }
  // Delivery-schedule monotonicity: datagrams of one stream carry strictly
  // increasing sequence numbers, so any arrival at or below the last seen
  // seq is a reordering (drops only make gaps). Chaos-test invariant: 0.
  int64_t out_of_order() const { return out_of_order_; }
  // Longest silence between consecutive media packets — the client-visible
  // "delivery gap" across a failover or fault window. Zero until two packets
  // have arrived.
  SimTime max_arrival_gap() const { return max_arrival_gap_; }

  // Optional explicit decoder-buffer simulation (§2.2.1): attach before
  // playback to measure glitches/overflows for a concrete buffer size.
  void AttachPlayoutBuffer(Bytes buffer_capacity, DataRate stream_rate) {
    playout_.emplace(PlayoutBuffer::ForStream(buffer_capacity, stream_rate));
  }
  const PlayoutBuffer* playout() const { return playout_.has_value() ? &*playout_ : nullptr; }

 private:
  friend class CalliopeClient;
  std::string name_;
  std::string type_name_;
  int udp_port_ = 0;
  std::vector<std::string> component_ports_;
  SimTime buffer_allowance_ = SimTime::Millis(850);  // §2.2.1's jitter budget
  SimTime first_arrival_;
  std::optional<PlayoutBuffer> playout_;
  SimTime last_media_offset_ = SimTime::Nanos(INT64_MIN);
  int64_t packets_received_ = 0;
  int64_t control_packets_received_ = 0;
  Bytes bytes_received_;
  LatenessHistogram arrival_lateness_;
  SimTime last_arrival_;
  SimTime max_arrival_gap_;
  int64_t glitches_ = 0;
  std::map<StreamId, int64_t> last_seq_;
  int64_t out_of_order_ = 0;
};

class CalliopeClient {
 public:
  struct GroupState {
    GroupState() = default;

    GroupId group = 0;
    TcpConn* control_conn = nullptr;
    StreamGroupInfo info;
    bool info_received = false;
    bool terminated = false;
    // Non-empty when the Coordinator explicitly failed the request
    // (PendingRequestFailed): queue deadline expiry, load shedding, a
    // failover that found no capacity.
    std::string failure_reason;
  };

  CalliopeClient(NetNode& node, std::string coordinator_node, int coordinator_port = 5000);

  CalliopeClient(const CalliopeClient&) = delete;
  CalliopeClient& operator=(const CalliopeClient&) = delete;

  // Coordinator warm-standby HA: the full set of coordinator hosts to cycle
  // through when the session connection breaks. With fewer than two hosts
  // the client keeps its legacy behavior (a broken session stays broken).
  void set_coordinator_hosts(std::vector<std::string> hosts) {
    coordinator_hosts_ = std::move(hosts);
  }
  // HA epoch of the coordinator this session is registered under (0 until an
  // HA coordinator answered). Failure notifications from older epochs —
  // a deposed primary flushing its queue — are ignored.
  int64_t coordinator_epoch() const { return coordinator_epoch_; }

  // Session lifecycle.
  Co<Status> Connect(std::string customer, std::string credential);
  void Disconnect();
  SessionId session() const { return session_; }
  bool connected() const { return conn_ != nullptr && !conn_->closed(); }

  // Catalog.
  Co<Result<std::vector<ContentInfo>>> ListContent();

  // Display ports. Atomic ports bind a data UDP port (and the adjacent
  // control port for protocols that use one); composite ports reference
  // previously-registered component ports.
  // Note: coroutine parameters are taken by value — the coroutine may start
  // after the caller's temporaries are gone.
  Co<Result<ClientDisplayPort*>> RegisterPort(std::string name, std::string type_name);
  Co<Result<ClientDisplayPort*>> RegisterCompositePort(std::string name, std::string type_name,
                                                       std::vector<std::string> component_ports);
  Co<Status> UnregisterPort(std::string name);
  ClientDisplayPort* FindPort(const std::string& name);
  // Visits registered display ports in name order (ClusterReport assembly).
  void ForEachPort(const std::function<void(const ClientDisplayPort&)>& fn) const;

  // Content operations. On success the returned group id addresses VCR
  // commands; `queued` reports the Coordinator queued the request.
  struct StartResult {
    GroupId group = 0;
    bool queued = false;
  };
  // `klass` tags the request for the Coordinator's traffic control (DESIGN
  // §5.9); with traffic control disabled it is carried but ignored.
  Co<Result<StartResult>> Play(std::string content, std::string port_name,
                               AdmissionClass klass = AdmissionClass::kStandard);
  Co<Result<StartResult>> Record(std::string content_name, std::string type_name,
                                 std::string port_name, SimTime estimated_length,
                                 AdmissionClass klass = AdmissionClass::kBulk);
  Co<Status> DeleteContent(std::string content);
  Co<Status> LoadFastScan(std::string content, std::string ff_file, std::string fb_file);

  // VCR commands ("pause, play, seek, and quit", plus fast forward/backward
  // where the content has filtered variants). They wait for the MSU's
  // control connection if it has not arrived yet.
  Co<Status> Vcr(GroupId group, VcrCommand::Op op, SimTime seek_to = SimTime());
  Co<Status> Quit(GroupId group) { return Vcr(group, VcrCommand::Op::kQuit); }

  // Waits until the MSU has opened the group's control connection and sent
  // its StreamGroupInfo (i.e. the stream is being served).
  Co<Status> WaitForGroupReady(GroupId group, SimTime timeout = SimTime::Seconds(60));
  // True once the MSU closed the group's control connection (stream over).
  bool GroupTerminated(GroupId group) const;
  // The Coordinator's explicit failure notice for the group, or empty if the
  // group never received one (still live, or ended normally).
  std::string GroupFailure(GroupId group) const;

  // Recording source: feeds `packets` (delivery offsets relative to start)
  // to the group's component `index` in real time. Returns packets sent.
  Co<Result<int64_t>> SendRecording(GroupId group, int component_index,
                                    const PacketSequence& packets);

  NetNode& node() { return *node_; }
  Simulator& sim() { return node_->machine().sim(); }

  // Windowed QoS sink for the continuous-telemetry sampler (null = no
  // sampler): every media inter-arrival gap is recorded through it, so a
  // delivery stall shows up in the window it happened, not just as the
  // end-of-run max_gap_us.
  void set_qos_sink(QosAccumulator* qos) { qos_ = qos; }

 private:
  void OnMediaDatagram(ClientDisplayPort& port, const Datagram& datagram);
  // Flow-fidelity chunk: synthesizes the per-record arrival accounting the
  // per-packet model would have produced (see DESIGN.md §5.5).
  void OnFlowChunk(ClientDisplayPort& port, const MediaDatagramPayload& payload);
  void OnControlAccept(TcpConn* conn);
  GroupState& GroupFor(GroupId group);
  // Installs the receive/close handlers on conn_ (session notifications,
  // HA redial trigger).
  void WireSessionConn();
  // Redials the coordinator pair after the session connection broke,
  // resuming the old session id on the survivor (or re-registering ports
  // when the new primary issued a fresh session).
  Task RedialLoop();
  Co<void> ReRegisterPorts();

  NetNode* node_;
  std::string coordinator_node_;
  int coordinator_port_;
  TcpConn* conn_ = nullptr;
  SessionId session_ = 0;
  int control_listen_port_ = 0;
  // --- Coordinator HA state ---
  std::vector<std::string> coordinator_hosts_;
  std::string customer_;
  std::string credential_;
  int64_t coordinator_epoch_ = 0;
  size_t host_index_ = 0;
  bool redialing_ = false;
  std::map<std::string, std::unique_ptr<ClientDisplayPort>> ports_;
  std::map<GroupId, GroupState> groups_;
  std::unique_ptr<Condition> group_events_;
  QosAccumulator* qos_ = nullptr;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_CLIENT_CLIENT_H_
