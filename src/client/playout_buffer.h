// Client playout buffer model (§2.2.1).
//
// "Clients have limited buffering, so data that arrives too late will result
// in an interruption in audio or a still frame; data that arrives too early
// will overflow the buffer and be discarded. ... A 200 KByte buffer will hold
// more than one second of 1.5 Mbit/sec video. Calliope will not add more than
// 150 milliseconds of jitter in the worst case and any network that
// introduces more than 850 milliseconds of jitter is probably not usable for
// video delivery."
//
// The model: the decoder prebuffers for `prebuffer` after the first packet,
// then consumes each packet at (playout epoch + its media offset). A packet
// arriving after its consumption time is a glitch; a packet that would push
// occupancy past `capacity` is an overflow drop.
#ifndef CALLIOPE_SRC_CLIENT_PLAYOUT_BUFFER_H_
#define CALLIOPE_SRC_CLIENT_PLAYOUT_BUFFER_H_

#include <cstdint>
#include <deque>

#include "src/util/units.h"

namespace calliope {

class PlayoutBuffer {
 public:
  PlayoutBuffer(Bytes capacity, SimTime prebuffer)
      : capacity_(capacity), prebuffer_(prebuffer) {}

  // Sizes the prebuffer delay so the buffer runs at half occupancy in the
  // steady state: equal headroom against late packets (glitches) and early
  // ones (overflow). A 200 KB buffer at 1.5 Mbit/s prebuffers ~0.55 s and
  // absorbs +-0.55 s of jitter — comfortably covering the paper's <=150 ms
  // server budget plus its 850 ms network allowance on the late side only
  // when the full buffer is spent on it.
  static PlayoutBuffer ForStream(Bytes capacity, DataRate rate) {
    return PlayoutBuffer(capacity, rate.TransferTime(capacity) / 2);
  }

  // Feed one media packet: arrival wall time and its media-time offset.
  // Restarting a stream (seek/rewind) is a new epoch: call Reset().
  void OnArrival(SimTime arrival, SimTime media_offset, Bytes size);

  void Reset();

  int64_t packets() const { return packets_; }
  // Packets that arrived after the decoder needed them (still frame/dropout).
  int64_t glitches() const { return glitches_; }
  // Packets discarded because the buffer was full ("data that arrives too
  // early will overflow the buffer and be discarded").
  int64_t overflow_drops() const { return overflow_drops_; }
  Bytes max_occupancy() const { return max_occupancy_; }
  SimTime prebuffer() const { return prebuffer_; }

 private:
  struct Buffered {
    SimTime playout_time;
    Bytes size;
  };

  void DrainUpTo(SimTime now);

  Bytes capacity_;
  SimTime prebuffer_;
  bool started_ = false;
  SimTime epoch_;             // wall time when media_offset origin_ plays
  SimTime origin_;            // media offset of the first packet
  std::deque<Buffered> pending_;
  Bytes occupancy_;
  Bytes max_occupancy_;
  int64_t packets_ = 0;
  int64_t glitches_ = 0;
  int64_t overflow_drops_ = 0;
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_CLIENT_PLAYOUT_BUFFER_H_
