#include "src/client/playout_buffer.h"

#include <algorithm>

namespace calliope {

void PlayoutBuffer::Reset() {
  started_ = false;
  pending_.clear();
  occupancy_ = Bytes(0);
}

void PlayoutBuffer::DrainUpTo(SimTime now) {
  while (!pending_.empty() && pending_.front().playout_time <= now) {
    occupancy_ -= pending_.front().size;
    pending_.pop_front();
  }
}

void PlayoutBuffer::OnArrival(SimTime arrival, SimTime media_offset, Bytes size) {
  ++packets_;
  if (!started_) {
    started_ = true;
    origin_ = media_offset;
    epoch_ = arrival + prebuffer_;
  }
  const SimTime playout_time = epoch_ + (media_offset - origin_);
  DrainUpTo(arrival);
  if (arrival > playout_time) {
    // The decoder already needed this packet: interruption / still frame.
    ++glitches_;
    return;
  }
  if (occupancy_ + size > capacity_) {
    ++overflow_drops_;
    return;
  }
  // Insert in playout order (arrivals are almost always already ordered).
  Buffered entry{playout_time, size};
  auto it = pending_.end();
  while (it != pending_.begin() && std::prev(it)->playout_time > playout_time) {
    --it;
  }
  pending_.insert(it, entry);
  occupancy_ += size;
  max_occupancy_ = std::max(max_occupancy_, occupancy_);
}

}  // namespace calliope
