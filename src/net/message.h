// Control-protocol messages exchanged between clients, the Coordinator and
// MSUs. The components run inside one simulation, so messages travel as C++
// structs; WireSize() estimates charge the simulated network realistically.
//
// IMPORTANT: none of these types may be an aggregate. GCC 12 miscompiles
// aggregate initialization/copies emitted inside coroutine bodies (SSO string
// pointers and shared_ptr refcounts end up aliasing the coroutine frame), so
// every struct declares constructors. See the parameter rules in src/sim/co.h.
#ifndef CALLIOPE_SRC_NET_MESSAGE_H_
#define CALLIOPE_SRC_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/util/units.h"

namespace calliope {

using SessionId = int64_t;
using StreamId = int64_t;
using GroupId = int64_t;

// Admission class a play/record request is tagged with (DESIGN §5.9).
// Interactive traffic (VCR-heavy viewers) outranks standard playback, which
// outranks bulk transfers (archive pulls, fleet recordings); the Coordinator's
// traffic-control layer retries queues in class order and sheds from the
// bottom up. The numeric values are wire/ordering contract: lower = higher
// priority.
enum class AdmissionClass : uint8_t {
  kInteractive = 0,
  kStandard = 1,
  kBulk = 2,
};
inline constexpr int kAdmissionClassCount = 3;

// Stable lowercase name ("interactive" / "standard" / "bulk") — metric keys.
const char* AdmissionClassName(AdmissionClass klass);

// ---------- client -> Coordinator ----------

struct OpenSessionRequest {
  OpenSessionRequest() = default;
  OpenSessionRequest(std::string customer_name, std::string customer_credential)
      : customer(std::move(customer_name)), credential(std::move(customer_credential)) {}

  std::string customer;
  std::string credential;
  // Redial after a Coordinator failover: the session id the client held
  // before its connection dropped. A warm standby that replicated the session
  // rebinds it to the new connection instead of opening a fresh one.
  SessionId resume_session = 0;
};

struct OpenSessionResponse {
  OpenSessionResponse() = default;
  OpenSessionResponse(bool success, std::string error_message, SessionId session_id)
      : ok(success), error(std::move(error_message)), session(session_id) {}

  bool ok = false;
  std::string error;
  SessionId session = 0;
  // Coordinator HA epoch the client registered under (0: HA disabled).
  // Notifications carrying an older epoch come from a deposed primary.
  int64_t epoch = 0;
};

struct ListContentRequest {
  ListContentRequest() = default;
  explicit ListContentRequest(SessionId session_id) : session(session_id) {}

  SessionId session = 0;
};

struct ContentInfo {
  ContentInfo() = default;

  std::string name;
  std::string type;
  SimTime duration;
  bool has_fast_scan = false;
};

struct ListContentResponse {
  ListContentResponse() = default;

  bool ok = false;
  std::string error;
  std::vector<ContentInfo> items;
};

// Display ports "associate a string name, a content type, and the socket's
// IP address and port number". Composite ports list component port names.
struct RegisterPortRequest {
  RegisterPortRequest() = default;

  SessionId session = 0;
  std::string port_name;
  std::string type_name;
  std::string node;
  int udp_port = 0;
  int control_port = 0;  // where the client listens for the MSU's VCR conn
  std::vector<std::string> component_ports;  // for composite types
};

struct UnregisterPortRequest {
  UnregisterPortRequest() = default;
  UnregisterPortRequest(SessionId session_id, std::string port)
      : session(session_id), port_name(std::move(port)) {}

  SessionId session = 0;
  std::string port_name;
};

struct PlayRequest {
  PlayRequest() = default;
  PlayRequest(SessionId session_id, std::string content_name, std::string port)
      : session(session_id), content(std::move(content_name)), display_port(std::move(port)) {}

  SessionId session = 0;
  std::string content;
  std::string display_port;
  // Traffic-control class (DESIGN §5.9); ignored unless the Coordinator has
  // traffic control enabled.
  AdmissionClass admission_class = AdmissionClass::kStandard;
};

struct PlayResponse {
  PlayResponse() = default;
  PlayResponse(bool success, std::string error_message, GroupId group_id, bool was_queued)
      : ok(success), error(std::move(error_message)), group(group_id), queued(was_queued) {}

  bool ok = false;
  std::string error;
  GroupId group = 0;
  bool queued = false;  // no resources yet; Calliope will start it later
};

struct RecordRequest {
  RecordRequest() = default;
  RecordRequest(SessionId session_id, std::string content, std::string type, std::string port,
                SimTime length_estimate)
      : session(session_id),
        content_name(std::move(content)),
        type_name(std::move(type)),
        display_port(std::move(port)),
        estimated_length(length_estimate) {}

  SessionId session = 0;
  std::string content_name;
  std::string type_name;
  std::string display_port;
  SimTime estimated_length;
  // Traffic-control class; recordings default to bulk (a lost recording slot
  // is rescheduleable, a glitched live viewer is not).
  AdmissionClass admission_class = AdmissionClass::kBulk;
};

struct RecordResponse {
  RecordResponse() = default;
  RecordResponse(bool success, std::string error_message, GroupId group_id, bool was_queued)
      : ok(success), error(std::move(error_message)), group(group_id), queued(was_queued) {}

  bool ok = false;
  std::string error;
  GroupId group = 0;
  bool queued = false;
};

struct DeleteContentRequest {
  DeleteContentRequest() = default;
  DeleteContentRequest(SessionId session_id, std::string content_name)
      : session(session_id), content(std::move(content_name)) {}

  SessionId session = 0;
  std::string content;
};

// Administrative: register filtered fast-forward / fast-backward versions of
// existing content (§2.3.1 — produced offline by an administrator).
struct LoadFastScanRequest {
  LoadFastScanRequest() = default;
  LoadFastScanRequest(SessionId session_id, std::string content_name, std::string ff_file,
                      std::string fb_file)
      : session(session_id),
        content(std::move(content_name)),
        fast_forward_file(std::move(ff_file)),
        fast_backward_file(std::move(fb_file)) {}

  SessionId session = 0;
  std::string content;
  std::string fast_forward_file;
  std::string fast_backward_file;
};

struct SimpleResponse {
  SimpleResponse() = default;
  SimpleResponse(bool success, std::string error_message)
      : ok(success), error(std::move(error_message)) {}

  bool ok = false;
  std::string error;
};

// ---------- Coordinator -> MSU ----------

// One viewer of a shared delivery group (DESIGN §5.6): the disk stream fans
// its pages out to every member's display port, and each member keeps its own
// client-facing stream id, group id and VCR control connection.
struct SharedMemberSpec {
  SharedMemberSpec() = default;

  StreamId stream = 0;   // client-facing stream id minted for this member
  GroupId group = 0;     // client-facing group id (one per Play request)
  std::string client_node;
  int client_udp_port = 0;
  int client_control_port = 0;
};

struct MsuStartStream {
  MsuStartStream() = default;

  GroupId group = 0;
  StreamId stream = 0;
  std::string file;
  std::string protocol;  // protocol extension module name
  DataRate rate;         // bandwidth consumption rate from the content type
  bool record = false;
  SimTime estimated_length;   // for recordings
  int disk_hint = -1;         // which disk holds / should hold the file
  std::string client_node;
  int client_udp_port = 0;
  int client_control_port = 0;  // MSU opens the VCR conn to this port
  bool open_control_conn = true;
  std::string fast_forward_file;   // optional fast-scan variants
  std::string fast_backward_file;
  // Playback starts this far into the media (failover resumes a migrated
  // stream near where its previous MSU died). Zero: start at the beginning.
  SimTime start_offset;
  // Coordinator HA epoch stamped on every command (0: HA disabled). MSUs
  // refuse commands whose epoch is older than the one they registered under,
  // fencing a deposed primary out of the data path.
  int64_t epoch = 0;
  // ---- stream sharing (DESIGN §5.6) ----
  // Shared delivery group: one disk stream, fanned out to `shared_members`'
  // display ports. The client_* fields above are ignored in favor of the
  // per-member endpoints, and `stream` names the delivery stream whose disk
  // bandwidth the Coordinator reserved.
  bool shared = false;
  std::vector<SharedMemberSpec> shared_members;
  // VCR-split resume: the solo stream a paused member splits into starts in
  // the paused state so the member's later Resume picks up exactly where the
  // shared group left it.
  bool start_paused = false;
  // The title is hot (popularity EWMA over threshold): pin its prefix pages
  // in the MSU's page cache as they are read.
  bool pin_prefix = false;
  // Interval-cache admission: no disk bandwidth was reserved for this stream;
  // its reads should be served from the MSU page cache (trailing another
  // viewer by less than the cache horizon), falling back to disk on a miss.
  bool from_cache = false;
};

struct MsuStartStreamResponse {
  MsuStartStreamResponse() = default;
  MsuStartStreamResponse(bool success, std::string error_message)
      : ok(success), error(std::move(error_message)) {}

  bool ok = false;
  std::string error;
};

// ---------- MSU -> Coordinator ----------

struct MsuRegisterRequest {
  MsuRegisterRequest() = default;

  std::string msu_node;
  int disk_count = 0;
  Bytes free_space;
  // Outbound NIC capacity for network-path admission (0: unlimited, the
  // pre-NIC-budget behavior; also what minimal test harnesses send).
  DataRate nic_bandwidth;
  // Interval/prefix page-cache budget (0: no cache). The Coordinator's ledger
  // admits cache-served viewers against this instead of disk bandwidth.
  Bytes cache_memory;
  // Warm re-registration: the MSU kept running (and kept its streams) while
  // it was disconnected from the Coordinator — e.g. the primary died and this
  // is the redial against the promoted standby. The Coordinator keeps the
  // MSU's ledger holds instead of resetting the account.
  bool warm = false;
  // With warm: every stream still live on the MSU, so the new primary can
  // reconcile its replicated view against reality.
  std::vector<StreamId> active_streams;
};

struct MsuRegisterResponse {
  MsuRegisterResponse() = default;
  MsuRegisterResponse(bool success, std::string error_message)
      : ok(success), error(std::move(error_message)) {}

  bool ok = false;
  std::string error;
  // Coordinator HA epoch the MSU is now registered under (0: HA disabled).
  int64_t epoch = 0;
  // Streams the MSU reported as live that the Coordinator does not know
  // about (admissions that died with the old primary before replicating).
  // The MSU must quit them locally.
  std::vector<StreamId> stale_streams;
};

struct StreamTerminated {
  StreamTerminated() = default;

  StreamId stream = 0;
  GroupId group = 0;
  std::string file;
  Bytes bytes_moved;
  bool was_recording = false;
  // A recording that sealed its IB-tree and kept its bytes. False means the
  // MSU discarded the partial file; the Coordinator must refund the full
  // estimate and drop the catalog entry.
  bool record_committed = false;
  SimTime recorded_duration;  // media length of a completed recording
  int disk = 0;               // disk the file lives on (for space accounting)
  SimTime last_media_offset;  // playback: media position when the stream ended
};

// Periodic batched note: where each playback stream currently is in its
// media. The Coordinator keeps the latest offset per stream so a failover
// can resume a migrated stream near the position where its MSU died.
struct StreamProgressReport {
  StreamProgressReport() = default;

  struct Entry {
    Entry() = default;
    Entry(StreamId stream_id, SimTime offset) : stream(stream_id), media_offset(offset) {}

    StreamId stream = 0;
    SimTime media_offset;
  };

  std::string msu_node;
  std::vector<Entry> entries;
};

// Coordinator -> MSU: remove a file (content deletion).
struct MsuDeleteFile {
  MsuDeleteFile() = default;
  explicit MsuDeleteFile(std::string file_name) : file(std::move(file_name)) {}

  std::string file;
  int64_t epoch = 0;  // HA epoch fence, as on MsuStartStream
};

// ---------- background replica copies (rebalancing, DESIGN §5.8) ----------

// Coordinator -> source MSU: admit a rate-limited background read stream
// serving a replica copy of `file`. The source takes a duty-cycle slot on the
// file's home disk (exactly like one extra viewer at `rate`); the target then
// pulls pages over the source's replica pull port. Fails if the disk has no
// free slot — background copies never displace live streams.
struct MsuPrepareCopy {
  MsuPrepareCopy() = default;

  int64_t op = 0;
  std::string file;
  DataRate rate;
  int64_t epoch = 0;  // HA epoch fence, as on MsuStartStream
};

struct MsuPrepareCopyResponse {
  MsuPrepareCopyResponse() = default;
  MsuPrepareCopyResponse(bool success, std::string error_message)
      : ok(success), error(std::move(error_message)) {}

  bool ok = false;
  std::string error;
  int disk = -1;           // source disk the copy reads from
  int64_t page_count = 0;  // data pages the target must pull
  Bytes file_size;         // payload estimate for target space accounting
  int pull_port = 0;       // TCP port the target dials with ReplPullRequests
};

// Coordinator -> target MSU: pull `source_file` from `source_node` into a
// local `replica_file`, paced to `rate` (one 256 KB page per transfer), and
// commit it as installed content when the last page lands.
struct MsuBeginCopy {
  MsuBeginCopy() = default;

  int64_t op = 0;
  std::string content;  // catalog name, echoed in the install note
  std::string source_node;
  int source_port = 0;
  std::string source_file;
  std::string replica_file;
  DataRate rate;
  int64_t page_count = 0;
  Bytes estimated_size;
  int disk_hint = -1;
  int64_t epoch = 0;
};

// Coordinator -> either end of a copy: stop it (a live admission preempted
// the slot, or the other end died). Idempotent — unknown ops are acked.
struct MsuAbortCopy {
  MsuAbortCopy() = default;

  int64_t op = 0;
  int64_t epoch = 0;
};

// Target MSU -> source MSU, over the source's replica pull port: read one
// page of an in-progress copy.
struct ReplPullRequest {
  ReplPullRequest() = default;

  int64_t op = 0;
  int64_t page_index = 0;
};

struct ReplPullResponse {
  ReplPullResponse() = default;

  bool ok = false;
  std::string error;
  Bytes page_bytes;  // payload bytes charged to the wire
  bool last = false;
  // With `last`: the file's sealed IB-tree image, deep-copied so it cannot
  // dangle if the source deletes the file mid-flight. Opaque to the fabric
  // (net does not depend on ibtree; both ends are MSU code and cast it),
  // same idiom as Datagram::payload.
  std::shared_ptr<const void> image;
};

// Target MSU -> Coordinator: the replica is committed and ready to serve.
struct ReplicaInstalled {
  ReplicaInstalled() = default;

  int64_t op = 0;
  std::string msu_node;
  std::string content;
  std::string file;
  int disk = -1;
  Bytes bytes_copied;
};

// MSU -> Coordinator: the copy died (source crash, duty-cycle preemption by
// a live admission, pull error). Any partial file has been deleted.
struct ReplicaCopyFailed {
  ReplicaCopyFailed() = default;

  int64_t op = 0;
  std::string msu_node;
  std::string error;
};

// ---------- Coordinator -> client (over the session connection) ----------

// A queued play/record request failed permanently during a retry or failover
// pass; no stream will arrive for this group.
struct PendingRequestFailed {
  PendingRequestFailed() = default;
  PendingRequestFailed(GroupId group_id, std::string error_message)
      : group(group_id), error(std::move(error_message)) {}

  GroupId group = 0;
  std::string error;
  // Sender's HA epoch (0: HA disabled). Clients ignore notifications whose
  // epoch is older than the one they are registered under.
  int64_t epoch = 0;
};

// ---------- MSU -> client (over the group's VCR control connection) ----------

// Sent when the MSU is ready to serve a stream group; tells the client which
// MSU owns the group and, for recordings, where to send media packets.
struct StreamGroupInfo {
  StreamGroupInfo() = default;

  struct Member {
    Member() = default;
    Member(StreamId stream_id, int index, bool is_recording)
        : stream(stream_id), component_index(index), recording(is_recording) {}

    StreamId stream = 0;
    int component_index = 0;  // position within the composite type
    bool recording = false;
  };

  GroupId group = 0;
  std::string msu_node;
  int media_udp_port = 0;
  std::vector<Member> members;
};

// ---------- client <-> MSU (VCR control, §2.1) ----------

struct VcrCommand {
  enum class Op { kPlay, kPause, kSeek, kFastForward, kFastBackward, kQuit };

  VcrCommand() = default;

  Op op = Op::kPlay;
  GroupId group = 0;
  SimTime seek_to;  // for kSeek: media-time offset from the beginning
};

struct VcrAck {
  VcrAck() = default;
  VcrAck(bool success, std::string error_message)
      : ok(success), error(std::move(error_message)) {}

  bool ok = false;
  std::string error;
};

// MSU -> Coordinator: a member of a shared delivery group issued a VCR op, so
// the MSU detached it from the fan-out; the Coordinator re-admits the member
// as a solo stream at `media_offset` through the failover/resume machinery
// (paused if the op was kPause, at seek_to if it was kSeek).
struct SharedMemberSplit {
  SharedMemberSplit() = default;

  std::string msu_node;
  StreamId delivery_stream = 0;
  StreamId member_stream = 0;
  GroupId group = 0;            // the member's client-facing group
  SimTime media_offset;         // shared group's position at the split
  Bytes bytes_moved;            // bytes the member received while shared
  VcrCommand::Op op = VcrCommand::Op::kPlay;
  SimTime seek_to;
};

// ---------- Coordinator primary <-> standby (HA replication, Harp-style) ----------

// Wire form of a registered display port — also the primary's oplog record
// payload for port registration (the Coordinator aliases its internal
// DisplayPort bookkeeping to this type).
struct DisplayPortSpec {
  DisplayPortSpec() = default;

  std::string name;
  std::string type_name;
  std::string node;
  int udp_port = 0;
  int control_port = 0;
  std::vector<std::string> component_ports;
};

// Wire form of a queued/admitted play or record request — the Coordinator's
// PendingRequest, replicated verbatim so the standby can retry queued
// requests and re-place failed groups after takeover.
struct PendingPlayRequest {
  PendingPlayRequest() = default;

  SessionId session = 0;
  bool record = false;
  std::string content;
  std::string type_name;   // recordings: content type to create
  SimTime estimated_length;
  DisplayPortSpec port;
  GroupId group = 0;
  // Failover resume offsets, one per component (empty: start at zero).
  std::vector<SimTime> start_offsets;
  // VCR-split resume: the solo stream starts paused (the member paused the
  // shared group, so its replacement must not run ahead of the Resume).
  bool start_paused = false;
  // Placement affinity: try this MSU first (VCR splits stay on the node whose
  // page cache already holds the title; falls back to normal placement).
  std::string prefer_msu;
  // Traffic-control class (DESIGN §5.9). Shipped on the oplog so the standby
  // sheds/retries queued requests in the same order the primary would have.
  AdmissionClass admission_class = AdmissionClass::kStandard;
  // When this request first joined the pending queue (zero: never queued).
  // The queue-deadline sweep expires requests older than the per-class
  // deadline; re-queues after a failed retry keep the original stamp.
  SimTime enqueued_at;
};

// Oplog records. Each is a primitive state delta; the standby applies them
// mechanically (no placement, no RPCs, no catalog writes — the catalog is
// the shared durable database both coordinators mount).
struct ReplSessionOpened {
  ReplSessionOpened() = default;

  SessionId session = 0;
  std::string customer;
  bool admin = false;
};

struct ReplSessionClosed {
  ReplSessionClosed() = default;

  SessionId session = 0;
};

struct ReplPortRegistered {
  ReplPortRegistered() = default;

  SessionId session = 0;
  DisplayPortSpec port;
};

struct ReplPortUnregistered {
  ReplPortUnregistered() = default;

  SessionId session = 0;
  std::string port_name;
};

struct ReplMsuUp {
  ReplMsuUp() = default;

  std::string node;
  int disk_count = 0;
  Bytes free_space;
  DataRate nic_budget;
  Bytes cache_memory;
  // Mirror of the primary's ledger action: a warm re-registration reattaches
  // the account (holds survive); a cold one resets it (epoch bump).
  bool reattach = false;
};

struct ReplMsuDown {
  ReplMsuDown() = default;

  std::string node;
};

// One member stream of an admitted group: everything the standby needs to
// rebuild the ActiveStream entry and its ledger hold.
struct ReplStreamMember {
  ReplStreamMember() = default;

  StreamId stream = 0;
  int disk = 0;
  int component = 0;
  std::string content_item;
  bool recording = false;
  DataRate rate;
  Bytes space;
  SimTime offset;  // last known media offset (failover resume point)
};

struct ReplGroupStarted {
  ReplGroupStarted() = default;

  GroupId group = 0;
  std::string msu;
  PendingPlayRequest request;  // retained for re-placement after MSU loss
  std::vector<ReplStreamMember> members;
};

struct ReplStreamEnded {
  ReplStreamEnded() = default;

  StreamId stream = 0;
  Bytes space_used;  // recordings: bytes kept (refund the rest of the estimate)
};

struct ReplGroupEnded {
  ReplGroupEnded() = default;

  GroupId group = 0;
};

struct ReplPendingPushed {
  ReplPendingPushed() = default;

  PendingPlayRequest request;
};

struct ReplPendingPopped {
  ReplPendingPopped() = default;

  GroupId group = 0;
};

// A background replica copy launched by the rebalancer: the standby mirrors
// the ledger's replication_io holds (source + target disks) and keeps an op
// shadow so a takeover can adopt — or clean up — in-flight copies. The
// catalog location install itself needs no record: the catalog is the shared
// durable database, and the install note redials the promoted primary.
struct ReplReplicationStarted {
  ReplReplicationStarted() = default;

  int64_t op = 0;
  std::string content;
  std::string source_msu;
  int source_disk = 0;
  std::string source_file;
  std::string target_msu;
  int target_disk = 0;
  std::string replica_file;
  DataRate rate;
  Bytes space;  // estimated replica size, held against the target
};

struct ReplReplicationEnded {
  ReplReplicationEnded() = default;

  int64_t op = 0;
  // True: the replica committed, so the target's space stays debited; false:
  // the copy aborted and the space hold is refunded.
  bool installed = false;
};

struct ReplProgress {
  ReplProgress() = default;

  struct Entry {
    Entry() = default;
    Entry(StreamId stream_id, SimTime media_offset)
        : stream(stream_id), offset(media_offset) {}

    StreamId stream = 0;
    SimTime offset;
  };

  std::vector<Entry> entries;
};

using ReplRecord =
    std::variant<ReplSessionOpened, ReplSessionClosed, ReplPortRegistered, ReplPortUnregistered,
                 ReplMsuUp, ReplMsuDown, ReplGroupStarted, ReplStreamEnded, ReplGroupEnded,
                 ReplPendingPushed, ReplPendingPopped, ReplReplicationStarted,
                 ReplReplicationEnded, ReplProgress>;

// One log-shipping batch (doubles as the lease heartbeat when `records` is
// empty). `snapshot` marks a full state install: the standby clears its
// shadow state and replays `records` from scratch. Id counters ride in the
// header so the standby mints the same ids after takeover.
struct ReplAppendRequest {
  ReplAppendRequest() = default;

  int64_t epoch = 0;
  bool snapshot = false;
  int64_t first_seq = 0;  // sequence number of records.front()
  SessionId next_session = 1;
  StreamId next_stream = 1;
  GroupId next_group = 1;
  std::vector<ReplRecord> records;
};

struct ReplAppendResponse {
  ReplAppendResponse() = default;
  ReplAppendResponse(bool success, std::string error_message)
      : ok(success), error(std::move(error_message)) {}

  bool ok = false;
  std::string error;  // "stale epoch": the sender has been deposed
  int64_t applied_seq = 0;
  int64_t epoch = 0;  // responder's view (lets a deposed primary learn the new epoch)
};

using MessageBody =
    std::variant<OpenSessionRequest, OpenSessionResponse, ListContentRequest, ListContentResponse,
                 RegisterPortRequest, UnregisterPortRequest, PlayRequest, PlayResponse,
                 RecordRequest, RecordResponse, DeleteContentRequest, LoadFastScanRequest,
                 SimpleResponse, MsuStartStream, MsuStartStreamResponse, MsuRegisterRequest,
                 MsuRegisterResponse, StreamTerminated, StreamProgressReport, PendingRequestFailed,
                 VcrCommand, VcrAck, MsuDeleteFile, StreamGroupInfo, SharedMemberSplit,
                 MsuPrepareCopy, MsuPrepareCopyResponse, MsuBeginCopy, MsuAbortCopy,
                 ReplPullRequest, ReplPullResponse, ReplicaInstalled, ReplicaCopyFailed,
                 ReplAppendRequest, ReplAppendResponse>;

struct Envelope {
  Envelope() = default;
  Envelope(uint64_t id, bool response, MessageBody message_body)
      : rpc_id(id), is_response(response), body(std::move(message_body)) {}

  uint64_t rpc_id = 0;
  bool is_response = false;
  MessageBody body;
};

// Non-aggregate carrier for passing a MessageBody into a coroutine by value.
class MessageArg {
 public:
  MessageArg(MessageBody body) : value(std::move(body)) {}  // NOLINT(google-explicit-constructor)
  MessageBody value;
};

// Estimated bytes on the wire (struct payload + strings + headers).
Bytes WireSize(const MessageBody& body);
Bytes WireSize(const Envelope& envelope);

// Debug name of the message alternative.
const char* MessageName(const MessageBody& body);

}  // namespace calliope

#endif  // CALLIOPE_SRC_NET_MESSAGE_H_
