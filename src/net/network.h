// Simulated network fabric: nodes (machines) joined by two segment classes —
// the low-bandwidth intra-server LAN (Ethernet) and the high-bandwidth
// multimedia delivery network (FDDI) — with UDP datagrams for media and
// TCP-like reliable ordered connections (plus a small RPC facility) for
// control traffic, exactly the transport split of paper §2.
//
// Sender-side serialization, CPU and memory-bus costs are charged by the
// hw::Nic send path; the fabric adds propagation delay, routes frames to the
// destination host's receive path, counts per-segment bytes (for the §3.3
// "network utilization" measurement) and models node failures: a down node
// neither sends nor receives, and its TCP connections break — which is how
// the Coordinator detects MSU failures.
#ifndef CALLIOPE_SRC_NET_NETWORK_H_
#define CALLIOPE_SRC_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/net/message.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/co.h"
#include "src/sim/condition.h"
#include "src/sim/task.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace calliope {

class Network;
class NetNode;
class TcpConn;

enum class Segment { kIntra, kDelivery };

struct NetworkParams {
  SimTime propagation_delay = SimTime::Micros(100);
  // If false, control traffic rides the delivery network too ("a Calliope
  // installation could eliminate the intra-server network").
  bool use_intra_lan = true;
  // Default timeout for RPC calls.
  SimTime rpc_timeout = SimTime::Seconds(10);
  // Fault/jitter injection for media (UDP) datagrams: each is dropped with
  // probability `udp_loss_rate`, and delayed by U(0, udp_jitter_max) —
  // "clients will have to be able to handle the jitter introduced by the
  // multimedia delivery network anyway."
  double udp_loss_rate = 0.0;
  SimTime udp_jitter_max;
  uint64_t fault_seed = 97;
};

// A datagram in flight. `payload` is opaque to the fabric.
// Non-aggregate (declared constructor): safe as a coroutine parameter.
struct Datagram {
  enum class Proto { kUdp, kTcp };

  Datagram() = default;

  Proto proto = Proto::kUdp;
  std::string src_node;
  int src_port = 0;
  std::string dst_node;
  int dst_port = 0;
  Bytes size;
  std::shared_ptr<const void> payload;
  // Flow-mode batching: this datagram stands in for `flow_packets` logical
  // UDP datagrams sent back to back (`size` is their total payload). The
  // fabric charges one UDP/IP header per logical packet and forwards the
  // count to the NIC, which charges per-packet CPU but one aggregate
  // copy/checksum/DMA/wire reservation.
  int64_t flow_packets = 1;
  // TCP only:
  uint64_t conn_id = 0;
  int64_t seq = 0;
  bool tcp_fin = false;
  bool tcp_rst = false;
  std::shared_ptr<const Envelope> envelope;
};

using UdpHandler = std::function<void(const Datagram&)>;
using AcceptHandler = std::function<void(TcpConn*)>;

// Reliable ordered control connection with integrated request/response RPC.
class TcpConn {
 public:
  // Sends a one-way message (no response expected).
  Co<Status> Send(Envelope envelope);

  // Request/response: sends, then waits for the matching response or
  // timeout. SimTime() means the network's default timeout.
  Co<Result<Envelope>> Call(MessageArg body, SimTime timeout = SimTime());

  // Handler for incoming non-response messages when no request handler is
  // registered (one-way notifications).
  void set_receive_handler(std::function<void(TcpConn*, const Envelope&)> handler) {
    receive_handler_ = std::move(handler);
  }
  // Handler that computes a response for each incoming request; the
  // connection sends the response automatically.
  void set_request_handler(std::function<Co<MessageBody>(const MessageBody&)> handler) {
    request_handler_ = std::move(handler);
  }
  void set_close_handler(std::function<void(TcpConn*)> handler) {
    close_handler_ = std::move(handler);
  }

  // Graceful close: notifies the peer (FIN).
  void Close();
  bool closed() const { return state_ != State::kOpen; }
  bool broken() const { return state_ == State::kBroken; }

  const std::string& local_node() const { return local_node_; }
  const std::string& peer_node() const { return peer_node_; }
  int peer_port() const { return peer_port_; }
  uint64_t id() const { return conn_id_; }

 private:
  friend class Network;
  friend class NetNode;
  enum class State { kOpen, kClosed, kBroken };

  struct PendingCall {
    explicit PendingCall(Simulator& sim) : cond(sim) {}
    std::unique_ptr<Envelope> result;
    bool failed = false;
    Condition cond;
  };

  TcpConn(Network* network, uint64_t conn_id, std::string local_node, int local_port,
          std::string peer_node, int peer_port);

  Co<Status> SendInternal(Envelope envelope, bool fin);
  void TraceRpc(const char* name, SimTime start, const char* outcome);
  void HandleIncoming(const Datagram& datagram);
  void DeliverInOrder(const Envelope& envelope);
  Task RunRequestHandler(Envelope request);
  // Marks the connection dead and fails all pending calls.
  void MarkDead(State state);

  Network* network_;
  uint64_t conn_id_;
  std::string local_node_;
  int local_port_;
  std::string peer_node_;
  int peer_port_;
  State state_ = State::kOpen;
  uint64_t next_rpc_id_ = 1;
  int64_t next_tx_seq_ = 0;
  int64_t next_rx_seq_ = 0;
  int64_t fin_seq_ = -1;
  std::map<int64_t, Envelope> reorder_buffer_;
  std::map<uint64_t, std::shared_ptr<PendingCall>> pending_calls_;
  std::function<void(TcpConn*, const Envelope&)> receive_handler_;
  std::function<Co<MessageBody>(const MessageBody&)> request_handler_;
  std::function<void(TcpConn*)> close_handler_;
};

class NetNode {
 public:
  const std::string& name() const { return name_; }
  Machine& machine() { return *machine_; }
  bool on_intra() const { return on_intra_; }

  // UDP: binds `handler` to `port`. Fails if the port is taken.
  Status BindUdp(int port, UdpHandler handler);
  Status CloseUdp(int port);
  // Sends one UDP datagram; returns false on ENOBUFS (the caller paces or
  // retries, like the MSU's network process).
  // Coroutine parameters are by value: the body may run after call-site
  // temporaries are gone (lazy start).
  Co<bool> SendUdp(std::string dst_node, int dst_port, Bytes size,
                   std::shared_ptr<const void> payload, int src_port = 0);
  // Flow-mode aggregate: one chunk standing in for `packet_count` datagrams
  // totalling `size` payload bytes. Blocking admission (the flow loop has
  // already folded pacing into its refill schedule, so ENOBUFS retries every
  // 1 ms like ttcp instead of dropping a whole page).
  Co<bool> SendUdpFlow(std::string dst_node, int dst_port, Bytes size, int64_t packet_count,
                       std::shared_ptr<const void> payload, int src_port = 0);

  // TCP.
  Status ListenTcp(int port, AcceptHandler on_accept);
  Co<Result<TcpConn*>> ConnectTcp(std::string dst_node, int dst_port);

  // Crash / restore. Going down breaks every connection touching this node.
  void SetDown(bool down);
  bool down() const { return down_; }

  int AllocateEphemeralPort() { return next_ephemeral_port_++; }

 private:
  friend class Network;
  friend class TcpConn;
  NetNode(Network* network, std::string name, Machine* machine, bool on_intra);

  void HandleReceivedDatagram(const Datagram& datagram);

  Network* network_;
  std::string name_;
  Machine* machine_;
  bool on_intra_;
  bool down_ = false;
  std::map<int, UdpHandler> udp_ports_;
  std::map<int, AcceptHandler> tcp_listeners_;
  int next_ephemeral_port_ = 32768;
};

// Verdict of the link fault hook for one datagram on the wire (see
// src/fault). Dropping a TCP segment wedges the receiver's reorder buffer
// forever (there is no retransmission in this model), so partition-style
// faults should delay TCP traffic to the heal point instead of dropping it.
struct LinkFault {
  LinkFault() = default;
  bool drop = false;      // lose the datagram in flight
  SimTime extra_delay;    // added to the propagation delay
};

class Network {
 public:
  // Consulted once per datagram as it leaves the source NIC; may be empty.
  using LinkFaultHook = std::function<LinkFault(const Datagram&)>;

  Network(Simulator& sim, NetworkParams params = NetworkParams());

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // All nodes sit on the delivery network; servers also join the intra LAN.
  NetNode* AddNode(const std::string& name, Machine* machine, bool on_intra);
  NetNode* FindNode(const std::string& name);

  Simulator& sim() { return *sim_; }
  const NetworkParams& params() const { return params_; }

  // Traffic accounting per segment since construction.
  Bytes segment_bytes(Segment segment) const {
    return segment == Segment::kIntra ? intra_bytes_ : delivery_bytes_;
  }
  // Mean utilization of a segment's nominal bandwidth over [t0, now].
  double SegmentUtilization(Segment segment, SimTime since) const;

  // Picks the segment connecting two nodes (intra preferred for
  // server-to-server traffic when enabled).
  Result<Segment> Route(const std::string& src, const std::string& dst) const;

  int64_t udp_dropped() const { return udp_dropped_; }

  void set_fault_hook(LinkFaultHook hook) { fault_hook_ = std::move(hook); }
  int64_t fault_dropped() const { return fault_dropped_; }
  int64_t fault_delayed() const { return fault_delayed_; }

  // Publishes fabric counters into `metrics` and RPC/connection events into
  // `trace`. Either may be null (standalone construction in unit tests).
  void AttachObservability(MetricsRegistry* metrics, TraceRecorder* trace);
  TraceRecorder* trace() { return trace_; }

 private:
  friend class NetNode;
  friend class TcpConn;

  // Sends `datagram` through src's NIC; best-effort (media) or blocking
  // (control) admission.
  Co<bool> Transmit(Datagram datagram, bool blocking);
  void DeliverToNode(const Datagram& datagram);
  void BreakConnsTouching(const std::string& node);
  TcpConn* EstablishConn(NetNode* client, NetNode* server, int server_port,
                         const AcceptHandler& on_accept);
  // Endpoints are identified by (conn id, node, local port): with a
  // colocated Coordinator both ends of a connection live on the same node.
  TcpConn* FindConn(uint64_t conn_id, const std::string& node, int local_port);

  Simulator* sim_;
  NetworkParams params_;
  std::map<std::string, std::unique_ptr<NetNode>> nodes_;
  std::vector<std::unique_ptr<TcpConn>> conns_;
  std::map<std::tuple<uint64_t, std::string, int>, TcpConn*> conn_index_;
  uint64_t next_conn_id_ = 1;
  Bytes intra_bytes_;
  Bytes delivery_bytes_;
  Rng fault_rng_{0};
  int64_t udp_dropped_ = 0;
  LinkFaultHook fault_hook_;
  int64_t fault_dropped_ = 0;
  int64_t fault_delayed_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  Counter* datagrams_sent_ = nullptr;  // cached; non-null iff metrics_ attached
  DataRate intra_rate_ = DataRate::MegabitsPerSec(10);
  DataRate delivery_rate_ = DataRate::MegabitsPerSec(100);
};

}  // namespace calliope

#endif  // CALLIOPE_SRC_NET_NETWORK_H_
